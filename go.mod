module pimcapsnet

go 1.22
