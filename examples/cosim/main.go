// Co-simulation: run the same routing problem three ways — the
// functional library on the host, the library with PE-approximated
// numerics, and the functional/timing co-simulator that interprets
// the routing procedure on the simulated cube — and show that the
// numbers agree while the co-simulator additionally reports where the
// work and the communication landed.
package main

import (
	"fmt"
	"math/rand"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/pimexec"
	"pimcapsnet/internal/tensor"
)

func main() {
	const nb, nl, nh, ch = 4, 48, 8, 16
	rng := rand.New(rand.NewSource(7))
	preds := tensor.New(nb, nl, nh, ch)
	for i := range preds.Data() {
		preds.Data()[i] = float32(rng.NormFloat64()) * 0.1
	}

	host := capsnet.DynamicRoutingShared(preds, 3, capsnet.ExactMath{})
	pe := capsnet.DynamicRoutingShared(preds, 3, capsnet.NewPEMath())
	fmt.Println("capsule norms of batch element 0 (exact | PE math | cube):")

	for _, dim := range distribute.Dimensions {
		x := pimexec.New(dim)
		r := x.Run(preds, 3)
		if dim == distribute.DimB {
			for j := 0; j < nh; j++ {
				fmt.Printf("  caps %d: %.4f | %.4f | %.4f\n", j,
					tensor.Norm(host.V.Data()[j*ch:(j+1)*ch]),
					tensor.Norm(pe.V.Data()[j*ch:(j+1)*ch]),
					tensor.Norm(r.Routing.V.Data()[j*ch:(j+1)*ch]))
			}
			fmt.Println()
		}
		fmt.Printf("dimension %v: %2d active vaults, busiest vault %6.0f PE-cycles, %8.0f B over the crossbar, %d phases\n",
			dim, r.ActiveVaults(), r.MaxComputeCycles(), r.TotalCommBytes(), r.Phases)
	}
	fmt.Println("\nthe distribution dimension changes where work and traffic land;")
	fmt.Println("the capsule values stay numerically equivalent (PE-math column).")
}
