// Example serve is a load-generating client for capsnet-serve: it
// reads the model geometry from /v1/model, generates matching seeded
// synthetic images, fires concurrent classify requests so the server's
// micro-batcher has something to batch, and finally prints the
// batching- and latency-related lines of /metrics.
//
// Run the server first, then the client:
//
//	go run ./cmd/capsnet-serve -demo-classes 5 &
//	go run ./examples/serve -addr http://localhost:8080 -n 64 -c 8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "capsnet-serve base URL")
	n := flag.Int("n", 64, "number of requests")
	concurrency := flag.Int("c", 8, "concurrent client goroutines")
	seed := flag.Int64("seed", 42, "synthetic image seed")
	flag.Parse()

	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency},
	}

	// Discover the model geometry so the images fit.
	var info serve.ModelInfo
	if err := getJSON(client, *addr+"/v1/model", &info); err != nil {
		fmt.Fprintf(os.Stderr, "fetching model info: %v (is capsnet-serve running?)\n", err)
		os.Exit(1)
	}
	fmt.Printf("model: %dx%dx%d → %d classes, %s routing × %d iterations\n",
		info.Channels, info.Height, info.Width, info.Classes, info.RoutingMode, info.RoutingIterations)

	spec := dataset.Spec{
		Name: "client", Classes: info.Classes,
		Channels: info.Channels, H: info.Height, W: info.Width,
		Noise: 0.05, Seed: *seed,
	}
	gen := dataset.NewGenerator(spec)
	bodies := make([][]byte, *n)
	for i := range bodies {
		img := make([]float32, info.Channels*info.Height*info.Width)
		gen.Sample(img, i%info.Classes)
		body, err := json.Marshal(serve.ClassifyRequest{Image: img})
		if err != nil {
			panic(err)
		}
		bodies[i] = body
	}

	// Fire the load.
	var ok, rejected atomic.Int64
	var batchSum atomic.Int64
	work := make(chan int, *n)
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				resp, err := client.Post(*addr+"/v1/classify", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					fmt.Fprintf(os.Stderr, "request %d: %v\n", i, err)
					continue
				}
				var cr serve.ClassifyResponse
				if resp.StatusCode == http.StatusOK {
					json.NewDecoder(resp.Body).Decode(&cr)
					ok.Add(1)
					batchSum.Add(int64(cr.Batch))
				} else {
					io.Copy(io.Discard, resp.Body)
					if resp.StatusCode == http.StatusTooManyRequests {
						rejected.Add(1)
					}
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("%d ok, %d rejected (429) in %v — %.1f req/s, mean ridden batch %.2f\n",
		ok.Load(), rejected.Load(), elapsed.Round(time.Millisecond),
		float64(ok.Load())/elapsed.Seconds(),
		float64(batchSum.Load())/float64(max(ok.Load(), 1)))

	// Show what the server measured.
	resp, err := client.Get(*addr + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetching metrics: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	fmt.Println("\nserver /metrics (batching + latency):")
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "capsnet_batch") ||
			strings.HasPrefix(line, "capsnet_request_latency_seconds{") ||
			strings.HasPrefix(line, "capsnet_queue_depth") ||
			strings.HasPrefix(line, "capsnet_routing_iterations_total") {
			fmt.Println("  " + line)
		}
	}
	printStageBreakdown(string(text))
}

// stageStat is one capsnet_stage_seconds family parsed from the
// exposition.
type stageStat struct {
	name       string
	count      uint64
	sum        float64
	p50, p99   float64
	totalShare float64
}

// printStageBreakdown renders the per-stage latency table from the
// capsnet_stage_seconds histograms — where a served request's time
// actually goes, the production counterpart of the paper's Figure 3
// execution-time breakdown.
func printStageBreakdown(metrics string) {
	stages := parseStageStats(metrics)
	if len(stages) == 0 {
		fmt.Println("\nno stage histograms yet (is the server older than the observability layer?)")
		return
	}
	var total float64
	for _, s := range stages {
		total += s.sum
	}
	for i := range stages {
		if total > 0 {
			stages[i].totalShare = 100 * stages[i].sum / total
		}
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i].sum > stages[j].sum })

	fmt.Println("\nper-stage latency breakdown (capsnet_stage_seconds):")
	fmt.Printf("  %-24s %8s %12s %10s %10s %7s\n", "stage", "count", "total", "p50", "p99", "share")
	for _, s := range stages {
		fmt.Printf("  %-24s %8d %12s %10s %10s %6.1f%%\n",
			s.name, s.count, fmtSeconds(s.sum), fmtSeconds(s.p50), fmtSeconds(s.p99), s.totalShare)
	}
}

// parseStageStats extracts count/sum/quantiles for every stage label
// from the Prometheus text exposition.
func parseStageStats(metrics string) []stageStat {
	byStage := make(map[string]*stageStat)
	get := func(stage string) *stageStat {
		s, ok := byStage[stage]
		if !ok {
			s = &stageStat{name: stage}
			byStage[stage] = s
		}
		return s
	}
	stageRe := regexp.MustCompile(`^capsnet_stage_seconds(_sum|_count)?\{stage="([^"]+)"(?:,quantile="([^"]+)")?\} (\S+)$`)
	for _, line := range strings.Split(metrics, "\n") {
		m := stageRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		s := get(m[2])
		switch {
		case m[1] == "_count":
			s.count = uint64(v)
		case m[1] == "_sum":
			s.sum = v
		case m[3] == "0.5":
			s.p50 = v
		case m[3] == "0.99":
			s.p99 = v
		}
	}
	out := make([]stageStat, 0, len(byStage))
	for _, s := range byStage {
		out = append(out, *s)
	}
	return out
}

// fmtSeconds renders a duration in the most readable unit.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fµs", s*1e6)
	}
}

func getJSON(client *http.Client, url string, dst any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}
