// Example serve is a load-generating client for capsnet-serve: it
// reads the model geometry from /v1/model, generates matching seeded
// synthetic images, fires concurrent classify requests so the server's
// micro-batcher has something to batch, and finally prints the
// batching- and latency-related lines of /metrics.
//
// Run the server first, then the client:
//
//	go run ./cmd/capsnet-serve -demo-classes 5 &
//	go run ./examples/serve -addr http://localhost:8080 -n 64 -c 8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "capsnet-serve base URL")
	n := flag.Int("n", 64, "number of requests")
	concurrency := flag.Int("c", 8, "concurrent client goroutines")
	seed := flag.Int64("seed", 42, "synthetic image seed")
	flag.Parse()

	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency},
	}

	// Discover the model geometry so the images fit.
	var info serve.ModelInfo
	if err := getJSON(client, *addr+"/v1/model", &info); err != nil {
		fmt.Fprintf(os.Stderr, "fetching model info: %v (is capsnet-serve running?)\n", err)
		os.Exit(1)
	}
	fmt.Printf("model: %dx%dx%d → %d classes, %s routing × %d iterations\n",
		info.Channels, info.Height, info.Width, info.Classes, info.RoutingMode, info.RoutingIterations)

	spec := dataset.Spec{
		Name: "client", Classes: info.Classes,
		Channels: info.Channels, H: info.Height, W: info.Width,
		Noise: 0.05, Seed: *seed,
	}
	gen := dataset.NewGenerator(spec)
	bodies := make([][]byte, *n)
	for i := range bodies {
		img := make([]float32, info.Channels*info.Height*info.Width)
		gen.Sample(img, i%info.Classes)
		body, err := json.Marshal(serve.ClassifyRequest{Image: img})
		if err != nil {
			panic(err)
		}
		bodies[i] = body
	}

	// Fire the load.
	var ok, rejected atomic.Int64
	var batchSum atomic.Int64
	work := make(chan int, *n)
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				resp, err := client.Post(*addr+"/v1/classify", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					fmt.Fprintf(os.Stderr, "request %d: %v\n", i, err)
					continue
				}
				var cr serve.ClassifyResponse
				if resp.StatusCode == http.StatusOK {
					json.NewDecoder(resp.Body).Decode(&cr)
					ok.Add(1)
					batchSum.Add(int64(cr.Batch))
				} else {
					io.Copy(io.Discard, resp.Body)
					if resp.StatusCode == http.StatusTooManyRequests {
						rejected.Add(1)
					}
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("%d ok, %d rejected (429) in %v — %.1f req/s, mean ridden batch %.2f\n",
		ok.Load(), rejected.Load(), elapsed.Round(time.Millisecond),
		float64(ok.Load())/elapsed.Seconds(),
		float64(batchSum.Load())/float64(max(ok.Load(), 1)))

	// Show what the server measured.
	resp, err := client.Get(*addr + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetching metrics: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	fmt.Println("\nserver /metrics (batching + latency):")
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "capsnet_batch") ||
			strings.HasPrefix(line, "capsnet_request_latency_seconds{") ||
			strings.HasPrefix(line, "capsnet_queue_depth") ||
			strings.HasPrefix(line, "capsnet_routing_iterations_total") {
			fmt.Println("  " + line)
		}
	}
}

func getJSON(client *http.Client, url string, dst any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}
