// Example serve is a load-generating client for the serving stack: it
// reads the model geometry from /v1/model, generates matching seeded
// synthetic images, fires concurrent classify requests so the server's
// micro-batcher has something to batch, and finally prints the
// batching- and latency-related lines of /metrics.
//
// It drives either tier. Against a single replica:
//
//	go run ./cmd/capsnet-serve -demo-classes 5 &
//	go run ./examples/serve -target serve -addr http://localhost:8080 -n 64 -c 8
//
// Against the sharded replica tier (-target router also switches the
// default address to the router's :8090 and swaps the per-stage
// breakdown for the router's placement/retry/hedge summary):
//
//	go run ./cmd/capsnet-router -replicas 3 -- -demo-classes 5 &
//	go run ./examples/serve -target router -n 64 -c 8
//
// Adding -fleet to a router run also scrapes /metrics/fleet and prints
// the exactly merged cross-replica latency histogram plus a
// per-replica health table (requests, batches, brownout level, aborted
// batches, expired deadlines).
//
// The default firing mode is closed-loop — -c goroutines each wait for
// a response before sending the next request — which is
// coordinated-omission-prone: a server stall slows the client down
// with it, so queueing delay never reaches the latency numbers. Pass
// -open-loop to fire on a seeded arrival schedule via internal/loadgen
// instead (latency then includes the wait from each request's
// scheduled arrival); cmd/capsnet-load is the full capacity harness
// built on the same generator.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/deadline"
	"pimcapsnet/internal/loadgen"
	"pimcapsnet/internal/serve"
	"pimcapsnet/internal/workload"
)

func main() {
	target := flag.String("target", "serve", "tier to drive: serve (one capsnet-serve) | router (capsnet-router replica tier)")
	addr := flag.String("addr", "", "base URL (default http://localhost:8080 for -target serve, :8090 for router)")
	n := flag.Int("n", 64, "number of requests")
	concurrency := flag.Int("c", 8, "concurrent client goroutines")
	seed := flag.Int64("seed", 42, "synthetic image seed")
	budget := flag.Duration("deadline", 0, "per-request end-to-end budget sent as the X-Deadline header (0 = none); expired requests come back 504")
	fleet := flag.Bool("fleet", false, "with -target router: also scrape /metrics/fleet and print the merged fleet view with a per-replica health table")
	openLoop := flag.Bool("open-loop", false, "fire on a seeded Poisson arrival schedule (coordinated-omission-safe) instead of the default closed-loop worker pool")
	rate := flag.Float64("rate", 50, "with -open-loop: mean offered rate in req/s; the run lasts ~n/rate seconds")
	flag.Parse()

	if *target != "serve" && *target != "router" {
		fmt.Fprintf(os.Stderr, "unknown -target %q (want serve or router)\n", *target)
		os.Exit(1)
	}
	if *fleet && *target != "router" {
		fmt.Fprintln(os.Stderr, "-fleet needs -target router: only the router aggregates replica metrics")
		os.Exit(1)
	}
	if *addr == "" {
		if *target == "router" {
			*addr = "http://localhost:8090"
		} else {
			*addr = "http://localhost:8080"
		}
	}

	client := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency},
	}

	// Discover the model geometry so the images fit.
	var info serve.ModelInfo
	if err := getJSON(client, *addr+"/v1/model", &info); err != nil {
		fmt.Fprintf(os.Stderr, "fetching model info: %v (is capsnet-serve running?)\n", err)
		os.Exit(1)
	}
	fmt.Printf("model: %dx%dx%d → %d classes, %s routing × %d iterations\n",
		info.Channels, info.Height, info.Width, info.Classes, info.RoutingMode, info.RoutingIterations)

	spec := dataset.Spec{
		Name: "client", Classes: info.Classes,
		Channels: info.Channels, H: info.Height, W: info.Width,
		Noise: 0.05, Seed: *seed,
	}
	gen := dataset.NewGenerator(spec)
	bodies := make([][]byte, *n)
	for i := range bodies {
		img := make([]float32, info.Channels*info.Height*info.Width)
		gen.Sample(img, i%info.Classes)
		body, err := json.Marshal(serve.ClassifyRequest{Image: img})
		if err != nil {
			panic(err)
		}
		bodies[i] = body
	}

	// Fire the load.
	if *openLoop {
		fireOpenLoop(client, *addr, bodies, *rate, *seed, *budget)
	} else {
		fireClosedLoop(client, *addr, bodies, *concurrency, *budget)
	}

	// Show what the tier we hit measured: a single replica exposes the
	// capsnet_* batching/stage histograms, the router tier its
	// placement/retry/hedge families.
	resp, err := client.Get(*addr + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetching metrics: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if *target == "router" {
		printRouterSummary(string(text))
		if *fleet {
			fleetResp, err := client.Get(*addr + "/metrics/fleet")
			if err != nil {
				fmt.Fprintf(os.Stderr, "fetching fleet metrics: %v\n", err)
				os.Exit(1)
			}
			fleetText, _ := io.ReadAll(fleetResp.Body)
			fleetResp.Body.Close()
			printFleetSummary(string(fleetText))
		}
		return
	}
	fmt.Println("\nserver /metrics (batching + latency):")
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "capsnet_batch") ||
			strings.HasPrefix(line, "capsnet_request_latency_seconds{") ||
			strings.HasPrefix(line, "capsnet_queue_depth") ||
			strings.HasPrefix(line, "capsnet_routing_iterations_total") ||
			strings.HasPrefix(line, "capsnet_brownout_level") ||
			strings.HasPrefix(line, "capsnet_batch_aborted_total") ||
			strings.HasPrefix(line, "capsnet_deadline_expired_total") {
			fmt.Println("  " + line)
		}
	}
	printStageBreakdown(string(text), *target)
}

// fireClosedLoop drives the default worker-pool load: c goroutines,
// each waiting for a response before sending the next request.
func fireClosedLoop(client *http.Client, addr string, bodies [][]byte, concurrency int, budget time.Duration) {
	var ok, rejected, expired atomic.Int64
	var batchSum atomic.Int64
	n := len(bodies)
	work := make(chan int, n)
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				req, err := http.NewRequest(http.MethodPost, addr+"/v1/classify", bytes.NewReader(bodies[i]))
				if err != nil {
					panic(err)
				}
				req.Header.Set("Content-Type", "application/json")
				if budget > 0 {
					// The absolute deadline is stamped per attempt so
					// queueing inside the client pool does not silently
					// eat the budget before the request leaves.
					deadline.Set(req.Header, time.Now().Add(budget))
				}
				resp, err := client.Do(req)
				if err != nil {
					fmt.Fprintf(os.Stderr, "request %d: %v\n", i, err)
					continue
				}
				var cr serve.ClassifyResponse
				switch resp.StatusCode {
				case http.StatusOK:
					json.NewDecoder(resp.Body).Decode(&cr)
					ok.Add(1)
					batchSum.Add(int64(cr.Batch))
				case http.StatusTooManyRequests:
					io.Copy(io.Discard, resp.Body)
					rejected.Add(1)
				case http.StatusGatewayTimeout:
					io.Copy(io.Discard, resp.Body)
					expired.Add(1)
				default:
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("%d ok, %d rejected (429), %d expired (504) in %v — %.1f req/s, mean ridden batch %.2f\n",
		ok.Load(), rejected.Load(), expired.Load(), elapsed.Round(time.Millisecond),
		float64(ok.Load())/elapsed.Seconds(),
		float64(batchSum.Load())/float64(max(ok.Load(), 1)))
	fmt.Println("note: closed-loop measurement (coordinated-omission-prone) — the pool slows down with the server," +
		" so queueing delay is hidden; rerun with -open-loop (or use cmd/capsnet-load) for schedule-anchored latency")
}

// fireOpenLoop replays a seeded constant-rate Poisson schedule through
// internal/loadgen: arrivals fire on time regardless of in-flight
// work, and each latency is measured from the request's scheduled
// arrival, so server stalls show up as the queueing delay they cause.
func fireOpenLoop(client *http.Client, addr string, bodies [][]byte, rate float64, seed int64, budget time.Duration) {
	shape := workload.Shape{Kind: workload.ShapeConstant, Rate: rate}
	schedule := shape.Schedule(float64(len(bodies))/rate, seed)
	target := &loadgen.HTTPTarget{
		Client: client,
		URL:    addr + "/v1/classify",
		Bodies: bodies,
	}
	if budget > 0 {
		target.Decorate = func(r *http.Request) { deadline.Set(r.Header, time.Now().Add(budget)) }
	}
	res := loadgen.Run(context.Background(), target, loadgen.Options{Schedule: schedule})
	fmt.Println("open-loop (coordinated-omission-safe, latency measured from scheduled arrival):")
	fmt.Println("  " + res.String())
}

// printRouterSummary renders the router tier's view of the load: how
// placement spread requests over the replicas, and what faults cost
// (retries, hedges) instead of the single-replica stage breakdown.
func printRouterSummary(metrics string) {
	fmt.Println("\nrouter /metrics (tier hit: router — placement, retries, hedges):")
	reqRe := regexp.MustCompile(`^router_replica_requests_total\{replica="([^"]+)",code="([^"]+)"\} (\d+)$`)
	type key struct{ replica, code string }
	counts := make(map[key]uint64)
	var replicas, codes []string
	seenR, seenC := map[string]bool{}, map[string]bool{}
	for _, line := range strings.Split(metrics, "\n") {
		if m := reqRe.FindStringSubmatch(line); m != nil {
			v, _ := strconv.ParseUint(m[3], 10, 64)
			counts[key{m[1], m[2]}] = v
			if !seenR[m[1]] {
				seenR[m[1]] = true
				replicas = append(replicas, m[1])
			}
			if !seenC[m[2]] {
				seenC[m[2]] = true
				codes = append(codes, m[2])
			}
			continue
		}
		if strings.HasPrefix(line, "router_retries_total") ||
			strings.HasPrefix(line, "router_hedges_total") ||
			strings.HasPrefix(line, "router_hedges_skipped_total") ||
			strings.HasPrefix(line, "router_deadline_exhausted_total") ||
			strings.HasPrefix(line, "router_replica_restarts_total") ||
			strings.HasPrefix(line, "router_request_latency_seconds_count") ||
			strings.HasPrefix(line, "router_request_latency_seconds_sum") ||
			strings.HasPrefix(line, "router_slo_") {
			fmt.Println("  " + line)
		}
	}
	sort.Strings(replicas)
	sort.Strings(codes)
	if len(replicas) == 0 {
		return
	}
	fmt.Println("\nper-replica request distribution (router_replica_requests_total):")
	fmt.Printf("  %-10s", "replica")
	for _, c := range codes {
		fmt.Printf(" %8s", c)
	}
	fmt.Println()
	for _, r := range replicas {
		fmt.Printf("  %-10s", r)
		for _, c := range codes {
			fmt.Printf(" %8d", counts[key{r, c}])
		}
		fmt.Println()
	}
}

// printFleetSummary renders the /metrics/fleet view: the exactly
// merged cross-replica latency histogram, the scrape bookkeeping, and
// a per-replica health table with the degradation columns (brownout
// level, aborted batches, expired deadlines) next to the traffic ones.
func printFleetSummary(metrics string) {
	fmt.Println("\nfleet /metrics/fleet (merged across replicas):")
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "router_fleet_") ||
			strings.HasPrefix(line, "capsnet_request_latency_seconds_sum ") ||
			strings.HasPrefix(line, "capsnet_request_latency_seconds_count ") ||
			strings.HasPrefix(line, "capsnet_request_latency_seconds_overflow_total ") {
			fmt.Println("  " + line)
		}
	}

	// Per-replica health table from the {replica}-labelled re-export.
	cols := []struct{ family, header string }{
		{"capsnet_requests_total", "requests"},
		{"capsnet_batches_total", "batches"},
		{"capsnet_brownout_level", "brownout"},
		{"capsnet_batch_aborted_total", "aborted"},
		{"capsnet_deadline_expired_total", "expired"},
	}
	repRe := regexp.MustCompile(`^(\w+)\{replica="([^"]+)"\} (\S+)$`)
	values := make(map[string]map[string]string) // replica → family → value
	var replicas []string
	for _, line := range strings.Split(metrics, "\n") {
		m := repRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if values[m[2]] == nil {
			values[m[2]] = make(map[string]string)
			replicas = append(replicas, m[2])
		}
		values[m[2]][m[1]] = m[3]
	}
	if len(replicas) == 0 {
		fmt.Println("\nno per-replica samples in the fleet exposition (all scrapes failed?)")
		return
	}
	sort.Strings(replicas)
	fmt.Println("\nper-replica health (re-exported replica /metrics):")
	fmt.Printf("  %-10s", "replica")
	for _, c := range cols {
		fmt.Printf(" %9s", c.header)
	}
	fmt.Println()
	for _, r := range replicas {
		fmt.Printf("  %-10s", r)
		for _, c := range cols {
			v := values[r][c.family]
			if v == "" {
				v = "-"
			}
			fmt.Printf(" %9s", v)
		}
		fmt.Println()
	}
}

// stageStat is one capsnet_stage_seconds family parsed from the
// exposition.
type stageStat struct {
	name       string
	count      uint64
	sum        float64
	p50, p99   float64
	totalShare float64
}

// printStageBreakdown renders the per-stage latency table from the
// capsnet_stage_seconds histograms — where a served request's time
// actually goes, the production counterpart of the paper's Figure 3
// execution-time breakdown.
func printStageBreakdown(metrics, tier string) {
	stages := parseStageStats(metrics)
	if len(stages) == 0 {
		fmt.Println("\nno stage histograms yet (is the server older than the observability layer?)")
		return
	}
	var total float64
	for _, s := range stages {
		total += s.sum
	}
	for i := range stages {
		if total > 0 {
			stages[i].totalShare = 100 * stages[i].sum / total
		}
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i].sum > stages[j].sum })

	fmt.Printf("\nper-stage latency breakdown (capsnet_stage_seconds, tier hit: %s):\n", tier)
	fmt.Printf("  %-24s %8s %12s %10s %10s %7s\n", "stage", "count", "total", "p50", "p99", "share")
	for _, s := range stages {
		fmt.Printf("  %-24s %8d %12s %10s %10s %6.1f%%\n",
			s.name, s.count, fmtSeconds(s.sum), fmtSeconds(s.p50), fmtSeconds(s.p99), s.totalShare)
	}
}

// parseStageStats extracts count/sum/quantiles for every stage label
// from the Prometheus text exposition.
func parseStageStats(metrics string) []stageStat {
	byStage := make(map[string]*stageStat)
	get := func(stage string) *stageStat {
		s, ok := byStage[stage]
		if !ok {
			s = &stageStat{name: stage}
			byStage[stage] = s
		}
		return s
	}
	stageRe := regexp.MustCompile(`^capsnet_stage_seconds(_sum|_count)?\{stage="([^"]+)"(?:,quantile="([^"]+)")?\} (\S+)$`)
	for _, line := range strings.Split(metrics, "\n") {
		m := stageRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			continue
		}
		s := get(m[2])
		switch {
		case m[1] == "_count":
			s.count = uint64(v)
		case m[1] == "_sum":
			s.sum = v
		case m[3] == "0.5":
			s.p50 = v
		case m[3] == "0.99":
			s.p99 = v
		}
	}
	out := make([]stageStat, 0, len(byStage))
	for _, s := range byStage {
		out = append(out, *s)
	}
	return out
}

// fmtSeconds renders a duration in the most readable unit.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fµs", s*1e6)
	}
}

func getJSON(client *http.Client, url string, dst any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}
