// Medical-imaging scenario (paper §1, Fig. 1): capsule networks are
// motivated by cell-classification tasks where pooling CNNs miss edge
// and pose features. This example trains a capsule network on a
// synthetic "cell image" dataset (class = cell morphology), verifies
// it learns, and then checks that deploying the routing procedure on
// PIM-CapsNet's approximated PEs — the configuration a hospital
// appliance would run — preserves the diagnosis accuracy.
package main

import (
	"fmt"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/tensor"
)

func main() {
	const morphologies = 6 // benign/malignant sub-types
	spec := dataset.Tiny(morphologies)
	spec.Name = "synthetic-cytology"
	spec.Noise = 0.08 // staining variation
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(morphologies * 40)
	test := gen.Generate(morphologies * 15)

	cfg := capsnet.TinyConfig(morphologies)
	cfg.WithDecoder = true // reconstruction for explainability review
	net, err := capsnet.New(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("training capsule classifier on synthetic cytology slides...")
	tr := capsnet.NewTrainer(net, 1.0)
	imgLen := spec.Channels * spec.H * spec.W
	n := train.Images.Dim(0)
	const batch = 24
	for ep := 0; ep < 25; ep++ {
		for s := 0; s+batch <= n; s += batch {
			img := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+batch)*imgLen],
				batch, spec.Channels, spec.H, spec.W)
			tr.TrainBatch(img, train.Labels[s:s+batch])
		}
	}

	exact := capsnet.Evaluate(net, test.Images, test.Labels, capsnet.ExactMath{})
	noRec := capsnet.Evaluate(net, test.Images, test.Labels, capsnet.NewPEMathNoRecovery())
	rec := capsnet.Evaluate(net, test.Images, test.Labels, capsnet.NewPEMath())
	fmt.Printf("diagnosis accuracy, exact GPU routing:          %.1f%%\n", 100*exact)
	fmt.Printf("diagnosis accuracy, PIM PEs without recovery:   %.1f%%\n", 100*noRec)
	fmt.Printf("diagnosis accuracy, PIM PEs with recovery:      %.1f%%\n", 100*rec)

	// Reconstruction of the predicted class capsule — the decoder
	// output a reviewer would inspect.
	out := net.Forward(test.Images, capsnet.ExactMath{})
	defer out.Release()
	pred := out.Predictions()[0]
	recon := net.Reconstruct(out, 0, pred)
	var mse float32
	for p, v := range recon {
		d := v - test.Images.Data()[p]
		mse += d * d
	}
	fmt.Printf("reconstruction MSE of first slide (class %d): %.4f\n", pred, mse/float32(len(recon)))
}
