// Autonomous-driving scenario (paper §1): street-number / traffic-sign
// style classification, where the paper's SVHN benchmarks vary the
// number of routing iterations (Caps-SV1/2/3: 3, 6, 9). This example
// sweeps routing iterations on a synthetic digit dataset and reports
// both the functional effect (accuracy) and the architectural effect
// (RP latency on GPU vs in-memory) — the latency budget is what an
// in-vehicle system actually cares about.
package main

import (
	"fmt"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/core"
	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/tensor"
	"pimcapsnet/internal/workload"
)

func main() {
	const digits = 10
	spec := dataset.Tiny(digits)
	spec.Name = "synthetic-street-digits"
	spec.Noise = 0.05
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(digits * 30)
	test := gen.Generate(digits * 10)
	imgLen := spec.Channels * spec.H * spec.W

	fmt.Println("routing-iteration sweep (functional):")
	for _, iters := range []int{1, 3, 6, 9} {
		cfg := capsnet.TinyConfig(digits)
		cfg.RoutingIterations = iters
		net, err := capsnet.New(cfg)
		if err != nil {
			panic(err)
		}
		tr := capsnet.NewTrainer(net, 1.0)
		n := train.Images.Dim(0)
		const batch = 30
		for ep := 0; ep < 20; ep++ {
			for s := 0; s+batch <= n; s += batch {
				img := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+batch)*imgLen],
					batch, spec.Channels, spec.H, spec.W)
				tr.TrainBatch(img, train.Labels[s:s+batch])
			}
		}
		acc := capsnet.Evaluate(net, test.Images, test.Labels, capsnet.ExactMath{})
		fmt.Printf("  %d iterations: accuracy %.1f%%\n", iters, 100*acc)
	}

	fmt.Println("\nrouting-iteration sweep (architectural, Caps-SV1/2/3):")
	engine := core.NewEngine()
	for _, name := range []string{"Caps-SV1", "Caps-SV2", "Caps-SV3"} {
		b, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		gpuT, _ := engine.RPGPU(b, false)
		pim := engine.RPPIM(b, core.PIMCapsNet)
		fmt.Printf("  %s (%d iters): RP on GPU %6.2f ms, in-memory %6.2f ms (%.2fx, dimension %v)\n",
			b.Name, b.Iters, gpuT*1e3, pim.Time*1e3, gpuT/pim.Time, pim.Dim)
	}
	fmt.Println("\nmore iterations deepen the GPU's bottleneck; the in-memory design")
	fmt.Println("keeps the added aggregation traffic inside the vaults.")
}
