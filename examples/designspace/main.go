// Design-space exploration: the questions an architect would ask the
// simulator beyond the paper's figures — how the distribution
// dimension, the PE clock and the vault count interact for one
// workload, and where the execution score's offline pick lands.
package main

import (
	"fmt"

	"pimcapsnet/internal/core"
	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/hmc"
	"pimcapsnet/internal/workload"
)

func main() {
	b, _ := workload.ByName("Caps-EN2") // 47 H capsules: an awkward split
	fmt.Printf("design space for %s\n\n", b)

	fmt.Println("dimension × clock (RP ms; * = execution-score pick):")
	fmt.Printf("%10s", "")
	for _, d := range distribute.Dimensions {
		fmt.Printf("%10v", d)
	}
	fmt.Println()
	for _, mhz := range []float64{312.5, 625, 937.5} {
		engine := core.NewEngine()
		engine.HMC = engine.HMC.WithClock(mhz * 1e6)
		pick := distribute.NewScorer(engine.HMC).Best(distribute.FromBenchmark(b, engine.HMC)).Dim
		fmt.Printf("%7.1fMHz", mhz)
		for _, d := range distribute.Dimensions {
			dim := d
			engine.ForceDim = &dim
			cell := fmt.Sprintf("%.2f", engine.RPPIM(b, core.PIMCapsNet).Time*1e3)
			if d == pick {
				cell += "*"
			}
			fmt.Printf("%10s", cell)
		}
		fmt.Println()
	}

	fmt.Println("\nvault scaling at 312.5 MHz (full PIM-CapsNet RP):")
	for _, vaults := range []int{8, 16, 32} {
		engine := core.NewEngine()
		cfg := hmc.DefaultConfig()
		cfg.Vaults = vaults
		// Internal bandwidth scales with TSV count.
		cfg.InternalBW = 512e9 * float64(vaults) / 32
		engine.HMC = cfg
		rp := engine.RPPIM(b, core.PIMCapsNet)
		fmt.Printf("  %2d vaults: RP %.2f ms (dimension %v)\n", vaults, rp.Time*1e3, rp.Dim)
	}

	fmt.Println("\nE/M model behind the offline pick (Table 3 parameters):")
	cfg := hmc.DefaultConfig()
	p := distribute.FromBenchmark(b, cfg)
	s := distribute.NewScorer(cfg)
	for _, c := range s.Evaluate(p) {
		fmt.Printf("  dim %v: E = %.3g ops/vault, M = %.3g bytes, score %.3g\n", c.Dim, c.E, c.M, c.Score)
	}
}
