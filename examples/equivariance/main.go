// Equivariance comparison (paper §1, Fig. 1): train a capsule network
// and a same-scale pooling-CNN baseline on upright synthetic images,
// then sweep test-time rotation. Pooling's "happenstance translational
// invariance" discards pose; capsules carry it in their activity
// vectors — the motivation for running CapsNets (and thus for
// accelerating their routing procedure) in the first place.
package main

import (
	"fmt"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/tensor"
)

func main() {
	const classes = 4
	spec := dataset.Tiny(classes)
	spec.Noise = 0.12
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(classes * 40)
	test := gen.Generate(classes * 25)

	caps, err := capsnet.New(capsnet.TinyConfig(classes))
	if err != nil {
		panic(err)
	}
	capsTr := capsnet.NewFullTrainer(caps, 0.5)
	cnn, err := capsnet.NewCNN(capsnet.TinyCNNConfig(classes))
	if err != nil {
		panic(err)
	}
	cnnTr := &capsnet.CNNTrainer{Net: cnn, LR: 0.1}

	fmt.Println("training both models on upright images...")
	imgLen := spec.Channels * spec.H * spec.W
	n := train.Images.Dim(0)
	const batch = 20
	for ep := 0; ep < 25; ep++ {
		for s := 0; s+batch <= n; s += batch {
			img := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+batch)*imgLen],
				batch, spec.Channels, spec.H, spec.W)
			capsTr.TrainBatch(img, train.Labels[s:s+batch])
			cnnTr.TrainBatch(img, train.Labels[s:s+batch])
		}
	}

	fmt.Println("\ntest-time rotation sweep:")
	fmt.Printf("%8s  %10s  %10s\n", "rotation", "CapsNet", "pool-CNN")
	for _, deg := range []float64{0, 10, 20, 30, 45, 60} {
		rotated := test.Rotated(deg)
		capsAcc := capsnet.Evaluate(caps, rotated.Images, rotated.Labels, capsnet.ExactMath{})
		cnnAcc := capsnet.EvaluateCNN(cnn, rotated.Images, rotated.Labels)
		fmt.Printf("%7.0f°  %9.1f%%  %9.1f%%\n", deg, 100*capsAcc, 100*cnnAcc)
	}
	fmt.Println("\n(capsule activity vectors carry pose; pooling discards it —")
	fmt.Println(" the gap typically widens as the pose moves away from training)")
}
