// Quickstart: build a CapsNet, run inference on synthetic data, and
// compare a Table 1 benchmark on the baseline GPU against the
// PIM-CapsNet hybrid design.
package main

import (
	"fmt"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/core"
	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/workload"
)

func main() {
	// --- 1. A functional capsule network on synthetic images. ---
	gen := dataset.NewGenerator(dataset.Tiny(4))
	ds := gen.Generate(8)

	net, err := capsnet.New(capsnet.TinyConfig(4))
	if err != nil {
		panic(err)
	}
	out := net.Forward(ds.Images, capsnet.ExactMath{})
	fmt.Println("capsule lengths of the first image (one per class):")
	for j, l := range out.Lengths.Data()[:4] {
		fmt.Printf("  class %d: %.3f\n", j, l)
	}
	fmt.Printf("predictions for 8 untrained inputs: %v\n\n", out.Predictions())
	// Hand the scratch arena back to the network's pool — the contract
	// every Forward caller owes (pimcaps-vet's releasecheck enforces it).
	out.Release()

	// --- 2. The same routing procedure, evaluated as an architecture. ---
	b, _ := workload.ByName("Caps-MN1")
	engine := core.NewEngine()

	base := engine.Inference(b, core.Baseline)
	pim := engine.Inference(b, core.PIMCapsNet)
	fmt.Printf("%s on %s:\n", b.Name, engine.GPU.Name)
	fmt.Printf("  baseline GPU:   %.3f s, %.1f J\n", base.Total, base.Energy.Total())
	fmt.Printf("  PIM-CapsNet:    %.3f s, %.1f J\n", pim.Total, pim.Energy.Total())
	fmt.Printf("  speedup %.2fx, energy saving %.1f%%\n",
		core.Speedup(base, pim), 100*core.EnergySaving(base, pim))
	fmt.Printf("  routing ran in-memory on dimension %v: exec %.2f ms, crossbar %.2f ms, VRS %.2f ms\n",
		pim.RP.Dim, pim.RP.Exec*1e3, pim.RP.Xbar*1e3, pim.RP.VRS*1e3)
}
