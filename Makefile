# Development entry points. The bench-gate pair mirrors the CI job:
# regenerate BENCH_BASELINE.json with `make bench-baseline` whenever a
# PR intentionally shifts hot-path performance, and run `make
# bench-gate` to check a working tree against it (see
# internal/benchgate for the gate rules). The load-baseline/slo-gate
# pair is its tail-latency sibling: cmd/capsnet-load spawns a replica,
# replays a seeded open-loop schedule, and internal/slogate diffs the
# run against SLO_BASELINE.json.

GO      ?= go
BENCHES  = $(GO) test -bench=. -benchtime=5x -benchmem -count=6 -run '^$$' .

# One reference operating point shared by baseline and gate so both
# always measure the same schedule (slogate rejects mismatches).
LOADFLAGS = -shape constant -rate 50 -duration 5s -seed 42 \
            -sweep 25,50,100,200 -sweep-duration 2s \
            -spawn ./capsnet-serve-bin -baseline SLO_BASELINE.json

.PHONY: build test bench bench-baseline bench-gate load-baseline slo-gate fmt vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Full static-analysis pass: the stock go vet checks plus the
# project's own invariant suite (cmd/pimcaps-vet; see DESIGN.md for
# the invariant table and the //lint:ignore suppression syntax).
lint: vet
	$(GO) run ./cmd/pimcaps-vet -stats ./...

bench:
	$(BENCHES)

bench-baseline:
	$(BENCHES) | tee BENCH_raw.txt
	$(GO) run ./cmd/pimcaps-bench -bench-input BENCH_raw.txt -baseline BENCH_BASELINE.json -update-baseline
	rm -f BENCH_raw.txt

bench-gate:
	$(BENCHES) | tee BENCH_raw.txt
	$(GO) run ./cmd/pimcaps-bench -bench-input BENCH_raw.txt -baseline BENCH_BASELINE.json -check-baseline -out BENCH_pr.json
	rm -f BENCH_raw.txt

# Regenerate SLO_BASELINE.json when a PR intentionally moves capacity
# or tail latency.
load-baseline:
	$(GO) build -o capsnet-serve-bin ./cmd/capsnet-serve
	$(GO) run ./cmd/capsnet-load $(LOADFLAGS) -update-baseline -- -demo-classes 3
	rm -f capsnet-serve-bin

# Check a working tree against the committed SLO baseline; SLO_pr.json
# is the CI artifact.
slo-gate:
	$(GO) build -o capsnet-serve-bin ./cmd/capsnet-serve
	$(GO) run ./cmd/capsnet-load $(LOADFLAGS) -check-baseline -out SLO_pr.json -- -demo-classes 3
	rm -f capsnet-serve-bin
