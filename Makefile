# Development entry points. The bench-gate pair mirrors the CI job:
# regenerate BENCH_BASELINE.json with `make bench-baseline` whenever a
# PR intentionally shifts hot-path performance, and run `make
# bench-gate` to check a working tree against it (see
# internal/benchgate for the gate rules).

GO      ?= go
BENCHES  = $(GO) test -bench=. -benchtime=5x -benchmem -count=6 -run '^$$' .

.PHONY: build test bench bench-baseline bench-gate fmt vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Full static-analysis pass: the stock go vet checks plus the
# project's own invariant suite (cmd/pimcaps-vet; see DESIGN.md for
# the invariant table and the //lint:ignore suppression syntax).
lint: vet
	$(GO) run ./cmd/pimcaps-vet ./...

bench:
	$(BENCHES)

bench-baseline:
	$(BENCHES) | tee BENCH_raw.txt
	$(GO) run ./cmd/pimcaps-bench -bench-input BENCH_raw.txt -baseline BENCH_BASELINE.json -update-baseline
	rm -f BENCH_raw.txt

bench-gate:
	$(BENCHES) | tee BENCH_raw.txt
	$(GO) run ./cmd/pimcaps-bench -bench-input BENCH_raw.txt -baseline BENCH_BASELINE.json -check-baseline -out BENCH_pr.json
	rm -f BENCH_raw.txt
