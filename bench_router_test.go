package pimcapsnet_bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pimcapsnet/internal/cluster"
)

// BenchmarkRouterThroughput measures replica-tier scaling: the same
// closed-loop client load driven through the cluster dispatcher over 1
// and over 3 real capsnet-serve subprocesses, each pinned to
// GOMAXPROCS=1 so a replica models one PIM "vault" worth of compute
// and tier scaling is visible on multicore hosts (on a single-core
// host the replicas share one CPU and the ratio collapses to ~1×;
// CI's router-smoke job runs this on multicore runners, where
// replicas3 should sustain ≥2× the replicas1 req/s).
//
// Informational only — gated behind ROUTER_BENCH=1 so the blocking
// bench-gate job and plain `go test -bench=.` never boot subprocesses.
func BenchmarkRouterThroughput(b *testing.B) {
	if os.Getenv("ROUTER_BENCH") == "" {
		b.Skip("boots replica subprocesses; set ROUTER_BENCH=1 to run (CI router-smoke job does)")
	}
	bin := filepath.Join(b.TempDir(), "capsnet-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/capsnet-serve")
	if out, err := build.CombinedOutput(); err != nil {
		b.Fatalf("building capsnet-serve: %v\n%s", err, out)
	}

	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("replicas%d", n), func(b *testing.B) {
			mgr, err := cluster.NewManager(cluster.ManagerConfig{
				Binary: bin,
				Args: []string{
					"-demo-classes", "10",
					"-max-batch", "8",
					"-queue", "1024",
					"-timeout", "1m",
				},
				Env:      []string{"GOMAXPROCS=1"},
				Replicas: n,
			})
			if err != nil {
				b.Fatal(err)
			}
			mgr.Start()
			defer mgr.Stop()
			wrCtx, wrCancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer wrCancel()
			if err := cluster.WaitReady(wrCtx, mgr, n); err != nil {
				b.Fatalf("replicas never ready: %v", err)
			}
			disp, err := cluster.NewDispatcher(cluster.DispatcherConfig{
				Pool:       mgr,
				HedgeDelay: -1, // hedges would double-count work in a throughput measurement
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(disp.Handler())
			defer ts.Close()

			var info struct {
				Channels, Height, Width int
			}
			resp, err := http.Get(ts.URL + "/v1/model")
			if err != nil {
				b.Fatal(err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			img := make([]float32, info.Channels*info.Height*info.Width)
			for i := range img {
				img[i] = float32(i%7) / 7
			}
			body, err := json.Marshal(map[string]any{"image": img})
			if err != nil {
				b.Fatal(err)
			}

			const clients = 16
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
			b.ResetTimer()
			work := make(chan struct{}, b.N)
			for i := 0; i < b.N; i++ {
				work <- struct{}{}
			}
			close(work)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						resp, err := client.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}
