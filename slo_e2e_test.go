package pimcapsnet_bench

import (
	"os/exec"
	"path/filepath"
	"testing"

	"pimcapsnet/internal/loadgen"
	"pimcapsnet/internal/slogate"
)

// TestSLOGateE2E is the capacity-harness smoke test the CI smoke=slo
// leg runs: it builds the real capsnet-serve and capsnet-load
// binaries, lets the harness spawn its own replica and replay a seeded
// open-loop schedule, writes a fresh baseline plus a report, then
// re-runs the identical replay gated against that baseline — an
// unchanged server must pass its own SLOs. The committed
// SLO_BASELINE.json is exercised separately by the blocking slo-gate
// job via `make slo-gate`; this test proves the harness end to end
// without inheriting a shared runner's noise floor.
func TestSLOGateE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots server + load binaries; skipped in -short")
	}

	dir := t.TempDir()
	serveBin := filepath.Join(dir, "capsnet-serve")
	loadBin := filepath.Join(dir, "capsnet-load")
	for _, b := range []struct{ bin, pkg string }{
		{serveBin, "./cmd/capsnet-serve"},
		{loadBin, "./cmd/capsnet-load"},
	} {
		if out, err := exec.Command("go", "build", "-o", b.bin, b.pkg).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", b.pkg, err, out)
		}
	}

	baseline := filepath.Join(dir, "SLO_BASELINE.json")
	report := filepath.Join(dir, "slo_report.json")
	common := []string{
		"-shape", "constant", "-rate", "30", "-duration", "2s",
		"-sweep", "15,30", "-sweep-duration", "1s", "-seed", "7",
		"-spawn", serveBin, "-baseline", baseline,
	}

	// First run blesses the baseline.
	args := append(append([]string{}, common...), "-update-baseline", "-out", report, "--", "-demo-classes", "3")
	if out, err := exec.Command(loadBin, args...).CombinedOutput(); err != nil {
		t.Fatalf("baseline run failed: %v\n%s", err, out)
	}

	// The report must describe a real open-loop run.
	rep, err := loadgen.LoadReport(report)
	if err != nil {
		t.Fatalf("loading report: %v", err)
	}
	if rep.Offered == 0 || rep.Availability < 0.5 {
		t.Fatalf("implausible run: offered %d, availability %g", rep.Offered, rep.Availability)
	}
	if rep.P99 <= 0 || rep.P999 < rep.P99 {
		t.Fatalf("broken quantiles: p99 %g, p999 %g", rep.P99, rep.P999)
	}
	if len(rep.Sweep) != 2 {
		t.Fatalf("sweep recorded %d points, want 2", len(rep.Sweep))
	}
	if len(rep.Stages) == 0 {
		t.Fatal("no stage decomposition: /metrics correlation is broken")
	}
	b, err := slogate.Load(baseline)
	if err != nil {
		t.Fatalf("loading written baseline: %v", err)
	}
	if b.Tolerances.MaxP99Factor <= 0 {
		t.Fatal("baseline written without explicit tolerances")
	}
	// A 2s run at 30 req/s puts ~60 requests behind the p99, so a
	// single scheduler hiccup moves it by multiples. Raise the absolute
	// floor for this smoke test: it verifies the gate machinery, not
	// this runner's noise floor (the committed SLO_BASELINE.json keeps
	// the production tolerances).
	b.Tolerances.LatencyFloor = 0.15
	if err := slogate.Save(baseline, b); err != nil {
		t.Fatal(err)
	}

	// Second run replays the same seed against the fresh baseline: an
	// unchanged server failing its own SLOs means the gate is noise,
	// not a guard.
	args = append(append([]string{}, common...), "-check-baseline", "--", "-demo-classes", "3")
	if out, err := exec.Command(loadBin, args...).CombinedOutput(); err != nil {
		t.Fatalf("gate rejected an unchanged server: %v\n%s", err, out)
	}
}
