// Package pimcapsnet_bench hosts the benchmark harness that
// regenerates every table and figure of the paper's evaluation
// (DESIGN.md §4 maps each benchmark to its experiment id). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the full experiment once per iteration and
// reports the paper's headline aggregate as a custom metric so the
// shape comparison is visible straight from the bench output.
package pimcapsnet_bench

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/core"
	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/experiments"
	"pimcapsnet/internal/gpusim"
	"pimcapsnet/internal/hmc"
	"pimcapsnet/internal/pimexec"
	"pimcapsnet/internal/serve"
	"pimcapsnet/internal/tensor"
	"pimcapsnet/internal/workload"
)

// runExperiment is the common driver: run the experiment b.N times
// and keep the table alive so the work is not optimized away.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		rows += len(t.Rows)
	}
	if rows == 0 {
		b.Fatal("experiment produced no rows")
	}
}

func BenchmarkFig04LayerBreakdown(b *testing.B)     { runExperiment(b, "fig4") }
func BenchmarkFig05StallBreakdown(b *testing.B)     { runExperiment(b, "fig5") }
func BenchmarkFig06aIntermediateRatio(b *testing.B) { runExperiment(b, "fig6a") }
func BenchmarkFig06bOnChipScaling(b *testing.B)     { runExperiment(b, "fig6b") }
func BenchmarkFig07BandwidthScaling(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig15aRPSpeedup(b *testing.B)         { runExperiment(b, "fig15a") }
func BenchmarkFig15bRPEnergy(b *testing.B)          { runExperiment(b, "fig15b") }
func BenchmarkFig16aPIMBreakdown(b *testing.B)      { runExperiment(b, "fig16a") }
func BenchmarkFig16bPIMEnergy(b *testing.B)         { runExperiment(b, "fig16b") }
func BenchmarkFig17aOverallSpeedup(b *testing.B)    { runExperiment(b, "fig17a") }
func BenchmarkFig17bOverallEnergy(b *testing.B)     { runExperiment(b, "fig17b") }
func BenchmarkFig18DimensionFrequency(b *testing.B) { runExperiment(b, "fig18") }
func BenchmarkOverheadAnalysis(b *testing.B)        { runExperiment(b, "overhead") }

// Extensions beyond the paper's figures (see DESIGN.md §4).
func BenchmarkScalingSweep(b *testing.B)    { runExperiment(b, "scaling") }
func BenchmarkEMRoutingDesign(b *testing.B) { runExperiment(b, "emrouting") }

// BenchmarkTable5Accuracy trains two synthetic accuracy proxies (the
// 12-benchmark Table 5 takes ~20 minutes; run it via
// `pimcaps-bench -exp table5`).
func BenchmarkTable5Accuracy(b *testing.B) {
	runExperiment(b, "table5quick")
}

// --- headline aggregates as reportable metrics ---

// BenchmarkHeadlineSpeedups runs the engine once per iteration and
// reports the paper's headline numbers as benchmark metrics.
func BenchmarkHeadlineSpeedups(b *testing.B) {
	e := core.NewEngine()
	var rpSpeedup, overall, saving float64
	for i := 0; i < b.N; i++ {
		rpSpeedup, overall, saving = 0, 0, 0
		for _, bench := range workload.Benchmarks {
			gpuT, _ := e.RPGPU(bench, false)
			rpSpeedup += gpuT / e.RPPIM(bench, core.PIMCapsNet).Time
			base := e.Inference(bench, core.Baseline)
			pim := e.Inference(bench, core.PIMCapsNet)
			overall += core.Speedup(base, pim)
			saving += core.EnergySaving(base, pim)
		}
	}
	n := float64(len(workload.Benchmarks))
	b.ReportMetric(rpSpeedup/n, "rp-speedup(paper:2.17)")
	b.ReportMetric(overall/n, "overall-speedup(paper:2.44)")
	b.ReportMetric(100*saving/n, "%energy-saving(paper:64.91)")
}

// --- micro-benchmarks of the functional substrate ---

// BenchmarkDynamicRoutingMNIST routes one real CapsNet-MNIST-sized
// batch slice (8 inputs of the 1152×10 capsule topology) through the
// actual dynamic routing kernel.
func BenchmarkDynamicRoutingMNIST(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	preds := tensor.New(8, 1152, 10, 16)
	for i := range preds.Data() {
		preds.Data()[i] = float32(rng.NormFloat64()) * 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		capsnet.DynamicRouting(preds, 3, capsnet.ExactMath{})
	}
}

// BenchmarkDynamicRoutingPEMath measures the PE-approximated numerics
// on the same workload.
func BenchmarkDynamicRoutingPEMath(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	preds := tensor.New(8, 1152, 10, 16)
	for i := range preds.Data() {
		preds.Data()[i] = float32(rng.NormFloat64()) * 0.1
	}
	m := capsnet.NewPEMath()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		capsnet.DynamicRouting(preds, 3, m)
	}
}

// BenchmarkPredictionVectors measures Eq. 1 at MNIST scale for a
// one-image batch.
func BenchmarkPredictionVectors(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	u := tensor.New(1, 1152, 8)
	for i := range u.Data() {
		u.Data()[i] = float32(rng.NormFloat64())
	}
	w := tensor.New(1152, 10, 8, 16)
	for i := range w.Data() {
		w.Data()[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		capsnet.PredictionVectors(u, w)
	}
}

// BenchmarkNetworkForward measures a full tiny-network forward pass.
func BenchmarkNetworkForward(b *testing.B) {
	net, err := capsnet.New(capsnet.TinyConfig(10))
	if err != nil {
		b.Fatal(err)
	}
	batch := tensor.New(16, 1, 12, 12)
	rng := rand.New(rand.NewSource(3))
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(batch, capsnet.ExactMath{})
	}
}

// BenchmarkForwardArenaSteady measures the steady-state serving
// regime: each pass releases its Output back to the network's scratch
// pool, so after warmup the forward path reuses one arena and performs
// zero heap allocations (-benchmem should report 0 allocs/op; the CI
// bench gate pins that). BenchmarkNetworkForward, which never
// releases, is the fresh-buffers-per-call comparison.
func BenchmarkForwardArenaSteady(b *testing.B) {
	net, err := capsnet.New(capsnet.TinyConfig(10))
	if err != nil {
		b.Fatal(err)
	}
	batch := tensor.New(16, 1, 12, 12)
	rng := rand.New(rand.NewSource(3))
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	net.Forward(batch, capsnet.ExactMath{}).Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(batch, capsnet.ExactMath{}).Release()
	}
}

// BenchmarkGPUModel measures the analytical GPU model's evaluation
// cost over the full suite.
func BenchmarkGPUModel(b *testing.B) {
	d := gpusim.TeslaP100()
	for i := 0; i < b.N; i++ {
		for _, bench := range workload.Benchmarks {
			d.Run(bench)
		}
	}
}

// BenchmarkPIMExecutor measures the functional/timing co-simulator on
// a scaled routing problem.
func BenchmarkPIMExecutor(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	preds := tensor.New(4, 96, 10, 16)
	for i := range preds.Data() {
		preds.Data()[i] = float32(rng.NormFloat64()) * 0.1
	}
	x := pimexec.New(distribute.DimH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Run(preds, 3)
	}
}

// BenchmarkVaultSimWindow and BenchmarkVaultSimDES compare the two
// vault simulators' own costs.
func BenchmarkVaultSimWindow(b *testing.B) {
	cfg := hmc.DefaultConfig()
	m := hmc.CustomMapping{Cfg: cfg}
	p := hmc.StridedItemPattern(cfg, m, 0, cfg.PEsPerVault, 64, 64, m.VaultBase(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmc.SimulateVault(cfg, p)
	}
}

func BenchmarkVaultSimDES(b *testing.B) {
	cfg := hmc.DefaultConfig()
	m := hmc.CustomMapping{Cfg: cfg}
	p := hmc.StridedItemPattern(cfg, m, 0, cfg.PEsPerVault, 64, 64, m.VaultBase(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hmc.SimulateVaultDES(cfg, p)
	}
}

// BenchmarkFullTrainerStep measures one end-to-end training step
// (forward + backward + update) on the tiny architecture.
func BenchmarkFullTrainerStep(b *testing.B) {
	net, err := capsnet.New(capsnet.TinyConfig(5))
	if err != nil {
		b.Fatal(err)
	}
	tr := capsnet.NewFullTrainer(net, 0.1)
	rng := rand.New(rand.NewSource(5))
	batch := tensor.New(20, 1, 12, 12)
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	labels := make([]int, 20)
	for i := range labels {
		labels[i] = i % 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainBatch(batch, labels)
	}
}

// --- serving-path benchmarks ---

// BenchmarkServeThroughput compares serving throughput with
// micro-batching disabled (max-batch 1) and enabled (max-batch 8) on
// Caps-MN1-sized inputs (28×28×1), with 16 concurrent HTTP clients.
// The model mirrors the paper's §1 bottleneck profile — a light conv
// front end feeding a large routed capsule layer, so the routing
// procedure dominates inference as it does for the paper's GPU
// baseline (74.6%) — which is the regime where sharing a forward pass
// across requests pays. This is the serving-path perf baseline for
// future PRs: the req/s metric of the microbatch8 case should stay
// measurably above batch1 (batched PredictionVectors streams the W_ij
// tensor once per batch instead of once per request; on multi-core
// hosts parallelFor additionally fans the batch out over GOMAXPROCS).
func BenchmarkServeThroughput(b *testing.B) {
	cfg := capsnet.Config{
		InputChannels: 1, InputH: 28, InputW: 28,
		ConvChannels: 8, ConvKernel: 5, ConvStride: 1,
		PrimaryChannels: 32, PrimaryDim: 8, PrimaryKernel: 3, PrimaryStride: 2,
		Classes: 10, DigitDim: 16, RoutingIterations: 3,
		Seed: 1,
	}
	net, err := capsnet.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	img := make([]float32, net.ImageLen())
	for i := range img {
		img[i] = float32(rng.Float64())
	}
	body, err := json.Marshal(serve.ClassifyRequest{Image: img})
	if err != nil {
		b.Fatal(err)
	}

	const clients = 16
	for _, mode := range []struct {
		name     string
		maxBatch int
	}{
		{"batch1", 1},
		{"microbatch8", 8},
	} {
		b.Run(mode.name, func(b *testing.B) {
			srv, err := serve.New(net, capsnet.ExactMath{}, serve.Config{
				MaxBatch: mode.maxBatch,
				// Generous fill window so saturated batches actually
				// reach MaxBatch; with eager clients the batch fills
				// long before the timer fires.
				MaxDelay:       20 * time.Millisecond,
				QueueSize:      1024,
				RequestTimeout: time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			// The default transport keeps only two idle connections
			// per host; with 16 concurrent clients that means constant
			// TCP churn, which drowns the signal on small runs.
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
			b.ResetTimer()
			work := make(chan struct{}, b.N)
			for i := 0; i < b.N; i++ {
				work <- struct{}{}
			}
			close(work)
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range work {
						resp, err := client.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			ts.Close()
			srv.Close(context.Background())
		})
	}
}
