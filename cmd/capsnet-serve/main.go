// Command capsnet-serve is the batching inference server: it loads a
// CapsNet checkpoint (written by capsnet-infer -save) and serves
// classification over HTTP, micro-batching concurrent requests so the
// routing procedure's softmax/squash work is shared across a batch —
// the software analogue of PIM-CapsNet's batch-shared Alg. 1 and its
// host/HMC pipelining.
//
// Endpoints:
//
//	POST /v1/classify  {"image":[...C·H·W floats...]} → class, probs, poses
//	GET  /v1/model     input geometry and routing config
//	GET  /healthz      process liveness (always 200)
//	GET  /readyz       traffic readiness (503 while draining)
//	GET  /metrics      text exposition: request/latency/batch histograms
//
// Usage:
//
//	capsnet-serve -checkpoint net.gob [-addr :8080] [-max-batch 8]
//	              [-max-delay 2ms] [-queue 64] [-timeout 5s] [-math exact]
//	capsnet-serve -demo-classes 5    # seeded untrained demo network
//
// SIGTERM/SIGINT trigger graceful shutdown: readiness flips to 503,
// open connections and queued batches drain, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	checkpoint := flag.String("checkpoint", "", "CapsNet checkpoint to serve (from capsnet-infer -save)")
	demoClasses := flag.Int("demo-classes", 0, "serve a seeded untrained TinyConfig network with this many classes instead of a checkpoint")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "micro-batch size cap")
	maxDelay := flag.Duration("max-delay", serve.DefaultMaxDelay, "max wait for a partial batch to fill")
	queueSize := flag.Int("queue", serve.DefaultQueueSize, "admission queue bound (backpressure beyond this)")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline")
	drain := flag.Duration("drain-timeout", serve.DefaultDrainTimeout, "graceful-shutdown drain bound")
	batchDeadline := flag.Duration("batch-deadline", serve.DefaultBatchDeadline, "watchdog bound on one batch's inference (stalled batches are failed, not queued behind)")
	mathName := flag.String("math", "exact", "routing numerics: exact | pe | pe-norecovery")
	flag.Parse()

	// Metrics exist before the model loads so checkpoint rejections
	// land on the same /metrics endpoint the server exposes.
	metrics := serve.NewMetrics()
	net, err := loadNetwork(*checkpoint, *demoClasses, metrics)
	if err != nil {
		log.Fatalf("capsnet-serve: %v", err)
	}
	mathOps, err := routingMath(*mathName)
	if err != nil {
		log.Fatalf("capsnet-serve: %v", err)
	}

	srv, err := serve.NewWithMetrics(net, mathOps, serve.Config{
		MaxBatch:       *maxBatch,
		MaxDelay:       *maxDelay,
		QueueSize:      *queueSize,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		BatchDeadline:  *batchDeadline,
	}, metrics)
	if err != nil {
		log.Fatalf("capsnet-serve: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	cfg := net.Config
	log.Printf("serving %dx%dx%d → %d classes (%s routing, %d iterations) on %s, max-batch %d, max-delay %v",
		cfg.InputChannels, cfg.InputH, cfg.InputW, cfg.Classes, net.Digit.Mode, cfg.RoutingIterations,
		*addr, *maxBatch, *maxDelay)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v, draining...", s)
	case err := <-errCh:
		log.Fatalf("capsnet-serve: %v", err)
	}

	// Graceful shutdown: stop advertising readiness, stop accepting
	// connections and wait for in-flight handlers, then drain the
	// batcher.
	srv.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("batcher drain: %v", err)
	}
	log.Printf("drained, exiting")
}

// loadNetwork opens and verifies the checkpoint (corrupt files are
// rejected with a typed error and counted in m), or builds the seeded
// demo network when -demo-classes is set.
func loadNetwork(checkpoint string, demoClasses int, m *serve.Metrics) (*capsnet.Network, error) {
	switch {
	case checkpoint != "" && demoClasses > 0:
		return nil, errors.New("use either -checkpoint or -demo-classes, not both")
	case checkpoint != "":
		return serve.LoadCheckpoint(checkpoint, m)
	case demoClasses > 0:
		return capsnet.New(capsnet.TinyConfig(demoClasses))
	default:
		return nil, errors.New("need -checkpoint (see capsnet-infer -save) or -demo-classes")
	}
}

func routingMath(name string) (capsnet.RoutingMath, error) {
	switch name {
	case "exact":
		return capsnet.ExactMath{}, nil
	case "pe":
		return capsnet.NewPEMath(), nil
	case "pe-norecovery":
		return capsnet.NewPEMathNoRecovery(), nil
	}
	return nil, fmt.Errorf("unknown -math %q (want exact, pe, or pe-norecovery)", name)
}
