// Command capsnet-serve is the batching inference server: it loads a
// CapsNet checkpoint (written by capsnet-infer -save) and serves
// classification over HTTP, micro-batching concurrent requests so the
// routing procedure's softmax/squash work is shared across a batch —
// the software analogue of PIM-CapsNet's batch-shared Alg. 1 and its
// host/HMC pipelining.
//
// Endpoints:
//
//	POST /v1/classify           {"image":[...C·H·W floats...]} → class, probs, poses
//	GET  /v1/model              input geometry and routing config
//	GET  /healthz               process liveness (always 200)
//	GET  /readyz                traffic readiness (503 while draining)
//	GET  /metrics               text exposition: request/latency/batch/stage histograms,
//	                            queue-wait and routing-iteration histograms, runtime gauges
//	GET  /debug/requests/trace  sampled request timelines as Chrome trace JSON
//	                            (?last=N; ?trace=<id>[&format=spans] for one request)
//	GET  /debug/requests/flight tail-sampled flight recorder: bad requests (5xx, slow,
//	                            brownout, aborted batch) pinned with full span sets
//	GET  /debug/pprof/          Go profiling (profile, heap, goroutine, trace, ...)
//
// Every response carries an X-Trace-Id header; with -log-format json
// each request logs one structured record carrying the same ID, and
// with -trace-sample > 0 sampled requests additionally record a full
// span timeline (admission → queue wait → batch assembly → conv →
// primary caps → prediction vectors → each routing iteration → encode)
// retrievable from /debug/requests/trace and written to -trace-out at
// shutdown.
//
// Usage:
//
//	capsnet-serve -checkpoint net.gob [-addr :8080] [-max-batch 8]
//	              [-max-delay 2ms] [-queue 64] [-timeout 5s] [-math exact]
//	              [-log-level info] [-log-format text|json]
//	              [-trace-sample 0.1] [-trace-buffer 256] [-trace-out run.json]
//	capsnet-serve -demo-classes 5    # seeded untrained demo network
//
// Chaos drills (used by the capsnet-router e2e): -chaos-stall 2s
// stalls the first -chaos-stall-arm batches before inference, and
// -chaos-corrupt 4 poisons images of the first -chaos-corrupt-arm
// batches with seeded non-finite values (-chaos-seed for replay).
//
// SIGTERM/SIGINT trigger graceful shutdown: readiness flips to 503,
// open connections and queued batches drain, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/fault"
	"pimcapsnet/internal/obs"
	"pimcapsnet/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	checkpoint := flag.String("checkpoint", "", "CapsNet checkpoint to serve (from capsnet-infer -save)")
	demoClasses := flag.Int("demo-classes", 0, "serve a seeded untrained TinyConfig network with this many classes instead of a checkpoint")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "micro-batch size cap")
	maxDelay := flag.Duration("max-delay", serve.DefaultMaxDelay, "max wait for a partial batch to fill")
	queueSize := flag.Int("queue", serve.DefaultQueueSize, "admission queue bound (backpressure beyond this)")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request deadline")
	drain := flag.Duration("drain-timeout", serve.DefaultDrainTimeout, "graceful-shutdown drain bound")
	batchDeadline := flag.Duration("batch-deadline", serve.DefaultBatchDeadline, "watchdog bound on one batch's inference (stalled batches are failed, not queued behind)")
	mathName := flag.String("math", "exact", "routing numerics: exact | pe | pe-norecovery")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests to record full span timelines for (0 disables, 1 records all)")
	traceBuffer := flag.Int("trace-buffer", obs.DefaultTraceBuffer, "completed request traces retained for /debug/requests/trace")
	traceOut := flag.String("trace-out", "", "write the retained request traces as Chrome trace JSON here at shutdown")
	flightBuffer := flag.Int("flight-buffer", obs.DefaultFlightBuffer, "flight-recorder capacity: bad requests (5xx, slow, brownout, aborted batch) pinned with full span sets at /debug/requests/flight (0 disables)")
	slowThreshold := flag.Duration("slow-threshold", 0, "pin requests slower than this end-to-end in the flight recorder (0 disables the slow trigger)")
	chaosStall := flag.Duration("chaos-stall", 0, "CHAOS: stall armed batches this long before inference (0 disables)")
	chaosStallArm := flag.Int("chaos-stall-arm", 1, "CHAOS: how many batches -chaos-stall fires on")
	chaosCorrupt := flag.Int("chaos-corrupt", 0, "CHAOS: non-finite values injected per image on armed batches (0 disables)")
	chaosCorruptArm := flag.Int("chaos-corrupt-arm", 1, "CHAOS: how many batches -chaos-corrupt fires on")
	chaosSeed := flag.Int64("chaos-seed", 1, "CHAOS: fault-injection seed (logged for replay)")
	chaosPressure := flag.Duration("chaos-pressure", 0, "CHAOS: minimum per-batch delay for armed batches, creating queue pressure (0 disables)")
	chaosPressureMax := flag.Duration("chaos-pressure-max", 0, "CHAOS: maximum per-batch pressure delay (defaults to -chaos-pressure: a fixed delay)")
	chaosPressureArm := flag.Int("chaos-pressure-arm", 1, "CHAOS: how many batches -chaos-pressure fires on")
	brownout := flag.Bool("brownout", false, "enable the adaptive-fidelity brownout controller (shed routing iterations under sustained queue pressure)")
	brownoutEngage := flag.Duration("brownout-engage", 25*time.Millisecond, "queue wait at/above which brownout reads overload pressure")
	brownoutRecover := flag.Duration("brownout-recover", 2*time.Millisecond, "queue wait at/below which brownout reads calm (must be below -brownout-engage)")
	brownoutHold := flag.Duration("brownout-hold", 250*time.Millisecond, "sustained signal needed per brownout level step (up or down)")
	brownoutApprox := flag.Bool("brownout-approx", false, "add a final brownout level that switches routing to the approximate fp32 PE math")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capsnet-serve: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("error", err.Error()))
		os.Exit(1)
	}

	// Metrics exist before the model loads so checkpoint rejections
	// land on the same /metrics endpoint the server exposes.
	metrics := serve.NewMetrics()
	network, err := loadNetwork(*checkpoint, *demoClasses, metrics)
	if err != nil {
		fatal("loading network", err)
	}
	mathOps, err := routingMath(*mathName)
	if err != nil {
		fatal("selecting routing math", err)
	}

	srv, err := serve.NewWithMetrics(network, mathOps, serve.Config{
		MaxBatch:       *maxBatch,
		MaxDelay:       *maxDelay,
		QueueSize:      *queueSize,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		BatchDeadline:  *batchDeadline,
		TraceSample:    *traceSample,
		TraceBuffer:    *traceBuffer,
		FlightBuffer:   *flightBuffer,
		SlowThreshold:  *slowThreshold,
		Logger:         logger,
		Brownout: serve.BrownoutConfig{
			Enabled:          *brownout,
			EngageThreshold:  *brownoutEngage,
			RecoverThreshold: *brownoutRecover,
			Hold:             *brownoutHold,
			AllowApprox:      *brownoutApprox,
		},
		PreRunHook: chaosHook(logger, *chaosSeed, *chaosStall, *chaosStallArm, *chaosCorrupt, *chaosCorruptArm,
			*chaosPressure, *chaosPressureMax, *chaosPressureArm),
	}, metrics)
	if err != nil {
		fatal("building server", err)
	}

	// Listen explicitly (rather than ListenAndServe) so the bound
	// address is known before serving starts — with -addr :0 the chosen
	// port is in the startup log line, which the e2e smoke test parses.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listening", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	cfg := network.Config
	logger.Info("serving",
		slog.String("addr", ln.Addr().String()),
		slog.String("input", fmt.Sprintf("%dx%dx%d", cfg.InputChannels, cfg.InputH, cfg.InputW)),
		slog.Int("classes", cfg.Classes),
		slog.String("routing_mode", network.Digit.Mode.String()),
		slog.Int("routing_iterations", cfg.RoutingIterations),
		slog.Int("max_batch", *maxBatch),
		slog.Duration("max_delay", *maxDelay),
		slog.Float64("trace_sample", *traceSample),
	)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("draining", slog.String("signal", s.String()))
	case err := <-errCh:
		fatal("http server", err)
	}

	// Graceful shutdown: stop advertising readiness, stop accepting
	// connections and wait for in-flight handlers, then drain the
	// batcher.
	srv.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", slog.String("error", err.Error()))
	}
	if err := srv.Close(ctx); err != nil {
		logger.Warn("batcher drain", slog.String("error", err.Error()))
	}
	if *traceOut != "" {
		if err := exportTraces(srv, *traceBuffer, *traceOut); err != nil {
			logger.Warn("writing trace file", slog.String("error", err.Error()))
		} else {
			logger.Info("wrote request traces", slog.String("path", *traceOut),
				slog.Uint64("completed_traces", srv.Tracer().Completed()))
		}
	}
	logger.Info("drained, exiting")
}

// chaosHook assembles the -chaos-* fault-injection hooks (armed at
// startup, seeded for replay) into one serve.Config.PreRunHook, or nil
// when no chaos flag is set — the zero-cost default. Chaos drills and
// the router e2e use these to make a replica stall or corrupt its
// first batches while the tier above must keep clients whole.
func chaosHook(logger *slog.Logger, seed int64, stall time.Duration, stallArm int, corrupt, corruptArm int,
	pressure, pressureMax time.Duration, pressureArm int) func([][]float32) {
	var hooks []fault.BatchHook
	if stall > 0 {
		g := &fault.Gate{}
		g.Arm(stallArm)
		hooks = append(hooks, fault.StallBatchHook(g, stall))
	}
	if corrupt > 0 {
		g := &fault.Gate{}
		g.Arm(corruptArm)
		hooks = append(hooks, fault.CorruptBatchHook(fault.New(seed), g, corrupt))
	}
	if pressure > 0 {
		if pressureMax < pressure {
			pressureMax = pressure
		}
		g := &fault.Gate{}
		g.Arm(pressureArm)
		hooks = append(hooks, fault.PressureBatchHook(fault.New(seed), g, pressure, pressureMax))
	}
	if len(hooks) == 0 {
		return nil
	}
	logger.Warn("chaos hooks armed",
		slog.Int64("seed", seed),
		slog.Duration("stall", stall), slog.Int("stall_arm", stallArm),
		slog.Int("corrupt", corrupt), slog.Int("corrupt_arm", corruptArm),
		slog.Duration("pressure", pressure), slog.Duration("pressure_max", pressureMax),
		slog.Int("pressure_arm", pressureArm))
	return fault.ChainBatchHooks(hooks...)
}

// buildLogger constructs the process logger from the -log-level and
// -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}

// exportTraces writes the retained request timelines as a Chrome
// trace-event JSON file (load it in Perfetto or chrome://tracing):
// the sampled ring plus any flight-recorder pins not already in it,
// so the shutdown dump always contains the bad requests.
func exportTraces(srv *serve.Server, bufferSize int, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tr := srv.Tracer()
	traces := tr.Last(bufferSize)
	if fl := srv.Flight(); fl != nil {
		traces = append(traces, fl.Traces(traces)...)
	}
	if err := obs.WriteChromeTrace(f, traces, tr.Epoch()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadNetwork opens and verifies the checkpoint (corrupt files are
// rejected with a typed error and counted in m), or builds the seeded
// demo network when -demo-classes is set.
func loadNetwork(checkpoint string, demoClasses int, m *serve.Metrics) (*capsnet.Network, error) {
	switch {
	case checkpoint != "" && demoClasses > 0:
		return nil, errors.New("use either -checkpoint or -demo-classes, not both")
	case checkpoint != "":
		return serve.LoadCheckpoint(checkpoint, m)
	case demoClasses > 0:
		return capsnet.New(capsnet.TinyConfig(demoClasses))
	default:
		return nil, errors.New("need -checkpoint (see capsnet-infer -save) or -demo-classes")
	}
}

func routingMath(name string) (capsnet.RoutingMath, error) {
	switch name {
	case "exact":
		return capsnet.ExactMath{}, nil
	case "pe":
		return capsnet.NewPEMath(), nil
	case "pe-norecovery":
		return capsnet.NewPEMathNoRecovery(), nil
	}
	return nil, fmt.Errorf("unknown -math %q (want exact, pe, or pe-norecovery)", name)
}
