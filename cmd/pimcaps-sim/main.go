// Command pimcaps-sim evaluates a single CapsNet benchmark under a
// chosen PIM-CapsNet design point and prints the timing and energy
// model's full decomposition.
//
// Usage:
//
//	pimcaps-sim -bench Caps-MN1 -design PIM-CapsNet [-clock 625] [-dim H]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pimcapsnet/internal/core"
	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/workload"
)

func main() {
	benchName := flag.String("bench", "Caps-MN1", "Table 1 benchmark name")
	designName := flag.String("design", "PIM-CapsNet", "design point (Baseline, GPU-ICP, PIM-CapsNet, PIM-Intra, PIM-Inter, RMAS-PIM, RMAS-GPU, All-in-PIM)")
	clockMHz := flag.Float64("clock", 312.5, "HMC logic clock in MHz (Fig. 18 sweep: 312.5, 625, 937.5)")
	dimName := flag.String("dim", "", "force distribution dimension (B, L or H; default: execution-score pick)")
	highFi := flag.Bool("des", false, "use the event-driven vault model instead of the fast window model")
	flag.Parse()

	b, err := workload.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "available benchmarks:")
		for _, x := range workload.Benchmarks {
			fmt.Fprintf(os.Stderr, "  %s\n", x)
		}
		os.Exit(1)
	}

	var design core.Design
	found := false
	for _, d := range core.Designs {
		if strings.EqualFold(d.String(), *designName) {
			design, found = d, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *designName)
		os.Exit(1)
	}

	e := core.NewEngine()
	e.HMC = e.HMC.WithClock(*clockMHz * 1e6)
	e.HighFidelity = *highFi
	switch strings.ToUpper(*dimName) {
	case "":
	case "B":
		d := distribute.DimB
		e.ForceDim = &d
	case "L":
		d := distribute.DimL
		e.ForceDim = &d
	case "H":
		d := distribute.DimH
		e.ForceDim = &d
	default:
		fmt.Fprintf(os.Stderr, "unknown dimension %q (want B, L or H)\n", *dimName)
		os.Exit(1)
	}

	fmt.Printf("benchmark: %s on %s\n", b, e.GPU)
	fmt.Printf("design:    %s (HMC @ %.1f MHz, %d vaults × %d PEs)\n\n",
		design, e.HMC.ClockHz/1e6, e.HMC.Vaults, e.HMC.PEsPerVault)

	base := e.Inference(b, core.Baseline)
	res := e.Inference(b, design)
	fmt.Printf("per-batch host stage:   %8.3f ms\n", res.HostBatch*1e3)
	fmt.Printf("per-batch device stage: %8.3f ms\n", res.DeviceBatch*1e3)
	fmt.Printf("run total (%d batches): %8.3f s  (baseline %.3f s, speedup %.2fx)\n",
		res.Batches, res.Total, base.Total, core.Speedup(base, res))
	eng := res.Energy
	fmt.Printf("energy: total %.2f J (static %.2f, compute %.2f, dram %.2f, xbar %.2f, ext %.2f)\n",
		eng.Total(), eng.Static, eng.Compute, eng.DRAM, eng.Crossbar, eng.External)
	fmt.Printf("energy saving vs baseline: %.1f%%\n", 100*core.EnergySaving(base, res))

	if design != core.Baseline && design != core.GPUICP {
		rp := res.RP
		fmt.Printf("\nrouting procedure in HMC (dimension %v):\n", rp.Dim)
		fmt.Printf("  exec %.3f ms | VRS %.3f ms | crossbar %.3f ms | total %.3f ms\n",
			rp.Exec*1e3, rp.VRS*1e3, rp.Xbar*1e3, rp.Time*1e3)
		fmt.Printf("  PE ops %.3g | DRAM bytes %.3g\n", rp.PEOps, rp.DRAMBytes)
		gpuT, _ := e.RPGPU(b, false)
		fmt.Printf("  RP-only speedup vs GPU: %.2fx\n", gpuT/rp.Time)
	}
}
