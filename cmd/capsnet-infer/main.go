// Command capsnet-infer demonstrates the functional CapsNet library:
// it trains a small capsule network on a seeded synthetic dataset and
// compares classification accuracy under exact host numerics and the
// PIM-CapsNet processing-element approximations, with and without the
// accuracy-recovery multiply (the mechanism behind the paper's
// Table 5).
//
// Usage:
//
//	capsnet-infer [-classes 5] [-iters 3] [-epochs 25] [-samples 30]
//	              [-trace-out eval.json]
//
// With -trace-out, the exact-math evaluation pass is stage-timed (conv,
// PrimaryCaps, prediction vectors, each routing iteration, ...) and the
// timeline written as Chrome trace-event JSON — load it in Perfetto to
// see the inference Gantt chart the paper's Figure 3 breakdown
// corresponds to.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/obs"
	"pimcapsnet/internal/tensor"
)

func main() {
	classes := flag.Int("classes", 5, "number of synthetic classes")
	iters := flag.Int("iters", 3, "dynamic routing iterations")
	epochs := flag.Int("epochs", 25, "training epochs")
	perClass := flag.Int("samples", 30, "training samples per class")
	savePath := flag.String("save", "", "write the trained network checkpoint here")
	loadPath := flag.String("load", "", "load a checkpoint instead of training")
	traceOut := flag.String("trace-out", "", "write a stage-timed Chrome trace of the exact-math evaluation here")
	flag.Parse()

	spec := dataset.Tiny(*classes)
	spec.Noise = 0.05
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(*classes * *perClass)
	test := gen.Generate(*classes * 10)

	cfg := capsnet.TinyConfig(*classes)
	cfg.RoutingIterations = *iters
	var net *capsnet.Network
	var err error
	if *loadPath != "" {
		net, err = capsnet.LoadFile(*loadPath)
		if err != nil {
			panic(err)
		}
		cfg = net.Config
		fmt.Printf("loaded checkpoint %s\n", *loadPath)
	} else {
		net, err = capsnet.New(cfg)
		if err != nil {
			panic(err)
		}
	}
	fmt.Printf("CapsNet: %dx%d input → %d conv ch → %d primary caps (%dD) → %d class caps (%dD), %d routing iterations\n",
		cfg.InputH, cfg.InputW, cfg.ConvChannels, net.NumPrimaryCaps(), cfg.PrimaryDim,
		cfg.Classes, cfg.DigitDim, cfg.RoutingIterations)

	tr := capsnet.NewTrainer(net, 1.0)
	imgLen := spec.Channels * spec.H * spec.W
	n := train.Images.Dim(0)
	batch := 4 * *classes
	if batch > n {
		batch = n
	}
	if *loadPath != "" {
		*epochs = 0 // checkpoint already trained
	}
	for ep := 0; ep < *epochs; ep++ {
		var loss float32
		steps := 0
		for s := 0; s+batch <= n; s += batch {
			img := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+batch)*imgLen],
				batch, spec.Channels, spec.H, spec.W)
			l, _ := tr.TrainBatch(img, train.Labels[s:s+batch])
			loss += l
			steps++
		}
		if ep%5 == 0 || ep == *epochs-1 {
			fmt.Printf("epoch %2d  margin loss %.4f\n", ep, loss/float32(steps))
		}
	}

	fmt.Println()
	// With -trace-out, stage-time the exact-math evaluation: all
	// forward-pass stages land on one timeline written as Chrome trace
	// JSON afterwards.
	var evalTrace *obs.Trace
	if *traceOut != "" {
		evalTrace = &obs.Trace{ID: "eval-exact", Start: time.Now()}
		rec := obs.NewStageRecorder(nil, nil)
		rec.SetCurrent(evalTrace)
		net.Stages = rec
	}
	fmt.Printf("test accuracy, exact FP32 routing:        %.2f%%\n",
		100*capsnet.Evaluate(net, test.Images, test.Labels, capsnet.ExactMath{}))
	if evalTrace != nil {
		net.Stages = nil // approx-math passes below stay untimed
		if err := writeTrace(*traceOut, evalTrace); err != nil {
			fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote evaluation stage trace to %s (%d spans)\n", *traceOut, len(evalTrace.Spans()))
	}
	fmt.Printf("test accuracy, PE approx (no recovery):   %.2f%%\n",
		100*capsnet.Evaluate(net, test.Images, test.Labels, capsnet.NewPEMathNoRecovery()))
	fmt.Printf("test accuracy, PE approx (with recovery): %.2f%%\n",
		100*capsnet.Evaluate(net, test.Images, test.Labels, capsnet.NewPEMath()))

	if *savePath != "" {
		// SaveFile is crash-safe: temp file + fsync + rename, so an
		// interrupted save never leaves a torn checkpoint at the path.
		if err := net.SaveFile(*savePath); err != nil {
			panic(err)
		}
		fmt.Printf("saved checkpoint to %s\n", *savePath)
	}
}

// writeTrace exports one stage timeline as Chrome trace-event JSON.
func writeTrace(path string, t *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, []*obs.Trace{t}, t.Start); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
