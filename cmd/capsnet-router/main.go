// Command capsnet-router is the sharded replica tier: it spawns N
// capsnet-serve replicas as subprocesses, supervises them through
// their lifecycle (spawn → wait /readyz → serve → drain →
// restart-on-crash with exponential backoff), probes their
// machine-readable /readyz load bodies, and routes classify traffic
// across them with the paper's inter-vault placement score
// S = 1/(αE + βM) generalized to replicas (see DESIGN.md §8):
// consistent-hash affinity while loads are even, least-loaded spill
// when a request's home replica falls behind.
//
// Endpoints:
//
//	POST /v1/classify   routed to a replica with retry + hedging budgets
//	GET  /v1/model      proxied from a ready replica
//	GET  /v1/replicas   fleet snapshot: URLs, PIDs, restarts, load
//	GET  /healthz       router process liveness
//	GET  /readyz        503 until at least one replica is ready
//	GET  /metrics       router_replica_requests_total{replica,code},
//	                    router_retries_total, router_hedges_total,
//	                    per-replica ready/restart/load gauges, latency,
//	                    rolling SLO gauges (availability, p99, burn rate)
//	GET  /metrics/fleet every replica's /metrics re-exported with a
//	                    {replica} label plus exactly merged histograms
//	GET  /debug/requests/trace   router-side request timelines (Chrome trace JSON)
//	GET  /debug/requests/flight  tail-sampled flight recorder (5xx, 504, slow)
//	GET  /debug/trace/fleet?trace=<id>  one request's spans merged across the
//	                    router and every replica into a single Chrome trace
//	                    with per-process tracks (router, replica-0..N)
//
// Replica flags go after "--": everything following the separator is
// passed to every capsnet-serve verbatim (the router appends its own
// -addr 127.0.0.1:0 -log-format json so it can parse the bound port).
//
// Usage:
//
//	capsnet-router -replicas 3 [-addr :8090] [-serve-bin capsnet-serve]
//	               [-retries 4] [-hedge-delay 500ms] [-hedges 1]
//	               [-move-penalty 2] [-alpha 1] [-beta 1]
//	               -- -demo-classes 5 -max-batch 8
//
// SIGTERM/SIGINT drain the router and then the replica fleet.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pimcapsnet/internal/cluster"
	"pimcapsnet/internal/distribute"
)

func main() {
	addr := flag.String("addr", ":8090", "router listen address")
	serveBin := flag.String("serve-bin", "capsnet-serve", "capsnet-serve binary to spawn (path or $PATH name)")
	replicas := flag.Int("replicas", 3, "replica subprocesses to supervise")
	startTimeout := flag.Duration("start-timeout", 30*time.Second, "per-replica spawn-to-ready bound")
	stopTimeout := flag.Duration("stop-timeout", 10*time.Second, "per-replica SIGTERM drain bound before SIGKILL")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "replica /readyz load-probe period")
	retries := flag.Int("retries", 4, "per-request attempt budget (first attempt included)")
	hedgeDelay := flag.Duration("hedge-delay", 500*time.Millisecond, "unanswered-attempt delay before a hedge launches (<0 disables)")
	hedges := flag.Int("hedges", 1, "per-request hedging budget")
	budget := flag.Duration("budget", 0, "default end-to-end deadline assigned to requests arriving without an X-Deadline header (0 = unbounded)")
	expectedService := flag.Duration("expected-service", 100*time.Millisecond, "estimated replica round-trip time; hedges needing more than the remaining deadline budget are skipped")
	movePenalty := flag.Float64("move-penalty", cluster.DefaultMovePenalty, "placement movement charge M for leaving a request's home replica")
	alpha := flag.Float64("alpha", 1, "placement work coefficient α in S = 1/(αE + βM)")
	beta := flag.Float64("beta", 1, "placement movement coefficient β in S = 1/(αE + βM)")
	waitReady := flag.Int("wait-ready", 1, "replicas that must be ready before the router starts listening")
	traceSample := flag.Float64("trace-sample", 0, "fraction of routed requests to record span timelines for (0 disables, 1 records all)")
	traceBuffer := flag.Int("trace-buffer", 0, "completed request traces retained for /debug/requests/trace (0 = default 256)")
	flightBuffer := flag.Int("flight-buffer", 64, "flight-recorder capacity: bad requests (5xx, 504, slow) pinned with full span sets at /debug/requests/flight (0 disables)")
	slowThreshold := flag.Duration("slow-threshold", 0, "pin requests slower than this end-to-end in the flight recorder (0 disables the slow trigger)")
	sloTarget := flag.Float64("slo-target", cluster.DefaultSLOTarget, "availability objective for the rolling SLO tracker, in (0, 1)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "log output format: text | json")
	replicaLogs := flag.Bool("replica-logs", false, "forward replica stderr (prefixed [rN]) to the router's stderr")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capsnet-router: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.String("error", err.Error()))
		os.Exit(1)
	}

	mgrCfg := cluster.ManagerConfig{
		Binary:        *serveBin,
		Args:          flag.Args(), // everything after "--" goes to the replicas
		Replicas:      *replicas,
		StartTimeout:  *startTimeout,
		StopTimeout:   *stopTimeout,
		ProbeInterval: *probeInterval,
		Logger:        logger,
	}
	if *replicaLogs {
		mgrCfg.ReplicaStderr = os.Stderr
	}
	mgr, err := cluster.NewManager(mgrCfg)
	if err != nil {
		fatal("building manager", err)
	}
	mgr.Start()
	defer mgr.Stop()
	wrCtx, wrCancel := context.WithTimeout(context.Background(), *startTimeout)
	if err := cluster.WaitReady(wrCtx, mgr, *waitReady); err != nil {
		wrCancel()
		mgr.Stop()
		fatal("waiting for replicas", err)
	}
	wrCancel()

	metrics := cluster.NewMetrics()
	metrics.Snapshot = mgr.Snapshot
	disp, err := cluster.NewDispatcher(cluster.DispatcherConfig{
		Pool: mgr,
		Placer: cluster.Placer{
			Scorer:      distribute.Scorer{Alpha: *alpha, Beta: *beta},
			MovePenalty: *movePenalty,
		},
		Metrics:             metrics,
		Logger:              logger,
		MaxAttempts:         *retries,
		HedgeDelay:          *hedgeDelay,
		MaxHedges:           *hedges,
		DefaultBudget:       *budget,
		ExpectedServiceTime: *expectedService,
		TraceSample:         *traceSample,
		TraceBuffer:         *traceBuffer,
		FlightBuffer:        *flightBuffer,
		SlowThreshold:       *slowThreshold,
		SLOTarget:           *sloTarget,
	})
	if err != nil {
		mgr.Stop()
		fatal("building dispatcher", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		mgr.Stop()
		fatal("listening", err)
	}
	httpSrv := &http.Server{Handler: disp.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("routing",
		slog.String("addr", ln.Addr().String()),
		slog.Int("replicas", *replicas),
		slog.String("serve_bin", *serveBin),
		slog.Float64("alpha", *alpha),
		slog.Float64("beta", *beta),
		slog.Float64("move_penalty", *movePenalty),
	)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("draining", slog.String("signal", s.String()))
	case err := <-errCh:
		mgr.Stop()
		fatal("http server", err)
	}

	// Drain top-down: stop accepting client traffic, then drain the
	// replica fleet (SIGTERM → bounded wait → SIGKILL per replica).
	ctx, cancel := context.WithTimeout(context.Background(), *stopTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", slog.String("error", err.Error()))
	}
	mgr.Stop()
	logger.Info("drained, exiting")
}

// buildLogger constructs the process logger from the -log-level and
// -log-format flags (same grammar as capsnet-serve).
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
}
