// Command pimcaps-bench regenerates the paper's evaluation tables and
// figures. With no flags it runs every experiment; -exp selects one by
// id (fig4, fig5, fig6a, fig6b, fig7, fig15a, fig15b, fig16a, fig16b,
// fig17a, fig17b, fig18, table5, overhead); -list shows the ids;
// -markdown renders GitHub-flavored tables.
//
// It is also the CLI for the benchmark-regression gate: -bench-input
// parses `go test -bench` output and, combined with -update-baseline,
// -check-baseline, or -out, maintains and enforces BENCH_BASELINE.json
// (see internal/benchgate and `make bench-gate`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pimcapsnet/internal/benchgate"
	"pimcapsnet/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	markdown := flag.Bool("markdown", false, "render tables as markdown")
	csvOut := flag.Bool("csv", false, "render tables as CSV")

	benchInput := flag.String("bench-input", "", "path to `go test -bench` output to parse ('-' for stdin); enables gate mode")
	baseline := flag.String("baseline", "BENCH_BASELINE.json", "benchmark baseline JSON path")
	updateBaseline := flag.Bool("update-baseline", false, "write -bench-input medians to -baseline (keeps the existing hot list)")
	checkBaseline := flag.Bool("check-baseline", false, "gate -bench-input medians against -baseline; exit 1 on regression")
	out := flag.String("out", "", "write -bench-input medians as JSON (the CI artifact)")
	emitBaselineText := flag.Bool("emit-baseline-text", false, "print -baseline in `go test -bench` text format (for benchstat) and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *emitBaselineText {
		base, err := benchgate.Load(*baseline)
		if err != nil {
			fatal(err)
		}
		benchgate.EmitBenchFormat(os.Stdout, base)
		return
	}
	if *benchInput != "" {
		runGate(*benchInput, *baseline, *updateBaseline, *checkBaseline, *out)
		return
	}
	if *updateBaseline || *checkBaseline || *out != "" {
		fatal(fmt.Errorf("pimcaps-bench: -update-baseline/-check-baseline/-out need -bench-input"))
	}

	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(id)
		if err != nil {
			fatal(err)
		}
		switch {
		case *markdown:
			t.Markdown(os.Stdout)
		case *csvOut:
			t.CSV(os.Stdout)
		default:
			t.Fprint(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s finished in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func runGate(input, baselinePath string, update, check bool, outPath string) {
	var r io.Reader = os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	runs, err := benchgate.Parse(r)
	if err != nil {
		fatal(err)
	}
	med := benchgate.Medians(runs)

	if outPath != "" {
		cur := &benchgate.Baseline{Hot: benchgate.DefaultHot, Benchmarks: med}
		if err := benchgate.Save(outPath, cur); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", outPath, len(med))
	}

	if update {
		hot := benchgate.DefaultHot
		if prev, err := benchgate.Load(baselinePath); err == nil && len(prev.Hot) > 0 {
			hot = prev.Hot
		}
		if err := benchgate.Save(baselinePath, &benchgate.Baseline{Hot: hot, Benchmarks: med}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "updated %s (%d benchmarks, %d hot)\n", baselinePath, len(med), len(hot))
	}

	if check {
		base, err := benchgate.Load(baselinePath)
		if err != nil {
			fatal(err)
		}
		rep := benchgate.Check(base, med)
		for _, line := range rep.Lines {
			fmt.Println(line)
		}
		fmt.Printf("hot-path geomean ns/op ratio: %.3f (fail above %.2f)\n",
			rep.Geomean, 1+benchgate.Tolerance)
		if !rep.OK() {
			for _, f := range rep.Failures {
				fmt.Fprintln(os.Stderr, "GATE FAIL: "+f)
			}
			os.Exit(1)
		}
		fmt.Println("benchmark gate: PASS")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
