// Command pimcaps-bench regenerates the paper's evaluation tables and
// figures. With no flags it runs every experiment; -exp selects one by
// id (fig4, fig5, fig6a, fig6b, fig7, fig15a, fig15b, fig16a, fig16b,
// fig17a, fig17b, fig18, table5, overhead); -list shows the ids;
// -markdown renders GitHub-flavored tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pimcapsnet/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	markdown := flag.Bool("markdown", false, "render tables as markdown")
	csvOut := flag.Bool("csv", false, "render tables as CSV")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		t, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		switch {
		case *markdown:
			t.Markdown(os.Stdout)
		case *csvOut:
			t.CSV(os.Stdout)
		default:
			t.Fprint(os.Stdout)
		}
		fmt.Fprintf(os.Stderr, "[%s finished in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
