// Command pimcaps-vet is the repository's multichecker: it runs the
// project-specific analyzer suite (internal/analysis) over the
// packages matched by its arguments, exactly as `go vet` would run its
// own checks. The analyzers mechanically enforce the invariants the
// architecture depends on: scratch-arena Outputs are always released,
// the import DAG stays layered, annotated hot-path functions stay
// allocation-free, floats are never ==-compared outside bit-exact
// contexts, the worker pool keeps its panic-isolation wrapper, panics
// carry typed values, contexts flow instead of being re-rooted,
// //pimcaps:guardedby fields are only touched with their mutex held,
// every goroutine in the long-lived concurrency packages has a bounded
// lifetime, and timers always reach Stop.
//
// Usage:
//
//	pimcaps-vet [-json] [packages]          # default packages: ./...
//	pimcaps-vet -analyzers a,b [packages]   # run a subset of the suite
//	pimcaps-vet -stats [packages]           # also print per-analyzer wall time
//	pimcaps-vet -list                       # list the suite
//	... | pimcaps-vet -annotate             # JSON findings -> GitHub annotations
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a
// load or usage error. Suppress single findings with
// `//lint:ignore pimcaps/<analyzer> reason` (same line or the line
// above); see DESIGN.md for the invariant table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pimcapsnet/internal/analysis"
)

func main() {
	var (
		jsonOut   = flag.Bool("json", false, "emit findings as a JSON array instead of vet-style lines")
		annotate  = flag.Bool("annotate", false, "read JSON findings from stdin and emit GitHub Actions error annotations")
		listSuite = flag.Bool("list", false, "list the analyzers in the suite and exit")
		only      = flag.String("analyzers", "", "comma-separated analyzer names to run (default: the full suite)")
		stats     = flag.Bool("stats", false, "print per-analyzer wall time to stderr after the run")
	)
	flag.Parse()

	if *listSuite {
		for _, a := range analysis.Suite() {
			fmt.Printf("%s%s: %s\n", analysis.IgnorePrefix, a.Name, a.Doc)
		}
		return
	}
	if *annotate {
		os.Exit(runAnnotate())
	}
	suite := analysis.Suite()
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pimcaps-vet: unknown analyzer %q (run -list for the suite)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var timing *analysis.Stats
	if *stats {
		timing = &analysis.Stats{}
	}
	findings, err := analysis.RunPatternsStats("", suite, timing, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimcaps-vet:", err)
		os.Exit(2)
	}
	if timing != nil {
		fmt.Fprintln(os.Stderr, "pimcaps-vet: per-analyzer wall time:")
		for _, line := range timing.Lines() {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "pimcaps-vet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// runAnnotate converts a JSON findings array (as produced by -json)
// into GitHub Actions workflow commands so CI failures surface as
// inline annotations on the PR diff. It re-prints the vet-style lines
// too, so the job log stays readable, and exits 1 if any finding came
// through — letting `pimcaps-vet -json ./... | pimcaps-vet -annotate`
// fail the job under pipefail even though the formatter is last.
func runAnnotate() int {
	var findings []analysis.Finding
	if err := json.NewDecoder(os.Stdin).Decode(&findings); err != nil {
		fmt.Fprintln(os.Stderr, "pimcaps-vet -annotate: decoding stdin:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
		fmt.Printf("::error file=%s,line=%d,col=%d,title=%s%s::%s\n",
			f.File, f.Line, f.Col, analysis.IgnorePrefix, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
