// Command pimcaps-cosim runs the functional/timing co-simulator on a
// Table 1 benchmark's routing topology (scaled to a tractable batch),
// prints per-vault statistics and optionally writes a Chrome
// trace-event timeline viewable in chrome://tracing or Perfetto.
//
// Usage:
//
//	pimcaps-cosim -bench Caps-MN1 -dim H -batch 4 -trace /tmp/rp.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/pimexec"
	"pimcapsnet/internal/tensor"
	"pimcapsnet/internal/trace"
	"pimcapsnet/internal/workload"
)

func main() {
	benchName := flag.String("bench", "Caps-MN1", "Table 1 benchmark (topology source)")
	dimName := flag.String("dim", "H", "distribution dimension (B, L or H)")
	batch := flag.Int("batch", 4, "batch size to interpret (full Table 1 batches are large; the topology is what matters)")
	lDiv := flag.Int("ldiv", 8, "divide the L-capsule count by this factor for tractability")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline here")
	seed := flag.Int64("seed", 1, "prediction-vector seed")
	flag.Parse()

	b, err := workload.ByName(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var dim distribute.Dimension
	switch strings.ToUpper(*dimName) {
	case "B":
		dim = distribute.DimB
	case "L":
		dim = distribute.DimL
	case "H":
		dim = distribute.DimH
	default:
		fmt.Fprintf(os.Stderr, "unknown dimension %q\n", *dimName)
		os.Exit(1)
	}

	nl := b.NumL / *lDiv
	if nl < 1 {
		nl = 1
	}
	fmt.Printf("interpreting %s topology: B=%d L=%d H=%d CH=%d, %d iterations, dimension %v\n",
		b.Name, *batch, nl, b.NumH, b.DimH, b.Iters, dim)

	rng := rand.New(rand.NewSource(*seed))
	preds := tensor.New(*batch, nl, b.NumH, b.DimH)
	for i := range preds.Data() {
		preds.Data()[i] = float32(rng.NormFloat64()) * 0.1
	}

	x := pimexec.New(dim)
	var tl trace.Log
	if *tracePath != "" {
		x.Trace = &tl
	}
	r := x.Run(preds, b.Iters)

	fmt.Printf("\nphases: %d, active vaults: %d/%d\n", r.Phases, r.ActiveVaults(), x.Cfg.Vaults)
	fmt.Printf("busiest vault: %.0f PE-cycles; total crossbar payload: %.0f bytes\n",
		r.MaxComputeCycles(), r.TotalCommBytes())
	fmt.Println("\nper-vault activity (cycles | blocks | sent B | recv B):")
	for vi, vs := range r.Vaults {
		if vs.ComputeCycles == 0 && vs.SentBytes == 0 && vs.RecvBytes == 0 {
			continue
		}
		fmt.Printf("  vault %2d: %9.0f | %9.0f | %9.0f | %9.0f\n",
			vi, vs.ComputeCycles, vs.MemoryBlocks, vs.SentBytes, vs.RecvBytes)
	}
	// Capsule norms of the first sample — proof the run computed
	// something real.
	fmt.Println("\ncapsule norms (sample 0):")
	for j := 0; j < b.NumH; j++ {
		n := tensor.Norm(r.Routing.V.Data()[j*b.DimH : (j+1)*b.DimH])
		fmt.Printf("  caps %2d: %.4f\n", j, n)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := tl.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start, end := tl.TotalSpan()
		fmt.Printf("\nwrote %d trace events spanning %.0f cycles to %s\n", tl.Len(), end-start, *tracePath)
	}
}
