// Command capsnet-load is the open-loop capacity harness: it replays
// a seeded arrival schedule (internal/workload shapes: constant,
// diurnal, bursty, adversarial) against a live capsnet-serve replica
// or the capsnet-router tier, measures coordinated-omission-safe
// latency with internal/loadgen, correlates the run with the server's
// Figure-3 stage decomposition scraped from /metrics, optionally
// sweeps offered rate to locate the knee of the latency/throughput
// curve, and emits the machine-readable report the slo-gate CI job
// diffs against SLO_BASELINE.json (see internal/slogate).
//
// Against a server you run yourself:
//
//	go run ./cmd/capsnet-serve -demo-classes 3 &
//	go run ./cmd/capsnet-load -addr http://localhost:8080 -rate 50 -duration 5s
//
// Spawning its own replica (what `make slo-gate` does; flags after
// "--" go to the spawned capsnet-serve):
//
//	go build -o serve-bin ./cmd/capsnet-serve
//	go run ./cmd/capsnet-load -spawn ./serve-bin -rate 50 -duration 5s \
//	    -sweep 25,50,100,200 -baseline SLO_BASELINE.json -check-baseline -- -demo-classes 3
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/deadline"
	"pimcapsnet/internal/loadgen"
	"pimcapsnet/internal/serve"
	"pimcapsnet/internal/slogate"
	"pimcapsnet/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	target := flag.String("target", "serve", "tier being driven: serve | router (labels the report and picks the stage-metrics endpoint)")
	addr := flag.String("addr", "", "base URL of the tier (default http://localhost:8080 for serve, :8090 for router; ignored with -spawn)")
	spawn := flag.String("spawn", "", "path to a capsnet-serve binary to spawn for the run's lifetime (args after -- are passed through)")
	shapeName := flag.String("shape", "constant", "arrival shape: constant | diurnal | bursty | adversarial")
	rate := flag.Float64("rate", 50, "mean offered rate in req/s for the reference run")
	duration := flag.Duration("duration", 5*time.Second, "reference-run length")
	period := flag.Duration("period", 10*time.Second, "shape period (diurnal day / burst cycle / spike interval)")
	amplitude := flag.Float64("amplitude", 0.8, "diurnal swing fraction in [0,1]")
	burstFactor := flag.Float64("burst-factor", 8, "bursty: on-burst rate multiple")
	burstFraction := flag.Float64("burst-fraction", 0.1, "bursty: fraction of each period spent bursting")
	seed := flag.Int64("seed", 42, "schedule seed: same seed replays the identical arrival pattern")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	budget := flag.Duration("deadline", 0, "per-request end-to-end budget stamped as X-Deadline (0 = none)")
	sweepList := flag.String("sweep", "", "comma-separated offered rates to sweep for the knee (e.g. 25,50,100,200); empty skips the sweep")
	sweepDuration := flag.Duration("sweep-duration", 2*time.Second, "per-rate run length during the sweep")
	baseline := flag.String("baseline", "SLO_BASELINE.json", "SLO baseline path")
	update := flag.Bool("update-baseline", false, "write this run out as the new baseline")
	check := flag.Bool("check-baseline", false, "gate this run against the baseline (exit 1 on regression)")
	out := flag.String("out", "", "also write the run's report JSON here (the slo-gate CI artifact)")
	flag.Parse()

	kind, err := workload.ShapeByName(*shapeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	shape := workload.Shape{
		Kind: kind, Rate: *rate,
		Period: period.Seconds(), Amplitude: *amplitude,
		BurstFactor: *burstFactor, BurstFraction: *burstFraction,
	}
	if err := shape.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if *target != "serve" && *target != "router" {
		fmt.Fprintf(os.Stderr, "unknown -target %q (want serve or router)\n", *target)
		return 2
	}

	// Ctrl-C stops dispatching and returns through the normal path, so
	// the deferred stop() below still reaps a -spawn'ed replica instead
	// of orphaning it.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	base := *addr
	if *spawn != "" {
		srv, err := spawnServe(*spawn, flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer srv.stop()
		base = srv.base
	} else if base == "" {
		if *target == "router" {
			base = "http://localhost:8090"
		} else {
			base = "http://localhost:8080"
		}
	}

	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConnsPerHost: 256},
	}

	// Size synthetic images from the advertised model geometry.
	var info serve.ModelInfo
	if err := getJSON(client, base+"/v1/model", &info); err != nil {
		fmt.Fprintf(os.Stderr, "fetching model info: %v (is the server running?)\n", err)
		return 2
	}
	bodies, err := buildBodies(info, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	httpTarget := &loadgen.HTTPTarget{
		Client: client,
		URL:    base + "/v1/classify",
		Bodies: bodies,
	}
	if *budget > 0 {
		d := *budget
		httpTarget.Decorate = func(r *http.Request) { deadline.Set(r.Header, time.Now().Add(d)) }
	}

	// The router's own /metrics carries router_* families; the merged
	// capsnet stage decomposition lives behind /metrics/fleet.
	stageURL := base + "/metrics"
	if *target == "router" {
		stageURL = base + "/metrics/fleet"
	}

	fmt.Printf("replaying %s shape at %.4g req/s for %v against %s (%s tier, seed %d)\n",
		shape.Kind, shape.Rate, duration, base, *target, *seed)
	before := scrapeStages(client, stageURL)
	res := loadgen.Run(ctx, httpTarget,
		loadgen.Options{Schedule: shape.Schedule(duration.Seconds(), *seed), Timeout: *timeout})
	shares := loadgen.StageShares(before, scrapeStages(client, stageURL))
	fmt.Println("  " + res.String())

	report := &loadgen.Report{
		Target: *target, Shape: shape.Kind.String(), Seed: *seed,
		DurationSeconds: duration.Seconds(),
		ReferenceRate:   shape.Rate,
		Offered:         res.Offered,
		Availability:    res.Availability(),
		P50:             res.Latency.Quantile(0.5),
		P99:             res.Latency.Quantile(0.99),
		P999:            res.Latency.Quantile(0.999),
		MaxLateness:     res.MaxLateness,
		Codes:           codeStrings(res.Codes),
		Stages:          shares,
	}
	printStages(shares)

	if *sweepList != "" {
		rates, err := parseRates(*sweepList)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("\nsweeping offered rate for the knee (%v per point):\n", *sweepDuration)
		fmt.Printf("  %10s %10s %8s %10s %10s %10s\n", "offered", "achieved", "avail", "p50", "p99", "p999")
		for _, r := range rates {
			s := shape
			s.Rate = r
			pres := loadgen.Run(ctx, httpTarget,
				loadgen.Options{Schedule: s.Schedule(sweepDuration.Seconds(), *seed), Timeout: *timeout})
			p := loadgen.PointFromResult(r, pres)
			report.Sweep = append(report.Sweep, p)
			fmt.Printf("  %10.4g %10.4g %8.4f %9.4gs %9.4gs %9.4gs\n",
				p.OfferedRate, p.AchievedRate, p.Availability, p.P50, p.P99, p.P999)
			time.Sleep(200 * time.Millisecond) // drain between operating points
		}
		knee, idx, unsaturated := loadgen.FindKnee(report.Sweep, loadgen.KneeConfig{})
		report.KneeRate, report.KneeUnsaturated = knee, unsaturated
		switch {
		case idx < 0:
			fmt.Println("  knee: none — the lowest swept rate is already saturated")
		case unsaturated:
			fmt.Printf("  knee: ≥ %.4g req/s (sweep never saturated; true capacity lies beyond)\n", knee)
		default:
			fmt.Printf("  knee: %.4g req/s\n", knee)
		}
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted: partial run — skipping report, baseline, and gate actions")
		return 2
	}
	if *out != "" {
		if err := loadgen.SaveReport(*out, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *update {
		b := &slogate.Baseline{
			Report: *report,
			Tolerances: slogate.Tolerances{
				MaxAvailabilityDrop: slogate.DefaultMaxAvailabilityDrop,
				MaxP99Factor:        slogate.DefaultMaxP99Factor,
				MaxP999Factor:       slogate.DefaultMaxP999Factor,
				MaxKneeDrop:         slogate.DefaultMaxKneeDrop,
				LatencyFloor:        slogate.DefaultLatencyFloor,
			},
		}
		if err := slogate.Save(*baseline, b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("\nwrote baseline %s\n", *baseline)
	}
	if *check {
		b, err := slogate.Load(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		rep := slogate.Check(b, report)
		fmt.Printf("\nSLO gate vs %s:\n", *baseline)
		for _, line := range rep.Lines {
			fmt.Println("  " + line)
		}
		if !rep.OK() {
			fmt.Println("\nSLO GATE FAILED:")
			for _, f := range rep.Failures {
				fmt.Println("  ✗ " + f)
			}
			return 1
		}
		fmt.Println("  SLO gate passed")
	}
	return 0
}

// spawnedServe is one capsnet-serve subprocess owned by the load run.
type spawnedServe struct {
	cmd  *exec.Cmd
	base string
}

// spawnServe boots the binary on an ephemeral port and waits for its
// "serving" log line and a 200 /readyz, mirroring how the router tier
// adopts replicas.
func spawnServe(binary string, extraArgs []string) (*spawnedServe, error) {
	args := append(append([]string{}, extraArgs...),
		"-addr", "127.0.0.1:0", "-log-format", "json", "-log-level", "info")
	cmd := exec.Command(binary, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawning %s: %w", binary, err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var rec struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &rec) == nil && rec.Msg == "serving" && rec.Addr != "" {
				select {
				case addrCh <- rec.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		s := &spawnedServe{cmd: cmd, base: "http://" + addr}
		client := &http.Client{Timeout: time.Second}
		for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
			resp, err := client.Get(s.base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return s, nil
				}
			}
		}
		s.stop()
		return nil, fmt.Errorf("spawned server never went ready")
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("spawned server never logged its address")
	}
}

// stop drains the spawned server: SIGTERM, bounded wait, then kill.
func (s *spawnedServe) stop() {
	if s.cmd.Process == nil {
		return
	}
	s.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { s.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		s.cmd.Process.Kill()
		<-done
	}
}

// buildBodies pre-serializes one classify body per class so request
// marshaling never sits on the load path.
func buildBodies(info serve.ModelInfo, seed int64) ([][]byte, error) {
	spec := dataset.Spec{
		Name: "loadgen", Classes: info.Classes,
		Channels: info.Channels, H: info.Height, W: info.Width,
		Noise: 0.05, Seed: seed,
	}
	gen := dataset.NewGenerator(spec)
	bodies := make([][]byte, info.Classes)
	for c := range bodies {
		img := make([]float32, info.Channels*info.Height*info.Width)
		gen.Sample(img, c)
		body, err := json.Marshal(serve.ClassifyRequest{Image: img})
		if err != nil {
			return nil, err
		}
		bodies[c] = body
	}
	return bodies, nil
}

// scrapeStages fetches a /metrics exposition and extracts the stage
// sums; scrape failures degrade to an empty decomposition rather than
// failing the load run.
func scrapeStages(client *http.Client, url string) map[string]float64 {
	resp, err := client.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := ioCopy(&sb, resp); err != nil {
		return nil
	}
	return loadgen.ParseStageSums(sb.String())
}

// ioCopy reads the response body (split out so scrapeStages stays
// small).
func ioCopy(sb *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 32*1024)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		sb.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

// printStages renders the Figure-3 correlation table.
func printStages(shares []loadgen.StageShare) {
	if len(shares) == 0 {
		fmt.Println("  (no stage decomposition: /metrics scrape failed or server predates internal/obs)")
		return
	}
	fmt.Println("\nserver-side stage decomposition over the load window (Figure 3 counterpart):")
	fmt.Printf("  %-24s %12s %7s\n", "stage", "total", "share")
	for _, s := range shares {
		fmt.Printf("  %-24s %11.4gs %6.1f%%\n", s.Stage, s.Seconds, 100*s.Share)
	}
}

// parseRates parses the -sweep list.
func parseRates(list string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad sweep rate %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// codeStrings converts the status-code map to JSON-friendly keys.
func codeStrings(codes map[int]int) map[string]int {
	out := make(map[string]int, len(codes))
	for c, n := range codes {
		out[strconv.Itoa(c)] = n
	}
	return out
}

func getJSON(client *http.Client, url string, dst any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}
