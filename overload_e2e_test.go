package pimcapsnet_bench

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pimcapsnet/internal/cluster"
	"pimcapsnet/internal/deadline"
)

// TestOverloadBrownoutE2E is the overload-smoke drill CI runs: the real
// capsnet-router over two real capsnet-serve replicas whose batch
// runners are slowed by the seeded queue-pressure injector
// (-chaos-pressure), while a deadline-carrying burst overruns them.
// The stack must degrade instead of failing:
//
//   - every client-visible status is 200, 429, 503, or 504 — never a
//     bare 500/502 — and 429s carry Retry-After;
//   - the brownout controller engages (requests are served at a shed
//     level) and steps back to level 0 once the burst passes;
//   - a wave of already-hopeless short-deadline requests drives at
//     least one cooperative batch abort on a replica;
//   - the scratch arena stays flat across the whole drill: aborted and
//     shed batches release their arena exactly like healthy ones.
func TestOverloadBrownoutE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the router and two replicas; skipped in -short")
	}

	dir := t.TempDir()
	serveBin := buildBinary(t, dir, "capsnet-serve")
	routerBin := buildBinary(t, dir, "capsnet-router")

	router := exec.Command(routerBin,
		"-addr", "127.0.0.1:0",
		"-serve-bin", serveBin,
		"-replicas", "2",
		"-wait-ready", "2",
		"-retries", "2",
		"-hedge-delay", "-1s", // hedging off: overload must not be amplified
		"-expected-service", "50ms",
		"-log-format", "json",
		"--",
		"-demo-classes", "3",
		"-max-batch", "4",
		"-max-delay", "5ms",
		"-queue", "8",
		// Every batch is slowed 20–35ms for the whole drill: sustained
		// queue pressure for the brownout controller and a guaranteed
		// overrun of the short-deadline wave's 15ms budgets.
		"-chaos-pressure", "20ms",
		"-chaos-pressure-max", "35ms",
		"-chaos-pressure-arm", "10000",
		"-brownout",
		"-brownout-engage", "5ms",
		"-brownout-recover", "1ms",
		"-brownout-hold", "30ms",
		"-brownout-approx",
	)
	stderr, err := router.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	defer router.Process.Kill()
	base := "http://" + waitForAddr(t, stderr, "routing", 120*time.Second)

	var info struct {
		Channels, Height, Width int
	}
	getJSON(t, base+"/v1/model", &info)
	body, err := json.Marshal(map[string]any{"image": make([]float32, info.Channels*info.Height*info.Width)})
	if err != nil {
		t.Fatal(err)
	}
	var fleet []cluster.ReplicaInfo
	getJSON(t, base+"/v1/replicas", &fleet)
	if len(fleet) != 2 {
		t.Fatalf("fleet size %d, want 2: %+v", len(fleet), fleet)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(budget time.Duration) (int, http.Header, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/classify", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		deadline.Set(req.Header, time.Now().Add(budget))
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header, nil
	}

	// Phase 1 — saturating burst with healthy budgets. The worker count
	// deliberately dwarfs the fleet's batch capacity (2 replicas × 4
	// riders): a closed loop sized to capacity never queues, so the
	// surplus is what backs the admission queues up and hands the
	// brownout hysteresis its sustained queue-wait signal.
	const workers, perWorker = 24, 10
	const shortWorkers, shortPerWorker = 4, 15
	type result struct {
		code       int
		retryAfter string
	}
	results := make(chan result, workers*perWorker+shortWorkers*shortPerWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				code, hdr, err := post(5 * time.Second)
				if err != nil {
					t.Errorf("burst request: %v", err)
					return
				}
				results <- result{code, hdr.Get("Retry-After")}
			}
		}()
	}
	wg.Wait()

	// Phase 2 — a wave of requests whose 15ms budgets cannot survive a
	// 20–35ms pressured batch: whole batches expire mid-run, so the
	// cooperative cancel must fire and abort them.
	for w := 0; w < shortWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < shortPerWorker; i++ {
				code, hdr, err := post(15 * time.Millisecond)
				if err != nil {
					t.Errorf("short-deadline request: %v", err)
					return
				}
				results <- result{code, hdr.Get("Retry-After")}
			}
		}()
	}
	wg.Wait()
	close(results)

	var ok, rejected, expired int
	for r := range results {
		switch r.code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
			if r.retryAfter == "" {
				t.Error("429 without a Retry-After header")
			}
		case http.StatusServiceUnavailable:
			// Transient not-ready; acceptable degradation.
		case http.StatusGatewayTimeout:
			expired++
		default:
			t.Errorf("client-visible %d during overload (only 200/429/503/504 are acceptable)", r.code)
		}
	}
	t.Logf("burst outcome: %d ok, %d rejected (429), %d expired (504)", ok, rejected, expired)
	if ok == 0 {
		t.Error("no request succeeded during the burst; overload handling shed everything")
	}
	if expired == 0 {
		t.Error("no request expired (504) despite 15ms budgets against 20ms+ batches")
	}

	// The drill's interior must now be visible in the metrics: requests
	// served at a shed brownout level, at least one cooperative batch
	// abort, and router-side deadline exhaustion.
	var shedRequests, aborts float64
	for _, rep := range fleet {
		text := getText(t, rep.URL+"/metrics")
		aborts += metricValue(t, text, "capsnet_batch_aborted_total")
		shedRequests += sumShedBrownoutRequests(t, text)
	}
	if shedRequests == 0 {
		t.Error("no requests served at a brownout level >= 1; the controller never engaged")
	}
	if aborts == 0 {
		t.Error("capsnet_batch_aborted_total = 0 across the fleet; no all-expired batch was aborted")
	}
	routerText := getText(t, base+"/metrics")
	if v := metricValue(t, routerText, "router_deadline_exhausted_total"); v < 1 {
		t.Errorf("router_deadline_exhausted_total = %g, want >= 1 after the short-deadline wave", v)
	}

	// Recovery: trickle sequential, well-budgeted requests (each batch
	// launch feeds the controller a calm queue-wait sample) until every
	// replica reports level 0 again.
	recovered := func() bool {
		for _, rep := range fleet {
			if metricValue(t, getText(t, rep.URL+"/metrics"), "capsnet_brownout_level") != 0 {
				return false
			}
		}
		return true
	}
	deadlineAt := time.Now().Add(60 * time.Second)
	for !recovered() {
		if time.Now().After(deadlineAt) {
			t.Fatal("brownout level did not return to 0 after the burst")
		}
		if _, _, err := post(5 * time.Second); err != nil {
			t.Fatalf("recovery request: %v", err)
		}
	}

	// Arena flatness: the forward arenas must be at their high-water
	// marks and stay there — another request wave (including everything
	// the drill aborted or shed) must not grow them.
	before := make(map[string]float64)
	for _, rep := range fleet {
		before[rep.Name] = metricValue(t, getText(t, rep.URL+"/metrics"), "capsnet_arena_bytes")
	}
	for i := 0; i < 12; i++ {
		if _, _, err := post(5 * time.Second); err != nil {
			t.Fatalf("post-recovery request: %v", err)
		}
	}
	for _, rep := range fleet {
		after := metricValue(t, getText(t, rep.URL+"/metrics"), "capsnet_arena_bytes")
		//lint:ignore pimcaps/floateqcheck capsnet_arena_bytes is an integer byte count; flatness means exact equality, a tolerance would mask a leak
		if after != before[rep.Name] {
			t.Errorf("replica %s capsnet_arena_bytes moved %g -> %g after recovery; arena must stay flat", rep.Name, before[rep.Name], after)
		}
	}

	// Clean exit under the same contract as the chaos e2e.
	if err := router.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- router.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("router exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("router did not exit after SIGINT")
	}
}

var brownoutReqRe = regexp.MustCompile(`^capsnet_brownout_requests_total\{level="(\d+)"\} (\d+)$`)

// sumShedBrownoutRequests totals the requests a replica served at any
// brownout level >= 1 (level 0 is full fidelity).
func sumShedBrownoutRequests(t *testing.T, text string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(text, "\n") {
		m := brownoutReqRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		level, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatalf("parsing brownout level from %q: %v", line, err)
		}
		if level == 0 {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		sum += v
	}
	return sum
}
