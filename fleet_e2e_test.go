//pimcaps:bitexact
package pimcapsnet_bench

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"pimcapsnet/internal/deadline"
	"pimcapsnet/internal/trace"
)

// flightDoc mirrors the /debug/requests/flight JSON shape.
type flightDoc struct {
	Pinned   uint64 `json:"pinned_total"`
	Retained int    `json:"retained"`
	Entries  []struct {
		TraceID string   `json:"trace_id"`
		Status  int      `json:"status"`
		Reasons []string `json:"reasons"`
	} `json:"entries"`
}

// TestFleetObservabilityE2E is the fleet observability smoke the CI
// obs-smoke job runs: a real router over two real replicas with
// tracing and the flight recorder armed, chaos flags forcing a slow
// retried request and a tiny deadline forcing a 504. It asserts the
// tail sampler pinned exactly the bad requests, /debug/trace/fleet
// merges the retried request's spans across the router and replica
// process tracks, and /metrics/fleet re-exports every replica with
// exactly merged histograms.
func TestFleetObservabilityE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the router and two replicas; skipped in -short")
	}

	dir := t.TempDir()
	serveBin := buildBinary(t, dir, "capsnet-serve")
	routerBin := buildBinary(t, dir, "capsnet-router")

	router := exec.Command(routerBin,
		"-addr", "127.0.0.1:0",
		"-serve-bin", serveBin,
		"-replicas", "2",
		"-wait-ready", "2",
		"-probe-interval", "250ms",
		"-hedge-delay", "-1ms", // hedging off so the armed stall shows up as latency
		"-trace-sample", "1",
		"-flight-buffer", "32",
		"-slow-threshold", "200ms",
		"-log-format", "json",
		"--",
		"-demo-classes", "3",
		"-trace-sample", "1",
		"-chaos-stall", "400ms", "-chaos-stall-arm", "1",
		"-chaos-corrupt", "4", "-chaos-corrupt-arm", "1",
	)
	stderr, err := router.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	defer router.Process.Kill()
	base := "http://" + waitForAddr(t, stderr, "routing", 120*time.Second)

	var info struct {
		Channels, Height, Width int
	}
	getJSON(t, base+"/v1/model", &info)
	img := make([]float32, info.Channels*info.Height*info.Width)
	for i := range img {
		img[i] = float32(i%11) / 11
	}
	body, _ := json.Marshal(map[string]any{"image": img})

	post := func(hdr http.Header) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/classify", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		for k, vs := range hdr {
			req.Header[k] = vs
		}
		return http.DefaultClient.Do(req)
	}

	// 1. The slow, retried request: every replica's first batch stalls
	// 400ms and corrupts, so this request burns retries across the
	// fleet and lands well over the 200ms slow threshold.
	resp, err := post(nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos-warmed request: status %d", resp.StatusCode)
	}
	slowID := resp.Header.Get("X-Trace-Id")
	if len(slowID) != 16 {
		t.Fatalf("X-Trace-Id %q", slowID)
	}

	// 2. The failing request: an already-expired deadline must come
	// back 504 without a replica answering.
	hdr := http.Header{}
	deadline.Set(hdr, time.Now().Add(-100*time.Millisecond))
	resp, err = post(hdr)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline request: status %d, want 504", resp.StatusCode)
	}

	// 3. Healthy traffic that must NOT be pinned.
	for i := 0; i < 5; i++ {
		resp, err := post(nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy request %d: status %d", i, resp.StatusCode)
		}
	}

	// Flight recorder: exactly the slow 200 and the 504, nothing else.
	var flight flightDoc
	getJSON(t, base+"/debug/requests/flight", &flight)
	if flight.Retained != 2 {
		t.Fatalf("flight retained %d entries, want 2 (slow + 504): %+v", flight.Retained, flight.Entries)
	}
	var sawSlow, saw504 bool
	for _, e := range flight.Entries {
		switch {
		case e.TraceID == slowID:
			sawSlow = true
			if e.Status != http.StatusOK || !hasReason(e.Reasons, "slow") {
				t.Errorf("slow entry = status %d reasons %v, want 200 + slow", e.Status, e.Reasons)
			}
		case e.Status == http.StatusGatewayTimeout:
			saw504 = true
			if !hasReason(e.Reasons, "deadline_exhausted") || !hasReason(e.Reasons, "status_5xx") {
				t.Errorf("504 entry reasons %v, want deadline_exhausted + status_5xx", e.Reasons)
			}
		default:
			t.Errorf("unexpected flight entry (a fast 200 got pinned?): %+v", e)
		}
	}
	if !sawSlow || !saw504 {
		t.Fatalf("flight missing expected entries: %+v", flight.Entries)
	}

	// Fleet trace: the retried request's spans from the router and both
	// replicas merged onto one timeline with per-process tracks.
	traceResp, err := http.Get(base + "/debug/trace/fleet?trace=" + slowID)
	if err != nil {
		t.Fatal(err)
	}
	log, err := trace.ReadJSON(traceResp.Body)
	traceResp.Body.Close()
	if err != nil {
		t.Fatalf("fleet trace round-trip: %v", err)
	}
	pids := map[string]int{} // process name → pid
	for _, e := range log.Events() {
		if e.Ph == "M" && e.Name == "process_name" {
			name, _ := e.Args["name"].(string)
			pids[name] = e.PID
		}
	}
	routerPID, ok := pids["router"]
	if !ok {
		t.Fatalf("fleet trace missing router process track: %v", pids)
	}
	replicaTracks := 0
	for name, pid := range pids {
		if strings.HasPrefix(name, "replica-") {
			replicaTracks++
			if pid == routerPID {
				t.Errorf("replica track %s shares the router pid", name)
			}
		}
	}
	// The retried request crossed both replicas; require both tracks.
	if replicaTracks != 2 {
		t.Fatalf("fleet trace has %d replica process tracks, want 2: %v", replicaTracks, pids)
	}
	routerAttempts := 0
	replicaStageSpans := 0
	for _, e := range log.Events() {
		if e.TS < 0 {
			t.Errorf("event %q has negative ts %v", e.Name, e.TS)
		}
		switch {
		case e.Ph == "X" && e.Name == "attempt" && e.PID == routerPID:
			routerAttempts++
			if e.Args["attempt"] == "" || e.Args["hedge"] == "" {
				t.Errorf("attempt span missing attribution args: %v", e.Args)
			}
		case e.Ph == "X" && e.Name == "forward" && e.PID != routerPID:
			replicaStageSpans++
			// Inherited attribution: the replica's forward span names the
			// attempt that launched it.
			if e.Args["attempt"] == "" {
				t.Errorf("replica forward span missing inherited attempt tag: %v", e.Args)
			}
		}
	}
	if routerAttempts < 2 {
		t.Errorf("fleet trace shows %d router attempt spans, want >= 2 (the request was retried)", routerAttempts)
	}
	if replicaStageSpans < 2 {
		t.Errorf("fleet trace shows %d replica forward spans, want >= 2 (both replicas served an attempt)", replicaStageSpans)
	}

	// Fleet metrics: valid text grammar, every replica re-exported, and
	// the merged latency histogram exactly the sum of the re-exported
	// per-replica series in the same document.
	fleetText := getText(t, base+"/metrics/fleet")
	for i, line := range strings.Split(strings.TrimRight(fleetText, "\n"), "\n") {
		if !promLineRe.MatchString(line) {
			t.Errorf("/metrics/fleet line %d violates text grammar: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"router_fleet_replicas_scraped 2",
		"router_fleet_scrape_failures 0",
		`capsnet_build_info{replica="r0"`,
		`capsnet_build_info{replica="r1"`,
		"router_build_info{",
		`router_slo_availability_ratio{window=`,
		`router_slo_error_budget_burn_rate{window=`,
	} {
		if !strings.Contains(fleetText, want) {
			t.Errorf("/metrics/fleet missing %q", want)
		}
	}
	assertMergedHistogram(t, fleetText, "capsnet_request_latency_seconds_sum")
	assertMergedHistogram(t, fleetText, "capsnet_request_latency_seconds_count")

	// Graceful shutdown.
	if err := router.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- router.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("router exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("router did not exit after SIGINT")
	}
}

func hasReason(reasons []string, want string) bool {
	for _, r := range reasons {
		if r == want {
			return true
		}
	}
	return false
}

// assertMergedHistogram checks the unlabeled merged series equals the
// sum of the {replica}-labelled re-exports of the same family, summed
// in document order — exactly, since both sides add the same parsed
// values in the same order.
func assertMergedHistogram(t *testing.T, text, family string) {
	t.Helper()
	mergedRe := regexp.MustCompile(`^` + regexp.QuoteMeta(family) + ` (\S+)$`)
	replicaRe := regexp.MustCompile(`^` + regexp.QuoteMeta(family) + `\{replica="[^"]+"\} (\S+)$`)
	var merged float64
	mergedSeen := false
	var sum float64
	replicaLines := 0
	for _, line := range strings.Split(text, "\n") {
		if m := mergedRe.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				t.Fatalf("merged %s value %q: %v", family, m[1], err)
			}
			merged, mergedSeen = v, true
			continue
		}
		if m := replicaRe.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[1], 64)
			if err != nil {
				t.Fatalf("replica %s value %q: %v", family, m[1], err)
			}
			sum += v
			replicaLines++
		}
	}
	if !mergedSeen {
		t.Fatalf("no merged %s series in fleet exposition", family)
	}
	if replicaLines != 2 {
		t.Fatalf("found %d per-replica %s series, want 2", replicaLines, family)
	}
	if merged != sum {
		t.Errorf("merged %s = %v, want exactly %v (sum of per-replica series)", family, merged, sum)
	}
}
