package pimcapsnet_bench

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pimcapsnet/internal/cluster"
)

// buildBinary compiles one cmd/ binary into dir and returns its path.
func buildBinary(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// TestRouterChaosE2E is the chaos end-to-end the CI router-smoke job
// runs: the real capsnet-router supervises three real capsnet-serve
// replicas, each armed (via internal/fault's hooks behind the
// -chaos-* flags) to stall AND corrupt its first batch, and one
// replica is SIGKILLed as traffic starts. The replica tier must turn
// every fault into retries or hedges — zero client-visible 5xx — and
// the killed replica must rejoin the fleet with a fresh process.
func TestRouterChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the router and three replicas; skipped in -short")
	}

	dir := t.TempDir()
	serveBin := buildBinary(t, dir, "capsnet-serve")
	routerBin := buildBinary(t, dir, "capsnet-router")

	router := exec.Command(routerBin,
		"-addr", "127.0.0.1:0",
		"-serve-bin", serveBin,
		"-replicas", "3",
		"-wait-ready", "3",
		"-probe-interval", "250ms",
		"-hedge-delay", "100ms",
		"-log-format", "json",
		"--",
		"-demo-classes", "3",
		"-chaos-stall", "1s", "-chaos-stall-arm", "1",
		"-chaos-corrupt", "4", "-chaos-corrupt-arm", "1",
	)
	stderr, err := router.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	defer router.Process.Kill()

	// The router logs "routing" with its bound address once the fleet
	// is ready (same startup contract as capsnet-serve's "serving").
	base := "http://" + waitForAddr(t, stderr, "routing", 120*time.Second)

	// Size the image from the model geometry proxied through the router.
	var info struct {
		Channels, Height, Width int
	}
	getJSON(t, base+"/v1/model", &info)
	imgLen := info.Channels * info.Height * info.Width

	makeBody := func(variant int) []byte {
		img := make([]float32, imgLen)
		for i := range img {
			img[i] = float32((i+variant)%11) / 11
		}
		b, err := json.Marshal(map[string]any{"image": img})
		if err != nil {
			t.Fatalf("marshaling body: %v", err)
		}
		return b
	}
	post := func(body []byte) (int, error) {
		resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}

	// Pick the kill target and pre-craft a request whose placement home
	// is that replica, so the kill deterministically costs a retry.
	var fleet []cluster.ReplicaInfo
	getJSON(t, base+"/v1/replicas", &fleet)
	if len(fleet) != 3 {
		t.Fatalf("fleet size %d, want 3: %+v", len(fleet), fleet)
	}
	target := fleet[0]
	var targetBody []byte
	for v := 0; ; v++ {
		b := makeBody(1000 + v)
		if fleet[cluster.Home(cluster.Key(b), fleet)].Name == target.Name {
			targetBody = b
			break
		}
	}

	// SIGKILL the target, then fire the request homed on it. The
	// supervisor sees the exit within milliseconds and pulls the dead
	// replica from the candidate set, so this request lands on a live
	// replica — whose armed first batch stalls (hedge) and comes back
	// corrupted (retry), so both budgets provably get spent.
	if err := syscall.Kill(target.PID, syscall.SIGKILL); err != nil {
		t.Fatalf("killing replica %s (pid %d): %v", target.Name, target.PID, err)
	}
	const workers, perWorker = 3, 8
	// +1: the main goroutine also sends the killed-replica probe's code.
	codes := make(chan int, workers*perWorker+1)
	code, err := post(targetBody)
	if err != nil {
		t.Fatalf("request homed on killed replica: %v", err)
	}
	codes <- code

	// Concurrent load over the degraded fleet: every response must be
	// 2xx — the armed first-batch stalls (hedges), requests still routed
	// to the not-yet-probed dead replica (retries), and the supervised
	// restart all happen under this traffic.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				code, err := post(makeBody(w*perWorker + i))
				if err != nil {
					t.Errorf("worker %d request %d: %v", w, i, err)
					return
				}
				codes <- code
			}
		}(w)
	}

	wg.Wait()
	close(codes)
	for code := range codes {
		if code >= 500 {
			t.Errorf("client-visible %d during chaos", code)
		}
	}

	// The killed replica must rejoin: same name, new process, restart
	// counted.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var now []cluster.ReplicaInfo
		getJSON(t, base+"/v1/replicas", &now)
		var cur cluster.ReplicaInfo
		for _, r := range now {
			if r.Name == target.Name {
				cur = r
			}
		}
		if cur.Ready && cur.PID != 0 && cur.PID != target.PID && cur.Restarts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never rejoined: %+v", target.Name, cur)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Router metrics: valid Prometheus text grammar, the new families
	// present, and the chaos visible in the counters (the kill cost at
	// least one retry; the armed stalls at least one hedge).
	metricsText := getText(t, base+"/metrics")
	for i, line := range strings.Split(strings.TrimRight(metricsText, "\n"), "\n") {
		if !promLineRe.MatchString(line) {
			t.Errorf("/metrics line %d violates text grammar: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"router_replica_requests_total{replica=",
		"router_retries_total",
		"router_hedges_total",
		"router_replica_ready{replica=",
		"router_replica_restarts_total{replica=",
		"router_request_latency_seconds_count",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if v := metricValue(t, metricsText, "router_retries_total"); v < 1 {
		t.Errorf("router_retries_total = %g, want >= 1 with every replica corrupting its first batch", v)
	}
	if v := metricValue(t, metricsText, "router_hedges_total"); v < 1 {
		t.Errorf("router_hedges_total = %g, want >= 1 with every replica stalling its first batch", v)
	}

	// Graceful shutdown: SIGINT drains the router and the fleet, exit 0.
	if err := router.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- router.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("router exited non-zero: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("router did not exit after SIGINT")
	}
}

// metricValue extracts one unlabeled counter's value from Prometheus
// text.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// waitForAddr scans JSON log lines on r until a record with the given
// msg carries an addr field, then keeps draining the pipe in the
// background (a full pipe would block the child).
func waitForAddr(t *testing.T, r io.Reader, msg string, timeout time.Duration) string {
	t.Helper()
	addrCh := make(chan string, 1)
	go func() {
		dec := json.NewDecoder(r)
		for {
			var rec map[string]any
			if err := dec.Decode(&rec); err != nil {
				return
			}
			if rec["msg"] == msg {
				if addr, ok := rec["addr"].(string); ok {
					select {
					case addrCh <- addr:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr
	case <-time.After(timeout):
		t.Fatalf("no %q log line within %v", msg, timeout)
		return ""
	}
}
