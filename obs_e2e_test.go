package pimcapsnet_bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"pimcapsnet/internal/trace"
)

// promLineRe matches one Prometheus text-format sample line.
var promLineRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? ` +
		`(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN)$`)

// TestObservabilitySmokeE2E is the out-of-process observability smoke
// test the CI obs-smoke job runs: it builds the real capsnet-serve
// binary, boots it with tracing on, fires load, and checks the three
// acceptance surfaces — /metrics parses as Prometheus text format,
// /debug/pprof/profile serves a CPU profile, and
// /debug/requests/trace round-trips through internal/trace — then
// shuts the server down gracefully.
func TestObservabilitySmokeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the server binary; skipped in -short")
	}

	bin := filepath.Join(t.TempDir(), "capsnet-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/capsnet-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building capsnet-serve: %v\n%s", err, out)
	}

	srv := exec.Command(bin,
		"-demo-classes", "3",
		"-addr", "127.0.0.1:0",
		"-log-format", "json",
		"-log-level", "info",
		"-trace-sample", "1",
	)
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The startup log line carries the bound address (-addr :0 makes
	// the OS pick the port) and every later line must be valid JSON
	// with a trace ID on request records.
	type logRec struct {
		Msg     string `json:"msg"`
		Addr    string `json:"addr"`
		TraceID string `json:"trace_id"`
		Status  int    `json:"status"`
	}
	scanner := bufio.NewScanner(stderr)
	addrCh := make(chan string, 1)
	logErrCh := make(chan error, 1)
	requestLogs := make(chan logRec, 64)
	go func() {
		defer close(requestLogs)
		for scanner.Scan() {
			line := scanner.Text()
			var rec logRec
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				select {
				case logErrCh <- fmt.Errorf("non-JSON log line %q: %v", line, err):
				default:
				}
				continue
			}
			switch rec.Msg {
			case "serving":
				select {
				case addrCh <- rec.Addr:
				default:
				}
			case "classify":
				requestLogs <- rec
			}
		}
	}()

	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatal("server never logged its address")
	}

	// Size the image from the advertised model geometry and fire load.
	var info struct {
		Channels, Height, Width int
	}
	getJSON(t, base+"/v1/model", &info)
	img := make([]float32, info.Channels*info.Height*info.Width)
	for i := range img {
		img[i] = float32(i%7) / 7
	}
	body, _ := json.Marshal(map[string]any{"image": img})
	const n = 10
	for i := 0; i < n; i++ {
		resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if id := resp.Header.Get("X-Trace-Id"); len(id) != 16 {
			t.Fatalf("request %d: X-Trace-Id %q", i, id)
		}
	}

	// 1. /metrics must be well-formed Prometheus text exposition with
	// the stage histograms populated.
	metricsText := getText(t, base+"/metrics")
	for i, line := range strings.Split(strings.TrimRight(metricsText, "\n"), "\n") {
		if !promLineRe.MatchString(line) {
			t.Errorf("/metrics line %d violates text grammar: %q", i+1, line)
		}
	}
	for _, want := range []string{
		`capsnet_stage_seconds_count{stage="forward"}`,
		`capsnet_stage_seconds_count{stage="routing_iteration"}`,
		"capsnet_queue_wait_seconds_count",
		"capsnet_routing_iteration_seconds_count",
		"capsnet_go_goroutines",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// 2. pprof must serve a real CPU profile.
	profResp, err := http.Get(base + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(profResp.Body)
	profResp.Body.Close()
	if profResp.StatusCode != http.StatusOK || len(prof) == 0 {
		t.Errorf("pprof profile: status %d, %d bytes", profResp.StatusCode, len(prof))
	}

	// 3. The request-trace export must round-trip through
	// internal/trace and contain the serving pipeline's spans.
	traceResp, err := http.Get(base + "/debug/requests/trace?last=8")
	if err != nil {
		t.Fatal(err)
	}
	log, err := trace.ReadJSON(traceResp.Body)
	traceResp.Body.Close()
	if err != nil {
		t.Fatalf("trace export round-trip: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range log.Events() {
		seen[e.Name] = true
	}
	for _, want := range []string{"admission", "queue_wait", "forward", "routing_iteration", "encode"} {
		if !seen[want] {
			t.Errorf("trace export missing %q spans (saw %v)", want, seen)
		}
	}

	// Graceful shutdown must exit 0.
	if err := srv.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited non-zero: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGINT")
	}

	// Structured logs: every classify record is JSON with a trace ID.
	select {
	case err := <-logErrCh:
		t.Error(err)
	default:
	}
	count := 0
	for rec := range requestLogs {
		count++
		if len(rec.TraceID) != 16 || rec.Status != 200 {
			t.Errorf("bad request log record: %+v", rec)
		}
	}
	if count != n {
		t.Errorf("logged %d classify records, want %d", count, n)
	}
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
