package pimexec

import (
	"math/rand"
	"testing"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/tensor"
)

func fixture(nb, nl, nh, ch int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	p := tensor.New(nb, nl, nh, ch)
	for i := range p.Data() {
		p.Data()[i] = float32(rng.NormFloat64()) * 0.1
	}
	return p
}

// TestNumericalEquivalenceWithCapsnet is the co-simulation contract:
// executing the routing procedure on the simulated cube must produce
// the same capsules as the library's batch-shared PE-math routing,
// for every distribution dimension (floating-point accumulation order
// differs, hence the tolerance).
func TestNumericalEquivalenceWithCapsnet(t *testing.T) {
	preds := fixture(3, 24, 5, 8, 1)
	ref := capsnet.DynamicRoutingShared(preds, 3, capsnet.NewPEMath())
	for _, dim := range distribute.Dimensions {
		x := New(dim)
		got := x.Run(preds, 3)
		if !got.Routing.V.AllClose(ref.V, 1e-4, 1e-5) {
			t.Fatalf("dim %v: executor capsules diverge from library routing", dim)
		}
		if !got.Routing.C.AllClose(ref.C, 1e-4, 1e-5) {
			t.Fatalf("dim %v: executor coefficients diverge", dim)
		}
	}
}

func TestExactMathMatchesLibraryExactly(t *testing.T) {
	// With exact math and B-dimension ownership the accumulation
	// order matches the library loop exactly.
	preds := fixture(2, 12, 4, 6, 2)
	ref := capsnet.DynamicRoutingShared(preds, 2, capsnet.ExactMath{})
	x := New(distribute.DimB)
	x.Math = capsnet.ExactMath{}
	got := x.Run(preds, 2)
	if !got.Routing.V.AllClose(ref.V, 1e-6, 1e-7) {
		t.Fatal("exact-math executor should match the library almost exactly")
	}
}

func TestWorkDistributionFollowsDimension(t *testing.T) {
	preds := fixture(4, 64, 6, 8, 3)

	// H-dimension with 6 H capsules: at most 6 vaults receive the
	// Eq. 2 work (plus softmax rows spread on L) — check Eq.2-heavy
	// imbalance by comparing against B/L distribution.
	hRes := New(distribute.DimH).Run(preds, 2)
	lRes := New(distribute.DimL).Run(preds, 2)
	bRes := New(distribute.DimB).Run(preds, 2)

	if lRes.ActiveVaults() < hRes.ActiveVaults() {
		t.Fatalf("L distribution (64 snippets) should activate ≥ vaults than H (6 snippets): %d vs %d",
			lRes.ActiveVaults(), hRes.ActiveVaults())
	}
	// The busiest vault under H-dim must carry more work than under
	// L-dim (6 owners for the same Eq. 2 work vs 32).
	if hRes.MaxComputeCycles() <= lRes.MaxComputeCycles() {
		t.Fatalf("H-dim busiest vault (%.0f cycles) should exceed L-dim (%.0f)",
			hRes.MaxComputeCycles(), lRes.MaxComputeCycles())
	}
	// B-dim with 4 batch elements: only 4 owners of Eq. 2.
	if bRes.ActiveVaults() > 32 {
		t.Fatal("impossible vault count")
	}
}

func TestCommunicationMatchesMModelShape(t *testing.T) {
	// The M model (Eqs. 8/10/12) predicts L-dimension moves the most
	// data for a configuration with large NB·NH (per-batch s/v
	// vectors) while H-dimension moves scalars only.
	preds := fixture(8, 32, 6, 8, 4)
	lC := New(distribute.DimL).Run(preds, 3).TotalCommBytes()
	hC := New(distribute.DimH).Run(preds, 3).TotalCommBytes()
	if hC >= lC {
		t.Fatalf("H-dim comm (%.0fB) should be below L-dim (%.0fB) here", hC, lC)
	}
}

func TestPhasesCount(t *testing.T) {
	preds := fixture(1, 4, 2, 3, 5)
	r := New(distribute.DimB).Run(preds, 3)
	// Per iteration: softmax phase + aggregate/squash phase, plus an
	// agreement phase for all but the last iteration.
	want := 3*2 + 2
	if r.Phases != want {
		t.Fatalf("phases = %d, want %d", r.Phases, want)
	}
}

func TestRunPanicsOnBadInput(t *testing.T) {
	x := New(distribute.DimB)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank-3 input")
		}
	}()
	x.Run(tensor.New(2, 3, 4), 3)
}

func TestRunPanicsOnZeroIterations(t *testing.T) {
	x := New(distribute.DimB)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero iterations")
		}
	}()
	x.Run(tensor.New(1, 2, 2, 2), 0)
}

func TestMemoryBlocksAccounted(t *testing.T) {
	preds := fixture(2, 16, 4, 8, 6)
	r := New(distribute.DimB).Run(preds, 2)
	var blocks float64
	for _, vs := range r.Vaults {
		blocks += vs.MemoryBlocks
	}
	if blocks <= 0 {
		t.Fatal("no memory blocks accounted")
	}
	// Eq. 2 alone touches ≈ nb·nh·nl·ch words per iteration.
	minWords := float64(2 * 4 * 16 * 8)
	if blocks*4 < minWords { // blocks are 16B = 4 words
		t.Fatalf("accounted traffic %.0f blocks implausibly low", blocks)
	}
}

func TestDefaultMathIsPEMath(t *testing.T) {
	x := New(distribute.DimH)
	x.Math = nil
	preds := fixture(1, 8, 3, 4, 7)
	r := x.Run(preds, 2) // must not panic with nil math
	if r.Routing.V.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestEstimateSecondsProperties(t *testing.T) {
	preds := fixture(4, 64, 8, 16, 9)
	for _, dim := range distribute.Dimensions {
		x := New(dim)
		r := x.Run(preds, 3)
		est := r.EstimateSeconds(x.Cfg)
		if est <= 0 {
			t.Fatalf("dim %v: non-positive estimate", dim)
		}
		// Doubling the clock must shrink the estimate.
		fast := x.Cfg.WithClock(x.Cfg.ClockHz * 2)
		if r.EstimateSeconds(fast) >= est {
			t.Fatalf("dim %v: faster clock did not reduce the estimate", dim)
		}
	}
	// B-dimension with 4 snippets concentrates work: its busiest-vault
	// estimate must exceed L-dimension's (64 snippets spread wide),
	// communication aside.
	bRes := New(distribute.DimB).Run(preds, 3)
	lRes := New(distribute.DimL).Run(preds, 3)
	if bRes.MaxComputeCycles() <= lRes.MaxComputeCycles() {
		t.Fatal("B-dim busiest vault should exceed L-dim's for a 4-sample batch")
	}
}
