// Package pimexec is a functional/timing co-simulator of PIM-CapsNet's
// in-memory routing: it executes the dynamic routing procedure on
// real data, distributed across the simulated cube's vaults on a
// chosen dimension (§5.1), with every special function evaluated by
// the PE approximations (§5.2.2), while accounting compute cycles,
// memory blocks and inter-vault transfers per vault.
//
// It complements internal/core's analytical evaluator: core scales
// a contention-window simulation to full workloads for the paper's
// performance figures; pimexec interprets the algorithm itself on the
// modeled hardware, so the numerical results are bit-compatible with
// internal/capsnet's PE-math routing and the per-vault work balance
// is observable rather than assumed.
package pimexec

import (
	"fmt"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/hmc"
	"pimcapsnet/internal/pe"
	"pimcapsnet/internal/tensor"
	"pimcapsnet/internal/trace"
	"pimcapsnet/internal/workload"
)

// Executor configures a run.
type Executor struct {
	Cfg  hmc.Config
	Spec pe.Spec
	// Math supplies the PE special-function numerics (normally
	// capsnet.NewPEMath(); capsnet.ExactMath{} gives a reference run).
	Math capsnet.RoutingMath
	// Dim selects the distribution dimension.
	Dim distribute.Dimension
	// Trace, when non-nil, receives a per-vault timeline of every
	// phase (Chrome trace-event format via internal/trace).
	Trace *trace.Log
}

// New returns an executor with the default cube, PE spec and
// recovered PE math, distributing on dim.
func New(dim distribute.Dimension) *Executor {
	return &Executor{
		Cfg:  hmc.DefaultConfig(),
		Spec: pe.DefaultSpec(),
		Math: capsnet.NewPEMath(),
		Dim:  dim,
	}
}

// VaultStats accumulates one vault's activity.
type VaultStats struct {
	ComputeCycles float64 // PE datapath cycles (divided by the PE count)
	MemoryBlocks  float64 // 16-byte blocks touched in local banks
	SentBytes     float64 // payload pushed to the crossbar
	RecvBytes     float64 // payload received from the crossbar
}

// Result carries the numerics and the accounting of a run.
type Result struct {
	Routing capsnet.RoutingResult
	Dim     distribute.Dimension
	Vaults  []VaultStats
	// Phases counts the serialized phase transitions (barriers
	// between equations and iterations).
	Phases int
}

// MaxComputeCycles returns the busiest vault's compute cycles — the
// quantity the paper's E model (Eqs. 6–11) estimates.
func (r Result) MaxComputeCycles() float64 {
	var m float64
	for _, v := range r.Vaults {
		if v.ComputeCycles > m {
			m = v.ComputeCycles
		}
	}
	return m
}

// TotalCommBytes returns all crossbar payload moved — the quantity
// the paper's M model (Eqs. 8/10/12) estimates.
func (r Result) TotalCommBytes() float64 {
	var m float64
	for _, v := range r.Vaults {
		m += v.SentBytes
	}
	return m
}

// ActiveVaults counts vaults that did any compute.
func (r Result) ActiveVaults() int {
	n := 0
	for _, v := range r.Vaults {
		if v.ComputeCycles > 0 {
			n++
		}
	}
	return n
}

// Run executes Alg. 1 (batch-shared coefficients, as the paper
// distributes it) on prediction vectors û of shape B×L×H×CH for the
// given number of iterations.
func (x *Executor) Run(preds *tensor.Tensor, iterations int) Result {
	if preds.Rank() != 4 {
		panic(fmt.Sprintf("pimexec: want B×L×H×CH predictions, got %v", preds.Shape()))
	}
	if iterations < 1 {
		panic("pimexec: need at least one iteration")
	}
	nb, nl, nh, ch := preds.Dim(0), preds.Dim(1), preds.Dim(2), preds.Dim(3)
	nv := x.Cfg.Vaults
	res := Result{Dim: x.Dim, Vaults: make([]VaultStats, nv)}

	b := tensor.New(nl, nh)
	c := tensor.New(nl, nh)
	v := tensor.New(nb, nh, ch)
	s := tensor.New(nb, nh, ch)
	pd, bd, cd, vd, sd := preds.Data(), b.Data(), c.Data(), v.Data(), s.Data()

	// ownerOf maps a snippet index along the distribution dimension to
	// its vault (round-robin, as the hardware scheduler assigns
	// snippets §5.1.2).
	extent := map[distribute.Dimension]int{distribute.DimB: nb, distribute.DimL: nl, distribute.DimH: nh}[x.Dim]
	ownerOf := func(idx int) int { return idx % nv }

	charge := func(vault int, ops pe.OpCounts, blocks float64) {
		st := &res.Vaults[vault]
		st.ComputeCycles += x.Spec.OpCycles(ops) / float64(x.Cfg.PEsPerVault)
		st.MemoryBlocks += blocks
	}
	send := func(from, to int, bytes float64) {
		if from == to {
			return
		}
		res.Vaults[from].SentBytes += bytes
		res.Vaults[to].RecvBytes += bytes
	}
	wordBlocks := func(words int) float64 {
		return float64(words*workload.WordBytes) / float64(x.Cfg.BlockBytes)
	}

	mathOps := x.Math
	if mathOps == nil {
		mathOps = capsnet.NewPEMath()
	}

	// Phase bookkeeping for the optional trace: phases are barriers,
	// so the global clock advances by the busiest vault's delta.
	prevCycles := make([]float64, nv)
	globalTS := 0.0
	endPhase := func(name string) {
		res.Phases++
		var maxDelta float64
		for vi := range res.Vaults {
			delta := res.Vaults[vi].ComputeCycles - prevCycles[vi]
			if delta > maxDelta {
				maxDelta = delta
			}
			if x.Trace != nil && delta > 0 {
				x.Trace.Complete(name, "vault-compute", 0, vi, globalTS, delta, nil)
			}
			prevCycles[vi] = res.Vaults[vi].ComputeCycles
		}
		globalTS += maxDelta
	}

	for it := 0; it < iterations; it++ {
		// --- Eq. 5: softmax of the shared logits. Parallel only on
		// L (Table 2): each L row is one softmax, executed in the
		// vault owning that row's snippet (L-dim) or row-distributed
		// round-robin after a gather (B/H dims, the paper's
		// pre-aggregation path).
		for i := 0; i < nl; i++ {
			vault := ownerOf(i % extent)
			row := bd[i*nh : (i+1)*nh]
			out := cd[i*nh : (i+1)*nh]
			maxv := row[0]
			for _, q := range row[1:] {
				if q > maxv {
					maxv = q
				}
			}
			var sum float32
			for j, q := range row {
				e := mathOps.Exp(q - maxv)
				out[j] = e
				sum += e
			}
			if sum == 0 {
				for j := range out {
					out[j] = 1 / float32(nh)
				}
			} else {
				inv := mathOps.Recip(sum)
				for j := range out {
					out[j] *= inv
				}
			}
			charge(vault, pe.OpCounts{Exp: float64(nh), Add: float64(nh), Mul: float64(nh), Recip: 1},
				wordBlocks(2*nh))
		}
		endPhase(fmt.Sprintf("it%d-eq5-softmax", it))

		// When not distributed on L, the fresh coefficients must be
		// scattered to the vaults that hold the snippets (M model's
		// c_ij broadcast term).
		if x.Dim != distribute.DimL {
			bytes := float64(nl*nh*workload.WordBytes) / float64(nv)
			for dst := 0; dst < nv; dst++ {
				send(dst%nv, (dst+1)%nv, bytes) // ring-model scatter
			}
		}

		// --- Eq. 2 + Eq. 3: weighted aggregation and squash.
		for i := range sd {
			sd[i] = 0
		}
		for k := 0; k < nb; k++ {
			for j := 0; j < nh; j++ {
				var vault int
				switch x.Dim {
				case distribute.DimB:
					vault = ownerOf(k)
				case distribute.DimH:
					vault = ownerOf(j)
				default: // DimL: partial sums per L snippet, reduced below
					vault = -1
				}
				sp := sd[(k*nh+j)*ch : (k*nh+j+1)*ch]
				if x.Dim == distribute.DimL {
					// Each vault accumulates its L slice; the
					// all-reduce of s is the M model's first term.
					for i := 0; i < nl; i++ {
						w := ownerOf(i)
						cij := cd[i*nh+j]
						up := pd[((k*nl+i)*nh+j)*ch : ((k*nl+i)*nh+j+1)*ch]
						for d := 0; d < ch; d++ {
							sp[d] += cij * up[d]
						}
						charge(w, pe.OpCounts{MAC: float64(ch)}, wordBlocks(ch))
					}
					for w := 0; w < nv; w++ {
						send(w, 0, float64(ch*workload.WordBytes))
					}
					vault = 0
				} else {
					for i := 0; i < nl; i++ {
						cij := cd[i*nh+j]
						up := pd[((k*nl+i)*nh+j)*ch : ((k*nl+i)*nh+j+1)*ch]
						for d := 0; d < ch; d++ {
							sp[d] += cij * up[d]
						}
					}
					charge(vault, pe.OpCounts{MAC: float64(nl * ch)}, wordBlocks(nl*ch))
				}
				// Eq. 3 squash where s was finalized.
				dst := vd[(k*nh+j)*ch : (k*nh+j+1)*ch]
				squashPE(mathOps, dst, sp)
				charge(vault, pe.OpCounts{MAC: float64(ch), Recip: 1, InvSqrt: 1, Mul: float64(ch + 2), Add: 1},
					wordBlocks(2*ch))
				if x.Dim == distribute.DimL {
					// Broadcast v back to all L-snippet vaults (M
					// model's second term).
					for w := 1; w < nv; w++ {
						send(0, w, float64(ch*workload.WordBytes))
					}
				}
			}
		}
		endPhase(fmt.Sprintf("it%d-eq2-eq3-aggregate-squash", it))

		if it == iterations-1 {
			break
		}

		// --- Eq. 4: agreement accumulation (batch-aggregated).
		for k := 0; k < nb; k++ {
			for i := 0; i < nl; i++ {
				for j := 0; j < nh; j++ {
					var vault int
					switch x.Dim {
					case distribute.DimB:
						vault = ownerOf(k)
					case distribute.DimL:
						vault = ownerOf(i)
					default:
						vault = ownerOf(j)
					}
					up := pd[((k*nl+i)*nh+j)*ch : ((k*nl+i)*nh+j+1)*ch]
					vp := vd[(k*nh+j)*ch : (k*nh+j+1)*ch]
					var dot float32
					for d := 0; d < ch; d++ {
						dot += up[d] * vp[d]
					}
					bd[i*nh+j] += dot
					charge(vault, pe.OpCounts{MAC: float64(ch), Add: 1}, wordBlocks(2*ch))
				}
			}
		}
		if x.Dim == distribute.DimB {
			// Pre-aggregated b_ij partials gather to one place (the M
			// model's b term).
			bytes := float64(nl * nh * workload.WordBytes)
			for w := 1; w < nv; w++ {
				send(w, 0, bytes/float64(nv))
			}
		}
		endPhase(fmt.Sprintf("it%d-eq4-agreement", it))
	}

	// Replicate the shared coefficients/logits across the batch axis
	// to match capsnet.RoutingResult's layout.
	fullC := tensor.New(nb, nl, nh)
	fullB := tensor.New(nb, nl, nh)
	for k := 0; k < nb; k++ {
		copy(fullC.Data()[k*nl*nh:(k+1)*nl*nh], cd)
		copy(fullB.Data()[k*nl*nh:(k+1)*nl*nh], bd)
	}
	res.Routing = capsnet.RoutingResult{V: v, C: fullC, B: fullB}
	return res
}

// squashPE applies Eq. 3 with the executor's math.
func squashPE(m capsnet.RoutingMath, dst, src []float32) {
	var sq float32
	for _, q := range src {
		sq += q * q
	}
	if sq == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	scale := sq * m.Recip(1+sq) * m.InvSqrt(sq)
	for i := range src {
		dst[i] = src[i] * scale
	}
}

// EstimateSeconds converts the run's accounting into a wall-time
// estimate under cfg: the busiest vault's compute and bank-streaming
// cycles (phases are barriers, so the maximum binds) plus the
// crossbar transfers at port bandwidth.
func (r Result) EstimateSeconds(cfg hmc.Config) float64 {
	var worst float64
	for _, vs := range r.Vaults {
		cycles := vs.ComputeCycles + vs.MemoryBlocks*float64(cfg.IssueCycles)
		if cycles > worst {
			worst = cycles
		}
	}
	comm := r.TotalCommBytes() / cfg.VaultBW()
	return worst/cfg.ClockHz + comm
}
