// Package dataset generates seeded synthetic image-classification
// datasets that stand in for MNIST, CIFAR10, EMNIST and SVHN (which
// are unavailable in this offline environment; see DESIGN.md §2).
//
// Each class owns a smooth random prototype image; samples are the
// prototype plus per-pixel Gaussian noise and a small random global
// intensity shift, clamped to [0, 1]. The resulting problems are
// learnable but not trivial, which is all the paper's accuracy
// experiments (Table 5) require: they measure the accuracy *delta*
// between exact and PE-approximated routing on a trained model.
package dataset

import (
	"fmt"
	"math/rand"

	"pimcapsnet/internal/tensor"
)

// Spec describes a synthetic dataset.
type Spec struct {
	Name     string
	Classes  int
	Channels int
	H, W     int
	// Noise is the per-pixel Gaussian noise σ added to prototypes.
	Noise float64
	// Seed drives prototype and sample generation.
	Seed int64
}

// Predefined dataset specs mirroring the shapes and class counts of
// the paper's four dataset families (Table 1).
func MNISTLike() Spec {
	return Spec{Name: "mnist-like", Classes: 10, Channels: 1, H: 28, W: 28, Noise: 0.15, Seed: 101}
}
func CIFAR10Like() Spec {
	return Spec{Name: "cifar10-like", Classes: 10, Channels: 3, H: 32, W: 32, Noise: 0.2, Seed: 102}
}
func EMNISTLettersLike() Spec {
	return Spec{Name: "emnist-letters-like", Classes: 26, Channels: 1, H: 28, W: 28, Noise: 0.15, Seed: 103}
}
func EMNISTBalancedLike() Spec {
	return Spec{Name: "emnist-balanced-like", Classes: 47, Channels: 1, H: 28, W: 28, Noise: 0.15, Seed: 104}
}
func EMNISTByClassLike() Spec {
	return Spec{Name: "emnist-byclass-like", Classes: 62, Channels: 1, H: 28, W: 28, Noise: 0.15, Seed: 105}
}
func SVHNLike() Spec {
	return Spec{Name: "svhn-like", Classes: 10, Channels: 3, H: 32, W: 32, Noise: 0.2, Seed: 106}
}

// Tiny returns a small dataset for unit tests and quick examples.
func Tiny(classes int) Spec {
	return Spec{Name: fmt.Sprintf("tiny-%d", classes), Classes: classes, Channels: 1, H: 12, W: 12, Noise: 0.1, Seed: 99}
}

// ByName returns the predefined spec for a dataset family name used in
// Table 1 ("MNIST", "CIFAR10", "EMNIST Letter", "EMNIST Balanced",
// "EMNIST By Class", "SVHN").
func ByName(name string) (Spec, error) {
	switch name {
	case "MNIST":
		return MNISTLike(), nil
	case "CIFAR10":
		return CIFAR10Like(), nil
	case "EMNIST Letter":
		return EMNISTLettersLike(), nil
	case "EMNIST Balanced":
		return EMNISTBalancedLike(), nil
	case "EMNIST By Class":
		return EMNISTByClassLike(), nil
	case "SVHN":
		return SVHNLike(), nil
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Dataset holds generated samples.
type Dataset struct {
	Spec   Spec
	Images *tensor.Tensor // N×C×H×W in [0,1]
	Labels []int
}

// Generator produces samples for a Spec.
type Generator struct {
	spec       Spec
	prototypes []*tensor.Tensor // one C×H×W prototype per class
	rng        *rand.Rand
}

// NewGenerator builds the class prototypes for spec.
func NewGenerator(spec Spec) *Generator {
	if spec.Classes <= 0 || spec.Channels <= 0 || spec.H <= 0 || spec.W <= 0 {
		panic(fmt.Sprintf("dataset: invalid spec %+v", spec))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g := &Generator{spec: spec, rng: rng}
	for c := 0; c < spec.Classes; c++ {
		g.prototypes = append(g.prototypes, smoothPrototype(spec, rng))
	}
	return g
}

// smoothPrototype samples white noise and box-blurs it twice, yielding
// a smooth class-specific pattern in [0,1].
func smoothPrototype(spec Spec, rng *rand.Rand) *tensor.Tensor {
	p := tensor.New(spec.Channels, spec.H, spec.W)
	for i := range p.Data() {
		p.Data()[i] = rng.Float32()
	}
	for pass := 0; pass < 2; pass++ {
		blur(p, spec)
	}
	// Stretch contrast to span [0.1, 0.9].
	lo, hi := p.Data()[0], p.Data()[0]
	for _, v := range p.Data() {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for i, v := range p.Data() {
		p.Data()[i] = 0.1 + 0.8*(v-lo)/span
	}
	return p
}

func blur(p *tensor.Tensor, spec Spec) {
	tmp := p.Clone()
	for c := 0; c < spec.Channels; c++ {
		for y := 0; y < spec.H; y++ {
			for x := 0; x < spec.W; x++ {
				var sum float32
				var n float32
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= spec.H || xx < 0 || xx >= spec.W {
							continue
						}
						sum += tmp.At(c, yy, xx)
						n++
					}
				}
				p.Set(sum/n, c, y, x)
			}
		}
	}
}

// Sample writes one image of class label into dst (a C·H·W slice).
func (g *Generator) Sample(dst []float32, label int) {
	proto := g.prototypes[label].Data()
	shift := float32(g.rng.NormFloat64()) * 0.05
	for i, v := range proto {
		x := v + shift + float32(g.rng.NormFloat64())*float32(g.spec.Noise)
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		dst[i] = x
	}
}

// Generate produces n samples with labels cycling through the classes
// (so every class is represented for n ≥ Classes).
func (g *Generator) Generate(n int) *Dataset {
	imgLen := g.spec.Channels * g.spec.H * g.spec.W
	images := tensor.New(n, g.spec.Channels, g.spec.H, g.spec.W)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % g.spec.Classes
		labels[i] = label
		g.Sample(images.Data()[i*imgLen:(i+1)*imgLen], label)
	}
	return &Dataset{Spec: g.spec, Images: images, Labels: labels}
}

// GenerateShuffled produces n samples with uniformly random labels.
func (g *Generator) GenerateShuffled(n int) *Dataset {
	imgLen := g.spec.Channels * g.spec.H * g.spec.W
	images := tensor.New(n, g.spec.Channels, g.spec.H, g.spec.W)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		label := g.rng.Intn(g.spec.Classes)
		labels[i] = label
		g.Sample(images.Data()[i*imgLen:(i+1)*imgLen], label)
	}
	return &Dataset{Spec: g.spec, Images: images, Labels: labels}
}
