package dataset

import (
	"testing"
)

func TestPredefinedSpecs(t *testing.T) {
	cases := []struct {
		spec    Spec
		classes int
		ch      int
	}{
		{MNISTLike(), 10, 1},
		{CIFAR10Like(), 10, 3},
		{EMNISTLettersLike(), 26, 1},
		{EMNISTBalancedLike(), 47, 1},
		{EMNISTByClassLike(), 62, 1},
		{SVHNLike(), 10, 3},
	}
	for _, c := range cases {
		if c.spec.Classes != c.classes || c.spec.Channels != c.ch {
			t.Fatalf("%s: classes=%d channels=%d, want %d/%d", c.spec.Name, c.spec.Classes, c.spec.Channels, c.classes, c.ch)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"MNIST", "CIFAR10", "EMNIST Letter", "EMNIST Balanced", "EMNIST By Class", "SVHN"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("imagenet"); err == nil {
		t.Fatal("ByName must reject unknown datasets")
	}
}

func TestGenerateShapesAndRange(t *testing.T) {
	g := NewGenerator(Tiny(4))
	ds := g.Generate(20)
	sh := ds.Images.Shape()
	if sh[0] != 20 || sh[1] != 1 || sh[2] != 12 || sh[3] != 12 {
		t.Fatalf("shape %v", sh)
	}
	for i, v := range ds.Images.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %d = %v outside [0,1]", i, v)
		}
	}
	for i, l := range ds.Labels {
		if l != i%4 {
			t.Fatalf("label %d = %d, want cycling", i, l)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(Tiny(3)).Generate(9)
	b := NewGenerator(Tiny(3)).Generate(9)
	if !a.Images.Equal(b.Images) {
		t.Fatal("same seed must generate identical data")
	}
}

func TestClassesAreSeparated(t *testing.T) {
	// Same-class samples must be closer to their prototype than to
	// other prototypes on average — the learnability property the
	// accuracy experiments rely on.
	g := NewGenerator(Tiny(3))
	ds := g.Generate(30)
	imgLen := 12 * 12
	centroids := make([][]float32, 3)
	counts := make([]int, 3)
	for c := range centroids {
		centroids[c] = make([]float32, imgLen)
	}
	for i, l := range ds.Labels {
		img := ds.Images.Data()[i*imgLen : (i+1)*imgLen]
		for p, v := range img {
			centroids[l][p] += v
		}
		counts[l]++
	}
	for c := range centroids {
		for p := range centroids[c] {
			centroids[c][p] /= float32(counts[c])
		}
	}
	correct := 0
	for i, l := range ds.Labels {
		img := ds.Images.Data()[i*imgLen : (i+1)*imgLen]
		best, bestD := -1, float32(1e30)
		for c := range centroids {
			var d float32
			for p := range img {
				diff := img[p] - centroids[c][p]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == l {
			correct++
		}
	}
	if correct < 25 {
		t.Fatalf("nearest-centroid only classifies %d/30 — classes not separated", correct)
	}
}

func TestGenerateShuffledCoversClasses(t *testing.T) {
	g := NewGenerator(Tiny(4))
	ds := g.GenerateShuffled(200)
	seen := map[int]bool{}
	for _, l := range ds.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d classes seen in 200 shuffled samples", len(seen))
	}
}

func TestSampleWritesFullImage(t *testing.T) {
	g := NewGenerator(Tiny(2))
	buf := make([]float32, 12*12)
	g.Sample(buf, 1)
	nonzero := 0
	for _, v := range buf {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 100 {
		t.Fatalf("sample appears mostly empty (%d nonzero)", nonzero)
	}
}
