//pimcaps:bitexact

package dataset

import (
	"math"
	"testing"
)

func TestRotatedPreservesShapeAndLabels(t *testing.T) {
	g := NewGenerator(Tiny(3))
	ds := g.Generate(9)
	rot := ds.Rotated(30)
	if !equalShapes(ds, rot) {
		t.Fatal("rotation changed tensor shape")
	}
	for i := range ds.Labels {
		if ds.Labels[i] != rot.Labels[i] {
			t.Fatal("rotation changed labels")
		}
	}
	for _, v := range rot.Images.Data() {
		if v < 0 || v > 1.0001 {
			t.Fatalf("rotated pixel %v outside range", v)
		}
	}
}

func TestRotatedZeroIsNearIdentity(t *testing.T) {
	g := NewGenerator(Tiny(2))
	ds := g.Generate(4)
	rot := ds.Rotated(0)
	for i, v := range rot.Images.Data() {
		if math.Abs(float64(v-ds.Images.Data()[i])) > 1e-5 {
			t.Fatalf("0° rotation changed pixel %d: %v vs %v", i, v, ds.Images.Data()[i])
		}
	}
}

func TestRotatedChangesPixels(t *testing.T) {
	g := NewGenerator(Tiny(2))
	ds := g.Generate(4)
	rot := ds.Rotated(45)
	diff := 0
	for i, v := range rot.Images.Data() {
		if math.Abs(float64(v-ds.Images.Data()[i])) > 1e-3 {
			diff++
		}
	}
	if diff < 50 {
		t.Fatalf("45° rotation changed only %d pixels", diff)
	}
}

func TestRotated360Roundtrip(t *testing.T) {
	// Rotating by +20 then −20 must approximately restore the
	// interior (borders lose information to zero fill).
	g := NewGenerator(Tiny(2))
	ds := g.Generate(2)
	back := ds.Rotated(20).Rotated(-20)
	h, w := ds.Spec.H, ds.Spec.W
	var worst float64
	for y := 3; y < h-3; y++ {
		for x := 3; x < w-3; x++ {
			a := float64(ds.Images.At(0, 0, y, x))
			b := float64(back.Images.At(0, 0, y, x))
			if d := math.Abs(a - b); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.25 { // double bilinear resampling blurs noisy pixels
		t.Fatalf("interior roundtrip error %.3f too high", worst)
	}
}

func TestShifted(t *testing.T) {
	g := NewGenerator(Tiny(2))
	ds := g.Generate(2)
	sh := ds.Shifted(2, 3)
	// Pixel (y, x) of the shifted image equals pixel (y−2, x−3).
	if got, want := sh.Images.At(0, 0, 5, 7), ds.Images.At(0, 0, 3, 4); got != want {
		t.Fatalf("shift mapping wrong: %v vs %v", got, want)
	}
	// Vacated border is zero filled.
	if sh.Images.At(0, 0, 0, 0) != 0 || sh.Images.At(0, 0, 11, 1) != 0 {
		t.Fatal("vacated border not zero")
	}
	if !equalShapes(ds, sh) {
		t.Fatal("shift changed shape")
	}
}

func TestShiftedZeroIsIdentity(t *testing.T) {
	g := NewGenerator(Tiny(2))
	ds := g.Generate(2)
	sh := ds.Shifted(0, 0)
	if !ds.Images.Equal(sh.Images) {
		t.Fatal("zero shift changed data")
	}
}

func equalShapes(a, b *Dataset) bool {
	sa, sb := a.Images.Shape(), b.Images.Shape()
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
