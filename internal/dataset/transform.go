package dataset

import (
	"math"

	"pimcapsnet/internal/tensor"
)

// Rotated returns a copy of the dataset with every image rotated by
// deg degrees about its center (bilinear sampling, zero fill) — the
// pose change the paper's §1 argues pooling CNNs cannot track while
// capsules can.
func (d *Dataset) Rotated(deg float64) *Dataset {
	out := &Dataset{
		Spec:   d.Spec,
		Images: tensor.New(d.Images.Shape()...),
		Labels: append([]int(nil), d.Labels...),
	}
	n := d.Images.Dim(0)
	imgLen := d.Spec.Channels * d.Spec.H * d.Spec.W
	for k := 0; k < n; k++ {
		rotateInto(
			out.Images.Data()[k*imgLen:(k+1)*imgLen],
			d.Images.Data()[k*imgLen:(k+1)*imgLen],
			d.Spec.Channels, d.Spec.H, d.Spec.W, deg)
	}
	return out
}

// Shifted returns a copy with every image translated by (dy, dx)
// pixels, zero fill.
func (d *Dataset) Shifted(dy, dx int) *Dataset {
	out := &Dataset{
		Spec:   d.Spec,
		Images: tensor.New(d.Images.Shape()...),
		Labels: append([]int(nil), d.Labels...),
	}
	c, h, w := d.Spec.Channels, d.Spec.H, d.Spec.W
	imgLen := c * h * w
	n := d.Images.Dim(0)
	for k := 0; k < n; k++ {
		src := d.Images.Data()[k*imgLen : (k+1)*imgLen]
		dst := out.Images.Data()[k*imgLen : (k+1)*imgLen]
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				sy := y - dy
				if sy < 0 || sy >= h {
					continue
				}
				for x := 0; x < w; x++ {
					sx := x - dx
					if sx < 0 || sx >= w {
						continue
					}
					dst[ch*h*w+y*w+x] = src[ch*h*w+sy*w+sx]
				}
			}
		}
	}
	return out
}

// rotateInto rotates one C×H×W image by deg degrees with bilinear
// interpolation.
func rotateInto(dst, src []float32, c, h, w int, deg float64) {
	rad := deg * math.Pi / 180
	sin, cos := math.Sin(rad), math.Cos(rad)
	cy, cx := float64(h-1)/2, float64(w-1)/2
	for ch := 0; ch < c; ch++ {
		plane := src[ch*h*w : (ch+1)*h*w]
		out := dst[ch*h*w : (ch+1)*h*w]
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				// Inverse mapping: destination → source.
				fy := float64(y) - cy
				fx := float64(x) - cx
				sy := cos*fy + sin*fx + cy
				sx := -sin*fy + cos*fx + cx
				y0, x0 := int(math.Floor(sy)), int(math.Floor(sx))
				if y0 < -1 || y0 >= h || x0 < -1 || x0 >= w {
					continue
				}
				wy := float32(sy - float64(y0))
				wx := float32(sx - float64(x0))
				sample := func(yy, xx int) float32 {
					if yy < 0 || yy >= h || xx < 0 || xx >= w {
						return 0
					}
					return plane[yy*w+xx]
				}
				v := (1-wy)*(1-wx)*sample(y0, x0) +
					(1-wy)*wx*sample(y0, x0+1) +
					wy*(1-wx)*sample(y0+1, x0) +
					wy*wx*sample(y0+1, x0+1)
				out[y*w+x] = v
			}
		}
	}
}
