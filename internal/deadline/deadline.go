// Package deadline defines the end-to-end deadline header contract the
// serving stack propagates across tiers: clients (and cmd/capsnet-router
// on their behalf) stamp each request with an absolute wall-clock
// deadline, the router deducts elapsed time from it before every retry
// or hedge, and capsnet-serve derives each request's context from it —
// so a request's total budget is spent once, end to end, instead of
// resetting at every hop.
//
// The wire format is deliberately minimal: one header carrying the
// absolute deadline as integer Unix milliseconds. Absolute (not a
// relative "timeout budget") because an absolute instant survives any
// number of forwarding hops without each hop having to subtract its own
// elapsed time before re-encoding — every tier just compares against
// its own clock. Millisecond resolution matches the granularity of the
// serving stack's timeouts and keeps the header a short decimal
// integer. Clock skew between tiers shifts budgets by the skew; on the
// loopback deployments this stack targets (router and replicas on one
// host) the skew is zero, and across hosts NTP-grade skew is far below
// the second-scale budgets in play.
//
// The package is standard-library only and imported from both sides of
// the tier boundary (internal/serve and internal/cluster), which is
// legal under the layer table precisely because it carries no behavior
// from either side — it is a wire contract, like the /readyz load body.
package deadline

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Header is the absolute-deadline request header: integer Unix
// milliseconds, e.g. "X-Deadline: 1754700000123".
const Header = "X-Deadline"

// Format renders t as the Header wire value.
func Format(t time.Time) string {
	return strconv.FormatInt(t.UnixMilli(), 10)
}

// Parse decodes one Header value. ok is false when value is empty (no
// deadline was propagated); err is non-nil when a value is present but
// not a positive integer millisecond timestamp.
func Parse(value string) (t time.Time, ok bool, err error) {
	if value == "" {
		return time.Time{}, false, nil
	}
	ms, perr := strconv.ParseInt(value, 10, 64)
	if perr != nil || ms <= 0 {
		return time.Time{}, false, fmt.Errorf("deadline: %q is not a positive Unix-millisecond timestamp", value)
	}
	return time.UnixMilli(ms), true, nil
}

// FromRequest extracts the propagated deadline from h. ok is false
// when no deadline header is present.
func FromRequest(h http.Header) (t time.Time, ok bool, err error) {
	return Parse(h.Get(Header))
}

// Set stamps h with t as the propagated deadline.
func Set(h http.Header, t time.Time) {
	h.Set(Header, Format(t))
}
