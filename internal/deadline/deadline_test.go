package deadline

import (
	"net/http"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	want := time.Date(2026, 8, 9, 12, 30, 45, 123_000_000, time.UTC)
	got, ok, err := Parse(Format(want))
	if err != nil || !ok {
		t.Fatalf("Parse(Format(%v)) = ok=%v err=%v", want, ok, err)
	}
	if !got.Equal(want) {
		t.Fatalf("round trip lost precision: got %v, want %v", got, want)
	}
}

func TestParseEmpty(t *testing.T) {
	_, ok, err := Parse("")
	if ok || err != nil {
		t.Fatalf("Parse(\"\") = ok=%v err=%v, want absent with no error", ok, err)
	}
}

func TestParseInvalid(t *testing.T) {
	for _, v := range []string{"abc", "-5", "0", "1.5", "2026-08-09T12:00:00Z"} {
		if _, ok, err := Parse(v); err == nil || ok {
			t.Errorf("Parse(%q) = ok=%v err=%v, want error", v, ok, err)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := http.Header{}
	if _, ok, err := FromRequest(h); ok || err != nil {
		t.Fatalf("FromRequest on empty header = ok=%v err=%v", ok, err)
	}
	want := time.Now().Add(750 * time.Millisecond).Truncate(time.Millisecond)
	Set(h, want)
	got, ok, err := FromRequest(h)
	if err != nil || !ok {
		t.Fatalf("FromRequest = ok=%v err=%v", ok, err)
	}
	if !got.Equal(want) {
		t.Fatalf("header round trip: got %v, want %v", got, want)
	}
}

// TestSubMillisecondTruncation pins the wire resolution: formatting
// truncates to the millisecond, so budgets shrink (never grow) across
// a hop.
func TestSubMillisecondTruncation(t *testing.T) {
	base := time.UnixMilli(1_754_700_000_123)
	got, ok, err := Parse(Format(base.Add(900 * time.Microsecond)))
	if err != nil || !ok {
		t.Fatal(err)
	}
	if !got.Equal(base) {
		t.Fatalf("sub-millisecond component must truncate toward the past: got %v, want %v", got, base)
	}
}
