//pimcaps:bitexact

package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New()
	var hits []float64
	e.After(2, func() {
		hits = append(hits, e.Now())
		e.After(3, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 2 || hits[1] != 5 {
		t.Fatalf("hits %v", hits)
	}
	if e.Fired() != 2 {
		t.Fatalf("fired %d", e.Fired())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	e := New()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(1, func() { fired++ })
	e.At(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 1 || e.Now() != 5 {
		t.Fatalf("fired %d at %v", fired, e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d after Run", fired)
	}
}

func TestResourceSerializesDeterministically(t *testing.T) {
	// 4 jobs of 2 time units each on a capacity-1 server, all
	// arriving at t=0: completion at 2,4,6,8; waits 0,2,4,6.
	e := New()
	r := NewResource(e, "srv", 1)
	var done []float64
	for i := 0; i < 4; i++ {
		r.Acquire(func(release func()) {
			e.After(2, func() {
				done = append(done, e.Now())
				release()
			})
		})
	}
	e.Run()
	want := []float64{2, 4, 6, 8}
	for i, v := range done {
		if v != want[i] {
			t.Fatalf("done %v", done)
		}
	}
	if r.MeanWait() != 3 { // (0+2+4+6)/4
		t.Fatalf("mean wait %v", r.MeanWait())
	}
	if r.Utilization() != 1 {
		t.Fatalf("utilization %v", r.Utilization())
	}
	if r.PeakQueue != 3 {
		t.Fatalf("peak queue %d", r.PeakQueue)
	}
}

func TestResourceCapacityParallelism(t *testing.T) {
	// Capacity 2: 4 jobs of 2 units finish at 2,2,4,4.
	e := New()
	r := NewResource(e, "srv", 2)
	var done []float64
	for i := 0; i < 4; i++ {
		r.Acquire(func(release func()) {
			e.After(2, func() {
				done = append(done, e.Now())
				release()
			})
		})
	}
	e.Run()
	if e.Now() != 4 {
		t.Fatalf("makespan %v, want 4", e.Now())
	}
	if r.Utilization() != 1 {
		t.Fatalf("utilization %v", r.Utilization())
	}
	_ = done
}

func TestDoubleReleasePanics(t *testing.T) {
	e := New()
	r := NewResource(e, "srv", 1)
	var rel func()
	r.Acquire(func(release func()) { rel = release })
	e.Run()
	rel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	rel()
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(New(), "bad", 0)
}
