// Package des is a small deterministic discrete-event simulation
// engine: a time-ordered event queue plus FIFO resources with
// waiting-time accounting. internal/hmc builds its high-fidelity
// vault model on it, cross-validating the fast window simulator that
// internal/core scales to full workloads.
package des

import (
	"container/heap"
	"fmt"
)

// Engine owns simulated time and the pending event queue.
type Engine struct {
	now    float64
	queue  eventHeap
	serial uint64 // tie-breaker: same-time events fire in schedule order
	fired  uint64
}

// New returns an engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns how many events have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn at absolute time t (panics if t is in the past).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, e.now))
	}
	heap.Push(&e.queue, &event{at: t, seq: e.serial, fn: fn})
	e.serial++
}

// After schedules fn d time units from now (d must be ≥ 0).
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Run executes events until the queue is empty and returns the final
// time.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with time ≤ t, then sets now = t.
func (e *Engine) RunUntil(t float64) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.fired++
	ev.fn()
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at < h[j].at {
		return true
	}
	if h[i].at > h[j].at {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Resource is a FIFO server pool: Capacity concurrent holders,
// additional requesters queue in arrival order.
type Resource struct {
	eng      *Engine
	Name     string
	Capacity int

	busy    int
	waiters []*request

	// Stats.
	TotalWait    float64 // summed queueing delay
	TotalService float64 // summed holding time
	Served       uint64
	PeakQueue    int
}

type request struct {
	arrived float64
	fn      func(release func())
}

// NewResource attaches a resource with the given capacity to the
// engine.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("des: resource %q capacity %d must be positive", name, capacity))
	}
	return &Resource{eng: eng, Name: name, Capacity: capacity}
}

// Acquire requests the resource; fn runs (possibly later) once a slot
// is free and receives a release callback it must invoke exactly once
// when done holding the slot.
func (r *Resource) Acquire(fn func(release func())) {
	req := &request{arrived: r.eng.Now(), fn: fn}
	if r.busy < r.Capacity {
		r.grant(req)
		return
	}
	r.waiters = append(r.waiters, req)
	if len(r.waiters) > r.PeakQueue {
		r.PeakQueue = len(r.waiters)
	}
}

func (r *Resource) grant(req *request) {
	r.busy++
	r.Served++
	r.TotalWait += r.eng.Now() - req.arrived
	start := r.eng.Now()
	released := false
	req.fn(func() {
		if released {
			panic(fmt.Sprintf("des: double release of %q", r.Name))
		}
		released = true
		r.TotalService += r.eng.Now() - start
		r.busy--
		if len(r.waiters) > 0 {
			next := r.waiters[0]
			r.waiters = r.waiters[1:]
			r.grant(next)
		}
	})
}

// Utilization returns the mean busy fraction over [0, now] for a
// single-capacity resource (TotalService / (now·Capacity)).
func (r *Resource) Utilization() float64 {
	t := r.eng.Now()
	if t == 0 {
		return 0
	}
	return r.TotalService / (t * float64(r.Capacity))
}

// MeanWait returns the average queueing delay per granted request.
func (r *Resource) MeanWait() float64 {
	if r.Served == 0 {
		return 0
	}
	return r.TotalWait / float64(r.Served)
}
