package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// SweepPoint is one offered rate's summary in a latency/throughput
// sweep.
type SweepPoint struct {
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	Availability float64 `json:"availability"`
	P50          float64 `json:"p50_seconds"`
	P99          float64 `json:"p99_seconds"`
	P999         float64 `json:"p999_seconds"`
}

// PointFromResult condenses one run into a sweep point.
func PointFromResult(offeredRate float64, r *Result) SweepPoint {
	return SweepPoint{
		OfferedRate:  offeredRate,
		AchievedRate: r.AchievedRate(),
		Availability: r.Availability(),
		P50:          r.Latency.Quantile(0.5),
		P99:          r.Latency.Quantile(0.99),
		P999:         r.Latency.Quantile(0.999),
	}
}

// KneeConfig defines what "still healthy" means when walking the
// sweep toward saturation.
type KneeConfig struct {
	// MinAvailability is the floor below which a point is saturated
	// (default 0.99).
	MinAvailability float64
	// P99Factor saturates a point whose p99 exceeds this multiple of
	// the lowest-rate point's p99 (default 5). The comparison floor
	// is P99Floor so a sub-millisecond base p99 does not make 5× a
	// meaninglessly tight bound.
	P99Factor float64
	// P99Floor is the minimum p99 budget in seconds (default 50ms).
	P99Floor float64
}

func (c KneeConfig) withDefaults() KneeConfig {
	if c.MinAvailability <= 0 {
		c.MinAvailability = 0.99
	}
	if c.P99Factor <= 0 {
		c.P99Factor = 5
	}
	if c.P99Floor <= 0 {
		c.P99Floor = 0.05
	}
	return c
}

// FindKnee locates the knee of the latency/throughput curve: the
// highest offered rate (scanning points in ascending rate order)
// whose availability and p99 are still healthy, just below the
// terminal run of saturated points. Real saturation is terminal —
// once offered load exceeds capacity, every higher rate is also
// saturated — so an unhealthy point bracketed by healthy higher rates
// is a measurement hiccup (a scheduler stall on a shared runner, a GC
// pause) and is skipped, not treated as the knee; without this, one
// transient spike mid-sweep would collapse the reported knee and flip
// the CI gate on noise. It returns the knee rate, the index of the
// knee point, and whether the sweep never saturated (the knee is then
// a lower bound: the true capacity lies beyond the highest swept
// rate). Index −1 means the whole sweep was saturated.
func FindKnee(points []SweepPoint, cfg KneeConfig) (rate float64, idx int, saturatedNowhere bool) {
	cfg = cfg.withDefaults()
	pts := append([]SweepPoint(nil), points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].OfferedRate < pts[j].OfferedRate })
	if len(pts) == 0 {
		return 0, -1, false
	}
	budget := cfg.P99Factor * pts[0].P99
	if budget < cfg.P99Floor {
		budget = cfg.P99Floor
	}
	saturated := func(p SweepPoint) bool {
		return p.Availability < cfg.MinAvailability || p.P99 > budget
	}
	// t is the start of the terminal saturated run (len if none).
	t := len(pts)
	for t > 0 && saturated(pts[t-1]) {
		t--
	}
	if t == 0 {
		return 0, -1, false
	}
	return pts[t-1].OfferedRate, t - 1, t == len(pts)
}

// StageShare is one stage of the server's Figure-3-style
// decomposition over the load window: how much forward-pass/pipeline
// time the stage accumulated and its share of the total.
type StageShare struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// ParseStageSums extracts capsnet_stage_seconds_sum{stage=...} totals
// from a Prometheus text exposition (a replica's /metrics or the
// router's merged /metrics/fleet).
func ParseStageSums(metrics string) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(metrics))
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, `capsnet_stage_seconds_sum{stage="`)
		if !ok {
			continue
		}
		stage, rest, ok := strings.Cut(rest, `"`)
		if !ok {
			continue
		}
		// Skip the per-replica re-exports ({stage=...,replica=...}) in
		// fleet expositions; the merged series has no second label.
		if !strings.HasPrefix(rest, "} ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(rest, "} "), 64)
		if err != nil {
			continue
		}
		out[stage] = v
	}
	return out
}

// StageShares diffs two stage-sum scrapes (before and after the load
// window) into the decomposition of where server time went during the
// window, sorted by descending share. Stages that went backwards
// (server restarted mid-run) are dropped.
func StageShares(before, after map[string]float64) []StageShare {
	var total float64
	var out []StageShare
	for stage, b := range after {
		d := b - before[stage]
		if d > 0 {
			out = append(out, StageShare{Stage: stage, Seconds: d})
			total += d
		}
	}
	for i := range out {
		if total > 0 {
			out[i].Share = out[i].Seconds / total
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds > out[j].Seconds {
			return true
		}
		if out[i].Seconds < out[j].Seconds {
			return false
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// Report is the machine-readable outcome of a capsnet-load run —
// SLO_BASELINE.json holds the committed reference, SLO_pr.json the
// current run the slo-gate CI job uploads.
type Report struct {
	// Target names the tier driven (serve | router) and Shape/Seed/
	// DurationSeconds identify the replayed schedule.
	Target          string  `json:"target"`
	Shape           string  `json:"shape"`
	Seed            int64   `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`
	// ReferenceRate is the offered rate (req/s) the SLO numbers below
	// were measured at.
	ReferenceRate float64 `json:"reference_rate"`
	Offered       int     `json:"offered"`
	Availability  float64 `json:"availability"`
	P50           float64 `json:"p50_seconds"`
	P99           float64 `json:"p99_seconds"`
	P999          float64 `json:"p999_seconds"`
	// MaxLateness reports generator fidelity (see Result.MaxLateness).
	MaxLateness float64 `json:"max_lateness_seconds"`
	// Codes maps status code (stringified, "0" = transport error) to
	// count over the reference run.
	Codes map[string]int `json:"codes,omitempty"`
	// KneeRate is where the latency/throughput curve bends (0 when no
	// sweep ran); KneeUnsaturated marks a sweep that never saturated,
	// making KneeRate a lower bound.
	KneeRate        float64      `json:"knee_rate"`
	KneeUnsaturated bool         `json:"knee_unsaturated,omitempty"`
	Sweep           []SweepPoint `json:"sweep,omitempty"`
	// Stages is the server-side Figure-3 decomposition over the
	// reference window, scraped from /metrics before and after.
	Stages []StageShare `json:"stages,omitempty"`
}

// LoadReport reads a report (or SLO baseline's report half) from
// disk.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parsing %s: %w", path, err)
	}
	return &r, nil
}

// SaveReport writes a report as deterministic indented JSON.
func SaveReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
