package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// funcTarget adapts a function to Target.
type funcTarget func(ctx context.Context, i int) (int, error)

func (f funcTarget) Do(ctx context.Context, i int) (int, error) { return f(ctx, i) }

// uniformSchedule returns n arrivals spaced dt seconds apart starting
// at 0.
func uniformSchedule(n int, dt float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * dt
	}
	return out
}

// TestRunOpenLoopKeepsPace: with an instant target, the run's wall
// time tracks the schedule span (the generator is arrival-driven, not
// completion-driven) and every request lands as OK.
func TestRunOpenLoopKeepsPace(t *testing.T) {
	res := Run(context.Background(), funcTarget(func(context.Context, int) (int, error) {
		return 200, nil
	}), Options{Schedule: uniformSchedule(50, 0.002)})

	if res.OK != 50 || res.Done != 50 || res.Offered != 50 {
		t.Fatalf("offered/done/ok = %d/%d/%d, want 50/50/50", res.Offered, res.Done, res.OK)
	}
	span := 49 * 0.002 // last scheduled arrival
	if res.WallSeconds < span || res.WallSeconds > span+0.5 {
		t.Errorf("wall %gs for a %gs schedule", res.WallSeconds, span)
	}
	if res.Availability() < 0.999 {
		t.Errorf("availability %g, want 1", res.Availability())
	}
}

// TestRunCoordinatedOmissionSafe is the package's reason to exist: a
// target that stalls must NOT slow the arrival schedule down, and
// every request due during the stall must record the queueing delay
// it suffered. A closed-loop client here would report one slow
// request and n−1 fast ones; the open-loop histogram must show a
// whole cohort delayed.
func TestRunCoordinatedOmissionSafe(t *testing.T) {
	const stall = 300 * time.Millisecond
	var concurrent, peak atomic.Int64
	release := make(chan struct{})
	res := make(chan *Result, 1)
	go func() {
		res <- Run(context.Background(), funcTarget(func(ctx context.Context, i int) (int, error) {
			c := concurrent.Add(1)
			defer concurrent.Add(-1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			<-release // every request blocks until the stall lifts
			return 200, nil
		}), Options{Schedule: uniformSchedule(30, 0.01)}) // 30 arrivals over 290ms
	}()
	time.Sleep(stall)
	close(release)
	r := <-res

	// Open loop: all 30 must have been dispatched concurrently during
	// the stall, not serialized behind the first.
	if got := peak.Load(); got < 25 {
		t.Errorf("peak in-flight %d, want ~30: the generator slowed down for in-flight work", got)
	}
	if r.OK != 30 {
		t.Fatalf("ok %d, want 30", r.OK)
	}
	// Every request due in the first ~stall window must have recorded
	// its share of the stall: the median latency spans a large part of
	// it instead of collapsing to the per-request service time.
	if p50 := r.Latency.Quantile(0.5); p50 < 0.1 {
		t.Errorf("p50 %gs under a %v stall — queueing delay was omitted", p50, stall)
	}
	if r.MaxLateness > 0.05 {
		t.Errorf("max dispatch lateness %gs: generator fell behind its own schedule", r.MaxLateness)
	}
}

// TestRunClassifiesStatuses: 2xx → OK, 429/503/504 → Shed, the rest →
// Failed, with the per-code map intact.
func TestRunClassifiesStatuses(t *testing.T) {
	codes := []int{200, 200, 429, 503, 504, 500, 400, 0}
	res := Run(context.Background(), funcTarget(func(_ context.Context, i int) (int, error) {
		return codes[i], nil
	}), Options{Schedule: uniformSchedule(len(codes), 0.001)})

	if res.OK != 2 || res.Shed != 3 || res.Failed != 3 {
		t.Fatalf("ok/shed/failed = %d/%d/%d, want 2/3/3", res.OK, res.Shed, res.Failed)
	}
	if res.Codes[200] != 2 || res.Codes[429] != 1 || res.Codes[0] != 1 {
		t.Fatalf("code map %v", res.Codes)
	}
	if got, want := res.Availability(), 0.25; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("availability %g, want %g", got, want)
	}
}

// TestRunContextCancel: canceling mid-schedule stops dispatching but
// the result still accounts for what was sent.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := atomic.Int64{}
	done := make(chan *Result, 1)
	go func() {
		done <- Run(ctx, funcTarget(func(context.Context, int) (int, error) {
			n.Add(1)
			return 200, nil
		}), Options{Schedule: uniformSchedule(1000, 0.01)}) // 10s schedule
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case r := <-done:
		if r.Done >= r.Offered {
			t.Errorf("done %d of %d offered despite cancellation", r.Done, r.Offered)
		}
		if r.Done != int(n.Load()) {
			t.Errorf("done %d but target saw %d", r.Done, n.Load())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// TestHTTPTarget drives the real HTTP path against a local server,
// including body rotation and the Decorate hook.
func TestHTTPTarget(t *testing.T) {
	var sawHeader atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("X-Probe") == "1" {
			sawHeader.Store(true)
		}
		w.WriteHeader(200)
	}))
	defer srv.Close()

	target := &HTTPTarget{
		Client:   srv.Client(),
		URL:      srv.URL,
		Bodies:   [][]byte{[]byte(`{"a":1}`), []byte(`{"a":2}`)},
		Decorate: func(r *http.Request) { r.Header.Set("X-Probe", "1") },
	}
	res := Run(context.Background(), target, Options{Schedule: uniformSchedule(10, 0.001)})
	if res.OK != 10 {
		t.Fatalf("ok %d, want 10: %v", res.OK, res.Codes)
	}
	if !sawHeader.Load() {
		t.Error("Decorate hook never ran")
	}
}
