//pimcaps:bitexact

package loadgen

import (
	"math"
	"path/filepath"
	"testing"
)

func pt(rate, avail, p99 float64) SweepPoint {
	return SweepPoint{OfferedRate: rate, AchievedRate: rate * avail, Availability: avail, P99: p99}
}

// TestFindKnee walks the canonical shapes of a latency/throughput
// curve.
func TestFindKnee(t *testing.T) {
	healthyThenCollapse := []SweepPoint{
		pt(50, 1, 0.01), pt(100, 1, 0.012), pt(200, 1, 0.02),
		pt(400, 0.97, 0.8), pt(800, 0.5, 5),
	}
	rate, idx, unsat := FindKnee(healthyThenCollapse, KneeConfig{})
	if rate != 200 || idx != 2 || unsat {
		t.Errorf("collapse curve: knee (%g, %d, %v), want (200, 2, false)", rate, idx, unsat)
	}

	// Latency blows past 5×base (and the 50ms floor) while
	// availability holds: still a knee.
	latencyKnee := []SweepPoint{
		pt(50, 1, 0.02), pt(100, 1, 0.04), pt(200, 1, 0.3),
	}
	rate, idx, _ = FindKnee(latencyKnee, KneeConfig{})
	if rate != 100 || idx != 1 {
		t.Errorf("latency curve: knee (%g, %d), want (100, 1)", rate, idx)
	}

	// Sub-millisecond base p99: the floor keeps 5× from being
	// spuriously tight — 40ms at 100 req/s is still healthy.
	floored := []SweepPoint{pt(50, 1, 0.0005), pt(100, 1, 0.04)}
	rate, _, unsat = FindKnee(floored, KneeConfig{})
	if rate != 100 || !unsat {
		t.Errorf("floored curve: knee (%g, unsat=%v), want (100, true)", rate, unsat)
	}

	// Never saturates: knee is the top rate, flagged as a lower bound.
	rate, idx, unsat = FindKnee([]SweepPoint{pt(50, 1, 0.01), pt(100, 1, 0.011)}, KneeConfig{})
	if rate != 100 || idx != 1 || !unsat {
		t.Errorf("unsaturated curve: (%g, %d, %v), want (100, 1, true)", rate, idx, unsat)
	}

	// A transient spike mid-sweep (healthy points above it) is a
	// measurement hiccup, not the knee: saturation is terminal, so the
	// sweep reads as unsaturated up to the top rate.
	spike := []SweepPoint{
		pt(50, 1, 0.01), pt(100, 1, 0.3), pt(200, 1, 0.02),
	}
	rate, idx, unsat = FindKnee(spike, KneeConfig{})
	if rate != 200 || idx != 2 || !unsat {
		t.Errorf("transient-spike curve: (%g, %d, %v), want (200, 2, true)", rate, idx, unsat)
	}

	// Saturated from the first point.
	rate, idx, _ = FindKnee([]SweepPoint{pt(50, 0.2, 3), pt(100, 0.1, 6)}, KneeConfig{})
	if idx != -1 || rate != 0 {
		t.Errorf("dead curve: (%g, %d), want (0, -1)", rate, idx)
	}

	// Unordered input is sorted by rate before scanning.
	rate, _, _ = FindKnee([]SweepPoint{pt(200, 1, 0.02), pt(50, 1, 0.01), pt(400, 0.5, 2)}, KneeConfig{})
	if rate != 200 {
		t.Errorf("unsorted input: knee %g, want 200", rate)
	}
}

// TestParseStageSums pulls the merged stage sums out of a Prometheus
// exposition and ignores per-replica re-exports and malformed lines.
func TestParseStageSums(t *testing.T) {
	metrics := `capsnet_stage_seconds_sum{stage="forward"} 1.5
capsnet_stage_seconds_sum{stage="queue_wait"} 0.25
capsnet_stage_seconds_sum{stage="forward",replica="r0"} 0.7
capsnet_stage_seconds_count{stage="forward"} 10
capsnet_stage_seconds_sum{stage="bad"} not-a-number
other_metric 1
`
	got := ParseStageSums(metrics)
	if len(got) != 2 || got["forward"] != 1.5 || got["queue_wait"] != 0.25 {
		t.Fatalf("ParseStageSums = %v", got)
	}
}

// TestStageShares diffs two scrapes into a descending-share table.
func TestStageShares(t *testing.T) {
	before := map[string]float64{"forward": 1, "queue_wait": 0.5, "encode": 0.2, "gone_backwards": 9}
	after := map[string]float64{"forward": 4, "queue_wait": 1.5, "encode": 0.2, "gone_backwards": 1, "new_stage": 2}
	shares := StageShares(before, after)
	if len(shares) != 3 {
		t.Fatalf("got %d stages %v, want 3 (flat and backwards stages dropped)", len(shares), shares)
	}
	if shares[0].Stage != "forward" || shares[1].Stage != "new_stage" || shares[2].Stage != "queue_wait" {
		t.Fatalf("order %v", shares)
	}
	var total float64
	for _, s := range shares {
		total += s.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %g, want 1", total)
	}
	if math.Abs(shares[0].Seconds-3) > 1e-9 || math.Abs(shares[0].Share-0.5) > 1e-9 {
		t.Fatalf("forward share %+v, want 3s / 0.5", shares[0])
	}
}

// TestReportRoundTrip saves and reloads a report bit-for-bit.
func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slo.json")
	want := &Report{
		Target: "serve", Shape: "constant", Seed: 42,
		DurationSeconds: 5, ReferenceRate: 100, Offered: 500,
		Availability: 0.998, P50: 0.004, P99: 0.02, P999: 0.05,
		KneeRate: 220,
		Codes:    map[string]int{"200": 499, "429": 1},
		Sweep:    []SweepPoint{pt(100, 1, 0.02)},
		Stages:   []StageShare{{Stage: "forward", Seconds: 2, Share: 0.8}},
	}
	if err := SaveReport(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ReferenceRate != want.ReferenceRate || got.Availability != want.Availability ||
		got.KneeRate != want.KneeRate || got.Codes["200"] != 499 ||
		len(got.Sweep) != 1 || len(got.Stages) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := LoadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("LoadReport accepted a missing file")
	}
}
