// Package loadgen is an open-loop, arrival-time-driven load
// generator: requests fire on a pre-generated schedule (from
// internal/workload's traffic shapes) regardless of how many are
// still in flight, and every latency is measured from the request's
// *scheduled* arrival, not from when the client managed to send it.
// That makes the recorded distribution coordinated-omission-safe —
// a stalled server inflates the tail of every request that was due
// during the stall, exactly as queueing users would experience it —
// where a closed-loop client (like examples/serve's default mode)
// silently stops offering load while it waits and hides the queue.
//
// The package is deliberately thin — standard library plus the
// fixed-bucket histograms from internal/obs — so measurements
// reflect the server under test, not the client; pimcaps-vet's
// layercheck pins that diet.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"pimcapsnet/internal/obs"
)

// DefaultLatencyBuckets mirror the server's request-latency layout
// with extra tail room: open-loop latencies include queueing delay,
// which under overload runs far past any closed-loop observation.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// DefaultTimeout bounds one request when Options.Timeout is zero.
const DefaultTimeout = 30 * time.Second

// Target issues one load request. Implementations must be safe for
// concurrent use: open-loop load fires from many goroutines at once.
type Target interface {
	// Do issues request i and returns its HTTP status code (0 for a
	// transport-level failure, alongside the error).
	Do(ctx context.Context, i int) (status int, err error)
}

// HTTPTarget posts pre-built bodies to one URL, rotating through them
// by request index.
type HTTPTarget struct {
	Client *http.Client
	URL    string
	Bodies [][]byte
	// ContentType defaults to application/json.
	ContentType string
	// Decorate, when set, mutates each request before it is sent
	// (deadline headers, auth, trace IDs).
	Decorate func(*http.Request)
}

// Do implements Target.
func (t *HTTPTarget) Do(ctx context.Context, i int) (int, error) {
	body := t.Bodies[i%len(t.Bodies)]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.URL, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	ct := t.ContentType
	if ct == "" {
		ct = "application/json"
	}
	req.Header.Set("Content-Type", ct)
	if t.Decorate != nil {
		t.Decorate(req)
	}
	resp, err := t.Client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Options configures one open-loop run.
type Options struct {
	// Schedule holds the arrival offsets in seconds from run start,
	// ascending (workload.Shape.Schedule produces these).
	Schedule []float64
	// Timeout bounds each request (DefaultTimeout when zero). A
	// timed-out request records its full latency as a failure — it is
	// precisely the observation closed-loop clients omit.
	Timeout time.Duration
	// Buckets overrides DefaultLatencyBuckets.
	Buckets []float64
}

// Result is the outcome of one open-loop run.
type Result struct {
	// Offered is how many arrivals the schedule held; Done is how
	// many were actually dispatched (smaller only when the context
	// was canceled mid-run).
	Offered, Done int
	// OK counts 2xx responses; Shed counts the load-control statuses
	// (429, 503, 504); Failed is everything else, transport errors
	// and timeouts included.
	OK, Shed, Failed int
	// Codes maps HTTP status (0 = transport error) to count.
	Codes map[int]int
	// Latency is seconds from *scheduled arrival* to completion —
	// the coordinated-omission-safe distribution.
	Latency *obs.Histogram
	// MaxLateness is the worst gap between an arrival's scheduled
	// and actual fire time, in seconds: the client-side fidelity
	// bound. Values far above a few milliseconds mean the generator
	// itself could not keep pace and the run should be discarded.
	MaxLateness float64
	// WallSeconds spans run start to last completion.
	WallSeconds float64
}

// Availability returns OK / Done: the fraction of dispatched
// requests that came back 2xx. Returns 1 for an empty run so an
// unloaded gate comparison reads as healthy.
func (r *Result) Availability() float64 {
	if r.Done == 0 {
		return 1
	}
	return float64(r.OK) / float64(r.Done)
}

// AchievedRate returns successful completions per wall-clock second.
func (r *Result) AchievedRate() float64 {
	if r.WallSeconds <= 0 {
		return 0
	}
	return float64(r.OK) / r.WallSeconds
}

// shedStatus reports whether an HTTP status is a load-control
// response rather than a success or a failure.
func shedStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// Run replays the schedule against the target. It blocks until every
// dispatched request completes (or the per-request timeout fires) and
// never slows the schedule down for in-flight work: that open-loop
// property is what keeps the latency histogram honest about queueing.
func Run(ctx context.Context, target Target, opts Options) *Result {
	if len(opts.Schedule) == 0 {
		panic("loadgen: empty schedule")
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	buckets := opts.Buckets
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}

	res := &Result{
		Offered: len(opts.Schedule),
		Codes:   make(map[int]int),
		Latency: obs.NewHistogram(buckets...),
	}
	var mu sync.Mutex // guards Codes/OK/Shed/Failed/MaxLateness
	var wg sync.WaitGroup
	start := time.Now()

	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
dispatch:
	for i, at := range opts.Schedule {
		scheduled := start.Add(time.Duration(at * float64(time.Second)))
		if wait := time.Until(scheduled); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				break dispatch
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		res.Done++
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			late := time.Since(scheduled).Seconds()
			reqCtx, cancel := context.WithTimeout(ctx, timeout)
			code, _ := target.Do(reqCtx, i)
			cancel()
			// Latency from the scheduled arrival: lateness in firing
			// (client backlog) and time on the wire both count.
			lat := time.Since(scheduled).Seconds()
			res.Latency.Observe(lat)
			mu.Lock()
			res.Codes[code]++
			switch {
			case code >= 200 && code < 300:
				res.OK++
			case shedStatus(code):
				res.Shed++
			default:
				res.Failed++
			}
			if late > res.MaxLateness {
				res.MaxLateness = late
			}
			mu.Unlock()
		}(i, scheduled)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	return res
}

// String summarizes the run for log lines.
func (r *Result) String() string {
	return fmt.Sprintf("offered %d, done %d: %d ok, %d shed, %d failed; p50 %.4gs p99 %.4gs p999 %.4gs, max lateness %.4gs",
		r.Offered, r.Done, r.OK, r.Shed, r.Failed,
		r.Latency.Quantile(0.5), r.Latency.Quantile(0.99), r.Latency.Quantile(0.999), r.MaxLateness)
}
