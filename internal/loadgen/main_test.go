package loadgen

import (
	"os"
	"testing"

	"pimcapsnet/internal/testutil"
)

// TestMain arms the goroutine-leak net over the load generator's
// dispatch workers (see internal/testutil): an open-loop run that
// returns without joining its senders fails the whole binary.
func TestMain(m *testing.M) {
	os.Exit(testutil.VerifyNoLeaks(m))
}
