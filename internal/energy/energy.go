// Package energy models the power and energy accounting of both sides
// of PIM-CapsNet: the host GPU (static power plus per-FLOP and
// per-byte dynamic energy) and the HMC (DRAM background and logic
// power plus per-access dynamic energies for DRAM, crossbar, external
// links and PE operations). The constants are first-order literature
// values calibrated so the baseline/PIM ratios track the paper's
// Figs. 15b–17b; see EXPERIMENTS.md.
package energy

// GPUParams models the host GPU's energy behaviour.
type GPUParams struct {
	// StaticW is the always-on power while the GPU is active
	// (leakage, clocks, fans attributable to the accelerator).
	StaticW float64
	// IdleW is the power while the GPU waits (e.g. for the HMC in an
	// unpipelined design).
	IdleW float64
	// PJPerFLOP and PJPerByte are dynamic energies.
	PJPerFLOP, PJPerByte float64
}

// DefaultGPU returns Tesla-P100-class parameters.
func DefaultGPU() GPUParams {
	return GPUParams{StaticW: 95, IdleW: 30, PJPerFLOP: 9, PJPerByte: 31}
}

// HMCParams models the cube's energy behaviour.
type HMCParams struct {
	// StaticW is the cube background power (DRAM refresh, SerDes,
	// controllers); LogicW the added PIM logic power (§6.5: 2.24 W).
	StaticW, LogicW float64
	// Dynamic energies per unit.
	PJPerPEOp, PJPerDRAMByte, PJPerXbarByte, PJPerExtByte float64
}

// DefaultHMC returns HMC-Gen3-class parameters.
func DefaultHMC() HMCParams {
	return HMCParams{
		StaticW: 12, LogicW: 2.24,
		PJPerPEOp: 6, PJPerDRAMByte: 20, PJPerXbarByte: 3, PJPerExtByte: 60,
	}
}

// Breakdown decomposes a phase's energy in joules.
type Breakdown struct {
	Static, Compute, DRAM, Crossbar, External float64
}

// Total returns the phase energy.
func (b Breakdown) Total() float64 {
	return b.Static + b.Compute + b.DRAM + b.Crossbar + b.External
}

// Plus accumulates two breakdowns.
func (b Breakdown) Plus(o Breakdown) Breakdown {
	return Breakdown{
		Static:   b.Static + o.Static,
		Compute:  b.Compute + o.Compute,
		DRAM:     b.DRAM + o.DRAM,
		Crossbar: b.Crossbar + o.Crossbar,
		External: b.External + o.External,
	}
}

// Scale multiplies all components by f.
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		Static: b.Static * f, Compute: b.Compute * f, DRAM: b.DRAM * f,
		Crossbar: b.Crossbar * f, External: b.External * f,
	}
}

// GPUActive returns the energy of an active GPU phase.
func GPUActive(p GPUParams, seconds, flops, bytes float64) Breakdown {
	return Breakdown{
		Static:  p.StaticW * seconds,
		Compute: flops * p.PJPerFLOP * 1e-12,
		DRAM:    bytes * p.PJPerByte * 1e-12,
	}
}

// GPUIdle returns the energy of the GPU waiting for seconds.
func GPUIdle(p GPUParams, seconds float64) Breakdown {
	return Breakdown{Static: p.IdleW * seconds}
}

// HMCActive returns the energy of an HMC phase executing peOps PE
// operations while moving dramBytes through banks, xbarBytes through
// the crossbar and extBytes over the external links.
func HMCActive(p HMCParams, seconds, peOps, dramBytes, xbarBytes, extBytes float64) Breakdown {
	return Breakdown{
		Static:   (p.StaticW + p.LogicW) * seconds,
		Compute:  peOps * p.PJPerPEOp * 1e-12,
		DRAM:     dramBytes * p.PJPerDRAMByte * 1e-12,
		Crossbar: xbarBytes * p.PJPerXbarByte * 1e-12,
		External: extBytes * p.PJPerExtByte * 1e-12,
	}
}

// HMCIdle returns the cube's background energy when only serving as
// plain memory.
func HMCIdle(p HMCParams, seconds float64) Breakdown {
	return Breakdown{Static: p.StaticW * seconds}
}
