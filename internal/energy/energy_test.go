//pimcaps:bitexact

package energy

import (
	"math"
	"testing"
)

func TestBreakdownArithmetic(t *testing.T) {
	a := Breakdown{Static: 1, Compute: 2, DRAM: 3, Crossbar: 4, External: 5}
	if a.Total() != 15 {
		t.Fatalf("Total = %v", a.Total())
	}
	b := a.Plus(a)
	if b.Total() != 30 {
		t.Fatalf("Plus Total = %v", b.Total())
	}
	c := a.Scale(2)
	if c.Static != 2 || c.External != 10 {
		t.Fatalf("Scale = %+v", c)
	}
}

func TestGPUActiveComposition(t *testing.T) {
	p := DefaultGPU()
	e := GPUActive(p, 1.0, 1e12, 1e9)
	if math.Abs(e.Static-p.StaticW) > 1e-9 {
		t.Fatalf("static %v", e.Static)
	}
	if math.Abs(e.Compute-p.PJPerFLOP) > 1e-9 { // 1e12 FLOPs × pJ = J numerically equal to PJPerFLOP
		t.Fatalf("compute %v", e.Compute)
	}
	if e.DRAM <= 0 || e.Crossbar != 0 {
		t.Fatalf("unexpected components %+v", e)
	}
}

func TestGPUIdleCheaperThanActive(t *testing.T) {
	p := DefaultGPU()
	if GPUIdle(p, 1).Total() >= GPUActive(p, 1, 0, 0).Total() {
		t.Fatal("idle must cost less than active static")
	}
}

func TestHMCEnergyMuchCheaperThanGPUForSameWork(t *testing.T) {
	// The core energy claim: executing the RP's operations in the
	// cube costs a small fraction of the GPU's energy for the same
	// phase (Fig. 15b shows ≈ 92% savings).
	g := DefaultGPU()
	h := DefaultHMC()
	seconds := 0.01
	gpu := GPUActive(g, seconds*2, 1.5e9, 2e9) // GPU takes ~2× longer on RP
	hmcE := HMCActive(h, seconds, 7.5e8, 5e8, 5e7, 0)
	ratio := hmcE.Total() / gpu.Total()
	if ratio > 0.2 {
		t.Fatalf("HMC/GPU energy ratio %.3f too high for the paper's savings", ratio)
	}
}

func TestHMCIdle(t *testing.T) {
	h := DefaultHMC()
	e := HMCIdle(h, 2)
	if e.Total() != h.StaticW*2 {
		t.Fatalf("HMCIdle = %v", e.Total())
	}
}

func TestLogicPowerMatchesPaperOverhead(t *testing.T) {
	if DefaultHMC().LogicW != 2.24 {
		t.Fatal("PIM logic power must match §6.5's 2.24 W")
	}
}

func TestHMCActiveComponents(t *testing.T) {
	h := DefaultHMC()
	e := HMCActive(h, 1, 1e9, 1e9, 1e9, 1e9)
	if e.Static != h.StaticW+h.LogicW {
		t.Fatalf("static %v", e.Static)
	}
	for name, v := range map[string]float64{
		"compute": e.Compute, "dram": e.DRAM, "xbar": e.Crossbar, "ext": e.External,
	} {
		if v <= 0 {
			t.Fatalf("%s component not populated", name)
		}
	}
	// External link energy per byte must exceed internal DRAM access
	// energy (the physical reason moving the RP into memory saves
	// energy).
	if h.PJPerExtByte <= h.PJPerDRAMByte {
		t.Fatal("external transfers must cost more than internal accesses")
	}
}
