package capsnet

// Margin-loss hyperparameters from Sabour et al.: correct-class margin
// m+ = 0.9, wrong-class margin m− = 0.1, down-weight λ = 0.5.
const (
	MarginPlus  = 0.9
	MarginMinus = 0.1
	MarginDown  = 0.5
)

// MarginLoss computes the capsule margin loss for one example:
//
//	L = Σ_j T_j·max(0, m+ − ‖v_j‖)² + λ(1−T_j)·max(0, ‖v_j‖ − m−)²
//
// lengths holds ‖v_j‖ per class and label is the true class index.
func MarginLoss(lengths []float32, label int) float32 {
	var loss float32
	for j, l := range lengths {
		if j == label {
			if d := MarginPlus - l; d > 0 {
				loss += d * d
			}
		} else {
			if d := l - MarginMinus; d > 0 {
				loss += MarginDown * d * d
			}
		}
	}
	return loss
}

// MarginLossGrad returns dL/d‖v_j‖ for each class.
func MarginLossGrad(lengths []float32, label int) []float32 {
	g := make([]float32, len(lengths))
	for j, l := range lengths {
		if j == label {
			if d := MarginPlus - l; d > 0 {
				g[j] = -2 * d
			}
		} else {
			if d := l - MarginMinus; d > 0 {
				g[j] = 2 * MarginDown * d
			}
		}
	}
	return g
}

// ReconstructionLoss is the scaled sum of squared errors the decoder
// is trained with (scale 0.0005 in the reference implementation).
func ReconstructionLoss(recon, target []float32) float32 {
	var s float32
	for i := range recon {
		d := recon[i] - target[i]
		s += d * d
	}
	return 0.0005 * s
}
