package capsnet

import (
	"testing"

	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/tensor"
)

func TestNewCNNValidation(t *testing.T) {
	if _, err := NewCNN(TinyCNNConfig(4)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := TinyCNNConfig(0)
	if _, err := NewCNN(bad); err == nil {
		t.Fatal("zero classes accepted")
	}
	bad2 := TinyCNNConfig(3)
	bad2.Pool = 50
	if _, err := NewCNN(bad2); err == nil {
		t.Fatal("oversized pool accepted")
	}
	bad3 := TinyCNNConfig(3)
	bad3.ConvKernel = 100
	if _, err := NewCNN(bad3); err == nil {
		t.Fatal("oversized kernel accepted")
	}
}

func TestCNNForwardShapes(t *testing.T) {
	cnn, err := NewCNN(TinyCNNConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	img := make([]float32, 144)
	logits := cnn.Logits(img)
	if len(logits) != 5 {
		t.Fatalf("logits length %d", len(logits))
	}
	if p := cnn.Predict(img); p < 0 || p >= 5 {
		t.Fatalf("prediction %d out of range", p)
	}
}

func TestCNNTrainerLearns(t *testing.T) {
	spec := dataset.Tiny(3)
	spec.Noise = 0.05
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(60)
	test := gen.Generate(30)

	cnn, err := NewCNN(TinyCNNConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := &CNNTrainer{Net: cnn, LR: 0.1}
	imgLen := 144
	for ep := 0; ep < 15; ep++ {
		for s := 0; s+15 <= 60; s += 15 {
			batch := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+15)*imgLen], 15, 1, 12, 12)
			tr.TrainBatch(batch, train.Labels[s:s+15])
		}
	}
	acc := EvaluateCNN(cnn, test.Images, test.Labels)
	if acc < 0.85 {
		t.Fatalf("CNN accuracy %.2f below 0.85", acc)
	}
}

func TestCNNTrainerReducesLoss(t *testing.T) {
	spec := dataset.Tiny(2)
	gen := dataset.NewGenerator(spec)
	ds := gen.Generate(20)
	cnn, _ := NewCNN(TinyCNNConfig(2))
	tr := &CNNTrainer{Net: cnn, LR: 0.05}
	first, _ := tr.TrainBatch(ds.Images, ds.Labels)
	var last float32
	for i := 0; i < 10; i++ {
		last, _ = tr.TrainBatch(ds.Images, ds.Labels)
	}
	if last >= first {
		t.Fatalf("CNN loss did not decrease: %v → %v", first, last)
	}
}

func TestCNNTrainerLabelMismatchPanics(t *testing.T) {
	cnn, _ := NewCNN(TinyCNNConfig(2))
	tr := &CNNTrainer{Net: cnn, LR: 0.1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.TrainBatch(tensor.New(2, 1, 12, 12), []int{0})
}

// TestRotationDegradesBothModelsSanely trains the capsule network and
// the pooling-CNN baseline on upright data and evaluates on rotated
// data (the paper's §1 pose-change scenario). Both must degrade
// gracefully — the comparison example narrates the relative
// robustness; this test pins the mechanics.
func TestRotationDegradesBothModelsSanely(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative training skipped in -short mode")
	}
	spec := dataset.Tiny(3)
	spec.Noise = 0.05
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(60)
	test := gen.Generate(30)
	rotated := test.Rotated(20)

	caps, _ := New(TinyConfig(3))
	capsTr := NewTrainer(caps, 1.0)
	cnn, _ := NewCNN(TinyCNNConfig(3))
	cnnTr := &CNNTrainer{Net: cnn, LR: 0.1}
	imgLen := 144
	for ep := 0; ep < 20; ep++ {
		for s := 0; s+15 <= 60; s += 15 {
			batch := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+15)*imgLen], 15, 1, 12, 12)
			capsTr.TrainBatch(batch, train.Labels[s:s+15])
			cnnTr.TrainBatch(batch, train.Labels[s:s+15])
		}
	}
	capsClean := Evaluate(caps, test.Images, test.Labels, ExactMath{})
	cnnClean := EvaluateCNN(cnn, test.Images, test.Labels)
	capsRot := Evaluate(caps, rotated.Images, rotated.Labels, ExactMath{})
	cnnRot := EvaluateCNN(cnn, rotated.Images, rotated.Labels)

	if capsClean < 0.8 || cnnClean < 0.8 {
		t.Fatalf("models failed to train: caps %.2f cnn %.2f", capsClean, cnnClean)
	}
	if capsRot > capsClean+0.1 || cnnRot > cnnClean+0.1 {
		t.Fatalf("rotation should not improve accuracy: caps %.2f→%.2f cnn %.2f→%.2f",
			capsClean, capsRot, cnnClean, cnnRot)
	}
	t.Logf("clean: caps %.2f cnn %.2f | rotated 20°: caps %.2f cnn %.2f",
		capsClean, cnnClean, capsRot, cnnRot)
}

// TestCapsulesBeatPoolingUnderRotation reproduces the paper's Fig. 1
// claim with the exact setup of examples/equivariance: trained on
// upright data, the capsule network must stay well ahead of the
// pooling CNN under a 45° test-time rotation.
func TestCapsulesBeatPoolingUnderRotation(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative training skipped in -short mode")
	}
	const classes = 4
	spec := dataset.Tiny(classes)
	spec.Noise = 0.12
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(classes * 40)
	test := gen.Generate(classes * 25)

	caps, _ := New(TinyConfig(classes))
	capsTr := NewFullTrainer(caps, 0.5)
	cnn, _ := NewCNN(TinyCNNConfig(classes))
	cnnTr := &CNNTrainer{Net: cnn, LR: 0.1}
	imgLen := spec.Channels * spec.H * spec.W
	n := train.Images.Dim(0)
	const batch = 20
	for ep := 0; ep < 25; ep++ {
		for s := 0; s+batch <= n; s += batch {
			img := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+batch)*imgLen],
				batch, spec.Channels, spec.H, spec.W)
			capsTr.TrainBatch(img, train.Labels[s:s+batch])
			cnnTr.TrainBatch(img, train.Labels[s:s+batch])
		}
	}
	rotated := test.Rotated(45)
	capsAcc := Evaluate(caps, rotated.Images, rotated.Labels, ExactMath{})
	cnnAcc := EvaluateCNN(cnn, rotated.Images, rotated.Labels)
	t.Logf("45° rotation: caps %.2f vs cnn %.2f", capsAcc, cnnAcc)
	if capsAcc <= cnnAcc {
		t.Fatalf("capsules (%.2f) should beat pooling (%.2f) under rotation", capsAcc, cnnAcc)
	}
}
