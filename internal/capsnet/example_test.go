package capsnet_test

import (
	"fmt"
	"math/rand"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/tensor"
)

// ExampleDynamicRouting routes a tiny set of prediction vectors and
// prints the resulting capsule count.
func ExampleDynamicRouting() {
	rng := rand.New(rand.NewSource(1))
	preds := tensor.New(1, 4, 2, 3) // 1 input, 4 L capsules, 2 H capsules, 3-D
	for i := range preds.Data() {
		preds.Data()[i] = float32(rng.NormFloat64()) * 0.1
	}
	res := capsnet.DynamicRouting(preds, 3, capsnet.ExactMath{})
	fmt.Println("capsules:", res.V.Dim(1), "dims:", res.V.Dim(2))
	// Output:
	// capsules: 2 dims: 3
}

// ExampleNetwork_Forward builds a small CapsNet and classifies a batch.
func ExampleNetwork_Forward() {
	net, err := capsnet.New(capsnet.TinyConfig(3))
	if err != nil {
		panic(err)
	}
	batch := tensor.New(2, 1, 12, 12) // two blank 12×12 images
	out := net.Forward(batch, capsnet.ExactMath{})
	fmt.Println("predictions per image:", len(out.Predictions()))
	fmt.Println("class scores per image:", out.Lengths.Dim(1))
	// Output:
	// predictions per image: 2
	// class scores per image: 3
}

// ExamplePEMath shows the PE-approximated special functions the
// in-memory accelerator evaluates.
func ExamplePEMath() {
	m := capsnet.NewPEMath()
	exact := capsnet.ExactMath{}
	fmt.Printf("exp(1): approx %.2f vs exact %.2f\n", m.Exp(1), exact.Exp(1))
	fmt.Printf("1/sqrt(4): approx %.2f vs exact %.2f\n", m.InvSqrt(4), exact.InvSqrt(4))
	// Output:
	// exp(1): approx 2.77 vs exact 2.72
	// 1/sqrt(4): approx 0.48 vs exact 0.50
}

// ExampleMarginLoss evaluates the capsule margin loss for a perfect
// prediction.
func ExampleMarginLoss() {
	lengths := []float32{0.95, 0.05, 0.03} // class 0 confidently present
	fmt.Println("loss:", capsnet.MarginLoss(lengths, 0))
	// Output:
	// loss: 0
}
