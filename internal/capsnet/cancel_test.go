package capsnet

import (
	"math"
	"testing"
)

// forwardOutputs copies the probabilities and capsules out of one
// ForwardBatch call (releasing the Output) so runs can be compared
// bit-for-bit.
func forwardOutputs(t *testing.T, n *Network, images [][]float32) (lengths, capsules []float32) {
	t.Helper()
	out := n.ForwardBatch(images, ExactMath{})
	defer out.Release()
	if out.Aborted {
		t.Fatal("forward pass aborted unexpectedly")
	}
	lengths = append([]float32(nil), out.Lengths.Data()...)
	capsules = append([]float32(nil), out.Capsules.Data()...)
	return lengths, capsules
}

func cancelTestImages(n *Network, count int) [][]float32 {
	images := make([][]float32, count)
	for k := range images {
		img := make([]float32, n.ImageLen())
		for i := range img {
			img[i] = float32((i+7*k)%13) / 13
		}
		images[k] = img
	}
	return images
}

// TestInactiveHooksBitIdentical is the brownout-disabled identity
// guarantee at the capsnet layer: a network with Cancel and
// IterationLimit installed but inactive (never cancelling, never
// lowering the count) produces outputs bit-identical to a network with
// the hooks nil.
func TestInactiveHooksBitIdentical(t *testing.T) {
	bare, err := New(TinyConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := New(TinyConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	hooked.Cancel = func() bool { return false }
	hooked.IterationLimit = func() int { return hooked.Config.RoutingIterations }

	images := cancelTestImages(bare, 3)
	wantL, wantC := forwardOutputs(t, bare, images)
	gotL, gotC := forwardOutputs(t, hooked, images)
	for i := range wantL {
		if math.Float32bits(wantL[i]) != math.Float32bits(gotL[i]) {
			t.Fatalf("lengths[%d]: hooked %v != bare %v (must be bit-identical)", i, gotL[i], wantL[i])
		}
	}
	for i := range wantC {
		if math.Float32bits(wantC[i]) != math.Float32bits(gotC[i]) {
			t.Fatalf("capsules[%d]: hooked %v != bare %v (must be bit-identical)", i, gotC[i], wantC[i])
		}
	}
}

// TestIterationLimitReducesIterations verifies the override sheds
// iterations (observed through the StageTimer) and clamps at 1.
func TestIterationLimitReducesIterations(t *testing.T) {
	n, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	counter := &iterationCounter{}
	n.Stages = counter
	images := cancelTestImages(n, 2)

	run := func(limit int) int {
		counter.iters = 0
		if limit != 0 {
			n.IterationLimit = func() int { return limit }
		} else {
			n.IterationLimit = nil
		}
		out := n.ForwardBatch(images, ExactMath{})
		out.Release()
		return counter.iters
	}

	full := n.Config.RoutingIterations
	if got := run(0); got != full {
		t.Fatalf("unhooked run: %d routing iterations, want %d", got, full)
	}
	if got := run(full - 1); got != full-1 {
		t.Fatalf("limit %d: %d routing iterations, want %d", full-1, got, full-1)
	}
	if got := run(0x7fffffff); got != full {
		t.Fatalf("limit above configured count must be ignored: got %d iterations, want %d", got, full)
	}
	if got := run(-3); got != 1 {
		t.Fatalf("limit below 1 must clamp to 1: got %d iterations", got)
	}
}

// iterationCounter counts StageRoutingIteration begins.
type iterationCounter struct{ iters int }

func (c *iterationCounter) BeginStage(stage string, _ int) func() {
	if stage == StageRoutingIteration {
		c.iters++
	}
	return nil
}

// TestCancelAbortsBetweenIterations proves the cooperative-abort
// contract: a Cancel hook that fires after the first iteration stops
// the pass, Output.Aborted is set, Release returns the arena (pool
// bytes stay flat across an aborted pass), and the network serves
// bit-identical results afterwards.
func TestCancelAbortsBetweenIterations(t *testing.T) {
	n, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	images := cancelTestImages(n, 2)

	// Baseline pass: warms the scratch pool and gives the reference
	// outputs the post-abort pass must reproduce.
	wantL, wantC := forwardOutputs(t, n, images)
	baseline := n.ArenaBytes()
	if baseline == 0 {
		t.Fatal("arena gauge is zero after a forward pass")
	}

	counter := &iterationCounter{}
	n.Stages = counter
	polls := 0
	n.Cancel = func() bool {
		polls++
		return polls > 1 // let iteration 0 run, abort before iteration 1
	}
	out := n.ForwardBatch(images, ExactMath{})
	if !out.Aborted {
		t.Fatal("Output.Aborted not set by a firing Cancel hook")
	}
	if counter.iters != 1 {
		t.Fatalf("aborted pass ran %d routing iterations, want exactly 1 before the abort", counter.iters)
	}
	if out.ExactFallbacks != nil || out.NonFinite != nil {
		t.Fatalf("aborted pass must skip the finite guard, got fallbacks=%v nonfinite=%v", out.ExactFallbacks, out.NonFinite)
	}
	out.Release()
	if got := n.ArenaBytes(); got != baseline {
		t.Fatalf("ArenaBytes %d after aborted pass, want flat at %d (arena leak)", got, baseline)
	}

	// The same network keeps serving exact results once the hook clears.
	n.Cancel = nil
	n.Stages = nil
	gotL, gotC := forwardOutputs(t, n, images)
	for i := range wantL {
		if math.Float32bits(wantL[i]) != math.Float32bits(gotL[i]) {
			t.Fatalf("lengths[%d] after abort: %v != baseline %v", i, gotL[i], wantL[i])
		}
	}
	for i := range wantC {
		if math.Float32bits(wantC[i]) != math.Float32bits(gotC[i]) {
			t.Fatalf("capsules[%d] after abort: %v != baseline %v", i, gotC[i], wantC[i])
		}
	}
	if got := n.ArenaBytes(); got != baseline {
		t.Fatalf("ArenaBytes %d after recovery pass, want %d", got, baseline)
	}
}

// TestCancelBeforeFirstIteration covers the degenerate abort: the hook
// is already true when routing starts, so zero iterations run.
func TestCancelBeforeFirstIteration(t *testing.T) {
	n, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	counter := &iterationCounter{}
	n.Stages = counter
	n.Cancel = func() bool { return true }
	out := n.ForwardBatch(cancelTestImages(n, 1), ExactMath{})
	defer out.Release()
	if !out.Aborted {
		t.Fatal("Output.Aborted not set")
	}
	if counter.iters != 0 {
		t.Fatalf("%d routing iterations ran under an always-true Cancel, want 0", counter.iters)
	}
}
