package capsnet

import (
	"fmt"

	"pimcapsnet/internal/tensor"
)

// Trainer fits the final capsule layer's transformation weights W_ij
// with stochastic gradient descent on the margin loss. Gradients flow
// through squash and the weighted aggregation of Eq. 2 while the
// routing coefficients c_ij are treated as constants of the forward
// pass (the standard "stop-gradient through routing" approximation
// used by reference CapsNet implementations); the Conv/PrimaryCaps
// front end stays fixed. This reproduces trained-model behaviour for
// the accuracy experiments without requiring GPU training
// infrastructure (see DESIGN.md §2).
type Trainer struct {
	Net *Network
	// LR is the SGD learning rate.
	LR float32
	// NegScale rescales the wrong-class margin gradient. Sabour et
	// al.'s λ = 0.5 balances one positive against nine negatives on
	// MNIST; for many-class problems the negatives otherwise swamp
	// the positive signal, so trainers typically use ≈ 10/classes.
	// Zero means 1 (no rescale).
	NegScale float32
	// Math supplies routing numerics during training (normally
	// ExactMath: the paper trains on GPU and deploys on PIM).
	Math RoutingMath
}

// NewTrainer returns a Trainer with exact math and the given rate.
func NewTrainer(net *Network, lr float32) *Trainer {
	return &Trainer{Net: net, LR: lr, Math: ExactMath{}}
}

// TrainBatch performs one forward/backward/update step on a batch of
// images (B×C×H×W) with the given labels. It returns the mean margin
// loss and the batch accuracy before the update.
func (t *Trainer) TrainBatch(batch *tensor.Tensor, labels []int) (loss float32, acc float64) {
	nb := batch.Dim(0)
	if len(labels) != nb {
		panic(fmt.Sprintf("capsnet: %d labels for batch of %d", len(labels), nb))
	}
	out := t.Net.Forward(batch, t.Math)
	// Everything below reads out's tensors before returning, so the
	// scratch arena can go back to the Network's pool on exit: without
	// this, every training step abandons its arena and allocates a
	// fresh slab on the next Forward (releasecheck enforces this).
	defer out.Release()
	nc, dd := t.Net.Config.Classes, t.Net.Config.DigitDim
	nl, dl := t.Net.Digit.NumIn, t.Net.Digit.DimIn

	preds := out.Predictions()
	correct := 0
	for k, p := range preds {
		if p == labels[k] {
			correct++
		}
	}
	acc = float64(correct) / float64(nb)

	// dLoss/ds per (k, j).
	dLds := tensor.New(nb, nc, dd)
	for k := 0; k < nb; k++ {
		lengths := out.Lengths.Data()[k*nc : (k+1)*nc]
		loss += MarginLoss(lengths, labels[k])
		g := MarginLossGrad(lengths, labels[k])
		if t.NegScale != 0 && t.NegScale != 1 {
			for j := range g {
				if j != labels[k] {
					g[j] *= t.NegScale
				}
			}
		}
		for j := 0; j < nc; j++ {
			if g[j] == 0 {
				continue
			}
			// s_j is recovered from v_j: v = n/(1+n²)·s with n = ‖s‖
			// and ‖v‖ = n²/(1+n²). d‖v‖/ds = 2/(1+n²)²·s, and
			// s = v·(1+n²)/n, so d‖v‖/ds = 2·v/(n(1+n²)).
			vlen := lengths[j]
			if vlen <= 0 || vlen >= 1 {
				continue
			}
			// ‖v‖ = n²/(1+n²) → n = sqrt(‖v‖/(1−‖v‖)).
			n2 := vlen / (1 - vlen)
			n := sqrt32(n2)
			scale := g[j] * 2 / (n * (1 + n2))
			voff := (k*nc + j) * dd
			doff := voff
			for e := 0; e < dd; e++ {
				dLds.Data()[doff+e] = scale * out.Capsules.Data()[voff+e]
			}
		}
	}
	loss /= float32(nb)

	// Accumulate dLoss/dW_ij = Σ_k c_ij · u_i^k ⊗ dLds_j^k and apply
	// the SGD update in place.
	wd := t.Net.Digit.Weights.Data()
	cd := out.Routing.C.Data()
	ud := out.Primary.Data()
	dd32 := dLds.Data()
	step := t.LR / float32(nb)
	for k := 0; k < nb; k++ {
		for j := 0; j < nc; j++ {
			ds := dd32[(k*nc+j)*dd : (k*nc+j+1)*dd]
			zero := true
			for _, v := range ds {
				if v != 0 {
					zero = false
					break
				}
			}
			if zero {
				continue
			}
			for i := 0; i < nl; i++ {
				cij := cd[(k*nl+i)*nc+j]
				if cij == 0 {
					continue
				}
				uv := ud[(k*nl+i)*dl : (k*nl+i+1)*dl]
				wbase := (i*nc + j) * dl * dd
				for d := 0; d < dl; d++ {
					f := step * cij * uv[d]
					if f == 0 {
						continue
					}
					wrow := wd[wbase+d*dd : wbase+(d+1)*dd]
					for e := 0; e < dd; e++ {
						wrow[e] -= f * ds[e]
					}
				}
			}
		}
	}
	return loss, acc
}

// Evaluate returns classification accuracy of the network on the given
// images/labels using mathOps for routing numerics.
func Evaluate(net *Network, images *tensor.Tensor, labels []int, mathOps RoutingMath) float64 {
	out := net.Forward(images, mathOps)
	defer out.Release()
	preds := out.Predictions()
	correct := 0
	for k, p := range preds {
		if p == labels[k] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

func sqrt32(x float32) float32 {
	return float32(sqrtImpl(float64(x)))
}
