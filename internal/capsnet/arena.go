package capsnet

import (
	"runtime"
	"sync"

	"pimcapsnet/internal/tensor"
)

// This file implements the allocation-free forward path: a per-Network
// pool of scratch arenas sized once from the layer shapes, acquired
// per Forward/ForwardBatch call, and reused across routing iterations
// and across calls. In steady state (every Output released, batch
// sizes at or below the high-water mark) a forward pass performs zero
// heap allocations: all tensors are views Reuse-bound over one arena
// slab, the chunk kernels are closures bound once at scratch creation,
// and chunk dispatch rides persistent worker goroutines fed through a
// channel of pre-allocated job slots. This is the software analogue of
// the on-chip buffer management the paper's related accelerators
// (CapsAcc, DESCNet) use to attack the same data-reuse problem.

// panicCell captures the first panic raised by a set of chunk workers
// so the dispatching goroutine can re-raise it after all chunks
// complete. Unlike panicBox it is resettable, so one cell embedded in
// a scratch serves every dispatch without allocating.
type panicCell struct {
	mu sync.Mutex
	//pimcaps:guardedby mu
	val any
	//pimcaps:guardedby mu
	set bool
}

func (c *panicCell) reset() {
	c.mu.Lock()
	c.val, c.set = nil, false
	c.mu.Unlock()
}

func (c *panicCell) capture(p any) {
	c.mu.Lock()
	if !c.set {
		c.val, c.set = p, true
	}
	c.mu.Unlock()
}

// repanic re-raises the captured panic, if any. Call only after every
// chunk's done signal has been received (the channel receives provide
// the happens-before edge for reading val without the lock).
func (c *panicCell) repanic() {
	//lint:ignore pimcaps/guardedby the per-chunk done-channel receives happen-before this read, so the lock is unnecessary here
	set, val := c.set, c.val
	if set {
		panic(val)
	}
}

// chunkJob is one contiguous shard of a chunk dispatch. Jobs live in a
// pre-allocated per-scratch array; only pointers to them travel
// through the worker pool's channel, so dispatch allocates nothing.
type chunkJob struct {
	fn             func(worker, lo, hi int)
	worker, lo, hi int
	done           chan<- struct{}
	box            *panicCell
}

// run executes the job, captures any panic into the job's cell, and
// always signals done (the send is to a buffered channel sized for
// the full worker count, so it never blocks).
func (j *chunkJob) run() {
	defer func() {
		if p := recover(); p != nil {
			j.box.capture(p)
		}
		j.done <- struct{}{}
	}()
	j.fn(j.worker, j.lo, j.hi)
}

// workerPool is a Network's set of persistent chunk workers. Spawning
// goroutines per dispatch would allocate on every routing iteration;
// instead workers are launched once and fed jobs through a channel.
// Concurrent forward passes share the pool — total parallelism stays
// bounded by the worker count, which is the point.
type workerPool struct {
	jobs chan *chunkJob
}

func (p *workerPool) work() {
	for j := range p.jobs {
		j.run()
	}
}

// ensurePool makes sure the Network's pool exists and has at least
// extra persistent workers (the dispatching goroutine itself runs
// chunk 0 inline, so extra = workers-1). Called at scratch creation,
// never on the hot path. The finalizer closes the jobs channel once
// the Network becomes unreachable so pool goroutines never leak:
// workers hold only the pool pointer, not the Network, and no forward
// pass can be in flight on an unreachable Network.
func (n *Network) ensurePool(extra int) {
	n.poolMu.Lock()
	defer n.poolMu.Unlock()
	if n.pool == nil {
		n.pool = &workerPool{jobs: make(chan *chunkJob, 64)}
		runtime.SetFinalizer(n, func(n *Network) { close(n.pool.jobs) })
	}
	for n.poolSpawned < extra {
		go n.pool.work()
		n.poolSpawned++
	}
}

// scratch holds every buffer one forward pass needs, carved from a
// single arena slab, plus the pre-bound chunk kernels and dispatch
// plumbing. A scratch serves one forward pass at a time; the Network
// pools released scratches for reuse.
type scratch struct {
	net  *Network
	capB int // batch capacity the buffers are sized for
	maxW int // worker count snapshot (GOMAXPROCS at creation)

	// Layer geometry, computed once.
	imgLen, convLen        int
	ph, pw                 int // primary-caps conv output spatial size
	cols1Len, cols2Len     int
	primRawLen             int
	nl, cl, nh, ch, nclass int

	// Arena-carved buffers. batch backs ForwardBatch image assembly;
	// feats holds the conv outputs batch-wide (used by the fused and
	// the stage-split front end alike, so both are bit-identical);
	// u/preds/b/c/v/s are the routing state of Eqs. 1–5; lengths the
	// ‖v_j‖ outputs; cols1/cols2/praw are per-worker conv scratch.
	arena                  *tensor.Arena
	batch, feats, u, preds []float32
	b, c, v, s, lengths    []float32
	cols1, cols2, praw     [][]float32

	// Per-call bindings (plain field writes, no allocation).
	nb   int
	in   []float32
	math RoutingMath
	// aborted is set by routing when the Network's Cancel hook fired
	// between iterations; forward reads it into Output.Aborted.
	aborted bool

	// Reused tensor views over the buffers above, re-bound per call.
	uT, bT, cT, vT, lengthsT *tensor.Tensor

	// out is the Output returned to the caller; it points at the views
	// above and back at this scratch for Release.
	out Output

	// Pre-bound chunk kernels (method values created once; they read
	// the fields above at call time, so growing the buffers does not
	// invalidate them).
	convPrimFn, convFn, primFn, predFn func(w, lo, hi int)
	aggBFn, aggHFn                     func(w, lo, hi int)
	agreeBFn, agreeHFn, agreeSharedHFn func(w, lo, hi int)

	// Chunk-dispatch plumbing: a job slot per worker, a buffered done
	// channel sized for all of them, and a resettable panic cell.
	jobs []chunkJob
	done chan struct{}
	box  panicCell
}

// newScratch builds a scratch for batches up to nb samples.
func newScratch(n *Network, nb int) *scratch {
	s := &scratch{net: n}
	s.maxW = runtime.GOMAXPROCS(0)
	if s.maxW < 1 {
		s.maxW = 1
	}
	cfg := n.Config
	s.imgLen = cfg.InputChannels * cfg.InputH * cfg.InputW
	convSpec := n.Conv.Spec
	s.convLen = convSpec.Cout * n.convH * n.convW
	primSpec := n.Primary.Conv.Spec
	s.ph, s.pw = primSpec.OutSize(n.convH, n.convW)
	s.cols1Len = n.convH * n.convW * convSpec.Cin * convSpec.K * convSpec.K
	s.cols2Len = s.ph * s.pw * primSpec.Cin * primSpec.K * primSpec.K
	s.primRawLen = primSpec.Cout * s.ph * s.pw
	s.nl, s.cl = n.Digit.NumIn, n.Digit.DimIn
	s.nh, s.ch = n.Digit.NumOut, n.Digit.DimOut
	s.nclass = cfg.Classes
	s.alloc(nb)
	s.uT = tensor.New(0, 0, 0)
	s.bT = tensor.New(0, 0, 0)
	s.cT = tensor.New(0, 0, 0)
	s.vT = tensor.New(0, 0, 0)
	s.lengthsT = tensor.New(0, 0)
	s.jobs = make([]chunkJob, s.maxW)
	s.done = make(chan struct{}, s.maxW)
	if s.maxW > 1 {
		n.ensurePool(s.maxW - 1)
	}
	s.convPrimFn = s.convPrimRange
	s.convFn = s.convRange
	s.primFn = s.primRange
	s.predFn = s.predRange
	s.aggBFn = s.aggSamplesRange
	s.aggHFn = s.aggCapsRange
	s.agreeBFn = s.agreeSamplesRange
	s.agreeHFn = s.agreeCapsRange
	s.agreeSharedHFn = s.agreeSharedCapsRange
	// A scratch whose Output is never released dies with that Output
	// instead of returning to the pool; give its bytes back to the
	// gauge when the collector reclaims it. Pooled scratches stay
	// reachable from the Network, so their finalizers only run once the
	// Network itself is gone.
	runtime.SetFinalizer(s, func(s *scratch) {
		s.net.arenaFloats.Add(^(uint64(s.arena.Size()) - 1))
	})
	return s
}

// alloc sizes (or re-sizes, on batch growth) every buffer for batches
// up to nb, carving them out of one fresh arena slab. The pre-bound
// kernels read the slice fields at call time, so swapping the buffers
// here is safe between forward passes.
func (s *scratch) alloc(nb int) {
	perSample := s.imgLen + s.convLen + s.nl*s.cl + s.nl*s.nh*s.ch +
		2*s.nl*s.nh + 2*s.nh*s.ch + s.nclass
	perWorker := s.cols1Len + s.cols2Len + s.primRawLen
	total := nb*perSample + s.maxW*perWorker
	old := 0
	if s.arena != nil {
		old = s.arena.Size()
	}
	s.arena = tensor.NewArena(total)
	s.net.arenaFloats.Add(uint64(total - old))
	a := s.arena
	s.batch = a.Alloc(nb * s.imgLen)
	s.feats = a.Alloc(nb * s.convLen)
	s.u = a.Alloc(nb * s.nl * s.cl)
	s.preds = a.Alloc(nb * s.nl * s.nh * s.ch)
	s.b = a.Alloc(nb * s.nl * s.nh)
	s.c = a.Alloc(nb * s.nl * s.nh)
	s.v = a.Alloc(nb * s.nh * s.ch)
	s.s = a.Alloc(nb * s.nh * s.ch)
	s.lengths = a.Alloc(nb * s.nclass)
	if s.cols1 == nil {
		s.cols1 = make([][]float32, s.maxW)
		s.cols2 = make([][]float32, s.maxW)
		s.praw = make([][]float32, s.maxW)
	}
	for w := 0; w < s.maxW; w++ {
		s.cols1[w] = a.Alloc(s.cols1Len)
		s.cols2[w] = a.Alloc(s.cols2Len)
		s.praw[w] = a.Alloc(s.primRawLen)
	}
	s.capB = nb
}

// bind re-points the reused tensor views at the current batch size.
// Reuse copies the shape into each view's existing shape array, so
// this allocates nothing in steady state.
//
//pimcaps:hotpath
func (s *scratch) bind() {
	nb := s.nb
	s.uT.Reuse(s.u[:nb*s.nl*s.cl], nb, s.nl, s.cl)
	s.bT.Reuse(s.b[:nb*s.nl*s.nh], nb, s.nl, s.nh)
	s.cT.Reuse(s.c[:nb*s.nl*s.nh], nb, s.nl, s.nh)
	s.vT.Reuse(s.v[:nb*s.nh*s.ch], nb, s.nh, s.ch)
	s.lengthsT.Reuse(s.lengths[:nb*s.nclass], nb, s.nclass)
}

// runChunks splits [0, n) into one contiguous chunk per worker and
// runs fn over them: chunk 0 inline on the calling goroutine, the rest
// on the Network's persistent pool workers. Panics are captured and
// the first re-raised on the caller, matching parallelChunks. The
// dispatch allocates nothing: job slots, the done channel, and the
// panic cell are all part of the scratch.
//
//pimcaps:hotpath
func (s *scratch) runChunks(n int, fn func(worker, lo, hi int)) {
	workers := s.maxW
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	s.box.reset()
	chunk := (n + workers - 1) / workers
	used := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		j := &s.jobs[used]
		j.fn, j.worker, j.lo, j.hi, j.done, j.box = fn, w, lo, hi, s.done, &s.box
		used++
	}
	//lint:ignore pimcaps/guardedby pool is written once under poolMu in ensurePool, which this goroutine passed through when it acquired the scratch
	pool := s.net.pool
	for i := 1; i < used; i++ {
		pool.jobs <- &s.jobs[i]
	}
	s.jobs[0].run()
	for i := 0; i < used; i++ {
		<-s.done
	}
	s.box.repanic()
}

// convSample runs the front-end conv + ReLU for sample k into the
// batch-wide feature buffer, using worker w's im2col scratch. Same
// kernel, loop order, and math as ConvLayer.Forward — bit-identical.
//
//pimcaps:hotpath
func (s *scratch) convSample(w, k int) {
	n := s.net
	img := s.in[k*s.imgLen : (k+1)*s.imgLen]
	feat := s.feats[k*s.convLen : (k+1)*s.convLen]
	tensor.Conv2DInto(feat, s.cols1[w], img, n.Conv.Weights.Data(), n.Conv.Bias, n.Conv.Spec, n.Config.InputH, n.Config.InputW)
	tensor.ReLU(feat)
}

// primSample runs the PrimaryCaps conv, capsule regrouping, and squash
// for sample k straight into its u rows — the same regroup indexing
// and exact-math squash as PrimaryCapsLayer.Forward, minus the copy
// through an intermediate capsule tensor (values are identical).
//
//pimcaps:hotpath
func (s *scratch) primSample(w, k int) {
	n := s.net
	prim := n.Primary
	praw := s.praw[w]
	tensor.Conv2DInto(praw, s.cols2[w], s.feats[k*s.convLen:(k+1)*s.convLen],
		prim.Conv.Weights.Data(), prim.Conv.Bias, prim.Conv.Spec, n.convH, n.convW)
	capsDim := prim.CapsDim
	urow := s.u[k*s.nl*capsDim : (k+1)*s.nl*capsDim]
	idx := 0
	for c := 0; c < prim.Channels; c++ {
		for y := 0; y < s.ph; y++ {
			for x := 0; x < s.pw; x++ {
				for d := 0; d < capsDim; d++ {
					urow[idx*capsDim+d] = praw[(c*capsDim+d)*s.ph*s.pw+y*s.pw+x]
				}
				idx++
			}
		}
	}
	for i := 0; i < s.nl; i++ {
		squashInto(ExactMath{}, urow[i*capsDim:(i+1)*capsDim], urow[i*capsDim:(i+1)*capsDim])
	}
}

//pimcaps:hotpath
func (s *scratch) convPrimRange(w, lo, hi int) {
	for k := lo; k < hi; k++ {
		s.convSample(w, k)
		s.primSample(w, k)
	}
}

//pimcaps:hotpath
func (s *scratch) convRange(w, lo, hi int) {
	for k := lo; k < hi; k++ {
		s.convSample(w, k)
	}
}

//pimcaps:hotpath
func (s *scratch) primRange(w, lo, hi int) {
	for k := lo; k < hi; k++ {
		s.primSample(w, k)
	}
}

//pimcaps:hotpath
func (s *scratch) predRange(_, lo, hi int) {
	predictionVectorsRange(s.u, s.net.Digit.Weights.Data(), s.preds, s.nb, s.nl, s.cl, s.nh, s.ch, lo, hi, true)
}

//pimcaps:hotpath
func (s *scratch) aggSamplesRange(_, lo, hi int) {
	aggregateSamplesRange(s.math, s.preds, s.c, s.s, s.v, s.nl, s.nh, s.ch, lo, hi)
}

//pimcaps:hotpath
func (s *scratch) aggCapsRange(_, lo, hi int) {
	aggregateCapsRange(s.math, s.preds, s.c, s.s, s.v, s.nb, s.nl, s.nh, s.ch, lo, hi)
}

//pimcaps:hotpath
func (s *scratch) agreeSamplesRange(_, lo, hi int) {
	agreementSamplesRange(s.preds, s.v, s.b, s.nl, s.nh, s.ch, lo, hi)
}

//pimcaps:hotpath
func (s *scratch) agreeCapsRange(_, lo, hi int) {
	agreementCapsRange(s.preds, s.v, s.b, s.nb, s.nl, s.nh, s.ch, lo, hi)
}

//pimcaps:hotpath
func (s *scratch) agreeSharedCapsRange(_, lo, hi int) {
	agreementSharedRange(s.preds, s.v, s.b[:s.nl*s.nh], s.nb, s.nl, s.nh, s.ch, lo, hi)
}

// routing runs the dynamic-routing loop of DynamicRoutingTimed on the
// scratch buffers with pre-bound kernels: the same iteration skeleton,
// stage brackets, and kernels (see kernels.go), so results are
// bit-identical to the public path; only the buffer ownership and the
// closure binding differ.
//
//pimcaps:hotpath
func (s *scratch) routing(st StageTimer) {
	n := s.net
	nb, nl, nh, ch := s.nb, s.nl, s.nh, s.ch
	mode := n.Digit.Mode
	iterations := n.Digit.Iterations
	// The brownout iteration override can only shed iterations (floor
	// 1), never add them; with the hook nil the count — and the whole
	// loop — is bit-identical to the unhooked path.
	if lim := n.IterationLimit; lim != nil {
		if k := lim(); k < iterations {
			if k < 1 {
				k = 1
			}
			iterations = k
		}
	}
	cancel := n.Cancel
	s.aborted = false
	mathOps := s.math
	bd := s.b[:nb*nl*nh]
	cd := s.c[:nb*nl*nh]
	sd := s.s[:nb*nh*ch]
	clear(bd) // logits start at zero, as a fresh tensor would
	sharedB := bd[:nl*nh]

	dim := ChoosePartition(n.Partition, nb, nl, nh, ch, s.maxW)
	if dim == PartitionB {
		n.partB.Add(1)
	} else {
		n.partH.Add(1)
	}
	endStage(beginStage(st, StageRoutingPartition, int(dim)))

	for it := 0; it < iterations; it++ {
		// Cooperative cancellation: polled between iterations (including
		// before the first), so an all-expired batch stops burning the
		// most expensive stage of the pass and the arena goes straight
		// back to the pool via Release.
		if cancel != nil && cancel() {
			s.aborted = true
			return
		}
		iterEnd := beginStage(st, StageRoutingIteration, it)

		end := beginStage(st, StageRoutingSoftmax, it)
		if mode == RouteBatchShared {
			softmaxRows(mathOps, cd[:nl*nh], sharedB, nl, nh)
			for k := 1; k < nb; k++ {
				copy(cd[k*nl*nh:(k+1)*nl*nh], cd[:nl*nh])
			}
		} else {
			for k := 0; k < nb; k++ {
				softmaxRows(mathOps, cd[k*nl*nh:(k+1)*nl*nh], bd[k*nl*nh:(k+1)*nl*nh], nl, nh)
			}
		}
		endStage(end)

		end = beginStage(st, StageRoutingAggregate, it)
		clear(sd)
		if dim == PartitionB {
			s.runChunks(nb, s.aggBFn)
		} else {
			s.runChunks(nh, s.aggHFn)
		}
		endStage(end)

		if it == iterations-1 {
			endStage(iterEnd)
			break
		}

		end = beginStage(st, StageRoutingAgreement, it)
		if mode == RouteBatchShared {
			if dim == PartitionB {
				agreementSharedRange(s.preds, s.v, sharedB, nb, nl, nh, ch, 0, nh)
			} else {
				s.runChunks(nh, s.agreeSharedHFn)
			}
		} else if dim == PartitionB {
			s.runChunks(nb, s.agreeBFn)
		} else {
			s.runChunks(nh, s.agreeHFn)
		}
		endStage(end)
		endStage(iterEnd)
	}
	if mode == RouteBatchShared {
		for k := 1; k < nb; k++ {
			copy(bd[k*nl*nh:(k+1)*nl*nh], sharedB)
		}
	}
}

// acquireScratch pops a pooled scratch (growing it if the batch
// outgrew its buffers) or builds a fresh one. Steady state — a
// released scratch available, nb within capacity — is a mutex-guarded
// slice pop: zero allocations.
//
//pimcaps:hotpath
func (n *Network) acquireScratch(nb int) *scratch {
	n.scratchMu.Lock()
	var s *scratch
	if k := len(n.scratchFree) - 1; k >= 0 {
		s = n.scratchFree[k]
		n.scratchFree[k] = nil
		n.scratchFree = n.scratchFree[:k]
	}
	n.scratchMu.Unlock()
	if s == nil {
		s = newScratch(n, nb)
	} else if s.capB < nb {
		s.alloc(nb)
	}
	s.nb = nb
	return s
}

// Release returns the Output's scratch arena to the Network's pool so
// the next Forward/ForwardBatch call reuses it — the step that makes
// the steady-state forward path allocation-free. After Release the
// Output and every tensor it exposes (Capsules, Lengths, Primary, the
// RoutingResult) alias buffers the next forward pass will overwrite;
// copy anything you need first. Release is idempotent; an Output that
// is never released simply keeps its buffers (the pre-arena behavior,
// safe but unpooled) until the collector reclaims them, but abandons
// the pooling win — which is why releasecheck makes every Forward
// caller, trainers included, reach a Release.
//
//pimcaps:hotpath
func (o *Output) Release() {
	s := o.scr
	if s == nil {
		return
	}
	o.scr = nil
	n := s.net
	n.scratchMu.Lock()
	//lint:ignore pimcaps/hotpathcheck the free-list grows to the steady-state scratch count and then never reallocates; there is no fixed bound to pre-size it to
	n.scratchFree = append(n.scratchFree, s)
	n.scratchMu.Unlock()
}

// ArenaBytes reports the bytes held by this Network's forward-pass
// scratch arenas (a high-water figure: arenas grow with the largest
// batch seen and are retained by the pool). Serving exposes it as the
// capsnet_arena_bytes gauge.
func (n *Network) ArenaBytes() uint64 { return 4 * n.arenaFloats.Load() }

// PartitionCounts reports how many routing runs sharded on the batch
// dimension and on the high-level-capsule dimension respectively —
// the observable face of the Eqs. 6–12 cost model behind the
// Partition knob.
func (n *Network) PartitionCounts() (batch, hcaps uint64) {
	return n.partB.Load(), n.partH.Load()
}
