package capsnet

// Stage names a timed forward pass reports through StageTimer, in
// pipeline order. They become the stage label values of the serving
// layer's capsnet_stage_seconds histograms and the span names in
// exported Chrome traces, so renaming one is a metrics-schema change
// (guarded by the serve package's golden exposition test).
//
// The hierarchy is intentional: StageRoutingIteration brackets one
// whole dynamic-routing iteration, and the three StageRouting*
// sub-stages (softmax, aggregate+squash, agreement) nest inside it —
// the same decomposition the paper's Fig. 3 flow uses for its
// routing-procedure breakdown.
const (
	// StageConv is the front-end convolution + ReLU over the batch.
	StageConv = "conv"
	// StagePrimaryCaps is the PrimaryCaps convolution, capsule
	// regrouping, and squash.
	StagePrimaryCaps = "primary_caps"
	// StagePredictionVectors is Eq. 1: û_j|i = u_i × W_ij.
	StagePredictionVectors = "prediction_vectors"
	// StageRoutingPartition is a zero-duration marker emitted once per
	// routing run, recording which dimension the workload was sharded
	// on: its iteration argument is the resolved Partition value
	// (PartitionB or PartitionH) the Eqs. 6–12-style cost model chose.
	StageRoutingPartition = "routing_partition"
	// StageRoutingIteration brackets one full dynamic-routing
	// iteration (reported with its iteration index).
	StageRoutingIteration = "routing_iteration"
	// StageRoutingSoftmax is Eq. 5: c_ij ← softmax_j(b_ij).
	StageRoutingSoftmax = "routing_softmax"
	// StageRoutingAggregate is Eq. 2 + Eq. 3: the weighted aggregation
	// s_j ← Σ c_ij·û_j|i and the squash v_j ← squash(s_j).
	StageRoutingAggregate = "routing_aggregate_squash"
	// StageRoutingAgreement is Eq. 4: b_ij ← b_ij + v_j·û_j|i (skipped
	// after the final iteration).
	StageRoutingAgreement = "routing_agreement"
	// StageFiniteGuard is the non-finite-output scan plus any
	// exact-math reroutes it triggers (the degradation ladder).
	StageFiniteGuard = "finite_guard"
	// StageLengths is the ‖v_j‖ class-probability computation.
	StageLengths = "lengths"
)

// StageTimer observes stage boundaries inside a forward pass.
// BeginStage is called when a stage starts and returns the function
// to invoke when it ends (the returned func may be nil). The
// iteration argument is the dynamic-routing iteration index, or -1
// for stages that are not per-iteration.
//
// Implementations do their own timing — this package passes no
// timestamps and imports no clock — so an observer built around an
// injected fake clock (internal/obs.StageRecorder) makes stage timing
// fully deterministic in tests. Implementations must be safe for use
// from the single goroutine running the forward pass; a Network
// shared by concurrent Forward callers needs a concurrency-safe
// StageTimer.
type StageTimer interface {
	BeginStage(stage string, iteration int) (end func())
}

// beginStage starts a stage on t, tolerating a nil timer — the one
// pointer check a disabled forward pass pays per stage site.
func beginStage(t StageTimer, stage string, iteration int) func() {
	if t == nil {
		return nil
	}
	return t.BeginStage(stage, iteration)
}

// endStage completes a stage started by beginStage.
func endStage(end func()) {
	if end != nil {
		end()
	}
}
