package capsnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"pimcapsnet/internal/tensor"
)

// checkpointMagic is the versioned header every checkpoint starts
// with: 7 bytes of format name plus one format-version byte. Bump the
// version byte on any incompatible change to the framing or payload.
const checkpointMagic = "PIMCAPS\x01"

// ErrCorruptCheckpoint is wrapped by every structural rejection a
// checkpoint can fail with — bad magic, truncation, CRC mismatch,
// undecodable payload, or tensor geometry inconsistent with the
// stored config. errors.Is(err, ErrCorruptCheckpoint) distinguishes
// "the file is damaged" from I/O errors like a missing path.
var ErrCorruptCheckpoint = errors.New("capsnet: corrupt checkpoint")

// netState is the gob wire format of a trained network: the
// architecture config plus every parameter tensor flattened.
type netState struct {
	Config Config
	// Parameters in fixed order: conv W/b, primary W/b, digit W,
	// then decoder layer W/b pairs (empty when no decoder).
	ConvW, PrimaryW, DigitW []float32
	ConvB, PrimaryB         []float32
	DecW                    [][]float32
	DecB                    [][]float32
}

// Save serializes the network (architecture + all weights) to w in
// the framed checkpoint format: an 8-byte versioned magic header, the
// gob-encoded state, and a little-endian CRC32 (IEEE) trailer over
// header+payload, so Load can reject truncated or bit-flipped files
// instead of silently loading garbage.
func (n *Network) Save(w io.Writer) error {
	st := netState{
		Config:   n.Config,
		ConvW:    n.Conv.Weights.Data(),
		ConvB:    n.Conv.Bias,
		PrimaryW: n.Primary.Conv.Weights.Data(),
		PrimaryB: n.Primary.Conv.Bias,
		DigitW:   n.Digit.Weights.Data(),
	}
	if n.Dec != nil {
		for _, l := range n.Dec.Layers {
			st.DecW = append(st.DecW, l.Weights.Data())
			st.DecB = append(st.DecB, l.Bias)
		}
	}
	h := crc32.NewIEEE()
	mw := io.MultiWriter(w, h)
	if _, err := io.WriteString(mw, checkpointMagic); err != nil {
		return fmt.Errorf("capsnet: writing checkpoint header: %w", err)
	}
	if err := gob.NewEncoder(mw).Encode(st); err != nil {
		return fmt.Errorf("capsnet: encoding checkpoint: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("capsnet: writing checkpoint trailer: %w", err)
	}
	return nil
}

// Load deserializes a network previously written by Save, verifying
// the magic header, the CRC32 trailer, and the consistency of every
// stored tensor with the stored architecture before any weight is
// accepted. All structural failures wrap ErrCorruptCheckpoint.
func Load(r io.Reader) (*Network, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("capsnet: reading checkpoint: %w", err)
	}
	if len(raw) < len(checkpointMagic)+4 {
		return nil, fmt.Errorf("%w: %d bytes, shorter than header+trailer", ErrCorruptCheckpoint, len(raw))
	}
	if string(raw[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q (not a %q checkpoint, or a pre-framing legacy file)",
			ErrCorruptCheckpoint, raw[:len(checkpointMagic)], checkpointMagic[:7])
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: CRC32 %08x, trailer says %08x (truncated or bit-flipped)",
			ErrCorruptCheckpoint, got, want)
	}
	var st netState
	if err := gob.NewDecoder(bytes.NewReader(body[len(checkpointMagic):])).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: decoding state: %v", ErrCorruptCheckpoint, err)
	}
	return restoreState(st)
}

// paramLimit bounds the per-tensor element count Load accepts (2^28
// float32s ≈ 1 GiB): a crafted config cannot drive the rebuild into
// multi-gigabyte allocations before the length checks run.
const paramLimit = 1 << 28

// mulCap multiplies non-negative sizes, reporting false when the
// product would exceed paramLimit (which also rules out overflow).
func mulCap(a, b int) (int, bool) {
	if a < 0 || b < 0 {
		return 0, false
	}
	if b != 0 && a > paramLimit/b {
		return 0, false
	}
	return a * b, true
}

// checkpointShape holds the tensor lengths a config implies, computed
// without allocating so Load can validate the stored slices first.
type checkpointShape struct {
	convW, convB, primW, primB, digitW int
	decW, decB                         []int
}

// shapeOf mirrors New's geometry arithmetic. It returns an error
// (wrapping ErrCorruptCheckpoint) when the config is invalid or
// implies absurdly large tensors.
func shapeOf(cfg Config) (checkpointShape, error) {
	var sh checkpointShape
	if err := cfg.Validate(); err != nil {
		return sh, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	ok := true
	mul := func(dims ...int) int {
		acc := 1
		for _, d := range dims {
			var good bool
			acc, good = mulCap(acc, d)
			ok = ok && good
		}
		return acc
	}
	sh.convW = mul(cfg.ConvChannels, cfg.InputChannels, cfg.ConvKernel, cfg.ConvKernel)
	sh.convB = cfg.ConvChannels
	primCout := mul(cfg.PrimaryChannels, cfg.PrimaryDim)
	sh.primW = mul(primCout, cfg.ConvChannels, cfg.PrimaryKernel, cfg.PrimaryKernel)
	sh.primB = primCout
	convSpec := tensor.ConvSpec{Cin: cfg.InputChannels, Cout: cfg.ConvChannels, K: cfg.ConvKernel, Stride: cfg.ConvStride}
	oh, ow := convSpec.OutSize(cfg.InputH, cfg.InputW)
	primSpec := tensor.ConvSpec{Cin: cfg.ConvChannels, Cout: primCout, K: cfg.PrimaryKernel, Stride: cfg.PrimaryStride}
	ph, pw := primSpec.OutSize(oh, ow)
	numL := mul(cfg.PrimaryChannels, ph, pw)
	sh.digitW = mul(numL, cfg.Classes, cfg.PrimaryDim, cfg.DigitDim)
	if cfg.WithDecoder {
		capsInput := mul(cfg.Classes, cfg.DigitDim)
		output := mul(cfg.InputChannels, cfg.InputH, cfg.InputW)
		sh.decW = []int{mul(512, capsInput), mul(1024, 512), mul(output, 1024)}
		sh.decB = []int{512, 1024, output}
	}
	if !ok {
		return sh, fmt.Errorf("%w: config implies more than %d parameters in one tensor", ErrCorruptCheckpoint, paramLimit)
	}
	return sh, nil
}

// restoreState validates every slice length of st against the
// geometry its config implies, then — and only then — rebuilds the
// network and copies the weights in.
func restoreState(st netState) (*Network, error) {
	sh, err := shapeOf(st.Config)
	if err != nil {
		return nil, err
	}
	checkLen := func(what string, got, want int) error {
		if got != want {
			return fmt.Errorf("%w: %s has %d values, config implies %d", ErrCorruptCheckpoint, what, got, want)
		}
		return nil
	}
	for _, c := range []struct {
		what      string
		got, want int
	}{
		{"conv weights", len(st.ConvW), sh.convW},
		{"conv bias", len(st.ConvB), sh.convB},
		{"primary weights", len(st.PrimaryW), sh.primW},
		{"primary bias", len(st.PrimaryB), sh.primB},
		{"digit weights", len(st.DigitW), sh.digitW},
		{"decoder layers", len(st.DecW), len(sh.decW)},
		{"decoder biases", len(st.DecB), len(sh.decB)},
	} {
		if err := checkLen(c.what, c.got, c.want); err != nil {
			return nil, err
		}
	}
	for i := range sh.decW {
		if err := checkLen(fmt.Sprintf("decoder[%d] weights", i), len(st.DecW[i]), sh.decW[i]); err != nil {
			return nil, err
		}
		if err := checkLen(fmt.Sprintf("decoder[%d] bias", i), len(st.DecB[i]), sh.decB[i]); err != nil {
			return nil, err
		}
	}
	n, err := New(st.Config)
	if err != nil {
		return nil, fmt.Errorf("capsnet: rebuilding network: %w", err)
	}
	copy(n.Conv.Weights.Data(), st.ConvW)
	copy(n.Conv.Bias, st.ConvB)
	copy(n.Primary.Conv.Weights.Data(), st.PrimaryW)
	copy(n.Primary.Conv.Bias, st.PrimaryB)
	copy(n.Digit.Weights.Data(), st.DigitW)
	if n.Dec != nil {
		for i, l := range n.Dec.Layers {
			copy(l.Weights.Data(), st.DecW[i])
			copy(l.Bias, st.DecB[i])
		}
	}
	return n, nil
}

// checkpointCrashHook, when non-nil, is called by SaveFile between
// its durability stages ("written", "synced", "renamed") so the fault
// campaign can simulate a crash at any point and assert the old
// checkpoint survives. Test-only; nil in production.
var checkpointCrashHook func(stage string)

// SaveFile atomically and durably writes the checkpoint to path:
// the framed format goes to a temp file in the same directory, is
// fsynced, and is renamed over path, after which the directory entry
// is fsynced too. A crash at any point leaves either the complete old
// file or the complete new file — never a torn mix — and any stray
// temp file fails Load's CRC check rather than masquerading as a
// model.
func (n *Network) SaveFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("capsnet: creating temp checkpoint: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if f != nil {
			f.Close()
		}
		if tmp != "" {
			os.Remove(tmp)
		}
	}()
	if err := n.Save(f); err != nil {
		return err
	}
	if hook := checkpointCrashHook; hook != nil {
		hook("written")
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("capsnet: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		f = nil
		return fmt.Errorf("capsnet: closing checkpoint: %w", err)
	}
	f = nil
	if hook := checkpointCrashHook; hook != nil {
		hook("synced")
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("capsnet: publishing checkpoint: %w", err)
	}
	tmp = ""
	if hook := checkpointCrashHook; hook != nil {
		hook("renamed")
	}
	// Best-effort directory fsync so the rename itself is durable;
	// some filesystems refuse to sync directories, which is not worth
	// failing a successfully renamed checkpoint over.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile opens and verifies a checkpoint written by SaveFile (or
// Save). Structural damage — truncation, bit flips, bad framing —
// surfaces as an error wrapping ErrCorruptCheckpoint.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return n, nil
}
