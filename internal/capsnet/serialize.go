package capsnet

import (
	"encoding/gob"
	"fmt"
	"io"

	"pimcapsnet/internal/tensor"
)

// netState is the gob wire format of a trained network: the
// architecture config plus every parameter tensor flattened.
type netState struct {
	Config Config
	// Parameters in fixed order: conv W/b, primary W/b, digit W,
	// then decoder layer W/b pairs (empty when no decoder).
	ConvW, PrimaryW, DigitW []float32
	ConvB, PrimaryB         []float32
	DecW                    [][]float32
	DecB                    [][]float32
}

// Save serializes the network (architecture + all weights) to w. The
// format is Go-gob based and versioned only by the Config structure;
// it is intended for checkpointing within this library.
func (n *Network) Save(w io.Writer) error {
	st := netState{
		Config:   n.Config,
		ConvW:    n.Conv.Weights.Data(),
		ConvB:    n.Conv.Bias,
		PrimaryW: n.Primary.Conv.Weights.Data(),
		PrimaryB: n.Primary.Conv.Bias,
		DigitW:   n.Digit.Weights.Data(),
	}
	if n.Dec != nil {
		for _, l := range n.Dec.Layers {
			st.DecW = append(st.DecW, l.Weights.Data())
			st.DecB = append(st.DecB, l.Bias)
		}
	}
	return gob.NewEncoder(w).Encode(st)
}

// Load deserializes a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var st netState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("capsnet: decoding network: %w", err)
	}
	n, err := New(st.Config)
	if err != nil {
		return nil, fmt.Errorf("capsnet: rebuilding network: %w", err)
	}
	restore := func(dst *tensor.Tensor, src []float32, what string) error {
		if len(src) != dst.Len() {
			return fmt.Errorf("capsnet: %s has %d weights, want %d", what, len(src), dst.Len())
		}
		copy(dst.Data(), src)
		return nil
	}
	if err := restore(n.Conv.Weights, st.ConvW, "conv"); err != nil {
		return nil, err
	}
	if err := restore(n.Primary.Conv.Weights, st.PrimaryW, "primary"); err != nil {
		return nil, err
	}
	if err := restore(n.Digit.Weights, st.DigitW, "digit"); err != nil {
		return nil, err
	}
	if len(st.ConvB) != len(n.Conv.Bias) || len(st.PrimaryB) != len(n.Primary.Conv.Bias) {
		return nil, fmt.Errorf("capsnet: bias length mismatch")
	}
	copy(n.Conv.Bias, st.ConvB)
	copy(n.Primary.Conv.Bias, st.PrimaryB)
	if n.Dec != nil {
		if len(st.DecW) != len(n.Dec.Layers) {
			return nil, fmt.Errorf("capsnet: decoder has %d layers, checkpoint has %d", len(n.Dec.Layers), len(st.DecW))
		}
		for i, l := range n.Dec.Layers {
			if err := restore(l.Weights, st.DecW[i], fmt.Sprintf("decoder[%d]", i)); err != nil {
				return nil, err
			}
			if len(st.DecB[i]) != len(l.Bias) {
				return nil, fmt.Errorf("capsnet: decoder[%d] bias mismatch", i)
			}
			copy(l.Bias, st.DecB[i])
		}
	}
	return n, nil
}
