package capsnet

import (
	"math"
	"math/rand"
	"testing"

	"pimcapsnet/internal/tensor"
)

// Regression tests for the trainer-side scratch leaks found by
// pimcaps-vet's releasecheck: TrainBatch and Evaluate each acquire a
// scratch through Forward but (before the fix) never released it, so
// every training or evaluation step abandoned its arena to the
// collector and the next step allocated a fresh slab — silently
// defeating the pooled forward path for any training workload.

// trainTestBatch builds a deterministic B×C×H×W image tensor and
// labels for a TinyConfig network.
func trainTestBatch(net *Network, nb int, seed int64) (*tensor.Tensor, []int) {
	cfg := net.Config
	batch := tensor.New(nb, cfg.InputChannels, cfg.InputH, cfg.InputW)
	rng := rand.New(rand.NewSource(seed))
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	labels := make([]int, nb)
	for k := range labels {
		labels[k] = rng.Intn(cfg.Classes)
	}
	return batch, labels
}

// TestTrainBatchReleasesScratch holds the pooling contract for the
// trainer: after the first step builds the scratch, further steps
// reuse it, so the arena gauge stays flat. Before TrainBatch deferred
// out.Release(), every step leaked its scratch and the gauge grew
// monotonically.
func TestTrainBatchReleasesScratch(t *testing.T) {
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(net, 0.05)
	batch, labels := trainTestBatch(net, 4, 21)
	tr.TrainBatch(batch, labels)
	base := net.ArenaBytes()
	if base == 0 {
		t.Fatal("ArenaBytes reports 0 after a training step")
	}
	for i := 0; i < 6; i++ {
		tr.TrainBatch(batch, labels)
	}
	if got := net.ArenaBytes(); got != base {
		t.Fatalf("arena bytes grew %d -> %d over training steps: TrainBatch is leaking its Output's scratch", base, got)
	}
}

// TestEvaluateReleasesScratch is the same contract for Evaluate, which
// had the same leak.
func TestEvaluateReleasesScratch(t *testing.T) {
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	images, labels := trainTestBatch(net, 5, 22)
	Evaluate(net, images, labels, ExactMath{})
	base := net.ArenaBytes()
	if base == 0 {
		t.Fatal("ArenaBytes reports 0 after an evaluation")
	}
	for i := 0; i < 6; i++ {
		Evaluate(net, images, labels, ExactMath{})
	}
	if got := net.ArenaBytes(); got != base {
		t.Fatalf("arena bytes grew %d -> %d over evaluations: Evaluate is leaking its Output's scratch", base, got)
	}
}

// TestTrainBitIdenticalOnReusedScratch holds the correctness side of
// releasing inside the trainer: training on a pooled scratch — dirtied
// by an earlier, larger forward pass and reused every step — updates
// weights bit-identically to a network whose pool starts cold. The
// backward pass reads out's tensors after the deferred Release is
// scheduled but before it runs, so any buffer-lifetime mistake in the
// fix would show up here as diverging weights.
func TestTrainBitIdenticalOnReusedScratch(t *testing.T) {
	cfg := TinyConfig(3)
	cold, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty warm's pool: a released batch-6 scratch full of stale data
	// is what every training step below will reuse.
	big, _ := trainTestBatch(warm, 6, 23)
	warm.Forward(big, ExactMath{}).Release()

	trCold := NewTrainer(cold, 0.1)
	trWarm := NewTrainer(warm, 0.1)
	for step := 0; step < 4; step++ {
		batch, labels := trainTestBatch(cold, 4, int64(30+step))
		lossCold, accCold := trCold.TrainBatch(batch, labels)
		lossWarm, accWarm := trWarm.TrainBatch(batch, labels)
		if math.Float32bits(lossCold) != math.Float32bits(lossWarm) ||
			math.Float64bits(accCold) != math.Float64bits(accWarm) {
			t.Fatalf("step %d: cold (loss %v, acc %v) vs reused scratch (loss %v, acc %v)",
				step, lossCold, accCold, lossWarm, accWarm)
		}
	}
	cd, wd := cold.Digit.Weights.Data(), warm.Digit.Weights.Data()
	for i := range cd {
		if math.Float32bits(cd[i]) != math.Float32bits(wd[i]) {
			t.Fatalf("weight %d differs after training on a reused scratch", i)
		}
	}
}
