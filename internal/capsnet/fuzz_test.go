package capsnet

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds mutated checkpoint bytes into Load. The invariant is
// crash-freedom: Load either returns a usable *Network or an error —
// it must never panic, allocate absurdly from a crafted config, or
// index out of range on inconsistent slice counts (the pre-fix DecB
// bug). CI runs this for a 10s smoke on every push; the seed corpus
// alone runs under plain `go test`.
func FuzzLoad(f *testing.F) {
	net, err := New(TinyConfig(2))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	dec, err := New(func() Config { c := TinyConfig(2); c.WithDecoder = true; return c }())
	if err != nil {
		f.Fatal(err)
	}
	var decBuf bytes.Buffer
	if err := dec.Save(&decBuf); err != nil {
		f.Fatal(err)
	}

	f.Add(valid)
	f.Add(decBuf.Bytes())
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("PIMCAPS\x01 definitely not gob"))
	f.Add([]byte("not a checkpoint at all"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Load(bytes.NewReader(data))
		if err == nil && n == nil {
			t.Fatal("Load returned neither a network nor an error")
		}
		if err != nil && n != nil {
			t.Fatal("Load returned both a network and an error")
		}
	})
}
