package capsnet

import (
	"fmt"
	"math"
	"math/rand"

	"pimcapsnet/internal/tensor"
)

// ConvLayer is a standard convolution + ReLU layer (the CapsNet
// front end of Fig. 2).
type ConvLayer struct {
	Spec    tensor.ConvSpec
	Weights *tensor.Tensor // Cout × (Cin·K·K)
	Bias    []float32
}

// NewConvLayer creates a convolution layer with He-initialized weights
// drawn from rng.
func NewConvLayer(spec tensor.ConvSpec, rng *rand.Rand) *ConvLayer {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	fanIn := spec.Cin * spec.K * spec.K
	std := float32(math.Sqrt(2 / float64(fanIn)))
	w := tensor.New(spec.Cout, fanIn)
	for i := range w.Data() {
		w.Data()[i] = float32(rng.NormFloat64()) * std
	}
	return &ConvLayer{Spec: spec, Weights: w, Bias: make([]float32, spec.Cout)}
}

// Forward applies the convolution and ReLU to a Cin×H×W input.
func (l *ConvLayer) Forward(input *tensor.Tensor) *tensor.Tensor {
	out := tensor.Conv2D(input, l.Weights, l.Bias, l.Spec)
	tensor.ReLU(out.Data())
	return out
}

// PrimaryCapsLayer converts a convolution output into capsules: a
// convolution producing Channels·CapsDim feature maps whose activations
// are regrouped into (Channels·oh·ow) capsules of dimension CapsDim and
// squashed (Fig. 2's PrimaryCaps layer).
type PrimaryCapsLayer struct {
	Conv     *ConvLayer
	Channels int // capsule channels (32 in CapsNet-MNIST)
	CapsDim  int // dimension per capsule (8 in CapsNet-MNIST)
}

// NewPrimaryCapsLayer builds the PrimaryCaps convolution for cin input
// channels with the given kernel/stride.
func NewPrimaryCapsLayer(cin, channels, capsDim, k, stride int, rng *rand.Rand) *PrimaryCapsLayer {
	spec := tensor.ConvSpec{Cin: cin, Cout: channels * capsDim, K: k, Stride: stride}
	return &PrimaryCapsLayer{Conv: NewConvLayer(spec, rng), Channels: channels, CapsDim: capsDim}
}

// NumCaps returns the number of capsules produced for an h×w conv
// input.
func (l *PrimaryCapsLayer) NumCaps(h, w int) int {
	oh, ow := l.Conv.Spec.OutSize(h, w)
	return l.Channels * oh * ow
}

// Forward maps a Cin×H×W activation tensor to L×CapsDim squashed
// capsules.
func (l *PrimaryCapsLayer) Forward(input *tensor.Tensor) *tensor.Tensor {
	raw := tensor.Conv2D(input, l.Conv.Weights, l.Conv.Bias, l.Conv.Spec) // (ch·dim)×oh×ow
	oh, ow := raw.Dim(1), raw.Dim(2)
	n := l.Channels * oh * ow
	out := tensor.New(n, l.CapsDim)
	od := out.Data()
	rd := raw.Data()
	// Capsule (c, y, x) takes dimension d from channel c·CapsDim+d.
	idx := 0
	for c := 0; c < l.Channels; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for d := 0; d < l.CapsDim; d++ {
					od[idx*l.CapsDim+d] = rd[(c*l.CapsDim+d)*oh*ow+y*ow+x]
				}
				idx++
			}
		}
	}
	// Squash each capsule (exact math: PrimaryCaps runs on the host).
	for i := 0; i < n; i++ {
		squashInto(ExactMath{}, od[i*l.CapsDim:(i+1)*l.CapsDim], od[i*l.CapsDim:(i+1)*l.CapsDim])
	}
	return out
}

// CapsLayer is a capsule layer connected to its predecessor by the
// routing procedure: NumIn capsules of dimension DimIn are routed into
// NumOut capsules of dimension DimOut through per-pair weight matrices
// (Eq. 1) and iterations of dynamic routing.
type CapsLayer struct {
	NumIn, DimIn   int
	NumOut, DimOut int
	Iterations     int
	// Mode scopes the routing coefficients (per-sample by default;
	// batch-shared is the paper's Alg. 1 formulation).
	Mode    RoutingMode
	Weights *tensor.Tensor // NumIn×NumOut×DimIn×DimOut
}

// NewCapsLayer creates a capsule layer with Xavier-initialized weights.
func NewCapsLayer(numIn, dimIn, numOut, dimOut, iterations int, rng *rand.Rand) *CapsLayer {
	if numIn <= 0 || dimIn <= 0 || numOut <= 0 || dimOut <= 0 {
		panic(fmt.Sprintf("capsnet: invalid CapsLayer geometry %d·%d → %d·%d", numIn, dimIn, numOut, dimOut))
	}
	if iterations < 1 {
		panic("capsnet: CapsLayer needs at least one routing iteration")
	}
	std := float32(math.Sqrt(2 / float64(dimIn+dimOut)))
	w := tensor.New(numIn, numOut, dimIn, dimOut)
	for i := range w.Data() {
		w.Data()[i] = float32(rng.NormFloat64()) * std
	}
	return &CapsLayer{NumIn: numIn, DimIn: dimIn, NumOut: numOut, DimOut: dimOut, Iterations: iterations, Weights: w}
}

// Forward routes a batch of input capsules (B×NumIn×DimIn) to output
// capsules (B×NumOut×DimOut) using mathOps for the routing special
// functions. It returns the routing result, whose V field is the layer
// output.
func (l *CapsLayer) Forward(u *tensor.Tensor, mathOps RoutingMath) RoutingResult {
	return l.ForwardTimed(u, mathOps, nil)
}

// ForwardTimed is Forward with per-stage observation: the
// prediction-vector computation and every dynamic-routing iteration
// (with its softmax / aggregate+squash / agreement sub-phases) are
// reported to timer. A nil timer is the untimed fast path; results
// are identical either way.
func (l *CapsLayer) ForwardTimed(u *tensor.Tensor, mathOps RoutingMath, timer StageTimer) RoutingResult {
	if u.Rank() != 3 || u.Dim(1) != l.NumIn || u.Dim(2) != l.DimIn {
		panic(fmt.Sprintf("capsnet: CapsLayer input %v, want B×%d×%d", u.Shape(), l.NumIn, l.DimIn))
	}
	end := beginStage(timer, StagePredictionVectors, -1)
	preds := PredictionVectors(u, l.Weights)
	endStage(end)
	return DynamicRoutingTimed(preds, l.Iterations, mathOps, l.Mode, timer)
}

// FCLayer is a fully-connected layer with a selectable activation,
// used by the reconstruction decoder (Fig. 2's FC stack).
type FCLayer struct {
	In, Out    int
	Weights    *tensor.Tensor // Out×In
	Bias       []float32
	Activation Activation
}

// Activation selects an FC layer's nonlinearity.
type Activation int

// Supported activations.
const (
	ActNone Activation = iota
	ActReLU
	ActSigmoid
)

// NewFCLayer creates a fully-connected layer with Xavier-initialized
// weights.
func NewFCLayer(in, out int, act Activation, rng *rand.Rand) *FCLayer {
	std := float32(math.Sqrt(2 / float64(in+out)))
	w := tensor.New(out, in)
	for i := range w.Data() {
		w.Data()[i] = float32(rng.NormFloat64()) * std
	}
	return &FCLayer{In: in, Out: out, Weights: w, Bias: make([]float32, out), Activation: act}
}

// Forward applies the layer to a single input vector.
func (l *FCLayer) Forward(x []float32) []float32 {
	if len(x) != l.In {
		panic(fmt.Sprintf("capsnet: FCLayer input length %d, want %d", len(x), l.In))
	}
	y := tensor.MatVec(l.Weights, x)
	for i := range y {
		y[i] += l.Bias[i]
	}
	switch l.Activation {
	case ActReLU:
		tensor.ReLU(y)
	case ActSigmoid:
		tensor.Sigmoid(y)
	}
	return y
}

// Decoder is the reconstruction decoder: a stack of FC layers applied
// to the (masked) final capsule outputs.
type Decoder struct {
	Layers []*FCLayer
}

// NewDecoder builds the paper's 512→1024→output decoder on top of a
// capsInput-sized masked capsule vector.
func NewDecoder(capsInput, output int, rng *rand.Rand) *Decoder {
	return &Decoder{Layers: []*FCLayer{
		NewFCLayer(capsInput, 512, ActReLU, rng),
		NewFCLayer(512, 1024, ActReLU, rng),
		NewFCLayer(1024, output, ActSigmoid, rng),
	}}
}

// Forward runs the decoder on a masked capsule vector.
func (d *Decoder) Forward(x []float32) []float32 {
	for _, l := range d.Layers {
		x = l.Forward(x)
	}
	return x
}
