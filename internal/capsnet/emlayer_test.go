package capsnet

import (
	"math/rand"
	"testing"

	"pimcapsnet/internal/tensor"
)

func TestEMCapsLayerShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewEMCapsLayer(12, 8, 4, 16, DefaultEMConfig(), rng)
	u := tensor.New(2, 12, 8)
	for i := range u.Data() {
		u.Data()[i] = float32(rng.NormFloat64()) * 0.3
	}
	res := l.Forward(u, ExactMath{})
	if sh := res.Pose.Shape(); sh[0] != 2 || sh[1] != 4 || sh[2] != 16 {
		t.Fatalf("pose shape %v", sh)
	}
	if sh := res.Act.Shape(); sh[0] != 2 || sh[1] != 4 {
		t.Fatalf("act shape %v", sh)
	}
}

func TestEMCapsLayerBadInputPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewEMCapsLayer(12, 8, 4, 16, DefaultEMConfig(), rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Forward(tensor.New(2, 9, 8), ExactMath{})
}

func TestEMNetworkForward(t *testing.T) {
	cfg := TinyConfig(3)
	net, err := NewEMNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := tensor.New(2, 1, 12, 12)
	rng := rand.New(rand.NewSource(3))
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	res := net.Forward(batch, ExactMath{})
	preds := net.Predictions(res)
	if len(preds) != 2 {
		t.Fatalf("predictions %v", preds)
	}
	for _, p := range preds {
		if p < 0 || p >= 3 {
			t.Fatalf("prediction %d out of range", p)
		}
	}
	for _, a := range res.Act.Data() {
		if a < 0 || a > 1 {
			t.Fatalf("activation %v outside [0,1]", a)
		}
	}
}

func TestEMNetworkRejectsBadConfig(t *testing.T) {
	bad := TinyConfig(0)
	if _, err := NewEMNetwork(bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestEMNetworkPEMathAgrees(t *testing.T) {
	net, _ := NewEMNetwork(TinyConfig(3))
	batch := tensor.New(1, 1, 12, 12)
	rng := rand.New(rand.NewSource(4))
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	exact := net.Forward(batch, ExactMath{})
	approx := net.Forward(batch, NewPEMath())
	if !approx.Pose.AllClose(exact.Pose, 0.15, 0.05) {
		t.Fatal("EM network PE math diverged from exact")
	}
}
