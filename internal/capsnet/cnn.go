package capsnet

import (
	"fmt"
	"math/rand"

	"pimcapsnet/internal/tensor"
)

// CNN is the pooling-CNN baseline of the paper's motivation (§1,
// Fig. 1): Conv → ReLU → MaxPool → FC → softmax. The max-pooling's
// "happenstance translational invariance" is exactly what discards
// the pose information capsules preserve, which the equivariance
// comparison in examples/ and the tests demonstrate.
type CNN struct {
	Conv *ConvLayer
	Pool int
	FC   *FCLayer // logits (no activation; softmax in the loss)

	inC, inH, inW       int
	poolC, poolH, poolW int
}

// CNNConfig describes the baseline.
type CNNConfig struct {
	InputChannels, InputH, InputW int
	ConvChannels, ConvKernel      int
	Pool                          int
	Classes                       int
	Seed                          int64
}

// TinyCNNConfig mirrors TinyConfig's scale for apples-to-apples
// comparisons with the capsule network.
func TinyCNNConfig(classes int) CNNConfig {
	return CNNConfig{
		InputChannels: 1, InputH: 12, InputW: 12,
		ConvChannels: 16, ConvKernel: 5, Pool: 2,
		Classes: classes, Seed: 1,
	}
}

// NewCNN builds the baseline with seeded initialization.
func NewCNN(cfg CNNConfig) (*CNN, error) {
	if cfg.Classes <= 0 {
		return nil, fmt.Errorf("capsnet: CNN needs positive class count")
	}
	spec := tensor.ConvSpec{Cin: cfg.InputChannels, Cout: cfg.ConvChannels, K: cfg.ConvKernel, Stride: 1}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	oh, ow := spec.OutSize(cfg.InputH, cfg.InputW)
	if oh < cfg.Pool || ow < cfg.Pool || cfg.Pool <= 0 {
		return nil, fmt.Errorf("capsnet: pool %d does not fit conv output %dx%d", cfg.Pool, oh, ow)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	conv := NewConvLayer(spec, rng)
	ph, pw := oh/cfg.Pool, ow/cfg.Pool
	fc := NewFCLayer(cfg.ConvChannels*ph*pw, cfg.Classes, ActNone, rng)
	return &CNN{
		Conv: conv, Pool: cfg.Pool, FC: fc,
		inC: cfg.InputChannels, inH: cfg.InputH, inW: cfg.InputW,
		poolC: cfg.ConvChannels, poolH: ph, poolW: pw,
	}, nil
}

// Logits runs one image (C·H·W slice) to class logits.
func (c *CNN) Logits(img []float32) []float32 {
	in := tensor.FromSlice(img, c.inC, c.inH, c.inW)
	feat := c.Conv.Forward(in)
	pooled, _ := tensor.MaxPool2D(feat, c.Pool)
	return c.FC.Forward(pooled.Data())
}

// Predict returns the argmax class for one image.
func (c *CNN) Predict(img []float32) int {
	return tensor.ArgMax(c.Logits(img))
}

// EvaluateCNN returns the baseline's accuracy on a dataset tensor
// (B×C×H×W) with labels.
func EvaluateCNN(c *CNN, images *tensor.Tensor, labels []int) float64 {
	imgLen := c.inC * c.inH * c.inW
	correct := 0
	for k := range labels {
		if c.Predict(images.Data()[k*imgLen:(k+1)*imgLen]) == labels[k] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// CNNTrainer fits the baseline with softmax cross-entropy SGD,
// backpropagating through the FC layer, the max-pool argmaxes, the
// ReLU and the convolution.
type CNNTrainer struct {
	Net *CNN
	LR  float32
}

// TrainBatch performs one SGD step and returns mean loss and
// pre-update accuracy.
func (t *CNNTrainer) TrainBatch(images *tensor.Tensor, labels []int) (loss float32, acc float64) {
	c := t.Net
	nb := images.Dim(0)
	if len(labels) != nb {
		panic(fmt.Sprintf("capsnet: %d labels for CNN batch of %d", len(labels), nb))
	}
	imgLen := c.inC * c.inH * c.inW
	nc := c.FC.Out

	dWfc := tensor.New(c.FC.Weights.Shape()...)
	dBfc := make([]float32, nc)
	dWconv := tensor.New(c.Conv.Weights.Shape()...)
	dBconv := make([]float32, len(c.Conv.Bias))
	correct := 0

	for k := 0; k < nb; k++ {
		img := tensor.FromSlice(images.Data()[k*imgLen:(k+1)*imgLen], c.inC, c.inH, c.inW)
		feat := c.Conv.Forward(img) // post-ReLU
		pooled, arg := tensor.MaxPool2D(feat, c.Pool)
		logits := c.FC.Forward(pooled.Data())

		// Softmax cross-entropy.
		probs := make([]float32, nc)
		tensor.Softmax(probs, logits)
		if tensor.ArgMax(logits) == labels[k] {
			correct++
		}
		loss += -logf(probs[labels[k]] + 1e-12)
		dLogits := make([]float32, nc)
		copy(dLogits, probs)
		dLogits[labels[k]] -= 1

		// FC backward.
		dPooled := fcBackward(c.FC, pooled.Data(), logits, dLogits, dWfc, dBfc)
		// Pool backward.
		dFeat := tensor.MaxPool2DBackward(
			tensor.FromSlice(dPooled, c.poolC, c.poolH, c.poolW), arg,
			feat.Dim(0), feat.Dim(1), feat.Dim(2))
		// ReLU backward.
		fd := feat.Data()
		for p, fv := range fd {
			if fv <= 0 {
				dFeat.Data()[p] = 0
			}
		}
		// Conv backward.
		g := tensor.Conv2DBackward(img, c.Conv.Weights, dFeat, c.Conv.Spec, false)
		accumulate(dWconv.Data(), g.DWeights.Data())
		accumulateSlice(dBconv, g.DBias)
	}

	step := t.LR / float32(nb)
	applyUpdate(c.FC.Weights.Data(), dWfc.Data(), step)
	applyUpdateSlice(c.FC.Bias, dBfc, step)
	applyUpdate(c.Conv.Weights.Data(), dWconv.Data(), step)
	applyUpdateSlice(c.Conv.Bias, dBconv, step)
	return loss / float32(nb), float64(correct) / float64(nb)
}
