package capsnet

import (
	"fmt"
	"math/rand"

	"pimcapsnet/internal/tensor"
)

// EMCapsLayer is a capsule layer connected by EM routing instead of
// dynamic routing: child capsules vote for parent poses through
// per-pair weight matrices and Expectation-Maximization assigns
// responsibilities (§2.2's second routing algorithm). Child
// activations are the input capsule norms.
type EMCapsLayer struct {
	NumIn, DimIn   int
	NumOut, DimOut int
	Config         EMConfig
	Weights        *tensor.Tensor // NumIn×NumOut×DimIn×DimOut
}

// NewEMCapsLayer creates an EM-routed capsule layer with
// Xavier-initialized vote transforms.
func NewEMCapsLayer(numIn, dimIn, numOut, dimOut int, cfg EMConfig, rng *rand.Rand) *EMCapsLayer {
	inner := NewCapsLayer(numIn, dimIn, numOut, dimOut, 1, rng)
	return &EMCapsLayer{
		NumIn: numIn, DimIn: dimIn, NumOut: numOut, DimOut: dimOut,
		Config: cfg, Weights: inner.Weights,
	}
}

// Forward routes input capsules (B×NumIn×DimIn) into parent poses and
// activations.
func (l *EMCapsLayer) Forward(u *tensor.Tensor, mathOps RoutingMath) EMResult {
	if u.Rank() != 3 || u.Dim(1) != l.NumIn || u.Dim(2) != l.DimIn {
		panic(fmt.Sprintf("capsnet: EMCapsLayer input %v, want B×%d×%d", u.Shape(), l.NumIn, l.DimIn))
	}
	votes := PredictionVectors(u, l.Weights)
	nb := u.Dim(0)
	act := tensor.New(nb, l.NumIn)
	for k := 0; k < nb; k++ {
		for i := 0; i < l.NumIn; i++ {
			act.Data()[k*l.NumIn+i] = tensor.Norm(u.Data()[(k*l.NumIn+i)*l.DimIn : (k*l.NumIn+i+1)*l.DimIn])
		}
	}
	return EMRouting(votes, act, l.Config, mathOps)
}

// EMNetwork is a CapsNet whose final layer routes with EM: the same
// Conv/PrimaryCaps front end, an EM-routed class layer, and
// classification by parent activation.
type EMNetwork struct {
	Config  Config
	Conv    *ConvLayer
	Primary *PrimaryCapsLayer
	Class   *EMCapsLayer
}

// NewEMNetwork builds an EM-routed network from the same Config used
// for dynamic-routing networks (RoutingIterations maps to EM
// iterations).
func NewEMNetwork(cfg Config) (*EMNetwork, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	conv := NewConvLayer(tensor.ConvSpec{Cin: cfg.InputChannels, Cout: cfg.ConvChannels, K: cfg.ConvKernel, Stride: cfg.ConvStride}, rng)
	oh, ow := conv.Spec.OutSize(cfg.InputH, cfg.InputW)
	primary := NewPrimaryCapsLayer(cfg.ConvChannels, cfg.PrimaryChannels, cfg.PrimaryDim, cfg.PrimaryKernel, cfg.PrimaryStride, rng)
	numL := primary.NumCaps(oh, ow)
	em := DefaultEMConfig()
	em.Iterations = cfg.RoutingIterations
	class := NewEMCapsLayer(numL, cfg.PrimaryDim, cfg.Classes, cfg.DigitDim, em, rng)
	return &EMNetwork{Config: cfg, Conv: conv, Primary: primary, Class: class}, nil
}

// Forward runs the encoder; classification scores are the parent
// activations.
func (n *EMNetwork) Forward(batch *tensor.Tensor, mathOps RoutingMath) EMResult {
	if batch.Rank() != 4 {
		panic(fmt.Sprintf("capsnet: Forward wants B×C×H×W, got %v", batch.Shape()))
	}
	nb := batch.Dim(0)
	numL := n.Class.NumIn
	u := tensor.New(nb, numL, n.Config.PrimaryDim)
	imgLen := n.Config.InputChannels * n.Config.InputH * n.Config.InputW
	for k := 0; k < nb; k++ {
		img := tensor.FromSlice(batch.Data()[k*imgLen:(k+1)*imgLen], n.Config.InputChannels, n.Config.InputH, n.Config.InputW)
		feat := n.Conv.Forward(img)
		caps := n.Primary.Forward(feat)
		copy(u.Data()[k*numL*n.Config.PrimaryDim:(k+1)*numL*n.Config.PrimaryDim], caps.Data())
	}
	return n.Class.Forward(u, mathOps)
}

// Predictions returns the argmax parent activation per batch element.
func (n *EMNetwork) Predictions(res EMResult) []int {
	nb, nc := res.Act.Dim(0), res.Act.Dim(1)
	out := make([]int, nb)
	for k := 0; k < nb; k++ {
		out[k] = tensor.ArgMax(res.Act.Data()[k*nc : (k+1)*nc])
	}
	return out
}
