//pimcaps:bitexact

package capsnet

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pimcapsnet/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := TinyConfig(4)
	cfg.WithDecoder = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb weights so we aren't just testing seeded init.
	net.Digit.Weights.Data()[0] = 42
	net.Conv.Bias[3] = -1.5
	net.Dec.Layers[1].Bias[7] = 0.25

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	batch := tensor.New(2, 1, 12, 12)
	for i := range batch.Data() {
		batch.Data()[i] = float32(i%13) / 13
	}
	a := net.Forward(batch, ExactMath{})
	b := loaded.Forward(batch, ExactMath{})
	if !a.Capsules.Equal(b.Capsules) {
		t.Fatal("loaded network produces different capsules")
	}
	ra := net.Reconstruct(a, 0, 1)
	rb := loaded.Reconstruct(b, 0, 1)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("loaded decoder differs")
		}
	}
}

func TestSaveLoadWithoutDecoder(t *testing.T) {
	net, _ := New(TinyConfig(2))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dec != nil {
		t.Fatal("decoder appeared from nowhere")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsCorruptedState(t *testing.T) {
	net, _ := New(TinyConfig(2))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil || loaded == nil {
		t.Fatal("sane checkpoint must load")
	}
}

// checkpointBytes serializes net and returns the framed bytes.
func checkpointBytes(t *testing.T, net *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsBitFlip: any single flipped bit in the file fails
// the CRC32 trailer with ErrCorruptCheckpoint — never a silently
// wrong model.
func TestLoadRejectsBitFlip(t *testing.T) {
	net, _ := New(TinyConfig(2))
	valid := checkpointBytes(t, net)
	for _, pos := range []int{0, len(valid) / 3, len(valid) / 2, len(valid) - 5} {
		corrupt := append([]byte(nil), valid...)
		corrupt[pos] ^= 0x10
		_, err := Load(bytes.NewReader(corrupt))
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted", pos)
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("bit flip at byte %d: %v, want ErrCorruptCheckpoint", pos, err)
		}
	}
}

// TestLoadRejectsTruncation: every prefix of a valid checkpoint is
// rejected with the typed error.
func TestLoadRejectsTruncation(t *testing.T) {
	net, _ := New(TinyConfig(2))
	valid := checkpointBytes(t, net)
	for _, n := range []int{0, 4, len(valid) / 2, len(valid) - 1} {
		_, err := Load(bytes.NewReader(valid[:n]))
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncation to %d bytes: %v, want ErrCorruptCheckpoint", n, err)
		}
	}
}

// TestLoadRejectsDecoderBiasMismatch reproduces the pre-fix panic: a
// crafted state with fewer DecB entries than DecW must return an
// error, not index out of range.
func TestLoadRejectsDecoderBiasMismatch(t *testing.T) {
	cfg := TinyConfig(2)
	cfg.WithDecoder = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := netState{
		Config:   net.Config,
		ConvW:    net.Conv.Weights.Data(),
		ConvB:    net.Conv.Bias,
		PrimaryW: net.Primary.Conv.Weights.Data(),
		PrimaryB: net.Primary.Conv.Bias,
		DigitW:   net.Digit.Weights.Data(),
	}
	for _, l := range net.Dec.Layers {
		st.DecW = append(st.DecW, l.Weights.Data())
	}
	st.DecB = append(st.DecB, net.Dec.Layers[0].Bias) // 1 bias for 3 layers
	if _, err := restoreState(st); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("decoder bias mismatch: %v, want ErrCorruptCheckpoint", err)
	}
}

// TestSaveFileDurable: SaveFile round-trips through disk and leaves
// no temp droppings.
func TestSaveFileDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.ckpt")
	net, _ := New(TinyConfig(3))
	net.Digit.Weights.Data()[1] = 7.25
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digit.Weights.Data()[1] != 7.25 {
		t.Fatal("weights did not round-trip")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the checkpoint: %v", len(entries), entries)
	}
}

// TestSaveFileCrashKeepsOldCheckpoint: a crash at ANY stage before
// the rename publishes the new file must leave the old checkpoint
// loadable and bit-identical — the paper-stack's answer to "a crash
// mid-checkpoint corrupting a trained model".
func TestSaveFileCrashKeepsOldCheckpoint(t *testing.T) {
	for _, stage := range []string{"written", "synced"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "net.ckpt")
			oldNet, _ := New(TinyConfig(2))
			oldNet.Digit.Weights.Data()[0] = 1.5
			if err := oldNet.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			oldBytes, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			newNet, _ := New(TinyConfig(2))
			newNet.Digit.Weights.Data()[0] = -9
			checkpointCrashHook = func(s string) {
				if s == stage {
					panic("simulated crash at " + s)
				}
			}
			defer func() { checkpointCrashHook = nil }()
			func() {
				defer func() { recover() }() // the "kill"
				newNet.SaveFile(path)
			}()

			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("old checkpoint gone after crash at %s: %v", stage, err)
			}
			if !bytes.Equal(got, oldBytes) {
				t.Fatalf("checkpoint bytes changed after crash at %s", stage)
			}
			loaded, err := LoadFile(path)
			if err != nil {
				t.Fatalf("old checkpoint unloadable after crash at %s: %v", stage, err)
			}
			if loaded.Digit.Weights.Data()[0] != 1.5 {
				t.Fatal("old weights corrupted")
			}
			// Any stray temp file from the crash must fail Load's
			// verification rather than pose as a model.
			entries, _ := os.ReadDir(dir)
			for _, e := range entries {
				if e.Name() == filepath.Base(path) {
					continue
				}
				if _, err := LoadFile(filepath.Join(dir, e.Name())); err == nil {
					t.Fatalf("stray temp file %s loads as a model", e.Name())
				}
			}
		})
	}
}

// TestSaveFileCrashAfterRename: once the rename happened the NEW
// checkpoint must be the loadable one, even if the process dies
// before the directory fsync.
func TestSaveFileCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.ckpt")
	oldNet, _ := New(TinyConfig(2))
	if err := oldNet.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	newNet, _ := New(TinyConfig(2))
	newNet.Digit.Weights.Data()[0] = -9
	checkpointCrashHook = func(s string) {
		if s == "renamed" {
			panic("simulated crash after rename")
		}
	}
	defer func() { checkpointCrashHook = nil }()
	func() {
		defer func() { recover() }()
		newNet.SaveFile(path)
	}()
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digit.Weights.Data()[0] != -9 {
		t.Fatal("renamed checkpoint does not carry the new weights")
	}
}
