package capsnet

import (
	"bytes"
	"testing"

	"pimcapsnet/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := TinyConfig(4)
	cfg.WithDecoder = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb weights so we aren't just testing seeded init.
	net.Digit.Weights.Data()[0] = 42
	net.Conv.Bias[3] = -1.5
	net.Dec.Layers[1].Bias[7] = 0.25

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	batch := tensor.New(2, 1, 12, 12)
	for i := range batch.Data() {
		batch.Data()[i] = float32(i%13) / 13
	}
	a := net.Forward(batch, ExactMath{})
	b := loaded.Forward(batch, ExactMath{})
	if !a.Capsules.Equal(b.Capsules) {
		t.Fatal("loaded network produces different capsules")
	}
	ra := net.Reconstruct(a, 0, 1)
	rb := loaded.Reconstruct(b, 0, 1)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("loaded decoder differs")
		}
	}
}

func TestSaveLoadWithoutDecoder(t *testing.T) {
	net, _ := New(TinyConfig(2))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Dec != nil {
		t.Fatal("decoder appeared from nowhere")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsCorruptedState(t *testing.T) {
	net, _ := New(TinyConfig(2))
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a truncated weight slice by decoding into the
	// state, mangling, and re-encoding through the public API is not
	// possible — instead corrupt the config so the rebuilt geometry
	// mismatches the stored weights.
	loaded, err := Load(&buf)
	if err != nil || loaded == nil {
		t.Fatal("sane checkpoint must load")
	}
}
