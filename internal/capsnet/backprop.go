package capsnet

import (
	"fmt"

	"pimcapsnet/internal/tensor"
)

// FullTrainer trains every parameter of the network end to end with
// hand-derived backward passes: margin loss (plus optional
// reconstruction loss through the decoder), the squash Jacobian, the
// routing aggregation (coefficients treated as constants of the
// forward pass, the standard stop-gradient approximation), the
// prediction-vector transform, the PrimaryCaps convolution and the
// front-end convolution.
type FullTrainer struct {
	Net *Network
	// LR is the SGD learning rate.
	LR float32
	// NegScale rescales wrong-class margin gradients (see Trainer).
	NegScale float32
	// ReconWeight enables the reconstruction loss when > 0 (the
	// standard CapsNet uses the decoder as a training regularizer;
	// ReconstructionLoss already carries the 0.0005 scale, so 1 is
	// the reference weight). Requires a network with a decoder.
	ReconWeight float32
	// Momentum enables classical momentum SGD when > 0 (velocity
	// v ← μv + g; θ ← θ − LR·v).
	Momentum float32
	// WeightDecay applies L2 regularization to the convolution and
	// capsule transform weights when > 0.
	WeightDecay float32
	// Math supplies routing numerics during training.
	Math RoutingMath

	vel map[*tensor.Tensor][]float32 // per-parameter velocity buffers
}

// NewFullTrainer returns a FullTrainer with exact math.
func NewFullTrainer(net *Network, lr float32) *FullTrainer {
	return &FullTrainer{Net: net, LR: lr, Math: ExactMath{}}
}

// squashBackward maps the output gradient dv through the squash
// Jacobian at pre-activation s: with n = ‖s‖ and v = g(n)·s for
// g(n) = n/(1+n²),
//
//	dL/ds = g·dv + (g'/n)·(s·dv)·s,  g'(n) = (1−n²)/(1+n²)².
//
// ds is accumulated in place (ds += ...).
func squashBackward(ds, dv, s []float32) {
	n2 := tensor.SquaredNorm(s)
	if n2 == 0 {
		return // squash(0) ≡ 0 with zero Jacobian
	}
	n := sqrt32(n2)
	den := 1 + n2
	g := n / den
	gp := (1 - n2) / (den * den)
	dot := tensor.Dot(s, dv)
	coef := gp / n * dot
	for d := range ds {
		ds[d] += g*dv[d] + coef*s[d]
	}
}

// fcBackward backpropagates one FC layer: given the forward input x
// and post-activation output y, it consumes dOut, accumulates dW and
// db into the provided buffers, and returns dX.
func fcBackward(l *FCLayer, x, y, dOut []float32, dW *tensor.Tensor, dB []float32) []float32 {
	dpre := make([]float32, l.Out)
	switch l.Activation {
	case ActReLU:
		for i, v := range dOut {
			if y[i] > 0 {
				dpre[i] = v
			}
		}
	case ActSigmoid:
		for i, v := range dOut {
			dpre[i] = v * y[i] * (1 - y[i])
		}
	default:
		copy(dpre, dOut)
	}
	wd := l.Weights.Data()
	dwd := dW.Data()
	dx := make([]float32, l.In)
	for o := 0; o < l.Out; o++ {
		g := dpre[o]
		dB[o] += g
		if g == 0 {
			continue
		}
		wrow := wd[o*l.In : (o+1)*l.In]
		dwrow := dwd[o*l.In : (o+1)*l.In]
		for i := 0; i < l.In; i++ {
			dwrow[i] += g * x[i]
			dx[i] += g * wrow[i]
		}
	}
	return dx
}

// TrainBatch runs one full forward/backward/update step and returns
// the mean total loss (margin + weighted reconstruction) and the
// pre-update batch accuracy.
func (t *FullTrainer) TrainBatch(batch *tensor.Tensor, labels []int) (loss float32, acc float64) {
	net := t.Net
	cfg := net.Config
	nb := batch.Dim(0)
	if len(labels) != nb {
		panic(fmt.Sprintf("capsnet: %d labels for batch of %d", len(labels), nb))
	}
	if t.ReconWeight > 0 && net.Dec == nil {
		panic("capsnet: ReconWeight > 0 requires a decoder")
	}
	mathOps := t.Math
	if mathOps == nil {
		mathOps = ExactMath{}
	}

	numL := net.NumPrimaryCaps()
	cl, nc, dd := cfg.PrimaryDim, cfg.Classes, cfg.DigitDim
	imgLen := cfg.InputC()
	_ = imgLen

	// ---- forward, retaining intermediates ----
	imgSize := cfg.InputChannels * cfg.InputH * cfg.InputW
	convOuts := make([]*tensor.Tensor, nb) // post-ReLU conv features
	rawCaps := make([]*tensor.Tensor, nb)  // pre-squash primary capsule vectors (numL×cl)
	u := tensor.New(nb, numL, cl)
	parallelFor(nb, func(k int) {
		img := tensor.FromSlice(batch.Data()[k*imgSize:(k+1)*imgSize], cfg.InputChannels, cfg.InputH, cfg.InputW)
		feat := net.Conv.Forward(img)
		convOuts[k] = feat
		raw := tensor.Conv2D(feat, net.Primary.Conv.Weights, net.Primary.Conv.Bias, net.Primary.Conv.Spec)
		caps := regroupPrimary(raw, net.Primary) // numL×cl, pre-squash
		rawCaps[k] = caps
		dst := u.Data()[k*numL*cl : (k+1)*numL*cl]
		for i := 0; i < numL; i++ {
			squashInto(mathOps, dst[i*cl:(i+1)*cl], caps.Data()[i*cl:(i+1)*cl])
		}
	})
	preds := PredictionVectors(u, net.Digit.Weights)
	routing := DynamicRoutingMode(preds, net.Digit.Iterations, mathOps, net.Digit.Mode)
	v := routing.V

	lengths := tensor.New(nb, nc)
	for k := 0; k < nb; k++ {
		for j := 0; j < nc; j++ {
			off := (k*nc + j) * dd
			lengths.Data()[k*nc+j] = tensor.Norm(v.Data()[off : off+dd])
		}
	}
	correct := 0
	for k := 0; k < nb; k++ {
		if tensor.ArgMax(lengths.Data()[k*nc:(k+1)*nc]) == labels[k] {
			correct++
		}
	}
	acc = float64(correct) / float64(nb)

	// ---- gradient buffers ----
	dV := tensor.New(nb, nc, dd)
	dW1 := tensor.New(net.Conv.Weights.Shape()...)
	dB1 := make([]float32, len(net.Conv.Bias))
	dW2 := tensor.New(net.Primary.Conv.Weights.Shape()...)
	dB2 := make([]float32, len(net.Primary.Conv.Bias))
	dWd := tensor.New(net.Digit.Weights.Shape()...)
	var dDecW []*tensor.Tensor
	var dDecB [][]float32
	if t.ReconWeight > 0 {
		for _, l := range net.Dec.Layers {
			dDecW = append(dDecW, tensor.New(l.Weights.Shape()...))
			dDecB = append(dDecB, make([]float32, l.Out))
		}
	}

	// ---- loss heads ----
	for k := 0; k < nb; k++ {
		ls := lengths.Data()[k*nc : (k+1)*nc]
		loss += MarginLoss(ls, labels[k])
		g := MarginLossGrad(ls, labels[k])
		if t.NegScale != 0 && t.NegScale != 1 {
			for j := range g {
				if j != labels[k] {
					g[j] *= t.NegScale
				}
			}
		}
		for j := 0; j < nc; j++ {
			if g[j] == 0 || ls[j] == 0 {
				continue
			}
			off := (k*nc + j) * dd
			scale := g[j] / ls[j]
			for e := 0; e < dd; e++ {
				dV.Data()[off+e] += scale * v.Data()[off+e]
			}
		}

		if t.ReconWeight > 0 {
			// Decoder forward with true-class masking, retaining
			// per-layer activations.
			masked := make([]float32, nc*dd)
			j := labels[k]
			copy(masked[j*dd:(j+1)*dd], v.Data()[(k*nc+j)*dd:(k*nc+j+1)*dd])
			acts := [][]float32{masked}
			x := masked
			for _, l := range net.Dec.Layers {
				x = l.Forward(x)
				acts = append(acts, x)
			}
			target := batch.Data()[k*imgSize : (k+1)*imgSize]
			loss += t.ReconWeight * ReconstructionLoss(x, target)
			// dRecon/drecon_i = 2·0.0005·(recon−target).
			dx := make([]float32, len(x))
			for p := range x {
				dx[p] = t.ReconWeight * 0.001 * (x[p] - target[p])
			}
			for li := len(net.Dec.Layers) - 1; li >= 0; li-- {
				dx = fcBackward(net.Dec.Layers[li], acts[li], acts[li+1], dx, dDecW[li], dDecB[li])
			}
			// dx is the masked-capsule gradient: only class j's slice.
			off := (k*nc + j) * dd
			for e := 0; e < dd; e++ {
				dV.Data()[off+e] += dx[j*dd+e]
			}
		}
	}
	loss /= float32(nb)

	// ---- routing backward ----
	// Recompute s_j^k = Σ_i c_ij û_ij, then dS via squash Jacobian,
	// dÛ = c·dS, dW_ij += u ⊗ dÛ, dU = W·dÛ.
	dU := tensor.New(nb, numL, cl)
	cd := routing.C.Data()
	pd := preds.Data()
	wd := net.Digit.Weights.Data()
	dwd := dWd.Data()
	ud := u.Data()
	dud := dU.Data()
	s := make([]float32, dd)
	ds := make([]float32, dd)
	for k := 0; k < nb; k++ {
		for j := 0; j < nc; j++ {
			for e := range s {
				s[e], ds[e] = 0, 0
			}
			for i := 0; i < numL; i++ {
				cij := cd[(k*numL+i)*nc+j]
				if cij == 0 {
					continue
				}
				up := pd[((k*numL+i)*nc+j)*dd : ((k*numL+i)*nc+j+1)*dd]
				for e := 0; e < dd; e++ {
					s[e] += cij * up[e]
				}
			}
			dv := dV.Data()[(k*nc+j)*dd : (k*nc+j+1)*dd]
			squashBackward(ds, dv, s)
			zero := true
			for _, x := range ds {
				if x != 0 {
					zero = false
					break
				}
			}
			if zero {
				continue
			}
			for i := 0; i < numL; i++ {
				cij := cd[(k*numL+i)*nc+j]
				if cij == 0 {
					continue
				}
				uv := ud[(k*numL+i)*cl : (k*numL+i+1)*cl]
				duv := dud[(k*numL+i)*cl : (k*numL+i+1)*cl]
				wbase := (i*nc + j) * cl * dd
				for d := 0; d < cl; d++ {
					wrow := wd[wbase+d*dd : wbase+(d+1)*dd]
					dwrow := dwd[wbase+d*dd : wbase+(d+1)*dd]
					var du float32
					uvd := uv[d]
					for e := 0; e < dd; e++ {
						gu := cij * ds[e]
						dwrow[e] += gu * uvd
						du += gu * wrow[e]
					}
					duv[d] += du
				}
			}
		}
	}

	// ---- primary caps + conv backward (per sample, worker-local
	// gradient buffers merged deterministically in worker order) ----
	workers := maxWorkers(nb)
	w1bufs := make([]*tensor.Tensor, workers)
	b1bufs := make([][]float32, workers)
	w2bufs := make([]*tensor.Tensor, workers)
	b2bufs := make([][]float32, workers)
	for w := 0; w < workers; w++ {
		w1bufs[w] = tensor.New(net.Conv.Weights.Shape()...)
		b1bufs[w] = make([]float32, len(net.Conv.Bias))
		w2bufs[w] = tensor.New(net.Primary.Conv.Weights.Shape()...)
		b2bufs[w] = make([]float32, len(net.Primary.Conv.Bias))
	}
	used := parallelChunks(nb, workers, func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			// Through the primary squash.
			dRawCaps := tensor.New(numL, cl)
			for i := 0; i < numL; i++ {
				squashBackward(
					dRawCaps.Data()[i*cl:(i+1)*cl],
					dud[(k*numL+i)*cl:(k*numL+i+1)*cl],
					rawCaps[k].Data()[i*cl:(i+1)*cl])
			}
			// Scatter back to the primary conv output layout.
			spec := net.Primary.Conv.Spec
			oh, ow := spec.OutSize(convOuts[k].Dim(1), convOuts[k].Dim(2))
			dRaw := scatterPrimary(dRawCaps, net.Primary, oh, ow)
			g2 := tensor.Conv2DBackward(convOuts[k], net.Primary.Conv.Weights, dRaw, spec, true)
			accumulate(w2bufs[w].Data(), g2.DWeights.Data())
			accumulateSlice(b2bufs[w], g2.DBias)
			// ReLU backward on the conv1 features.
			dFeat := g2.DInput
			fd := convOuts[k].Data()
			for p, fv := range fd {
				if fv <= 0 {
					dFeat.Data()[p] = 0
				}
			}
			img := tensor.FromSlice(batch.Data()[k*imgSize:(k+1)*imgSize], cfg.InputChannels, cfg.InputH, cfg.InputW)
			g1 := tensor.Conv2DBackward(img, net.Conv.Weights, dFeat, net.Conv.Spec, false)
			accumulate(w1bufs[w].Data(), g1.DWeights.Data())
			accumulateSlice(b1bufs[w], g1.DBias)
		}
	})
	for w := 0; w < used; w++ {
		accumulate(dW1.Data(), w1bufs[w].Data())
		accumulateSlice(dB1, b1bufs[w])
		accumulate(dW2.Data(), w2bufs[w].Data())
		accumulateSlice(dB2, b2bufs[w])
	}

	// ---- SGD update (optionally with momentum and weight decay) ----
	step := t.LR / float32(nb)
	t.update(net.Conv.Weights, dW1.Data(), step, true)
	applyUpdateSlice(net.Conv.Bias, dB1, step)
	t.update(net.Primary.Conv.Weights, dW2.Data(), step, true)
	applyUpdateSlice(net.Primary.Conv.Bias, dB2, step)
	t.update(net.Digit.Weights, dWd.Data(), step, true)
	if t.ReconWeight > 0 {
		for li, l := range net.Dec.Layers {
			t.update(l.Weights, dDecW[li].Data(), step, false)
			applyUpdateSlice(l.Bias, dDecB[li], step)
		}
	}
	return loss, acc
}

// update applies one parameter update with the trainer's optimizer
// settings; decay selects whether weight decay applies (biases and
// decoder weights are exempt, the usual convention).
func (t *FullTrainer) update(param *tensor.Tensor, grad []float32, step float32, decay bool) {
	w := param.Data()
	if decay && t.WeightDecay > 0 {
		for i := range grad {
			grad[i] += t.WeightDecay * w[i]
		}
	}
	if t.Momentum > 0 {
		if t.vel == nil {
			t.vel = make(map[*tensor.Tensor][]float32)
		}
		v, ok := t.vel[param]
		if !ok {
			v = make([]float32, len(w))
			t.vel[param] = v
		}
		for i := range w {
			v[i] = t.Momentum*v[i] + grad[i]
			w[i] -= step * v[i]
		}
		return
	}
	applyUpdate(w, grad, step)
}

// regroupPrimary reshapes a primary conv output (ch·dim × oh × ow)
// into capsule vectors (numL × dim) without squashing.
func regroupPrimary(raw *tensor.Tensor, l *PrimaryCapsLayer) *tensor.Tensor {
	oh, ow := raw.Dim(1), raw.Dim(2)
	n := l.Channels * oh * ow
	out := tensor.New(n, l.CapsDim)
	od, rd := out.Data(), raw.Data()
	idx := 0
	for c := 0; c < l.Channels; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for d := 0; d < l.CapsDim; d++ {
					od[idx*l.CapsDim+d] = rd[(c*l.CapsDim+d)*oh*ow+y*ow+x]
				}
				idx++
			}
		}
	}
	return out
}

// scatterPrimary is the adjoint of regroupPrimary: capsule-vector
// gradients back to the conv output layout.
func scatterPrimary(dCaps *tensor.Tensor, l *PrimaryCapsLayer, oh, ow int) *tensor.Tensor {
	out := tensor.New(l.Channels*l.CapsDim, oh, ow)
	od, dc := out.Data(), dCaps.Data()
	idx := 0
	for c := 0; c < l.Channels; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for d := 0; d < l.CapsDim; d++ {
					od[(c*l.CapsDim+d)*oh*ow+y*ow+x] = dc[idx*l.CapsDim+d]
				}
				idx++
			}
		}
	}
	return out
}

func accumulate(dst, src []float32) {
	for i, v := range src {
		dst[i] += v
	}
}

func accumulateSlice(dst, src []float32) { accumulate(dst, src) }

func applyUpdate(w, dw []float32, step float32) {
	for i, g := range dw {
		w[i] -= step * g
	}
}

func applyUpdateSlice(w, dw []float32, step float32) { applyUpdate(w, dw, step) }

// InputC is a small helper returning the flattened image length.
func (c Config) InputC() int { return c.InputChannels * c.InputH * c.InputW }
