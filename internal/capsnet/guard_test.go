package capsnet

import (
	"math"
	"testing"

	"pimcapsnet/internal/tensor"
)

// nanExpMath corrupts only the softmax exponential (evaluated on the
// routing dispatcher goroutine, so no cross-worker state): every Exp
// returns NaN, poisoning the coefficients and therefore every output
// capsule — the worst case the approximate PE path can degrade to.
type nanExpMath struct{ ExactMath }

func (nanExpMath) Exp(float32) float32 { return float32(math.NaN()) }

func testBatch(t *testing.T, n *Network, nb int) *tensor.Tensor {
	t.Helper()
	batch := tensor.New(nb, n.Config.InputChannels, n.Config.InputH, n.Config.InputW)
	for i := range batch.Data() {
		batch.Data()[i] = float32(i%17) / 17
	}
	return batch
}

// TestFiniteGuardFallsBackToExact: when the approximate math path
// produces non-finite capsules, every affected sample is re-routed
// with exact math and ends up bit-identical to a fully exact forward
// pass — NaN never reaches the class probabilities.
func TestFiniteGuardFallsBackToExact(t *testing.T) {
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	batch := testBatch(t, net, 3)

	exact := net.Forward(batch, ExactMath{})
	if len(exact.ExactFallbacks) != 0 || len(exact.NonFinite) != 0 {
		t.Fatalf("exact forward degraded: fallbacks %v, non-finite %v", exact.ExactFallbacks, exact.NonFinite)
	}

	before := net.RoutingFallbacks()
	got := net.Forward(batch, nanExpMath{})
	if len(got.ExactFallbacks) != 3 {
		t.Fatalf("fallbacks %v, want all 3 samples", got.ExactFallbacks)
	}
	if len(got.NonFinite) != 0 {
		t.Fatalf("samples %v still non-finite after exact fallback", got.NonFinite)
	}
	if net.RoutingFallbacks() != before+3 {
		t.Fatalf("fallback counter %d, want %d", net.RoutingFallbacks(), before+3)
	}
	for i, v := range got.Lengths.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("class probability %d is %v after fallback", i, v)
		}
	}
	if !got.Capsules.Equal(exact.Capsules) {
		t.Fatal("fallback capsules differ from a fully exact forward pass")
	}
}

// TestFiniteGuardReportsUnrecoverable: when the routing inputs
// themselves are corrupt (injected NaN), exact math cannot recover
// and the sample must be reported in NonFinite — per sample, leaving
// clean batchmates untouched.
func TestFiniteGuardReportsUnrecoverable(t *testing.T) {
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	batch := testBatch(t, net, 3)
	perSample := net.NumPrimaryCaps() * net.Config.PrimaryDim
	net.RoutingInputHook = func(data []float32) {
		// Poison only sample 1's routing inputs.
		data[perSample+2] = float32(math.NaN())
	}
	got := net.Forward(batch, NewPEMath())
	if len(got.NonFinite) != 1 || got.NonFinite[0] != 1 {
		t.Fatalf("non-finite samples %v, want [1]", got.NonFinite)
	}
	nc := net.Config.Classes
	for _, k := range []int{0, 2} {
		for j := 0; j < nc; j++ {
			v := got.Lengths.Data()[k*nc+j]
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("clean sample %d has non-finite probability %v", k, v)
			}
		}
	}
}

// TestFiniteGuardZeroOverheadPath: with exact math and no hook, a
// forward pass reports no degradation and the hook field stays nil —
// the disabled-injector configuration is the production one.
func TestFiniteGuardZeroOverheadPath(t *testing.T) {
	net, err := New(TinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if net.RoutingInputHook != nil {
		t.Fatal("hook armed by default")
	}
	out := net.Forward(testBatch(t, net, 2), ExactMath{})
	if out.ExactFallbacks != nil || out.NonFinite != nil {
		t.Fatalf("degradation on the clean path: %v / %v", out.ExactFallbacks, out.NonFinite)
	}
	if net.RoutingFallbacks() != 0 {
		t.Fatalf("fallback counter %d on the clean path", net.RoutingFallbacks())
	}
}
