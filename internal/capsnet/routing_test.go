//pimcaps:bitexact

package capsnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pimcapsnet/internal/tensor"
)

func randPreds(rng *rand.Rand, nb, nl, nh, ch int) *tensor.Tensor {
	p := tensor.New(nb, nl, nh, ch)
	for i := range p.Data() {
		p.Data()[i] = float32(rng.NormFloat64()) * 0.1
	}
	return p
}

func TestDynamicRoutingShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	preds := randPreds(rng, 2, 6, 3, 4)
	res := DynamicRouting(preds, 3, ExactMath{})
	if sh := res.V.Shape(); sh[0] != 2 || sh[1] != 3 || sh[2] != 4 {
		t.Fatalf("V shape %v", sh)
	}
	if sh := res.C.Shape(); sh[0] != 2 || sh[1] != 6 || sh[2] != 3 {
		t.Fatalf("C shape %v", sh)
	}
}

func TestDynamicRoutingCoefficientsAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	preds := randPreds(rng, 3, 8, 5, 4)
	res := DynamicRouting(preds, 3, ExactMath{})
	nl, nh := 8, 5
	for k := 0; k < 3; k++ {
		for i := 0; i < nl; i++ {
			var sum float64
			for j := 0; j < nh; j++ {
				v := res.C.At(k, i, j)
				if v < 0 || v > 1 {
					t.Fatalf("c[%d][%d][%d] = %v outside [0,1]", k, i, j, v)
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				t.Fatalf("row %d/%d sums to %v", k, i, sum)
			}
		}
	}
}

func TestDynamicRoutingOutputNormsBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		preds := randPreds(rng, 1, 5, 3, 4)
		res := DynamicRouting(preds, 2, ExactMath{})
		for j := 0; j < 3; j++ {
			if tensor.Norm(res.V.Data()[j*4:(j+1)*4]) > 1.0000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicRoutingFirstIterationUniform(t *testing.T) {
	// With one iteration, b stays zero so every c_ij = 1/H, making
	// v_j = squash(mean prediction · H/H). Verify c is uniform.
	rng := rand.New(rand.NewSource(3))
	preds := randPreds(rng, 1, 4, 2, 3)
	res := DynamicRouting(preds, 1, ExactMath{})
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(float64(res.C.At(0, i, j))-0.5) > 1e-6 {
				t.Fatalf("c[%d][%d] = %v, want 0.5", i, j, res.C.At(0, i, j))
			}
		}
	}
}

func TestDynamicRoutingConvergesToAgreement(t *testing.T) {
	// Construct predictions where all L capsules agree on H capsule 0
	// and emit noise for H capsule 1. Routing must shift coefficients
	// toward capsule 0 and give it the longer output vector.
	nb, nl, nh, ch := 1, 6, 2, 4
	preds := tensor.New(nb, nl, nh, ch)
	rng := rand.New(rand.NewSource(4))
	target := []float32{0.8, -0.4, 0.3, 0.6}
	for i := 0; i < nl; i++ {
		for d := 0; d < ch; d++ {
			preds.Set(target[d]+float32(rng.NormFloat64())*0.02, 0, i, 0, d)
			preds.Set(float32(rng.NormFloat64())*0.5, 0, i, 1, d)
		}
	}
	res := DynamicRouting(preds, 3, ExactMath{})
	n0 := tensor.Norm(res.V.Data()[0:ch])
	n1 := tensor.Norm(res.V.Data()[ch : 2*ch])
	if n0 <= n1 {
		t.Fatalf("agreed capsule norm %v not larger than noise capsule %v", n0, n1)
	}
	// Coefficients toward capsule 0 must exceed the uniform 0.5.
	for i := 0; i < nl; i++ {
		if res.C.At(0, i, 0) <= 0.5 {
			t.Fatalf("c[%d][0] = %v did not grow above uniform", i, res.C.At(0, i, 0))
		}
	}
}

func TestDynamicRoutingMoreIterationsSharpen(t *testing.T) {
	nb, nl, nh, ch := 1, 6, 2, 4
	preds := tensor.New(nb, nl, nh, ch)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < nl; i++ {
		for d := 0; d < ch; d++ {
			preds.Set(0.5+float32(rng.NormFloat64())*0.02, 0, i, 0, d)
			preds.Set(float32(rng.NormFloat64())*0.3, 0, i, 1, d)
		}
	}
	c2 := DynamicRouting(preds, 2, ExactMath{}).C.At(0, 0, 0)
	c5 := DynamicRouting(preds, 5, ExactMath{}).C.At(0, 0, 0)
	if c5 <= c2 {
		t.Fatalf("coefficient should sharpen with iterations: %v (5 it) vs %v (2 it)", c5, c2)
	}
}

func TestDynamicRoutingBatchConsistency(t *testing.T) {
	// Duplicated batch elements must produce identical outputs in
	// both routing modes.
	rng := rand.New(rand.NewSource(6))
	p1 := randPreds(rng, 1, 5, 3, 4)
	p2 := tensor.New(2, 5, 3, 4)
	copy(p2.Data()[:p1.Len()], p1.Data())
	copy(p2.Data()[p1.Len():], p1.Data())
	for _, mode := range []RoutingMode{RoutePerSample, RouteBatchShared} {
		r2 := DynamicRoutingMode(p2, 3, ExactMath{}, mode)
		half := r2.V.Len() / 2
		for i := 0; i < half; i++ {
			if r2.V.Data()[i] != r2.V.Data()[half+i] {
				t.Fatalf("%v: identical batch elements produced different outputs", mode)
			}
		}
	}
}

func TestPerSampleIndependentOfBatchComposition(t *testing.T) {
	// Per-sample routing of an element must not depend on which other
	// elements share its batch — the property that makes it the right
	// numerics for accuracy experiments.
	rng := rand.New(rand.NewSource(16))
	a := randPreds(rng, 1, 5, 3, 4)
	bOther := randPreds(rng, 1, 5, 3, 4)
	both := tensor.New(2, 5, 3, 4)
	copy(both.Data()[:a.Len()], a.Data())
	copy(both.Data()[a.Len():], bOther.Data())
	alone := DynamicRouting(a, 3, ExactMath{})
	mixed := DynamicRouting(both, 3, ExactMath{})
	for i := 0; i < alone.V.Len(); i++ {
		if alone.V.Data()[i] != mixed.V.Data()[i] {
			t.Fatal("per-sample routing changed with batch composition")
		}
	}
	// Batch-shared routing, by contrast, couples the elements.
	sharedAlone := DynamicRoutingShared(a, 3, ExactMath{})
	sharedMixed := DynamicRoutingShared(both, 3, ExactMath{})
	same := true
	for i := 0; i < sharedAlone.V.Len(); i++ {
		if sharedAlone.V.Data()[i] != sharedMixed.V.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("batch-shared routing unexpectedly independent of batch composition")
	}
}

func TestBatchSharedCoefficientsIdenticalAcrossBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	preds := randPreds(rng, 3, 4, 2, 3)
	r := DynamicRoutingShared(preds, 3, ExactMath{})
	for k := 1; k < 3; k++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 2; j++ {
				if r.C.At(k, i, j) != r.C.At(0, i, j) {
					t.Fatal("shared coefficients differ across batch")
				}
			}
		}
	}
}

func TestRoutingModeString(t *testing.T) {
	if RoutePerSample.String() != "per-sample" || RouteBatchShared.String() != "batch-shared" {
		t.Fatal("routing mode names wrong")
	}
}

func TestDynamicRoutingPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank-3 input")
		}
	}()
	DynamicRouting(tensor.New(2, 3, 4), 3, ExactMath{})
}

func TestDynamicRoutingPanicsOnZeroIterations(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 iterations")
		}
	}()
	DynamicRouting(tensor.New(1, 2, 2, 2), 0, ExactMath{})
}

func TestPredictionVectorsKnown(t *testing.T) {
	// 1 batch, 1 L capsule (dim 2), 1 H capsule (dim 2): û = u×W.
	u := tensor.FromSlice([]float32{1, 2}, 1, 1, 2)
	w := tensor.FromSlice([]float32{
		1, 0, // W[0][0] row d=0
		0, 1, // row d=1
	}, 1, 1, 2, 2)
	preds := PredictionVectors(u, w)
	if preds.At(0, 0, 0, 0) != 1 || preds.At(0, 0, 0, 1) != 2 {
		t.Fatalf("identity transform gave %v", preds.Data())
	}
}

func TestPredictionVectorsMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nb, nl, nh, cl, ch := 2, 3, 4, 5, 6
	u := tensor.New(nb, nl, cl)
	for i := range u.Data() {
		u.Data()[i] = float32(rng.NormFloat64())
	}
	w := tensor.New(nl, nh, cl, ch)
	for i := range w.Data() {
		w.Data()[i] = float32(rng.NormFloat64())
	}
	preds := PredictionVectors(u, w)
	for k := 0; k < nb; k++ {
		for i := 0; i < nl; i++ {
			for j := 0; j < nh; j++ {
				// Reference: u_i (1×cl) × W_ij (cl×ch).
				wm := tensor.FromSlice(w.Data()[(i*nh+j)*cl*ch:(i*nh+j+1)*cl*ch], cl, ch)
				uv := tensor.FromSlice(u.Data()[(k*nl+i)*cl:(k*nl+i+1)*cl], 1, cl)
				want := tensor.MatMul(uv, wm)
				for e := 0; e < ch; e++ {
					got := preds.At(k, i, j, e)
					if math.Abs(float64(got-want.Data()[e])) > 1e-5 {
						t.Fatalf("pred[%d,%d,%d,%d] = %v, want %v", k, i, j, e, got, want.Data()[e])
					}
				}
			}
		}
	}
}

func TestPredictionVectorsShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched shapes")
		}
	}()
	PredictionVectors(tensor.New(1, 2, 3), tensor.New(9, 4, 3, 5))
}

func TestExactVsPEMathRoutingClose(t *testing.T) {
	// PE approximations must track exact routing closely — this is
	// the numerical backbone of Table 5.
	rng := rand.New(rand.NewSource(8))
	preds := randPreds(rng, 2, 10, 4, 8)
	exact := DynamicRouting(preds, 3, ExactMath{})
	approx := DynamicRouting(preds, 3, NewPEMath())
	if !approx.V.AllClose(exact.V, 0.08, 0.02) {
		t.Fatal("PE-approximated routing diverged from exact routing")
	}
}

func TestSoftmaxRowsUniformOnZeroLogits(t *testing.T) {
	b := make([]float32, 6)
	c := make([]float32, 6)
	softmaxRows(ExactMath{}, c, b, 2, 3)
	for _, v := range c {
		if math.Abs(float64(v)-1.0/3) > 1e-6 {
			t.Fatalf("uniform softmax gave %v", c)
		}
	}
}

func TestSquashIntoMatchesTensorSquash(t *testing.T) {
	src := []float32{0.3, -0.7, 0.2}
	a := make([]float32, 3)
	b := make([]float32, 3)
	squashInto(ExactMath{}, a, src)
	tensor.Squash(b, src)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-6 {
			t.Fatalf("squashInto %v vs tensor.Squash %v", a, b)
		}
	}
}

func TestSquashIntoZero(t *testing.T) {
	dst := []float32{1, 1}
	squashInto(NewPEMath(), dst, []float32{0, 0})
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatal("squash of zero must be zero under PE math too")
	}
}

func BenchmarkDynamicRoutingSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	preds := randPreds(rng, 4, 64, 10, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DynamicRouting(preds, 3, ExactMath{})
	}
}

func TestRoutingParallelismDeterministic(t *testing.T) {
	// The parallelized routing loops write disjoint per-sample slices,
	// so repeated runs must be bit-identical in both modes.
	rng := rand.New(rand.NewSource(21))
	preds := randPreds(rng, 9, 33, 7, 8)
	for _, mode := range []RoutingMode{RoutePerSample, RouteBatchShared} {
		a := DynamicRoutingMode(preds, 3, ExactMath{}, mode)
		b := DynamicRoutingMode(preds, 3, ExactMath{}, mode)
		if !a.V.Equal(b.V) || !a.C.Equal(b.C) {
			t.Fatalf("%v: routing is not deterministic under parallelism", mode)
		}
	}
}
