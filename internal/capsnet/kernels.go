package capsnet

// Range kernels for the routing procedure's three hot loops (Eq. 1
// prediction vectors, Eq. 2+3 aggregation+squash, Eq. 4 agreement),
// shared by the public DynamicRouting* entry points and the Network's
// scratch-arena forward path. Each kernel is the verbatim loop body of
// the original serial implementation restricted to a contiguous range
// of its shard dimension, and every per-output-element accumulation
// runs in the same order (d, then i or k ascending) regardless of how
// the range is split — which is what keeps results bit-identical to
// the serial loop under any B/H partitioning (see Partition).

// aggregateSamplesRange performs Eq. 2 (s_j ← Σ_i c_ij·û_j|i) and
// Eq. 3 (v_j ← squash(s_j)) for samples [klo, khi). sd must be
// pre-zeroed for those samples. The multiply-accumulate loop ranges
// over up with a capped sp slice: under this function's register
// pressure a plain counted loop spills its induction variable to the
// stack on every iteration, which costs ~45% on the whole kernel.
//
//pimcaps:hotpath
func aggregateSamplesRange(mathOps RoutingMath, pd, cd, sd, vd []float32, nl, nh, ch, klo, khi int) {
	for k := klo; k < khi; k++ {
		base := k * nl * nh * ch
		sbase := k * nh * ch
		crow := cd[k*nl*nh : (k+1)*nl*nh]
		for i := 0; i < nl; i++ {
			pbase := base + i*nh*ch
			for j := 0; j < nh; j++ {
				cij := crow[i*nh+j]
				if cij == 0 {
					continue
				}
				up := pd[pbase+j*ch : pbase+(j+1)*ch]
				sp := sd[sbase+j*ch : sbase+(j+1)*ch : sbase+(j+1)*ch]
				for d, u := range up[:len(sp)] {
					sp[d] += cij * u
				}
			}
		}
		for j := 0; j < nh; j++ {
			off := (k*nh + j) * ch
			squashInto(mathOps, vd[off:off+ch], sd[off:off+ch])
		}
	}
}

// aggregateCapsRange performs the same Eq. 2+3 math for high-level
// capsules [jlo, jhi) across all nb samples: per (k, j) the sum over i
// still ascends, so values are bit-identical to the sample-sharded
// kernel.
//
//pimcaps:hotpath
func aggregateCapsRange(mathOps RoutingMath, pd, cd, sd, vd []float32, nb, nl, nh, ch, jlo, jhi int) {
	for k := 0; k < nb; k++ {
		base := k * nl * nh * ch
		sbase := k * nh * ch
		crow := cd[k*nl*nh : (k+1)*nl*nh]
		for i := 0; i < nl; i++ {
			pbase := base + i*nh*ch
			for j := jlo; j < jhi; j++ {
				cij := crow[i*nh+j]
				if cij == 0 {
					continue
				}
				up := pd[pbase+j*ch : pbase+(j+1)*ch]
				sp := sd[sbase+j*ch : sbase+(j+1)*ch : sbase+(j+1)*ch]
				for d, u := range up[:len(sp)] {
					sp[d] += cij * u
				}
			}
		}
		for j := jlo; j < jhi; j++ {
			off := (k*nh + j) * ch
			squashInto(mathOps, vd[off:off+ch], sd[off:off+ch])
		}
	}
}

// agreementSamplesRange performs Eq. 4 (b_ij ← b_ij + û_j|i·v_j) into
// per-sample logit rows for samples [klo, khi).
//
//pimcaps:hotpath
func agreementSamplesRange(pd, vd, bd []float32, nl, nh, ch, klo, khi int) {
	for k := klo; k < khi; k++ {
		base := k * nl * nh * ch
		vbase := k * nh * ch
		brow := bd[k*nl*nh : (k+1)*nl*nh]
		for i := 0; i < nl; i++ {
			pbase := base + i*nh*ch
			for j := 0; j < nh; j++ {
				up := pd[pbase+j*ch : pbase+(j+1)*ch]
				vp := vd[vbase+j*ch : vbase+(j+1)*ch]
				var dot float32
				for d := 0; d < ch; d++ {
					dot += up[d] * vp[d]
				}
				brow[i*nh+j] += dot
			}
		}
	}
}

// agreementCapsRange performs Eq. 4 into per-sample logit rows for
// high-level capsules [jlo, jhi) across all nb samples. Each (k, i, j)
// entry receives exactly one increment, so the shard split cannot
// change any value.
//
//pimcaps:hotpath
func agreementCapsRange(pd, vd, bd []float32, nb, nl, nh, ch, jlo, jhi int) {
	for k := 0; k < nb; k++ {
		base := k * nl * nh * ch
		vbase := k * nh * ch
		brow := bd[k*nl*nh : (k+1)*nl*nh]
		for i := 0; i < nl; i++ {
			pbase := base + i*nh*ch
			for j := jlo; j < jhi; j++ {
				up := pd[pbase+j*ch : pbase+(j+1)*ch]
				vp := vd[vbase+j*ch : vbase+(j+1)*ch]
				var dot float32
				for d := 0; d < ch; d++ {
					dot += up[d] * vp[d]
				}
				brow[i*nh+j] += dot
			}
		}
	}
}

// agreementSharedRange performs the batch-shared Eq. 4 (Alg. 1's Σ_k
// over the whole input set) for capsules [jlo, jhi): every (i, j)
// logit in the range accumulates its per-sample dots with k ascending,
// exactly the order of the original serial loop, so sharding on H
// preserves bit-identity even though all workers share one logit
// matrix (their (i, j) ranges are disjoint).
//
//pimcaps:hotpath
func agreementSharedRange(pd, vd, sharedB []float32, nb, nl, nh, ch, jlo, jhi int) {
	for k := 0; k < nb; k++ {
		base := k * nl * nh * ch
		vbase := k * nh * ch
		for i := 0; i < nl; i++ {
			pbase := base + i*nh*ch
			for j := jlo; j < jhi; j++ {
				up := pd[pbase+j*ch : pbase+(j+1)*ch]
				vp := vd[vbase+j*ch : vbase+(j+1)*ch]
				var dot float32
				for d := 0; d < ch; d++ {
					dot += up[d] * vp[d]
				}
				sharedB[i*nh+j] += dot
			}
		}
	}
}

// predictionVectorsRange computes Eq. 1 (û_j|i^k = u_i^k × W_ij) for
// low-level capsules [lo, hi). zeroDst zeroes the range's output rows
// first, for destinations that are reused arena buffers; pass false
// when od is freshly allocated (the clear is a measurable memclr at
// MNIST scale, so the fresh-tensor path must not pay it twice). The
// weight row for each (i, j, d) streams across the whole batch (k
// innermost), the W_ij data reuse that makes micro-batched serving
// cheaper per request; per output element the accumulation over d
// ascends, so results are bit-identical to a sample-at-a-time loop.
//
//pimcaps:hotpath
func predictionVectorsRange(ud, wd, od []float32, nb, nl, cl, nh, ch, lo, hi int, zeroDst bool) {
	for i := lo; i < hi; i++ {
		if zeroDst {
			for k := 0; k < nb; k++ {
				clear(od[(k*nl+i)*nh*ch : (k*nl+i+1)*nh*ch])
			}
		}
		wbase := i * nh * cl * ch
		for j := 0; j < nh; j++ {
			wm := wd[wbase+j*cl*ch : wbase+(j+1)*cl*ch]
			for d := 0; d < cl; d++ {
				wrow := wm[d*ch : (d+1)*ch]
				for k := 0; k < nb; k++ {
					uvd := ud[(k*nl+i)*cl+d]
					if uvd == 0 {
						continue
					}
					ov := od[((k*nl+i)*nh+j)*ch : ((k*nl+i)*nh+j+1)*ch]
					for e := 0; e < ch; e++ {
						ov[e] += uvd * wrow[e]
					}
				}
			}
		}
	}
}
