package capsnet

import (
	"math/rand"
	"testing"
)

// serveBenchNet builds the routing-dominated model the serving
// benchmarks use: a light conv front end feeding a large routed
// capsule layer, matching the paper's §1 profile where the routing
// procedure dominates inference time.
func serveBenchNet(b *testing.B) (*Network, [][]float32) {
	b.Helper()
	cfg := Config{
		InputChannels: 1, InputH: 28, InputW: 28,
		ConvChannels: 8, ConvKernel: 5, ConvStride: 1,
		PrimaryChannels: 32, PrimaryDim: 8, PrimaryKernel: 3, PrimaryStride: 2,
		Classes: 10, DigitDim: 16, RoutingIterations: 3,
		Seed: 1,
	}
	net, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	imgs := make([][]float32, 8)
	for i := range imgs {
		imgs[i] = make([]float32, net.ImageLen())
		for j := range imgs[i] {
			imgs[i][j] = float32(rng.Float64())
		}
	}
	return net, imgs
}

// BenchmarkForwardSequential8 runs eight requests one forward at a
// time — the compute profile of a serving path without micro-batching.
func BenchmarkForwardSequential8(b *testing.B) {
	net, imgs := serveBenchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, img := range imgs {
			net.ForwardBatch([][]float32{img}, ExactMath{}).Release()
		}
	}
}

// BenchmarkForwardMicroBatch8 runs the same eight requests as one
// micro-batch: PredictionVectors streams the routing weight tensor
// once per batch instead of once per request, and on multi-core hosts
// parallelFor fans the batch out over GOMAXPROCS.
func BenchmarkForwardMicroBatch8(b *testing.B) {
	net, imgs := serveBenchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(imgs, ExactMath{}).Release()
	}
}
