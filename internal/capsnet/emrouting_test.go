package capsnet

import (
	"math"
	"math/rand"
	"testing"

	"pimcapsnet/internal/tensor"
)

func emFixture(rng *rand.Rand, nb, nl, nh, ch int) (*tensor.Tensor, *tensor.Tensor) {
	preds := tensor.New(nb, nl, nh, ch)
	for i := range preds.Data() {
		preds.Data()[i] = float32(rng.NormFloat64()) * 0.2
	}
	act := tensor.New(nb, nl)
	for i := range act.Data() {
		act.Data()[i] = 0.5 + rng.Float32()*0.5
	}
	return preds, act
}

func TestEMRoutingShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	preds, act := emFixture(rng, 2, 6, 3, 4)
	res := EMRouting(preds, act, DefaultEMConfig(), ExactMath{})
	if sh := res.Pose.Shape(); sh[0] != 2 || sh[1] != 3 || sh[2] != 4 {
		t.Fatalf("pose shape %v", sh)
	}
	if sh := res.Act.Shape(); sh[0] != 2 || sh[1] != 3 {
		t.Fatalf("act shape %v", sh)
	}
	if sh := res.R.Shape(); sh[0] != 2 || sh[1] != 6 || sh[2] != 3 {
		t.Fatalf("R shape %v", sh)
	}
}

func TestEMRoutingResponsibilitiesAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	preds, act := emFixture(rng, 1, 8, 4, 4)
	res := EMRouting(preds, act, DefaultEMConfig(), ExactMath{})
	for i := 0; i < 8; i++ {
		var sum float64
		for j := 0; j < 4; j++ {
			v := res.R.At(0, i, j)
			if v < -1e-6 || v > 1+1e-6 {
				t.Fatalf("r[%d][%d] = %v outside [0,1]", i, j, v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("responsibilities for capsule %d sum to %v", i, sum)
		}
	}
}

func TestEMRoutingActivationsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	preds, act := emFixture(rng, 2, 10, 5, 4)
	res := EMRouting(preds, act, DefaultEMConfig(), ExactMath{})
	for i, a := range res.Act.Data() {
		if a < 0 || a > 1 {
			t.Fatalf("activation %d = %v outside [0,1]", i, a)
		}
	}
}

func TestEMRoutingFindsCluster(t *testing.T) {
	// All children vote tightly for parent 0's pose but scatter on
	// parent 1 — parent 0 must end with the higher activation.
	nb, nl, nh, ch := 1, 10, 2, 4
	preds := tensor.New(nb, nl, nh, ch)
	rng := rand.New(rand.NewSource(4))
	target := []float32{0.5, -0.3, 0.8, 0.1}
	for i := 0; i < nl; i++ {
		for d := 0; d < ch; d++ {
			preds.Set(target[d]+float32(rng.NormFloat64())*0.01, 0, i, 0, d)
			preds.Set(float32(rng.NormFloat64())*1.5, 0, i, 1, d)
		}
	}
	act := tensor.New(nb, nl)
	act.Fill(1)
	res := EMRouting(preds, act, DefaultEMConfig(), ExactMath{})
	if res.Act.At(0, 0) <= res.Act.At(0, 1) {
		t.Fatalf("tight cluster activation %v not above scattered %v", res.Act.At(0, 0), res.Act.At(0, 1))
	}
	// Recovered pose must be near the consensus vote.
	for d := 0; d < ch; d++ {
		if math.Abs(float64(res.Pose.At(0, 0, d)-target[d])) > 0.05 {
			t.Fatalf("pose dim %d = %v, want ≈ %v", d, res.Pose.At(0, 0, d), target[d])
		}
	}
}

func TestEMRoutingZeroActivationsHandled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	preds, _ := emFixture(rng, 1, 4, 2, 3)
	act := tensor.New(1, 4) // all-zero child activations
	res := EMRouting(preds, act, DefaultEMConfig(), ExactMath{})
	for _, a := range res.Act.Data() {
		if a != 0 {
			t.Fatalf("dead children produced activation %v", a)
		}
	}
}

func TestEMRoutingPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on act/votes mismatch")
		}
	}()
	EMRouting(tensor.New(1, 4, 2, 3), tensor.New(1, 5), DefaultEMConfig(), ExactMath{})
}

func TestEMRoutingPEMathClose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	preds, act := emFixture(rng, 1, 8, 3, 4)
	exact := EMRouting(preds, act, DefaultEMConfig(), ExactMath{})
	approx := EMRouting(preds, act, DefaultEMConfig(), NewPEMath())
	if !approx.Pose.AllClose(exact.Pose, 0.1, 0.05) {
		t.Fatal("PE math EM poses diverged from exact")
	}
}
