package capsnet

import (
	"fmt"
	"runtime"

	"pimcapsnet/internal/tensor"
)

// RoutingMode selects how the agreement logits b_ij are scoped.
type RoutingMode int

const (
	// RoutePerSample keeps independent routing coefficients per batch
	// element — the original dynamic routing of Sabour et al., and
	// the mode the accuracy experiments use.
	RoutePerSample RoutingMode = iota
	// RouteBatchShared aggregates the agreement over the whole batch
	// (Alg. 1 / Eq. 4 of the PIM-CapsNet paper, which batches input
	// sets "to avoid the local optimal solution of the routing
	// coefficients"). This is the formulation whose B-dimension
	// aggregation the in-memory design distributes.
	RouteBatchShared
)

// String implements fmt.Stringer.
func (m RoutingMode) String() string {
	switch m {
	case RoutePerSample:
		return "per-sample"
	case RouteBatchShared:
		return "batch-shared"
	}
	return fmt.Sprintf("RoutingMode(%d)", int(m))
}

// RoutingResult carries the outputs of a routing-procedure run: the
// high-level capsules v (shape B×H×CH) and the final routing
// coefficients c (shape B×L×H; under RouteBatchShared every batch
// slice holds the same shared coefficients).
type RoutingResult struct {
	V *tensor.Tensor // B×H×CH high-level capsules (Eq. 3 outputs)
	C *tensor.Tensor // B×L×H routing coefficients after the last iteration
	B *tensor.Tensor // B×L×H accumulated agreement logits
}

// DynamicRouting executes the dynamic routing procedure on
// precomputed prediction vectors û of shape B×L×H×CH for the given
// number of iterations, using mathOps for the special functions, with
// per-sample coefficients (Sabour et al.).
func DynamicRouting(preds *tensor.Tensor, iterations int, mathOps RoutingMath) RoutingResult {
	return DynamicRoutingMode(preds, iterations, mathOps, RoutePerSample)
}

// DynamicRoutingShared executes Algorithm 1 exactly as the PIM-CapsNet
// paper states it, with the agreement of Eq. 4 accumulated over all
// input sets k.
func DynamicRoutingShared(preds *tensor.Tensor, iterations int, mathOps RoutingMath) RoutingResult {
	return DynamicRoutingMode(preds, iterations, mathOps, RouteBatchShared)
}

// DynamicRoutingMode is the general entry point. Per iteration it
// performs, exactly as the paper's Fig. 3 flow:
//
//	c_ij ← softmax_j(b_ij)                 (Eq. 5, step 6)
//	s_j^k ← Σ_i û_j|i^k · c_ij             (Eq. 2, step 2)
//	v_j^k ← squash(s_j^k)                  (Eq. 3, step 3)
//	b_ij ← Σ_k v_j^k · û_j|i^k + b_ij      (Eq. 4, steps 4–5)
//
// where the Σ_k of Eq. 4 spans the batch under RouteBatchShared and a
// single sample under RoutePerSample. The agreement update is skipped
// after the final iteration (it would only feed a next iteration that
// never runs), matching reference implementations.
func DynamicRoutingMode(preds *tensor.Tensor, iterations int, mathOps RoutingMath, mode RoutingMode) RoutingResult {
	return DynamicRoutingTimed(preds, iterations, mathOps, mode, nil)
}

// DynamicRoutingTimed is DynamicRoutingMode with per-stage
// observation: each iteration is bracketed as StageRoutingIteration
// (with its index) and its softmax, aggregate+squash, and agreement
// phases reported as nested sub-stages — the production counterpart
// of the per-phase timelines the HMC co-simulator emits. A nil timer
// is the untimed fast path; results are identical either way.
func DynamicRoutingTimed(preds *tensor.Tensor, iterations int, mathOps RoutingMath, mode RoutingMode, timer StageTimer) RoutingResult {
	if preds.Rank() != 4 {
		panic(fmt.Sprintf("capsnet: DynamicRouting wants B×L×H×CH predictions, got %v", preds.Shape()))
	}
	if iterations < 1 {
		panic("capsnet: DynamicRouting needs at least one iteration")
	}
	nb, nl, nh, ch := preds.Dim(0), preds.Dim(1), preds.Dim(2), preds.Dim(3)
	b := tensor.New(nb, nl, nh)
	c := tensor.New(nb, nl, nh)
	v := tensor.New(nb, nh, ch)
	s := tensor.New(nb, nh, ch)
	pd := preds.Data()
	bd, cd, vd, sd := b.Data(), c.Data(), v.Data(), s.Data()

	// sharedB aliases sample 0's logits when coefficients are shared.
	sharedB := bd[:nl*nh]

	// Pick the shard dimension once per routing run with the paper's
	// execution-score model and surface it as a zero-duration marker
	// stage (iteration = the chosen Partition value) so stage traces
	// record which way the workload was split.
	dim := ChoosePartition(PartitionAuto, nb, nl, nh, ch, runtime.GOMAXPROCS(0))
	endStage(beginStage(timer, StageRoutingPartition, int(dim)))

	for it := 0; it < iterations; it++ {
		iterEnd := beginStage(timer, StageRoutingIteration, it)

		// Step 4/6: routing coefficients from agreement logits.
		end := beginStage(timer, StageRoutingSoftmax, it)
		if mode == RouteBatchShared {
			softmaxRows(mathOps, cd[:nl*nh], sharedB, nl, nh)
			for k := 1; k < nb; k++ {
				copy(cd[k*nl*nh:(k+1)*nl*nh], cd[:nl*nh])
			}
		} else {
			for k := 0; k < nb; k++ {
				softmaxRows(mathOps, cd[k*nl*nh:(k+1)*nl*nh], bd[k*nl*nh:(k+1)*nl*nh], nl, nh)
			}
		}
		endStage(end)

		// Step 5 (Eq. 2) + Step 6 (Eq. 3): weighted aggregation over L
		// capsules and squash, sharded contiguously on the chosen
		// dimension (workers write disjoint s/v regions and every
		// accumulation order is unchanged, so results are identical to
		// the serial loop — see kernels.go).
		end = beginStage(timer, StageRoutingAggregate, it)
		clear(sd)
		if dim == PartitionB {
			parallelChunks(nb, maxWorkers(nb), func(_, lo, hi int) {
				aggregateSamplesRange(mathOps, pd, cd, sd, vd, nl, nh, ch, lo, hi)
			})
		} else {
			parallelChunks(nh, maxWorkers(nh), func(_, lo, hi int) {
				aggregateCapsRange(mathOps, pd, cd, sd, vd, nb, nl, nh, ch, lo, hi)
			})
		}
		endStage(end)

		if it == iterations-1 {
			endStage(iterEnd)
			break
		}

		// Step 7 (Eq. 4): agreement accumulation. Per-sample mode
		// shards either dimension freely (disjoint logit entries); the
		// paper's batch-shared Σ_k accumulates into one matrix, which
		// B-sharding would reorder, so it runs serial under PartitionB
		// and shards the disjoint (i, j) entries under PartitionH with
		// k ascending per entry — bit-identical either way.
		end = beginStage(timer, StageRoutingAgreement, it)
		if mode == RouteBatchShared {
			if dim == PartitionB {
				agreementSharedRange(pd, vd, sharedB, nb, nl, nh, ch, 0, nh)
			} else {
				parallelChunks(nh, maxWorkers(nh), func(_, lo, hi int) {
					agreementSharedRange(pd, vd, sharedB, nb, nl, nh, ch, lo, hi)
				})
			}
		} else if dim == PartitionB {
			parallelChunks(nb, maxWorkers(nb), func(_, lo, hi int) {
				agreementSamplesRange(pd, vd, bd, nl, nh, ch, lo, hi)
			})
		} else {
			parallelChunks(nh, maxWorkers(nh), func(_, lo, hi int) {
				agreementCapsRange(pd, vd, bd, nb, nl, nh, ch, lo, hi)
			})
		}
		endStage(end)
		endStage(iterEnd)
	}
	if mode == RouteBatchShared {
		for k := 1; k < nb; k++ {
			copy(bd[k*nl*nh:(k+1)*nl*nh], sharedB)
		}
	}
	return RoutingResult{V: v, C: c, B: b}
}

// PredictionVectors computes Eq. 1 for a batch: û_j|i^k = u_i^k × W_ij,
// where u has shape B×L×CL and w has shape L×H×CL×CH. The result has
// shape B×L×H×CH.
func PredictionVectors(u, w *tensor.Tensor) *tensor.Tensor {
	if u.Rank() != 3 {
		panic(fmt.Sprintf("capsnet: PredictionVectors wants B×L×CL input, got %v", u.Shape()))
	}
	if w.Rank() != 4 {
		panic(fmt.Sprintf("capsnet: PredictionVectors wants L×H×CL×CH weights, got %v", w.Shape()))
	}
	nb, nl, cl := u.Dim(0), u.Dim(1), u.Dim(2)
	if w.Dim(0) != nl || w.Dim(2) != cl {
		panic(fmt.Sprintf("capsnet: weight shape %v incompatible with input %v", w.Shape(), u.Shape()))
	}
	nh, ch := w.Dim(1), w.Dim(3)
	out := tensor.New(nb, nl, nh, ch)
	ud, wd, od := u.Data(), w.Data(), out.Data()
	// Shard contiguously over the L capsules and keep the batch loop
	// innermost: each weight row is then streamed once per batch
	// instead of once per sample, which is the data reuse that makes
	// micro-batched serving cheaper per request (the paper's W_ij
	// reuse across the input set, the L-dimension row of Table 2). Per
	// sample the accumulation order over d is unchanged, so results
	// stay bit-identical to the sample-at-a-time loop, and each (k, i)
	// output row is written by exactly one worker.
	parallelChunks(nl, maxWorkers(nl), func(_, lo, hi int) {
		predictionVectorsRange(ud, wd, od, nb, nl, cl, nh, ch, lo, hi, false)
	})
	return out
}
