//go:build race

package capsnet

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count tests skip under it (instrumentation allocates).
const raceEnabled = true
