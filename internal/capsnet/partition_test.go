package capsnet

import "testing"

func TestPartitionString(t *testing.T) {
	cases := map[Partition]string{
		PartitionAuto:  "auto",
		PartitionB:     "batch",
		PartitionH:     "hcaps",
		Partition(999): "Partition(999)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Partition(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestChoosePartitionForced(t *testing.T) {
	// Explicit settings pass through untouched, whatever the shape.
	if got := ChoosePartition(PartitionB, 1, 1152, 10, 16, 8); got != PartitionB {
		t.Fatalf("forced B resolved to %v", got)
	}
	if got := ChoosePartition(PartitionH, 64, 1152, 10, 16, 8); got != PartitionH {
		t.Fatalf("forced H resolved to %v", got)
	}
}

func TestChoosePartitionDegenerate(t *testing.T) {
	// A single worker or an empty shape has nothing to shard; B is the
	// neutral answer (the serial loop).
	if got := ChoosePartition(PartitionAuto, 64, 1152, 10, 16, 1); got != PartitionB {
		t.Fatalf("1 worker: %v", got)
	}
	if got := ChoosePartition(PartitionAuto, 0, 1152, 10, 16, 8); got != PartitionB {
		t.Fatalf("nb=0: %v", got)
	}
	if got := ChoosePartition(PartitionAuto, 4, 1152, 0, 16, 8); got != PartitionB {
		t.Fatalf("nh=0: %v", got)
	}
}

func TestChoosePartitionCostModel(t *testing.T) {
	// The execution score is the slowest worker's MAC load
	// (ceil(N/W)·rest, Eqs. 6–12 shape) plus a movement term that
	// charges H-sharding 4/3 for its strided accesses.
	cases := []struct {
		name               string
		nb, nl, nh, ch, wk int
		want               Partition
	}{
		// Throughput batches: B divides evenly across workers and the
		// movement term favors contiguous per-sample rows.
		{"mnist-batch16", 16, 1152, 10, 16, 8, PartitionB},
		{"mnist-batch64", 64, 1152, 10, 16, 4, PartitionB},
		// Batch-1 latency: B-sharding leaves W-1 workers idle
		// (ceil(1/W)=1, the whole sample on one worker) while
		// H-sharding splits the 10 digit capsules — the paper's
		// Table 2 reason to shard H when B is degenerate.
		{"mnist-batch1", 1, 1152, 10, 16, 8, PartitionH},
		{"batch2-many-workers", 2, 1152, 10, 16, 8, PartitionH},
		// When B ≥ workers again, B wins back.
		{"batch8-8workers", 8, 1152, 10, 16, 8, PartitionB},
	}
	for _, c := range cases {
		if got := ChoosePartition(PartitionAuto, c.nb, c.nl, c.nh, c.ch, c.wk); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestChoosePartitionMatchesScoreFormula(t *testing.T) {
	// Exhaustively check the selection equals the documented formula
	// over a small shape grid, so the implementation can't drift from
	// the DESIGN.md description.
	for _, nb := range []int{1, 2, 3, 7, 16} {
		for _, nh := range []int{1, 5, 10, 33} {
			for _, wk := range []int{2, 3, 8} {
				nl, ch := 64, 16
				execB := ceilDiv(nb, wk) * nl * nh * ch
				execH := nb * nl * ceilDiv(nh, wk) * ch
				want := PartitionH
				if execB+execB <= execH+execH*4/3 {
					want = PartitionB
				}
				if got := ChoosePartition(PartitionAuto, nb, nl, nh, ch, wk); got != want {
					t.Errorf("nb=%d nh=%d wk=%d: got %v, want %v", nb, nh, wk, got, want)
				}
			}
		}
	}
}
