package capsnet

import "math"

// logImpl isolates the host log used by EM routing cost terms.
func logImpl(x float64) float64 { return math.Log(x) }

// sqrtImpl isolates the host sqrt used by the trainer.
func sqrtImpl(x float64) float64 { return math.Sqrt(x) }
