package capsnet

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"pimcapsnet/internal/tensor"
)

// arenaTestImages builds a deterministic batch of flattened images for
// a TinyConfig network.
func arenaTestImages(n *Network, nb int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	images := make([][]float32, nb)
	for k := range images {
		img := make([]float32, n.ImageLen())
		for i := range img {
			img[i] = rng.Float32()
		}
		images[k] = img
	}
	return images
}

// TestForwardBatchAllocFree holds the tentpole invariant: once the
// scratch pool is warm (the Output of each call released back), a
// ForwardBatch pass performs zero heap allocations.
func TestForwardBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	images := arenaTestImages(net, 4, 1)
	mathOps := RoutingMath(ExactMath{})
	// Warm the pool: first call builds the scratch and the worker pool.
	for i := 0; i < 2; i++ {
		net.ForwardBatch(images, mathOps).Release()
	}
	allocs := testing.AllocsPerRun(10, func() {
		net.ForwardBatch(images, mathOps).Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state ForwardBatch allocated %.1f times per run, want 0", allocs)
	}
}

// TestForwardAllocFree is the same invariant for the tensor-batch
// entry point.
func TestForwardAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	batch := tensor.New(2, 1, 12, 12)
	rng := rand.New(rand.NewSource(3))
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	mathOps := RoutingMath(ExactMath{})
	for i := 0; i < 2; i++ {
		net.Forward(batch, mathOps).Release()
	}
	allocs := testing.AllocsPerRun(10, func() {
		net.Forward(batch, mathOps).Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Forward allocated %.1f times per run, want 0", allocs)
	}
}

// TestForwardBatchAllocFreeMultiWorker repeats the zero-allocation
// invariant with a multi-worker scratch: the chunk dispatch through
// the persistent worker pool (job slots, buffered done channel) must
// not allocate either. The scratch snapshots its worker count at
// creation, so the pooled dispatch path runs even though AllocsPerRun
// pins GOMAXPROCS to 1 during measurement.
func TestForwardBatchAllocFreeMultiWorker(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	images := arenaTestImages(net, 8, 2)
	mathOps := RoutingMath(ExactMath{})
	for i := 0; i < 2; i++ {
		net.ForwardBatch(images, mathOps).Release()
	}
	allocs := testing.AllocsPerRun(10, func() {
		net.ForwardBatch(images, mathOps).Release()
	})
	if allocs != 0 {
		t.Fatalf("multi-worker ForwardBatch allocated %.1f times per run, want 0", allocs)
	}
}

// TestRoutingIterationAllocFree pins the per-iteration cost: with a
// single routing iteration configured, the whole arena-path forward
// (which includes exactly one softmax/aggregate/squash round) still
// allocates nothing, so each extra iteration adds zero allocations
// too.
func TestRoutingIterationAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cfg := TinyConfig(3)
	cfg.RoutingIterations = 1
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	images := arenaTestImages(net, 2, 5)
	mathOps := RoutingMath(NewPEMath())
	for i := 0; i < 2; i++ {
		net.ForwardBatch(images, mathOps).Release()
	}
	allocs := testing.AllocsPerRun(10, func() {
		net.ForwardBatch(images, mathOps).Release()
	})
	if allocs != 0 {
		t.Fatalf("1-iteration ForwardBatch allocated %.1f times per run, want 0", allocs)
	}
}

// TestArenaReuseBitIdentical holds the correctness side of the arena:
// reusing a released scratch (including after shrinking and regrowing
// the batch) produces bit-identical outputs to a network that builds
// fresh buffers every call.
func TestArenaReuseBitIdentical(t *testing.T) {
	cfg := TinyConfig(4)
	reuse, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		mathOps RoutingMath
	}{{"exact", ExactMath{}}, {"pe", NewPEMath()}} {
		// Batch sizes chosen to exercise reuse at capacity, below
		// capacity (stale tail data in the buffers), and regrowth.
		for i, nb := range []int{4, 1, 3, 4, 6} {
			images := arenaTestImages(reuse, nb, int64(100+i))
			got := reuse.ForwardBatch(images, mode.mathOps)
			want := fresh.ForwardBatch(images, mode.mathOps)
			for j, v := range want.Capsules.Data() {
				if math.Float32bits(v) != math.Float32bits(got.Capsules.Data()[j]) {
					t.Fatalf("%s nb=%d: capsule %d differs after arena reuse", mode.name, nb, j)
				}
			}
			for j, v := range want.Lengths.Data() {
				if math.Float32bits(v) != math.Float32bits(got.Lengths.Data()[j]) {
					t.Fatalf("%s nb=%d: length %d differs after arena reuse", mode.name, nb, j)
				}
			}
			got.Release()
			// fresh's outputs are deliberately never released, so every
			// fresh.ForwardBatch call runs on brand-new buffers.
		}
	}
}

// TestForcedPartitionsBitIdentical holds the Partition knob's
// contract: forcing either shard dimension changes no output bit
// relative to the automatic choice, for both routing modes.
func TestForcedPartitionsBitIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // make multi-worker sharding real
	defer runtime.GOMAXPROCS(prev)
	for _, shared := range []bool{false, true} {
		cfg := TinyConfig(4)
		cfg.SharedRouting = shared
		var ref *Output
		for _, part := range []Partition{PartitionAuto, PartitionB, PartitionH} {
			net, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			net.Partition = part
			images := arenaTestImages(net, 5, 42)
			out := net.ForwardBatch(images, ExactMath{})
			if ref == nil {
				ref = out
				continue
			}
			for j, v := range ref.Capsules.Data() {
				if math.Float32bits(v) != math.Float32bits(out.Capsules.Data()[j]) {
					t.Fatalf("shared=%v partition=%v: capsule %d differs from auto", shared, part, j)
				}
			}
			pb, ph := net.PartitionCounts()
			switch part {
			case PartitionB:
				if pb == 0 || ph != 0 {
					t.Fatalf("forced B: counts (%d, %d)", pb, ph)
				}
			case PartitionH:
				if ph == 0 || pb != 0 {
					t.Fatalf("forced H: counts (%d, %d)", pb, ph)
				}
			}
		}
	}
}

// TestConcurrentForwardBatchRelease drives concurrent ForwardBatch
// callers through the shared scratch pool and worker pool (this is the
// race-detector target for the arena path) and checks each goroutine
// sees results identical to a serial reference.
func TestConcurrentForwardBatchRelease(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	const rounds = 8
	inputs := make([][][]float32, goroutines)
	refs := make([][]float32, goroutines)
	for g := range inputs {
		inputs[g] = arenaTestImages(net, 1+g%3, int64(500+g))
		out := net.ForwardBatch(inputs[g], ExactMath{})
		refs[g] = append([]float32(nil), out.Lengths.Data()...)
		out.Release()
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				out := net.ForwardBatch(inputs[g], ExactMath{})
				for j, v := range refs[g] {
					if math.Float32bits(v) != math.Float32bits(out.Lengths.Data()[j]) {
						errs <- errMismatch(g, r, j)
						out.Release()
						return
					}
				}
				out.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errMismatch3 struct{ g, r, j int }

func errMismatch(g, r, j int) error { return errMismatch3{g, r, j} }

func (e errMismatch3) Error() string {
	return "concurrent ForwardBatch mismatch (goroutine/round/index): " +
		itoa(e.g) + "/" + itoa(e.r) + "/" + itoa(e.j)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestReleaseIdempotent checks double-Release is harmless: the scratch
// must return to the pool exactly once, so two sequential forwards
// after a double release still use distinct buffers.
func TestReleaseIdempotent(t *testing.T) {
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	images := arenaTestImages(net, 2, 9)
	out := net.ForwardBatch(images, ExactMath{})
	out.Release()
	out.Release()
	a := net.ForwardBatch(images, ExactMath{})
	b := net.ForwardBatch(images, ExactMath{})
	if a.scr == b.scr {
		t.Fatal("double Release returned the same scratch twice")
	}
	if net.ArenaBytes() == 0 {
		t.Fatal("ArenaBytes reports 0 with live scratches")
	}
}

// TestRunChunksRepanics checks the pooled chunk dispatcher re-raises a
// kernel panic on the caller, matching parallelChunks semantics, and
// that the scratch remains usable afterwards.
func TestRunChunksRepanics(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	images := arenaTestImages(net, 8, 13)
	out := net.ForwardBatch(images, ExactMath{})
	scr := out.scr
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("runChunks did not re-raise the kernel panic")
			}
		}()
		scr.runChunks(8, func(_, lo, hi int) {
			if lo == 0 {
				panic("boom")
			}
		})
	}()
	// The panic cell resets per dispatch: the scratch keeps working.
	out.Release()
	next := net.ForwardBatch(images, ExactMath{})
	if next.Lengths.Dim(0) != 8 {
		t.Fatalf("post-panic forward shape %v", next.Lengths.Shape())
	}
	next.Release()
}
