package capsnet

import (
	"runtime"
	"sync"
)

// panicBox captures the first panic raised by a pool of workers so
// the caller goroutine can re-raise it after the pool drains. Without
// this, a panic inside a worker goroutine kills the whole process —
// no recover() on the serving path can reach it — which is exactly
// the failure mode the fault-injection campaign exercises.
type panicBox struct {
	once sync.Once
	val  any
}

// capture records p if it is the first panic seen.
func (b *panicBox) capture(p any) {
	b.once.Do(func() { b.val = p })
}

// repanic re-raises the captured panic, if any, on the calling
// goroutine. Call it only after the worker WaitGroup has drained (the
// Wait provides the happens-before edge for reading val).
func (b *panicBox) repanic() {
	if b.val != nil {
		panic(b.val)
	}
}

// parallelFor runs fn(k) for k in [0, n) across GOMAXPROCS workers.
// Work items must write to disjoint state (every use in this package
// writes per-sample slices), so results are identical to the serial
// loop.
//
// If any fn panics, the panic is recovered on its worker, the pool
// finishes the remaining items it can, and the first panic is
// re-raised on the caller goroutine — so callers (and ultimately the
// serve batcher) see the same control flow as a panicking serial
// loop instead of a process crash.
func parallelFor(n int, fn func(k int)) {
	workers := runtime.GOMAXPROCS(0)
	// Serial threshold: with fewer than two work items per worker
	// (n < 2×GOMAXPROCS), goroutine launch + channel traffic costs
	// more than the parallelism recovers and shows up as scheduler
	// noise in capsnet_stage_seconds, so tiny fan-outs run inline.
	// Callers already require fn to be order-independent (disjoint
	// writes), so the serial loop computes identical results.
	if workers <= 1 || n < 2*workers {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	if workers > n {
		workers = n
	}
	// The channel is buffered for all n items and filled before any
	// worker starts, so the dispatcher never serializes on a blocking
	// per-item handoff in hot batched-forward loops; workers still pull
	// items one at a time, keeping the dynamic load balancing.
	next := make(chan int, n)
	for k := 0; k < n; k++ {
		next <- k
	}
	close(next)
	var (
		wg  sync.WaitGroup
		box panicBox
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					box.capture(p)
				}
			}()
			for k := range next {
				fn(k)
			}
		}()
	}
	wg.Wait()
	box.repanic()
}

// parallelChunks splits [0, n) into one contiguous chunk per worker
// and runs fn(worker, lo, hi) concurrently; workers receive distinct
// worker indices so they can own private accumulation buffers that the
// caller merges deterministically afterwards. Worker panics are
// recovered and the first one re-raised on the caller goroutine, as
// in parallelFor.
func parallelChunks(n, workers int, fn func(worker, lo, hi int)) int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return 1
	}
	var (
		wg  sync.WaitGroup
		box panicBox
	)
	chunk := (n + workers - 1) / workers
	used := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		used++
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					box.capture(p)
				}
			}()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	box.repanic()
	return used
}

// maxWorkers bounds worker-buffer allocation for chunked parallelism.
func maxWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
