package capsnet

import (
	"runtime"
	"sync"
)

// parallelFor runs fn(k) for k in [0, n) across GOMAXPROCS workers.
// Work items must write to disjoint state (every use in this package
// writes per-sample slices), so results are identical to the serial
// loop.
func parallelFor(n int, fn func(k int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	// The channel is buffered for all n items and filled before any
	// worker starts, so the dispatcher never serializes on a blocking
	// per-item handoff in hot batched-forward loops; workers still pull
	// items one at a time, keeping the dynamic load balancing.
	next := make(chan int, n)
	for k := 0; k < n; k++ {
		next <- k
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				fn(k)
			}
		}()
	}
	wg.Wait()
}

// parallelChunks splits [0, n) into one contiguous chunk per worker
// and runs fn(worker, lo, hi) concurrently; workers receive distinct
// worker indices so they can own private accumulation buffers that the
// caller merges deterministically afterwards.
func parallelChunks(n, workers int, fn func(worker, lo, hi int)) int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	used := 0
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		used++
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return used
}

// maxWorkers bounds worker-buffer allocation for chunked parallelism.
func maxWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
