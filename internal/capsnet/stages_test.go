package capsnet

import (
	"math"
	"math/rand"
	"testing"

	"pimcapsnet/internal/tensor"
)

// stageCall is one BeginStage/end pair a fakeStageTimer recorded.
type stageCall struct {
	stage string
	iter  int
	ended bool
}

// fakeStageTimer records the stage sequence. Not concurrency-safe —
// stage sites are all called from the single forward-pass goroutine.
type fakeStageTimer struct {
	calls []stageCall
}

func (f *fakeStageTimer) BeginStage(stage string, iteration int) func() {
	i := len(f.calls)
	f.calls = append(f.calls, stageCall{stage: stage, iter: iteration})
	return func() { f.calls[i].ended = true }
}

// TestStageTimerSequence checks a timed forward pass reports every
// pipeline stage in order, with per-iteration routing stages carrying
// their iteration index, and that every stage is ended.
func TestStageTimerSequence(t *testing.T) {
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	ft := &fakeStageTimer{}
	net.Stages = ft
	batch := tensor.New(2, 1, 12, 12)
	rng := rand.New(rand.NewSource(7))
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	net.Forward(batch, ExactMath{})

	// The routing_partition marker's iteration argument is the resolved
	// Partition value, which depends on GOMAXPROCS — check the name but
	// accept either shard dimension.
	partIter := PartitionB
	if len(ft.calls) > 3 && ft.calls[3].stage == StageRoutingPartition && ft.calls[3].iter == int(PartitionH) {
		partIter = PartitionH
	}
	want := []stageCall{
		{StageConv, -1, true},
		{StagePrimaryCaps, -1, true},
		{StagePredictionVectors, -1, true},
		{StageRoutingPartition, int(partIter), true},
	}
	iters := net.Config.RoutingIterations
	for it := 0; it < iters; it++ {
		want = append(want,
			stageCall{StageRoutingIteration, it, true},
			stageCall{StageRoutingSoftmax, it, true},
			stageCall{StageRoutingAggregate, it, true},
		)
		if it < iters-1 {
			want = append(want, stageCall{StageRoutingAgreement, it, true})
		}
	}
	want = append(want, stageCall{StageFiniteGuard, -1, true}, stageCall{StageLengths, -1, true})

	// The recorded order interleaves (iteration begins before its
	// sub-stages), so compare as begin-order sequences.
	if len(ft.calls) != len(want) {
		t.Fatalf("recorded %d stages, want %d:\n%+v", len(ft.calls), len(want), ft.calls)
	}
	for i, c := range ft.calls {
		if c.stage != want[i].stage || c.iter != want[i].iter {
			t.Errorf("stage %d: got %s/%d, want %s/%d", i, c.stage, c.iter, want[i].stage, want[i].iter)
		}
		if !c.ended {
			t.Errorf("stage %d (%s) never ended", i, c.stage)
		}
	}
}

// TestStageTimerPreservesOutputs holds the load-bearing invariant of
// the timed path: attaching a StageTimer (which switches conv/primary
// to the split batch-wide loops) changes no output bit, for both
// routing modes and both math implementations.
func TestStageTimerPreservesOutputs(t *testing.T) {
	for _, shared := range []bool{false, true} {
		cfg := TinyConfig(4)
		cfg.SharedRouting = shared
		for _, mathOps := range []RoutingMath{ExactMath{}, NewPEMath()} {
			plain, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			timed, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			timed.Stages = &fakeStageTimer{}

			batch := tensor.New(3, 1, 12, 12)
			rng := rand.New(rand.NewSource(11))
			for i := range batch.Data() {
				batch.Data()[i] = rng.Float32()
			}
			a := plain.Forward(batch, mathOps)
			b := timed.Forward(batch, mathOps)
			for i, v := range a.Capsules.Data() {
				if math.Float32bits(v) != math.Float32bits(b.Capsules.Data()[i]) {
					t.Fatalf("shared=%v math=%T: capsule %d differs: %x vs %x",
						shared, mathOps, i, math.Float32bits(v), math.Float32bits(b.Capsules.Data()[i]))
				}
			}
			for i, v := range a.Lengths.Data() {
				if math.Float32bits(v) != math.Float32bits(b.Lengths.Data()[i]) {
					t.Fatalf("shared=%v math=%T: length %d differs", shared, mathOps, i)
				}
			}
		}
	}
}

// TestUntimedForwardHasNoTimerCost double-checks the nil fast path
// still works after the refactor (fused conv/primary loop).
func TestUntimedForwardHasNoTimerCost(t *testing.T) {
	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	batch := tensor.New(1, 1, 12, 12)
	for i := range batch.Data() {
		batch.Data()[i] = 0.5
	}
	out := net.Forward(batch, ExactMath{})
	if out.Lengths.Dim(1) != 3 {
		t.Fatalf("lengths shape %v", out.Lengths.Shape())
	}
}
