package capsnet

import (
	"math"
	"math/rand"
	"testing"

	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/tensor"
)

func TestSquashBackwardMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := make([]float32, 5)
	dv := make([]float32, 5)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
		dv[i] = float32(rng.NormFloat64())
	}
	ds := make([]float32, 5)
	squashBackward(ds, dv, s)

	// Numerical: L = <squash(s), dv>; dL/ds[i] by central differences.
	loss := func() float64 {
		out := make([]float32, 5)
		squashInto(ExactMath{}, out, s)
		return float64(tensor.Dot(out, dv))
	}
	const eps = 1e-3
	for i := range s {
		orig := s[i]
		s[i] = orig + eps
		up := loss()
		s[i] = orig - eps
		down := loss()
		s[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-float64(ds[i])) > 2e-2*math.Max(1, math.Abs(num)) {
			t.Fatalf("ds[%d]: analytic %v vs numeric %v", i, ds[i], num)
		}
	}
}

func TestSquashBackwardZeroInput(t *testing.T) {
	ds := make([]float32, 3)
	squashBackward(ds, []float32{1, 2, 3}, []float32{0, 0, 0})
	for _, v := range ds {
		if v != 0 {
			t.Fatal("zero pre-activation must have zero gradient")
		}
	}
}

func TestFCBackwardMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, act := range []Activation{ActNone, ActReLU, ActSigmoid} {
		l := NewFCLayer(4, 3, act, rng)
		x := make([]float32, 4)
		mask := make([]float32, 3)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		for i := range mask {
			mask[i] = float32(rng.NormFloat64())
		}
		y := l.Forward(x)
		dW := tensor.New(3, 4)
		dB := make([]float32, 3)
		dX := fcBackward(l, x, y, mask, dW, dB)

		loss := func() float64 {
			return float64(tensor.Dot(l.Forward(x), mask))
		}
		const eps = 1e-3
		for i := range x {
			orig := x[i]
			x[i] = orig + eps
			up := loss()
			x[i] = orig - eps
			down := loss()
			x[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-float64(dX[i])) > 3e-2*math.Max(1, math.Abs(num)) {
				t.Fatalf("act %d dX[%d]: analytic %v vs numeric %v", act, i, dX[i], num)
			}
		}
		for _, wi := range []int{0, 5, 11} {
			orig := l.Weights.Data()[wi]
			l.Weights.Data()[wi] = orig + eps
			up := loss()
			l.Weights.Data()[wi] = orig - eps
			down := loss()
			l.Weights.Data()[wi] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-float64(dW.Data()[wi])) > 3e-2*math.Max(1, math.Abs(num)) {
				t.Fatalf("act %d dW[%d]: analytic %v vs numeric %v", act, wi, dW.Data()[wi], num)
			}
		}
	}
}

// TestFullTrainerGradCheckDigitWeights numerically verifies the
// end-to-end margin-loss gradient with respect to a few capsule-layer
// and conv-layer weights on a miniature network.
func TestFullTrainerGradCheckDigitWeights(t *testing.T) {
	cfg := Config{
		InputChannels: 1, InputH: 8, InputW: 8,
		ConvChannels: 4, ConvKernel: 3, ConvStride: 1,
		PrimaryChannels: 2, PrimaryDim: 4, PrimaryKernel: 3, PrimaryStride: 2,
		Classes: 3, DigitDim: 4, RoutingIterations: 1, // constant uniform coefficients: the
		// stop-gradient analytic gradient is exact and numerically checkable
		Seed: 5,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	batch := tensor.New(2, 1, 8, 8)
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	labels := []int{0, 2}

	lossAt := func() float64 {
		out := net.Forward(batch, ExactMath{})
		var l float32
		for k := 0; k < 2; k++ {
			l += MarginLoss(out.Lengths.Data()[k*3:(k+1)*3], labels[k])
		}
		return float64(l) / 2
	}

	// Capture analytic gradients by running TrainBatch with a known
	// LR and diffing the weights (update = -LR/nb · grad).
	check := func(name string, params *tensor.Tensor, idxs []int) {
		snapshot := params.Clone()
		netCopyLR := float32(1.0)
		tr := NewFullTrainer(net, netCopyLR)
		// Numerical gradients BEFORE the update.
		const eps = 2e-3
		numGrads := make([]float64, len(idxs))
		for n, i := range idxs {
			orig := params.Data()[i]
			params.Data()[i] = orig + eps
			up := lossAt()
			params.Data()[i] = orig - eps
			down := lossAt()
			params.Data()[i] = orig
			numGrads[n] = (up - down) / (2 * eps)
		}
		tr.TrainBatch(batch, labels)
		for n, i := range idxs {
			// delta = (LR/nb)·Σ_k grad_k, so delta/LR is the mean
			// gradient — exactly what the numeric check computes on
			// the mean loss.
			analytic := float64(snapshot.Data()[i]-params.Data()[i]) / float64(netCopyLR)
			if math.Abs(analytic-numGrads[n]) > 5e-2*math.Max(0.02, math.Abs(numGrads[n])) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, analytic, numGrads[n])
			}
		}
		// Restore weights for subsequent checks.
		copy(params.Data(), snapshot.Data())
	}

	check("digitW", net.Digit.Weights, []int{0, 17, 101, 333})
	check("primaryW", net.Primary.Conv.Weights, []int{0, 9, 40})
	check("convW", net.Conv.Weights, []int{0, 5, 20})
}

func TestFullTrainerLearns(t *testing.T) {
	spec := dataset.Tiny(3)
	spec.Noise = 0.05
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(45)
	test := gen.Generate(30)

	net, err := New(TinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewFullTrainer(net, 0.5)
	imgLen := 144
	for ep := 0; ep < 15; ep++ {
		for s := 0; s+15 <= 45; s += 15 {
			batch := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+15)*imgLen], 15, 1, 12, 12)
			tr.TrainBatch(batch, train.Labels[s:s+15])
		}
	}
	acc := Evaluate(net, test.Images, test.Labels, ExactMath{})
	if acc < 0.85 {
		t.Fatalf("full training accuracy %.2f below 0.85", acc)
	}
}

func TestFullTrainerWithReconstruction(t *testing.T) {
	spec := dataset.Tiny(2)
	gen := dataset.NewGenerator(spec)
	ds := gen.Generate(16)

	cfg := TinyConfig(2)
	cfg.WithDecoder = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewFullTrainer(net, 0.3)
	tr.ReconWeight = 1

	first, _ := tr.TrainBatch(ds.Images, ds.Labels)
	var last float32
	for i := 0; i < 12; i++ {
		last, _ = tr.TrainBatch(ds.Images, ds.Labels)
	}
	if last >= first {
		t.Fatalf("loss with reconstruction did not decrease: %v → %v", first, last)
	}

	// The decoder must actually reconstruct better than at init.
	out := net.Forward(ds.Images, ExactMath{})
	recon := net.Reconstruct(out, 0, ds.Labels[0])
	var mse float32
	for p, v := range recon {
		d := v - ds.Images.Data()[p]
		mse += d * d
	}
	mse /= float32(len(recon))
	if mse > 0.2 {
		t.Fatalf("reconstruction MSE %.3f too high after training", mse)
	}
}

func TestFullTrainerReconRequiresDecoder(t *testing.T) {
	net, _ := New(TinyConfig(2))
	tr := NewFullTrainer(net, 0.1)
	tr.ReconWeight = 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without decoder")
		}
	}()
	tr.TrainBatch(tensor.New(1, 1, 12, 12), []int{0})
}

func TestFullTrainerLabelMismatchPanics(t *testing.T) {
	net, _ := New(TinyConfig(2))
	tr := NewFullTrainer(net, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label mismatch")
		}
	}()
	tr.TrainBatch(tensor.New(2, 1, 12, 12), []int{0})
}

func TestFullTrainerBeatsCapsuleOnlyTrainer(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative training skipped in -short mode")
	}
	// With a deliberately weak random front end (few conv channels),
	// training the convolutions should outperform capsule-only
	// training given the same budget.
	spec := dataset.Tiny(5)
	spec.Noise = 0.15
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(100)
	test := gen.Generate(50)

	cfg := TinyConfig(5)
	cfg.ConvChannels = 6
	cfg.PrimaryChannels = 2

	run := func(full bool) float64 {
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		imgLen := 144
		step := func(b *tensor.Tensor, l []int) {
			if full {
				tr := NewFullTrainer(net, 0.5)
				tr.TrainBatch(b, l)
			} else {
				NewTrainer(net, 0.5).TrainBatch(b, l)
			}
		}
		for ep := 0; ep < 20; ep++ {
			for s := 0; s+20 <= 100; s += 20 {
				batch := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+20)*imgLen], 20, 1, 12, 12)
				step(batch, train.Labels[s:s+20])
			}
		}
		return Evaluate(net, test.Images, test.Labels, ExactMath{})
	}
	capsOnly := run(false)
	full := run(true)
	if full+0.02 < capsOnly {
		t.Fatalf("full backprop (%.2f) should not lose to capsule-only training (%.2f)", full, capsOnly)
	}
}

// TestFullTrainerDeterministic ensures the parallelized training step
// is reproducible: identical networks and batches produce bit-identical
// updates (worker-local gradient buffers merge in fixed chunk order).
func TestFullTrainerDeterministic(t *testing.T) {
	spec := dataset.Tiny(3)
	gen := dataset.NewGenerator(spec)
	ds := gen.Generate(24)
	run := func() *Network {
		net, _ := New(TinyConfig(3))
		tr := NewFullTrainer(net, 0.4)
		for i := 0; i < 3; i++ {
			tr.TrainBatch(ds.Images, ds.Labels)
		}
		return net
	}
	a, b := run(), run()
	if !a.Digit.Weights.Equal(b.Digit.Weights) ||
		!a.Conv.Weights.Equal(b.Conv.Weights) ||
		!a.Primary.Conv.Weights.Equal(b.Primary.Conv.Weights) {
		t.Fatal("parallel training is not deterministic")
	}
}

func TestFullTrainerMomentumLearns(t *testing.T) {
	spec := dataset.Tiny(3)
	spec.Noise = 0.05
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(45)
	test := gen.Generate(30)

	net, _ := New(TinyConfig(3))
	tr := NewFullTrainer(net, 0.2)
	tr.Momentum = 0.9
	tr.WeightDecay = 1e-4
	imgLen := 144
	for ep := 0; ep < 12; ep++ {
		for s := 0; s+15 <= 45; s += 15 {
			batch := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+15)*imgLen], 15, 1, 12, 12)
			tr.TrainBatch(batch, train.Labels[s:s+15])
		}
	}
	acc := Evaluate(net, test.Images, test.Labels, ExactMath{})
	if acc < 0.8 {
		t.Fatalf("momentum training accuracy %.2f below 0.8", acc)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	// Pure decay (zero-gradient data is impossible; instead compare
	// norms after identical training with and without decay).
	spec := dataset.Tiny(2)
	gen := dataset.NewGenerator(spec)
	ds := gen.Generate(8)
	norm := func(decay float32) float64 {
		net, _ := New(TinyConfig(2))
		tr := NewFullTrainer(net, 0.2)
		tr.WeightDecay = decay
		for i := 0; i < 8; i++ {
			tr.TrainBatch(ds.Images, ds.Labels)
		}
		return float64(tensor.Norm(net.Digit.Weights.Data()))
	}
	if norm(0.05) >= norm(0) {
		t.Fatal("weight decay did not shrink the capsule transform weights")
	}
}
