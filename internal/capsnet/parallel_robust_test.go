package capsnet

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

// errBoom is a recognizable panic payload for the recovery tests.
var errBoom = errors.New("boom")

// TestParallelForRepanicsOnCaller: a worker panic must not kill the
// process; it is re-raised on the calling goroutine with the original
// value, like a panicking serial loop.
func TestParallelForRepanicsOnCaller(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >1 worker to exercise the pool path")
	}
	var ran atomic.Int64
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("worker panic was swallowed")
		}
		err, ok := p.(error)
		if !ok || !errors.Is(err, errBoom) {
			t.Fatalf("recovered %v, want the original panic value", p)
		}
		if ran.Load() == 0 {
			t.Fatal("no work item ran")
		}
	}()
	parallelFor(64, func(k int) {
		if k == 17 {
			panic(errBoom)
		}
		ran.Add(1)
	})
	t.Fatal("parallelFor returned instead of panicking")
}

// TestParallelForSerialPathPanics: with n=1 the serial path panics
// directly on the caller.
func TestParallelForSerialPathPanics(t *testing.T) {
	defer func() {
		if p := recover(); p == nil {
			t.Fatal("serial-path panic was swallowed")
		}
	}()
	parallelFor(1, func(int) { panic(errBoom) })
}

// TestParallelForResultsUnchanged: the recovery wrapper must not
// perturb the no-fault path.
func TestParallelForResultsUnchanged(t *testing.T) {
	const n = 257
	got := make([]int, n)
	parallelFor(n, func(k int) { got[k] = k * k })
	for k := 0; k < n; k++ {
		if got[k] != k*k {
			t.Fatalf("item %d = %d, want %d", k, got[k], k*k)
		}
	}
}

// TestParallelChunksRepanicsOnCaller mirrors the parallelFor test for
// the chunked variant.
func TestParallelChunksRepanicsOnCaller(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("chunk worker panic was swallowed")
		}
		err, ok := p.(error)
		if !ok || !errors.Is(err, errBoom) {
			t.Fatalf("recovered %v, want the original panic value", p)
		}
	}()
	parallelChunks(64, 4, func(worker, lo, hi int) {
		if worker == 2 {
			panic(errBoom)
		}
	})
	t.Fatal("parallelChunks returned instead of panicking")
}

// TestParallelChunksNoFault: worker count and coverage are unchanged
// by the recovery wrapper.
func TestParallelChunksNoFault(t *testing.T) {
	covered := make([]atomic.Int32, 100)
	used := parallelChunks(100, 4, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	if used != 4 {
		t.Fatalf("used %d workers, want 4", used)
	}
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
}
