package capsnet

import (
	"math"
	"sync"
	"testing"

	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/tensor"
)

func inferTestSetup(t *testing.T, classes, n int) (*Network, [][]float32) {
	t.Helper()
	net, err := New(TinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	gen := dataset.NewGenerator(dataset.Tiny(classes))
	images := make([][]float32, n)
	for i := range images {
		images[i] = make([]float32, net.ImageLen())
		gen.Sample(images[i], i%classes)
	}
	return net, images
}

// TestForwardBatchMatchesForward: ForwardBatch on a slice of images is
// bit-identical to Forward on the equivalent hand-assembled tensor.
func TestForwardBatchMatchesForward(t *testing.T) {
	net, images := inferTestSetup(t, 3, 5)
	imgLen := net.ImageLen()
	flat := make([]float32, len(images)*imgLen)
	for k, img := range images {
		copy(flat[k*imgLen:], img)
	}
	batch := tensor.FromSlice(flat, len(images), net.Config.InputChannels, net.Config.InputH, net.Config.InputW)

	direct := net.Forward(batch, ExactMath{})
	batched := net.ForwardBatch(images, ExactMath{})
	for i, v := range batched.Lengths.Data() {
		if math.Float32bits(v) != math.Float32bits(direct.Lengths.Data()[i]) {
			t.Fatalf("length %d: batched %x, direct %x", i, math.Float32bits(v), math.Float32bits(direct.Lengths.Data()[i]))
		}
	}
	for i, v := range batched.Capsules.Data() {
		if math.Float32bits(v) != math.Float32bits(direct.Capsules.Data()[i]) {
			t.Fatalf("capsule value %d differs between ForwardBatch and Forward", i)
		}
	}
}

// TestForwardBatchPerSampleIndependent: under per-sample routing, a
// sample's result does not depend on which batch it rides in.
func TestForwardBatchPerSampleIndependent(t *testing.T) {
	net, images := inferTestSetup(t, 3, 4)
	whole := net.ForwardBatch(images, ExactMath{})
	nc := net.Config.Classes
	for k, img := range images {
		solo := net.ForwardBatch([][]float32{img}, ExactMath{})
		for j := 0; j < nc; j++ {
			a := solo.Lengths.Data()[j]
			b := whole.Lengths.Data()[k*nc+j]
			if math.Float32bits(a) != math.Float32bits(b) {
				t.Fatalf("sample %d class %d: solo %x, batched %x", k, j, math.Float32bits(a), math.Float32bits(b))
			}
		}
	}
}

// TestForwardBatchConcurrent exercises the documented thread-safety
// contract: concurrent ForwardBatch calls on one Network must be
// race-free (checked under -race in CI) and deterministic.
func TestForwardBatchConcurrent(t *testing.T) {
	net, images := inferTestSetup(t, 3, 4)
	want := net.ForwardBatch(images, ExactMath{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := net.ForwardBatch(images, ExactMath{})
			for i, v := range got.Lengths.Data() {
				if math.Float32bits(v) != math.Float32bits(want.Lengths.Data()[i]) {
					t.Errorf("concurrent length %d nondeterministic", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestForwardBatchPanics validates the entry-point's input checks.
func TestForwardBatchPanics(t *testing.T) {
	net, images := inferTestSetup(t, 3, 1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty batch", func() { net.ForwardBatch(nil, ExactMath{}) })
	mustPanic("short image", func() { net.ForwardBatch([][]float32{images[0][:3]}, ExactMath{}) })
}
