package capsnet

import "fmt"

// Partition selects which dimension of the routing procedure's
// workload is sharded contiguously across workers — the software
// counterpart of the PIM-CapsNet paper's B/L/H workload distribution
// (§5, Table 2). The aggregation of Eq. 2 and the agreement of Eq. 4
// iterate a B×L×H×CH nest whose per-output accumulation runs over L
// (aggregation) or is pointwise (agreement), so both the batch
// dimension B and the high-level-capsule dimension H can be split
// without changing any per-element accumulation order — results stay
// bit-identical to the serial loop for every choice, which is what
// makes this a pure performance knob.
type Partition int

const (
	// PartitionAuto picks B or H per forward pass with the analytical
	// cost model of choosePartition (the default).
	PartitionAuto Partition = iota
	// PartitionB shards the batch dimension: each worker owns a
	// contiguous run of samples. Best once the batch has at least one
	// sample per worker (throughput serving, training).
	PartitionB
	// PartitionH shards the high-level-capsule dimension: each worker
	// owns a contiguous run of output capsules across all samples.
	// Best for small batches (batch-1 latency), where B-sharding would
	// leave workers idle — the paper's intra-sample parallelism.
	PartitionH
)

// String implements fmt.Stringer.
func (p Partition) String() string {
	switch p {
	case PartitionAuto:
		return "auto"
	case PartitionB:
		return "batch"
	case PartitionH:
		return "hcaps"
	}
	return fmt.Sprintf("Partition(%d)", int(p))
}

// ceilDiv returns ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ChoosePartition resolves p to PartitionB or PartitionH for a routing
// workload of nb samples × nl low-level capsules × nh high-level
// capsules × ch dimensions on the given worker count, mirroring the
// paper's execution-score model (Eqs. 6–12): for each candidate
// dimension it scores the slowest worker's multiply-accumulate load
// (the ⌈N/W⌉ term of Eqs. 6–8, which is what makes uneven splits
// expensive) plus a data-movement term (Eqs. 9–11) — H-sharding walks
// the prediction-vector and coupling arrays with an nh·ch stride, so
// its traffic is charged a constant-factor penalty over B-sharding's
// fully contiguous streams — and picks the smaller score (Eq. 12's
// argmin). Ties go to B, whose access pattern is contiguous.
//
// The net effect matches Table 2's intuition: batches with at least
// roughly one sample per worker shard on B; small batches (the
// batch-1 serving case) shard on H so intra-sample parallelism keeps
// the workers busy.
//
// Exported because the same work-vs-movement scoring that places
// routing chunks on workers also places requests on serving replicas:
// the cluster tier (internal/cluster, which deliberately does not
// import this package) mirrors the decision through
// distribute.Scorer.ScoreEM, and tools comparing the two tiers can
// call this directly.
func ChoosePartition(p Partition, nb, nl, nh, ch, workers int) Partition {
	if p == PartitionB || p == PartitionH {
		return p
	}
	if workers <= 1 || nb <= 0 || nh <= 0 {
		return PartitionB
	}
	// Execution score: the critical-path worker's MAC count.
	execB := ceilDiv(nb, workers) * nl * nh * ch
	execH := nb * nl * ceilDiv(nh, workers) * ch
	// Movement score: floats the critical-path worker streams through.
	// Both read the same total volume, but the H shard's accesses are
	// strided (one j-run out of every nh·ch block), charged 4/3 of the
	// contiguous cost — enough to break ties toward B without masking
	// a real parallelism win for small batches.
	moveB := execB
	moveH := execH * 4 / 3
	if execB+moveB <= execH+moveH {
		return PartitionB
	}
	return PartitionH
}
