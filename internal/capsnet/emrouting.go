package capsnet

import (
	"fmt"

	"pimcapsnet/internal/tensor"
)

// EMConfig holds the hyperparameters of the EM routing procedure
// (Hinton et al., "Matrix capsules with EM routing", the second
// routing algorithm the paper's design targets).
type EMConfig struct {
	Iterations int
	// BetaA and BetaU are the learned activation/cost offsets; fixed
	// constants suffice for inference modeling.
	BetaA, BetaU float32
	// LambdaBase is the inverse-temperature at iteration 0; it is
	// annealed by +LambdaStep per iteration as in the reference
	// implementation.
	LambdaBase, LambdaStep float32
	// Epsilon guards variance terms against division by zero.
	Epsilon float32
}

// DefaultEMConfig returns the configuration used by the experiments.
func DefaultEMConfig() EMConfig {
	return EMConfig{Iterations: 3, BetaA: 1.0, BetaU: 0.5, LambdaBase: 0.01, LambdaStep: 0.01, Epsilon: 1e-6}
}

// EMResult carries the outputs of EM routing: the parent poses
// (B×H×CH), parent activations (B×H), and the final responsibilities
// (B×L×H).
type EMResult struct {
	Pose *tensor.Tensor // B×H×CH parent capsule poses (μ)
	Act  *tensor.Tensor // B×H parent activations
	R    *tensor.Tensor // B×L×H responsibilities
}

// EMRouting routes prediction votes û (B×L×H×CH) with child
// activations act (B×L) into parent capsules using
// Expectation-Maximization, the alternative routing procedure of
// paper §2.2. It shares PIM-CapsNet's execution pattern with dynamic
// routing (all-to-all aggregation, iterative coefficient refinement)
// and exercises the same special functions through mathOps.
func EMRouting(preds, act *tensor.Tensor, cfg EMConfig, mathOps RoutingMath) EMResult {
	if preds.Rank() != 4 {
		panic(fmt.Sprintf("capsnet: EMRouting wants B×L×H×CH votes, got %v", preds.Shape()))
	}
	if act.Rank() != 2 || act.Dim(0) != preds.Dim(0) || act.Dim(1) != preds.Dim(1) {
		panic(fmt.Sprintf("capsnet: EMRouting activations %v incompatible with votes %v", act.Shape(), preds.Shape()))
	}
	if cfg.Iterations < 1 {
		panic("capsnet: EMRouting needs at least one iteration")
	}
	nb, nl, nh, ch := preds.Dim(0), preds.Dim(1), preds.Dim(2), preds.Dim(3)
	pose := tensor.New(nb, nh, ch)
	aOut := tensor.New(nb, nh)
	r := tensor.New(nb, nl, nh)
	sigma := make([]float32, ch)
	logp := make([]float32, nh)

	pd, ad := preds.Data(), act.Data()
	rd, md, aod := r.Data(), pose.Data(), aOut.Data()

	// Responsibilities start uniform.
	uniform := float32(1) / float32(nh)
	for i := range rd {
		rd[i] = uniform
	}

	for it := 0; it < cfg.Iterations; it++ {
		lambda := cfg.LambdaBase + cfg.LambdaStep*float32(it)
		for k := 0; k < nb; k++ {
			// M-step: fit each parent j's Gaussian.
			for j := 0; j < nh; j++ {
				var rsum float32
				mu := md[(k*nh+j)*ch : (k*nh+j+1)*ch]
				for d := range mu {
					mu[d] = 0
				}
				for i := 0; i < nl; i++ {
					w := rd[(k*nl+i)*nh+j] * ad[k*nl+i]
					if w == 0 {
						continue
					}
					rsum += w
					vote := pd[((k*nl+i)*nh+j)*ch : ((k*nl+i)*nh+j+1)*ch]
					for d := 0; d < ch; d++ {
						mu[d] += w * vote[d]
					}
				}
				if rsum < cfg.Epsilon {
					aod[k*nh+j] = 0
					continue
				}
				invR := mathOps.Recip(rsum)
				for d := range mu {
					mu[d] *= invR
				}
				// Per-dimension variance and cost.
				var cost float32
				for d := 0; d < ch; d++ {
					var s2 float32
					for i := 0; i < nl; i++ {
						w := rd[(k*nl+i)*nh+j] * ad[k*nl+i]
						if w == 0 {
							continue
						}
						diff := pd[((k*nl+i)*nh+j)*ch+d] - mu[d]
						s2 += w * diff * diff
					}
					s2 = s2*invR + cfg.Epsilon
					sigma[d] = s2
					// cost_d = (β_u + 0.5·ln σ²_d)·rsum; ln via the
					// host (the PE design approximates exp; ln costs
					// are folded into the activation logit model).
					cost += (cfg.BetaU + 0.5*logf(s2)) * rsum
				}
				aod[k*nh+j] = sigmoidWith(mathOps, lambda*(cfg.BetaA-cost))
				// Stash σ² for the E-step in-place: reuse mu's tail?
				// Keep it simple: recompute in E-step below using mu.
				_ = sigma
			}
			// E-step: update responsibilities from Gaussian density.
			for i := 0; i < nl; i++ {
				var maxlp float32 = -3.4e38
				for j := 0; j < nh; j++ {
					if aod[k*nh+j] == 0 {
						logp[j] = -3.4e38
						continue
					}
					mu := md[(k*nh+j)*ch : (k*nh+j+1)*ch]
					vote := pd[((k*nl+i)*nh+j)*ch : ((k*nl+i)*nh+j+1)*ch]
					// Unit-variance log density plus log activation;
					// the variance shaping is second-order for the
					// routing pattern this library models.
					var d2 float32
					for d := 0; d < ch; d++ {
						diff := vote[d] - mu[d]
						d2 += diff * diff
					}
					lp := -0.5*d2 + logf(aod[k*nh+j]+cfg.Epsilon)
					logp[j] = lp
					if lp > maxlp {
						maxlp = lp
					}
				}
				var sum float32
				for j := 0; j < nh; j++ {
					if logp[j] <= -3.4e38 {
						logp[j] = 0
						continue
					}
					e := mathOps.Exp(logp[j] - maxlp)
					logp[j] = e
					sum += e
				}
				if sum == 0 {
					for j := 0; j < nh; j++ {
						rd[(k*nl+i)*nh+j] = uniform
					}
					continue
				}
				inv := mathOps.Recip(sum)
				for j := 0; j < nh; j++ {
					rd[(k*nl+i)*nh+j] = logp[j] * inv
				}
			}
		}
	}
	return EMResult{Pose: pose, Act: aOut, R: r}
}

func sigmoidWith(mathOps RoutingMath, x float32) float32 {
	if x >= 0 {
		return mathOps.Recip(1 + mathOps.Exp(-x))
	}
	e := mathOps.Exp(x)
	return e * mathOps.Recip(1+e)
}

// logf is a float32 natural log helper used by the EM cost terms.
func logf(x float32) float32 {
	return float32(logImpl(float64(x)))
}
