package capsnet

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// parallelForUnbuffered is the pre-fix implementation kept as the
// benchmark baseline: an unbuffered channel makes the dispatcher
// goroutine rendezvous with a worker on every single item, which
// serializes dispatch in hot batched-forward loops.
func parallelForUnbuffered(n int, fn func(k int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				fn(k)
			}
		}()
	}
	for k := 0; k < n; k++ {
		next <- k
	}
	close(next)
	wg.Wait()
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]int32, n)
		parallelFor(n, func(k int) { atomic.AddInt32(&hits[k], 1) })
		for k, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d ran %d times, want 1", n, k, h)
			}
		}
	}
}

// itemWork simulates the per-sample cost of a small batched-forward
// work item: enough flops to be realistic, little enough that channel
// handoff overhead is visible.
func itemWork(k int) {
	s := float32(k)
	for i := 0; i < 512; i++ {
		s += s*0.5 + 1
	}
	if s == -1 {
		panic("unreachable; defeats optimization")
	}
}

func BenchmarkParallelForBuffered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		parallelFor(256, itemWork)
	}
}

func BenchmarkParallelForUnbuffered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		parallelForUnbuffered(256, itemWork)
	}
}
