package capsnet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"pimcapsnet/internal/tensor"
)

// Config describes a CapsNet with the architecture family of Fig. 2:
// Conv → PrimaryCaps → (routing) → final Caps layer → FC decoder.
type Config struct {
	// Input geometry.
	InputChannels, InputH, InputW int
	// Conv layer.
	ConvChannels, ConvKernel, ConvStride int
	// PrimaryCaps layer.
	PrimaryChannels, PrimaryDim, PrimaryKernel, PrimaryStride int
	// Final capsule layer.
	Classes, DigitDim, RoutingIterations int
	// WithDecoder adds the reconstruction FC stack.
	WithDecoder bool
	// SharedRouting switches the final Caps layer to the paper's
	// batch-shared routing coefficients (Alg. 1) instead of the
	// per-sample coefficients of Sabour et al.
	SharedRouting bool
	// Seed drives all weight initialization.
	Seed int64
}

// MNISTConfig returns the CapsNet-MNIST architecture of Sabour et al.
// (28×28×1 input, 256 9×9 conv, 32×8D primary capsules, 10 16D digit
// capsules, 3 routing iterations).
func MNISTConfig() Config {
	return Config{
		InputChannels: 1, InputH: 28, InputW: 28,
		ConvChannels: 256, ConvKernel: 9, ConvStride: 1,
		PrimaryChannels: 32, PrimaryDim: 8, PrimaryKernel: 9, PrimaryStride: 2,
		Classes: 10, DigitDim: 16, RoutingIterations: 3,
		WithDecoder: true,
		Seed:        1,
	}
}

// TinyConfig returns a miniature network suitable for unit tests and
// quick examples (12×12 input, small capsule counts) while preserving
// every architectural stage.
func TinyConfig(classes int) Config {
	return Config{
		InputChannels: 1, InputH: 12, InputW: 12,
		ConvChannels: 16, ConvKernel: 5, ConvStride: 1,
		PrimaryChannels: 4, PrimaryDim: 8, PrimaryKernel: 5, PrimaryStride: 2,
		Classes: classes, DigitDim: 16, RoutingIterations: 3,
		WithDecoder: false,
		Seed:        1,
	}
}

// Validate reports an error for an inconsistent configuration.
func (c Config) Validate() error {
	if c.InputChannels <= 0 || c.InputH <= 0 || c.InputW <= 0 {
		return fmt.Errorf("capsnet: invalid input geometry %dx%dx%d", c.InputChannels, c.InputH, c.InputW)
	}
	if c.Classes <= 0 || c.DigitDim <= 0 {
		return fmt.Errorf("capsnet: invalid class caps %d·%d", c.Classes, c.DigitDim)
	}
	if c.RoutingIterations < 1 {
		return fmt.Errorf("capsnet: need ≥1 routing iteration, got %d", c.RoutingIterations)
	}
	convSpec := tensor.ConvSpec{Cin: c.InputChannels, Cout: c.ConvChannels, K: c.ConvKernel, Stride: c.ConvStride}
	if err := convSpec.Validate(); err != nil {
		return err
	}
	oh, ow := convSpec.OutSize(c.InputH, c.InputW)
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("capsnet: conv kernel %d does not fit input %dx%d", c.ConvKernel, c.InputH, c.InputW)
	}
	if c.PrimaryChannels <= 0 || c.PrimaryDim <= 0 {
		return fmt.Errorf("capsnet: invalid primary caps %d·%d", c.PrimaryChannels, c.PrimaryDim)
	}
	primSpec := tensor.ConvSpec{Cin: c.ConvChannels, Cout: c.PrimaryChannels * c.PrimaryDim, K: c.PrimaryKernel, Stride: c.PrimaryStride}
	if err := primSpec.Validate(); err != nil {
		return err
	}
	ph, pw := primSpec.OutSize(oh, ow)
	if ph <= 0 || pw <= 0 {
		return fmt.Errorf("capsnet: primary kernel %d does not fit conv output %dx%d", c.PrimaryKernel, oh, ow)
	}
	return nil
}

// Network is a complete CapsNet.
type Network struct {
	Config  Config
	Conv    *ConvLayer
	Primary *PrimaryCapsLayer
	Digit   *CapsLayer
	Dec     *Decoder

	// RoutingInputHook, when non-nil, observes (and may mutate) the
	// flattened primary-capsule activations (B×L×DimIn) immediately
	// before the routing procedure. It exists for fault injection
	// (internal/fault's NaN/Inf and forced-panic injectors); nil — the
	// default — costs one pointer check per forward pass.
	RoutingInputHook func(data []float32)

	// Cancel, when non-nil, is polled at the top of every dynamic-
	// routing iteration; returning true aborts the forward pass
	// cooperatively (Output.Aborted is set, the finite guard and length
	// computation are skipped, and the Output carries partial garbage —
	// only Release is meaningful on it). Like Stages and
	// RoutingInputHook this keeps capsnet free of context/serving
	// imports: the serving layer supplies a closure over whatever
	// cancellation source it owns. nil — the default — costs one pointer
	// check per routing run and the routing loop is bit-identical to an
	// unhooked one.
	Cancel CancelCheck

	// IterationLimit, when non-nil, is consulted once per routing run
	// and may lower that run's iteration count below
	// Config.RoutingIterations (values < 1 are clamped to 1; values ≥
	// the configured count are ignored — the hook can only shed work,
	// never add it). The serving layer's brownout controller uses it to
	// trade routing fidelity for latency under overload, the dynamic
	// version of the static iteration-count dial CapsAcc/FastCaps
	// exploit. nil — the default — leaves the iteration count exactly
	// Config.RoutingIterations.
	IterationLimit func() int

	// Stages, when non-nil, observes every stage boundary of a forward
	// pass (conv, primary caps, prediction vectors, each routing
	// iteration and its sub-phases, the finite guard) — the injection
	// point the serving layer's per-stage histograms and request
	// traces hang off without this package importing the observability
	// layer. nil — the default — costs one pointer check per stage
	// site, and the forward pass takes an identical code path except
	// that conv and primary-caps work is timed as two batch-wide
	// stages instead of fused per sample (results are bit-identical
	// either way: per-sample work is independent and ordered the
	// same). Timed results are bit-identical to untimed ones.
	Stages StageTimer

	// Partition pins the dimension the routing workload is sharded on
	// across workers: PartitionAuto (the default) picks per run with
	// the Eqs. 6–12-style execution-score model, PartitionB forces
	// batch sharding, PartitionH forces high-level-capsule sharding.
	// Results are bit-identical under every setting; only the
	// work-to-worker assignment changes.
	Partition Partition

	convH, convW int // conv output spatial size

	// fallbacks counts forward passes' per-sample exact-math routing
	// re-runs triggered by the finite-value guard.
	fallbacks atomic.Uint64

	// Scratch-arena pool state (see arena.go): released scratches
	// await reuse in scratchFree; pool holds the persistent chunk
	// workers; the atomics feed the ArenaBytes / PartitionCounts
	// gauges serving exposes.
	scratchMu sync.Mutex
	//pimcaps:guardedby scratchMu
	scratchFree []*scratch
	poolMu      sync.Mutex
	//pimcaps:guardedby poolMu
	pool *workerPool
	//pimcaps:guardedby poolMu
	poolSpawned int
	arenaFloats atomic.Uint64
	partB       atomic.Uint64
	partH       atomic.Uint64
}

// CancelCheck reports whether an in-flight forward pass should stop
// early. Implementations must be safe to call from the goroutine
// running the forward pass and should be cheap (it is polled once per
// routing iteration); an atomic load is the intended shape. See
// Network.Cancel.
type CancelCheck func() bool

// RoutingFallbacks returns how many samples' routing has been re-run
// with exact math after the approximate path produced non-finite
// values.
func (n *Network) RoutingFallbacks() uint64 { return n.fallbacks.Load() }

// New builds a network from cfg with seeded random initialization.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	conv := NewConvLayer(tensor.ConvSpec{Cin: cfg.InputChannels, Cout: cfg.ConvChannels, K: cfg.ConvKernel, Stride: cfg.ConvStride}, rng)
	oh, ow := conv.Spec.OutSize(cfg.InputH, cfg.InputW)
	primary := NewPrimaryCapsLayer(cfg.ConvChannels, cfg.PrimaryChannels, cfg.PrimaryDim, cfg.PrimaryKernel, cfg.PrimaryStride, rng)
	numL := primary.NumCaps(oh, ow)
	digit := NewCapsLayer(numL, cfg.PrimaryDim, cfg.Classes, cfg.DigitDim, cfg.RoutingIterations, rng)
	if cfg.SharedRouting {
		digit.Mode = RouteBatchShared
	}
	n := &Network{Config: cfg, Conv: conv, Primary: primary, Digit: digit, convH: oh, convW: ow}
	if cfg.WithDecoder {
		n.Dec = NewDecoder(cfg.Classes*cfg.DigitDim, cfg.InputChannels*cfg.InputH*cfg.InputW, rng)
	}
	return n, nil
}

// NumPrimaryCaps returns the number of low-level (primary) capsules.
func (n *Network) NumPrimaryCaps() int { return n.Digit.NumIn }

// Output is the result of a forward pass over one batch.
type Output struct {
	// Capsules holds the final capsule vectors, B×Classes×DigitDim.
	Capsules *tensor.Tensor
	// Lengths holds ‖v_j‖ per class, B×Classes — the class
	// probabilities CapsNet predicts.
	Lengths *tensor.Tensor
	// Routing carries the final routing state (coefficients, logits).
	Routing RoutingResult
	// Primary holds the primary capsules, B×L×DimIn (kept for the
	// trainer).
	Primary *tensor.Tensor
	// ExactFallbacks lists the batch indices whose routing was re-run
	// with ExactMath after the approximate math path produced
	// non-finite capsules (the finite-value guard's degradation
	// ladder: approx → exact). Nil when no sample degraded.
	ExactFallbacks []int
	// NonFinite lists the batch indices whose capsules are still
	// non-finite after the exact-math fallback (e.g. the routing
	// inputs themselves were corrupt); serving layers must fail these
	// samples instead of emitting NaN probabilities.
	NonFinite []int
	// Aborted reports that the Network's Cancel hook stopped the pass
	// between routing iterations: every tensor above holds partial
	// state, the finite guard and lengths never ran, and the only
	// correct use of the Output is Release. Serving layers fail the
	// batch's requests with their own typed error.
	Aborted bool

	// scr is the scratch arena backing every tensor above; Release
	// returns it to the Network's pool (see arena.go).
	scr *scratch
}

// Predictions returns the argmax class per batch element.
func (o *Output) Predictions() []int {
	nb, nc := o.Lengths.Dim(0), o.Lengths.Dim(1)
	out := make([]int, nb)
	for k := 0; k < nb; k++ {
		out[k] = tensor.ArgMax(o.Lengths.Data()[k*nc : (k+1)*nc])
	}
	return out
}

// Forward runs the encoder on a batch of images (B×C×H×W) with the
// given routing math.
//
// Every tensor the returned Output exposes is a view over a pooled
// scratch arena owned by the Network; call Output.Release when done
// with it to make the steady-state forward path allocation-free, or
// simply keep the Output (and its buffers) by never releasing it.
func (n *Network) Forward(batch *tensor.Tensor, mathOps RoutingMath) *Output {
	if batch.Rank() != 4 {
		panic(fmt.Sprintf("capsnet: Forward wants B×C×H×W, got %v", batch.Shape()))
	}
	scr := n.acquireScratch(batch.Dim(0))
	scr.in = batch.Data()
	return n.forward(scr, mathOps)
}

// forward is the scratch-arena forward core shared by Forward and
// ForwardBatch: the input images are already bound at scr.in and every
// intermediate lives in scr's arena. The computation — per-sample
// conv/primary-caps work, Eq. 1 prediction vectors, the routing loop,
// the finite guard, the ‖v_j‖ lengths — is stage-for-stage the one the
// pre-arena path ran, with identical loop nests and accumulation
// orders, so outputs are bit-identical; only buffer ownership changed.
func (n *Network) forward(scr *scratch, mathOps RoutingMath) *Output {
	scr.math = mathOps
	scr.bind()
	nb := scr.nb
	st := n.Stages
	if st == nil {
		// Untimed fast path: conv and primary caps fused per sample.
		scr.runChunks(nb, scr.convPrimFn)
	} else {
		// Timed path: the same per-sample computations, split into two
		// batch-wide stages so conv and primary-caps time can be
		// attributed separately. Each sample's work and accumulation
		// order are unchanged, so outputs stay bit-identical to the
		// fused loop (TestStageTimerPreservesOutputs holds this).
		end := beginStage(st, StageConv, -1)
		scr.runChunks(nb, scr.convFn)
		endStage(end)
		end = beginStage(st, StagePrimaryCaps, -1)
		scr.runChunks(nb, scr.primFn)
		endStage(end)
	}
	if hook := n.RoutingInputHook; hook != nil {
		hook(scr.uT.Data())
	}
	end := beginStage(st, StagePredictionVectors, -1)
	scr.runChunks(n.Digit.NumIn, scr.predFn)
	endStage(end)
	scr.routing(st)
	out := &scr.out
	out.Capsules = scr.vT
	out.Lengths = scr.lengthsT
	out.Routing = RoutingResult{V: scr.vT, C: scr.cT, B: scr.bT}
	out.Primary = scr.uT
	out.ExactFallbacks = nil
	out.NonFinite = nil
	out.Aborted = scr.aborted
	out.scr = scr
	if scr.aborted {
		// Cooperative abort: the caller only wants the arena back, so
		// the finite guard and length computation — work on partial
		// routing state — are skipped entirely.
		return out
	}
	end = beginStage(st, StageFiniteGuard, -1)
	n.finiteGuard(scr.uT, out, mathOps)
	endStage(end)
	end = beginStage(st, StageLengths, -1)
	nc, dd := n.Config.Classes, n.Config.DigitDim
	for k := 0; k < nb; k++ {
		for j := 0; j < nc; j++ {
			off := (k*nc + j) * dd
			scr.lengths[k*nc+j] = tensor.Norm(scr.v[off : off+dd])
		}
	}
	endStage(end)
	return out
}

// allFinite reports whether every element of xs is a finite float32
// (exponent field not all-ones, covering both NaN and ±Inf).
func allFinite(xs []float32) bool {
	for _, v := range xs {
		if math.Float32bits(v)&0x7f800000 == 0x7f800000 {
			return false
		}
	}
	return true
}

// finiteGuard is the routing-level degradation ladder: after the
// digit layer ran with mathOps, any sample whose output capsules are
// non-finite (the bit-trick approximations of internal/fp32 saturate
// to 0/±Inf and can amplify to NaN) has its routing re-run with
// ExactMath — the host-precision path — and the fallback counted.
// Samples still non-finite after the exact re-run (corrupt inputs,
// flipped weights) are reported in out.NonFinite so the serving layer
// can fail them individually instead of crashing or emitting NaN.
func (n *Network) finiteGuard(u *tensor.Tensor, out *Output, mathOps RoutingMath) {
	nb := u.Dim(0)
	rowV := n.Digit.NumOut * n.Digit.DimOut
	vd := out.Routing.V.Data()
	_, exact := mathOps.(ExactMath)
	for k := 0; k < nb; k++ {
		if allFinite(vd[k*rowV : (k+1)*rowV]) {
			continue
		}
		if !exact {
			n.rerouteSample(u, &out.Routing, k)
			n.fallbacks.Add(1)
			out.ExactFallbacks = append(out.ExactFallbacks, k)
			if allFinite(vd[k*rowV : (k+1)*rowV]) {
				continue
			}
		}
		out.NonFinite = append(out.NonFinite, k)
	}
}

// rerouteSample re-runs the digit layer's routing for batch element k
// alone with ExactMath, splicing the recovered capsules, coefficients
// and logits back into res. Under RoutePerSample this reproduces
// exactly what a full exact-math batch pass would compute for that
// sample.
func (n *Network) rerouteSample(u *tensor.Tensor, res *RoutingResult, k int) {
	numL, dimIn := n.Digit.NumIn, n.Digit.DimIn
	uk := tensor.FromSlice(u.Data()[k*numL*dimIn:(k+1)*numL*dimIn], 1, numL, dimIn)
	rk := n.Digit.Forward(uk, ExactMath{})
	rowV := n.Digit.NumOut * n.Digit.DimOut
	rowC := numL * n.Digit.NumOut
	copy(res.V.Data()[k*rowV:(k+1)*rowV], rk.V.Data())
	copy(res.C.Data()[k*rowC:(k+1)*rowC], rk.C.Data())
	copy(res.B.Data()[k*rowC:(k+1)*rowC], rk.B.Data())
}

// Reconstruct runs the decoder on the capsules of batch element k,
// masking all but class j (the standard CapsNet reconstruction).
// It panics if the network was built without a decoder.
func (n *Network) Reconstruct(out *Output, k, j int) []float32 {
	if n.Dec == nil {
		panic("capsnet: network has no decoder")
	}
	nc, dd := n.Config.Classes, n.Config.DigitDim
	masked := make([]float32, nc*dd)
	copy(masked[j*dd:(j+1)*dd], out.Capsules.Data()[(k*nc+j)*dd:(k*nc+j+1)*dd])
	return n.Dec.Forward(masked)
}
