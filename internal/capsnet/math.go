// Package capsnet is a from-scratch Capsule Network library: Conv and
// PrimaryCaps front end, capsule layers connected by the dynamic
// routing procedure of Sabour et al. (per-sample, or batch-shared as
// in the PIM-CapsNet paper's Alg. 1), an EM-routing variant, a
// fully-connected reconstruction decoder, margin loss, two trainers
// (capsule-layer-only and full end-to-end backpropagation with
// momentum/weight-decay), checkpoint serialization, and the
// pooling-CNN baseline of the paper's §1 motivation.
//
// All routing arithmetic goes through the RoutingMath interface so the
// same code runs both the host-GPU reference numerics (ExactMath) and
// the PIM-CapsNet processing-element approximations (PEMath), which is
// how the Table 5 accuracy experiments are produced.
package capsnet

import (
	"math"

	"pimcapsnet/internal/fp32"
)

// RoutingMath supplies the three special functions the routing
// procedure needs beyond multiply-accumulate: exponential (softmax,
// Eq. 5), inverse square root and reciprocal (squash, Eq. 3).
type RoutingMath interface {
	// Exp returns e^x.
	Exp(x float32) float32
	// InvSqrt returns 1/√x for x ≥ 0.
	InvSqrt(x float32) float32
	// Recip returns 1/x.
	Recip(x float32) float32
}

// ExactMath evaluates the special functions with full host precision —
// the numerics of the GPU baseline.
type ExactMath struct{}

// Exp implements RoutingMath.
func (ExactMath) Exp(x float32) float32 { return float32(math.Exp(float64(x))) }

// InvSqrt implements RoutingMath.
func (ExactMath) InvSqrt(x float32) float32 { return float32(1 / math.Sqrt(float64(x))) }

// Recip implements RoutingMath.
func (ExactMath) Recip(x float32) float32 { return 1 / x }

// PEMath evaluates the special functions exactly as the PIM-CapsNet
// vault PEs would: bit-shifting approximations from internal/fp32,
// each optionally followed by the one-multiply accuracy recovery.
type PEMath struct {
	// Recovery holds the calibrated per-function scale factors.
	// Use fp32.Identity for the "w/o Accuracy Recovery" rows of
	// Table 5 and fp32.Default for the "w/ Accuracy Recovery" rows.
	Recovery fp32.Recovery
}

// NewPEMath returns PEMath with the default calibrated recovery.
func NewPEMath() PEMath { return PEMath{Recovery: fp32.Default} }

// NewPEMathNoRecovery returns PEMath with recovery disabled.
func NewPEMathNoRecovery() PEMath { return PEMath{Recovery: fp32.Identity} }

// Exp implements RoutingMath.
func (m PEMath) Exp(x float32) float32 { return fp32.ApproxExp(x) * m.Recovery.Exp }

// InvSqrt implements RoutingMath.
func (m PEMath) InvSqrt(x float32) float32 { return fp32.FastInvSqrt(x) * m.Recovery.InvSqrt }

// Recip implements RoutingMath.
func (m PEMath) Recip(x float32) float32 { return fp32.FastRecip(x) * m.Recovery.Recip }

// softmaxRows computes, with the given math, the row-wise softmax of
// Eq. 5: for each low-level capsule i, c_i· = softmax(b_i·) over the
// high-level capsules. b and c are L×H matrices in row-major order; c
// may alias b.
//
//pimcaps:hotpath
func softmaxRows(mathOps RoutingMath, c, b []float32, nl, nh int) {
	for i := 0; i < nl; i++ {
		row := b[i*nh : (i+1)*nh]
		out := c[i*nh : (i+1)*nh]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for j, v := range row {
			e := mathOps.Exp(v - maxv)
			out[j] = e
			sum += e
		}
		if sum == 0 {
			uniform := float32(1) / float32(nh)
			for j := range out {
				out[j] = uniform
			}
			continue
		}
		inv := mathOps.Recip(sum)
		for j := range out {
			out[j] *= inv
		}
	}
}

// squashInto applies Eq. 3 with the given math, writing into dst
// (which may alias src): v = (|s|²/(1+|s|²))·(s/|s|), evaluated as
// |s|²·recip(1+|s|²)·invsqrt(|s|²)·s.
//
//pimcaps:hotpath
func squashInto(mathOps RoutingMath, dst, src []float32) {
	var sq float32
	for _, v := range src {
		sq += v * v
	}
	if sq == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	scale := sq * mathOps.Recip(1+sq) * mathOps.InvSqrt(sq)
	for i := range src {
		dst[i] = src[i] * scale
	}
}
