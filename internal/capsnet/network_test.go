package capsnet

import (
	"math/rand"
	"testing"

	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	if err := MNISTConfig().Validate(); err != nil {
		t.Fatalf("MNISTConfig invalid: %v", err)
	}
	if err := TinyConfig(4).Validate(); err != nil {
		t.Fatalf("TinyConfig invalid: %v", err)
	}
	bad := TinyConfig(4)
	bad.ConvKernel = 50
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized kernel accepted")
	}
	bad2 := TinyConfig(4)
	bad2.RoutingIterations = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero iterations accepted")
	}
	bad3 := TinyConfig(0)
	if err := bad3.Validate(); err == nil {
		t.Fatal("zero classes accepted")
	}
}

func TestNetworkForwardShapes(t *testing.T) {
	net, err := New(TinyConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Tiny: 12×12 → conv 5/1 → 8×8 → primary 5/2 → 2×2 ×4ch = 16 L caps.
	if got := net.NumPrimaryCaps(); got != 16 {
		t.Fatalf("NumPrimaryCaps = %d, want 16", got)
	}
	batch := tensor.New(3, 1, 12, 12)
	rng := rand.New(rand.NewSource(1))
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	out := net.Forward(batch, ExactMath{})
	if sh := out.Capsules.Shape(); sh[0] != 3 || sh[1] != 4 || sh[2] != 16 {
		t.Fatalf("capsule shape %v", sh)
	}
	if sh := out.Lengths.Shape(); sh[0] != 3 || sh[1] != 4 {
		t.Fatalf("lengths shape %v", sh)
	}
	for _, l := range out.Lengths.Data() {
		if l < 0 || l > 1.0000001 {
			t.Fatalf("capsule length %v outside [0,1]", l)
		}
	}
	if got := len(out.Predictions()); got != 3 {
		t.Fatalf("predictions length %d", got)
	}
}

func TestNetworkDeterministic(t *testing.T) {
	cfg := TinyConfig(3)
	n1, _ := New(cfg)
	n2, _ := New(cfg)
	batch := tensor.New(1, 1, 12, 12)
	for i := range batch.Data() {
		batch.Data()[i] = float32(i%7) / 7
	}
	o1 := n1.Forward(batch, ExactMath{})
	o2 := n2.Forward(batch, ExactMath{})
	if !o1.Capsules.Equal(o2.Capsules) {
		t.Fatal("same seed must give identical networks")
	}
}

func TestNetworkWithDecoderReconstructs(t *testing.T) {
	cfg := TinyConfig(3)
	cfg.WithDecoder = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := tensor.New(1, 1, 12, 12)
	out := net.Forward(batch, ExactMath{})
	recon := net.Reconstruct(out, 0, 1)
	if len(recon) != 144 {
		t.Fatalf("reconstruction length %d, want 144", len(recon))
	}
	for _, v := range recon {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid output %v outside [0,1]", v)
		}
	}
}

func TestReconstructWithoutDecoderPanics(t *testing.T) {
	net, _ := New(TinyConfig(3))
	out := net.Forward(tensor.New(1, 1, 12, 12), ExactMath{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without decoder")
		}
	}()
	net.Reconstruct(out, 0, 0)
}

func TestPrimaryCapsOutputSquashed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewPrimaryCapsLayer(4, 2, 8, 3, 1, rng)
	in := tensor.New(4, 6, 6)
	for i := range in.Data() {
		in.Data()[i] = float32(rng.NormFloat64())
	}
	caps := l.Forward(in)
	n := caps.Dim(0)
	if n != l.NumCaps(6, 6) {
		t.Fatalf("got %d caps, want %d", n, l.NumCaps(6, 6))
	}
	for i := 0; i < n; i++ {
		if tensor.Norm(caps.Data()[i*8:(i+1)*8]) > 1.0000001 {
			t.Fatalf("capsule %d not squashed", i)
		}
	}
}

func TestFCLayerActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	relu := NewFCLayer(4, 8, ActReLU, rng)
	out := relu.Forward([]float32{1, -1, 0.5, 2})
	for _, v := range out {
		if v < 0 {
			t.Fatal("ReLU output negative")
		}
	}
	sig := NewFCLayer(4, 8, ActSigmoid, rng)
	out = sig.Forward([]float32{1, -1, 0.5, 2})
	for _, v := range out {
		if v <= 0 || v >= 1 {
			t.Fatal("sigmoid output outside (0,1)")
		}
	}
	none := NewFCLayer(2, 1, ActNone, rng)
	none.Weights.Set(1, 0, 0)
	none.Weights.Set(1, 0, 1)
	none.Bias[0] = -5
	if got := none.Forward([]float32{2, 3})[0]; got != 0 {
		t.Fatalf("linear layer = %v, want 0", got)
	}
}

func TestMarginLoss(t *testing.T) {
	// Perfect prediction: correct class at length ≥ m+, others ≤ m−.
	lengths := []float32{0.95, 0.05, 0.02}
	if l := MarginLoss(lengths, 0); l != 0 {
		t.Fatalf("perfect prediction loss %v, want 0", l)
	}
	// Worst case: correct at 0, wrong at 1.
	lengths = []float32{0, 1, 1}
	l := MarginLoss(lengths, 0)
	want := float32(MarginPlus*MarginPlus) + 2*MarginDown*float32((1-MarginMinus)*(1-MarginMinus))
	if absf(l-want) > 1e-5 {
		t.Fatalf("worst-case loss %v, want %v", l, want)
	}
}

func TestMarginLossGradSigns(t *testing.T) {
	lengths := []float32{0.5, 0.5}
	g := MarginLossGrad(lengths, 0)
	if g[0] >= 0 {
		t.Fatal("gradient must push correct class length up (negative grad)")
	}
	if g[1] <= 0 {
		t.Fatal("gradient must push wrong class length down (positive grad)")
	}
	// Beyond margins: zero gradient.
	g = MarginLossGrad([]float32{0.95, 0.05}, 0)
	if g[0] != 0 || g[1] != 0 {
		t.Fatalf("gradient beyond margins %v, want zeros", g)
	}
}

func TestReconstructionLoss(t *testing.T) {
	if ReconstructionLoss([]float32{1, 2}, []float32{1, 2}) != 0 {
		t.Fatal("identical vectors must have zero loss")
	}
	if got := ReconstructionLoss([]float32{1}, []float32{0}); absf(got-0.0005) > 1e-9 {
		t.Fatalf("loss %v, want 0.0005", got)
	}
}

func TestTrainerLearnsSyntheticClasses(t *testing.T) {
	// End-to-end: train the capsule layer on the tiny synthetic
	// dataset and verify accuracy climbs well above chance.
	spec := dataset.Tiny(3)
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(60)
	test := gen.Generate(30)

	cfg := TinyConfig(3)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(net, 1.0)
	imgLen := 12 * 12
	for epoch := 0; epoch < 25; epoch++ {
		for b := 0; b < 60; b += 15 {
			batch := tensor.FromSlice(train.Images.Data()[b*imgLen:(b+15)*imgLen], 15, 1, 12, 12)
			tr.TrainBatch(batch, train.Labels[b:b+15])
		}
	}
	acc := Evaluate(net, test.Images, test.Labels, ExactMath{})
	if acc < 0.8 {
		t.Fatalf("trained accuracy %.2f below 0.8 — trainer failed to learn", acc)
	}
}

func TestTrainerReducesLoss(t *testing.T) {
	spec := dataset.Tiny(2)
	gen := dataset.NewGenerator(spec)
	ds := gen.Generate(20)
	net, _ := New(TinyConfig(2))
	tr := NewTrainer(net, 0.3)
	first, _ := tr.TrainBatch(ds.Images, ds.Labels)
	var last float32
	for i := 0; i < 10; i++ {
		last, _ = tr.TrainBatch(ds.Images, ds.Labels)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %v, last %v", first, last)
	}
}

func TestTrainBatchLabelMismatchPanics(t *testing.T) {
	net, _ := New(TinyConfig(2))
	tr := NewTrainer(net, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label/batch mismatch")
		}
	}()
	tr.TrainBatch(tensor.New(2, 1, 12, 12), []int{0})
}

func absf(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
