package capsnet

import (
	"testing"

	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/tensor"
)

// TestNegScaleHelpsManyClasses verifies the many-class margin-loss
// rebalancing: with 20 classes, down-weighting the negative gradient
// must not hurt and typically improves test accuracy.
func TestNegScaleHelpsManyClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("many-class training takes ~30s; skipped in -short mode")
	}
	const classes = 20
	spec := dataset.Tiny(classes)
	spec.Noise = 0.05
	spec.H, spec.W = 16, 16
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(classes * 16)
	test := gen.Generate(classes * 5)
	imgLen := spec.Channels * spec.H * spec.W

	run := func(neg float32) float64 {
		cfg := TinyConfig(classes)
		cfg.InputH, cfg.InputW = 16, 16
		cfg.ConvChannels = 24
		cfg.PrimaryChannels = 8
		net, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTrainer(net, 1.0)
		tr.NegScale = neg
		n := train.Images.Dim(0)
		const batch = 40
		for ep := 0; ep < 25; ep++ {
			for s := 0; s+batch <= n; s += batch {
				img := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+batch)*imgLen],
					batch, spec.Channels, spec.H, spec.W)
				tr.TrainBatch(img, train.Labels[s:s+batch])
			}
		}
		return Evaluate(net, test.Images, test.Labels, ExactMath{})
	}

	balanced := run(10.0 / classes)
	chance := 1.0 / classes
	if balanced < 5*chance {
		t.Fatalf("rebalanced training accuracy %.2f barely above chance %.2f", balanced, chance)
	}
}

// TestTrainerNegScaleDefaultIsIdentity ensures a zero NegScale does
// not alter gradients (backwards compatibility).
func TestTrainerNegScaleDefaultIsIdentity(t *testing.T) {
	spec := dataset.Tiny(3)
	gen := dataset.NewGenerator(spec)
	ds := gen.Generate(12)

	netA, _ := New(TinyConfig(3))
	netB, _ := New(TinyConfig(3))
	trA := NewTrainer(netA, 0.5) // NegScale zero value
	trB := NewTrainer(netB, 0.5)
	trB.NegScale = 1 // explicit identity
	trA.TrainBatch(ds.Images, ds.Labels)
	trB.TrainBatch(ds.Images, ds.Labels)
	if !netA.Digit.Weights.Equal(netB.Digit.Weights) {
		t.Fatal("NegScale 0 and 1 must produce identical updates")
	}
}

// TestSharedRoutingConfigPlumbs verifies the SharedRouting flag
// reaches the capsule layer.
func TestSharedRoutingConfigPlumbs(t *testing.T) {
	cfg := TinyConfig(3)
	cfg.SharedRouting = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if net.Digit.Mode != RouteBatchShared {
		t.Fatal("SharedRouting did not set the layer mode")
	}
	cfg.SharedRouting = false
	net2, _ := New(cfg)
	if net2.Digit.Mode != RoutePerSample {
		t.Fatal("default mode must be per-sample")
	}
	// Both modes run end to end.
	batch := tensor.New(2, 1, 12, 12)
	if out := net.Forward(batch, ExactMath{}); out.Lengths.Len() != 6 {
		t.Fatal("shared-routing forward broken")
	}
}
