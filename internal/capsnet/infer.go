package capsnet

import "fmt"

// ImageLen returns the flattened length of one input image
// (Channels·H·W), the element count every inference entry point
// expects per sample.
func (n *Network) ImageLen() int {
	return n.Config.InputChannels * n.Config.InputH * n.Config.InputW
}

// ForwardBatch is the batched-inference entry point for serving: it
// assembles the given images (each exactly ImageLen long) into one
// B×C×H×W batch and runs Forward, so a micro-batch of independent
// requests shares one pass through conv/primary/routing.
//
// Concurrency: ForwardBatch (and Forward) only read layer weights and
// work in a per-call scratch arena, so any number of goroutines may
// run them concurrently on the same Network, provided nothing mutates
// the weights at the same time (Trainer.TrainBatch does — training and
// serving must not share a Network). Each concurrent call acquires its
// own scratch from the pool (or builds one), so calls never share
// buffers; release each call's Output when done to keep the pool —
// and the allocation-free steady state — effective. Under
// RoutePerSample routing each sample is processed independently, so
// results are bit-identical regardless of how requests are grouped
// into batches.
func (n *Network) ForwardBatch(images [][]float32, mathOps RoutingMath) *Output {
	if len(images) == 0 {
		panic("capsnet: ForwardBatch needs at least one image")
	}
	imgLen := n.ImageLen()
	for k, img := range images {
		if len(img) != imgLen {
			panic(fmt.Sprintf("capsnet: ForwardBatch image %d has %d pixels, want %d", k, len(img), imgLen))
		}
	}
	scr := n.acquireScratch(len(images))
	for k, img := range images {
		copy(scr.batch[k*imgLen:(k+1)*imgLen], img)
	}
	scr.in = scr.batch
	return n.forward(scr, mathOps)
}
