package capsnet

import (
	"math/rand"
	"testing"

	"pimcapsnet/internal/tensor"
	"pimcapsnet/internal/workload"
)

// TestMNISTConfigMatchesTable1Geometry ties the functional library to
// the workload model: the real CapsNet-MNIST network must produce
// exactly the primary-capsule count Table 1 lists for Caps-MN1.
func TestMNISTConfigMatchesTable1Geometry(t *testing.T) {
	net, err := New(MNISTConfig())
	if err != nil {
		t.Fatal(err)
	}
	mn1, err := workload.ByName("Caps-MN1")
	if err != nil {
		t.Fatal(err)
	}
	if net.NumPrimaryCaps() != mn1.NumL {
		t.Fatalf("functional network has %d primary capsules, Table 1 says %d", net.NumPrimaryCaps(), mn1.NumL)
	}
	if net.Digit.NumOut != mn1.NumH || net.Digit.DimOut != mn1.DimH || net.Digit.DimIn != mn1.DimL {
		t.Fatal("capsule geometry diverges from the workload model")
	}
	if net.Digit.Iterations != mn1.Iters {
		t.Fatal("routing iterations diverge from Table 1")
	}
}

// TestFullScaleMNISTForward runs one real 28×28 image through the
// full CapsNet-MNIST network — the exact inference the paper's GPU
// baseline executes — and sanity-checks the output. Heavy (~1 s), so
// skipped in -short mode.
func TestFullScaleMNISTForward(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale forward skipped in -short mode")
	}
	net, err := New(MNISTConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	batch := tensor.New(1, 1, 28, 28)
	for i := range batch.Data() {
		batch.Data()[i] = rng.Float32()
	}
	out := net.Forward(batch, ExactMath{})
	if sh := out.Capsules.Shape(); sh[0] != 1 || sh[1] != 10 || sh[2] != 16 {
		t.Fatalf("capsule shape %v", sh)
	}
	for j, l := range out.Lengths.Data() {
		if l < 0 || l > 1.0000001 {
			t.Fatalf("class %d length %v outside [0,1]", j, l)
		}
	}
	recon := net.Reconstruct(out, 0, out.Predictions()[0])
	if len(recon) != 784 {
		t.Fatalf("reconstruction length %d", len(recon))
	}
	// The PE-approximated path must agree on the full-scale network
	// within the Table 5 tolerance.
	pe := net.Forward(batch, NewPEMath())
	if !pe.Lengths.AllClose(out.Lengths, 0.1, 0.02) {
		t.Fatal("full-scale PE routing diverged from exact routing")
	}
}
