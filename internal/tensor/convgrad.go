package tensor

import "fmt"

// Col2Im scatters a gradient matrix of shape (oh*ow) × (Cin*K*K) —
// the layout Im2Col produces — back into an input-shaped (Cin×H×W)
// tensor, accumulating where patches overlap. It is the adjoint of
// Im2Col and the core of the convolution backward pass.
func Col2Im(cols *Tensor, spec ConvSpec, h, w int) *Tensor {
	oh, ow := spec.OutSize(h, w)
	if cols.Rank() != 2 || cols.Dim(0) != oh*ow || cols.Dim(1) != spec.Cin*spec.K*spec.K {
		panic(fmt.Sprintf("tensor: Col2Im cols %v, want [%d %d]", cols.Shape(), oh*ow, spec.Cin*spec.K*spec.K))
	}
	out := New(spec.Cin, h, w)
	od := out.Data()
	cd := cols.Data()
	row := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			base := row * spec.Cin * spec.K * spec.K
			p := 0
			for c := 0; c < spec.Cin; c++ {
				chOff := c * h * w
				for ky := 0; ky < spec.K; ky++ {
					dstOff := chOff + (oy*spec.Stride+ky)*w + ox*spec.Stride
					for kx := 0; kx < spec.K; kx++ {
						od[dstOff+kx] += cd[base+p]
						p++
					}
				}
			}
			row++
		}
	}
	return out
}

// ConvGrads holds the gradients of a Conv2D call.
type ConvGrads struct {
	DWeights *Tensor   // Cout × (Cin·K·K)
	DBias    []float32 // Cout
	DInput   *Tensor   // Cin × H × W (nil if input gradient not requested)
}

// Conv2DBackward computes gradients of Conv2D: given the forward
// input, the weights and the output gradient dOut (Cout×oh×ow), it
// returns dWeights, dBias and (when wantInput) dInput.
func Conv2DBackward(input, weights, dOut *Tensor, spec ConvSpec, wantInput bool) ConvGrads {
	h, w := input.Dim(1), input.Dim(2)
	oh, ow := spec.OutSize(h, w)
	if dOut.Rank() != 3 || dOut.Dim(0) != spec.Cout || dOut.Dim(1) != oh || dOut.Dim(2) != ow {
		panic(fmt.Sprintf("tensor: Conv2DBackward dOut %v, want [%d %d %d]", dOut.Shape(), spec.Cout, oh, ow))
	}
	n := oh * ow
	kk := spec.Cin * spec.K * spec.K
	cols := Im2Col(input, spec) // n × kk

	g := ConvGrads{DWeights: New(spec.Cout, kk), DBias: make([]float32, spec.Cout)}
	dw := g.DWeights.Data()
	dod := dOut.Data()
	cd := cols.Data()
	for co := 0; co < spec.Cout; co++ {
		grow := dod[co*n : (co+1)*n]
		var bsum float32
		wrow := dw[co*kk : (co+1)*kk]
		for r := 0; r < n; r++ {
			gv := grow[r]
			bsum += gv
			if gv == 0 {
				continue
			}
			crow := cd[r*kk : (r+1)*kk]
			for j, v := range crow {
				wrow[j] += gv * v
			}
		}
		g.DBias[co] = bsum
	}

	if wantInput {
		// dCols[r][j] = Σ_co dOut[co][r]·W[co][j], then scatter.
		dcols := New(n, kk)
		dcd := dcols.Data()
		wd := weights.Data()
		for co := 0; co < spec.Cout; co++ {
			grow := dod[co*n : (co+1)*n]
			wrow := wd[co*kk : (co+1)*kk]
			for r := 0; r < n; r++ {
				gv := grow[r]
				if gv == 0 {
					continue
				}
				drow := dcd[r*kk : (r+1)*kk]
				for j, v := range wrow {
					drow[j] += gv * v
				}
			}
		}
		g.DInput = Col2Im(dcols, spec, h, w)
	}
	return g
}
