//pimcaps:bitexact

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), g> == <x, Col2Im(g)> for random x, g — the defining
	// adjoint property.
	rng := rand.New(rand.NewSource(1))
	spec := ConvSpec{Cin: 2, Cout: 1, K: 3, Stride: 2}
	h, w := 7, 9
	x := New(2, h, w)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	cols := Im2Col(x, spec)
	g := New(cols.Dim(0), cols.Dim(1))
	for i := range g.Data() {
		g.Data()[i] = float32(rng.NormFloat64())
	}
	lhs := float64(Dot(cols.Data(), g.Data()))
	back := Col2Im(g, spec, h, w)
	rhs := float64(Dot(x.Data(), back.Data()))
	if math.Abs(lhs-rhs) > 1e-3*math.Abs(lhs)+1e-4 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestCol2ImShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad cols shape")
		}
	}()
	Col2Im(New(3, 3), ConvSpec{Cin: 1, Cout: 1, K: 2, Stride: 1}, 5, 5)
}

// numericalConvGrad estimates d(sum(out·mask))/dθ by central
// differences for a single parameter.
func numericalLoss(input, weights *Tensor, bias []float32, spec ConvSpec, mask *Tensor) float64 {
	out := Conv2D(input, weights, bias, spec)
	return float64(Dot(out.Data(), mask.Data()))
}

func TestConv2DBackwardMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := ConvSpec{Cin: 2, Cout: 3, K: 3, Stride: 1}
	h, w := 5, 6
	input := New(2, h, w)
	for i := range input.Data() {
		input.Data()[i] = float32(rng.NormFloat64())
	}
	weights := New(3, 2*3*3)
	for i := range weights.Data() {
		weights.Data()[i] = float32(rng.NormFloat64()) * 0.3
	}
	bias := []float32{0.1, -0.2, 0.05}
	oh, ow := spec.OutSize(h, w)
	mask := New(3, oh, ow)
	for i := range mask.Data() {
		mask.Data()[i] = float32(rng.NormFloat64())
	}

	g := Conv2DBackward(input, weights, mask, spec, true)

	const eps = 1e-3
	check := func(name string, param []float32, grad []float32, idxs []int) {
		for _, i := range idxs {
			orig := param[i]
			param[i] = orig + eps
			up := numericalLoss(input, weights, bias, spec, mask)
			param[i] = orig - eps
			down := numericalLoss(input, weights, bias, spec, mask)
			param[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-float64(grad[i])) > 2e-2*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, grad[i], num)
			}
		}
	}
	check("dW", weights.Data(), g.DWeights.Data(), []int{0, 5, 17, 30, 53})
	check("dBias", bias, g.DBias, []int{0, 1, 2})
	check("dInput", input.Data(), g.DInput.Data(), []int{0, 7, 23, 40, 59})
}

func TestConv2DBackwardNoInput(t *testing.T) {
	spec := ConvSpec{Cin: 1, Cout: 1, K: 2, Stride: 1}
	input := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	weights := FromSlice([]float32{1, 0, 0, 1}, 1, 4)
	dOut := FromSlice([]float32{1}, 1, 1, 1)
	g := Conv2DBackward(input, weights, dOut, spec, false)
	if g.DInput != nil {
		t.Fatal("DInput should be nil when not requested")
	}
	// dW = input patch, dBias = 1.
	want := []float32{1, 2, 3, 4}
	for i, v := range g.DWeights.Data() {
		if v != want[i] {
			t.Fatalf("dW = %v", g.DWeights.Data())
		}
	}
	if g.DBias[0] != 1 {
		t.Fatalf("dBias = %v", g.DBias)
	}
}

func TestConv2DBackwardBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dOut shape mismatch")
		}
	}()
	spec := ConvSpec{Cin: 1, Cout: 1, K: 2, Stride: 1}
	Conv2DBackward(New(1, 4, 4), New(1, 4), New(1, 2, 2), spec, false)
}
