//pimcaps:bitexact

package tensor

import "testing"

func TestMaxPool2DKnown(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, arg := MaxPool2D(in, 2)
	want := []float32{6, 8, 14, 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("pooled %v, want %v", out.Data(), want)
		}
	}
	// argmax indices point at the max positions in the input.
	for i, idx := range arg {
		if in.Data()[idx] != want[i] {
			t.Fatalf("arg[%d] = %d points at %v, want %v", i, idx, in.Data()[idx], want[i])
		}
	}
}

func TestMaxPool2DBackwardRoutesToArgmax(t *testing.T) {
	in := FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 2, 2)
	_, arg := MaxPool2D(in, 2)
	dOut := FromSlice([]float32{7}, 1, 1, 1)
	din := MaxPool2DBackward(dOut, arg, 1, 2, 2)
	want := []float32{0, 0, 0, 7}
	for i, v := range din.Data() {
		if v != want[i] {
			t.Fatalf("dInput %v, want %v", din.Data(), want)
		}
	}
}

func TestMaxPool2DPanics(t *testing.T) {
	cases := []func(){
		func() { MaxPool2D(New(2, 2), 2) },                               // wrong rank
		func() { MaxPool2D(New(1, 2, 2), 0) },                            // bad window
		func() { MaxPool2D(New(1, 2, 2), 5) },                            // window too big
		func() { MaxPool2DBackward(New(1, 1, 1), []int{0, 1}, 1, 2, 2) }, // mismatch
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMaxPool2DNonSquareAndMultiChannel(t *testing.T) {
	in := New(2, 6, 4)
	for i := range in.Data() {
		in.Data()[i] = float32(i)
	}
	out, arg := MaxPool2D(in, 2)
	if out.Dim(0) != 2 || out.Dim(1) != 3 || out.Dim(2) != 2 {
		t.Fatalf("shape %v", out.Shape())
	}
	if len(arg) != out.Len() {
		t.Fatal("argmax length mismatch")
	}
	// With increasing values the max is always the bottom-right of
	// each window.
	if out.At(0, 0, 0) != in.At(0, 1, 1) {
		t.Fatal("wrong max")
	}
}
