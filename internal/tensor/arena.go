package tensor

import "fmt"

// Arena is a bump allocator over one contiguous float32 slab. It
// exists so a hot path can size all of its scratch buffers once, carve
// them out of a single allocation, and reuse them forever: the CapsNet
// forward pass binds every per-call tensor (prediction vectors,
// routing logits and couplings, votes, conv im2col columns) to arena
// slices, which is what takes its steady-state heap allocations to
// zero — the software analogue of the on-chip buffer management that
// CapsAcc/DESCNet-style accelerators use for data reuse.
//
// An Arena is not safe for concurrent Alloc calls; carve buffers up
// front, then share the carved slices as the caller's own locking
// discipline allows.
type Arena struct {
	buf []float32
	off int
}

// NewArena returns an arena over a fresh slab of n float32s.
func NewArena(n int) *Arena {
	if n < 0 {
		panic(fmt.Sprintf("tensor: negative arena size %d", n))
	}
	return &Arena{buf: make([]float32, n)}
}

// Alloc carves the next n float32s out of the slab. The returned slice
// has capacity exactly n (a three-index slice), so an accidental
// append cannot bleed into a neighbouring buffer. It panics when the
// slab is exhausted — arena consumers size the slab exactly, so
// exhaustion is a sizing bug, not a runtime condition.
func (a *Arena) Alloc(n int) []float32 {
	if n < 0 {
		panic(fmt.Sprintf("tensor: negative arena alloc %d", n))
	}
	if a.off+n > len(a.buf) {
		panic(fmt.Sprintf("tensor: arena exhausted (%d of %d used, want %d more)", a.off, len(a.buf), n))
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// Reset rewinds the arena so the slab can be carved again. Previously
// returned slices keep aliasing the slab; Reset is for consumers that
// re-plan their whole layout (e.g. growing to a larger batch).
func (a *Arena) Reset() { a.off = 0 }

// Size returns the slab length in float32s.
func (a *Arena) Size() int { return len(a.buf) }

// Used returns how many float32s have been carved since the last
// Reset.
func (a *Arena) Used() int { return a.off }
