// Package tensor provides the dense FP32 tensor type and the numeric
// kernels (matrix multiply, im2col convolution, reductions, softmax and
// squash) that the CapsNet library in this repository is built on.
//
// The package is deliberately small and allocation-conscious: CapsNet
// inference spends nearly all its time in a handful of dense kernels,
// and the performance model in internal/workload counts exactly the
// operations these kernels perform.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 tensor. The zero value is an
// empty tensor; use New or FromSlice to create a usable one.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. It panics if
// any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is
// used directly (not copied). It panics if len(data) does not match the
// shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. Mutations are visible to the
// tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reuse rebinds t in place to the given backing slice and shape,
// without allocating: the shape is copied into t's existing shape
// array when the rank is unchanged (the steady-state case for scratch
// arenas that re-bind views every forward pass). The slice is used
// directly, not copied. It panics if len(data) does not match the
// shape volume. Returns t for chaining.
//
//pimcaps:hotpath
func (t *Tensor) Reuse(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// The message deliberately omits the shape slice: formatting
			// it would make the variadic argument escape and put an
			// allocation on every (non-panicking) call — Reuse sits on
			// the allocation-free forward path.
			panic("tensor: negative dimension in Reuse shape")
		}
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: Reuse shape needs %d elements, got %d", n, len(data)))
	}
	t.data = data
	t.shape = append(t.shape[:0], shape...)
	return t
}

// Reshape returns a tensor sharing t's storage with a new shape of the
// same volume. It panics on a volume mismatch.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Equal reports whether t and o have identical shapes and elements.
func (t *Tensor) Equal(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	for i := range t.data {
		//lint:ignore pimcaps/floateqcheck Equal is the bit-identity primitive the determinism tests are built on; tolerance belongs in AllClose.
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether t and o have identical shapes and elementwise
// |a-b| <= atol + rtol*|b|.
func (t *Tensor) AllClose(o *Tensor, rtol, atol float64) bool {
	if len(t.data) != len(o.data) {
		return false
	}
	for i := range t.data {
		a, b := float64(t.data[i]), float64(o.data[i])
		if math.Abs(a-b) > atol+rtol*math.Abs(b) {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

// MatMul computes c = a×b for 2-D tensors a (m×k) and b (k×n),
// returning a new m×n tensor. It panics on shape mismatch.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions %d and %d differ", k, k2))
	}
	c := New(m, n)
	// ikj loop order keeps the inner loop streaming over b and c rows.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := c.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c
}

// MatVec computes y = a×x for a (m×k) and x (k), returning length-m y.
func MatVec(a *Tensor, x []float32) []float32 {
	if a.Rank() != 2 {
		panic("tensor: MatVec requires a rank-2 tensor")
	}
	m, k := a.shape[0], a.shape[1]
	if len(x) != k {
		panic(fmt.Sprintf("tensor: MatVec vector length %d != %d", len(x), k))
	}
	y := make([]float32, m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		var s float32
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Dot returns the inner product of equal-length a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func Norm(v []float32) float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}

// SquaredNorm returns the squared Euclidean norm of v.
func SquaredNorm(v []float32) float32 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return float32(s)
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Softmax writes the softmax of src into dst (which may alias src).
// It is numerically stabilized by max subtraction.
func Softmax(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Softmax length mismatch")
	}
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(float64(v - maxv))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// Squash applies the capsule non-linearity of Eq. 3:
//
//	v = (|s|² / (1+|s|²)) · s/|s|
//
// writing the result into dst (which may alias src).
func Squash(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Squash length mismatch")
	}
	sq := float64(SquaredNorm(src))
	if sq == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	scale := float32(sq / (1 + sq) / math.Sqrt(sq))
	for i := range src {
		dst[i] = src[i] * scale
	}
}

// ReLU applies max(0,x) elementwise in place.
//
//pimcaps:hotpath
func ReLU(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// Sigmoid applies the logistic function elementwise in place.
func Sigmoid(x []float32) {
	for i, v := range x {
		x[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
}

// ArgMax returns the index of the largest element of v (first on ties).
// It panics on an empty slice.
func ArgMax(v []float32) int {
	if len(v) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best := 0
	for i, x := range v[1:] {
		if x > v[best] {
			best = i + 1
		}
	}
	return best
}

// Sum returns the sum of all elements of v.
func Sum(v []float32) float32 {
	var s float32
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float32) float32 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float32(len(v))
}
