//pimcaps:bitexact

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Len() != 24 {
		t.Fatalf("Len = %d, want 24", tt.Len())
	}
	for i, v := range tt.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if tt.Rank() != 3 || tt.Dim(1) != 3 {
		t.Fatalf("bad shape %v", tt.Shape())
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceAndAtSet(t *testing.T) {
	tt := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := tt.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	tt.Set(9, 0, 1)
	if got := tt.At(0, 1); got != 9 {
		t.Fatalf("after Set, At(0,1) = %v, want 9", got)
	}
}

func TestFromSliceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape/volume mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	tt.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(42, 0, 0)
	if a.At(0, 0) != 42 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on reshape volume mismatch")
		}
	}()
	a.Reshape(4, 2)
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2}, 2)
	c := FromSlice([]float32{1, 2.0001}, 2)
	if !a.Equal(b) {
		t.Fatal("identical tensors not Equal")
	}
	if a.Equal(c) {
		t.Fatal("different tensors reported Equal")
	}
	if !a.AllClose(c, 1e-3, 0) {
		t.Fatal("AllClose should accept 1e-4 relative difference at rtol 1e-3")
	}
	if a.AllClose(c, 1e-6, 0) {
		t.Fatal("AllClose should reject at rtol 1e-6")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !c.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", c.Data(), want.Data())
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	for i := range a.Data() {
		a.Data()[i] = rng.Float32()
	}
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if got := MatMul(a, id); !got.AllClose(a, 1e-6, 1e-7) {
		t.Fatal("A×I != A")
	}
	if got := MatMul(id, a); !got.AllClose(a, 1e-6, 1e-7) {
		t.Fatal("I×A != A")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatVecMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(5, 7)
	for i := range a.Data() {
		a.Data()[i] = rng.Float32() - 0.5
	}
	x := make([]float32, 7)
	for i := range x {
		x[i] = rng.Float32() - 0.5
	}
	y := MatVec(a, x)
	xm := FromSlice(append([]float32(nil), x...), 7, 1)
	want := MatMul(a, xm)
	for i := range y {
		if math.Abs(float64(y[i]-want.Data()[i])) > 1e-5 {
			t.Fatalf("MatVec[%d] = %v, want %v", i, y[i], want.Data()[i])
		}
	}
}

func TestDotNormScale(t *testing.T) {
	a := []float32{3, 4}
	if Dot(a, a) != 25 {
		t.Fatalf("Dot = %v, want 25", Dot(a, a))
	}
	if Norm(a) != 5 {
		t.Fatalf("Norm = %v, want 5", Norm(a))
	}
	if SquaredNorm(a) != 25 {
		t.Fatalf("SquaredNorm = %v, want 25", SquaredNorm(a))
	}
	Scale(2, a)
	if a[0] != 6 || a[1] != 8 {
		t.Fatalf("Scale result %v", a)
	}
}

func TestAxpy(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	want := []float32{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	src := []float32{1, 2, 3, 4}
	dst := make([]float32, 4)
	Softmax(dst, src)
	var sum float64
	for i, v := range dst {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax[%d] = %v outside (0,1)", i, v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sums to %v, want 1", sum)
	}
	for i := 1; i < len(dst); i++ {
		if dst[i] <= dst[i-1] {
			t.Fatal("softmax must be monotone in its input")
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	src := []float32{0.5, -1, 2}
	a := make([]float32, 3)
	b := make([]float32, 3)
	Softmax(a, src)
	shifted := []float32{src[0] + 100, src[1] + 100, src[2] + 100}
	Softmax(b, shifted)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-5 {
			t.Fatalf("softmax not shift invariant: %v vs %v", a, b)
		}
	}
}

func TestSoftmaxLargeInputsStable(t *testing.T) {
	src := []float32{1000, 1001}
	dst := make([]float32, 2)
	Softmax(dst, src)
	if math.IsNaN(float64(dst[0])) || math.IsNaN(float64(dst[1])) {
		t.Fatal("softmax overflowed on large inputs")
	}
}

func TestSquashShrinksAndPreservesDirection(t *testing.T) {
	src := []float32{3, 4}
	dst := make([]float32, 2)
	Squash(dst, src)
	// |s| = 5, so |v| = 25/26 * 1 = 0.9615...
	n := Norm(dst)
	if math.Abs(float64(n)-25.0/26.0) > 1e-5 {
		t.Fatalf("squash norm = %v, want %v", n, 25.0/26.0)
	}
	// Direction preserved: dst parallel to src.
	if dst[0]*src[1]-dst[1]*src[0] > 1e-6 {
		t.Fatal("squash changed direction")
	}
}

func TestSquashZeroVector(t *testing.T) {
	src := []float32{0, 0, 0}
	dst := []float32{1, 2, 3}
	Squash(dst, src)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("squash of zero vector must be zero")
		}
	}
}

func TestSquashNormAlwaysBelowOne(t *testing.T) {
	f := func(a, b, c float64) bool {
		src := []float32{float32(a), float32(b), float32(c)}
		for _, v := range src {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return true
			}
		}
		// Keep magnitudes representable in float32 squared-norm space.
		for i := range src {
			if src[i] > 1e15 {
				src[i] = 1e15
			}
			if src[i] < -1e15 {
				src[i] = -1e15
			}
		}
		dst := make([]float32, 3)
		Squash(dst, src)
		return Norm(dst) <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReLUAndSigmoid(t *testing.T) {
	x := []float32{-1, 0, 2}
	ReLU(x)
	if x[0] != 0 || x[1] != 0 || x[2] != 2 {
		t.Fatalf("ReLU = %v", x)
	}
	s := []float32{0}
	Sigmoid(s)
	if math.Abs(float64(s[0])-0.5) > 1e-6 {
		t.Fatalf("Sigmoid(0) = %v, want 0.5", s[0])
	}
}

func TestArgMaxSumMean(t *testing.T) {
	v := []float32{1, 5, 3, 5}
	if ArgMax(v) != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of ties)", ArgMax(v))
	}
	if Sum(v) != 14 {
		t.Fatalf("Sum = %v", Sum(v))
	}
	if Mean(v) != 3.5 {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) must be 0")
	}
}

func TestConvSpecOutSizeAndValidate(t *testing.T) {
	s := ConvSpec{Cin: 1, Cout: 256, K: 9, Stride: 1}
	oh, ow := s.OutSize(28, 28)
	if oh != 20 || ow != 20 {
		t.Fatalf("OutSize(28,28) = %d,%d want 20,20", oh, ow)
	}
	s2 := ConvSpec{Cin: 256, Cout: 256, K: 9, Stride: 2}
	oh, ow = s2.OutSize(20, 20)
	if oh != 6 || ow != 6 {
		t.Fatalf("OutSize(20,20,s2) = %d,%d want 6,6", oh, ow)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := (ConvSpec{Cin: 0, Cout: 1, K: 1, Stride: 1}).Validate(); err == nil {
		t.Fatal("zero Cin accepted")
	}
	if err := (ConvSpec{Cin: 1, Cout: 1, K: 0, Stride: 1}).Validate(); err == nil {
		t.Fatal("zero K accepted")
	}
	if err := (ConvSpec{Cin: 1, Cout: 1, K: 1, Stride: 0}).Validate(); err == nil {
		t.Fatal("zero stride accepted")
	}
}

// naiveConv is a direct reference convolution used to cross-check the
// im2col implementation.
func naiveConv(input, weights *Tensor, bias []float32, spec ConvSpec) *Tensor {
	h, w := input.Dim(1), input.Dim(2)
	oh, ow := spec.OutSize(h, w)
	out := New(spec.Cout, oh, ow)
	for co := 0; co < spec.Cout; co++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ci := 0; ci < spec.Cin; ci++ {
					for ky := 0; ky < spec.K; ky++ {
						for kx := 0; kx < spec.K; kx++ {
							iv := input.At(ci, oy*spec.Stride+ky, ox*spec.Stride+kx)
							wv := weights.At(co, ci*spec.K*spec.K+ky*spec.K+kx)
							s += iv * wv
						}
					}
				}
				if bias != nil {
					s += bias[co]
				}
				out.Set(s, co, oy, ox)
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := ConvSpec{Cin: 3, Cout: 5, K: 3, Stride: 2}
	in := New(3, 9, 11)
	for i := range in.Data() {
		in.Data()[i] = rng.Float32() - 0.5
	}
	wt := New(5, 3*3*3)
	for i := range wt.Data() {
		wt.Data()[i] = rng.Float32() - 0.5
	}
	bias := []float32{0.1, -0.2, 0.3, 0, 1}
	got := Conv2D(in, wt, bias, spec)
	want := naiveConv(in, wt, bias, spec)
	if !got.AllClose(want, 1e-5, 1e-6) {
		t.Fatal("Conv2D disagrees with naive reference")
	}
}

func TestConv2DNilBias(t *testing.T) {
	spec := ConvSpec{Cin: 1, Cout: 1, K: 1, Stride: 1}
	in := FromSlice([]float32{2, 4}, 1, 1, 2)
	wt := FromSlice([]float32{3}, 1, 1)
	out := Conv2D(in, wt, nil, spec)
	if out.At(0, 0, 0) != 6 || out.At(0, 0, 1) != 12 {
		t.Fatalf("Conv2D nil bias = %v", out.Data())
	}
}

func TestIm2ColShape(t *testing.T) {
	spec := ConvSpec{Cin: 2, Cout: 1, K: 3, Stride: 1}
	in := New(2, 5, 5)
	cols := Im2Col(in, spec)
	if cols.Dim(0) != 9 || cols.Dim(1) != 18 {
		t.Fatalf("Im2Col shape %v, want [9 18]", cols.Shape())
	}
}

func TestConv2DBadWeightsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad weight shape")
		}
	}()
	spec := ConvSpec{Cin: 1, Cout: 2, K: 3, Stride: 1}
	Conv2D(New(1, 5, 5), New(2, 5), nil, spec)
}

func TestMatMulAssociativityWithVectors(t *testing.T) {
	// Property: (A·B)·x == A·(B·x) for random small matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(3, 4)
		b := New(4, 5)
		for i := range a.Data() {
			a.Data()[i] = rng.Float32() - 0.5
		}
		for i := range b.Data() {
			b.Data()[i] = rng.Float32() - 0.5
		}
		x := make([]float32, 5)
		for i := range x {
			x[i] = rng.Float32() - 0.5
		}
		left := MatVec(MatMul(a, b), x)
		right := MatVec(a, MatVec(b, x))
		for i := range left {
			if math.Abs(float64(left[i]-right[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
