package tensor

import "fmt"

// ConvSpec describes a 2-D convolution: Cin input channels convolved
// with Cout filters of size K×K at the given stride (no padding, which
// matches the CapsNet-MNIST architecture of Sabour et al.).
type ConvSpec struct {
	Cin, Cout int
	K         int
	Stride    int
}

// OutSize returns the output spatial size for an h×w input.
func (s ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h-s.K)/s.Stride + 1
	ow = (w-s.K)/s.Stride + 1
	return oh, ow
}

// Validate reports an error if the spec is not executable.
func (s ConvSpec) Validate() error {
	switch {
	case s.Cin <= 0 || s.Cout <= 0:
		return fmt.Errorf("conv: channels must be positive (Cin=%d Cout=%d)", s.Cin, s.Cout)
	case s.K <= 0:
		return fmt.Errorf("conv: kernel size must be positive (K=%d)", s.K)
	case s.Stride <= 0:
		return fmt.Errorf("conv: stride must be positive (Stride=%d)", s.Stride)
	}
	return nil
}

// Im2ColInto lowers a flattened Cin×h×w input into cols, which must
// have length (oh*ow)·(Cin·K·K). It is the allocation-free kernel
// behind Im2Col: callers on the hot path pass an arena-carved cols
// buffer and reuse it across samples.
//
//pimcaps:hotpath
func Im2ColInto(cols, input []float32, spec ConvSpec, h, w int) {
	cin := spec.Cin
	if len(input) != cin*h*w {
		panic(fmt.Sprintf("tensor: Im2ColInto input length %d, want %d×%d×%d", len(input), cin, h, w))
	}
	oh, ow := spec.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2ColInto kernel %d does not fit %dx%d input", spec.K, h, w))
	}
	if len(cols) != oh*ow*cin*spec.K*spec.K {
		panic(fmt.Sprintf("tensor: Im2ColInto cols length %d, want %d", len(cols), oh*ow*cin*spec.K*spec.K))
	}
	row := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			base := row * cin * spec.K * spec.K
			p := 0
			for c := 0; c < cin; c++ {
				chOff := c * h * w
				for ky := 0; ky < spec.K; ky++ {
					srcOff := chOff + (oy*spec.Stride+ky)*w + ox*spec.Stride
					copy(cols[base+p:base+p+spec.K], input[srcOff:srcOff+spec.K])
					p += spec.K
				}
			}
			row++
		}
	}
}

// Im2Col lowers input (Cin×H×W) into a matrix of shape
// (oh*ow) × (Cin*K*K) so convolution becomes a matrix multiply.
func Im2Col(input *Tensor, spec ConvSpec) *Tensor {
	if input.Rank() != 3 {
		panic("tensor: Im2Col requires a rank-3 (C,H,W) input")
	}
	cin, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	if cin != spec.Cin {
		panic(fmt.Sprintf("tensor: Im2Col input has %d channels, spec expects %d", cin, spec.Cin))
	}
	oh, ow := spec.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col kernel %d does not fit %dx%d input", spec.K, h, w))
	}
	cols := New(oh*ow, cin*spec.K*spec.K)
	Im2ColInto(cols.data, input.data, spec, h, w)
	return cols
}

// Conv2DInto convolves a flattened Cin×h×w input with weights
// (Cout·(Cin·K·K), row-major) and per-output-channel bias, writing the
// Cout×oh×ow result into dst. cols is the im2col scratch, length
// (oh*ow)·(Cin·K·K). Every element of dst is overwritten. The loop
// order is identical to Conv2D, so results are bit-identical; the only
// difference is that the caller owns (and reuses) both buffers.
//
//pimcaps:hotpath
func Conv2DInto(dst, cols, input, weights, bias []float32, spec ConvSpec, h, w int) {
	oh, ow := spec.OutSize(h, w)
	n := oh * ow
	kk := spec.Cin * spec.K * spec.K
	if len(weights) != spec.Cout*kk {
		panic(fmt.Sprintf("tensor: Conv2DInto weights length %d, want %d", len(weights), spec.Cout*kk))
	}
	if len(dst) != spec.Cout*n {
		panic(fmt.Sprintf("tensor: Conv2DInto dst length %d, want %d", len(dst), spec.Cout*n))
	}
	if bias != nil && len(bias) != spec.Cout {
		panic(fmt.Sprintf("tensor: Conv2DInto bias length %d, want %d", len(bias), spec.Cout))
	}
	Im2ColInto(cols, input, spec, h, w)
	for co := 0; co < spec.Cout; co++ {
		wrow := weights[co*kk : (co+1)*kk]
		out := dst[co*n : (co+1)*n]
		for r := 0; r < n; r++ {
			crow := cols[r*kk : (r+1)*kk]
			var s float32
			for j, v := range crow {
				s += v * wrow[j]
			}
			if bias != nil {
				s += bias[co]
			}
			out[r] = s
		}
	}
}

// Conv2D convolves input (Cin×H×W) with weights (Cout × Cin*K*K) and
// per-output-channel bias, returning a (Cout×oh×ow) tensor.
func Conv2D(input, weights *Tensor, bias []float32, spec ConvSpec) *Tensor {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if weights.Rank() != 2 || weights.Dim(0) != spec.Cout || weights.Dim(1) != spec.Cin*spec.K*spec.K {
		panic(fmt.Sprintf("tensor: Conv2D weights %v, want [%d %d]", weights.Shape(), spec.Cout, spec.Cin*spec.K*spec.K))
	}
	if input.Rank() != 3 || input.Dim(0) != spec.Cin {
		panic(fmt.Sprintf("tensor: Conv2D input %v, want [%d H W]", input.Shape(), spec.Cin))
	}
	h, w := input.Dim(1), input.Dim(2)
	oh, ow := spec.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Conv2D kernel %d does not fit %dx%d input", spec.K, h, w))
	}
	cols := make([]float32, oh*ow*spec.Cin*spec.K*spec.K)
	out := New(spec.Cout, oh, ow)
	Conv2DInto(out.data, cols, input.data, weights.data, bias, spec, h, w)
	return out
}
