package tensor

import "fmt"

// ConvSpec describes a 2-D convolution: Cin input channels convolved
// with Cout filters of size K×K at the given stride (no padding, which
// matches the CapsNet-MNIST architecture of Sabour et al.).
type ConvSpec struct {
	Cin, Cout int
	K         int
	Stride    int
}

// OutSize returns the output spatial size for an h×w input.
func (s ConvSpec) OutSize(h, w int) (oh, ow int) {
	oh = (h-s.K)/s.Stride + 1
	ow = (w-s.K)/s.Stride + 1
	return oh, ow
}

// Validate reports an error if the spec is not executable.
func (s ConvSpec) Validate() error {
	switch {
	case s.Cin <= 0 || s.Cout <= 0:
		return fmt.Errorf("conv: channels must be positive (Cin=%d Cout=%d)", s.Cin, s.Cout)
	case s.K <= 0:
		return fmt.Errorf("conv: kernel size must be positive (K=%d)", s.K)
	case s.Stride <= 0:
		return fmt.Errorf("conv: stride must be positive (Stride=%d)", s.Stride)
	}
	return nil
}

// Im2Col lowers input (Cin×H×W) into a matrix of shape
// (oh*ow) × (Cin*K*K) so convolution becomes a matrix multiply.
func Im2Col(input *Tensor, spec ConvSpec) *Tensor {
	if input.Rank() != 3 {
		panic("tensor: Im2Col requires a rank-3 (C,H,W) input")
	}
	cin, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	if cin != spec.Cin {
		panic(fmt.Sprintf("tensor: Im2Col input has %d channels, spec expects %d", cin, spec.Cin))
	}
	oh, ow := spec.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col kernel %d does not fit %dx%d input", spec.K, h, w))
	}
	cols := New(oh*ow, cin*spec.K*spec.K)
	cd := cols.data
	id := input.data
	row := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			base := row * cin * spec.K * spec.K
			p := 0
			for c := 0; c < cin; c++ {
				chOff := c * h * w
				for ky := 0; ky < spec.K; ky++ {
					srcOff := chOff + (oy*spec.Stride+ky)*w + ox*spec.Stride
					copy(cd[base+p:base+p+spec.K], id[srcOff:srcOff+spec.K])
					p += spec.K
				}
			}
			row++
		}
	}
	return cols
}

// Conv2D convolves input (Cin×H×W) with weights (Cout × Cin*K*K) and
// per-output-channel bias, returning a (Cout×oh×ow) tensor.
func Conv2D(input, weights *Tensor, bias []float32, spec ConvSpec) *Tensor {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if weights.Rank() != 2 || weights.Dim(0) != spec.Cout || weights.Dim(1) != spec.Cin*spec.K*spec.K {
		panic(fmt.Sprintf("tensor: Conv2D weights %v, want [%d %d]", weights.Shape(), spec.Cout, spec.Cin*spec.K*spec.K))
	}
	if bias != nil && len(bias) != spec.Cout {
		panic(fmt.Sprintf("tensor: Conv2D bias length %d, want %d", len(bias), spec.Cout))
	}
	h, w := input.Dim(1), input.Dim(2)
	oh, ow := spec.OutSize(h, w)
	cols := Im2Col(input, spec) // (oh*ow) × (Cin*K*K)
	out := New(spec.Cout, oh, ow)
	n := oh * ow
	kk := spec.Cin * spec.K * spec.K
	for co := 0; co < spec.Cout; co++ {
		wrow := weights.data[co*kk : (co+1)*kk]
		dst := out.data[co*n : (co+1)*n]
		for r := 0; r < n; r++ {
			crow := cols.data[r*kk : (r+1)*kk]
			var s float32
			for j, v := range crow {
				s += v * wrow[j]
			}
			if bias != nil {
				s += bias[co]
			}
			dst[r] = s
		}
	}
	return out
}
