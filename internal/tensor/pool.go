package tensor

import "fmt"

// MaxPool2D applies K×K max pooling with stride K to a (C×H×W)
// tensor, returning the pooled tensor and the argmax index (into the
// input's flattened storage) per output element for the backward
// pass.
func MaxPool2D(input *Tensor, k int) (*Tensor, []int) {
	if input.Rank() != 3 {
		panic("tensor: MaxPool2D requires a rank-3 (C,H,W) input")
	}
	if k <= 0 {
		panic(fmt.Sprintf("tensor: MaxPool2D window %d must be positive", k))
	}
	c, h, w := input.Dim(0), input.Dim(1), input.Dim(2)
	oh, ow := h/k, w/k
	if oh == 0 || ow == 0 {
		panic(fmt.Sprintf("tensor: MaxPool2D window %d does not fit %dx%d input", k, h, w))
	}
	out := New(c, oh, ow)
	arg := make([]int, c*oh*ow)
	id, od := input.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(0)
				bestIdx := -1
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						idx := ch*h*w + (oy*k+ky)*w + (ox*k + kx)
						if bestIdx < 0 || id[idx] > best {
							best = id[idx]
							bestIdx = idx
						}
					}
				}
				o := ch*oh*ow + oy*ow + ox
				od[o] = best
				arg[o] = bestIdx
			}
		}
	}
	return out, arg
}

// MaxPool2DBackward routes the output gradient back to the argmax
// positions.
func MaxPool2DBackward(dOut *Tensor, arg []int, c, h, w int) *Tensor {
	if dOut.Len() != len(arg) {
		panic(fmt.Sprintf("tensor: MaxPool2DBackward %d grads for %d argmaxes", dOut.Len(), len(arg)))
	}
	din := New(c, h, w)
	dd := din.Data()
	for o, idx := range arg {
		dd[idx] += dOut.Data()[o]
	}
	return din
}
