package analysis_test

import (
	"testing"

	"pimcapsnet/internal/analysis"
)

// TestSuiteContents pins the suite's composition: CI annotations,
// Makefile docs, and DESIGN.md all name these nine checks.
func TestSuiteContents(t *testing.T) {
	t.Parallel()
	want := []string{"releasecheck", "layercheck", "hotpathcheck", "floateqcheck", "paniccheck", "ctxcheck", "guardedby", "goroleak", "timerleak"}
	suite := analysis.Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestSuiteCleanOnTree is the smoke test the satellite tasks call for:
// the full suite over the real module — augmented test packages and
// external test packages included, exactly what `pimcaps-vet ./...`
// runs in CI — must report nothing. If this fails, either new code
// broke an invariant or an analyzer grew a false positive; both are
// ship-blockers.
func TestSuiteCleanOnTree(t *testing.T) {
	t.Parallel()
	findings, err := analysis.RunPatterns("", analysis.Suite(), "pimcapsnet/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("finding on a tree that should be clean: %s", f)
	}
}
