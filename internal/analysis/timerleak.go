package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Timerleak enforces the timer-lifetime discipline the serving tiers
// depend on. time.After allocates a runtime timer that cannot be
// stopped: harmless for a one-shot wait in a short-lived command, but
// inside a loop it accumulates one live timer per iteration until each
// fires (the cluster manager's backoff loop was the motivating leak),
// and anywhere in the long-lived concurrency packages an abandoned
// wait pins its timer for the full duration. time.Tick is worse — it
// leaks its ticker by design. The rules:
//
//  1. time.After never appears inside a for/range loop, anywhere.
//  2. In the concurrency packages (internal/serve, internal/cluster,
//     internal/loadgen, internal/obs), time.After never appears at
//     all: use time.NewTimer with a deferred Stop (or a reused timer
//     with a drain-safe Reset) so abandoned waits release the timer.
//  3. time.Tick never appears outside tests.
//  4. Every time.NewTimer/time.NewTicker assigned to a local must
//     reach Stop() on all paths, mirroring releasecheck's flow-light
//     model: a Stop (called or deferred) discharges the obligation,
//     any other mention — return, argument, store — escapes it to a
//     new owner, and a return between the acquisition and the first
//     Stop/escape is the early-return leak.
//
// Test files are exempt (harness timers die with the test process);
// deliberate exceptions carry //lint:ignore pimcaps/timerleak with a
// justification.
var Timerleak = &Analyzer{
	Name: "timerleak",
	Doc:  "no time.After in loops or the concurrency packages, no time.Tick, and every NewTimer/NewTicker reaches Stop() on all paths",
	Run:  runTimerleak,
}

// concurrencyPkgs are the trailing-segment patterns of the long-lived
// concurrency packages under the strictest timer and goroutine
// lifetime rules; goroleak scopes to the same set.
var concurrencyPkgs = []string{"internal/serve", "internal/cluster", "internal/loadgen", "internal/obs"}

func inConcurrencyPkg(pass *Pass) bool {
	pkgPath := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	for _, p := range concurrencyPkgs {
		if hasSegments(pkgPath, p) {
			return true
		}
	}
	return false
}

func runTimerleak(pass *Pass) error {
	strict := inConcurrencyPkg(pass)
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		checkUnstoppableTimers(pass, file, strict)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkScopeTimers(pass, n.Body)
				}
			case *ast.FuncLit:
				checkScopeTimers(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// checkUnstoppableTimers reports the constructions that can never be
// stopped: time.Tick anywhere, time.After in a loop, and time.After at
// all in the strict concurrency packages.
func checkUnstoppableTimers(pass *Pass, file *ast.File, strict bool) {
	// Loop extents are collected positionally: a call textually inside
	// a for/range body (including via a closure defined there) runs
	// per iteration.
	type span struct{ pos, end token.Pos }
	var loops []span
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, span{n.Pos(), n.End()})
		}
		return true
	})
	inLoop := func(p token.Pos) bool {
		for _, l := range loops {
			if l.pos < p && p < l.end {
				return true
			}
		}
		return false
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeFullName(pass, call) {
		case "time.Tick":
			pass.Reportf(call.Pos(), "time.Tick leaks its ticker by design; use time.NewTicker with a deferred Stop")
		case "time.After":
			switch {
			case inLoop(call.Pos()):
				pass.Reportf(call.Pos(), "time.After inside a loop allocates an unstoppable timer per iteration; reuse one time.NewTimer with a drain-safe Reset")
			case strict:
				pass.Reportf(call.Pos(), "time.After starts a timer nothing can stop; in the long-lived concurrency packages use time.NewTimer with a deferred Stop so abandoned waits release it")
			}
		}
		return true
	})
}

// checkScopeTimers scans one function body (FuncDecl or FuncLit,
// nested literals excluded — they are their own scopes) for
// NewTimer/NewTicker acquisitions and their Stop/escape fate.
func checkScopeTimers(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				return false
			}
		case *ast.ExprStmt:
			// A bare `time.NewTicker(d)` drops the only handle that
			// could ever stop it.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if kind := timerCtor(pass, call); kind != "" {
					pass.Reportf(call.Pos(), "%s result is dropped; nothing can ever Stop this %s", calleeFullName(pass, call), kind)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			kind := timerCtor(pass, call)
			if kind == "" {
				return true
			}
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue // stored into a field/element: the owner inherits the obligation
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "%s from %s is discarded; nothing can ever Stop it", kind, calleeFullName(pass, call))
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				// Only variables declared in this scope are traced: an
				// assignment to a captured or outer variable hands the
				// timer to longer-lived state whose discipline is that
				// owner's (e.g. a reused-timer factory closure).
				if obj == nil || obj.Pos() < body.Pos() || obj.Pos() > body.End() {
					continue
				}
				checkTimerVar(pass, body, n, call, obj, kind)
			}
		}
		return true
	})
}

// timerCtor reports whether call constructs a stoppable timer,
// returning "timer", "ticker", or "".
func timerCtor(pass *Pass, call *ast.CallExpr) string {
	switch calleeFullName(pass, call) {
	case "time.NewTimer":
		return "timer"
	case "time.NewTicker":
		return "ticker"
	}
	return ""
}

// checkTimerVar traces one acquired timer variable through its scope,
// mirroring releasecheck's flow-light model: Stop (called or deferred)
// discharges the obligation, selector uses (t.C, t.Reset) merely use
// it, and any other mention escapes it to a new owner. A return
// between the acquisition and the first Stop/escape abandons a running
// timer on that path.
func checkTimerVar(pass *Pass, scope *ast.BlockStmt, acq *ast.AssignStmt, call *ast.CallExpr, obj types.Object, kind string) {
	guardPos := token.Pos(-1) // position of the first Stop or escape
	note := func(pos token.Pos) {
		if guardPos < 0 || pos < guardPos {
			guardPos = pos
		}
	}
	var deferStack []*ast.DeferStmt
	stopped, escaped := false, false

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferStack = append(deferStack, n)
			ast.Inspect(n.Call, visit)
			deferStack = deferStack[:len(deferStack)-1]
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					if sel.Sel.Name == "Stop" {
						stopped = true
						// A deferred Stop guards from the defer
						// statement onward.
						pos := n.Pos()
						if len(deferStack) > 0 {
							pos = deferStack[len(deferStack)-1].Pos()
						}
						note(pos)
					}
					// Method call on the timer (Stop, Reset): receiver
					// use, not an escape; still scan the arguments.
					for _, arg := range n.Args {
						ast.Inspect(arg, visit)
					}
					return false
				}
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				return false // t.C: channel use, not an escape
			}
		case *ast.Ident:
			if pass.TypesInfo.Uses[n] == obj && n.Pos() > acq.End() {
				// Any other use — argument, return, store, alias —
				// conservatively transfers the Stop obligation.
				escaped = true
				note(n.Pos())
			}
		}
		return true
	}
	ast.Inspect(scope, visit)

	if !stopped && !escaped {
		pass.Reportf(acq.Pos(), "%s from %s never reaches Stop(); call or defer %s.Stop()", kind, calleeFullName(pass, call), obj.Name())
		return
	}
	ast.Inspect(scope, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > acq.End() && (guardPos < 0 || ret.End() <= guardPos) {
			pass.Reportf(ret.Pos(), "return may abandon the running %s acquired at line %d: Stop is not yet deferred on this path", kind, pass.Fset.Position(acq.Pos()).Line)
		}
		return true
	})
}
