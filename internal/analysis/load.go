package analysis

// Package loading for the analyzer driver. The x/tools ecosystem uses
// go/packages here; this offline reimplementation gets the same result
// from two standard-library pieces:
//
//   - `go list -export -deps -json` supplies package metadata and,
//     crucially, compiled export data for every dependency, so imports
//     resolve without type-checking the world from source;
//   - go/parser + go/types check each *target* package from source,
//     importing its dependencies through go/importer's gc importer fed
//     by that export data.
//
// Test packages follow the real build graph: the in-package test
// variant ("p [p.test]") is type-checked from source as GoFiles +
// TestGoFiles, the external test package ("p_test") from its
// XTestGoFiles, and each uses a fresh importer that prefers the
// "[p.test]" recompiled variants of its dependencies, which is exactly
// how cmd/go links test binaries.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// A Package is one type-checked unit handed to the analyzers.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	// TestFiles marks which of Files came from TestGoFiles, for
	// analyzers whose invariants exempt test code.
	TestFiles map[*ast.File]bool
	Types     *types.Package
	Info      *types.Info
}

// goListPkg is the subset of `go list -json` output the driver needs.
type goListPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	DepOnly      bool
	Standard     bool
	ForTest      string
	Module       *struct{ Path string }
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// runGoList invokes the go tool and decodes its JSON package stream.
func runGoList(dir string, args ...string) ([]goListPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []goListPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p goListPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// An exportSet maps import paths (including "path [variant]" test
// recompilations) to compiled export data files. It is safe for
// concurrent use; analysistest runs share one process-wide set so
// parallel analyzer tests exercise it under the race detector.
type exportSet struct {
	mu sync.Mutex
	//pimcaps:guardedby mu
	files map[string]string
}

func newExportSet() *exportSet { return &exportSet{files: map[string]string{}} }

// add records every export file in the listing.
func (e *exportSet) add(pkgs []goListPkg) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			e.files[p.ImportPath] = p.Export
		}
	}
}

func (e *exportSet) get(path string) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f, ok := e.files[path]
	return f, ok
}

// ensure fetches export data for any of paths not yet known, pulling
// full dependency closures so the gc importer never misses a
// transitive import.
func (e *exportSet) ensure(dir string, paths []string) error {
	var missing []string
	e.mu.Lock()
	for _, p := range paths {
		if _, ok := e.files[p]; !ok && p != "unsafe" && p != "C" {
			missing = append(missing, p)
		}
	}
	e.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	args := append([]string{"-export", "-deps", "-json=ImportPath,Export", "--"}, missing...)
	pkgs, err := runGoList(dir, args...)
	if err != nil {
		return err
	}
	e.add(pkgs)
	return nil
}

// importerFor builds a types.Importer over the export set. When
// forTest names a package under test (e.g. "pimcapsnet/internal/serve"),
// dependencies recompiled against that package's test variant — listed
// as "dep [forTest.test]" — take precedence, mirroring the build graph
// of the test binary. Each call returns a fresh importer with its own
// package cache, so variant-flavored packages never leak between
// targets.
func (e *exportSet) importerFor(fset *token.FileSet, forTest string) types.Importer {
	suffix := ""
	if forTest != "" {
		suffix = " [" + forTest + ".test]"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if suffix != "" {
			if f, ok := e.get(path + suffix); ok {
				return os.Open(f)
			}
		}
		if f, ok := e.get(path); ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// parseFiles parses the named files (paths relative to dir) with
// comments preserved.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkFiles type-checks already-parsed files as one package.
func checkFiles(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(importPath, fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, err := range errs {
			msgs = append(msgs, err.Error())
		}
		return nil, nil, fmt.Errorf("type-checking %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	return pkg, info, nil
}

// srcImporter resolves imports for analysistest golden packages: an
// import path that names a directory under root loads (and caches) that
// golden package from source; anything else falls back to standard
// library export data. It implements types.Importer.
type srcImporter struct {
	fset    *token.FileSet
	root    string
	exports *exportSet
	std     types.Importer

	mu sync.Mutex
	//pimcaps:guardedby mu
	pkgs map[string]*types.Package
	//pimcaps:guardedby mu
	loading map[string]bool
}

func newSrcImporter(fset *token.FileSet, root string, exports *exportSet) *srcImporter {
	return &srcImporter{
		fset:    fset,
		root:    root,
		exports: exports,
		std:     exports.importerFor(fset, ""),
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// isLocal reports whether path names a golden package under root.
func (s *srcImporter) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(s.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

func (s *srcImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if !s.isLocal(path) {
		if err := s.exports.ensure(s.root, []string{path}); err != nil {
			return nil, err
		}
		return s.std.Import(path)
	}
	s.mu.Lock()
	if pkg, ok := s.pkgs[path]; ok {
		s.mu.Unlock()
		return pkg, nil
	}
	if s.loading[path] {
		s.mu.Unlock()
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	s.loading[path] = true
	s.mu.Unlock()

	pkg, _, _, err := s.load(path)

	s.mu.Lock()
	delete(s.loading, path)
	if err == nil {
		s.pkgs[path] = pkg
	}
	s.mu.Unlock()
	return pkg, err
}

// load parses and checks the golden package at path, returning its
// syntax alongside the checked types for the harness.
func (s *srcImporter) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(s.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	files, err := parseFiles(s.fset, dir, names)
	if err != nil {
		return nil, nil, nil, err
	}
	var std []string
	for _, p := range fileImports(files) {
		if !s.isLocal(p) {
			std = append(std, p)
		}
	}
	if err := s.exports.ensure(s.root, std); err != nil {
		return nil, nil, nil, err
	}
	pkg, info, err := checkFiles(s.fset, path, files, s)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

// LoadGolden loads one golden package (plus, transitively, its local
// imports) for the analysistest harness.
func (s *srcImporter) LoadGolden(path string) (*Package, error) {
	pkg, files, info, err := s.load(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.pkgs[path] = pkg
	s.mu.Unlock()
	testFiles := map[*ast.File]bool{}
	for _, f := range files {
		if strings.HasSuffix(s.fset.Position(f.Pos()).Filename, "_test.go") {
			testFiles[f] = true
		}
	}
	return &Package{
		ImportPath: path,
		Dir:        filepath.Join(s.root, filepath.FromSlash(path)),
		Files:      files,
		TestFiles:  testFiles,
		Types:      pkg,
		Info:       info,
	}, nil
}

// goldenExports is shared by every GoldenLoader in the process so
// parallel analyzer tests hammer one export cache, putting its locking
// under the race detector.
var goldenExports = newExportSet()

// A GoldenLoader loads analysistest golden packages from a testdata
// tree: import paths resolve against directories under root, anything
// else against standard-library export data.
type GoldenLoader struct {
	Fset *token.FileSet
	imp  *srcImporter
}

// NewGoldenLoader returns a loader rooted at the golden tree
// (conventionally testdata/src next to the calling test).
func NewGoldenLoader(root string) *GoldenLoader {
	fset := token.NewFileSet()
	return &GoldenLoader{Fset: fset, imp: newSrcImporter(fset, root, goldenExports)}
}

// Load type-checks the golden package at path (plus, transitively, its
// local imports).
func (l *GoldenLoader) Load(path string) (*Package, error) { return l.imp.LoadGolden(path) }

// IsProjectPkg treats every directory under the golden root as
// project-local, the analysistest stand-in for the driver's
// module-prefix test.
func (l *GoldenLoader) IsProjectPkg(path string) bool { return l.imp.isLocal(path) }

// fileImports collects the (unquoted) import paths of files.
func fileImports(files []*ast.File) []string {
	var paths []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				paths = append(paths, path)
			}
		}
	}
	return paths
}
