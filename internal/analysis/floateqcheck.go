package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BitexactDirective exempts a whole file from floateqcheck: the
// repository's bit-identity tests (arena reuse, partition forcing,
// serialization round-trips, batching invariance) compare exact bit
// patterns on purpose — that is the property under test.
const BitexactDirective = "//pimcaps:bitexact"

// Floateqcheck flags == and != between floating-point expressions.
// The reproduction's numerics are deliberately exact in places (the
// routing guard re-runs NaN/Inf samples with exact math, checkpoints
// must round-trip bit-identically), so the codebase compares floats
// more than most — but outside those bit-exact contexts an equality
// comparison is almost always a bug that NaN payloads, fused
// multiply-adds, or the PE approximation tables will eventually
// falsify.
//
// Exemptions, in order of preference:
//   - comparisons against a compile-time constant (x == 0 is an exact
//     zero/denormal test, the skip-zero kernel guard cij == 0, etc.);
//   - self-comparison (x != x), the standard NaN idiom;
//   - files marked //pimcaps:bitexact (bit-identity test files);
//   - a //lint:ignore pimcaps/floateqcheck directive for single sites.
var Floateqcheck = &Analyzer{
	Name: "floateqcheck",
	Doc:  "floats must not be compared with == or != outside bit-exact contexts",
	Run:  runFloateqcheck,
}

func runFloateqcheck(pass *Pass) error {
	for _, file := range pass.Files {
		if fileHasDirective(file, BitexactDirective) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || bin.Op != token.EQL && bin.Op != token.NEQ {
				return true
			}
			xt, xok := pass.TypesInfo.Types[bin.X]
			yt, yok := pass.TypesInfo.Types[bin.Y]
			if !xok || !yok || !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil || yt.Value != nil {
				return true // constant comparand: an intentional exact test
			}
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true // x != x: the NaN idiom
			}
			pass.Reportf(bin.OpPos, "floating-point %s comparison; use a tolerance, compare math.Float32bits, or mark the file %s if it tests bit identity", bin.Op, BitexactDirective)
			return true
		})
	}
	return nil
}

// isFloat reports whether t's core type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
