package analysis

// Suite returns the full pimcaps-vet analyzer set in reporting order.
// Each member enforces one invariant the architecture depends on; see
// DESIGN.md's invariant table for the rationale of each.
func Suite() []*Analyzer {
	return []*Analyzer{
		Releasecheck,
		Layercheck,
		Hotpathcheck,
		Floateqcheck,
		Paniccheck,
		Ctxcheck,
		Guardedby,
		Goroleak,
		Timerleak,
	}
}
