package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathDirective marks a function whose body must stay
// allocation-free in steady state.
const HotpathDirective = "//pimcaps:hotpath"

// Hotpathcheck encodes the 0 allocs/op guarantee of the scratch-arena
// forward path at the source level. Functions annotated
// //pimcaps:hotpath — the arena, kernel, and routing bodies — may not
// contain the constructs that put allocations (or allocation hazards)
// back on the hot path:
//
//   - make, new, and goroutine launches (per-call heap traffic);
//   - append, unless it reslices an existing buffer to zero length
//     first (append(buf[:0], …)), the reuse idiom tensor.Reuse uses
//     for its shape array;
//   - slice, map, and channel composite literals (struct literals are
//     fine: they live in registers or on the stack);
//   - function literals and method-value expressions (closure
//     allocation — the arena pre-binds its kernels once at scratch
//     creation for exactly this reason);
//   - explicit conversions to interface types (boxing);
//   - fmt.* calls, except inside a panic(...) argument with only
//     scalar/string operands. Formatting a slice or interface makes
//     the variadic argument escape and allocate on every call even
//     when the panic branch is never taken — the exact bug fixed in
//     tensor.Reuse — while panic(fmt.Sprintf("…%d", n)) boxes its
//     scalars only on the cold panicking path.
//
// The bench gate catches allocation regressions after the fact;
// this check names the offending line before the benchmark runs.
var Hotpathcheck = &Analyzer{
	Name: "hotpathcheck",
	Doc:  "//pimcaps:hotpath functions must not allocate: no make/new/append-growth/closures/boxing/fmt",
	Run:  runHotpathcheck,
}

func runHotpathcheck(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcHasDirective(fn, HotpathDirective) {
				continue
			}
			checkHotpathBody(pass, fn)
		}
	}
	return nil
}

func checkHotpathBody(pass *Pass, fn *ast.FuncDecl) {
	// Calls lexically inside a panic(...) argument are cold-path guards
	// and get the relaxed fmt rule.
	inPanic := map[ast.Node]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "panic") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if m != nil {
					inPanic[m] = true
				}
				return true
			})
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in hot-path function %s allocates a closure; pre-bind it outside the hot path (see scratch's kernel fields)", fn.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot-path function %s; dispatch through the persistent worker pool instead", fn.Name.Name)
		case *ast.CompositeLit:
			t := typeOf(pass, n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					pass.Reportf(n.Pos(), "%s composite literal allocates in hot-path function %s", describeKind(t), fn.Name.Name)
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.MethodVal {
				if !isCalledSelector(pass, fn, n) {
					pass.Reportf(n.Pos(), "method value %s allocates a bound closure in hot-path function %s; bind it once at setup", n.Sel.Name, fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, fn, n, inPanic[n])
		}
		return true
	})
}

// checkHotpathCall applies the call-level rules: builtins that
// allocate, fmt outside cold panic guards, and interface-boxing
// conversions.
func checkHotpathCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, panicGuarded bool) {
	switch {
	case isBuiltin(pass, call.Fun, "make"):
		pass.Reportf(call.Pos(), "make in hot-path function %s; allocate at scratch creation, not per call", fn.Name.Name)
	case isBuiltin(pass, call.Fun, "new"):
		pass.Reportf(call.Pos(), "new in hot-path function %s; allocate at scratch creation, not per call", fn.Name.Name)
	case isBuiltin(pass, call.Fun, "append"):
		if !isReuseAppend(call) {
			pass.Reportf(call.Pos(), "append in hot-path function %s may grow its backing array; reslice an owned buffer to [:0] or size it at scratch creation", fn.Name.Name)
		}
	default:
		if obj := calleeObject(pass, call); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			if !panicGuarded {
				pass.Reportf(call.Pos(), "fmt.%s call in hot-path function %s allocates; hot-path fmt is only allowed inside panic(...) guards", obj.Name(), fn.Name.Name)
			} else if bad := nonScalarFmtArg(pass, call); bad != nil {
				pass.Reportf(bad.Pos(), "formatting a non-scalar makes this argument escape and allocate on every call of %s, even when the panic guard does not fire (the tensor.Reuse lesson); format scalars only", fn.Name.Name)
			}
		}
		// Explicit conversion to an interface type: T(x) boxes x.
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
				if at := typeOf(pass, call.Args[0]); at != nil {
					if _, argIface := at.Underlying().(*types.Interface); !argIface {
						pass.Reportf(call.Pos(), "conversion to interface type boxes its operand in hot-path function %s", fn.Name.Name)
					}
				}
			}
		}
	}
}

// isReuseAppend recognizes append(buf[:0], …): appending into an
// existing buffer resliced to zero, which only allocates if the data
// outgrows the buffer's capacity.
func isReuseAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := call.Args[0].(*ast.SliceExpr)
	if !ok || sl.Low != nil && !isZeroLit(sl.Low) {
		return false
	}
	return isZeroLit(sl.High)
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// isCalledSelector reports whether sel appears as the function of a
// call expression somewhere in fn (s.m() — a plain method call — as
// opposed to the method value s.m).
func isCalledSelector(pass *Pass, fn *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	called := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && call.Fun == sel {
			called = true
		}
		return !called
	})
	return called
}

// nonScalarFmtArg returns the first argument of a fmt call whose type
// is not a basic scalar or string (and would therefore escape), or nil.
func nonScalarFmtArg(pass *Pass, call *ast.CallExpr) ast.Expr {
	for _, arg := range call.Args {
		t := typeOf(pass, arg)
		if t == nil {
			continue
		}
		if _, ok := t.Underlying().(*types.Basic); !ok {
			return arg
		}
	}
	return nil
}

// isBuiltin reports whether e names the given universe-scope builtin.
func isBuiltin(pass *Pass, e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	_, isb := obj.(*types.Builtin)
	return isb
}

// calleeObject resolves the called function's object, or nil.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// describeKind names a composite-literal's underlying kind for
// diagnostics.
func describeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	}
	return "composite"
}
