package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Goroleak enforces bounded goroutine lifetimes in the long-lived
// concurrency packages (the concurrencyPkgs set shared with
// timerleak). A replica process or router runs for days; a goroutine
// spawned per request, per batch, or per subprocess that nothing ever
// joins or signals accumulates until the heap or the scheduler gives
// out — the classic leak -race cannot see. Every go statement in
// scope must exhibit one of four structural lifetime bounds in its
// body:
//
//  1. it is joined by a sync.WaitGroup (calls or defers wg.Done());
//  2. it signals a join by closing a channel (close(done), usually
//     deferred);
//  3. it receives from or selects on a shutdown channel — ctx.Done(),
//     or a channel whose name says stop/done/quit/close/shutdown/exit;
//  4. it is a bounded one-shot: no loops, no blocking receives or
//     bare selects, and every channel send targets a channel created
//     with a buffer (so an abandoned result parks instead of pinning
//     the sender forever).
//
// The body of `go f()` resolves through same-package function and
// method declarations; a body the analyzer cannot see (cross-package
// call, function value) is reported, because a lifetime nobody can
// read is a lifetime nobody bounds. Test files are exempt; deliberate
// exceptions carry //lint:ignore pimcaps/goroleak with a
// justification.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines in the concurrency packages must have bounded lifetimes: WaitGroup-joined, done-channel-signalled, shutdown-selecting, or buffered one-shots",
	Run:  runGoroleak,
}

// stopChanWords are the substrings that mark a channel as a shutdown
// or completion signal by name.
var stopChanWords = []string{"stop", "done", "quit", "close", "shutdown", "exit"}

func runGoroleak(pass *Pass) error {
	if !inConcurrencyPkg(pass) {
		return nil
	}
	// Index same-package function bodies (for `go b.run()`) and
	// channels provably created with a buffer (for the one-shot rule).
	decls := map[types.Object]*ast.FuncDecl{}
	buffered := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if obj := pass.TypesInfo.Defs[n.Name]; obj != nil {
					decls[obj] = n
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					recordBufferedChan(pass, n.Lhs[i], rhs, buffered)
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i >= len(n.Names) {
						break
					}
					recordBufferedChan(pass, n.Names[i], v, buffered)
				}
			}
			return true
		})
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(pass, g, decls)
			if body == nil {
				pass.Reportf(g.Pos(), "cannot resolve this goroutine's body to verify its lifetime is bounded; spawn a function declared in this package (or suppress with a justification)")
				return true
			}
			if reason := unboundedReason(pass, body, buffered); reason != "" {
				pass.Reportf(g.Pos(), "goroutine has no bounded lifetime: %s; join it with a WaitGroup, close a done channel, or select on a stop channel/ctx.Done()", reason)
			}
			return true
		})
	}
	return nil
}

// recordBufferedChan records lhs as a buffered channel when rhs is a
// make(chan T, n) with constant n > 0.
func recordBufferedChan(pass *Pass, lhs, rhs ast.Expr, buffered map[types.Object]bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "make" || pass.TypesInfo.Uses[fun] != types.Universe.Lookup("make") {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return
	}
	if n, ok := constant.Int64Val(tv.Value); !ok || n <= 0 {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj != nil {
		buffered[obj] = true
	}
}

// goroutineBody resolves the body a go statement will run: a function
// literal's own body, or the declaration of a same-package function or
// method. nil when the body is out of reach.
func goroutineBody(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[pass.TypesInfo.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pass.TypesInfo.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// unboundedReason inspects a goroutine body for lifetime-bound
// evidence and returns "" when any is found, else a description of
// what is missing. Nested go statements are excluded — an inner
// goroutine's shutdown handling does not bound the outer one (each go
// statement is checked on its own).
func unboundedReason(pass *Pass, body *ast.BlockStmt, buffered map[types.Object]bool) string {
	bounded := false
	loops := false
	blockingComm := false
	unbufferedSend := false
	// Communication ops of a default-carrying select are non-blocking
	// polls (ctxcheck uses the same trick): they neither pin the
	// goroutine nor count as sends an abandoned receiver could wedge.
	// Select statements are visited before their clauses, so the ops
	// are marked by the time the walk reaches them.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loops = true
		case *ast.CallExpr:
			switch calleeFullName(pass, n) {
			case "(*sync.WaitGroup).Done":
				bounded = true
				return false
			}
			if fun, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && fun.Name == "close" && pass.TypesInfo.Uses[fun] == types.Universe.Lookup("close") {
				bounded = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if isStopChan(n.X) {
					bounded = true
					return false
				}
				if !nonBlocking[n] {
					blockingComm = true
				}
			}
		case *ast.SelectStmt:
			hasDefault := selectHasDefault(n)
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				var ch ast.Expr
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					ch = comm.Chan
					if hasDefault {
						nonBlocking[comm] = true
					}
				case *ast.ExprStmt:
					if recv, ok := comm.X.(*ast.UnaryExpr); ok {
						ch = recv.X
						if hasDefault {
							nonBlocking[recv] = true
						}
					}
				case *ast.AssignStmt:
					if len(comm.Rhs) == 1 {
						if recv, ok := comm.Rhs[0].(*ast.UnaryExpr); ok {
							ch = recv.X
							if hasDefault {
								nonBlocking[recv] = true
							}
						}
					}
				}
				if ch != nil && isStopChan(ch) {
					bounded = true
					return false
				}
			}
			if !hasDefault {
				blockingComm = true
			}
		case *ast.SendStmt:
			if nonBlocking[n] {
				break
			}
			id, ok := ast.Unparen(n.Chan).(*ast.Ident)
			if !ok || !buffered[pass.TypesInfo.Uses[id]] {
				unbufferedSend = true
			}
		}
		return true
	})
	if bounded {
		return ""
	}
	switch {
	case loops:
		return "it loops without a WaitGroup join, done-channel close, or stop-channel select"
	case unbufferedSend:
		return "it sends on a channel not provably buffered, so an abandoned result pins it forever"
	case blockingComm:
		return "it blocks on channel communication with no stop channel or ctx.Done() in the select"
	}
	return ""
}

// isStopChan reports whether the channel expression reads as a
// shutdown or completion signal: a call like ctx.Done(), or a
// channel whose terminal name contains a stopChanWords substring.
func isStopChan(e ast.Expr) bool {
	name := ""
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
	}
	name = strings.ToLower(name)
	for _, w := range stopChanWords {
		if strings.Contains(name, w) {
			return true
		}
	}
	return false
}
