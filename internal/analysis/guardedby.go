package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Guardedby turns the tree's "mu guards these fields" comments into a
// checked contract. A struct field annotated
//
//	mu sync.Mutex
//	//pimcaps:guardedby mu
//	ring []Record
//
// may only be read while mu (a sync.Mutex or sync.RWMutex field of the
// same struct) is held on every path to the access, and only be
// written under the full write lock. Helpers whose name ends in
// "Locked" are exempt — their name is the contract that the caller
// holds the lock — as are accesses through function-local variables
// (a freshly constructed value is not shared yet; a local alias that
// locks through itself is tracked under its own name).
//
// Lock state is computed structurally, in the releasecheck tradition
// of flow-light path analysis: sequential statements propagate
// Lock/RLock/Unlock effects, every branch (if/for/switch/select)
// analyzes with a copy of the entry state and its changes do not
// escape the branch — so "held on all paths" degrades conservatively
// to "held on the straight-line path dominating the access". Deferred
// unlocks leave the current state held, matching the lock();
// defer unlock() idiom. Inline function literals inherit the state
// (sort.Slice callbacks run under the caller's lock); literals spawned
// by go or defer start cold.
//
// Test files are exempt; deliberate lock-free accesses (an atomic
// publish, a happens-before edge through a channel) carry
// //lint:ignore pimcaps/guardedby with the justification.
var Guardedby = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated //pimcaps:guardedby mu are only accessed with that mutex held (full lock for writes); *Locked helpers are exempt",
	Run:  runGuardedby,
}

const guardedbyDirective = "//pimcaps:guardedby"

func runGuardedby(pass *Pass) error {
	guards := map[types.Object]string{} // annotated field -> sibling mutex field name
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if ok && st.Fields != nil {
				collectGuards(pass, st, guards)
			}
			return true
		})
	}
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue // the name is the contract: caller holds the lock
			}
			w := &lockWalker{pass: pass, guards: guards, outer: map[types.Object]bool{}}
			w.addParams(fn.Recv)
			w.addParams(fn.Type.Params)
			w.block(fn.Body.List, map[string]byte{})
		}
	}
	return nil
}

// collectGuards records every //pimcaps:guardedby annotation in one
// struct type, validating that the named mutex is a sibling
// sync.Mutex/RWMutex field.
func collectGuards(pass *Pass, st *ast.StructType, guards map[types.Object]string) {
	for _, field := range st.Fields.List {
		mu := guardAnnotation(field)
		if mu == "" {
			continue
		}
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "%s cannot annotate an embedded field; name the field it guards", guardedbyDirective)
			continue
		}
		if !structHasMutex(pass, st, mu) {
			pass.Reportf(field.Pos(), "%s %s: the struct has no sync.Mutex or sync.RWMutex field named %q", guardedbyDirective, mu, mu)
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				guards[obj] = mu
			}
		}
	}
}

// guardAnnotation extracts the mutex name from a field's doc or
// trailing comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), guardedbyDirective); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return ""
}

// structHasMutex reports whether st declares a field named mu of type
// sync.Mutex or sync.RWMutex.
func structHasMutex(pass *Pass, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name == mu {
				return isSyncMutex(pass.TypesInfo.TypeOf(field.Type))
			}
		}
	}
	return false
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex
// (pointers included).
func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockWalker carries the per-function state of the guardedby check.
// Lock state maps a rendered mutex path ("f.mu", "m.rep.mu") to 'w'
// (Lock held) or 'r' (RLock held).
type lockWalker struct {
	pass   *Pass
	guards map[types.Object]string
	// outer marks receiver and parameter objects: accesses through
	// them are shared-state accesses and get checked; accesses through
	// other (function-local) variables are exempt.
	outer map[types.Object]bool
}

func (w *lockWalker) addParams(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, name := range f.Names {
			if obj := w.pass.TypesInfo.Defs[name]; obj != nil {
				w.outer[obj] = true
			}
		}
	}
}

func copyState(state map[string]byte) map[string]byte {
	c := make(map[string]byte, len(state))
	for k, v := range state {
		c[k] = v
	}
	return c
}

// block walks a statement list sequentially: lock/unlock calls mutate
// state for the statements that follow; branches run on copies.
func (w *lockWalker) block(stmts []ast.Stmt, state map[string]byte) {
	for _, s := range stmts {
		w.stmt(s, state)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, state map[string]byte) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if key, mode, ok := w.lockCall(s.X); ok {
			if mode == 0 {
				delete(state, key)
			} else {
				state[key] = mode
			}
			return
		}
		w.expr(s.X, false, state)
	case *ast.DeferStmt:
		// A deferred unlock fires at return; the lock stays held for
		// the statements that follow. A deferred literal runs after
		// the function's own unlocks may have fired: analyze it cold.
		if _, _, ok := w.lockCall(s.Call); ok {
			return
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.block(lit.Body.List, map[string]byte{})
		} else {
			w.expr(s.Call.Fun, false, state)
		}
		for _, a := range s.Call.Args {
			w.expr(a, false, state)
		}
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently: its body starts
		// with no locks held regardless of the spawner's state.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.block(lit.Body.List, map[string]byte{})
		} else {
			w.expr(s.Call.Fun, false, state)
		}
		for _, a := range s.Call.Args {
			w.expr(a, false, state)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, false, state)
		}
		for _, e := range s.Lhs {
			w.expr(e, true, state)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, true, state)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, false, state)
		}
	case *ast.SendStmt:
		w.expr(s.Chan, false, state)
		w.expr(s.Value, false, state)
	case *ast.IfStmt:
		st := copyState(state)
		w.stmt(s.Init, st)
		w.expr(s.Cond, false, st)
		w.block(s.Body.List, copyState(st))
		w.stmt(s.Else, copyState(st))
	case *ast.ForStmt:
		st := copyState(state)
		w.stmt(s.Init, st)
		w.expr(s.Cond, false, st)
		w.block(s.Body.List, copyState(st))
		w.stmt(s.Post, copyState(st))
	case *ast.RangeStmt:
		w.expr(s.X, false, state)
		w.block(s.Body.List, copyState(state))
	case *ast.SwitchStmt:
		st := copyState(state)
		w.stmt(s.Init, st)
		w.expr(s.Tag, false, st)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, false, st)
				}
				w.block(cc.Body, copyState(st))
			}
		}
	case *ast.TypeSwitchStmt:
		st := copyState(state)
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, copyState(st))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				st := copyState(state)
				w.stmt(cc.Comm, st)
				w.block(cc.Body, st)
			}
		}
	case *ast.BlockStmt:
		w.block(s.List, state)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, state)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, false, state)
					}
				}
			}
		}
	}
}

// lockCall matches `<path>.<mu>.Lock/RLock/Unlock/RUnlock()` on a sync
// mutex, returning the rendered mutex path and the resulting mode
// ('w', 'r', or 0 for release).
func (w *lockWalker) lockCall(e ast.Expr) (key string, mode byte, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !isSyncMutex(w.pass.TypesInfo.TypeOf(sel.X)) {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		mode = 'w'
	case "RLock":
		mode = 'r'
	case "Unlock", "RUnlock":
		mode = 0
	default:
		return "", 0, false
	}
	key = exprKey(sel.X)
	if key == "" {
		return "", 0, false
	}
	return key, mode, true
}

// expr scans an expression for guarded-field accesses under the
// current lock state; write marks the spine of an lvalue (or an
// address-of operand).
func (w *lockWalker) expr(e ast.Expr, write bool, state map[string]byte) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident, *ast.BasicLit:
	case *ast.SelectorExpr:
		w.access(e, write, state)
		w.expr(e.X, false, state)
	case *ast.IndexExpr:
		w.expr(e.X, write, state)
		w.expr(e.Index, false, state)
	case *ast.SliceExpr:
		w.expr(e.X, false, state)
		w.expr(e.Low, false, state)
		w.expr(e.High, false, state)
		w.expr(e.Max, false, state)
	case *ast.StarExpr:
		w.expr(e.X, write, state)
	case *ast.ParenExpr:
		w.expr(e.X, write, state)
	case *ast.UnaryExpr:
		// Taking the address hands out a write-capable reference.
		w.expr(e.X, e.Op == token.AND, state)
	case *ast.BinaryExpr:
		w.expr(e.X, false, state)
		w.expr(e.Y, false, state)
	case *ast.CallExpr:
		w.expr(e.Fun, false, state)
		for _, a := range e.Args {
			w.expr(a, false, state)
		}
	case *ast.FuncLit:
		// An inline literal (sort.Slice comparator, filter callback)
		// runs on the caller's goroutine: inherit the lock state.
		w.block(e.Body.List, copyState(state))
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, false, state)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, false, state)
		w.expr(e.Value, false, state)
	case *ast.TypeAssertExpr:
		w.expr(e.X, false, state)
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				w.block(n.Body.List, copyState(state))
				return false
			case *ast.SelectorExpr:
				w.access(n, false, state)
			}
			return true
		})
	}
}

// access checks one selector expression against the guard table.
func (w *lockWalker) access(sel *ast.SelectorExpr, write bool, state map[string]byte) {
	selection := w.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	mu, guarded := w.guards[selection.Obj()]
	if !guarded {
		return
	}
	// Accesses through function-local variables are exempt: a freshly
	// constructed value is not shared yet, and a properly locking
	// alias tracks under its own rendered path anyway.
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if v, ok := w.pass.TypesInfo.Uses[id].(*types.Var); ok {
			if !w.outer[v] && v.Parent() != w.pass.Pkg.Scope() {
				return
			}
		}
	}
	base := exprKey(sel.X)
	if base == "" {
		return // unrenderable base (call result, index): out of reach for this model
	}
	lockKey := base + "." + mu
	switch state[lockKey] {
	case 'w':
	case 'r':
		if write {
			w.pass.Reportf(sel.Pos(), "write to %s.%s holds only %s.RLock(); a write requires the full %s.Lock()", base, sel.Sel.Name, lockKey, lockKey)
		}
	default:
		verb := "read of"
		if write {
			verb = "write to"
		}
		w.pass.Reportf(sel.Pos(), "%s %s.%s is not protected: %s is annotated %s %s but %s.Lock() is not held on every path here (hold it, use a *Locked helper, or suppress with a justification)",
			verb, base, sel.Sel.Name, sel.Sel.Name, guardedbyDirective, mu, lockKey)
	}
}

// exprKey renders a simple ident/selector chain ("f", "m.rep") for
// use as a lock-state key, or "" when the expression is anything
// fancier.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
