// Package paniccheck holds the goldens for the worker-pool panic
// analyzer: rule 1 (no direct panic in worker bodies) and rule 2
// (dispatchers keep their recover-and-repanic wrapper).
package paniccheck

// parallelFor keeps the deferred recover wrapper rule 2 requires, so
// its declaration is clean.
func parallelFor(n int, fn func(lo, hi int)) {
	defer func() {
		if p := recover(); p != nil {
			panic(p)
		}
	}()
	fn(0, n)
}

// parallelChunks dropped its wrapper: rule 2 flags the declaration.
func parallelChunks(n int, fn func(worker, lo, hi int)) { // want `parallelChunks must keep its deferred recover-and-repanic wrapper`
	fn(0, 0, n)
}

type chunkJob struct{}

func (j *chunkJob) run() { // want `run must keep its deferred recover-and-repanic wrapper`
}

// runChunks is a worker-taker for rule 1 but, unlike the real pool's
// chunkJob.run, not itself a protected dispatcher.
func runChunks(n int, fn func(worker, lo, hi int)) {
	fn(0, 0, n)
}

func callers(n int) {
	parallelFor(n, func(lo, hi int) {
		panic("boom") // want `worker body passed to parallelFor calls panic directly`
	})
	parallelFor(n, func(lo, hi int) {
		_ = lo + hi
	})
	parallelChunks(n, func(w, lo, hi int) {
		if w < 0 {
			panic("bad worker") // want `worker body passed to parallelChunks calls panic directly`
		}
	})
	runChunks(n, func(w, lo, hi int) {
		panic("chunk") // want `worker body passed to runChunks calls panic directly`
	})
}

func suppressedPanic(n int) {
	parallelFor(n, func(lo, hi int) {
		//lint:ignore pimcaps/paniccheck this golden documents a justified direct panic
		panic("documented")
	})
}
