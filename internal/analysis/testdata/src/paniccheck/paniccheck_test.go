package paniccheck

// Test files are exempt: the real parallel_robust_test panics inside
// worker bodies on purpose to prove the recover wrapper works, so this
// draws no finding.

func testHelperPanics(n int) {
	parallelFor(n, func(lo, hi int) {
		panic("tests may panic in workers on purpose")
	})
}
