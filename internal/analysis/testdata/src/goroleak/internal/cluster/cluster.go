// Package cluster is the goroleak golden for the concurrency
// packages: every go statement must show a structural lifetime bound —
// WaitGroup join, done-channel close, stop-channel/ctx.Done select, or
// a buffered one-shot.
package cluster

import (
	"context"
	"sync"
)

type pool struct {
	wg   sync.WaitGroup
	stop chan struct{}
	work chan int
}

// StartWorker joins via the WaitGroup: clean.
func (p *pool) StartWorker() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for v := range p.work {
			_ = v
		}
	}()
}

// run selects on the stop channel: clean when spawned.
func (p *pool) run() {
	for {
		select {
		case <-p.stop:
			return
		case v := <-p.work:
			_ = v
		}
	}
}

// Start resolves the method body through the same package: clean.
func (p *pool) Start() {
	go p.run()
}

// Watch selects on ctx.Done(): clean.
func Watch(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// Signal closes a done channel so a joiner can wait: clean.
func Signal(work func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	return done
}

// OneShot parks its result in a buffered channel: clean even when the
// receiver abandons the wait.
func OneShot(work func() error) error {
	res := make(chan error, 1)
	go func() {
		res <- work()
	}()
	return <-res
}

// Leak ranges forever with no join, no done channel, no stop select.
func (p *pool) Leak(ch chan int) {
	go func() { // want `goroutine has no bounded lifetime: it loops`
		for v := range ch {
			_ = v
		}
	}()
}

// PinnedSender sends on an unbuffered channel: if the receiver gives
// up, the goroutine is pinned forever.
func PinnedSender(work func() error) error {
	res := make(chan error)
	go func() { // want `sends on a channel not provably buffered`
		res <- work()
	}()
	return <-res
}

// Opaque spawns a function value whose body the analyzer cannot read.
func Opaque(fn func()) {
	go fn() // want `cannot resolve this goroutine's body`
}

// Justified is Opaque with the paper trail the analyzer asks for.
func Justified(fn func()) {
	//lint:ignore pimcaps/goroleak caller passes a closure that is documented to select on its own stop channel
	go fn()
}
