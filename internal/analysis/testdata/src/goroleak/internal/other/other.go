// Package other sits outside the concurrency packages, so goroleak
// does not apply: a command or example may fire-and-forget.
package other

// FireAndForget is out of scope: clean.
func FireAndForget(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}
