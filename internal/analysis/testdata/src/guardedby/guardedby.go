// Package guardedby is the guardedby golden: fields annotated
// //pimcaps:guardedby mu are only touched under their mutex, writes
// need the full lock, *Locked helpers and fresh locals are exempt, and
// a bad annotation is itself a finding.
package guardedby

import (
	"sort"
	"sync"
)

type counter struct {
	mu sync.Mutex
	//pimcaps:guardedby mu
	n int
	// free is unannotated: accessible lock-free.
	free int
}

// Inc holds the lock across the write: clean.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Get holds via defer: clean.
func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Leak reads without the lock.
func (c *counter) Leak() int {
	return c.n // want `read of c\.n is not protected`
}

// Branchy only locks on one path, so the access is not dominated by a
// lock.
func (c *counter) Branchy(lock bool) {
	if lock {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n++ // want `write to c\.n is not protected`
}

// Early unlocks before the read.
func (c *counter) Early() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want `read of c\.n is not protected`
}

// Free touches only the unannotated field: clean.
func (c *counter) Free() int { return c.free }

// nLocked is exempt by suffix: the name is the caller's contract.
func (c *counter) nLocked() int { return c.n }

// Sum uses the exempt helper under the lock: clean.
func (c *counter) Sum() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nLocked() + c.free
}

// newCounter touches fields of a value it just built: locals are not
// shared yet, so this is clean.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// Sampled documents a deliberate lock-free read with a suppression.
func (c *counter) Sampled() int {
	//lint:ignore pimcaps/guardedby benign stat read, staleness is acceptable here
	return c.n
}

type gauge struct {
	mu sync.RWMutex
	//pimcaps:guardedby mu
	vals []float64
}

// Read under RLock: clean.
func (g *gauge) Read(i int) float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.vals[i]
}

// SortUnder runs an inline closure under the write lock; the literal
// inherits the lock state: clean.
func (g *gauge) SortUnder() {
	g.mu.Lock()
	defer g.mu.Unlock()
	sort.Slice(g.vals, func(i, j int) bool { return g.vals[i] < g.vals[j] })
}

// WeakWrite writes under only the read lock.
func (g *gauge) WeakWrite(v float64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.vals = append(g.vals, v) // want `write to g\.vals holds only g\.mu\.RLock\(\)`
}

// Spawn hands the fields to a goroutine that starts cold: the
// spawner's lock does not protect the goroutine body.
func (g *gauge) Spawn() {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		_ = g.vals // want `read of g\.vals is not protected`
	}()
}

type orphan struct {
	//pimcaps:guardedby lock
	x int // want `no sync\.Mutex or sync\.RWMutex field named "lock"`
}

// use keeps the linter-clean golden compiling.
func use(o *orphan) int { return o.x }

var _ = newCounter
