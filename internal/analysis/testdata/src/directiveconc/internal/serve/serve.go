// Package serve exercises the suppression machinery against the
// concurrency analyzers (guardedby, goroleak, timerleak): a
// reason-less directive must not suppress the timerleak finding
// beneath it, a directive on an already-clean goroutine is stale, and
// a justified guardedby suppression works and is counted as used.
// Checked by a direct unit test rather than want comments — appending
// a want comment to a directive line would become the directive's
// reason text.
package serve

import (
	"sync"
	"time"
)

// missingReason carries a pimcaps/timerleak directive with no
// justification: the directive is malformed and the time.After finding
// beneath it must still be reported.
func missingReason(stop <-chan struct{}) {
	select {
	//lint:ignore pimcaps/timerleak
	case <-time.After(time.Second):
	case <-stop:
	}
}

// staleIgnore joins its goroutine with a WaitGroup, so goroleak has
// nothing to report and the directive is stale.
func staleIgnore(wg *sync.WaitGroup) {
	wg.Add(1)
	//lint:ignore pimcaps/goroleak the worker is joined by the caller's Wait
	go func() {
		defer wg.Done()
	}()
}

type gauge struct {
	mu sync.Mutex
	//pimcaps:guardedby mu
	n int
}

// justified reads g.n lock-free under a properly justified directive:
// the guardedby finding is suppressed and the directive counts as
// used (no stale report).
func justified(g *gauge) int {
	//lint:ignore pimcaps/guardedby single-goroutine test helper, no concurrent writer exists
	return g.n
}
