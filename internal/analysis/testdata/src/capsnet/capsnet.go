// Package capsnet is the analysistest stand-in for the real
// internal/capsnet: just enough surface (Output, Release, the Forward
// entry points) for the releasecheck goldens to type-check.
package capsnet

// Output mirrors the arena-backed forward result.
type Output struct {
	Lengths []float32
}

// Release returns the Output's scratch arena to the pool.
func (o *Output) Release() {}

// Predictions mirrors a read-only accessor on the Output.
func (o *Output) Predictions() []int { return nil }

// Network mirrors the owning network.
type Network struct{}

// Forward mirrors the single-tensor entry point.
func (n *Network) Forward(x []float32) *Output { return &Output{} }

// ForwardBatch mirrors the batch entry point.
func (n *Network) ForwardBatch(x [][]float32) *Output { return &Output{} }
