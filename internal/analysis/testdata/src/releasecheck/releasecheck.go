// Package releasecheck holds the goldens for the Output-release
// analyzer: each flagged line carries a want annotation; the clean
// functions document the release and escape shapes the check accepts.
package releasecheck

import "capsnet"

func neverReleased(net *capsnet.Network, x []float32) int {
	out := net.Forward(x) // want `capsnet\.Output from Forward is never released; call or defer out\.Release`
	return len(out.Lengths)
}

func dropped(net *capsnet.Network, x []float32) {
	net.Forward(x) // want `result of Forward is a capsnet\.Output that is never released`
}

func discarded(net *capsnet.Network, x [][]float32) {
	_ = net.ForwardBatch(x) // want `capsnet\.Output from ForwardBatch is discarded without Release`
}

func earlyReturn(net *capsnet.Network, x []float32, bad bool) int {
	out := net.Forward(x)
	if bad {
		return 0 // want `return may leak the capsnet\.Output acquired at line 22`
	}
	defer out.Release()
	return len(out.Lengths)
}

func deferredRelease(net *capsnet.Network, x []float32) int {
	out := net.Forward(x)
	defer out.Release()
	return len(out.Lengths)
}

func immediateRelease(net *capsnet.Network, x [][]float32) []int {
	out := net.ForwardBatch(x)
	preds := out.Predictions()
	out.Release()
	return preds
}

func escapesToCaller(net *capsnet.Network, x []float32) *capsnet.Output {
	out := net.Forward(x)
	return out
}

func escapesToCallee(net *capsnet.Network, x []float32) {
	out := net.Forward(x)
	consume(out)
}

func consume(o *capsnet.Output) { o.Release() }

func suppressedLeak(net *capsnet.Network, x []float32) int {
	//lint:ignore pimcaps/releasecheck this golden documents a justified unreleased Output
	out := net.Forward(x)
	return len(out.Lengths)
}
