package releasecheck

import "capsnet"

// Test files are exempt from releasecheck: tests exercise the
// unreleased (safe-but-unpooled) behavior on purpose, so this leak
// draws no finding.

func testHelperLeaks(net *capsnet.Network) {
	net.Forward(nil)
}
