// Package cluster is a dummy router-tier package for the obs layer
// golden.
package cluster
