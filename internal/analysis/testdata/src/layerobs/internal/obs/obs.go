// Package obs is the layercheck golden for the observability-layer
// rule: stdlib imports and the trace-event writer are fine, any other
// project import — the router tier especially — inverts the DAG.
package obs

import (
	_ "time"

	_ "layerobs/internal/cluster" // want `internal/obs must not import layerobs/internal/cluster: obs is imported by every tier`
	_ "layerobs/internal/trace"
)
