// Package trace is the allowed dependency dummy for the obs layer
// golden: the trace-event writer is the one project import obs keeps.
package trace
