// Package main is the layercheck golden for the cmd-independence
// rule: a command may reach shared internal packages but never
// another command.
package main

import (
	_ "cmd/beta" // want `cmd/alpha must not import cmd/beta: commands are independent composition roots`

	_ "internal/obs"
)

func main() {}
