// Package beta is a dummy command-layer package for the
// cmd-independence golden; it imports nothing and stays clean.
package beta
