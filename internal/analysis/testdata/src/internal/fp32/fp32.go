// Package fp32 is the layercheck golden for a clean bottom-layer
// package: standard-library imports only, so no findings.
package fp32

import "math"

// Abs keeps the math import used.
func Abs(x float64) float64 { return math.Abs(x) }
