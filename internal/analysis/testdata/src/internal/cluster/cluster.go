// Package cluster is the layercheck golden for the replica-tier rule:
// the router is model-free and must not import the model or a replica's
// in-process API.
package cluster

import (
	_ "internal/capsnet" // want `internal/cluster must not import internal/capsnet: the replica tier is model-free`
	_ "internal/loadgen" // want `internal/cluster must not import internal/loadgen: the replica tier is model-free and measured from outside`
	_ "internal/tensor"  // want `internal/cluster must not import internal/tensor: the replica tier is model-free`
)
