// Package obs is a dummy upper-layer package for the layer goldens.
package obs
