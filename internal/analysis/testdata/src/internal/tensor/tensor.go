// Package tensor is the layercheck golden for the stdlib-only
// bottom-layer rule: one stdlib import (fine) and one project-internal
// import (flagged).
package tensor

import (
	_ "math"

	_ "internal/obs" // want `internal/tensor must not import internal/obs: tensor is the numeric bottom layer`
)
