// Package serve is the layercheck golden for the replica-layer rule: a
// replica must not reach up into the router tier.
package serve

import (
	_ "internal/cluster" // want `internal/serve must not import internal/cluster: a replica must not know about the tier above it`
	_ "internal/loadgen" // want `internal/serve must not import internal/loadgen: a replica must not know about the tier above it nor the harness that measures it`
)
