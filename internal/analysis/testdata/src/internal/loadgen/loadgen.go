// Package loadgen is the layercheck golden for the load-harness rule:
// the open-loop generator measures the serving stack from outside, so
// apart from the obs histograms it records into it is pinned to the
// standard library.
package loadgen

import (
	_ "internal/fault" // want `internal/loadgen must not import internal/fault: the load generator measures the serving stack from outside`
	_ "internal/obs"   // the one allowed edge: latency lands in obs histograms
	_ "sort"
)
