package capsnet

// Test files are exempt from the layer table: integration tests may
// wire layers together freely, so this import draws no finding.

import _ "internal/obs"
