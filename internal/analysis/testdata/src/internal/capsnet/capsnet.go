// Package capsnet is the layercheck golden for the capsnet-layer rule:
// the serving/observability/fault stack must stay above it.
package capsnet

import (
	_ "internal/fault" // want `internal/capsnet must not import internal/fault`
	_ "internal/obs"   // want `internal/capsnet must not import internal/obs`
)
