// Package serve is the timerleak golden for the strict rule: inside
// the long-lived concurrency packages time.After never appears at all.
package serve

import "time"

// WaitOnce would be fine elsewhere; here even a one-shot time.After
// pins its timer for the full duration when the select exits early.
func WaitOnce(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Minute): // want `time\.After starts a timer nothing can stop`
		return 0
	}
}

// Bounded is the replacement the analyzer points at: clean.
func Bounded(ch chan int) int {
	t := time.NewTimer(time.Minute)
	defer t.Stop()
	select {
	case v := <-ch:
		return v
	case <-t.C:
		return 0
	}
}
