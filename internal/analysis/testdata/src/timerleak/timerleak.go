// Package timerleak is the timerleak golden for the tree-wide rules:
// no time.After in loops, no time.Tick ever, and every
// NewTimer/NewTicker reaches Stop on all paths.
package timerleak

import "time"

// WaitOnce is a one-shot time.After outside the concurrency packages:
// clean.
func WaitOnce(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second):
		return 0
	}
}

// PollLoop re-arms time.After every iteration: one live runtime timer
// per lap.
func PollLoop(ch chan int, stop chan struct{}) {
	for {
		select {
		case <-ch:
		case <-time.After(time.Second): // want `time\.After inside a loop`
		case <-stop:
			return
		}
	}
}

// TickLeak uses the constructor that can never be stopped.
func TickLeak() <-chan time.Time {
	return time.Tick(time.Second) // want `time\.Tick leaks its ticker by design`
}

// Metronome stops its ticker via defer: clean.
func Metronome(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-stop:
			return
		}
	}
}

// Reused is the drain-safe reuse idiom: clean.
func Reused(waits []time.Duration, ch chan int) {
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for _, d := range waits {
		timer.Reset(d)
		select {
		case <-ch:
		case <-timer.C:
		}
	}
}

// NeverStopped arms a ticker nothing stops.
func NeverStopped(ch chan int) {
	t := time.NewTicker(time.Second) // want `ticker from time\.NewTicker never reaches Stop\(\)`
	for range ch {
		<-t.C
	}
}

// Dropped discards the only handle.
func Dropped() {
	time.NewTicker(time.Second) // want `time\.NewTicker result is dropped`
}

// Blank discards it by name.
func Blank() {
	_ = time.NewTimer(time.Second) // want `timer from time\.NewTimer is discarded`
}

// EarlyReturn can exit before the deferred Stop is installed.
func EarlyReturn(ready bool) {
	t := time.NewTimer(time.Second)
	if !ready {
		return // want `return may abandon the running timer`
	}
	defer t.Stop()
	<-t.C
}

// Handoff escapes the timer to the caller, who inherits the Stop
// obligation: clean.
func Handoff() *time.Timer {
	t := time.NewTimer(time.Second)
	return t
}

// Justified documents a deliberate leak with a suppression.
func Justified(ch chan int) {
	for range ch {
		//lint:ignore pimcaps/timerleak one-shot helper exercised only in short-lived CLI runs
		<-time.After(time.Millisecond)
	}
}
