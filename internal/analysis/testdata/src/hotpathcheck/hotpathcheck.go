// Package hotpathcheck holds the goldens for the allocation-free
// hot-path analyzer: every construct the check forbids, the idioms it
// deliberately allows, and the opt-in/suppression paths.
package hotpathcheck

import "fmt"

type state struct {
	buf   []int
	shape []int
}

func (s *state) step() {}

// notAnnotated may allocate freely: the check is opt-in via the
// directive.
func notAnnotated(n int) []int {
	return make([]int, n)
}

//pimcaps:hotpath
func allocates(s *state, n int) {
	s.buf = make([]int, n) // want `make in hot-path function allocates`
	_ = new(state)         // want `new in hot-path function allocates`
}

//pimcaps:hotpath
func appends(s *state, shape []int) {
	s.shape = append(s.shape, shape...) // want `append in hot-path function appends may grow its backing array`
	s.shape = append(s.shape[:0], shape...)
}

//pimcaps:hotpath
func closures(s *state) {
	f := func() {} // want `function literal in hot-path function closures allocates a closure`
	f()
	g := s.step // want `method value step allocates a bound closure`
	g()
	s.step()
}

//pimcaps:hotpath
func launches(s *state) {
	go s.step() // want `go statement in hot-path function launches`
}

//pimcaps:hotpath
func literals(s *state) {
	s.buf = []int{1, 2} // want `slice composite literal allocates`
	m := map[int]int{}  // want `map composite literal allocates`
	_ = m
	st := state{}
	_ = st
}

//pimcaps:hotpath
func formats(n int, xs []float32) {
	fmt.Println(n) // want `fmt\.Println call in hot-path function formats allocates`
	if n < 0 {
		panic(fmt.Sprintf("formats: bad n %d", n))
	}
	if len(xs) == 0 {
		panic(fmt.Sprintf("formats: bad xs %v", xs)) // want `formatting a non-scalar makes this argument escape`
	}
}

//pimcaps:hotpath
func boxes(n int) {
	_ = any(n) // want `conversion to interface type boxes its operand`
}

//pimcaps:hotpath
func suppressedAlloc(s *state, n int) {
	//lint:ignore pimcaps/hotpathcheck this golden documents a justified one-time growth
	s.buf = make([]int, n)
}
