// Package floateqcheck holds the goldens for the float-equality
// analyzer: plain comparisons are flagged, the constant-comparand and
// NaN idioms pass, and a lint:ignore silences a single site.
package floateqcheck

const eps = 1e-6

func compare(a, b float32, c, d float64, i, j int) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if c != d { // want `floating-point != comparison`
		return false
	}
	if a == 0 {
		return true
	}
	if a != a {
		return false
	}
	if c == eps {
		return true
	}
	return i == j
}

func suppressed(a, b float32) bool {
	//lint:ignore pimcaps/floateqcheck this golden documents a justified exact comparison
	return a == b
}
