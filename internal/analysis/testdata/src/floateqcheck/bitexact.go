//pimcaps:bitexact

package floateqcheck

// bitIdentical lives in a //pimcaps:bitexact file: exact comparison is
// the property under test, so the whole file is exempt.
func bitIdentical(a, b float32) bool { return a == b }
