// Package directive exercises the suppression machinery itself: a
// malformed //lint:ignore (no reason) must not suppress anything and
// is reported, and a directive that matches no finding is reported as
// stale. Checked by a direct unit test rather than want comments —
// appending a want comment to a directive line would become the
// directive's reason text.
package directive

func missingReason(a, b float64) bool {
	//lint:ignore pimcaps/floateqcheck
	return a == b
}

func unusedIgnore(i, j int) bool {
	//lint:ignore pimcaps/floateqcheck ints never needed this ignore
	return i == j
}
