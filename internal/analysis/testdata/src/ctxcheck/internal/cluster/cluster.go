// Package cluster is the ctxcheck golden for the router tier,
// including the justified-suppression path for process-teardown joins.
package cluster

import (
	"context"
	"sync"
)

// WaitReady takes ctx first: clean.
func WaitReady(ctx context.Context, ch chan struct{}) error {
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

type Manager struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

// Stop is the documented exception: the teardown join is bounded by
// the supervised goroutines' own stop handling, and no caller context
// exists at process exit.
//
//lint:ignore pimcaps/ctxcheck teardown join is bounded by the stop channel; no caller context exists at process exit
func (m *Manager) Stop() {
	close(m.stop)
	m.wg.Wait()
}

// Kill is the same join without the justification: rule 1 fires.
func (m *Manager) Kill() { // want `exported Kill blocks on sync.WaitGroup.Wait`
	m.wg.Wait()
}
