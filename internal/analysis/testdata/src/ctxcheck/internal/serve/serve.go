// Package serve is the ctxcheck golden for the replica tier: exported
// blocking entry points must accept a context, and request-path code
// must not mint root contexts.
package serve

import (
	"context"
	"sync"
	"time"
)

type Batcher struct {
	ch   chan int
	stop chan struct{}
	wg   sync.WaitGroup
}

// Submit takes ctx first and may block: clean.
func (b *Batcher) Submit(ctx context.Context, v int) error {
	select {
	case b.ch <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close joins the workers without a context: rule 1.
func (b *Batcher) Close() { // want `exported Close blocks on sync.WaitGroup.Wait but has no context.Context first parameter`
	close(b.stop)
	b.wg.Wait()
}

// Drain receives without a context: rule 1.
func Drain(ch chan int) int { // want `exported Drain blocks on a channel receive`
	return <-ch
}

// Push sends without a context: rule 1.
func Push(ch chan int, v int) { // want `exported Push blocks on a channel send`
	ch <- v
}

// Warm sleeps without a context: rule 1.
func Warm() { // want `exported Warm blocks on time.Sleep`
	time.Sleep(time.Millisecond)
}

// Collect waits on a bare select without a context: rule 1.
func (b *Batcher) Collect() int { // want `exported Collect blocks on a select`
	select {
	case v := <-b.ch:
		return v
	case <-b.stop:
		return 0
	}
}

// TryPush polls with a default clause — non-blocking, clean.
func (b *Batcher) TryPush(v int) bool {
	select {
	case b.ch <- v:
		return true
	default:
		return false
	}
}

// Start only spawns a goroutine; the closure's blocking belongs to the
// goroutine, not the caller: clean.
func (b *Batcher) Start() {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		<-b.stop
	}()
}

// drain is unexported: rule 1 does not apply, rule 2 still does.
func drain(b *Batcher) error {
	v := <-b.ch
	return b.Submit(context.Background(), v) // want `context.Background mints an unbounded root context`
}

// Later defers the deadline decision: rule 2.
func Later() context.Context {
	return context.TODO() // want `context.TODO mints an unbounded root context`
}
