package serve

import (
	"context"
	"testing"
)

// Tests are exempt from both rules: harnesses mint root contexts and
// hold uncancellable waits on purpose.
func TestSubmit(t *testing.T) {
	b := &Batcher{ch: make(chan int, 1), stop: make(chan struct{})}
	if err := b.Submit(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := Drain(b.ch); got != 1 {
		t.Fatalf("Drain = %d, want 1", got)
	}
}
