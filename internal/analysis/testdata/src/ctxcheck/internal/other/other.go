// Package other sits outside the serving tiers: ctxcheck leaves it
// alone even though it blocks context-free and mints a root.
package other

import "context"

func Drain(ch chan int) int { return <-ch }

func Root() context.Context { return context.Background() }
