package analysis

import (
	"strings"
)

// Layercheck enforces the repository's import DAG from a declarative
// table. The layering is what keeps the reproduction honest: the
// numeric bottom (tensor, fp32) must stay dependency-free so kernels
// are portable and benchmarkable in isolation; capsnet must never
// grow an edge to the serving/observability/fault stack (the
// StageTimer hook exists precisely so obs can observe forward passes
// without capsnet importing it); and cmd binaries stay independent
// composition roots. Rules match on trailing path segments so the
// analysistest fakes under testdata exercise the same table as the
// real tree. Test files are exempt — integration tests may wire layers
// together freely.
var Layercheck = &Analyzer{
	Name: "layercheck",
	Doc:  "imports must respect the layer table (tensor/fp32 at the bottom, capsnet below obs/serve/fault, cmds independent)",
	Run:  runLayercheck,
}

// A layerRule constrains the imports of packages matching Pkg (a
// trailing-segment pattern). If StdlibOnly is set, no project-internal
// import is allowed except those matching an Allow pattern; otherwise
// imports matching any Forbid pattern (consecutive-segment match) are
// rejected.
type layerRule struct {
	Pkg        string
	StdlibOnly bool
	Allow      []string
	Forbid     []string
	Why        string
}

var layerRules = []layerRule{
	{
		Pkg:        "internal/tensor",
		StdlibOnly: true,
		Why:        "tensor is the numeric bottom layer and may import only the standard library",
	},
	{
		Pkg:        "internal/fp32",
		StdlibOnly: true,
		Why:        "fp32 is the numeric bottom layer and may import only the standard library",
	},
	{
		Pkg:        "internal/deadline",
		StdlibOnly: true,
		Why:        "deadline is a wire contract shared by serve and cluster across the tier boundary; importing either side would create a cycle through the layer DAG",
	},
	{
		Pkg:        "internal/obs",
		StdlibOnly: true,
		Allow:      []string{"internal/trace"},
		Why:        "obs is imported by every tier, so beyond the trace-event writer it must stay standard-library-only; an edge to serve or cluster would invert the layer DAG",
	},
	{
		Pkg:        "internal/loadgen",
		StdlibOnly: true,
		Allow:      []string{"internal/obs"},
		Why:        "the load generator measures the serving stack from outside, so beyond the obs histograms it records into it must stay standard-library-only; an edge into the stack under test would let the harness share the very fate it exists to observe",
	},
	{
		Pkg:    "internal/capsnet",
		Forbid: []string{"internal/obs", "internal/serve", "internal/fault"},
		Why:    "capsnet must not depend on the serving stack; observability reaches it through the StageTimer hook",
	},
	{
		Pkg:    "internal/cluster",
		Forbid: []string{"internal/capsnet", "internal/serve", "internal/tensor", "internal/loadgen"},
		Why:    "the replica tier is model-free and measured from outside: it moves opaque bytes between capsnet-serve processes, speaks only the serving HTTP protocol, and never imports the load harness that drives it",
	},
	{
		Pkg:    "internal/serve",
		Forbid: []string{"internal/cluster", "internal/loadgen"},
		Why:    "a replica must not know about the tier above it nor the harness that measures it; the router observes replicas via /readyz, never the reverse",
	},
}

func runLayercheck(pass *Pass) error {
	pkgPath := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	var active []layerRule
	for _, r := range layerRules {
		if hasSegments(pkgPath, r.Pkg) {
			active = append(active, r)
		}
	}
	isCmd := cmdName(pkgPath) != ""

	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			for _, r := range active {
				if r.StdlibOnly && pass.IsProjectPkg != nil && pass.IsProjectPkg(path) && !matchesAny(path, r.Allow) {
					pass.Reportf(imp.Pos(), "%s must not import %s: %s", r.Pkg, path, r.Why)
					continue
				}
				for _, f := range r.Forbid {
					if hasSegments(path, f) {
						pass.Reportf(imp.Pos(), "%s must not import %s: %s", r.Pkg, path, r.Why)
					}
				}
			}
			if isCmd {
				if c := cmdName(path); c != "" && c != cmdName(pkgPath) {
					pass.Reportf(imp.Pos(), "cmd/%s must not import cmd/%s: commands are independent composition roots; share code via internal packages", cmdName(pkgPath), c)
				}
			}
		}
	}
	return nil
}

// matchesAny reports whether path matches any of the patterns under
// hasSegments semantics.
func matchesAny(path string, patterns []string) bool {
	for _, p := range patterns {
		if hasSegments(path, p) {
			return true
		}
	}
	return false
}

// hasSegments reports whether path contains pattern's "/"-separated
// segments consecutively (so "internal/obs" matches
// "pimcapsnet/internal/obs" but not "internal/observe").
func hasSegments(path, pattern string) bool {
	segs := strings.Split(path, "/")
	want := strings.Split(pattern, "/")
	for i := 0; i+len(want) <= len(segs); i++ {
		match := true
		for j, w := range want {
			if segs[i+j] != w {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// cmdName returns the binary name if path is a cmd/<name> package
// (possibly below a module prefix), else "".
func cmdName(path string) string {
	segs := strings.Split(path, "/")
	for i, s := range segs {
		if s == "cmd" && i+1 < len(segs) {
			return segs[i+1]
		}
	}
	return ""
}
