package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Ctxcheck enforces the deadline-propagation contract on the two
// request-path tiers (internal/serve, internal/cluster). Overload
// robustness rests on every wait being boundable: a request's deadline
// arrives over the wire (internal/deadline), becomes a context, and
// must be able to reach every point that can block. Two rules make
// that structural:
//
//  1. An exported function or method that blocks directly in its own
//     body — select without a default clause, channel send or receive,
//     time.Sleep, sync.WaitGroup.Wait — must take a context.Context as
//     its first parameter. Blocking inside a function literal is the
//     spawned goroutine's business, not the caller's, and is exempt.
//  2. context.Background and context.TODO are never called in these
//     packages: a root context on the request path severs the deadline
//     chain. Roots belong in func main and in tests.
//
// Test files are exempt from both rules (harnesses wait and mint roots
// freely); deliberate exceptions carry a //lint:ignore pimcaps/ctxcheck
// directive with a justification, e.g. a process-teardown join that has
// no caller context by construction.
var Ctxcheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "exported blocking functions in the serving tiers take a context.Context first parameter, and request-path code never mints a root context",
	Run:  runCtxcheck,
}

// ctxcheckPkgs are the trailing-segment patterns of the packages under
// the deadline-propagation contract.
var ctxcheckPkgs = []string{"internal/serve", "internal/cluster"}

func runCtxcheck(pass *Pass) error {
	pkgPath := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	target := false
	for _, p := range ctxcheckPkgs {
		if hasSegments(pkgPath, p) {
			target = true
			break
		}
	}
	if !target || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if ctxFirstParam(pass, fn) {
				continue
			}
			if op := firstBlockingOp(pass, fn.Body); op != "" {
				pass.Reportf(fn.Name.Pos(), "exported %s blocks on %s but has no context.Context first parameter; callers cannot bound or abandon the wait", fn.Name.Name, op)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeFullName(pass, call) {
			case "context.Background", "context.TODO":
				pass.Reportf(call.Pos(), "%s mints an unbounded root context on the request path; thread the caller's context instead (roots belong in func main and tests)", calleeFullName(pass, call))
			}
			return true
		})
	}
	return nil
}

// ctxFirstParam reports whether fn's first parameter is a
// context.Context.
func ctxFirstParam(pass *Pass, fn *ast.FuncDecl) bool {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(params.List[0].Type)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// firstBlockingOp walks body and names the first operation that can
// block the calling goroutine indefinitely, or returns "" if none.
// Function-literal bodies are skipped: their blocking belongs to the
// goroutine (or callback invoker) that runs them, which is where the
// context check applies instead.
func firstBlockingOp(pass *Pass, body *ast.BlockStmt) string {
	op := ""
	// Communication ops of a default-carrying select are non-blocking
	// polls; they are collected here so the walk skips them while still
	// inspecting the clause bodies.
	nonBlocking := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if op != "" || nonBlocking[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						nonBlocking[cc.Comm] = true
					}
				}
				return true
			}
			op = "a select"
			return false
		case *ast.SendStmt:
			op = "a channel send"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				op = "a channel receive"
				return false
			}
		case *ast.CallExpr:
			switch calleeFullName(pass, n) {
			case "time.Sleep":
				op = "time.Sleep"
				return false
			case "(*sync.WaitGroup).Wait":
				op = "sync.WaitGroup.Wait"
				return false
			}
		}
		return true
	})
	return op
}

// selectHasDefault reports whether the select carries a default clause
// (making it a non-blocking poll).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// calleeFullName resolves a call's callee to its types.Func full name
// (e.g. "time.Sleep", "(*sync.WaitGroup).Wait"), or "" when the callee
// is not a named function or method.
func calleeFullName(pass *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}
