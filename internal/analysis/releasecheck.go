package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Releasecheck enforces the scratch-arena ownership contract from the
// allocation-free forward path: every *capsnet.Output obtained from
// Network.Forward/ForwardBatch must reach Release() on all paths, or
// visibly escape to a caller who inherits the obligation. An Output
// that is dropped keeps a whole forward-pass arena out of the
// Network's pool, so the next request allocates a fresh slab and the
// steady-state 0 allocs/op guarantee quietly dies. The serve handler
// (internal/serve/server.go) is the model: copy what the response
// needs, then defer out.Release().
//
// The check is flow-light by design: a function that acquires an
// Output must (a) call or defer Release on it, or (b) let it escape
// (return it, store it, pass it to another function) — and no return
// statement may appear between the acquisition and the first
// Release/escape, the classic early-return leak. Test files are
// exempt: tests exercise the unreleased (pre-arena, safe-but-unpooled)
// behavior on purpose.
var Releasecheck = &Analyzer{
	Name: "releasecheck",
	Doc:  "capsnet.Output values must be Release()d on every path or escape to the caller",
	Run:  runReleasecheck,
}

// isCapsnetOutput reports whether t is *Output for an Output type
// declared in a package whose import path ends in "capsnet" (matching
// both the real internal/capsnet and analysistest fakes).
func isCapsnetOutput(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "Output" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "capsnet" || strings.HasSuffix(path, "/capsnet")
}

func runReleasecheck(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkFuncReleases(pass, fn)
			return true
		})
	}
	return nil
}

// checkFuncReleases inspects one function for Output acquisitions and
// their release/escape fate.
func checkFuncReleases(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are separate scopes; keep it simple
		case *ast.ExprStmt:
			// A bare `net.Forward(x, m)` drops the Output on the floor
			// (a chained .Release() consumes it and is fine).
			if call, ok := n.X.(*ast.CallExpr); ok && isCapsnetOutput(typeOf(pass, call)) {
				pass.Reportf(call.Pos(), "result of %s is a capsnet.Output that is never released; call Release() when done with it", calleeName(call))
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isCapsnetOutput(typeOf(pass, call)) {
				return true
			}
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					if !ok {
						continue
					}
					pass.Reportf(call.Pos(), "capsnet.Output from %s is discarded without Release()", calleeName(call))
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || !isCapsnetOutput(obj.Type()) {
					continue
				}
				checkOutputVar(pass, fn, n, call, obj)
			}
		}
		return true
	})
}

// checkOutputVar traces one acquired Output variable through the
// function body: a Release (called or deferred) discharges the
// obligation, a field read (out.Lengths) or method call
// (out.Predictions()) merely uses it, and any other mention — return,
// argument, store, alias — escapes it to a new owner. A return
// statement positioned between the acquisition and the first
// Release/escape is the classic early-return leak and is reported.
func checkOutputVar(pass *Pass, fn *ast.FuncDecl, acq *ast.AssignStmt, call *ast.CallExpr, obj types.Object) {
	guardPos := token.Pos(-1) // position of the first Release or escape
	note := func(pos token.Pos) {
		if guardPos < 0 || pos < guardPos {
			guardPos = pos
		}
	}
	var deferStack []*ast.DeferStmt
	released, escaped := false, false

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferStack = append(deferStack, n)
			ast.Inspect(n.Call, visit)
			deferStack = deferStack[:len(deferStack)-1]
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					if sel.Sel.Name == "Release" {
						released = true
						// A deferred release guards from the defer
						// statement onward.
						pos := n.Pos()
						if len(deferStack) > 0 {
							pos = deferStack[len(deferStack)-1].Pos()
						}
						note(pos)
					}
					// Method call on the Output: receiver use, not an
					// escape; still scan the arguments.
					for _, arg := range n.Args {
						ast.Inspect(arg, visit)
					}
					return false
				}
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				return false // field read like out.Lengths: not an escape
			}
		case *ast.Ident:
			if pass.TypesInfo.Uses[n] == obj && n.Pos() > acq.End() {
				// Any other use after acquisition — argument, return,
				// store, alias — conservatively transfers the release
				// obligation to the new holder.
				escaped = true
				note(n.Pos())
			}
		}
		return true
	}
	ast.Inspect(fn.Body, visit)

	if !released && !escaped {
		pass.Reportf(acq.Pos(), "capsnet.Output from %s is never released; call or defer %s.Release()", calleeName(call), obj.Name())
		return
	}
	// Early-return leak: a return reachable between acquisition and the
	// first Release/escape abandons the arena on that path. Comparing
	// the return's END against the guard keeps `return out` clean: the
	// escape there is inside the return statement itself.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > acq.End() && (guardPos < 0 || ret.End() <= guardPos) {
			pass.Reportf(ret.Pos(), "return may leak the capsnet.Output acquired at line %d: Release is not yet deferred on this path", pass.Fset.Position(acq.Pos()).Line)
		}
		return true
	})
}

// typeOf returns the static type of e, or nil.
func typeOf(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// calleeName renders the called function for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	default:
		return "call"
	}
}
