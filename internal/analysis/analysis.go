// Package analysis is a self-contained single-pass analyzer framework
// in the mold of golang.org/x/tools/go/analysis, built on the standard
// library only (this repository vendors no modules and builds offline,
// so the x/tools dependency is deliberately absent — see DESIGN.md).
// It exists to turn the repository's load-bearing conventions — every
// capsnet.Output is released, the import DAG stays layered, the
// hot-path kernels stay allocation-free, floats are never compared
// with == outside bit-exact contexts, and the worker-pool panic
// contract holds — into compiler-grade checks that run on every PR via
// cmd/pimcaps-vet.
//
// The shape mirrors x/tools deliberately: an Analyzer owns a name, a
// doc string, and a Run function over a Pass; a Pass exposes the
// package's syntax, type information, and a Reportf sink. Should the
// dependency ever become available, porting an analyzer is a
// mechanical substitution of import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Run is invoked once per
// loaded package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in suppression
	// directives, always spelled with the pimcaps/ namespace prefix in
	// user-facing text (e.g. pimcaps/releasecheck).
	Name string
	// Doc states the invariant the analyzer enforces and why it exists.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// A Pass carries one package's worth of material to an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the parsed syntax trees: the package's GoFiles plus,
	// for augmented test passes, its in-package _test.go files.
	Files []*ast.File
	// Pkg and TypesInfo hold the fully type-checked package.
	Pkg       *types.Package
	TypesInfo *types.Info
	// IsProjectPkg reports whether an import path belongs to this
	// project (as opposed to the standard library). The driver supplies
	// the module-prefix test; the analysistest harness supplies a
	// testdata-root test, so layer rules behave identically in both.
	IsProjectPkg func(path string) bool

	testFiles   map[*ast.File]bool
	diagnostics []Diagnostic
}

// IsTestFile reports whether f came from a _test.go source, for
// analyzers whose invariants exempt test code (tests may hold Outputs
// unreleased or panic inside worker bodies on purpose).
func (p *Pass) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// IgnorePrefix is the check namespace accepted by suppression
// directives: //lint:ignore pimcaps/<name> reason.
const IgnorePrefix = "pimcaps/"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	names  map[string]bool // analyzer names (without the pimcaps/ prefix); nil means malformed
	line   int             // line the directive suppresses
	pos    token.Pos
	reason string
	used   bool
}

// suppressions indexes every ignore directive in a set of files.
type suppressions struct {
	fset       *token.FileSet
	directives []*ignoreDirective
	byLine     map[string]map[int][]*ignoreDirective // file -> line -> directives
}

// parseSuppressions collects //lint:ignore directives from files. A
// directive written on its own line suppresses findings on the next
// line; a directive trailing code suppresses findings on its own line.
// The directive must name at least one pimcaps/<analyzer> check and
// carry a non-empty reason; malformed directives are themselves
// reported by the driver so a typo cannot silently disable a check.
func parseSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{fset: fset, byLine: map[string]map[int][]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{pos: c.Pos(), line: pos.Line}
				if !directiveTrailsCode(fset, f, c) {
					d.line++ // whole-line directive guards the next line
				}
				checks, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				d.reason = strings.TrimSpace(reason)
				names := map[string]bool{}
				for _, check := range strings.Split(checks, ",") {
					if name, ok := strings.CutPrefix(check, IgnorePrefix); ok && name != "" {
						names[name] = true
					}
				}
				if len(names) == 0 {
					// Not aimed at this tool (e.g. a staticcheck ignore):
					// leave it alone entirely.
					continue
				}
				if d.reason == "" {
					// pimcaps directive with no justification: malformed.
					s.directives = append(s.directives, d)
					continue
				}
				d.names = names
				s.directives = append(s.directives, d)
				byLine := s.byLine[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*ignoreDirective{}
					s.byLine[pos.Filename] = byLine
				}
				byLine[d.line] = append(byLine[d.line], d)
			}
		}
	}
	return s
}

// directiveTrailsCode reports whether comment c shares its line with
// code (making it a same-line suppression rather than a next-line one).
func directiveTrailsCode(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	trails := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trails {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		if fset.Position(n.Pos()).Line > line || fset.Position(n.End()).Line < line {
			return false // subtree cannot touch the directive's line
		}
		if n.End() <= c.Pos() && fset.Position(n.End()).Line == line {
			trails = true
			return false
		}
		return true
	})
	return trails
}

// filter removes suppressed diagnostics, marks the directives that
// earned their keep, and appends a diagnostic for every malformed or
// unused directive (mirroring staticcheck, a suppression that matches
// nothing is itself an error — stale ignores hide future regressions).
func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		pos := s.fset.Position(d.Pos)
		suppressed := false
		for _, dir := range s.byLine[pos.Filename][pos.Line] {
			if dir.names[d.Analyzer] {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range s.directives {
		switch {
		case dir.names == nil:
			kept = append(kept, Diagnostic{
				Analyzer: "directive",
				Pos:      dir.pos,
				Message:  "malformed //lint:ignore directive: need a non-empty reason after the check name",
			})
		case !dir.used:
			kept = append(kept, Diagnostic{
				Analyzer: "directive",
				Pos:      dir.pos,
				Message:  "this //lint:ignore directive did not match any finding; remove it",
			})
		}
	}
	sortDiagnostics(s.fset, kept)
	return kept
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// fileHasDirective reports whether any comment in f is exactly the
// given directive (e.g. //pimcaps:bitexact), used for file-scoped
// exemptions.
func fileHasDirective(f *ast.File, directive string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == directive {
				return true
			}
		}
	}
	return false
}

// funcHasDirective reports whether the declaration's doc comment
// carries the given directive line (e.g. //pimcaps:hotpath).
func funcHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
