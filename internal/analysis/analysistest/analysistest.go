// Package analysistest checks analyzers against golden packages, in
// the mold of golang.org/x/tools/go/analysis/analysistest (see
// internal/analysis for why the real one cannot be imported). A golden
// package lives under testdata/src/<path> next to the calling test and
// annotates the lines it expects diagnostics on:
//
//	out := net.Forward(x) // want `never released`
//
// Each // want comment carries one or more Go-quoted regular
// expressions; every diagnostic on that line must be matched by
// exactly one of them, and every expectation must be consumed by a
// diagnostic. Suppression directives (//lint:ignore) run through the
// same filter as production, so goldens can assert both that findings
// fire and that justified ignores silence them.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"pimcapsnet/internal/analysis"
)

// TestData returns the absolute path of the calling test's
// testdata/src golden root (tests run with their package directory as
// the working directory).
func TestData(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// Run loads each named golden package, runs the analyzer over it, and
// reports every mismatch between its diagnostics and the packages'
// // want annotations as test errors.
func Run(t *testing.T, analyzer *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewGoldenLoader(TestData(t))
	for _, path := range pkgs {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading golden package %s: %v", path, err)
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg, loader.Fset, []*analysis.Analyzer{analyzer}, loader.IsProjectPkg)
		if err != nil {
			t.Errorf("running %s on %s: %v", analyzer.Name, path, err)
			continue
		}
		checkExpectations(t, loader.Fset, pkg, diags)
	}
}

// expectation is one parsed // want regexp.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// checkExpectations matches diagnostics against the package's // want
// annotations, erroring on unexpected diagnostics and unmet wants.
func checkExpectations(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ws, err := parseWant(c)
				if err != nil {
					t.Errorf("%s: %v", fset.Position(c.Pos()), err)
					continue
				}
				pos := fset.Position(c.Pos())
				for _, w := range ws {
					w.file, w.line = pos.Filename, pos.Line
					wants = append(wants, w)
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// parseWant extracts the expectations from one comment, or nil if it
// is not a want comment. The syntax is // want "re" `re` ... with each
// pattern a Go string literal.
func parseWant(c *ast.Comment) ([]*expectation, error) {
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		return nil, nil
	}
	var wants []*expectation
	rest := strings.TrimSpace(text)
	for rest != "" {
		lit, remainder, err := cutStringLit(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want comment %q: %v", c.Text, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("want pattern %q: %v", lit, err)
		}
		wants = append(wants, &expectation{re: re, raw: strconv.Quote(lit)})
		rest = strings.TrimSpace(remainder)
	}
	if len(wants) == 0 {
		return nil, fmt.Errorf("want comment %q has no patterns", c.Text)
	}
	return wants, nil
}

// cutStringLit splits one leading Go string literal (quoted or
// backquoted) off s.
func cutStringLit(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("expected string literal")
	}
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : 1+end], s[2+end:], nil
	case '"':
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				lit, err := strconv.Unquote(s[:i+1])
				return lit, s[i+1:], err
			}
		}
		return "", "", fmt.Errorf("unterminated quoted string")
	}
	return "", "", fmt.Errorf("expected string literal, found %q", s)
}
