package analysis_test

import (
	"testing"

	"pimcapsnet/internal/analysis"
	"pimcapsnet/internal/analysis/analysistest"
)

// The per-analyzer golden tests run in parallel on purpose: the golden
// loaders share one process-wide export-data cache, so the race
// detector sweeps the loader's locking along with the analyzers.

func TestReleasecheck(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysis.Releasecheck, "releasecheck")
}

func TestLayercheck(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysis.Layercheck,
		"internal/tensor", "internal/fp32", "internal/capsnet",
		"internal/cluster", "internal/serve", "internal/loadgen",
		"layerobs/internal/obs", "cmd/alpha", "cmd/beta")
}

func TestHotpathcheck(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysis.Hotpathcheck, "hotpathcheck")
}

func TestFloateqcheck(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysis.Floateqcheck, "floateqcheck")
}

func TestPaniccheck(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysis.Paniccheck, "paniccheck")
}

func TestCtxcheck(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysis.Ctxcheck,
		"ctxcheck/internal/serve", "ctxcheck/internal/cluster", "ctxcheck/internal/other")
}

func TestGuardedby(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysis.Guardedby, "guardedby")
}

func TestGoroleak(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysis.Goroleak,
		"goroleak/internal/cluster", "goroleak/internal/other")
}

func TestTimerleak(t *testing.T) {
	t.Parallel()
	analysistest.Run(t, analysis.Timerleak,
		"timerleak", "timerleak/internal/serve")
}
