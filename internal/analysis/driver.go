package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
	"time"
)

// A Finding is one diagnostic resolved to a file position, the form
// cmd/pimcaps-vet prints, serializes as JSON, and turns into GitHub
// annotations.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the go vet-style single-line form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s%s)", f.File, f.Line, f.Col, f.Message, IgnorePrefix, f.Analyzer)
}

// Stats accumulates per-analyzer wall time across every package a run
// visits, so `pimcaps-vet -stats` (and make lint) can report which
// invariants the suite spends its time proving. Safe for concurrent
// use.
type Stats struct {
	mu sync.Mutex
	//pimcaps:guardedby mu
	elapsed map[string]time.Duration
}

func (s *Stats) add(name string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.elapsed == nil {
		s.elapsed = map[string]time.Duration{}
	}
	s.elapsed[name] += d
}

// Lines renders one "name\tduration" line per analyzer, slowest
// first (ties break alphabetically for stable output).
func (s *Stats) Lines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.elapsed))
	for name := range s.elapsed {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if s.elapsed[names[i]] != s.elapsed[names[j]] {
			return s.elapsed[names[i]] > s.elapsed[names[j]]
		}
		return names[i] < names[j]
	})
	lines := make([]string, len(names))
	for i, name := range names {
		lines[i] = fmt.Sprintf("%-14s %v", name, s.elapsed[name].Round(time.Microsecond))
	}
	return lines
}

// RunPatterns loads the packages matched by the go list patterns
// (e.g. "./..." or "pimcapsnet/..."), runs every analyzer over each —
// including in-package and external test files, exactly as go vet does
// — applies suppression directives, and returns the surviving findings
// sorted by position. dir is the working directory for go tool
// invocations ("" for the current one).
func RunPatterns(dir string, analyzers []*Analyzer, patterns ...string) ([]Finding, error) {
	return RunPatternsStats(dir, analyzers, nil, patterns...)
}

// RunPatternsStats is RunPatterns with optional per-analyzer timing:
// when stats is non-nil, each analyzer's wall time accumulates into it
// across all visited packages.
func RunPatternsStats(dir string, analyzers []*Analyzer, stats *Stats, patterns ...string) ([]Finding, error) {
	listArgs := append([]string{
		"-test", "-deps", "-export",
		"-json=ImportPath,Dir,Export,DepOnly,Standard,ForTest,Module,GoFiles,TestGoFiles,XTestGoFiles,Error",
		"--",
	}, patterns...)
	pkgs, err := runGoList(dir, listArgs...)
	if err != nil {
		return nil, err
	}
	exports := newExportSet()
	exports.add(pkgs)

	modPath := ""
	for _, p := range pkgs {
		if !p.Standard && p.Module != nil {
			modPath = p.Module.Path
			break
		}
	}
	isProject := func(path string) bool {
		return modPath != "" && (path == modPath || strings.HasPrefix(path, modPath+"/"))
	}

	var findings []Finding
	fset := token.NewFileSet()
	for _, lp := range pkgs {
		// Targets are the plain, non-dependency module packages; their
		// test variants are synthesized below rather than taken from the
		// "p [p.test]" / "p.test" entries go list -test adds.
		if lp.DepOnly || lp.Standard || lp.ForTest != "" ||
			strings.HasSuffix(lp.ImportPath, ".test") || strings.Contains(lp.ImportPath, " ") {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("loading %s: %s", lp.ImportPath, lp.Error.Err)
		}

		units := []struct {
			importPath string
			files      []string
			testFiles  []string
			forTest    string
		}{
			{lp.ImportPath, lp.GoFiles, lp.TestGoFiles, forTestOf(lp)},
		}
		if len(lp.XTestGoFiles) > 0 {
			units = append(units, struct {
				importPath string
				files      []string
				testFiles  []string
				forTest    string
			}{lp.ImportPath + "_test", nil, lp.XTestGoFiles, lp.ImportPath})
		}

		for _, u := range units {
			plain, err := parseFiles(fset, lp.Dir, u.files)
			if err != nil {
				return nil, err
			}
			tests, err := parseFiles(fset, lp.Dir, u.testFiles)
			if err != nil {
				return nil, err
			}
			files := append(plain, tests...)
			if len(files) == 0 {
				continue
			}
			imp := exports.importerFor(fset, u.forTest)
			typesPkg, info, err := checkFiles(fset, u.importPath, files, imp)
			if err != nil {
				return nil, err
			}
			pkg := &Package{
				ImportPath: u.importPath,
				Dir:        lp.Dir,
				Files:      files,
				TestFiles:  map[*ast.File]bool{},
				Types:      typesPkg,
				Info:       info,
			}
			for _, f := range tests {
				pkg.TestFiles[f] = true
			}
			diags, err := runAnalyzers(pkg, fset, analyzers, isProject, stats)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				findings = append(findings, Finding{
					Analyzer: d.Analyzer,
					File:     relPath(lp.Dir, modPath, lp.ImportPath, pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
				})
			}
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return findings, nil
}

// forTestOf names the package-under-test context for an augmented
// (GoFiles+TestGoFiles) unit: only packages that actually have test
// files get a test-variant importer.
func forTestOf(lp goListPkg) string {
	if len(lp.TestGoFiles) > 0 {
		return lp.ImportPath
	}
	return ""
}

// relPath rewrites an absolute source filename into the
// module-relative form used in reports (so findings are stable across
// checkouts and usable as GitHub annotation paths).
func relPath(pkgDir, modPath, importPath, filename string) string {
	rel := strings.TrimSuffix(importPath, "_test")
	if modPath != "" {
		rel = strings.TrimPrefix(rel, modPath)
		rel = strings.TrimPrefix(rel, "/")
	}
	base := filename
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		base = filename[i+1:]
	}
	if rel == "" {
		return base
	}
	return rel + "/" + base
}

// RunAnalyzers executes the analyzers over one loaded package and
// returns the diagnostics that survive suppression directives. It is
// shared by RunPatterns and the analysistest harness so the
// suppression path behaves identically in production and in tests.
func RunAnalyzers(pkg *Package, fset *token.FileSet, analyzers []*Analyzer, isProject func(string) bool) ([]Diagnostic, error) {
	return runAnalyzers(pkg, fset, analyzers, isProject, nil)
}

func runAnalyzers(pkg *Package, fset *token.FileSet, analyzers []*Analyzer, isProject func(string) bool, stats *Stats) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:     a,
			Fset:         fset,
			Files:        pkg.Files,
			Pkg:          pkg.Types,
			TypesInfo:    pkg.Info,
			IsProjectPkg: isProject,
			testFiles:    pkg.TestFiles,
		}
		start := time.Now()
		err := a.Run(pass)
		if stats != nil {
			stats.add(a.Name, time.Since(start))
		}
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		diags = append(diags, pass.diagnostics...)
	}
	return parseSuppressions(fset, pkg.Files).filter(diags), nil
}
