package analysis_test

import (
	"strings"
	"testing"

	"pimcapsnet/internal/analysis"
	"pimcapsnet/internal/analysis/analysistest"
)

// TestDirectiveDiagnostics checks the suppression machinery's own
// error paths on the directive golden package: a reason-less
// //lint:ignore is malformed (and suppresses nothing), and a directive
// matching no finding is reported as stale. These use explicit
// assertions instead of // want comments because appending a want
// comment to a directive line would become the directive's reason.
func TestDirectiveDiagnostics(t *testing.T) {
	t.Parallel()
	loader := analysis.NewGoldenLoader(analysistest.TestData(t))
	pkg, err := loader.Load("directive")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkg, loader.Fset, []*analysis.Analyzer{analysis.Floateqcheck}, loader.IsProjectPkg)
	if err != nil {
		t.Fatal(err)
	}
	var gotMalformed, gotUnused, gotUnsuppressed bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "directive" && strings.Contains(d.Message, "malformed"):
			gotMalformed = true
		case d.Analyzer == "directive" && strings.Contains(d.Message, "did not match any finding"):
			gotUnused = true
		case d.Analyzer == "floateqcheck":
			// The malformed directive must NOT have suppressed the a == b
			// comparison beneath it.
			gotUnsuppressed = true
		default:
			t.Errorf("unexpected diagnostic: %s (%s)", d.Message, d.Analyzer)
		}
	}
	if !gotMalformed {
		t.Error("reason-less //lint:ignore was not reported as malformed")
	}
	if !gotUnused {
		t.Error("stale //lint:ignore was not reported as unused")
	}
	if !gotUnsuppressed {
		t.Error("malformed directive suppressed the finding beneath it")
	}
	if n := len(diags); n != 3 {
		t.Errorf("got %d diagnostics, want 3", n)
	}
}

// TestConcurrencyDirectiveDiagnostics repeats the directive-machinery
// checks against the concurrency analyzers: a reason-less
// pimcaps/timerleak directive is malformed and suppresses nothing, a
// pimcaps/goroleak directive on an already-clean goroutine is stale,
// and a justified pimcaps/guardedby suppression silences its finding
// without a stale report.
func TestConcurrencyDirectiveDiagnostics(t *testing.T) {
	t.Parallel()
	loader := analysis.NewGoldenLoader(analysistest.TestData(t))
	pkg, err := loader.Load("directiveconc/internal/serve")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := []*analysis.Analyzer{analysis.Guardedby, analysis.Goroleak, analysis.Timerleak}
	diags, err := analysis.RunAnalyzers(pkg, loader.Fset, analyzers, loader.IsProjectPkg)
	if err != nil {
		t.Fatal(err)
	}
	var gotMalformed, gotStale, gotTimerleak bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "directive" && strings.Contains(d.Message, "malformed"):
			gotMalformed = true
		case d.Analyzer == "directive" && strings.Contains(d.Message, "did not match any finding"):
			gotStale = true
		case d.Analyzer == "timerleak":
			// The reason-less directive must NOT have suppressed the
			// time.After finding beneath it.
			gotTimerleak = true
		default:
			t.Errorf("unexpected diagnostic: %s (%s)", d.Message, d.Analyzer)
		}
	}
	if !gotMalformed {
		t.Error("reason-less pimcaps/timerleak directive was not reported as malformed")
	}
	if !gotStale {
		t.Error("stale pimcaps/goroleak directive was not reported as unused")
	}
	if !gotTimerleak {
		t.Error("malformed directive suppressed the timerleak finding beneath it")
	}
	if n := len(diags); n != 3 {
		t.Errorf("got %d diagnostics, want 3 (the justified guardedby suppression must add none)", n)
	}
}
