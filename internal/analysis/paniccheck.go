package analysis

import (
	"go/ast"
)

// Paniccheck preserves the worker-pool fault-isolation contract: a
// panic inside a goroutine that no caller can recover kills the whole
// process, which is exactly what the fault-injection campaign guards
// against. Two rules:
//
//  1. Function literals handed to parallelFor, parallelChunks, or
//     runChunks must not call panic directly. Worker bodies signal
//     failure by writing results the caller validates; panics that do
//     occur (index errors, injected faults) are the wrapper's job.
//  2. The dispatchers themselves — functions named parallelFor or
//     parallelChunks, and the chunkJob.run method the persistent pool
//     executes — must keep a deferred recover() wrapper, so worker
//     panics are captured and re-raised on the calling goroutine.
//     Deleting the wrapper would turn a poisoned batch into a process
//     crash and is the regression this rule exists to block.
//
// Test files are exempt: the robustness tests panic inside worker
// bodies on purpose to prove rule 2's wrapper works.
var Paniccheck = &Analyzer{
	Name: "paniccheck",
	Doc:  "worker bodies must not panic directly and pool dispatchers must keep their recover wrapper",
	Run:  runPaniccheck,
}

// dispatcherFuncs names the functions rule 2 protects: receiver type
// name (empty for plain functions) and function name.
var dispatcherFuncs = []struct{ recv, name string }{
	{"", "parallelFor"},
	{"", "parallelChunks"},
	{"chunkJob", "run"},
}

// workerTakers names the call targets whose function-literal arguments
// are worker bodies (rule 1).
var workerTakers = map[string]bool{
	"parallelFor":    true,
	"parallelChunks": true,
	"runChunks":      true,
}

func runPaniccheck(pass *Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if workerTakers[calleeName(n)] {
					for _, arg := range n.Args {
						lit, ok := arg.(*ast.FuncLit)
						if !ok {
							continue
						}
						reportDirectPanics(pass, lit, calleeName(n))
					}
				}
			case *ast.FuncDecl:
				checkDispatcher(pass, n)
			}
			return true
		})
	}
	return nil
}

// reportDirectPanics flags panic calls lexically inside a worker body.
func reportDirectPanics(pass *Pass, lit *ast.FuncLit, taker string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isBuiltin(pass, call.Fun, "panic") {
			pass.Reportf(call.Pos(), "worker body passed to %s calls panic directly; report failure through results the caller checks (the pool's recover wrapper is for faults, not control flow)", taker)
		}
		return true
	})
}

// checkDispatcher applies rule 2 to matching function declarations.
func checkDispatcher(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	recv := ""
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		recv = receiverTypeName(fn.Recv.List[0].Type)
	}
	protected := false
	for _, d := range dispatcherFuncs {
		if d.name == name && d.recv == recv {
			protected = true
			break
		}
	}
	if !protected || fn.Body == nil {
		return
	}
	if !hasDeferredRecover(fn.Body) {
		pass.Reportf(fn.Name.Pos(), "%s must keep its deferred recover-and-repanic wrapper: worker panics must re-raise on the caller, not kill the process", name)
	}
}

// hasDeferredRecover reports whether body contains
// defer func() { … recover() … }() anywhere (including inside worker
// goroutine literals).
func hasDeferredRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		lit, ok := def.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" && len(call.Args) == 0 {
					found = true
				}
			}
			return !found
		})
		return !found
	})
	return found
}

// receiverTypeName extracts the base type name from a receiver
// expression (*chunkJob -> chunkJob).
func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(e.X)
	}
	return ""
}
