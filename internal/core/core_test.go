//pimcaps:bitexact

package core

import (
	"strings"
	"testing"

	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/workload"
)

func TestDesignStrings(t *testing.T) {
	names := map[Design]string{
		Baseline: "Baseline", GPUICP: "GPU-ICP", PIMCapsNet: "PIM-CapsNet",
		PIMIntra: "PIM-Intra", PIMInter: "PIM-Inter", RMASPIM: "RMAS-PIM",
		RMASGPU: "RMAS-GPU", AllInPIM: "All-in-PIM",
	}
	for d, want := range names {
		if d.String() != want {
			t.Fatalf("%d → %q, want %q", int(d), d.String(), want)
		}
	}
	if !strings.HasPrefix(Design(99).String(), "Design(") {
		t.Fatal("unknown design should render numerically")
	}
	if len(Designs) != 8 {
		t.Fatalf("Designs has %d entries, want 8", len(Designs))
	}
}

func TestRPSpeedupMatchesPaperShape(t *testing.T) {
	// Fig. 15a: PIM-CapsNet accelerates the RP by ≈ 2.2× on average
	// (paper 2.17×, up to 2.27×); our model must stay in the 1.8–3.5
	// band for every benchmark.
	e := NewEngine()
	var avg float64
	for _, b := range workload.Benchmarks {
		gpuT, _ := e.RPGPU(b, false)
		pim := e.RPPIM(b, PIMCapsNet)
		sp := gpuT / pim.Time
		if sp < 1.5 || sp > 4.0 {
			t.Fatalf("%s RP speedup %.2f outside plausible band", b.Name, sp)
		}
		avg += sp
	}
	avg /= float64(len(workload.Benchmarks))
	if avg < 1.8 || avg > 3.2 {
		t.Fatalf("avg RP speedup %.2f, paper reports 2.17", avg)
	}
}

func TestRPEnergySaving(t *testing.T) {
	// Fig. 15b: ≈ 92% energy saving on the RP.
	e := NewEngine()
	var avg float64
	for _, b := range workload.Benchmarks {
		_, gpuE := e.RPGPU(b, false)
		pim := e.RPPIM(b, PIMCapsNet)
		s := 1 - pim.Energy.Total()/gpuE.Total()
		if s < 0.85 || s > 0.99 {
			t.Fatalf("%s RP energy saving %.3f implausible", b.Name, s)
		}
		avg += s
	}
	avg /= float64(len(workload.Benchmarks))
	if avg < 0.88 || avg > 0.97 {
		t.Fatalf("avg RP energy saving %.3f, paper reports 0.9218", avg)
	}
}

func TestPIMIntraDominatedByCrossbar(t *testing.T) {
	// Fig. 16a: PIM-Intra achieves a modest speedup (paper 1.22×) and
	// spends ≈ 45% of its time on inter-vault communication.
	e := NewEngine()
	var sp, frac float64
	for _, b := range workload.Benchmarks {
		gpuT, _ := e.RPGPU(b, false)
		intra := e.RPPIM(b, PIMIntra)
		sp += gpuT / intra.Time
		frac += intra.Xbar / intra.Time
	}
	n := float64(len(workload.Benchmarks))
	sp /= n
	frac /= n
	if sp < 1.0 || sp > 1.8 {
		t.Fatalf("PIM-Intra avg speedup %.2f, paper reports 1.22", sp)
	}
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("PIM-Intra crossbar share %.2f, paper reports 0.4524", frac)
	}
}

func TestPIMInterDominatedByVRS(t *testing.T) {
	// Fig. 16a: PIM-Inter performs at or below baseline (paper 0.95×)
	// with ≈ 58% of time in vault request stalls.
	e := NewEngine()
	var sp, frac float64
	for _, b := range workload.Benchmarks {
		gpuT, _ := e.RPGPU(b, false)
		inter := e.RPPIM(b, PIMInter)
		sp += gpuT / inter.Time
		frac += inter.VRS / inter.Time
	}
	n := float64(len(workload.Benchmarks))
	sp /= n
	frac /= n
	if sp < 0.7 || sp > 1.4 {
		t.Fatalf("PIM-Inter avg speedup %.2f, paper reports 0.95", sp)
	}
	if frac < 0.45 || frac > 0.70 {
		t.Fatalf("PIM-Inter VRS share %.2f, paper reports 0.5791", frac)
	}
}

func TestFullDesignBeatsAblations(t *testing.T) {
	// Fig. 16a: PIM-CapsNet improves on both partial designs for
	// every benchmark (paper: +76.6% over Intra, +127.8% over Inter).
	e := NewEngine()
	for _, b := range workload.Benchmarks {
		full := e.RPPIM(b, PIMCapsNet).Time
		intra := e.RPPIM(b, PIMIntra).Time
		inter := e.RPPIM(b, PIMInter).Time
		if full >= intra || full >= inter {
			t.Fatalf("%s: full design (%.3fms) not fastest (intra %.3f, inter %.3f)",
				b.Name, full*1e3, intra*1e3, inter*1e3)
		}
	}
}

func TestOverallSpeedupAndEnergy(t *testing.T) {
	// Fig. 17: overall speedup ≈ 2.4× (ours runs slightly optimistic;
	// see EXPERIMENTS.md) and ≈ 65% energy saving.
	e := NewEngine()
	var sp, sv float64
	for _, b := range workload.Benchmarks {
		base := e.Inference(b, Baseline)
		pim := e.Inference(b, PIMCapsNet)
		s := Speedup(base, pim)
		if s < 1.8 || s > 4.5 {
			t.Fatalf("%s overall speedup %.2f implausible", b.Name, s)
		}
		sp += s
		sv += EnergySaving(base, pim)
	}
	n := float64(len(workload.Benchmarks))
	if sp/n < 2.0 || sp/n > 3.6 {
		t.Fatalf("avg overall speedup %.2f, paper reports 2.44", sp/n)
	}
	if sv/n < 0.55 || sv/n > 0.75 {
		t.Fatalf("avg overall energy saving %.3f, paper reports 0.6491", sv/n)
	}
}

func TestOverallBeatsRPOnly(t *testing.T) {
	// Pipelining makes the whole-network speedup exceed the RP-only
	// speedup (paper: 2.44× vs 2.17×).
	e := NewEngine()
	var overall, rpOnly float64
	for _, b := range workload.Benchmarks {
		base := e.Inference(b, Baseline)
		pim := e.Inference(b, PIMCapsNet)
		overall += Speedup(base, pim)
		gpuT, _ := e.RPGPU(b, false)
		rpOnly += gpuT / e.RPPIM(b, PIMCapsNet).Time
	}
	if overall <= rpOnly {
		t.Fatalf("pipelined overall speedup (%.2f avg) should exceed RP-only (%.2f avg)",
			overall/12, rpOnly/12)
	}
}

func TestAllInPIMSlowerButEfficient(t *testing.T) {
	// Fig. 17: All-in-PIM halves performance (paper 0.52×) yet saves
	// most of the energy (paper 71.09%).
	e := NewEngine()
	for _, b := range workload.Benchmarks {
		base := e.Inference(b, Baseline)
		all := e.Inference(b, AllInPIM)
		sp := Speedup(base, all)
		if sp > 1.3 {
			t.Fatalf("%s All-in-PIM speedup %.2f — should not beat the GPU broadly", b.Name, sp)
		}
		if sav := EnergySaving(base, all); sav < 0.3 {
			t.Fatalf("%s All-in-PIM energy saving %.3f too low", b.Name, sav)
		}
	}
}

func TestRMASBeatsNaiveSchedulers(t *testing.T) {
	// Fig. 17: the full design (RMAS) outperforms RMAS-PIM and
	// RMAS-GPU on every benchmark.
	e := NewEngine()
	for _, b := range workload.Benchmarks {
		pim := e.Inference(b, PIMCapsNet)
		rpim := e.Inference(b, RMASPIM)
		rgpu := e.Inference(b, RMASGPU)
		if pim.Total > rpim.Total || pim.Total > rgpu.Total {
			t.Fatalf("%s: PIM-CapsNet (%.3fs) lost to a naive scheduler (pim %.3f, gpu %.3f)",
				b.Name, pim.Total, rpim.Total, rgpu.Total)
		}
	}
}

func TestGPUICPBarelyHelpsOverall(t *testing.T) {
	e := NewEngine()
	for _, b := range workload.Benchmarks {
		base := e.Inference(b, Baseline)
		icp := e.Inference(b, GPUICP)
		sp := Speedup(base, icp)
		if sp < 1.0 || sp > 1.05 {
			t.Fatalf("%s GPU-ICP speedup %.4f, paper reports ≈1.01", b.Name, sp)
		}
	}
}

func TestScalabilityWithNetworkSize(t *testing.T) {
	// §6.2.1: PIM-CapsNet's RP speedup grows with network size
	// (Caps-EN3 vs Caps-SV1 in the paper: 2.27× vs 2.09×).
	e := NewEngine()
	sv1, _ := workload.ByName("Caps-SV1")
	en3, _ := workload.ByName("Caps-EN3")
	spSV := func() float64 {
		g, _ := e.RPGPU(sv1, false)
		return g / e.RPPIM(sv1, PIMCapsNet).Time
	}()
	spEN := func() float64 {
		g, _ := e.RPGPU(en3, false)
		return g / e.RPPIM(en3, PIMCapsNet).Time
	}()
	if spEN <= spSV {
		t.Fatalf("speedup should scale with network size: EN3 %.2f vs SV1 %.2f", spEN, spSV)
	}
}

func TestForceDimOverridesDistributor(t *testing.T) {
	e := NewEngine()
	b, _ := workload.ByName("Caps-MN1")
	for _, d := range distribute.Dimensions {
		dim := d
		e.ForceDim = &dim
		res := e.RPPIM(b, PIMCapsNet)
		if res.Dim != d {
			t.Fatalf("forced %v but got %v", d, res.Dim)
		}
		if res.Time <= 0 {
			t.Fatalf("dimension %v produced non-positive time", d)
		}
	}
	e.ForceDim = nil
	// The distributor's pick must be at least as good as any forced
	// dimension up to the E/M model's fidelity (allow 25% slack for
	// effects the score does not see, like bank behaviour).
	best := e.RPPIM(b, PIMCapsNet)
	for _, d := range distribute.Dimensions {
		dim := d
		e.ForceDim = &dim
		forced := e.RPPIM(b, PIMCapsNet)
		if forced.Time < best.Time*0.75 {
			t.Fatalf("distributor picked %v (%.3fms) but %v is much faster (%.3fms)",
				best.Dim, best.Time*1e3, d, forced.Time*1e3)
		}
	}
}

func TestRPResultComponentsSumToTime(t *testing.T) {
	e := NewEngine()
	for _, d := range []Design{PIMCapsNet, PIMIntra, PIMInter} {
		for _, b := range workload.Benchmarks[:4] {
			r := e.RPPIM(b, d)
			sum := r.Exec + r.VRS + r.Xbar
			if diff := sum - r.Time; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("%v/%s components %.6f != time %.6f", d, b.Name, sum, r.Time)
			}
		}
	}
}

func TestFrequencyScalingImprovesRP(t *testing.T) {
	// Fig. 18: higher PE frequency improves the routing procedure.
	e := NewEngine()
	b, _ := workload.ByName("Caps-MN1")
	base := e.RPPIM(b, PIMCapsNet).Time
	e.HMC = e.HMC.WithClock(937.5e6)
	fast := e.RPPIM(b, PIMCapsNet).Time
	if fast >= base {
		t.Fatalf("3× clock did not improve RP: %.3fms vs %.3fms", fast*1e3, base*1e3)
	}
}

func TestInferencePanicsOnUnknownDesign(t *testing.T) {
	e := NewEngine()
	b, _ := workload.ByName("Caps-MN1")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Inference(b, Design(42))
}

// TestHighFidelityAgreesWithWindowModel cross-validates the two vault
// simulators at the engine level: the event-driven model must land
// within 15% of the fast window model on RP time for both the full
// design and the bank-conflicted ablation.
func TestHighFidelityAgreesWithWindowModel(t *testing.T) {
	fast := NewEngine()
	des := NewEngine()
	des.HighFidelity = true
	for _, name := range []string{"Caps-MN1", "Caps-EN2"} {
		b, _ := workload.ByName(name)
		for _, d := range []Design{PIMCapsNet, PIMInter} {
			a := fast.RPPIM(b, d).Time
			h := des.RPPIM(b, d).Time
			ratio := a / h
			if ratio < 0.85 || ratio > 1.18 {
				t.Fatalf("%s/%v: window %.3fms vs DES %.3fms (ratio %.2f)", name, d, a*1e3, h*1e3, ratio)
			}
		}
	}
}

func TestEMRPPIMHeavierThanDynamic(t *testing.T) {
	// EM routing fits Gaussians per iteration: more operations, more
	// vote-tensor passes, more time — but the same order of magnitude
	// (the design is algorithm-agnostic, §4).
	e := NewEngine()
	for _, b := range workload.Benchmarks {
		dr := e.RPPIM(b, PIMCapsNet)
		em := e.EMRPPIM(b, PIMCapsNet)
		if em.PEOps <= dr.PEOps {
			t.Fatalf("%s: EM ops %.3g not above DR ops %.3g", b.Name, em.PEOps, dr.PEOps)
		}
		if em.DRAMBytes <= dr.DRAMBytes {
			t.Fatalf("%s: EM traffic %.3g not above DR traffic %.3g", b.Name, em.DRAMBytes, dr.DRAMBytes)
		}
		if em.Time <= dr.Time || em.Time > 3*dr.Time {
			t.Fatalf("%s: EM time %.3fms vs DR %.3fms outside (1, 3]× band", b.Name, em.Time*1e3, dr.Time*1e3)
		}
	}
}

func TestRPPIMDeterministic(t *testing.T) {
	e := NewEngine()
	b, _ := workload.ByName("Caps-CF2")
	a := e.RPPIM(b, PIMCapsNet)
	c := e.RPPIM(b, PIMCapsNet)
	if a.Time != c.Time || a.Energy != c.Energy {
		t.Fatal("RPPIM is not deterministic")
	}
}
