//pimcaps:bitexact

package core_test

import (
	"fmt"

	"pimcapsnet/internal/core"
	"pimcapsnet/internal/workload"
)

// ExampleEngine_Inference compares the baseline GPU with PIM-CapsNet
// on a Table 1 benchmark.
func ExampleEngine_Inference() {
	e := core.NewEngine()
	b, _ := workload.ByName("Caps-MN1")
	base := e.Inference(b, core.Baseline)
	pim := e.Inference(b, core.PIMCapsNet)
	fmt.Printf("speedup > 2x: %v\n", core.Speedup(base, pim) > 2)
	fmt.Printf("energy saving > 50%%: %v\n", core.EnergySaving(base, pim) > 0.5)
	// Output:
	// speedup > 2x: true
	// energy saving > 50%: true
}

// ExampleEngine_RPPIM decomposes the in-memory routing time.
func ExampleEngine_RPPIM() {
	e := core.NewEngine()
	b, _ := workload.ByName("Caps-SV1")
	r := e.RPPIM(b, core.PIMCapsNet)
	fmt.Printf("components sum to total: %v\n", r.Exec+r.VRS+r.Xbar == r.Time)
	fmt.Printf("distribution dimension: %v\n", r.Dim)
	// Output:
	// components sum to total: true
	// distribution dimension: L
}
