// Package core is PIM-CapsNet itself: the hybrid GPU + in-memory
// computing engine of the paper. It combines the GPU characterization
// model (internal/gpusim), the HMC vault/crossbar simulator
// (internal/hmc), the PE array model (internal/pe), the inter-vault
// workload distributor (internal/distribute), the RMAS scheduler
// (internal/sched), the host/HMC pipeline (internal/pipeline) and the
// energy accounting (internal/energy) into one evaluator that
// reproduces every design point of the paper's evaluation:
//
//	Baseline    — GPU with HBM (§6.1 design 1)
//	GPUICP      — GPU with an ideal cache replacement policy (2)
//	PIMCapsNet  — full design: inter-vault + intra-vault + custom
//	              mapping + RMAS (3)
//	PIMIntra    — no inter-vault design: data interleaves across
//	              vaults, remote traffic floods the crossbar (4)
//	PIMInter    — no intra-vault design: snippets are vault-local but
//	              bank conflicts serialize PE requests (5)
//	RMASPIM     — full design with naive PIM-first arbitration (6)
//	RMASGPU     — full design with naive GPU-first arbitration (7)
//	AllInPIM    — the whole network, Conv/FC included, in the cube (8)
package core

import (
	"fmt"

	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/energy"
	"pimcapsnet/internal/gpusim"
	"pimcapsnet/internal/hmc"
	"pimcapsnet/internal/pe"
	"pimcapsnet/internal/sched"
	"pimcapsnet/internal/workload"
)

// Design selects one of the evaluation's design points.
type Design int

// The eight design points of §6.1.
const (
	Baseline Design = iota
	GPUICP
	PIMCapsNet
	PIMIntra
	PIMInter
	RMASPIM
	RMASGPU
	AllInPIM
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case Baseline:
		return "Baseline"
	case GPUICP:
		return "GPU-ICP"
	case PIMCapsNet:
		return "PIM-CapsNet"
	case PIMIntra:
		return "PIM-Intra"
	case PIMInter:
		return "PIM-Inter"
	case RMASPIM:
		return "RMAS-PIM"
	case RMASGPU:
		return "RMAS-GPU"
	case AllInPIM:
		return "All-in-PIM"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Designs lists every design point in evaluation order.
var Designs = []Design{Baseline, GPUICP, PIMCapsNet, PIMIntra, PIMInter, RMASPIM, RMASGPU, AllInPIM}

// Engine evaluates CapsNet inference under any design point.
type Engine struct {
	GPU      gpusim.Device
	HMC      hmc.Config
	PESpec   pe.Spec
	GPUPower energy.GPUParams
	HMCPower energy.HMCParams
	// ForceDim overrides the intelligent distributor's dimension
	// choice (used by the Fig. 18 sweep); nil means use the
	// execution-score decision.
	ForceDim *distribute.Dimension
	// Contention parameterizes GPU↔PE vault contention for the RMAS
	// model (Eq. 15 inputs).
	Contention sched.Contention
	// HighFidelity switches the per-vault contention window from the
	// fast cycle-window simulator to the event-driven model
	// (hmc.SimulateVaultDES). Both agree within a few percent (see
	// the cross-validation tests); the DES run exposes queueing
	// detail at ~10× the cost.
	HighFidelity bool
}

// NewEngine returns an engine with the paper's platform (Table 4).
func NewEngine() *Engine {
	return &Engine{
		GPU:      gpusim.TeslaP100(),
		HMC:      hmc.DefaultConfig(),
		PESpec:   pe.DefaultSpec(),
		GPUPower: energy.DefaultGPU(),
		HMCPower: energy.DefaultHMC(),
		Contention: sched.Contention{
			NMax: 4, Q: 16, GammaV: 1, GammaH: 1,
		},
	}
}

// crossbarCongestion is the achieved fraction of aggregate internal
// bandwidth for fine-grained remote block traffic (PIM-Intra's access
// pattern: 16-byte payloads with packet overhead under head-of-line
// blocking).
const crossbarCongestion = 0.18

// RPResult describes one batch of routing-procedure execution in the
// cube.
type RPResult struct {
	Design Design
	Dim    distribute.Dimension
	// Time is the per-batch wall time; the components decompose it:
	// Exec (compute/ideal memory streaming), VRS (bank-conflict
	// stalls), Xbar (inter-vault traffic: distribution communication
	// or remote-access overhead).
	Time, Exec, VRS, Xbar float64
	// Energy is the per-batch HMC energy.
	Energy energy.Breakdown
	// PEOps and DRAMBytes record the work done.
	PEOps, DRAMBytes float64
}

// rpOpMix returns the per-batch PE operation mix of the routing
// procedure (Eq. 1 once, Eqs. 2–5 per iteration).
func rpOpMix(b workload.Benchmark) pe.OpCounts {
	mix := pe.EquationOps(b, workload.EqPrediction)
	perIter := pe.EquationOps(b, workload.EqWeightedSum).
		Plus(pe.EquationOps(b, workload.EqSquash)).
		Plus(pe.EquationOps(b, workload.EqAgreement)).
		Plus(pe.EquationOps(b, workload.EqSoftmax))
	return mix.Plus(perIter.Scale(float64(b.Iters)))
}

// rpTraffic returns the routing procedure's algorithmic DRAM bytes per
// batch (no framework temporaries: the PEs stream û twice per
// iteration plus the small s/v/b/c state — workload.RPCost with zero
// cache).
func rpTraffic(b workload.Benchmark) float64 {
	c := b.RPCost(0)
	return c.BytesIn + c.BytesOut
}

// vaultWindow runs a representative request window through one vault
// under the design's mapping and returns (cycles per local request,
// VRS fraction of memory time).
func (e *Engine) vaultWindow(b workload.Benchmark, d Design) (cpr, vrsFrac float64) {
	cfg := e.HMC
	itemBytes := b.DimH * workload.WordBytes // one û vector
	var p hmc.AccessPattern
	switch d {
	case PIMInter:
		naive := hmc.VaultTopNaiveMapping{Cfg: cfg}
		base := hmc.CustomMapping{Cfg: cfg}.VaultBase(0)
		p = hmc.SnippetPattern(cfg, naive, 0, cfg.PEsPerVault, 256, base, cfg.SubPageBytes)
	default:
		m := hmc.CustomMapping{Cfg: cfg}
		p = hmc.StridedItemPattern(cfg, m, 0, cfg.PEsPerVault, 64, itemBytes, m.VaultBase(0))
	}
	if e.HighFidelity {
		r := hmc.SimulateVaultDES(cfg, p)
		ideal := float64(cfg.IssueCycles)
		cpr = r.CyclesPerRequest()
		if cpr > 0 {
			vrsFrac = 1 - ideal/cpr
			if vrsFrac < 0 {
				vrsFrac = 0
			}
		}
		return cpr, vrsFrac
	}
	r := hmc.SimulateVault(cfg, p)
	return r.CyclesPerRequest(), r.StallFraction()
}

// chooseDim runs the intelligent workload distributor (§5.1.2).
func (e *Engine) chooseDim(b workload.Benchmark) distribute.Dimension {
	if e.ForceDim != nil {
		return *e.ForceDim
	}
	p := distribute.FromBenchmark(b, e.HMC)
	return distribute.NewScorer(e.HMC).Best(p).Dim
}

// imbalance returns E(d) relative to a perfectly even split — the
// workload-imbalance penalty of distributing on a dimension whose
// extent does not divide the vault count.
func imbalance(p distribute.Params, d distribute.Dimension) float64 {
	extent := p.Snippets(d)
	if extent >= p.NVault {
		// ceil rounding across vaults.
		per := float64((extent + p.NVault - 1) / p.NVault)
		return per * float64(p.NVault) / float64(extent)
	}
	// Fewer snippets than vaults: §5.2.1 re-dimensions the
	// sub-operations along another parallel dimension, so the PEs
	// stay busy; only the vault-level split is limited.
	return float64(p.NVault) / float64(extent)
}

// RPPIM evaluates one batch of the routing procedure in the cube
// under the given design point.
func (e *Engine) RPPIM(b workload.Benchmark, d Design) RPResult {
	return e.rpPIMWith(b, d, rpOpMix(b), rpTraffic(b))
}

// EMRPPIM evaluates one batch of Expectation-Maximization routing in
// the cube under the given design point — the paper's optimizations
// are "generally applicable to different RP algorithms" (§4), and EM
// shares dynamic routing's all-to-all aggregation structure with a
// heavier per-iteration operation mix (Gaussian fitting) and one more
// pass over the vote tensor.
func (e *Engine) EMRPPIM(b workload.Benchmark, d Design) RPResult {
	return e.rpPIMWith(b, d, emOpMix(b), emTraffic(b))
}

// rpPIMWith is the shared in-memory evaluation for any routing
// algorithm described by its operation mix and DRAM traffic.
func (e *Engine) rpPIMWith(b workload.Benchmark, d Design, mix pe.OpCounts, traffic float64) RPResult {
	cfg := e.HMC
	dim := e.chooseDim(b)
	params := distribute.FromBenchmark(b, cfg)
	blocks := cfg.BlocksOf(traffic)
	xbar := hmc.Crossbar{Cfg: cfg}

	// Compute: the op mix spreads over all vaults' PE arrays with the
	// distribution dimension's imbalance.
	array := pe.Array{Spec: e.PESpec, PEs: cfg.PEsPerVault, ClockHz: cfg.ClockHz}
	computeTime := array.Time(mix) / float64(cfg.Vaults)
	var commTime float64

	res := RPResult{Design: d, Dim: dim, PEOps: mix.Total(), DRAMBytes: traffic}

	switch d {
	case PIMIntra:
		// No inter-vault design: data interleaves across vaults
		// (default mapping), so ~(V−1)/V of accesses are remote and
		// cross the crossbar as fine-grained packets.
		remoteFrac := float64(cfg.Vaults-1) / float64(cfg.Vaults)
		cpr, vrsFrac := e.vaultWindow(b, d)
		memTotal := blocks / float64(cfg.Vaults) * cpr / cfg.ClockHz
		vrs := memTotal * vrsFrac
		ideal := memTotal - vrs
		wire := blocks * remoteFrac * float64(cfg.BlockBytes+cfg.PacketOverheadBytes)
		commTime = wire / (crossbarCongestion * cfg.InternalBW)
		res.Exec = maxf(computeTime, ideal)
		res.VRS = vrs
		res.Xbar = commTime
	case PIMInter, PIMCapsNet, RMASPIM, RMASGPU, AllInPIM:
		cpr, vrsFrac := e.vaultWindow(b, d)
		imb := imbalance(params, dim)
		memTotal := blocks / float64(cfg.Vaults) * cpr / cfg.ClockHz * imb
		vrs := memTotal * vrsFrac
		ideal := memTotal - vrs
		// Inter-vault communication of the distribution dimension
		// (M model): gathers and scatters are port-limited.
		mBytes := params.M(dim)
		packets := mBytes / float64(cfg.SubPageBytes+cfg.PacketOverheadBytes)
		commTime = xbar.GatherTime(mBytes/2, packets/2) + xbar.ScatterTime(mBytes/2, packets/2)
		res.Exec = maxf(computeTime*imb, ideal)
		res.VRS = vrs
		res.Xbar = commTime
	default:
		panic(fmt.Sprintf("core: RPPIM called for host design %v", d))
	}
	res.Time = res.Exec + res.VRS + res.Xbar

	// Energy: PE ops, local DRAM traffic, crossbar wire bytes, plus
	// the small result vector returned to the host.
	xbarBytes := params.M(dim)
	if d == PIMIntra {
		xbarBytes = blocks * float64(cfg.Vaults-1) / float64(cfg.Vaults) * float64(cfg.BlockBytes+cfg.PacketOverheadBytes)
	}
	extBytes := float64(b.BatchSize*b.NumH*b.DimH) * workload.WordBytes
	res.Energy = energy.HMCActive(e.HMCPower, res.Time, mix.Total(), traffic, xbarBytes, extBytes)
	return res
}

// RPGPU returns the per-batch routing-procedure time and energy on the
// host GPU (Baseline or GPU-ICP numerics).
func (e *Engine) RPGPU(b workload.Benchmark, ideal bool) (float64, energy.Breakdown) {
	dev := e.GPU
	dev.IdealCache = ideal
	t := dev.RPTime(b)
	cost := b.RPCost(dev.OnChipBytes)
	eng := energy.GPUActive(e.GPUPower, t.Total(), cost.FLOPs, cost.BytesIn+cost.BytesOut)
	return t.Total(), eng
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// emOpMix returns the per-batch PE operation mix of EM routing: Eq. 1
// (vote computation) once, then per iteration an M-step that fits each
// parent's Gaussian (weighted mean and variance over the child votes,
// plus a sigmoid activation) and an E-step that re-evaluates every
// vote's responsibility (distance, exponential, normalization).
func emOpMix(b workload.Benchmark) pe.OpCounts {
	nb, nl, nh := float64(b.BatchSize), float64(b.NumL), float64(b.NumH)
	ch := float64(b.DimH)
	mix := pe.EquationOps(b, workload.EqPrediction)
	perIter := pe.OpCounts{
		// M-step: mean (NL·CH MACs per parent) + variance (2·NL·CH)
		// + normalization muls and the activation logit.
		MAC:   nb*nh*nl*ch + 2*nb*nh*nl*ch,
		Mul:   nb * nh * 2 * ch,
		Add:   nb * nh * (ch + 1),
		Exp:   nb * nh,
		Recip: nb*nh + nb*nl, // activation sigmoid + E-step row normalization
	}
	perIter = perIter.Plus(pe.OpCounts{
		// E-step: squared distance per vote plus its exponential.
		MAC: nb * nl * nh * ch,
		Exp: nb * nl * nh,
		Mul: nb * nl * nh,
	})
	return mix.Plus(perIter.Scale(float64(b.Iters)))
}

// emTraffic returns EM routing's algorithmic DRAM bytes per batch:
// votes are produced once and re-read three times per iteration
// (mean, variance, E-step), and the responsibility tensor (one scalar
// per vote pair and batch element) is rewritten every iteration.
func emTraffic(b workload.Benchmark) float64 {
	vars := b.RPVars()
	respBytes := float64(b.BatchSize*b.NumL*b.NumH) * workload.WordBytes
	uIn := float64(b.BatchSize*b.NumL*b.DimL) * workload.WordBytes
	perIter := 3*vars.UHat + 2*respBytes + 2*(vars.S+vars.V)
	return uIn + vars.Weights + vars.UHat + respBytes + float64(b.Iters)*perIter + vars.V
}
