package core

import (
	"fmt"

	"pimcapsnet/internal/energy"
	"pimcapsnet/internal/pe"
	"pimcapsnet/internal/pipeline"
	"pimcapsnet/internal/sched"
	"pimcapsnet/internal/workload"
)

// InferenceResult summarizes a whole-network inference run (Fig. 17's
// unit: gpusim.RunBatches batches).
type InferenceResult struct {
	Design  Design
	Bench   string
	Batches int
	// HostBatch and DeviceBatch are per-batch stage times (device is
	// zero for GPU-only designs).
	HostBatch, DeviceBatch float64
	// Total is the run makespan in seconds.
	Total float64
	// Energy is the whole-run energy.
	Energy energy.Breakdown
	// RP carries the in-memory routing result when applicable.
	RP RPResult
}

// RunBatches is the number of batches in an evaluation run (matches
// gpusim's characterization runs).
const RunBatches = 100

// hostLayerTimes returns the per-batch Conv + PrimaryCaps + FC time
// and their (flops, bytes) on the host GPU.
func (e *Engine) hostLayers(b workload.Benchmark) (seconds, flops, bytes float64) {
	for _, cost := range []workload.LayerCost{b.ConvCost(), b.PrimaryCost(), b.FCCost()} {
		flops += cost.FLOPs
		bytes += cost.BytesIn + cost.BytesOut
	}
	times := e.GPU.BatchTimes(b)
	for _, lt := range times {
		if lt.Kind != workload.LayerHCaps {
			seconds += lt.Total()
		}
	}
	return seconds, flops, bytes
}

// Inference evaluates the benchmark under the design point.
func (e *Engine) Inference(b workload.Benchmark, d Design) InferenceResult {
	switch d {
	case Baseline, GPUICP:
		return e.gpuInference(b, d)
	case AllInPIM:
		return e.allInPIM(b)
	case PIMCapsNet, PIMIntra, PIMInter, RMASPIM, RMASGPU:
		return e.hybridInference(b, d)
	}
	panic(fmt.Sprintf("core: unknown design %v", d))
}

// gpuInference is the GPU-only path (Baseline / GPU-ICP).
func (e *Engine) gpuInference(b workload.Benchmark, d Design) InferenceResult {
	dev := e.GPU
	dev.IdealCache = d == GPUICP
	run := dev.Run(b)
	var flops, bytes float64
	for _, cost := range b.Layers(dev.OnChipBytes) {
		flops += cost.FLOPs
		bytes += cost.BytesIn + cost.BytesOut
	}
	batch := run.BatchTotal()
	eng := energy.GPUActive(e.GPUPower, batch, flops, bytes).Scale(float64(RunBatches))
	return InferenceResult{
		Design: d, Bench: b.Name, Batches: RunBatches,
		HostBatch: batch, Total: batch * float64(RunBatches), Energy: eng,
	}
}

// contentionPenalty returns the (host, device) stall fractions of the
// overlapped window under each arbitration policy.
func contentionPenalty(p sched.Policy) (host, dev float64) {
	switch p {
	case sched.PIMFirst:
		return 0.25, 0.08
	case sched.GPUFirst:
		return 0.08, 0.25
	default: // RMAS
		return 0.04, 0.04
	}
}

// schedPolicy maps a design point to its arbitration policy.
func schedPolicy(d Design) sched.Policy {
	switch d {
	case RMASPIM:
		return sched.PIMFirst
	case RMASGPU:
		return sched.GPUFirst
	default:
		return sched.RMAS
	}
}

// hybridInference is the pipelined GPU + HMC path.
func (e *Engine) hybridInference(b workload.Benchmark, d Design) InferenceResult {
	rpDesign := d
	if d == RMASPIM || d == RMASGPU {
		rpDesign = PIMCapsNet // naive scheduling, full memory design
	}
	rp := e.RPPIM(b, rpDesign)
	host, hostFLOPs, hostBytes := e.hostLayers(b)

	// RMAS: the host's Conv/FC traffic and the vault PEs contend for
	// vault banks during the overlapped window. A static priority
	// builds queues that delay both requesters — the starved side
	// directly and the favored side through full request queues and
	// writeback pressure — while RMAS's κ-optimal grant (Eq. 15)
	// keeps both penalties small. The fractions are calibrated to the
	// gap Fig. 17 shows between the naive schedulers and the full
	// design.
	dec := sched.Arbitrate(schedPolicy(d), e.Contention)
	hostFrac, pimFrac := contentionPenalty(dec.Policy)
	overlap := minf(host, rp.Time)
	hostBatch := host + hostFrac*overlap
	devBatch := rp.Time + pimFrac*overlap

	total := pipeline.TwoStage(hostBatch, devBatch, RunBatches)

	// Energy: GPU active for its layers each batch, idle for the rest
	// of the makespan; HMC active for RP, idle otherwise; host layer
	// traffic crosses the external links (HMC is the GPU's memory).
	gpuActive := energy.GPUActive(e.GPUPower, hostBatch, hostFLOPs, hostBytes).Scale(float64(RunBatches))
	gpuIdleTime := total - hostBatch*float64(RunBatches)
	if gpuIdleTime < 0 {
		gpuIdleTime = 0
	}
	gpuIdle := energy.GPUIdle(e.GPUPower, gpuIdleTime)
	hmcActive := rp.Energy.Scale(float64(RunBatches))
	hmcIdleTime := total - devBatch*float64(RunBatches)
	if hmcIdleTime < 0 {
		hmcIdleTime = 0
	}
	hmcIdle := energy.HMCIdle(e.HMCPower, hmcIdleTime)
	ext := energy.Breakdown{External: hostBytes * float64(RunBatches) * e.HMCPower.PJPerExtByte * 1e-12}

	return InferenceResult{
		Design: d, Bench: b.Name, Batches: RunBatches,
		HostBatch: hostBatch, DeviceBatch: devBatch,
		Total:  total,
		Energy: gpuActive.Plus(gpuIdle).Plus(hmcActive).Plus(hmcIdle).Plus(ext),
		RP:     rp,
	}
}

// allInPIM runs the whole network, Conv/PrimaryCaps/FC included, on
// the vault PEs (design 8). This sacrifices the GPU's convolution
// throughput — the paper's point is that it halves performance while
// still saving most of the energy.
func (e *Engine) allInPIM(b workload.Benchmark) InferenceResult {
	cfg := e.HMC
	rp := e.RPPIM(b, AllInPIM)
	array := pe.Array{Spec: e.PESpec, PEs: cfg.PEsPerVault, ClockHz: cfg.ClockHz}

	var convTime, convOps, convBytes float64
	for _, cost := range []workload.LayerCost{b.ConvCost(), b.PrimaryCost(), b.FCCost()} {
		macs := cost.FLOPs / 2
		mix := pe.OpCounts{MAC: macs}
		compute := array.Time(mix) / float64(cfg.Vaults)
		mem := cfg.BlocksOf(cost.BytesIn+cost.BytesOut) / float64(cfg.Vaults) *
			float64(cfg.IssueCycles) / cfg.ClockHz
		convTime += maxf(compute, mem)
		convOps += macs
		convBytes += cost.BytesIn + cost.BytesOut
	}
	batch := convTime + rp.Time
	hmcEng := rp.Energy.Plus(energy.HMCActive(e.HMCPower, convTime, convOps, convBytes, 0, 0)).
		Scale(float64(RunBatches))
	// The host is released entirely (free to run other work or power
	// down), so its energy is not attributed to this design point.
	return InferenceResult{
		Design: AllInPIM, Bench: b.Name, Batches: RunBatches,
		DeviceBatch: batch, Total: batch * float64(RunBatches),
		Energy: hmcEng, RP: rp,
	}
}

// Speedup returns base.Total / x.Total.
func Speedup(base, x InferenceResult) float64 {
	if x.Total == 0 {
		return 0
	}
	return base.Total / x.Total
}

// EnergySaving returns 1 − x/base as a fraction.
func EnergySaving(base, x InferenceResult) float64 {
	bt := base.Energy.Total()
	if bt == 0 {
		return 0
	}
	return 1 - x.Energy.Total()/bt
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
