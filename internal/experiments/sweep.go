package experiments

import (
	"fmt"

	"pimcapsnet/internal/core"
	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/pe"
	"pimcapsnet/internal/workload"
)

func init() {
	register("fig18", Fig18)
	register("overhead", Overhead)
}

// Fig18 reproduces the distribution-dimension × PE-frequency heat map
// (Fig. 18): RP speedup over the baseline GPU for each benchmark,
// forced dimension (B/L/H) and logic-layer clock, with the
// execution-score distributor's pick marked.
func Fig18() Table {
	freqs := []float64{312.5e6, 625e6, 937.5e6}
	t := Table{
		ID:      "Fig18",
		Title:   "RP speedup by distribution dimension and PE frequency",
		Headers: []string{"Benchmark"},
	}
	for _, f := range freqs {
		for _, d := range distribute.Dimensions {
			t.Headers = append(t.Headers, fmt.Sprintf("%.0fMHz/%v", f/1e6, d))
		}
	}
	flips := 0
	for _, b := range workload.Benchmarks {
		row := []string{b.Name}
		var firstBest, lastBest distribute.Dimension
		for fi, f := range freqs {
			e := core.NewEngine()
			e.HMC = e.HMC.WithClock(f)
			gpuT, _ := e.RPGPU(b, false)
			bestSp := 0.0
			var bestDim distribute.Dimension
			cells := make([]string, 0, len(distribute.Dimensions))
			for _, d := range distribute.Dimensions {
				dim := d
				e.ForceDim = &dim
				sp := gpuT / e.RPPIM(b, core.PIMCapsNet).Time
				cells = append(cells, f2(sp))
				if sp > bestSp {
					bestSp, bestDim = sp, d
				}
			}
			// Mark the winning dimension per frequency.
			for i, d := range distribute.Dimensions {
				if d == bestDim {
					cells[i] += "*"
				}
			}
			row = append(row, cells...)
			if fi == 0 {
				firstBest = bestDim
			}
			lastBest = bestDim
		}
		if firstBest != lastBest {
			flips++
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"* marks the fastest dimension at that frequency",
		fmt.Sprintf("%d/%d benchmarks change their best dimension across the sweep (the paper observes the choice shifts with frequency, e.g. Caps-SV3)", flips, len(workload.Benchmarks)))
	return t
}

// Overhead reproduces the §6.5 overhead analysis: area, power and
// thermal headroom of the PIM logic.
func Overhead() Table {
	t := Table{
		ID:      "Overhead",
		Title:   "PIM logic overheads (§6.5)",
		Headers: []string{"Metric", "Value", "Paper"},
	}
	t.Rows = [][]string{
		{"Logic area (32 vaults + RMAS)", fmt.Sprintf("%.2f mm²", pe.LogicAreaMM2), "3.11 mm² @ 24nm"},
		{"HMC logic-surface fraction", pct(pe.HMCLogicAreaFraction), "0.32%"},
		{"Average power overhead", fmt.Sprintf("%.2f W", pe.AvgPowerW), "2.24 W"},
		{"Thermal budget (TDP headroom)", fmt.Sprintf("%.1f W", pe.TDPHeadroomW), "10 W"},
		{"312.5 MHz within budget", fmt.Sprintf("%v", pe.WithinThermalBudget(312.5e6)), "yes"},
		{"937.5 MHz within budget", fmt.Sprintf("%v", pe.WithinThermalBudget(937.5e6)), "yes"},
	}
	return t
}
