package experiments

import (
	"fmt"

	"pimcapsnet/internal/gpusim"
	"pimcapsnet/internal/workload"
)

func init() {
	register("fig4", Fig4)
	register("fig5", Fig5)
	register("fig6a", Fig6a)
	register("fig6b", Fig6b)
	register("fig7", Fig7)
}

// Fig4 reproduces the per-layer execution-time breakdown of CapsNet
// inference on the P100 (Fig. 4): layer shares plus the absolute
// 100-batch run time (the red line).
func Fig4() Table {
	d := gpusim.TeslaP100()
	t := Table{
		ID:      "Fig4",
		Title:   "Per-layer execution time breakdown on GPU (Tesla P100)",
		Headers: []string{"Benchmark", "Conv", "L Caps", "H Caps (RP)", "FC", "Time (s)"},
	}
	var avg float64
	for _, b := range workload.Benchmarks {
		r := d.Run(b)
		t.Rows = append(t.Rows, []string{
			b.Name,
			pct(r.LayerShare(workload.LayerConv)),
			pct(r.LayerShare(workload.LayerLCaps)),
			pct(r.LayerShare(workload.LayerHCaps)),
			pct(r.LayerShare(workload.LayerFC)),
			f2(r.Total()),
		})
		avg += r.RPShare()
	}
	avg /= float64(len(workload.Benchmarks))
	t.Notes = append(t.Notes,
		fmt.Sprintf("average RP share: measured %s vs paper 74.62%%", pct(avg)))
	return t
}

// Fig5 reproduces the RP pipeline-stall breakdown (Fig. 5).
func Fig5() Table {
	d := gpusim.TeslaP100()
	t := Table{
		ID:      "Fig5",
		Title:   "RP pipeline-stall breakdown on Tesla P100",
		Headers: []string{"Benchmark", "Memory", "Sync", "Lack of Resource", "Inst Fetch", "Other"},
	}
	var mem, sync float64
	for _, b := range workload.Benchmarks {
		s := d.RPStalls(b)
		t.Rows = append(t.Rows, []string{
			b.Name, pct(s.Memory), pct(s.Sync), pct(s.Resource), pct(s.InstFetch), pct(s.Other),
		})
		mem += s.Memory
		sync += s.Sync
	}
	n := float64(len(workload.Benchmarks))
	t.Notes = append(t.Notes,
		fmt.Sprintf("averages: memory %s (paper 44.64%%), sync %s (paper 34.45%%)", pct(mem/n), pct(sync/n)))
	return t
}

// Fig6a reproduces the ratio of RP intermediate-variable size to
// on-chip storage across four GPUs (Fig. 6a).
func Fig6a() Table {
	gpus := gpusim.CharacterizationGPUs()
	t := Table{
		ID:      "Fig6a",
		Title:   "RP intermediate size ÷ on-chip storage (A: K40m, B: P100, C: RTX2080Ti, D: V100)",
		Headers: []string{"Benchmark", "Ratio_A", "Ratio_B", "Ratio_C", "Ratio_D"},
	}
	for _, b := range workload.Benchmarks {
		row := []string{b.Name}
		for _, d := range gpus {
			row = append(row, fmt.Sprintf("%.0fx", d.IntermediateRatio(b)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper reports 41x-305x across benchmarks and GPUs")
	return t
}

// Fig6b reproduces the on-chip storage sensitivity sweep (Fig. 6b):
// normalized RP performance with the four storage sizes, isolated on
// the P100 platform.
func Fig6b() Table {
	base := gpusim.TeslaP100()
	sizes := []struct {
		label string
		mb    float64
	}{
		{"A (1.73MB)", 1.73}, {"B (5.31MB)", 5.31}, {"C (9.75MB)", 9.75}, {"D (16MB)", 16},
	}
	t := Table{
		ID:      "Fig6b",
		Title:   "Normalized RP performance vs on-chip storage",
		Headers: []string{"Benchmark", "Perf_A", "Perf_B", "Perf_C", "Perf_D"},
	}
	sums := make([]float64, len(sizes))
	for _, b := range workload.Benchmarks {
		ref := base.WithOnChip(sizes[0].mb * (1 << 20)).RPTime(b).Total()
		row := []string{b.Name}
		for i, sz := range sizes {
			perf := ref / base.WithOnChip(sz.mb*(1<<20)).RPTime(b).Total()
			sums[i] += perf
			row = append(row, f3(perf))
		}
		t.Rows = append(t.Rows, row)
	}
	n := float64(len(workload.Benchmarks))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"averages: %.3f / %.3f / %.3f / %.3f (paper: 1 / 1.09 / 1.11 / 1.114)",
		sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n))
	return t
}

// Fig7 reproduces the memory-bandwidth sensitivity study (Fig. 7):
// normalized RP performance on the four GPUs whose memories span
// GDDR5 to HBM2.
func Fig7() Table {
	gpus := gpusim.BandwidthGPUs()
	t := Table{
		ID:      "Fig7",
		Title:   "Normalized RP performance vs memory bandwidth",
		Headers: []string{"Benchmark"},
	}
	for _, d := range gpus {
		t.Headers = append(t.Headers, fmt.Sprintf("%s (%.0fGB/s)", d.MemName, d.MemBandwidth/1e9))
	}
	sums := make([]float64, len(gpus))
	for _, b := range workload.Benchmarks {
		ref := gpus[0].RPTime(b).Total()
		row := []string{b.Name}
		for i, d := range gpus {
			perf := ref / d.RPTime(b).Total()
			sums[i] += perf
			row = append(row, f3(perf))
		}
		t.Rows = append(t.Rows, row)
	}
	n := float64(len(workload.Benchmarks))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"averages: %.3f / %.3f / %.3f / %.3f (paper: 1 / 1.14 / 1.19 / 1.26)",
		sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n))
	return t
}
