package experiments

import (
	"fmt"

	"pimcapsnet/internal/capsnet"
	"pimcapsnet/internal/dataset"
	"pimcapsnet/internal/tensor"
	"pimcapsnet/internal/workload"
)

func init() {
	register("table5", Table5)
	register("table5quick", Table5Quick)
}

// accuracyRun holds one benchmark's Table 5 row.
type accuracyRun struct {
	Bench     string
	Origin    float64 // exact FP32 routing
	NoRecover float64 // PE approximations, no accuracy recovery
	Recover   float64 // PE approximations with recovery
}

// trainProxy trains a scaled-down CapsNet with the benchmark's class
// count and routing iterations on a synthetic dataset (see DESIGN.md
// §2: real datasets and GPU training are substituted; the experiment
// measures the accuracy delta between exact and PE-approximated
// routing on a trained model, which is what Table 5 demonstrates).
func trainProxy(b workload.Benchmark) accuracyRun {
	cfg := capsnet.TinyConfig(b.NumH)
	perClass, epochs := 24, 40
	switch {
	case b.NumH > 32:
		// The largest proxies (EMNIST Balanced/ByClass scale) need
		// the most feature capacity and training budget.
		cfg.InputH, cfg.InputW = 16, 16
		cfg.ConvChannels = 32
		cfg.PrimaryChannels = 12 // 192 L capsules
		perClass, epochs = 32, 60
	case b.NumH > 16:
		// Mid-size proxies: 16×16 input, 24 conv channels, 8 primary
		// channels (128 L capsules).
		cfg.InputH, cfg.InputW = 16, 16
		cfg.ConvChannels = 24
		cfg.PrimaryChannels = 8
	}
	cfg.RoutingIterations = b.Iters
	cfg.Seed = int64(b.NumH * 7)

	spec := dataset.Tiny(b.NumH)
	spec.H, spec.W = cfg.InputH, cfg.InputW
	spec.Noise = 0.05
	spec.Seed = int64(1000 + b.NumH + b.Iters)
	gen := dataset.NewGenerator(spec)
	train := gen.Generate(b.NumH * perClass)
	test := gen.Generate(b.NumH * 20)

	net, err := capsnet.New(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s proxy config invalid: %v", b.Name, err))
	}
	tr := capsnet.NewTrainer(net, 1.0)
	if b.NumH > 10 {
		// Rebalance the margin loss for many classes (see
		// capsnet.Trainer.NegScale).
		tr.NegScale = 10.0 / float32(b.NumH)
	}
	imgLen := spec.Channels * spec.H * spec.W
	n := train.Images.Dim(0)
	batch := 40
	if batch > n {
		batch = n
	}
	for ep := 0; ep < epochs; ep++ {
		for s := 0; s+batch <= n; s += batch {
			images := tensor.FromSlice(train.Images.Data()[s*imgLen:(s+batch)*imgLen],
				batch, spec.Channels, spec.H, spec.W)
			tr.TrainBatch(images, train.Labels[s:s+batch])
		}
	}

	return accuracyRun{
		Bench:     b.Name,
		Origin:    capsnet.Evaluate(net, test.Images, test.Labels, capsnet.ExactMath{}),
		NoRecover: capsnet.Evaluate(net, test.Images, test.Labels, capsnet.NewPEMathNoRecovery()),
		Recover:   capsnet.Evaluate(net, test.Images, test.Labels, capsnet.NewPEMath()),
	}
}

// table5For runs the accuracy comparison for a subset of benchmarks
// (exported through Table5 for the full set; tests use small subsets).
func table5For(benchmarks []workload.Benchmark) Table {
	t := Table{
		ID:      "Table5",
		Title:   "Accuracy validation: exact vs PE-approximated routing (trained synthetic proxies)",
		Headers: []string{"Benchmark", "Origin", "w/o Recovery", "w/ Recovery", "Δ w/o", "Δ w/"},
	}
	var dNo, dRec float64
	for _, b := range benchmarks {
		r := trainProxy(b)
		t.Rows = append(t.Rows, []string{
			r.Bench, pct(r.Origin), pct(r.NoRecover), pct(r.Recover),
			fmt.Sprintf("%+.2f%%", 100*(r.NoRecover-r.Origin)),
			fmt.Sprintf("%+.2f%%", 100*(r.Recover-r.Origin)),
		})
		dNo += r.Origin - r.NoRecover
		dRec += r.Origin - r.Recover
	}
	n := float64(len(benchmarks))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"average loss: w/o recovery %.2f%% (paper 0.35%%), w/ recovery %.2f%% (paper 0.04%%)",
		100*dNo/n, 100*dRec/n))
	return t
}

// Table5 reproduces the paper's accuracy validation (Table 5) on
// trained synthetic proxies of all 12 benchmarks. The many-class
// EMNIST proxies dominate the cost (~20 minutes total); Table5Quick
// covers the mechanism at CI speed.
func Table5() Table {
	return table5For(workload.Benchmarks)
}

// Table5Quick runs the Table 5 comparison on the two cheapest
// benchmarks only — the variant the Go benchmark harness exercises.
func Table5Quick() Table {
	mn1, _ := workload.ByName("Caps-MN1")
	sv1, _ := workload.ByName("Caps-SV1")
	t := table5For([]workload.Benchmark{mn1, sv1})
	t.ID = "Table5-quick"
	t.Notes = append(t.Notes, "2-benchmark subset; run `pimcaps-bench -exp table5` for all 12")
	return t
}
