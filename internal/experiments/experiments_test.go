package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pimcapsnet/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig4", "fig5", "fig6a", "fig6b", "fig7",
		"fig15a", "fig15b", "fig16a", "fig16b", "fig17a", "fig17b",
		"fig18", "table5", "table5quick", "overhead", "scaling", "emrouting", "modelcheck",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q missing from registry (have %v)", id, ids)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestFastExperimentsProduceFullTables runs every analytic experiment
// (all but table5) and validates row counts and non-empty cells.
func TestFastExperimentsProduceFullTables(t *testing.T) {
	nBench := len(workload.Benchmarks)
	wantRows := map[string]int{
		"fig4": nBench, "fig5": nBench, "fig6a": nBench, "fig6b": nBench,
		"fig7": nBench, "fig15a": nBench, "fig15b": nBench,
		"fig16a": nBench * 3, "fig16b": nBench * 3,
		"fig17a": nBench, "fig17b": nBench, "fig18": nBench, "overhead": 6,
		"scaling": 4, "emrouting": nBench, "modelcheck": 3,
	}
	for id, rows := range wantRows {
		tab, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) != rows {
			t.Fatalf("%s: %d rows, want %d", id, len(tab.Rows), rows)
		}
		for ri, row := range tab.Rows {
			if len(row) != len(tab.Headers) {
				t.Fatalf("%s row %d has %d cells for %d headers", id, ri, len(row), len(tab.Headers))
			}
			for ci, cell := range row {
				if cell == "" {
					t.Fatalf("%s row %d cell %d empty", id, ri, ci)
				}
			}
		}
		if tab.ID == "" || tab.Title == "" {
			t.Fatalf("%s missing metadata", id)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID: "X", Title: "demo",
		Headers: []string{"A", "BB"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, frag := range []string{"X: demo", "A", "BB", "333", "note: hello"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Fprint output missing %q:\n%s", frag, out)
		}
	}
	buf.Reset()
	tab.Markdown(&buf)
	md := buf.String()
	if !strings.Contains(md, "| A | BB |") || !strings.Contains(md, "*hello*") {
		t.Fatalf("Markdown output malformed:\n%s", md)
	}
	buf.Reset()
	tab.CSV(&buf)
	cs := buf.String()
	if !strings.Contains(cs, "A,BB") || !strings.Contains(cs, "333,4") || !strings.Contains(cs, "# hello") {
		t.Fatalf("CSV output malformed:\n%s", cs)
	}
}

// TestTable5Subset trains the two cheapest proxies and checks the
// Table 5 mechanism: trained networks stay well above chance and the
// PE approximations track exact routing closely.
func TestTable5Subset(t *testing.T) {
	if testing.Short() {
		t.Skip("proxy training skipped in -short mode")
	}
	mn1, _ := workload.ByName("Caps-MN1")
	sv1, _ := workload.ByName("Caps-SV1")
	tab := table5For([]workload.Benchmark{mn1, sv1})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	for _, b := range []workload.Benchmark{mn1, sv1} {
		r := trainProxy(b)
		chance := 1.0 / float64(b.NumH)
		if r.Origin < 3*chance {
			t.Fatalf("%s proxy failed to train: origin accuracy %.2f (chance %.2f)", b.Name, r.Origin, chance)
		}
		if diff := r.Origin - r.NoRecover; diff > 0.15 || diff < -0.15 {
			t.Fatalf("%s approximation delta %.2f implausibly large", b.Name, diff)
		}
		if diff := r.Origin - r.Recover; diff > 0.15 || diff < -0.15 {
			t.Fatalf("%s recovered delta %.2f implausibly large", b.Name, diff)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	register("fig4", Fig4)
}

func TestScalingMonotone(t *testing.T) {
	tab, err := Run("scaling")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "regressed") {
			t.Fatalf("scaling speedup regressed: %s", n)
		}
	}
}

func TestEMRoutingSpeedupHolds(t *testing.T) {
	tab, err := Run("emrouting")
	if err != nil {
		t.Fatal(err)
	}
	// Final column is the estimated EM speedup; all rows must beat 1.5×.
	for _, row := range tab.Rows {
		sp := row[len(row)-1]
		var v float64
		if _, err := fmt.Sscanf(sp, "%f", &v); err != nil {
			t.Fatalf("unparseable speedup %q", sp)
		}
		if v < 1.5 {
			t.Fatalf("%s: EM speedup %v below 1.5x", row[0], v)
		}
	}
}
