package experiments

import (
	"fmt"

	"pimcapsnet/internal/core"
	"pimcapsnet/internal/workload"
)

func init() {
	register("scaling", Scaling)
}

// scaledBenchmark builds a synthetic CapsNet beyond Table 1's sizes by
// growing the low-level capsule count (more primary-capsule channels
// on the CIFAR-sized front end), the axis the paper projects future
// CapsNets to grow along (§3.1 cites [45, 46]).
func scaledBenchmark(mult int) workload.Benchmark {
	b, err := workload.ByName("Caps-CF1") // 2304 L capsules at mult 1
	if err != nil {
		panic(err)
	}
	b.Name = fmt.Sprintf("Caps-CF1x%d", mult)
	b.NumL *= mult
	b.PrimaryChannels *= mult
	return b
}

// Scaling extends the evaluation past Table 1: RP speedup and energy
// saving of PIM-CapsNet as the network grows to 8× the largest CIFAR
// benchmark, demonstrating the scalability trend the paper claims
// (its §6.2.1: larger networks benefit more, e.g. Caps-EN3 2.27× vs
// Caps-SV1 2.09×).
func Scaling() Table {
	e := core.NewEngine()
	t := Table{
		ID:      "Scaling",
		Title:   "RP speedup and energy vs network scale (beyond Table 1)",
		Headers: []string{"Network", "L caps", "û (MB)", "RP GPU (ms)", "RP PIM (ms)", "Speedup", "Energy saving"},
	}
	prev := 0.0
	for _, mult := range []int{1, 2, 4, 8} {
		b := scaledBenchmark(mult)
		gpuT, gpuE := e.RPGPU(b, false)
		pim := e.RPPIM(b, core.PIMCapsNet)
		sp := gpuT / pim.Time
		t.Rows = append(t.Rows, []string{
			b.Name, fmt.Sprintf("%d", b.NumL),
			f1(b.RPVars().UHat / (1 << 20)),
			f2(gpuT * 1e3), f2(pim.Time * 1e3), f2(sp),
			pct(1 - pim.Energy.Total()/gpuE.Total()),
		})
		if sp < prev {
			t.Notes = append(t.Notes, fmt.Sprintf("warning: speedup regressed at %d×", mult))
		}
		prev = sp
	}
	t.Notes = append(t.Notes,
		"the paper reports growing benefit with network size (scalability, §6.2.1); the trend continues past Table 1's largest configuration")
	return t
}
