// Package experiments regenerates every table and figure of the
// paper's evaluation (§3 characterization and §6 results). Each
// runner returns a Table with the same rows/series the paper reports,
// plus the paper's published aggregate for side-by-side comparison;
// EXPERIMENTS.md is the rendered archive of these runs.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes carries paper-vs-measured commentary.
	Notes []string
}

// Fprint renders the table as aligned text.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV renders the table as RFC-4180 CSV (headers first; notes become
// trailing comment-style rows prefixed with "#").
func (t Table) CSV(w io.Writer) {
	cw := csv.NewWriter(w)
	_ = cw.Write(t.Headers)
	for _, row := range t.Rows {
		_ = cw.Write(row)
	}
	cw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
}

// Markdown renders the table as GitHub-flavored markdown.
func (t Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

// Runner produces one experiment's table.
type Runner func() Table

// registry maps experiment ids to runners; filled by init() in the
// per-figure files.
var registry = map[string]Runner{}

// register adds a runner (called from init functions).
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", id))
	}
	registry[id] = r
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(), nil
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func ms(v float64) string  { return fmt.Sprintf("%.2fms", v*1e3) }
