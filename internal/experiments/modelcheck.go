package experiments

import (
	"fmt"
	"math/rand"

	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/hmc"
	"pimcapsnet/internal/pimexec"
	"pimcapsnet/internal/tensor"
	"pimcapsnet/internal/workload"
)

func init() {
	register("modelcheck", ModelCheck)
}

// ModelCheck validates the paper's offline distribution models against
// the functional co-simulator: for a scaled-down routing problem it
// compares, per dimension, the E model's largest-per-vault-work
// prediction (Eqs. 7/9/11) and the M model's communication prediction
// (Eqs. 8/10/12) with the cycles and bytes the executor actually
// accumulates while producing numerically correct capsules. The
// rank-order agreement is what justifies choosing the dimension
// offline (§5.1.2).
func ModelCheck() Table {
	// A scaled Caps-MN-like problem small enough to interpret.
	const nb, nl, nh, cl, ch = 8, 96, 10, 8, 16
	const iters = 3
	rng := rand.New(rand.NewSource(42))
	preds := tensor.New(nb, nl, nh, ch)
	for i := range preds.Data() {
		preds.Data()[i] = float32(rng.NormFloat64()) * 0.1
	}
	cfg := hmc.DefaultConfig()
	params := distribute.Params{
		I: iters, NB: nb, NL: nl, NH: nh, CL: cl, CH: ch,
		NVault: cfg.Vaults, SizeVar: workload.WordBytes, SizePkt: float64(cfg.PacketOverheadBytes),
	}

	t := Table{
		ID:      "ModelCheck",
		Title:   "Analytical E/M models vs functional co-simulation (B=8 L=96 H=10 CH=16, 3 iters)",
		Headers: []string{"Dimension", "E model (ops)", "Sim max-vault cycles", "M model (bytes)", "Sim comm bytes", "Active vaults"},
	}

	type row struct {
		e, cyc, m, comm float64
	}
	rows := map[distribute.Dimension]row{}
	for _, dim := range distribute.Dimensions {
		x := pimexec.New(dim)
		x.Cfg = cfg
		r := x.Run(preds, iters)
		rows[dim] = row{
			e: params.E(dim), cyc: r.MaxComputeCycles(),
			m: params.M(dim), comm: r.TotalCommBytes(),
		}
		t.Rows = append(t.Rows, []string{
			dim.String(),
			fmt.Sprintf("%.3g", params.E(dim)),
			fmt.Sprintf("%.3g", r.MaxComputeCycles()*float64(cfg.PEsPerVault)),
			fmt.Sprintf("%.3g", params.M(dim)),
			fmt.Sprintf("%.3g", r.TotalCommBytes()),
			fmt.Sprintf("%d", r.ActiveVaults()),
		})
	}

	// Rank agreement notes.
	agreeE := (rows[distribute.DimH].e > rows[distribute.DimL].e) ==
		(rows[distribute.DimH].cyc > rows[distribute.DimL].cyc)
	agreeM := (rows[distribute.DimL].m > rows[distribute.DimH].m) ==
		(rows[distribute.DimL].comm > rows[distribute.DimH].comm)
	t.Notes = append(t.Notes,
		fmt.Sprintf("E-model rank agreement (H vs L): %v; M-model rank agreement (L vs H): %v", agreeE, agreeM),
		"the executor also verifies numerics: its capsules match capsnet's PE-math routing (see internal/pimexec tests)")
	return t
}
