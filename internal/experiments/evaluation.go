package experiments

import (
	"fmt"

	"pimcapsnet/internal/core"
	"pimcapsnet/internal/workload"
)

func init() {
	register("fig15a", Fig15a)
	register("fig15b", Fig15b)
	register("fig16a", Fig16a)
	register("fig16b", Fig16b)
	register("fig17a", Fig17a)
	register("fig17b", Fig17b)
}

// Fig15a reproduces the RP speedup of PIM-CapsNet and GPU-ICP over the
// baseline GPU (Fig. 15a).
func Fig15a() Table {
	e := core.NewEngine()
	t := Table{
		ID:      "Fig15a",
		Title:   "RP speedup over Baseline GPU",
		Headers: []string{"Benchmark", "Baseline", "GPU-ICP", "PIM-CapsNet"},
	}
	var avg float64
	for _, b := range workload.Benchmarks {
		baseT, _ := e.RPGPU(b, false)
		icpT, _ := e.RPGPU(b, true)
		pim := e.RPPIM(b, core.PIMCapsNet)
		sp := baseT / pim.Time
		avg += sp
		t.Rows = append(t.Rows, []string{b.Name, "1.00", f3(baseT / icpT), f2(sp)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"average PIM-CapsNet RP speedup: %.2fx (paper 2.17x, up to 2.27x); GPU-ICP ≈ +1%% both here and in the paper",
		avg/float64(len(workload.Benchmarks))))
	return t
}

// Fig15b reproduces the normalized RP energy (Fig. 15b).
func Fig15b() Table {
	e := core.NewEngine()
	t := Table{
		ID:      "Fig15b",
		Title:   "Normalized RP energy consumption",
		Headers: []string{"Benchmark", "Baseline", "GPU-ICP", "PIM-CapsNet", "Saving"},
	}
	var avg float64
	for _, b := range workload.Benchmarks {
		_, baseE := e.RPGPU(b, false)
		icpT, _ := e.RPGPU(b, true)
		baseT, _ := e.RPGPU(b, false)
		pim := e.RPPIM(b, core.PIMCapsNet)
		rel := pim.Energy.Total() / baseE.Total()
		avg += 1 - rel
		t.Rows = append(t.Rows, []string{
			b.Name, "1.000", f3(icpT / baseT), f3(rel), pct(1 - rel),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"average RP energy saving: %s (paper 92.18%%)", pct(avg/float64(len(workload.Benchmarks)))))
	return t
}

// Fig16a reproduces the normalized RP execution-time breakdown of the
// three PIM designs (Fig. 16a): execution vs crossbar vs vault request
// stalls, normalized to the baseline GPU RP time.
func Fig16a() Table {
	e := core.NewEngine()
	t := Table{
		ID:      "Fig16a",
		Title:   "PIM design time breakdown (normalized to Baseline GPU RP)",
		Headers: []string{"Benchmark", "Design", "Execution", "X-bar", "VRS", "Total", "Speedup"},
	}
	var spIntra, spInter, spFull float64
	for _, b := range workload.Benchmarks {
		gpuT, _ := e.RPGPU(b, false)
		for _, d := range []core.Design{core.PIMIntra, core.PIMInter, core.PIMCapsNet} {
			r := e.RPPIM(b, d)
			t.Rows = append(t.Rows, []string{
				b.Name, d.String(),
				f3(r.Exec / gpuT), f3(r.Xbar / gpuT), f3(r.VRS / gpuT),
				f3(r.Time / gpuT), f2(gpuT / r.Time),
			})
			switch d {
			case core.PIMIntra:
				spIntra += gpuT / r.Time
			case core.PIMInter:
				spInter += gpuT / r.Time
			case core.PIMCapsNet:
				spFull += gpuT / r.Time
			}
		}
	}
	n := float64(len(workload.Benchmarks))
	t.Notes = append(t.Notes,
		fmt.Sprintf("avg speedups: PIM-Intra %.2fx (paper 1.22x), PIM-Inter %.2fx (paper 0.95x), PIM-CapsNet %.2fx", spIntra/n, spInter/n, spFull/n),
		fmt.Sprintf("PIM-CapsNet vs PIM-Intra +%.1f%% (paper +76.6%%), vs PIM-Inter +%.1f%% (paper +127.8%%)",
			100*(spFull/spIntra-1), 100*(spFull/spInter-1)))
	return t
}

// Fig16b reproduces the energy breakdown of the three PIM designs
// (Fig. 16b): execution (PE), DRAM, crossbar and vault static energy,
// normalized to the baseline GPU RP energy.
func Fig16b() Table {
	e := core.NewEngine()
	t := Table{
		ID:      "Fig16b",
		Title:   "PIM design energy breakdown (normalized to Baseline GPU RP)",
		Headers: []string{"Benchmark", "Design", "Execution", "DRAM", "XBAR", "Vault", "Total"},
	}
	for _, b := range workload.Benchmarks {
		_, gpuE := e.RPGPU(b, false)
		ref := gpuE.Total()
		for _, d := range []core.Design{core.PIMIntra, core.PIMInter, core.PIMCapsNet} {
			r := e.RPPIM(b, d)
			t.Rows = append(t.Rows, []string{
				b.Name, d.String(),
				f3(r.Energy.Compute / ref), f3(r.Energy.DRAM / ref),
				f3((r.Energy.Crossbar + r.Energy.External) / ref), f3(r.Energy.Static / ref),
				f3(r.Energy.Total() / ref),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: PIM-CapsNet saves 4.81%/4.52% more energy than PIM-Inter/PIM-Intra")
	return t
}

// Fig17a reproduces the whole-network speedup of every design point
// (Fig. 17a).
func Fig17a() Table {
	e := core.NewEngine()
	designs := []core.Design{core.Baseline, core.AllInPIM, core.RMASPIM, core.RMASGPU, core.PIMCapsNet}
	t := Table{
		ID:      "Fig17a",
		Title:   "Whole-network speedup over Baseline",
		Headers: []string{"Benchmark"},
	}
	for _, d := range designs {
		t.Headers = append(t.Headers, d.String())
	}
	var avg, best float64
	for _, b := range workload.Benchmarks {
		base := e.Inference(b, core.Baseline)
		row := []string{b.Name}
		for _, d := range designs {
			sp := core.Speedup(base, e.Inference(b, d))
			row = append(row, f2(sp))
			if d == core.PIMCapsNet {
				avg += sp
				if sp > best {
					best = sp
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"PIM-CapsNet average %.2fx, best %.2fx (paper: 2.44x average, up to 2.76x)",
		avg/float64(len(workload.Benchmarks)), best))
	return t
}

// Fig17b reproduces the whole-network normalized energy (Fig. 17b).
func Fig17b() Table {
	e := core.NewEngine()
	designs := []core.Design{core.Baseline, core.AllInPIM, core.RMASPIM, core.RMASGPU, core.PIMCapsNet}
	t := Table{
		ID:      "Fig17b",
		Title:   "Whole-network normalized energy",
		Headers: []string{"Benchmark"},
	}
	for _, d := range designs {
		t.Headers = append(t.Headers, d.String())
	}
	var avg, bestSave float64
	for _, b := range workload.Benchmarks {
		base := e.Inference(b, core.Baseline)
		row := []string{b.Name}
		for _, d := range designs {
			r := e.Inference(b, d)
			rel := r.Energy.Total() / base.Energy.Total()
			row = append(row, f3(rel))
			if d == core.PIMCapsNet {
				avg += 1 - rel
				if 1-rel > bestSave {
					bestSave = 1 - rel
				}
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"PIM-CapsNet average saving %s, best %s (paper: 64.91%% average, up to 85.16%%); All-in-PIM saves energy at ~0.5x performance (paper 71.09%%)",
		pct(avg/float64(len(workload.Benchmarks))), pct(bestSave)))
	return t
}
