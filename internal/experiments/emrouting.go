package experiments

import (
	"pimcapsnet/internal/core"
	"pimcapsnet/internal/workload"
)

func init() {
	register("emrouting", EMRouting)
}

// EMRouting extends the evaluation to the second routing algorithm the
// paper names (§2.2, Hinton et al.'s EM routing): the in-memory design
// is applied unchanged — same distribution, mapping and PE array —
// with EM's operation mix and traffic. The paper claims its
// "optimizations on Dynamic Routing ... can be easily applied to other
// routing algorithms with simple adjustment"; this experiment
// quantifies that claim.
func EMRouting() Table {
	e := core.NewEngine()
	t := Table{
		ID:      "EMRouting",
		Title:   "EM routing under the PIM-CapsNet design (vs dynamic routing)",
		Headers: []string{"Benchmark", "DR PIM (ms)", "EM PIM (ms)", "EM/DR ops", "EM/DR bytes", "EM est. speedup"},
	}
	var avg float64
	for _, b := range workload.Benchmarks {
		dr := e.RPPIM(b, core.PIMCapsNet)
		em := e.EMRPPIM(b, core.PIMCapsNet)
		opRatio := em.PEOps / dr.PEOps
		byteRatio := em.DRAMBytes / dr.DRAMBytes
		// The GPU side scales with the same component ratios (its RP
		// time is traffic/sync-bound, both of which grow with the
		// vote-tensor passes), so the estimated EM speedup is the DR
		// speedup shifted by the byte-ratio quotient.
		gpuT, _ := e.RPGPU(b, false)
		estGPUEM := gpuT * byteRatio
		sp := estGPUEM / em.Time
		avg += sp
		t.Rows = append(t.Rows, []string{
			b.Name, ms(dr.Time), ms(em.Time), f2(opRatio), f2(byteRatio), f2(sp),
		})
	}
	t.Notes = append(t.Notes,
		"EM fits Gaussians per iteration (≈2× dynamic routing's per-iteration operations) yet the in-memory speedup holds — the design is algorithm-agnostic as the paper claims (§4)",
		f2(avg/float64(len(workload.Benchmarks)))+"x average estimated EM speedup")
	return t
}
