package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"pimcapsnet/internal/obs"
)

// fleetFetchTimeout bounds one replica fetch during a fleet trace
// merge or metrics scrape — debug endpoints must answer promptly even
// with a hung replica in the pool.
const fleetFetchTimeout = 2 * time.Second

// handleRequestTrace serves the router's own completed-trace ring as
// Chrome trace-event JSON; ?last=N bounds the request count,
// ?trace=<id> restricts to one request, and &format=spans switches
// the ?trace response to fragment JSON (the same contract replicas
// expose, so tooling works at either tier).
func (d *Dispatcher) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if id := q.Get("trace"); id != "" {
		traces := d.findTraces(id)
		w.Header().Set("Content-Type", "application/json")
		if q.Get("format") == "spans" {
			obs.WriteFragments(w, traces)
			return
		}
		obs.WriteChromeTrace(w, traces, d.tracer.Epoch())
		return
	}
	n := obs.DefaultTraceBuffer
	if d.cfg.TraceBuffer > 0 {
		n = d.cfg.TraceBuffer
	}
	if qv := q.Get("last"); qv != "" {
		v, err := strconv.Atoi(qv)
		if err != nil || v < 1 {
			http.Error(w, "last must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w, d.tracer.Last(n), d.tracer.Epoch())
}

// findTraces unions the sampled ring's and the flight recorder's
// traces for one ID, deduplicated by pointer.
func (d *Dispatcher) findTraces(id string) []*obs.Trace {
	traces := d.tracer.Find(id)
	if d.flight != nil {
		seen := make(map[*obs.Trace]bool, len(traces))
		for _, t := range traces {
			seen[t] = true
		}
		for _, t := range d.flight.Find(id) {
			if !seen[t] {
				traces = append(traces, t)
			}
		}
	}
	return traces
}

// handleFlight serves the router's flight-recorder pins as JSON.
func (d *Dispatcher) handleFlight(w http.ResponseWriter, r *http.Request) {
	if d.flight == nil {
		http.Error(w, "flight recorder disabled (set FlightBuffer > 0)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	d.flight.WriteJSON(w)
}

// handleFleetTrace merges one trace ID's span fragments from the
// router and every replica into a single Chrome trace: the router's
// route/attempt spans and each replica's stage spans land on distinct
// process tracks ("router", "replica-0..N"), clock-aligned via the
// fragments' wall-clock timestamps. Replicas that are down or retain
// no spans for the ID simply contribute nothing — a partial merge
// from a degraded fleet is exactly when this endpoint matters.
func (d *Dispatcher) handleFleetTrace(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("trace")
	if id == "" {
		http.Error(w, "trace query parameter required", http.StatusBadRequest)
		return
	}
	var frags []obs.TraceFragment
	for _, t := range d.findTraces(id) {
		f := obs.FragmentFromTrace(t)
		f.Process = "router"
		frags = append(frags, f)
	}
	for i, rep := range d.cfg.Pool.Snapshot() {
		doc, err := d.fetchFragments(r.Context(), rep, id)
		if err != nil {
			continue
		}
		process := fmt.Sprintf("replica-%d", i)
		for _, f := range doc.Fragments {
			f.Process = process
			frags = append(frags, f)
		}
	}
	if len(frags) == 0 {
		http.Error(w, "no spans retained for trace "+id, http.StatusNotFound)
		return
	}
	obs.SortFragmentSpans(frags)
	w.Header().Set("Content-Type", "application/json")
	obs.MergeFragments(frags).WriteJSON(w)
}

// fetchFragments pulls one replica's span fragments for a trace ID.
func (d *Dispatcher) fetchFragments(ctx context.Context, rep ReplicaInfo, id string) (obs.FragmentDoc, error) {
	var doc obs.FragmentDoc
	ctx, cancel := context.WithTimeout(ctx, fleetFetchTimeout)
	defer cancel()
	u := rep.URL + "/debug/requests/trace?trace=" + url.QueryEscape(id) + "&format=spans"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return doc, err
	}
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("cluster: %s fragment fetch: status %d", rep.Name, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, err
	}
	return doc, nil
}

// handleFleetMetrics serves the aggregated cluster exposition: every
// replica's /metrics scraped and re-exported with a {replica} label,
// histogram families merged exactly (identical fixed bucket layouts
// sum losslessly), followed by the router's own families and the SLO
// gauges — one scrape target for the whole fleet.
func (d *Dispatcher) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	snap := d.cfg.Pool.Snapshot()
	scrapes := make([]ReplicaMetrics, 0, len(snap))
	failed := 0
	for _, rep := range snap {
		data, err := d.fetchMetrics(r.Context(), rep)
		if err != nil {
			failed++
			continue
		}
		scrapes = append(scrapes, ReplicaMetrics{Name: rep.Name, Samples: ParsePromText(data)})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteFleetMetrics(w, scrapes, failed)
	d.cfg.Metrics.WriteText(w)
	d.slo.WriteText(w)
}

// fetchMetrics pulls one replica's raw /metrics exposition.
func (d *Dispatcher) fetchMetrics(ctx context.Context, rep ReplicaInfo) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, fleetFetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.URL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s metrics fetch: status %d", rep.Name, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
