package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"time"

	"pimcapsnet/internal/deadline"
	"pimcapsnet/internal/obs"
)

// DispatcherConfig tunes the routing front. Zero-value fields fall
// back to the documented defaults.
type DispatcherConfig struct {
	// Pool supplies replica snapshots (required) — usually a *Manager.
	Pool Pool
	// Placer scores ready replicas per request (zero value = defaults).
	Placer Placer
	// Metrics receives router counters; nil allocates a private set.
	Metrics *Metrics
	// Logger receives per-request debug records. Nil disables logging.
	Logger *slog.Logger
	// MaxAttempts is the per-request retry budget, counting the first
	// attempt. Default 4: with a probe interval of 250ms, one crashed
	// replica costs at most one wasted attempt before the prober
	// removes it, so 4 rides out two overlapping failures.
	MaxAttempts int
	// AttemptTimeout bounds one replica round trip. Default 30s (a
	// full queue ahead of the request must be allowed to drain).
	AttemptTimeout time.Duration
	// HedgeDelay is how long the first attempt may remain unanswered
	// before a hedge — a duplicate attempt on the next-best replica —
	// launches. 0 disables hedging. Default 500ms.
	HedgeDelay time.Duration
	// MaxHedges is the per-request hedging budget. Default 1.
	MaxHedges int
	// RetryAfterCap bounds how long a replica 429's Retry-After header
	// is honored before the next attempt. Default 1s.
	RetryAfterCap time.Duration
	// DefaultBudget, when positive, assigns requests arriving without a
	// deadline header an absolute deadline now+DefaultBudget, so every
	// downstream attempt is deadline-bounded. 0 (the default) leaves
	// headerless requests unbounded, preserving the pre-deadline
	// behavior.
	DefaultBudget time.Duration
	// ExpectedServiceTime is the router's estimate of one replica round
	// trip under normal load, used to veto hedges that cannot finish
	// inside the remaining deadline budget (a hedge needs HedgeDelay +
	// ExpectedServiceTime of runway). Default 100ms.
	ExpectedServiceTime time.Duration
	// Clock overrides the dispatcher's time source; nil means time.Now.
	// Tests inject a fake clock for deterministic deadline arithmetic.
	Clock obs.Clock
	// Client performs replica requests; nil uses a private client.
	Client *http.Client
	// TraceSample is the fraction of routed requests whose span
	// timeline (the root route span plus one span per replica attempt,
	// tagged with replica/attempt/hedge/code) is recorded for
	// /debug/requests/trace. Default 0: no span recording.
	TraceSample float64
	// TraceBuffer is the completed-trace ring capacity behind
	// /debug/requests/trace. Default 256.
	TraceBuffer int
	// FlightBuffer, when positive, arms the tail-sampled flight
	// recorder (/debug/requests/flight): every routed request records
	// spans live, and requests ending 5xx, exhausting their deadline,
	// or exceeding SlowThreshold are pinned. 0 disables it.
	FlightBuffer int
	// SlowThreshold, when positive and the flight recorder is armed,
	// pins any routed request slower than this end to end.
	SlowThreshold time.Duration
	// SLOTarget is the availability objective the SLO tracker burns
	// error budget against, in (0, 1). 0 means DefaultSLOTarget.
	SLOTarget float64
}

func (c DispatcherConfig) withDefaults() DispatcherConfig {
	if c.Metrics == nil {
		c.Metrics = NewMetrics()
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 4
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 500 * time.Millisecond
	}
	if c.MaxHedges == 0 {
		c.MaxHedges = 1
	}
	if c.RetryAfterCap == 0 {
		c.RetryAfterCap = time.Second
	}
	if c.ExpectedServiceTime == 0 {
		c.ExpectedServiceTime = 100 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Dispatcher is the router's HTTP front: it places each classify
// request on a replica via the Eq. 6–12 score, forwards it, and spends
// the retry and hedging budgets so replica faults cost attempts rather
// than client-visible errors.
type Dispatcher struct {
	cfg DispatcherConfig
	mux *http.ServeMux

	// now/sleep inject the time source and the backoff sleeps so the
	// deadline arithmetic is testable without wall-clock waits.
	now   func() time.Time
	sleep func(time.Duration)

	// tracer records routed-request span timelines (the route span and
	// per-attempt spans); flight is the tail-sampled recorder (nil when
	// disabled); slo derives the rolling availability / latency / burn
	// gauges from terminal responses.
	tracer *obs.Tracer
	flight *obs.FlightRecorder
	slo    *SLOTracker
}

// NewDispatcher builds the routing front over a pool.
func NewDispatcher(cfg DispatcherConfig) (*Dispatcher, error) {
	cfg = cfg.withDefaults()
	if cfg.Pool == nil {
		return nil, fmt.Errorf("cluster: DispatcherConfig.Pool is required")
	}
	d := &Dispatcher{cfg: cfg, mux: http.NewServeMux(), now: time.Now, sleep: time.Sleep}
	if cfg.Clock != nil {
		d.now = cfg.Clock
	}
	d.tracer = obs.NewTracer(obs.TracerConfig{
		Sample:     cfg.TraceSample,
		BufferSize: cfg.TraceBuffer,
		Clock:      cfg.Clock,
	})
	if cfg.FlightBuffer > 0 {
		d.flight = obs.NewFlightRecorder(obs.FlightConfig{
			Capacity:      cfg.FlightBuffer,
			SlowThreshold: cfg.SlowThreshold,
		})
	}
	d.slo = NewSLOTracker(cfg.SLOTarget, cfg.Clock)
	d.mux.HandleFunc("/v1/classify", d.handleClassify)
	d.mux.HandleFunc("/v1/model", d.handleModel)
	d.mux.HandleFunc("/v1/replicas", d.handleReplicas)
	d.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	d.mux.HandleFunc("/readyz", d.handleReadyz)
	d.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.cfg.Metrics.WriteText(w)
		d.slo.WriteText(w)
	})
	d.mux.HandleFunc("/metrics/fleet", d.handleFleetMetrics)
	d.mux.HandleFunc("/debug/requests/trace", d.handleRequestTrace)
	d.mux.HandleFunc("/debug/requests/flight", d.handleFlight)
	d.mux.HandleFunc("/debug/trace/fleet", d.handleFleetTrace)
	return d, nil
}

// Metrics returns the dispatcher's counter set.
func (d *Dispatcher) Metrics() *Metrics { return d.cfg.Metrics }

// Tracer returns the dispatcher's request tracer.
func (d *Dispatcher) Tracer() *obs.Tracer { return d.tracer }

// Flight returns the flight recorder (nil when disabled).
func (d *Dispatcher) Flight() *obs.FlightRecorder { return d.flight }

// SLO returns the rolling SLO tracker.
func (d *Dispatcher) SLO() *SLOTracker { return d.slo }

// Handler returns the router's full HTTP surface.
func (d *Dispatcher) Handler() http.Handler { return d.mux }

func (d *Dispatcher) logger() *slog.Logger {
	if d.cfg.Logger != nil {
		return d.cfg.Logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// handleReadyz reports router readiness: dispatchable once at least
// one replica is, mirroring the replica body shape loosely (status +
// counts) so the same probing tools work one tier up.
func (d *Dispatcher) handleReadyz(w http.ResponseWriter, r *http.Request) {
	all := d.cfg.Pool.Snapshot()
	ready := 0
	for _, rep := range all {
		if rep.Ready {
			ready++
		}
	}
	status := "ok"
	code := http.StatusOK
	if ready == 0 {
		status = "no ready replicas"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status": status, "ready_replicas": ready, "replicas": len(all),
	})
}

// handleReplicas dumps the pool snapshot — the operator's view of the
// fleet (names, URLs, PIDs, restart counts, last probed load).
func (d *Dispatcher) handleReplicas(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(d.cfg.Pool.Snapshot())
}

// handleModel proxies the model descriptor from any ready replica —
// all replicas serve the same checkpoint, so the first one answers.
func (d *Dispatcher) handleModel(w http.ResponseWriter, r *http.Request) {
	ready := Ready(d.cfg.Pool)
	if len(ready) == 0 {
		http.Error(w, "no ready replicas", http.StatusServiceUnavailable)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ready[0].URL+"/v1/model", nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		http.Error(w, "replica unreachable", http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// attemptResult is one replica round trip's outcome.
type attemptResult struct {
	replica string
	// code is the metric outcome label: the HTTP status, "error" for
	// transport failures, "corrupt" for invalid 200 bodies.
	code   string
	status int
	header http.Header
	body   []byte
	// ok marks a response the client may receive verbatim.
	ok bool
	// terminal marks a response that should not be retried even though
	// it failed (deterministic client errors: 400, 404, 413...).
	terminal bool
	// retryAfter carries a 429's backoff hint.
	retryAfter time.Duration
	// launchIdx indexes the launch bookkeeping inside one attempt, so
	// a result pairs back to its span even when span IDs are absent.
	launchIdx int
}

// send performs one classify round trip against a replica and
// classifies the outcome. A non-zero dl is propagated as the absolute
// deadline header so the replica can refuse or abort work the client
// will never read.
func (d *Dispatcher) send(ctx context.Context, rep ReplicaInfo, body []byte, traceID, parentSpan string, dl time.Time) attemptResult {
	res := attemptResult{replica: rep.Name}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.URL+"/v1/classify", bytes.NewReader(body))
	if err != nil {
		res.code = "error"
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceIDHeader, traceID)
	if parentSpan != "" {
		// The attempt's span ID travels as the replica's parent span, so
		// the replica-side stage spans attribute to exactly this attempt
		// (retries and hedges each mint their own).
		req.Header.Set(obs.ParentSpanHeader, parentSpan)
	}
	if !dl.IsZero() {
		deadline.Set(req.Header, dl)
	}
	resp, err := d.cfg.Client.Do(req)
	if err != nil {
		res.code = "error"
		return res
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		res.code = "error"
		return res
	}
	res.status, res.header, res.body = resp.StatusCode, resp.Header, respBody
	res.code = strconv.Itoa(resp.StatusCode)
	switch {
	case resp.StatusCode == http.StatusOK:
		if !validClassifyBody(respBody) {
			// A corrupt response (truncated JSON, NaN probabilities)
			// costs a retry, never reaches the client.
			res.code = "corrupt"
			return res
		}
		res.ok = true
	case resp.StatusCode == http.StatusTooManyRequests:
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s >= 0 {
			res.retryAfter = time.Duration(s) * time.Second
		}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The replica deterministically rejected the request body; a
		// different replica would too. Forward the rejection.
		res.terminal = true
	}
	return res
}

// validClassifyBody vets a replica 200 before it reaches the client:
// decodable JSON, a plausible class, non-empty finite probabilities.
func validClassifyBody(body []byte) bool {
	var cr struct {
		Class int       `json:"class"`
		Probs []float64 `json:"probs"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		return false
	}
	if len(cr.Probs) == 0 || cr.Class < 0 || cr.Class >= len(cr.Probs) {
		return false
	}
	for _, p := range cr.Probs {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return false
		}
	}
	return true
}

// attempt runs one placed attempt with the hedging budget: the primary
// request goes to rep; if it stays unanswered past HedgeDelay and the
// budget allows, a duplicate launches on alt, and whichever usable
// response lands first wins. hedgesLeft is decremented in place.
//
// A non-zero dl caps the attempt timeout at the remaining budget, and
// vetoes the hedge when the budget cannot cover HedgeDelay plus one
// ExpectedServiceTime — a hedge that cannot finish in time is pure
// load amplification with no chance of helping the client.
func (d *Dispatcher) attempt(ctx context.Context, rep ReplicaInfo, alt *ReplicaInfo, body []byte, traceID string, hedgesLeft *int, dl time.Time, t *obs.Trace, attemptNo int, rootSpan string) attemptResult {
	timeout := d.cfg.AttemptTimeout
	if !dl.IsZero() {
		if remaining := dl.Sub(d.now()); remaining < timeout {
			timeout = remaining
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// launchRec tracks one launched round trip's span identity so its
	// attempt span lands on the trace whether the response arrives, is
	// abandoned mid-flight, or loses a hedge race.
	type launchRec struct {
		spanID  string
		replica string
		hedge   bool
		start   time.Time
		done    bool
	}
	var launches []*launchRec
	record := func(rec *launchRec, code string) {
		rec.done = true
		if t == nil {
			return
		}
		t.AddSpan(obs.Span{
			Name: "attempt", Iter: -1, Start: rec.start, End: d.now(),
			ID: rec.spanID, Parent: rootSpan,
			Tags: map[string]string{
				"replica": rec.replica,
				"attempt": strconv.Itoa(attemptNo),
				"hedge":   strconv.FormatBool(rec.hedge),
				"code":    code,
			},
		})
	}
	// Stragglers (the cancelled loser of a hedge race, or a launch
	// still in flight when the deadline kills the attempt) are closed
	// out here so every launch leaves exactly one span.
	defer func() {
		for _, rec := range launches {
			if !rec.done {
				record(rec, "abandoned")
			}
		}
	}()

	resCh := make(chan attemptResult, 2)
	launch := func(target ReplicaInfo, hedge bool) {
		rec := &launchRec{replica: target.Name, hedge: hedge, start: d.now()}
		if t != nil {
			rec.spanID = obs.NewID()
		}
		idx := len(launches)
		launches = append(launches, rec)
		go func() {
			res := d.send(ctx, target, body, traceID, rec.spanID, dl)
			res.launchIdx = idx
			resCh <- res
		}()
	}
	launch(rep, false)
	launched := 1

	var hedgeTimer <-chan time.Time
	if d.cfg.HedgeDelay > 0 && alt != nil && *hedgesLeft > 0 {
		if dl.IsZero() || dl.Sub(d.now()) >= d.cfg.HedgeDelay+d.cfg.ExpectedServiceTime {
			// A stopped timer (not time.After) so the common case — the
			// primary answers first — releases the timer immediately
			// instead of pinning it for the full hedge delay.
			hedge := time.NewTimer(d.cfg.HedgeDelay)
			defer hedge.Stop()
			hedgeTimer = hedge.C
		} else {
			d.cfg.Metrics.IncHedgeSkipped()
			d.logger().Debug("hedge skipped, deadline too close",
				slog.String("trace_id", traceID),
				slog.Duration("remaining", dl.Sub(d.now())))
		}
	}

	var last attemptResult
	for received := 0; received < launched; {
		select {
		case res := <-resCh:
			received++
			d.cfg.Metrics.IncReplicaRequest(res.replica, res.code)
			record(launches[res.launchIdx], res.code)
			if res.ok || res.terminal {
				// cancel() aborts the straggler attempt on return.
				return res
			}
			last = res
		case <-hedgeTimer:
			hedgeTimer = nil
			*hedgesLeft--
			d.cfg.Metrics.IncHedge()
			d.logger().Debug("hedging attempt",
				slog.String("trace_id", traceID),
				slog.String("primary", rep.Name),
				slog.String("hedge", alt.Name))
			launch(*alt, true)
			launched++
		}
	}
	return last
}

// handleClassify is the routed classify path: read the body once, then
// spend the retry budget placing and re-placing it until a valid
// replica response (or a deterministic rejection) comes back.
func (d *Dispatcher) handleClassify(w http.ResponseWriter, r *http.Request) {
	start := d.now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "reading body", http.StatusBadRequest)
		return
	}
	traceID := r.Header.Get(obs.TraceIDHeader)
	if traceID == "" {
		traceID = d.tracer.NewID()
	}
	w.Header().Set(obs.TraceIDHeader, traceID)

	// Span recording: a flight-armed router records every request live
	// (the tail-sampling verdict comes at completion); otherwise only
	// counter-sampled requests carry a trace. The root route span gets
	// an ID so attempt spans (and, transitively, replica-side stage
	// spans) hang under it.
	var t *obs.Trace
	if d.flight != nil {
		t = d.tracer.StartAlways(traceID, start)
	} else {
		t = d.tracer.StartRequest(traceID, start)
	}
	rootSpan := ""
	if t != nil {
		rootSpan = obs.NewID()
	}
	// finish closes out one terminal (client-visible) outcome: the
	// route span, trace retention, the flight-recorder offer, and the
	// SLO window observation.
	finish := func(status int, reasons ...string) {
		end := d.now()
		if t != nil {
			t.AddSpan(obs.Span{
				Name: "route", Iter: -1, Start: start, End: end, ID: rootSpan,
				Tags: map[string]string{"code": strconv.Itoa(status)},
			})
			d.tracer.Finish(t, end)
		}
		d.flight.Note(t, status, end.Sub(start), 0, reasons...)
		d.slo.Observe(status, end.Sub(start))
	}

	// Deadline propagation: honor a client-supplied absolute deadline,
	// or assign one from DefaultBudget so the whole retry/hedge ladder
	// below is budget-bounded. dl stays zero (unbounded) only when the
	// client sent no header and no default budget is configured.
	dl, hasDL, err := deadline.FromRequest(r.Header)
	if err != nil {
		finish(http.StatusBadRequest)
		http.Error(w, fmt.Sprintf("invalid %s header: %v", deadline.Header, err), http.StatusBadRequest)
		return
	}
	if !hasDL && d.cfg.DefaultBudget > 0 {
		dl, hasDL = d.now().Add(d.cfg.DefaultBudget), true
	}

	key := Key(body)
	hedgesLeft := d.cfg.MaxHedges
	tried := make(map[string]bool)
	deadlineHit := false
	var last attemptResult
	for attemptNo := 1; attemptNo <= d.cfg.MaxAttempts; attemptNo++ {
		// The budget check precedes the retry counter: an attempt that
		// cannot start before the deadline is never fired (or counted).
		if hasDL && !d.now().Before(dl) {
			deadlineHit = true
			break
		}
		if attemptNo > 1 {
			d.cfg.Metrics.IncRetry()
		}
		candidates := Ready(d.cfg.Pool)
		// Prefer replicas this request hasn't burned yet; fall back to
		// the full ready set once everyone has failed it (a restarted
		// replica may have recovered by then).
		fresh := make([]ReplicaInfo, 0, len(candidates))
		for _, c := range candidates {
			if !tried[c.Name] {
				fresh = append(fresh, c)
			}
		}
		if len(fresh) == 0 {
			fresh = candidates
		}
		if len(fresh) == 0 {
			// Nothing dispatchable: burn the attempt on a short wait
			// for the manager to bring a replica back.
			d.sleep(d.capWait(50*time.Millisecond, dl))
			last = attemptResult{code: "no_replicas"}
			continue
		}
		pick := d.cfg.Placer.Pick(key, fresh)
		rep := fresh[pick]
		tried[rep.Name] = true
		var alt *ReplicaInfo
		if len(fresh) > 1 {
			rest := append(append([]ReplicaInfo{}, fresh[:pick]...), fresh[pick+1:]...)
			a := rest[d.cfg.Placer.Pick(key, rest)]
			alt = &a
		}

		res := d.attempt(r.Context(), rep, alt, body, traceID, &hedgesLeft, dl, t, attemptNo, rootSpan)
		if res.ok || res.terminal {
			elapsed := d.now().Sub(start)
			d.cfg.Metrics.ObserveLatency(elapsed.Seconds())
			finish(res.status)
			d.logger().Debug("classify routed",
				slog.String("trace_id", traceID),
				slog.String("replica", res.replica),
				slog.Int("status", res.status),
				slog.Int("attempts", attemptNo),
				slog.Duration("elapsed", elapsed))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(res.status)
			w.Write(res.body)
			return
		}
		last = res
		if res.retryAfter > 0 {
			wait := res.retryAfter
			if wait > d.cfg.RetryAfterCap {
				wait = d.cfg.RetryAfterCap
			}
			// A backoff past the deadline is pointless: sleep only the
			// remaining budget, then the loop's deadline check ends the
			// request.
			d.sleep(d.capWait(wait, dl))
		}
	}

	// Budget exhausted. When the request's deadline ran out first, 504
	// names the real failure (out of time, not out of replicas) and the
	// client learns there is no point retrying this request.
	d.cfg.Metrics.ObserveLatency(d.now().Sub(start).Seconds())
	if deadlineHit {
		d.cfg.Metrics.IncDeadlineExhausted()
		finish(http.StatusGatewayTimeout, obs.FlightReasonDeadlineExhausted)
		d.logger().Warn("classify deadline exhausted",
			slog.String("trace_id", traceID),
			slog.String("last_code", last.code))
		http.Error(w, "request deadline exhausted before a replica responded", http.StatusGatewayTimeout)
		return
	}
	// The fleet is saturated or down; tell the client to back off,
	// mirroring the replica 429 contract one tier up.
	d.logger().Warn("classify budget exhausted",
		slog.String("trace_id", traceID),
		slog.String("last_code", last.code),
		slog.Int("attempts", d.cfg.MaxAttempts))
	if last.code == "429" {
		finish(http.StatusTooManyRequests)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "all replicas saturated", http.StatusTooManyRequests)
		return
	}
	finish(http.StatusBadGateway)
	http.Error(w, "no replica produced a valid response", http.StatusBadGateway)
}

// capWait truncates a backoff wait to the request's remaining deadline
// budget (unchanged when dl is zero / unbounded).
func (d *Dispatcher) capWait(wait time.Duration, dl time.Time) time.Duration {
	if dl.IsZero() {
		return wait
	}
	remaining := dl.Sub(d.now())
	if remaining < 0 {
		return 0
	}
	if wait > remaining {
		return remaining
	}
	return wait
}
