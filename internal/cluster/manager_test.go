package cluster

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"pimcapsnet/internal/testutil"
)

// TestMain doubles the test binary as a fake capsnet-serve replica: the
// manager needs a subprocess that honors the serving contract (-addr
// 127.0.0.1:0, JSON "serving" log line on stderr, /readyz load body,
// SIGTERM drain), and re-execing ourselves avoids building the real
// binary inside unit tests.
func TestMain(m *testing.M) {
	if os.Getenv("CLUSTER_FAKE_REPLICA") == "1" {
		runFakeReplica()
		return
	}
	// The leak net (see internal/testutil) verifies every manager
	// supervisor, stderr scanner, and dispatcher goroutine is joined by
	// the time the suite ends.
	os.Exit(testutil.VerifyNoLeaks(m))
}

func runFakeReplica() {
	fs := flag.NewFlagSet("fake-replica", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "")
	fs.String("log-format", "text", "")
	fs.String("log-level", "info", "")
	fs.Parse(os.Args[1:])

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, `{"msg":"listen failed","error":%q}`+"\n", err)
		os.Exit(1)
	}
	// The startup record the manager's stderr scanner parses.
	fmt.Fprintf(os.Stderr, `{"level":"INFO","msg":"serving","addr":%q}`+"\n", ln.Addr().String())

	var draining atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		status, code := "ok", http.StatusOK
		if draining.Load() {
			status, code = "draining", http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(Load{Status: status, QueueCapacity: 64, MaxBatch: 8, PID: os.Getpid()})
	})
	mux.HandleFunc("/v1/classify", func(w http.ResponseWriter, r *http.Request) {
		io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"class":0,"probs":[0.9,0.1],"poses":null,"batch":1}`)
	})
	// Chaos endpoints for the manager tests.
	mux.HandleFunc("/die", func(w http.ResponseWriter, r *http.Request) { os.Exit(3) })
	mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) { draining.Store(true) })

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sig
		os.Exit(0) // "graceful": the real binary drains; exiting clean is enough here
	}()
	http.Serve(ln, mux)
}

func newTestManager(t *testing.T, replicas int) *Manager {
	t.Helper()
	m, err := NewManager(ManagerConfig{
		Binary:        os.Args[0],
		Env:           []string{"CLUSTER_FAKE_REPLICA=1"},
		Replicas:      replicas,
		StartTimeout:  15 * time.Second,
		StopTimeout:   5 * time.Second,
		BackoffMin:    20 * time.Millisecond,
		BackoffMax:    200 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	t.Cleanup(m.Stop)
	return m
}

func TestManagerSpawnAndStop(t *testing.T) {
	m := newTestManager(t, 2)
	m.Start()
	if err := WaitReady(testCtx(t, 15*time.Second), m, 2); err != nil {
		t.Fatalf("replicas never ready: %v\nsnapshot: %+v", err, m.Snapshot())
	}
	for _, r := range m.Snapshot() {
		if r.URL == "" || r.PID == 0 || !r.Ready {
			t.Fatalf("ready replica incomplete: %+v", r)
		}
		if r.Load.PID != r.PID {
			t.Fatalf("probed load PID %d != process PID %d", r.Load.PID, r.PID)
		}
		resp, err := http.Get(r.URL + "/v1/classify")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %s not serving: %v %v", r.Name, err, resp)
		}
		resp.Body.Close()
	}
	m.Stop()
	for _, r := range m.Snapshot() {
		if r.Ready {
			t.Fatalf("replica %s still ready after Stop", r.Name)
		}
	}
}

func TestManagerRestartsCrashedReplica(t *testing.T) {
	m := newTestManager(t, 1)
	m.Start()
	if err := WaitReady(testCtx(t, 15*time.Second), m, 1); err != nil {
		t.Fatalf("replica never ready: %v", err)
	}
	before := m.Snapshot()[0]

	// Kill the replica from inside; /die never writes a response, so
	// the GET errors — only the exit matters.
	http.Get(before.URL + "/die")

	deadline := time.Now().Add(15 * time.Second)
	for {
		r := m.Snapshot()[0]
		if r.Ready && r.PID != before.PID {
			if r.Restarts == 0 {
				t.Fatalf("restarted replica reports 0 restarts: %+v", r)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never restarted: before=%+v now=%+v", before, r)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestManagerMarksDrainingNotReady(t *testing.T) {
	m := newTestManager(t, 1)
	m.Start()
	if err := WaitReady(testCtx(t, 15*time.Second), m, 1); err != nil {
		t.Fatalf("replica never ready: %v", err)
	}
	url := m.Snapshot()[0].URL
	if _, err := http.Get(url + "/drain"); err != nil {
		t.Fatalf("drain request: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := m.Snapshot()[0]
		if !r.Ready {
			if r.Load.Status != "draining" {
				t.Fatalf("drained replica load %+v, want status draining", r.Load)
			}
			if r.PID == 0 {
				t.Fatalf("draining replica treated as down: %+v", r)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining replica still marked ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestManagerSurvivesUnrunnableBinary(t *testing.T) {
	m, err := NewManager(ManagerConfig{
		Binary:     "/nonexistent/definitely-not-a-binary",
		Replicas:   1,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	m.Start()
	time.Sleep(200 * time.Millisecond)
	if r := m.Snapshot()[0]; r.Ready {
		t.Fatalf("unrunnable binary marked ready: %+v", r)
	}
	if r := m.Snapshot()[0]; r.Restarts < 2 {
		t.Fatalf("restart loop not spinning with backoff: %+v", r)
	}
	done := make(chan struct{})
	go func() { m.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Stop wedged on a crash-looping replica")
	}
}

func TestManagerConfigValidate(t *testing.T) {
	if _, err := NewManager(ManagerConfig{}); err == nil {
		t.Fatalf("NewManager accepted empty Binary")
	}
}

// testCtx returns a context bounded by d that is released with the
// test.
func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
