package cluster

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromLabel is one label pair of a parsed exposition sample, in
// source order.
type PromLabel struct {
	Key, Val string
}

// PromSample is one line of a Prometheus text exposition:
// name{labels} value.
type PromSample struct {
	Name   string
	Labels []PromLabel
	// Value keeps the raw value text so per-replica re-export is
	// byte-faithful; merging parses it on demand.
	Value string
}

// Label returns the value of the named label ("" if absent).
func (s PromSample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Val
		}
	}
	return ""
}

// ParsePromText parses the text exposition format the serve and
// router metric sets emit: one `name value` or `name{k="v",...}
// value` sample per line, # comments skipped. Lines that do not parse
// are dropped rather than failing the whole scrape — a fleet view
// with one malformed family beats no fleet view.
func ParsePromText(data []byte) []PromSample {
	var out []PromSample
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, ok := parsePromLine(line)
		if ok {
			out = append(out, s)
		}
	}
	return out
}

func parsePromLine(line string) (PromSample, bool) {
	var s PromSample
	i := 0
	for i < len(line) && isMetricNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, false
	}
	s.Name = line[:i]
	if i < len(line) && line[i] == '{' {
		rest, labels, ok := parsePromLabels(line[i:])
		if !ok {
			return s, false
		}
		s.Labels = labels
		line = rest
	} else {
		line = line[i:]
	}
	s.Value = strings.TrimSpace(line)
	if s.Value == "" || strings.ContainsAny(s.Value, " \t") {
		return s, false
	}
	return s, true
}

func isMetricNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// parsePromLabels consumes a {k="v",...} block (s starts at '{') and
// returns the remainder of the line after '}'.
func parsePromLabels(s string) (rest string, labels []PromLabel, ok bool) {
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return s[i+1:], labels, true
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return "", nil, false
		}
		key := s[start:i]
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return "", nil, false
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return "", nil, false
		}
		i++ // closing '"'
		labels = append(labels, PromLabel{Key: key, Val: val.String()})
	}
}

// ReplicaMetrics is one replica's parsed /metrics scrape.
type ReplicaMetrics struct {
	Name    string
	Samples []PromSample
}

// renderLabels renders a label list (already including any replica
// label) as the `k="v",...` body of a sample line.
func renderLabels(labels []PromLabel) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Val)
	}
	return b.String()
}

// histogramSuffixes are the component families one fixed-bucket
// histogram exposes; the merged fleet view re-derives each by exact
// summation (identical bucket layouts across replicas — every replica
// runs the same binary — make bucket-wise addition lossless).
var histogramSuffixes = []string{"_bucket", "_sum", "_count", "_overflow_total"}

// histogramFamily returns the base family name when the sample
// belongs to a histogram component, given the set of families that
// have _bucket samples. A `le` label marks bucket lines; _sum /
// _count / _overflow_total attach by name.
func histogramFamily(s PromSample, bucketFamilies map[string]bool) (family, suffix string, ok bool) {
	for _, suf := range histogramSuffixes {
		base := strings.TrimSuffix(s.Name, suf)
		if base == s.Name || !bucketFamilies[base] {
			continue
		}
		if suf == "_bucket" && s.Label("le") == "" {
			continue
		}
		return base, suf, true
	}
	return "", "", false
}

// mergeKey canonicalizes a sample's labels (minus any replica label)
// for cross-replica grouping.
func mergeKey(labels []PromLabel) string {
	kept := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Key == "replica" {
			continue
		}
		kept = append(kept, fmt.Sprintf("%s=%q", l.Key, l.Val))
	}
	sort.Strings(kept)
	return strings.Join(kept, ",")
}

// mergedSeries accumulates one merged output line.
type mergedSeries struct {
	name   string
	labels []PromLabel // from the first contributing sample, replica dropped
	value  float64
	// intVal tracks whether every contribution parsed as an unsigned
	// integer, so counters re-render without a float exponent.
	intSum uint64
	isInt  bool
	order  int // first-seen order, for stable output
}

// WriteFleetMetrics emits the aggregated cluster view: every replica
// sample re-exported with a {replica} label, histogram component
// families additionally merged by exact summation under their bare
// names (suffix "_fleet" is NOT used — the merged family keeps the
// replica-local name, distinguished by the absence of the replica
// label), plus scrape bookkeeping.
func WriteFleetMetrics(w io.Writer, scrapes []ReplicaMetrics, failed int) {
	// Pass 1: which families are histograms anywhere in the fleet.
	bucketFamilies := make(map[string]bool)
	for _, sc := range scrapes {
		for _, s := range sc.Samples {
			if strings.HasSuffix(s.Name, "_bucket") && s.Label("le") != "" {
				bucketFamilies[strings.TrimSuffix(s.Name, "_bucket")] = true
			}
		}
	}

	// Pass 2: merge histogram components; re-export everything.
	merged := make(map[string]*mergedSeries)
	var mergedOrder int
	for _, sc := range scrapes {
		for _, s := range sc.Samples {
			_, _, isHist := histogramFamily(s, bucketFamilies)
			if !isHist {
				continue
			}
			key := s.Name + "|" + mergeKey(s.Labels)
			ms, ok := merged[key]
			if !ok {
				labels := make([]PromLabel, 0, len(s.Labels))
				for _, l := range s.Labels {
					if l.Key != "replica" {
						labels = append(labels, l)
					}
				}
				ms = &mergedSeries{name: s.Name, labels: labels, isInt: true, order: mergedOrder}
				mergedOrder++
				merged[key] = ms
			}
			if u, err := strconv.ParseUint(s.Value, 10, 64); err == nil {
				ms.intSum += u
				ms.value += float64(u)
			} else if f, err := strconv.ParseFloat(s.Value, 64); err == nil {
				ms.isInt = false
				ms.value += f
			}
		}
	}

	fmt.Fprintf(w, "router_fleet_replicas_scraped %d\n", len(scrapes))
	fmt.Fprintf(w, "router_fleet_scrape_failures %d\n", failed)

	series := make([]*mergedSeries, 0, len(merged))
	for _, ms := range merged {
		series = append(series, ms)
	}
	sort.Slice(series, func(i, j int) bool { return series[i].order < series[j].order })
	for _, ms := range series {
		line := ms.name
		if len(ms.labels) > 0 {
			line += "{" + renderLabels(ms.labels) + "}"
		}
		if ms.isInt {
			fmt.Fprintf(w, "%s %d\n", line, ms.intSum)
		} else {
			fmt.Fprintf(w, "%s %g\n", line, ms.value)
		}
	}

	for _, sc := range scrapes {
		for _, s := range sc.Samples {
			labels := append([]PromLabel{{Key: "replica", Val: sc.Name}}, s.Labels...)
			fmt.Fprintf(w, "%s{%s} %s\n", s.Name, renderLabels(labels), s.Value)
		}
	}
}
