package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"pimcapsnet/internal/obs"
)

// latencyBounds are the router request-latency bucket upper bounds in
// seconds — the serve latency layout shifted up slightly, since a
// routed request adds a loopback hop (and possibly retries) on top of
// one replica's end-to-end latency.
var latencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Metrics aggregates the router's /metrics families. All methods are
// safe for concurrent use; label cardinality is bounded by the replica
// count times the small fixed set of outcome codes, so a mutex-guarded
// map is fine off the hot path.
type Metrics struct {
	mu sync.Mutex
	// replicaReqs counts attempts per {replica, code}: code is the
	// replica's HTTP status, or "error" for transport failures and
	// "corrupt" for responses that failed validation.
	//pimcaps:guardedby mu
	replicaReqs map[string]map[string]uint64

	retries atomic.Uint64
	hedges  atomic.Uint64
	// hedgesSkipped counts hedges vetoed because the remaining deadline
	// budget could not cover HedgeDelay + ExpectedServiceTime;
	// deadlineExhausted counts requests that ran out of deadline before
	// any replica produced a usable response (504s).
	hedgesSkipped     atomic.Uint64
	deadlineExhausted atomic.Uint64

	// latency is a fixed-bucket histogram of client-visible router
	// latency in seconds (cumulative bucket counts, latencyBounds plus
	// +Inf).
	latCounts []atomic.Uint64
	latCount  atomic.Uint64
	latSum    atomic.Uint64 // microseconds

	// Snapshot, when non-nil, supplies the replica gauges at scrape
	// time (the Pool's Snapshot method).
	Snapshot func() []ReplicaInfo
}

// NewMetrics creates an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		replicaReqs: make(map[string]map[string]uint64),
		latCounts:   make([]atomic.Uint64, len(latencyBounds)+1),
	}
}

// IncReplicaRequest counts one attempt against a replica with the
// given outcome code ("200", "429", "error", "corrupt", ...).
func (m *Metrics) IncReplicaRequest(replica, code string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode, ok := m.replicaReqs[replica]
	if !ok {
		byCode = make(map[string]uint64)
		m.replicaReqs[replica] = byCode
	}
	byCode[code]++
}

// ReplicaRequests returns the attempt count for one {replica, code}
// pair (tests read it).
func (m *Metrics) ReplicaRequests(replica, code string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicaReqs[replica][code]
}

// IncRetry counts one retried attempt (any attempt after a request's
// first).
func (m *Metrics) IncRetry() { m.retries.Add(1) }

// Retries returns the retry count.
func (m *Metrics) Retries() uint64 { return m.retries.Load() }

// IncHedge counts one hedged attempt (a second concurrent attempt
// launched because the first exceeded the hedge delay).
func (m *Metrics) IncHedge() { m.hedges.Add(1) }

// Hedges returns the hedge count.
func (m *Metrics) Hedges() uint64 { return m.hedges.Load() }

// IncHedgeSkipped counts one hedge vetoed by deadline arithmetic.
func (m *Metrics) IncHedgeSkipped() { m.hedgesSkipped.Add(1) }

// HedgesSkipped returns the vetoed-hedge count.
func (m *Metrics) HedgesSkipped() uint64 { return m.hedgesSkipped.Load() }

// IncDeadlineExhausted counts one request whose deadline expired
// before any replica produced a usable response.
func (m *Metrics) IncDeadlineExhausted() { m.deadlineExhausted.Add(1) }

// DeadlinesExhausted returns the deadline-exhaustion count.
func (m *Metrics) DeadlinesExhausted() uint64 { return m.deadlineExhausted.Load() }

// ObserveLatency records one client-visible request latency.
func (m *Metrics) ObserveLatency(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	i := sort.SearchFloat64s(latencyBounds, seconds)
	m.latCounts[i].Add(1)
	m.latCount.Add(1)
	m.latSum.Add(uint64(seconds*1e6 + 0.5))
}

// WriteText emits the Prometheus text exposition.
func (m *Metrics) WriteText(w io.Writer) {
	version, goVersion := obs.BuildInfo()
	fmt.Fprintf(w, "router_build_info{version=%q,go_version=%q} 1\n", version, goVersion)
	var snapshot []ReplicaInfo
	if m.Snapshot != nil {
		snapshot = m.Snapshot()
	}
	for _, r := range snapshot {
		ready := 0
		if r.Ready {
			ready = 1
		}
		fmt.Fprintf(w, "router_replica_ready{replica=%q} %d\n", r.Name, ready)
		fmt.Fprintf(w, "router_replica_restarts_total{replica=%q} %d\n", r.Name, r.Restarts)
		fmt.Fprintf(w, "router_replica_queue_depth{replica=%q} %d\n", r.Name, r.Load.QueueDepth)
		fmt.Fprintf(w, "router_replica_inflight{replica=%q} %d\n", r.Name, r.Load.Inflight)
	}

	m.mu.Lock()
	replicas := make([]string, 0, len(m.replicaReqs))
	for name := range m.replicaReqs {
		replicas = append(replicas, name)
	}
	sort.Strings(replicas)
	for _, name := range replicas {
		codes := make([]string, 0, len(m.replicaReqs[name]))
		for code := range m.replicaReqs[name] {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "router_replica_requests_total{replica=%q,code=%q} %d\n",
				name, code, m.replicaReqs[name][code])
		}
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "router_retries_total %d\n", m.retries.Load())
	fmt.Fprintf(w, "router_hedges_total %d\n", m.hedges.Load())
	fmt.Fprintf(w, "router_hedges_skipped_total %d\n", m.hedgesSkipped.Load())
	fmt.Fprintf(w, "router_deadline_exhausted_total %d\n", m.deadlineExhausted.Load())

	var cum uint64
	for i, b := range latencyBounds {
		cum += m.latCounts[i].Load()
		fmt.Fprintf(w, "router_request_latency_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", b), cum)
	}
	cum += m.latCounts[len(latencyBounds)].Load()
	fmt.Fprintf(w, "router_request_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "router_request_latency_seconds_sum %g\n", float64(m.latSum.Load())/1e6)
	fmt.Fprintf(w, "router_request_latency_seconds_count %d\n", m.latCount.Load())
}

// Handler returns the /metrics endpoint.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteText(w)
	})
}
