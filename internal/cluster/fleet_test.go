//pimcaps:bitexact
package cluster

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"pimcapsnet/internal/serve"
)

// scrapeOf renders one replica's live /metrics exposition and parses
// it back, the same round trip handleFleetMetrics performs.
func scrapeOf(name string, m *serve.Metrics) ReplicaMetrics {
	var buf bytes.Buffer
	m.WriteText(&buf)
	return ReplicaMetrics{Name: name, Samples: ParsePromText(buf.Bytes())}
}

// sampleValue finds the merged (replica-label-free) sample with the
// given name and le label ("" = no le), parsed as float.
func findSample(t *testing.T, samples []PromSample, name, le string) (PromSample, float64) {
	t.Helper()
	for _, s := range samples {
		if s.Name != name || s.Label("replica") != "" || s.Label("le") != le {
			continue
		}
		v, err := strconv.ParseFloat(s.Value, 64)
		if err != nil {
			t.Fatalf("sample %s has unparseable value %q: %v", name, s.Value, err)
		}
		return s, v
	}
	t.Fatalf("no merged sample %s{le=%q} in fleet output", name, le)
	return PromSample{}, 0
}

// TestFleetMetricsHistogramMergeExact merges two real replica
// expositions and checks the fleet histogram components — _sum,
// _count, every _bucket, _overflow_total — equal the per-replica sums
// exactly, not approximately.
func TestFleetMetricsHistogramMergeExact(t *testing.T) {
	m0, m1 := serve.NewMetrics(), serve.NewMetrics()
	// Distinct shapes, including zero, bucket-boundary, and overflow
	// observations (latency bounds top out at 10s).
	for _, v := range []float64{0, 0.0013, 0.004, 0.004, 0.25, 11.5} {
		m0.Latency.Observe(v)
	}
	for _, v := range []float64{0.0009, 0.03, 0.03, 2.2, 40, 40, 40} {
		m1.Latency.Observe(v)
	}
	scrapes := []ReplicaMetrics{scrapeOf("r0", m0), scrapeOf("r1", m1)}

	var out bytes.Buffer
	WriteFleetMetrics(&out, scrapes, 0)
	merged := ParsePromText(out.Bytes())

	const fam = "capsnet_request_latency_seconds"
	// _sum must equal the float sum of the replicas' _sum lines bit-for-bit.
	var wantSum float64
	var wantCount, wantOverflow uint64
	wantBuckets := map[string]uint64{}
	for _, sc := range scrapes {
		for _, s := range sc.Samples {
			switch s.Name {
			case fam + "_sum":
				v, err := strconv.ParseFloat(s.Value, 64)
				if err != nil {
					t.Fatalf("replica _sum %q: %v", s.Value, err)
				}
				wantSum += v
			case fam + "_count":
				n, err := strconv.ParseUint(s.Value, 10, 64)
				if err != nil {
					t.Fatalf("replica _count %q: %v", s.Value, err)
				}
				wantCount += n
			case fam + "_overflow_total":
				n, _ := strconv.ParseUint(s.Value, 10, 64)
				wantOverflow += n
			case fam + "_bucket":
				n, err := strconv.ParseUint(s.Value, 10, 64)
				if err != nil {
					t.Fatalf("replica _bucket %q: %v", s.Value, err)
				}
				wantBuckets[s.Label("le")] += n
			}
		}
	}
	if wantCount != 13 || wantOverflow != 4 {
		t.Fatalf("fixture drifted: count %d overflow %d, want 13 and 4", wantCount, wantOverflow)
	}

	if _, got := findSample(t, merged, fam+"_sum", ""); got != wantSum {
		t.Fatalf("merged _sum = %v, want exactly %v", got, wantSum)
	}
	cs, gotCount := findSample(t, merged, fam+"_count", "")
	if uint64(gotCount) != wantCount {
		t.Fatalf("merged _count = %v, want %d", gotCount, wantCount)
	}
	// Integer series must render as integers, not floats.
	if strings.ContainsAny(cs.Value, ".e") {
		t.Fatalf("merged _count rendered as %q, want integer form", cs.Value)
	}
	if _, got := findSample(t, merged, fam+"_overflow_total", ""); uint64(got) != wantOverflow {
		t.Fatalf("merged _overflow_total = %v, want %d", got, wantOverflow)
	}
	for le, want := range wantBuckets {
		if _, got := findSample(t, merged, fam+"_bucket", le); uint64(got) != want {
			t.Fatalf("merged bucket le=%q = %v, want %d", le, got, want)
		}
	}
	// Cumulative-consistency spot check: the +Inf bucket equals _count.
	if _, inf := findSample(t, merged, fam+"_bucket", "+Inf"); uint64(inf) != wantCount {
		t.Fatalf("merged +Inf bucket %v != count %d", inf, wantCount)
	}
}

// TestFleetMetricsReExportsPerReplica checks every replica sample
// reappears with a replica label and a byte-identical value, and that
// the scrape bookkeeping gauges are present.
func TestFleetMetricsReExportsPerReplica(t *testing.T) {
	m0, m1 := serve.NewMetrics(), serve.NewMetrics()
	m0.Latency.Observe(0.017)
	m1.Latency.Observe(0.2)
	m0.IncRequest()
	scrapes := []ReplicaMetrics{scrapeOf("r0", m0), scrapeOf("r1", m1)}

	var out bytes.Buffer
	WriteFleetMetrics(&out, scrapes, 1)
	text := out.String()
	merged := ParsePromText(out.Bytes())

	byReplica := map[string]map[string]string{}
	for _, s := range merged {
		rep := s.Label("replica")
		if rep == "" {
			continue
		}
		if byReplica[rep] == nil {
			byReplica[rep] = map[string]string{}
		}
		byReplica[rep][s.Name+"{"+mergeKey(s.Labels)+"}"] = s.Value
	}
	for _, sc := range scrapes {
		for _, s := range sc.Samples {
			key := s.Name + "{" + mergeKey(s.Labels) + "}"
			got, ok := byReplica[sc.Name][key]
			if !ok {
				t.Fatalf("replica %s sample %s missing from fleet re-export", sc.Name, key)
			}
			if got != s.Value {
				t.Fatalf("replica %s sample %s value %q != original %q", sc.Name, key, got, s.Value)
			}
		}
	}
	if !strings.Contains(text, "router_fleet_replicas_scraped 2\n") {
		t.Fatalf("missing scraped gauge:\n%s", text)
	}
	if !strings.Contains(text, "router_fleet_scrape_failures 1\n") {
		t.Fatalf("missing failure gauge:\n%s", text)
	}
}

// TestParsePromText covers the exposition-format corners the scraper
// must survive: escaped label values, no-label samples, comments, and
// junk lines.
func TestParsePromText(t *testing.T) {
	in := strings.Join([]string{
		`# HELP something informational`,
		`plain_counter 42`,
		`labeled{a="x",b="with \"quotes\" and \\ and \n newline"} 1.5`,
		`spaced{le="+Inf"} 7`,
		`malformed{unterminated 3`,
		``,
		`negative_gauge -2.25e-3`,
	}, "\n")
	samples := ParsePromText([]byte(in))
	if len(samples) != 4 {
		t.Fatalf("parsed %d samples, want 4: %+v", len(samples), samples)
	}
	if samples[0].Name != "plain_counter" || samples[0].Value != "42" {
		t.Fatalf("plain sample mangled: %+v", samples[0])
	}
	if got := samples[1].Label("b"); got != "with \"quotes\" and \\ and \n newline" {
		t.Fatalf("escape decoding broken: %q", got)
	}
	if samples[2].Label("le") != "+Inf" {
		t.Fatalf("le label mangled: %+v", samples[2])
	}
	if samples[3].Name != "negative_gauge" || samples[3].Value != "-2.25e-3" {
		t.Fatalf("negative exponent sample mangled: %+v", samples[3])
	}
}

// TestFleetMetricsDisjointStageFamilies merges replicas exposing
// different stage label sets — a replica that has served traffic has
// stage histograms a fresh one lacks — and checks partial families
// still merge without inventing series.
func TestFleetMetricsDisjointStageFamilies(t *testing.T) {
	m0, m1 := serve.NewMetrics(), serve.NewMetrics()
	m0.ObserveStage("conv", 0.002)
	m0.ObserveStage("conv", 0.004)
	// m1 never saw a conv stage.
	scrapes := []ReplicaMetrics{scrapeOf("r0", m0), scrapeOf("r1", m1)}

	var out bytes.Buffer
	WriteFleetMetrics(&out, scrapes, 0)
	merged := ParsePromText(out.Bytes())

	const want = "capsnet_stage_seconds_count"
	var got uint64
	for _, s := range merged {
		if s.Name == want && s.Label("replica") == "" && s.Label("stage") == "conv" {
			n, err := strconv.ParseUint(s.Value, 10, 64)
			if err != nil {
				t.Fatalf("merged stage count %q: %v", s.Value, err)
			}
			got = n
		}
	}
	if got != 2 {
		t.Fatalf("merged conv stage count = %d, want 2", got)
	}
}
