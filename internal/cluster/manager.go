package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// ManagerConfig tunes the replica supervisor. Zero-value fields fall
// back to the documented defaults.
type ManagerConfig struct {
	// Binary is the capsnet-serve executable to spawn (required).
	Binary string
	// Args are passed to every replica. The manager appends its own
	// "-addr 127.0.0.1:0 -log-format json -log-level info" afterwards,
	// so flag-package last-wins semantics guarantee the contract the
	// supervisor depends on (ephemeral port in a parseable startup log
	// line) regardless of what Args contains.
	Args []string
	// Env entries are appended to the inherited environment (e.g.
	// GOMAXPROCS=1 to pin replicas for scaling benchmarks).
	Env []string
	// Replicas is the number of subprocesses to keep alive. Default 1.
	Replicas int
	// StartTimeout bounds one spawn: process start → "serving" log
	// line → first /readyz 200. Default 30s.
	StartTimeout time.Duration
	// StopTimeout bounds graceful shutdown per replica: SIGTERM →
	// drain → exit, then SIGKILL. Default 10s.
	StopTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential restart backoff a
	// crashing replica pays between attempts. Defaults 200ms / 5s.
	BackoffMin, BackoffMax time.Duration
	// ProbeInterval is the health/load probe period per replica.
	// Default 250ms.
	ProbeInterval time.Duration
	// Logger receives supervisor events (spawn, ready, crash,
	// restart). Nil disables logging.
	Logger *slog.Logger
	// ReplicaStderr, when non-nil, receives every replica's raw stderr
	// lines (prefixed with the replica name) — the aggregated log
	// stream. Nil discards replica logs after the supervisor has
	// parsed what it needs.
	ReplicaStderr io.Writer
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.StartTimeout == 0 {
		c.StartTimeout = 30 * time.Second
	}
	if c.StopTimeout == 0 {
		c.StopTimeout = 10 * time.Second
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 200 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	return c
}

// Validate reports an error for an unusable configuration.
func (c ManagerConfig) Validate() error {
	if c.Binary == "" {
		return fmt.Errorf("cluster: ManagerConfig.Binary is required")
	}
	if c.Replicas < 1 {
		return fmt.Errorf("cluster: Replicas %d, need >= 1", c.Replicas)
	}
	return nil
}

// replica is one supervised subprocess slot. The supervisor goroutine
// owns the process; the mutex guards the published snapshot fields
// read by Snapshot.
type replica struct {
	name string

	mu sync.Mutex
	//pimcaps:guardedby mu
	url string
	//pimcaps:guardedby mu
	pid int
	//pimcaps:guardedby mu
	ready bool
	//pimcaps:guardedby mu
	load Load
	//pimcaps:guardedby mu
	restarts uint64
}

func (r *replica) snapshot() ReplicaInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaInfo{
		Name: r.name, URL: r.url, PID: r.pid,
		Ready: r.ready, Restarts: r.restarts, Load: r.load,
	}
}

// setDown clears the dispatchable state (process gone or not yet up).
func (r *replica) setDown() {
	r.mu.Lock()
	r.url, r.pid, r.ready, r.load = "", 0, false, Load{}
	r.mu.Unlock()
}

// Manager supervises N replica subprocesses through their lifecycle:
// spawn → wait /readyz → serve (with periodic load probes) → drain →
// restart-on-crash with exponential backoff. It implements Pool.
type Manager struct {
	cfg    ManagerConfig
	client *http.Client

	replicas []*replica

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewManager builds a manager; call Start to spawn the replicas.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg: cfg,
		// Probes are tiny loopback GETs; a short timeout keeps a hung
		// replica from wedging the prober.
		client: &http.Client{Timeout: 5 * time.Second},
		stop:   make(chan struct{}),
	}
	for i := 0; i < cfg.Replicas; i++ {
		m.replicas = append(m.replicas, &replica{name: fmt.Sprintf("r%d", i)})
	}
	return m, nil
}

// Start launches one supervisor goroutine per replica and returns
// immediately; use WaitReady to block until the fleet is serving.
func (m *Manager) Start() {
	for _, r := range m.replicas {
		m.wg.Add(1)
		go func(r *replica) {
			defer m.wg.Done()
			m.supervise(r)
		}(r)
	}
}

// Stop drains every replica (SIGTERM, bounded by StopTimeout, then
// SIGKILL) and waits for the supervisors to exit. Idempotent. The join
// is deliberately context-free: every supervisor bounds its own exit by
// StopTimeout once the stop channel closes, and Stop runs at process
// teardown where no caller context exists.
//
//lint:ignore pimcaps/ctxcheck teardown join is bounded by StopTimeout inside each supervisor; no caller context exists at process exit
func (m *Manager) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// Snapshot implements Pool.
func (m *Manager) Snapshot() []ReplicaInfo {
	out := make([]ReplicaInfo, len(m.replicas))
	for i, r := range m.replicas {
		out[i] = r.snapshot()
	}
	return out
}

func (m *Manager) logger() *slog.Logger {
	if m.cfg.Logger != nil {
		return m.cfg.Logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// supervise is one replica's restart loop: each runOnce covers a full
// process lifetime; crashes cost backoff, clean stops end the loop.
func (m *Manager) supervise(r *replica) {
	backoff := m.cfg.BackoffMin
	// One reused timer serves every backoff wait: time.After here would
	// strand one live runtime timer per restart until each fired.
	pause := time.NewTimer(0)
	if !pause.Stop() {
		<-pause.C
	}
	defer pause.Stop()
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		started := time.Now()
		err := m.runOnce(r)
		r.setDown()
		select {
		case <-m.stop:
			return
		default:
		}
		// Crash (or failed spawn): restart after backoff. A run that
		// stayed up past the max backoff proves the binary basically
		// works, so the next crash starts the ladder over.
		r.mu.Lock()
		r.restarts++
		restarts := r.restarts
		r.mu.Unlock()
		if time.Since(started) > m.cfg.BackoffMax {
			backoff = m.cfg.BackoffMin
		}
		m.logger().Warn("replica exited, restarting",
			slog.String("replica", r.name),
			slog.Uint64("restarts", restarts),
			slog.Duration("backoff", backoff),
			slog.String("error", fmt.Sprint(err)))
		if !pause.Stop() {
			select {
			case <-pause.C:
			default:
			}
		}
		pause.Reset(backoff)
		select {
		case <-pause.C:
		case <-m.stop:
			return
		}
		if backoff *= 2; backoff > m.cfg.BackoffMax {
			backoff = m.cfg.BackoffMax
		}
	}
}

// servingLine is the JSON startup record the serve binary logs; the
// addr field carries the ephemeral port -addr 127.0.0.1:0 resolved to.
type servingLine struct {
	Msg  string `json:"msg"`
	Addr string `json:"addr"`
}

// runOnce runs one full process lifetime: spawn, parse the startup
// line, wait for readiness, probe until exit or shutdown. It returns
// when the process has exited (crash) or been stopped (shutdown).
func (m *Manager) runOnce(r *replica) error {
	args := append(append([]string{}, m.cfg.Args...),
		"-addr", "127.0.0.1:0", "-log-format", "json", "-log-level", "info")
	cmd := exec.Command(m.cfg.Binary, args...)
	cmd.Env = append(os.Environ(), m.cfg.Env...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("cluster: spawning %s: %w", r.name, err)
	}

	// The scanner drains stderr for the whole process lifetime (a full
	// pipe would block the child); the first "serving" record carries
	// the bound address.
	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		scanner := bufio.NewScanner(stderr)
		for scanner.Scan() {
			line := scanner.Text()
			var rec servingLine
			if json.Unmarshal([]byte(line), &rec) == nil && rec.Msg == "serving" && rec.Addr != "" {
				select {
				case addrCh <- rec.Addr:
				default:
				}
			}
			if m.cfg.ReplicaStderr != nil {
				fmt.Fprintf(m.cfg.ReplicaStderr, "[%s] %s\n", r.name, line)
			}
		}
	}()
	// Every return path below leaves the process dead and reaped (the
	// exitCh receive), which closes the stderr pipe and lets the
	// scanner goroutine exit; the join keeps a restarted replica's
	// scanner from interleaving writes with its predecessor's.
	defer func() { <-scanDone }()
	exitCh := make(chan error, 1)
	go func() { exitCh <- cmd.Wait() }()

	deadline := time.NewTimer(m.cfg.StartTimeout)
	defer deadline.Stop()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-exitCh:
		return fmt.Errorf("cluster: %s exited before serving: %v", r.name, err)
	case <-deadline.C:
		cmd.Process.Kill()
		<-exitCh
		return fmt.Errorf("cluster: %s never logged its address within %v", r.name, m.cfg.StartTimeout)
	case <-m.stop:
		return m.terminate(cmd, exitCh)
	}
	url := "http://" + addr

	// Readiness barrier: the process serves HTTP, now wait for /readyz
	// to go 200 before publishing the replica for dispatch.
	for readyWait := time.NewTicker(20 * time.Millisecond); ; {
		load, ready, _ := probeReadyz(m.client, url)
		if ready {
			readyWait.Stop()
			r.mu.Lock()
			r.url, r.pid, r.ready, r.load = url, cmd.Process.Pid, true, load
			r.mu.Unlock()
			break
		}
		select {
		case <-readyWait.C:
		case err := <-exitCh:
			readyWait.Stop()
			return fmt.Errorf("cluster: %s exited before ready: %v", r.name, err)
		case <-deadline.C:
			readyWait.Stop()
			cmd.Process.Kill()
			<-exitCh
			return fmt.Errorf("cluster: %s not ready within %v", r.name, m.cfg.StartTimeout)
		case <-m.stop:
			readyWait.Stop()
			return m.terminate(cmd, exitCh)
		}
	}
	m.logger().Info("replica ready",
		slog.String("replica", r.name),
		slog.String("url", url),
		slog.Int("pid", cmd.Process.Pid))

	// Serving: probe load and readiness until the process exits or the
	// manager shuts down. A 503 (draining, wedged batcher) marks the
	// replica not-ready — drain-aware rebalancing — without touching
	// the process; probes that fail entirely do the same and leave the
	// crash handling to exitCh.
	probe := time.NewTicker(m.cfg.ProbeInterval)
	defer probe.Stop()
	for {
		select {
		case <-probe.C:
			load, ready, err := probeReadyz(m.client, url)
			r.mu.Lock()
			if err == nil {
				r.ready, r.load = ready, load
			} else {
				r.ready = false
			}
			r.mu.Unlock()
		case err := <-exitCh:
			return fmt.Errorf("cluster: %s process exited: %v", r.name, err)
		case <-m.stop:
			return m.terminate(cmd, exitCh)
		}
	}
}

// terminate performs the graceful half of shutdown for one process:
// SIGTERM (the serve binary drains on it), bounded wait, SIGKILL.
func (m *Manager) terminate(cmd *exec.Cmd, exitCh <-chan error) error {
	cmd.Process.Signal(syscall.SIGTERM)
	grace := time.NewTimer(m.cfg.StopTimeout)
	defer grace.Stop()
	select {
	case err := <-exitCh:
		return err
	case <-grace.C:
		cmd.Process.Kill()
		return <-exitCh
	}
}
