package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"pimcapsnet/internal/obs"
)

// SLO window lengths: the fast window catches an active incident
// within a minute, the slow window tells sustained degradation from a
// blip — the standard two-window burn-rate alerting shape.
var sloWindows = []time.Duration{time.Minute, 10 * time.Minute}

// sloSlotCount sizes the per-second ring to cover the longest window.
const sloSlotCount = 600

// DefaultSLOTarget is the availability objective when the config
// leaves it zero: 99.9% of routed requests answered below 5xx.
const DefaultSLOTarget = 0.999

// sloSlot aggregates one second of terminal router responses.
type sloSlot struct {
	sec    int64 // unix second this slot currently holds; 0 = empty
	total  uint64
	errors uint64
	// buckets are cumulative-format-free per-bucket latency counts on
	// the latencyBounds layout (+Inf last), for windowed quantiles.
	// Nil until the slot first fills.
	buckets []uint64
}

// SLOTracker keeps a rolling per-second window of terminal router
// responses and derives the SLO gauges: availability ratio, windowed
// latency p99, and error-budget burn rate over 1m/10m windows. Safe
// for concurrent use.
type SLOTracker struct {
	target float64
	clock  obs.Clock

	mu sync.Mutex
	//pimcaps:guardedby mu
	slots [sloSlotCount]sloSlot
}

// NewSLOTracker builds a tracker with the given availability target
// (0 means DefaultSLOTarget) and clock (nil means time.Now).
func NewSLOTracker(target float64, clock obs.Clock) *SLOTracker {
	if target <= 0 || target >= 1 {
		target = DefaultSLOTarget
	}
	if clock == nil {
		clock = time.Now
	}
	return &SLOTracker{target: target, clock: clock}
}

// Target returns the availability objective.
func (s *SLOTracker) Target() float64 { return s.target }

// Observe records one terminal (client-visible) router response. A
// status of 500 or above spends error budget; 4xx is the client's
// fault and 429 is backpressure, neither an availability failure.
func (s *SLOTracker) Observe(status int, latency time.Duration) {
	if s == nil {
		return
	}
	sec := s.clock().Unix()
	lat := latency.Seconds()
	if lat < 0 {
		lat = 0
	}
	b := sort.SearchFloat64s(latencyBounds, lat)
	s.mu.Lock()
	slot := &s.slots[sec%sloSlotCount]
	if slot.sec != sec {
		*slot = sloSlot{sec: sec, buckets: make([]uint64, len(latencyBounds)+1)}
	}
	slot.total++
	if status >= 500 {
		slot.errors++
	}
	slot.buckets[b]++
	s.mu.Unlock()
}

// windowSums aggregates the slots covering the last window seconds.
func (s *SLOTracker) windowSums(window time.Duration) (total, errors uint64, buckets []uint64) {
	buckets = make([]uint64, len(latencyBounds)+1)
	now := s.clock().Unix()
	oldest := now - int64(window/time.Second) + 1
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.slots {
		slot := &s.slots[i]
		if slot.sec < oldest || slot.sec > now {
			continue
		}
		total += slot.total
		errors += slot.errors
		for j := range slot.buckets {
			buckets[j] += slot.buckets[j]
		}
	}
	return total, errors, buckets
}

// Availability returns the fraction of the window's terminal responses
// that were not 5xx, and the response count. An empty window reports
// 1 — no traffic spends no error budget.
func (s *SLOTracker) Availability(window time.Duration) (ratio float64, total uint64) {
	total, errors, _ := s.windowSums(window)
	if total == 0 {
		return 1, 0
	}
	return 1 - float64(errors)/float64(total), total
}

// LatencyP99 estimates the window's 99th-percentile latency from the
// bucketed counts by linear interpolation (ranks in the +Inf bucket
// clip to the largest finite bound). 0 when the window is empty.
func (s *SLOTracker) LatencyP99(window time.Duration) float64 {
	total, _, buckets := s.windowSums(window)
	if total == 0 {
		return 0
	}
	maxBound := latencyBounds[len(latencyBounds)-1]
	rank := 0.99 * float64(total)
	var cum float64
	for i := range buckets {
		n := float64(buckets[i])
		if n == 0 || cum+n < rank {
			cum += n
			continue
		}
		if i == len(latencyBounds) {
			return maxBound
		}
		lo := 0.0
		if i > 0 {
			lo = latencyBounds[i-1]
		}
		return lo + (latencyBounds[i]-lo)*(rank-cum)/n
	}
	return maxBound
}

// BurnRate returns how fast the window is spending error budget: the
// observed error ratio divided by the budget (1 − target). 1 means
// exactly on target; 0 means a clean window; values ≫ 1 mean the
// budget drains that many times faster than allowed.
func (s *SLOTracker) BurnRate(window time.Duration) float64 {
	ratio, total := s.Availability(window)
	if total == 0 {
		return 0
	}
	return (1 - ratio) / (1 - s.target)
}

// WriteText emits the SLO gauge families in Prometheus text format.
func (s *SLOTracker) WriteText(w io.Writer) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "router_slo_target %g\n", s.target)
	for _, win := range sloWindows {
		label := win.String()
		ratio, total := s.Availability(win)
		fmt.Fprintf(w, "router_slo_availability_ratio{window=%q} %g\n", label, ratio)
		fmt.Fprintf(w, "router_slo_requests{window=%q} %d\n", label, total)
		fmt.Fprintf(w, "router_slo_latency_p99_seconds{window=%q} %g\n", label, s.LatencyP99(win))
		fmt.Fprintf(w, "router_slo_error_budget_burn_rate{window=%q} %g\n", label, s.BurnRate(win))
	}
}
