package cluster

import (
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimcapsnet/internal/deadline"
)

// fakeClock is a mutable time source the deadline tests inject as
// DispatcherConfig.Clock, so deadline arithmetic is exercised without
// real waits.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestDispatchForwardsDeadlineHeader: the client's absolute deadline
// header reaches the replica verbatim on every attempt.
func TestDispatchForwardsDeadlineHeader(t *testing.T) {
	var seen atomic.Value
	_, rep := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		seen.Store(r.Header.Get(deadline.Header))
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, goodBody)
	})
	d := newTestDispatcher(t, DispatcherConfig{Pool: &staticPool{reps: []ReplicaInfo{rep}}})

	dl := time.Now().Add(time.Minute)
	w := classify(t, d, `{"image":[0.5]}`, map[string]string{deadline.Header: deadline.Format(dl)})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	if got := seen.Load(); got != deadline.Format(dl) {
		t.Fatalf("replica saw deadline header %v, want %q", got, deadline.Format(dl))
	}
}

// TestDispatchDefaultBudgetStampsDeadline: a headerless request gets
// now+DefaultBudget as its deadline, visible to the replica.
func TestDispatchDefaultBudgetStampsDeadline(t *testing.T) {
	var seen atomic.Value
	_, rep := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		seen.Store(r.Header.Get(deadline.Header))
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, goodBody)
	})
	clk := newFakeClock()
	d := newTestDispatcher(t, DispatcherConfig{
		Pool:          &staticPool{reps: []ReplicaInfo{rep}},
		DefaultBudget: 10 * time.Second,
		Clock:         clk.Now,
	})

	w := classify(t, d, `{"image":[0.5]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	want := deadline.Format(clk.Now().Add(10 * time.Second))
	if got := seen.Load(); got != want {
		t.Fatalf("replica saw deadline header %v, want %q (now+DefaultBudget)", got, want)
	}
}

// TestDispatchInvalidDeadlineRejected: a malformed deadline header is a
// client error, not a routed request.
func TestDispatchInvalidDeadlineRejected(t *testing.T) {
	var hits atomic.Int64
	_, rep := fakeReplica(t, "r0", okHandler(&hits))
	d := newTestDispatcher(t, DispatcherConfig{Pool: &staticPool{reps: []ReplicaInfo{rep}}})

	w := classify(t, d, `{"image":[0.5]}`, map[string]string{deadline.Header: "soon"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if hits.Load() != 0 {
		t.Fatalf("replica hit %d times for an invalid deadline, want 0", hits.Load())
	}
}

// TestDispatchNoAttemptAfterDeadline is the core no-dead-work
// guarantee: once the (fake) clock passes the deadline, no retry fires
// — the first failing attempt is the only replica contact, the retry
// counter stays at zero, and the client gets 504 with the exhaustion
// metric incremented.
func TestDispatchNoAttemptAfterDeadline(t *testing.T) {
	clk := newFakeClock()
	var hits atomic.Int64
	_, rep := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		// The attempt consumes the whole budget: the next loop
		// iteration's deadline check must stop the request.
		clk.Advance(2 * time.Second)
		w.WriteHeader(http.StatusInternalServerError)
	})
	d := newTestDispatcher(t, DispatcherConfig{
		Pool:        &staticPool{reps: []ReplicaInfo{rep}},
		MaxAttempts: 4,
		HedgeDelay:  -1,
		Clock:       clk.Now,
	})

	dl := clk.Now().Add(time.Second)
	w := classify(t, d, `{"image":[0.5]}`, map[string]string{deadline.Header: deadline.Format(dl)})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", w.Code, w.Body.String())
	}
	if hits.Load() != 1 {
		t.Fatalf("replica hit %d times, want 1 (no retries past the deadline)", hits.Load())
	}
	if got := d.Metrics().Retries(); got != 0 {
		t.Fatalf("router_retries_total = %d, want 0", got)
	}
	if got := d.Metrics().DeadlinesExhausted(); got != 1 {
		t.Fatalf("router_deadline_exhausted_total = %d, want 1", got)
	}
}

// TestDispatchExpiredOnArrival: a request whose deadline already
// passed is answered 504 without any replica contact.
func TestDispatchExpiredOnArrival(t *testing.T) {
	clk := newFakeClock()
	var hits atomic.Int64
	_, rep := fakeReplica(t, "r0", okHandler(&hits))
	d := newTestDispatcher(t, DispatcherConfig{
		Pool:  &staticPool{reps: []ReplicaInfo{rep}},
		Clock: clk.Now,
	})

	dl := clk.Now().Add(-time.Second)
	w := classify(t, d, `{"image":[0.5]}`, map[string]string{deadline.Header: deadline.Format(dl)})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", w.Code)
	}
	if hits.Load() != 0 {
		t.Fatalf("replica hit %d times for a dead-on-arrival request, want 0", hits.Load())
	}
	if got := d.Metrics().DeadlinesExhausted(); got != 1 {
		t.Fatalf("router_deadline_exhausted_total = %d, want 1", got)
	}
}

// TestDispatchSkipsHedgeNearDeadline: with less runway than HedgeDelay
// + ExpectedServiceTime remaining, the hedge is vetoed (counted in
// router_hedges_skipped_total) and only one replica is contacted.
func TestDispatchSkipsHedgeNearDeadline(t *testing.T) {
	clk := newFakeClock()
	var hits0, hits1 atomic.Int64
	_, rep0 := fakeReplica(t, "r0", okHandler(&hits0))
	_, rep1 := fakeReplica(t, "r1", okHandler(&hits1))
	d := newTestDispatcher(t, DispatcherConfig{
		Pool:                &staticPool{reps: []ReplicaInfo{rep0, rep1}},
		HedgeDelay:          10 * time.Millisecond,
		MaxHedges:           1,
		ExpectedServiceTime: 100 * time.Millisecond,
		Clock:               clk.Now,
	})

	// 50ms of budget < 10ms hedge delay + 100ms expected service.
	dl := clk.Now().Add(50 * time.Millisecond)
	w := classify(t, d, `{"image":[0.5]}`, map[string]string{deadline.Header: deadline.Format(dl)})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	if got := d.Metrics().HedgesSkipped(); got != 1 {
		t.Fatalf("router_hedges_skipped_total = %d, want 1", got)
	}
	if got := d.Metrics().Hedges(); got != 0 {
		t.Fatalf("router_hedges_total = %d, want 0", got)
	}
	if total := hits0.Load() + hits1.Load(); total != 1 {
		t.Fatalf("replicas hit %d times, want exactly 1 (no hedge)", total)
	}
}

// TestDispatchCapsRetryAfterByDeadline: a replica 429's Retry-After
// backoff is slept only up to the remaining budget, then the request
// ends 504 instead of sleeping past its own deadline.
func TestDispatchCapsRetryAfterByDeadline(t *testing.T) {
	clk := newFakeClock()
	_, rep := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	d := newTestDispatcher(t, DispatcherConfig{
		Pool:          &staticPool{reps: []ReplicaInfo{rep}},
		MaxAttempts:   4,
		HedgeDelay:    -1,
		RetryAfterCap: 10 * time.Second, // deliberately above the budget
		Clock:         clk.Now,
	})
	var slept []time.Duration
	d.sleep = func(dur time.Duration) {
		slept = append(slept, dur)
		clk.Advance(dur)
	}

	dl := clk.Now().Add(500 * time.Millisecond)
	w := classify(t, d, `{"image":[0.5]}`, map[string]string{deadline.Header: deadline.Format(dl)})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", w.Code, w.Body.String())
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1 (then the deadline check ends the request)", len(slept))
	}
	if slept[0] > 500*time.Millisecond {
		t.Fatalf("Retry-After sleep %v exceeds the 500ms remaining budget", slept[0])
	}
}
