// Package cluster is the sharded replica tier: it lifts PIM-CapsNet's
// inter-vault workload distribution model (paper §5.1, Eqs. 6–12) from
// intra-process chunk placement (internal/capsnet/partition.go,
// internal/distribute) to request placement across N capsnet-serve
// replicas running as real subprocesses.
//
// The analogy is exact in structure: a vault becomes a replica, the
// largest-per-vault workload E becomes a replica's outstanding
// requests, and the inter-vault data movement M becomes the warmth a
// request forfeits by leaving its affinity replica — over loopback
// HTTP nothing is literally "moved", but a request landing on a cold
// replica misses that replica's connection pool, Go scheduler state,
// and the scratch-arena pages its twin requests keep hot, which is the
// same locality cost the paper charges as crossbar traffic. Placement
// maximizes S = 1/(αE + βM) per request (distribute.Scorer.ScoreEM),
// which degenerates to consistent-hash affinity when loads are even
// and to least-loaded spill when the affinity replica falls behind.
//
// Three cooperating pieces:
//
//   - Manager owns the replica subprocesses: spawn → wait /readyz →
//     serve → drain → restart-on-crash with exponential backoff. It
//     probes each replica's /readyz for the machine-readable load body
//     (serve.LoadInfo) and publishes snapshots through the Pool
//     interface.
//   - Placer ranks ready replicas for a request key with the Eq. 6–12
//     scoring (rendezvous hashing supplies the affinity home).
//   - Dispatcher is the HTTP front: it forwards classify requests to
//     the placed replica with a per-request retry budget, a hedging
//     budget for stalled attempts, Retry-After honoring on replica
//     429s, and response validation that turns corrupt replica output
//     into a retry instead of a client-visible error.
//
// The package is deliberately model-free: it never imports capsnet,
// tensor, or serve (enforced by layercheck) — the router moves opaque
// bytes between processes and understands only the serving HTTP
// protocol (the /readyz load body, /v1/classify, X-Trace-Id).
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Load is the replica load signal parsed from the /readyz body — the
// wire shape of serve.LoadInfo, duplicated here because the router
// tier speaks the HTTP protocol, not the serve package's Go API.
type Load struct {
	Status         string  `json:"status"`
	QueueDepth     int     `json:"queue_depth"`
	QueueCapacity  int     `json:"queue_capacity"`
	Inflight       int     `json:"inflight"`
	BatchOccupancy float64 `json:"batch_occupancy"`
	MaxBatch       int     `json:"max_batch"`
	PID            int     `json:"pid"`
}

// Outstanding is the replica's queued-plus-running request count: the
// E term (largest per-vault workload, Eqs. 7/9/11) of the placement
// score.
func (l Load) Outstanding() float64 { return float64(l.QueueDepth + l.Inflight) }

// ReplicaInfo is one replica's published snapshot.
type ReplicaInfo struct {
	// Name is the stable replica identity ("r0", "r1", ...), used as
	// the rendezvous-hash site and the {replica=...} metric label.
	Name string `json:"name"`
	// URL is the replica's base URL (http://127.0.0.1:port), empty
	// while the replica is between processes.
	URL string `json:"url"`
	// PID is the replica process id (0 while down) — exposed so chaos
	// drills and operators can address the process.
	PID int `json:"pid"`
	// Ready reports whether the replica is currently dispatchable:
	// process up, /readyz answering 200.
	Ready bool `json:"ready"`
	// Restarts counts how many times the manager restarted the replica
	// after a crash.
	Restarts uint64 `json:"restarts"`
	// Load is the last probed load body (zero value while down).
	Load Load `json:"load"`
}

// Pool is the dispatcher's view of the replica set. Manager implements
// it; tests substitute static pools over httptest servers.
type Pool interface {
	// Snapshot returns every replica's current state, ready or not.
	Snapshot() []ReplicaInfo
}

// Ready filters a pool snapshot down to dispatchable replicas.
func Ready(p Pool) []ReplicaInfo {
	all := p.Snapshot()
	ready := make([]ReplicaInfo, 0, len(all))
	for _, r := range all {
		if r.Ready && r.URL != "" {
			ready = append(ready, r)
		}
	}
	return ready
}

// probeReadyz fetches url/readyz and decodes the load body. The
// boolean reports dispatchability: a 503 body still parses (a draining
// replica reports its load) but is not ready. Any transport or decode
// error means not ready.
func probeReadyz(client *http.Client, url string) (Load, bool, error) {
	resp, err := client.Get(url + "/readyz")
	if err != nil {
		return Load{}, false, err
	}
	defer resp.Body.Close()
	var l Load
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		return Load{}, false, fmt.Errorf("cluster: decoding /readyz body: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return l, true, nil
	case http.StatusServiceUnavailable:
		return l, false, nil
	default:
		return Load{}, false, fmt.Errorf("cluster: /readyz status %d", resp.StatusCode)
	}
}

// WaitReady polls p until at least n replicas are ready or ctx is
// done — the startup barrier callers use before opening traffic.
// Callers bound the wait with context.WithTimeout (or cancel it to
// abandon startup).
func WaitReady(ctx context.Context, p Pool, n int) error {
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for {
		if len(Ready(p)) >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: %d replicas not ready: %w", n, ctx.Err())
		case <-ticker.C:
		}
	}
}
