package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pimcapsnet/internal/obs"
	"pimcapsnet/internal/trace"
)

// homedBody returns a classify body whose placement home among the
// pool's ready replicas is the named one.
func homedBody(t *testing.T, pool Pool, name string) string {
	t.Helper()
	for i := 0; i < 1024; i++ {
		b := `{"image":[0.` + strings.Repeat("7", i+1) + `]}`
		if Ready(pool)[Home(Key([]byte(b)), Ready(pool))].Name == name {
			return b
		}
	}
	t.Fatalf("no probe body homed on %s", name)
	return ""
}

// attemptSpans filters a trace's spans down to the per-attempt spans.
func attemptSpans(t *obs.Trace) []obs.Span {
	var out []obs.Span
	for _, s := range t.Spans() {
		if s.Name == "attempt" {
			out = append(out, s)
		}
	}
	return out
}

// TestDispatchRetryTraceAttribution homes a request on a failing
// replica so the retry lands on the healthy one, and asserts the retry
// renders as sibling attempt spans: each with its own span ID,
// parented on the route span, tagged with the replica, the attempt
// ordinal, and the outcome.
func TestDispatchRetryTraceAttribution(t *testing.T) {
	_, repBad := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	_, repGood := fakeReplica(t, "r1", okHandler(nil))
	pool := &staticPool{reps: []ReplicaInfo{repBad, repGood}}
	d := newTestDispatcher(t, DispatcherConfig{
		Pool: pool, MaxAttempts: 3, HedgeDelay: -1, TraceSample: 1,
	})

	w := classify(t, d, homedBody(t, pool, "r0"), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	id := w.Header().Get(obs.TraceIDHeader)
	traces := d.Tracer().Find(id)
	if len(traces) != 1 {
		t.Fatalf("ring retained %d traces for %s, want 1", len(traces), id)
	}
	tr := traces[0]

	var root obs.Span
	for _, s := range tr.Spans() {
		if s.Name == "route" {
			root = s
			break
		}
	}
	if root.ID == "" {
		t.Fatalf("no identified route span in %+v", tr.Spans())
	}
	if root.Tags["code"] != "200" {
		t.Fatalf("route span code = %q, want 200", root.Tags["code"])
	}

	attempts := attemptSpans(tr)
	if len(attempts) != 2 {
		t.Fatalf("got %d attempt spans, want 2 (failed + retried): %+v", len(attempts), attempts)
	}
	wantByOrdinal := map[string]struct{ code, replica string }{
		"1": {"500", "r0"},
		"2": {"200", "r1"},
	}
	seenIDs := map[string]bool{}
	for _, s := range attempts {
		if s.ID == "" {
			t.Fatalf("attempt span has no span ID: %+v", s)
		}
		if seenIDs[s.ID] {
			t.Fatalf("attempt span ID %s reused", s.ID)
		}
		seenIDs[s.ID] = true
		if s.Parent != root.ID {
			t.Fatalf("attempt span parent = %q, want route span %q", s.Parent, root.ID)
		}
		if s.Tags["hedge"] != "false" {
			t.Fatalf("retry attempt tagged hedge=%q, want false", s.Tags["hedge"])
		}
		want, ok := wantByOrdinal[s.Tags["attempt"]]
		if !ok {
			t.Fatalf("unexpected attempt ordinal %q", s.Tags["attempt"])
		}
		if s.Tags["code"] != want.code || s.Tags["replica"] != want.replica {
			t.Fatalf("attempt %s = {code %q, replica %q}, want %+v",
				s.Tags["attempt"], s.Tags["code"], s.Tags["replica"], want)
		}
		delete(wantByOrdinal, s.Tags["attempt"])
	}
	if len(wantByOrdinal) != 0 {
		t.Fatalf("missing attempt ordinals: %v", wantByOrdinal)
	}
}

// TestDispatchHedgeTraceAttribution stalls the primary replica so the
// hedge fires, and asserts the hedge renders as a sibling span tagged
// hedge=true while the abandoned primary is closed out explicitly.
func TestDispatchHedgeTraceAttribution(t *testing.T) {
	release := make(chan struct{})
	_, repSlow := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		io.ReadAll(r.Body)
		select {
		case <-release: // stalled until test end
		case <-r.Context().Done(): // or until the router abandons us
		}
	})
	_, repFast := fakeReplica(t, "r1", okHandler(nil))
	// Registered after the servers, so LIFO cleanup unblocks the stalled
	// handler before httptest.Server.Close waits on it.
	t.Cleanup(func() { close(release) })
	pool := &staticPool{reps: []ReplicaInfo{repSlow, repFast}}
	d := newTestDispatcher(t, DispatcherConfig{
		Pool: pool, HedgeDelay: 30 * time.Millisecond, TraceSample: 1,
	})

	w := classify(t, d, homedBody(t, pool, "r0"), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via hedge", w.Code)
	}
	id := w.Header().Get(obs.TraceIDHeader)
	traces := d.Tracer().Find(id)
	if len(traces) != 1 {
		t.Fatalf("ring retained %d traces, want 1", len(traces))
	}
	attempts := attemptSpans(traces[0])
	if len(attempts) != 2 {
		t.Fatalf("got %d attempt spans, want 2 (primary + hedge): %+v", len(attempts), attempts)
	}
	var sawHedge, sawAbandoned bool
	for _, s := range attempts {
		if s.Tags["attempt"] != "1" {
			t.Fatalf("hedge race spans must share attempt ordinal 1, got %q", s.Tags["attempt"])
		}
		if s.Tags["hedge"] == "true" {
			sawHedge = true
			if s.Tags["code"] != "200" || s.Tags["replica"] != "r1" {
				t.Fatalf("hedge span = %v, want code 200 on r1", s.Tags)
			}
		}
		if s.Tags["code"] == "abandoned" {
			sawAbandoned = true
			if s.Tags["replica"] != "r0" {
				t.Fatalf("abandoned span replica = %q, want r0", s.Tags["replica"])
			}
		}
	}
	if !sawHedge || !sawAbandoned {
		t.Fatalf("want one hedge=true span and one abandoned primary, got %+v", attempts)
	}
}

// TestRouterFlightRecorder exercises the router-side tail sampler: a
// request that exhausts its replicas ends 502 and must be pinned with
// its full attempt-span set; routed 200s must not occupy slots.
func TestRouterFlightRecorder(t *testing.T) {
	var mode atomic.Int64 // 0 = fail, 1 = ok
	_, rep := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == 1 {
			okHandler(nil)(w, r)
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	d := newTestDispatcher(t, DispatcherConfig{
		Pool: &staticPool{reps: []ReplicaInfo{rep}}, MaxAttempts: 2, HedgeDelay: -1,
		FlightBuffer: 8,
	})

	w := classify(t, d, `{"image":[0.5]}`, nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", w.Code)
	}
	badID := w.Header().Get(obs.TraceIDHeader)

	mode.Store(1)
	for i := 0; i < 5; i++ {
		if w := classify(t, d, `{"image":[0.5]}`, nil); w.Code != http.StatusOK {
			t.Fatalf("status %d, want 200", w.Code)
		}
	}

	entries := d.Flight().Entries()
	if len(entries) != 1 {
		t.Fatalf("flight recorder retained %d entries, want 1 (only the 502)", len(entries))
	}
	e := entries[0]
	if e.Trace == nil || e.Trace.ID != badID {
		t.Fatalf("pinned trace = %v, want ID %s", e.Trace, badID)
	}
	if e.Status != http.StatusBadGateway {
		t.Fatalf("pinned status = %d, want 502", e.Status)
	}
	found := false
	for _, reason := range e.Reasons {
		if reason == obs.FlightReasonStatus5xx {
			found = true
		}
	}
	if !found {
		t.Fatalf("pin reasons %v missing %s", e.Reasons, obs.FlightReasonStatus5xx)
	}
	// The pinned trace has both attempt spans even though the counter
	// sampler (sample rate 0) never chose it for the ring.
	if got := len(attemptSpans(e.Trace)); got != 2 {
		t.Fatalf("pinned trace has %d attempt spans, want 2", got)
	}
}

// TestFleetTraceEndpointMergesRouterAndReplica exercises
// /debug/trace/fleet against a fake replica that serves span
// fragments, asserting the merged output is valid Chrome trace JSON
// with distinct process tracks and attempt-tag inheritance onto the
// replica's stage spans.
func TestFleetTraceEndpointMergesRouterAndReplica(t *testing.T) {
	var lastClassify atomic.Value // "traceID|parentSpan"
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", func(w http.ResponseWriter, r *http.Request) {
		lastClassify.Store(r.Header.Get(obs.TraceIDHeader) + "|" + r.Header.Get(obs.ParentSpanHeader))
		okHandler(nil)(w, r)
	})
	mux.HandleFunc("/debug/requests/trace", func(w http.ResponseWriter, r *http.Request) {
		stored, _ := lastClassify.Load().(string)
		parts := strings.SplitN(stored, "|", 2)
		if len(parts) != 2 || r.URL.Query().Get("trace") != parts[0] || r.URL.Query().Get("format") != "spans" {
			http.NotFound(w, r)
			return
		}
		tr := &obs.Trace{ID: parts[0], Start: time.Now()}
		tr.SetParent(parts[1])
		now := time.Now()
		tr.Add("forward", -1, now, now.Add(time.Millisecond))
		w.Header().Set("Content-Type", "application/json")
		obs.WriteFragments(w, []*obs.Trace{tr})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	rep := ReplicaInfo{Name: "r0", URL: srv.URL, Ready: true}
	d := newTestDispatcher(t, DispatcherConfig{
		Pool: &staticPool{reps: []ReplicaInfo{rep}}, MaxAttempts: 2, HedgeDelay: -1,
		TraceSample: 1,
	})

	w := classify(t, d, `{"image":[0.5]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	id := w.Header().Get(obs.TraceIDHeader)

	fw := httptest.NewRecorder()
	d.Handler().ServeHTTP(fw, httptest.NewRequest(http.MethodGet, "/debug/trace/fleet?trace="+id, nil))
	if fw.Code != http.StatusOK {
		t.Fatalf("fleet trace status %d, body %s", fw.Code, fw.Body.String())
	}
	log, err := trace.ReadJSON(fw.Body)
	if err != nil {
		t.Fatalf("fleet trace is not valid Chrome trace JSON: %v", err)
	}
	procs := map[string]int{}
	var replicaSpanArgs map[string]any
	for _, e := range log.Events() {
		if e.Ph == "M" && e.Name == "process_name" {
			name, _ := e.Args["name"].(string)
			procs[name] = e.PID
		}
		if e.Ph == "X" && e.Name == "forward" {
			replicaSpanArgs = e.Args
		}
		if e.TS < 0 {
			t.Fatalf("event %q has negative ts %v (epoch rebase broken)", e.Name, e.TS)
		}
	}
	if _, ok := procs["router"]; !ok {
		t.Fatalf("merged trace missing router process track: %v", procs)
	}
	if _, ok := procs["replica-0"]; !ok {
		t.Fatalf("merged trace missing replica-0 process track: %v", procs)
	}
	if procs["router"] == procs["replica-0"] {
		t.Fatalf("router and replica share pid %d", procs["router"])
	}
	if replicaSpanArgs == nil {
		t.Fatalf("replica forward span missing from merged trace")
	}
	// Attribution inheritance: the replica's stage span carries the
	// launching attempt's tags.
	if replicaSpanArgs["attempt"] != "1" || replicaSpanArgs["hedge"] != "false" {
		t.Fatalf("replica span did not inherit attempt tags: %v", replicaSpanArgs)
	}
}

// TestSLOTrackerWindows verifies availability, burn rate, and window
// expiry against an injected clock.
func TestSLOTrackerWindows(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	s := NewSLOTracker(0.99, clock)

	for i := 0; i < 98; i++ {
		s.Observe(http.StatusOK, 10*time.Millisecond)
	}
	s.Observe(http.StatusInternalServerError, 50*time.Millisecond)
	s.Observe(http.StatusGatewayTimeout, 5*time.Second)

	ratio, total := s.Availability(time.Minute)
	if total != 100 {
		t.Fatalf("window total = %d, want 100", total)
	}
	if ratio != 0.98 {
		t.Fatalf("availability = %g, want 0.98", ratio)
	}
	// 2% errors against a 1% budget: burning 2x.
	if br := s.BurnRate(time.Minute); br < 1.99 || br > 2.01 {
		t.Fatalf("burn rate = %g, want ≈2", br)
	}
	if p99 := s.LatencyP99(time.Minute); p99 <= 0 {
		t.Fatalf("p99 = %g, want > 0", p99)
	}
	// 4xx and 429 spend no budget.
	s.Observe(http.StatusTooManyRequests, time.Millisecond)
	s.Observe(http.StatusBadRequest, time.Millisecond)
	if ratio, _ := s.Availability(time.Minute); ratio <= 0.98 {
		t.Fatalf("availability fell to %g after non-5xx responses", ratio)
	}

	// The 1m window forgets, the 10m window remembers.
	now = now.Add(2 * time.Minute)
	if _, total := s.Availability(time.Minute); total != 0 {
		t.Fatalf("1m window still holds %d observations after 2m", total)
	}
	if ratio, total := s.Availability(10 * time.Minute); total == 0 || ratio >= 1 {
		t.Fatalf("10m window lost its observations (ratio %g, total %d)", ratio, total)
	}
	// Empty window: clean slate, zero burn.
	if br := s.BurnRate(time.Minute); br != 0 {
		t.Fatalf("empty-window burn rate = %g, want 0", br)
	}
}
