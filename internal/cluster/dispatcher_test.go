package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// staticPool is a fixed replica set over httptest servers.
type staticPool struct {
	mu   sync.Mutex
	reps []ReplicaInfo
}

func (p *staticPool) Snapshot() []ReplicaInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ReplicaInfo{}, p.reps...)
}

func (p *staticPool) setReady(name string, ready bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.reps {
		if p.reps[i].Name == name {
			p.reps[i].Ready = ready
		}
	}
}

const goodBody = `{"class":1,"probs":[0.1,0.8,0.1],"poses":null,"batch":1}`

// fakeReplica serves /v1/classify with the given handler and tracks
// request counts.
func fakeReplica(t *testing.T, name string, h http.HandlerFunc) (*httptest.Server, ReplicaInfo) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", h)
	mux.HandleFunc("/v1/model", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"channels":1,"height":8,"width":8,"classes":3}`)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, ReplicaInfo{Name: name, URL: srv.URL, Ready: true}
}

func okHandler(hits *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		w.Header().Set("X-Trace-Id", r.Header.Get("X-Trace-Id"))
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, goodBody)
	}
}

func newTestDispatcher(t *testing.T, cfg DispatcherConfig) *Dispatcher {
	t.Helper()
	d, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatalf("NewDispatcher: %v", err)
	}
	return d
}

func classify(t *testing.T, d *Dispatcher, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/classify", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	d.Handler().ServeHTTP(w, req)
	return w
}

func TestDispatchHappyPath(t *testing.T) {
	var hits atomic.Int64
	_, rep := fakeReplica(t, "r0", okHandler(&hits))
	d := newTestDispatcher(t, DispatcherConfig{Pool: &staticPool{reps: []ReplicaInfo{rep}}})

	w := classify(t, d, `{"image":[0.5]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp struct {
		Class int       `json:"class"`
		Probs []float64 `json:"probs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding routed response: %v", err)
	}
	if resp.Class != 1 || len(resp.Probs) != 3 {
		t.Fatalf("routed response mangled: %+v", resp)
	}
	if hits.Load() != 1 {
		t.Fatalf("replica hit %d times, want 1", hits.Load())
	}
	if got := w.Header().Get("X-Trace-Id"); got == "" {
		t.Fatalf("router did not stamp X-Trace-Id")
	}
	if got := d.Metrics().ReplicaRequests("r0", "200"); got != 1 {
		t.Fatalf("router_replica_requests_total{r0,200} = %d, want 1", got)
	}
}

func TestDispatchPropagatesTraceID(t *testing.T) {
	var seen atomic.Value
	_, rep := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		seen.Store(r.Header.Get("X-Trace-Id"))
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, goodBody)
	})
	d := newTestDispatcher(t, DispatcherConfig{Pool: &staticPool{reps: []ReplicaInfo{rep}}})

	w := classify(t, d, `{"image":[0.5]}`, map[string]string{"X-Trace-Id": "feedfacecafebeef"})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if got := seen.Load(); got != "feedfacecafebeef" {
		t.Fatalf("replica saw trace id %v, want caller's", got)
	}
	if got := w.Header().Get("X-Trace-Id"); got != "feedfacecafebeef" {
		t.Fatalf("response trace id %q, want caller's", got)
	}
}

func TestDispatchRetriesTransportError(t *testing.T) {
	var hits atomic.Int64
	srv0, rep0 := fakeReplica(t, "r0", okHandler(nil))
	_, rep1 := fakeReplica(t, "r1", okHandler(&hits))
	srv0.Close() // r0 is dead but still marked ready: transport error
	pool := &staticPool{reps: []ReplicaInfo{rep0, rep1}}
	d := newTestDispatcher(t, DispatcherConfig{Pool: pool, HedgeDelay: -1})

	// Find a body homed on the dead replica so the first attempt fails.
	body := `{"image":[0.5]}`
	for i := 0; ; i++ {
		b := `{"image":[0.` + strings.Repeat("5", i+1) + `]}`
		if Ready(pool)[Home(Key([]byte(b)), Ready(pool))].Name == "r0" {
			body = b
			break
		}
	}
	w := classify(t, d, body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via retry; body %s", w.Code, w.Body.String())
	}
	if hits.Load() != 1 {
		t.Fatalf("surviving replica hit %d times, want 1", hits.Load())
	}
	if d.Metrics().Retries() == 0 {
		t.Fatalf("retry not counted")
	}
	if got := d.Metrics().ReplicaRequests("r0", "error"); got == 0 {
		t.Fatalf("dead replica attempt not counted as error")
	}
}

func TestDispatchRetriesCorruptResponse(t *testing.T) {
	var corruptHits atomic.Int64
	_, repBad := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		corruptHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"class":1,"probs":[0.1,`) // truncated JSON
	})
	_, repGood := fakeReplica(t, "r1", okHandler(nil))
	pool := &staticPool{reps: []ReplicaInfo{repBad, repGood}}
	d := newTestDispatcher(t, DispatcherConfig{Pool: pool, HedgeDelay: -1})

	body := ""
	for i := 0; ; i++ {
		b := `{"image":[0.` + strings.Repeat("1", i+1) + `]}`
		if Ready(pool)[Home(Key([]byte(b)), Ready(pool))].Name == "r0" {
			body = b
			break
		}
	}
	w := classify(t, d, body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via retry; body %s", w.Code, w.Body.String())
	}
	if corruptHits.Load() == 0 {
		t.Fatalf("corrupt replica never hit — fixture body not homed there")
	}
	if got := d.Metrics().ReplicaRequests("r0", "corrupt"); got == 0 {
		t.Fatalf("corrupt response not counted")
	}
}

func TestDispatchRejectsNaNProbs(t *testing.T) {
	_, rep := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Valid JSON, invalid payload: "NaN" is not JSON, so a replica
		// emitting it produces a decode failure; null prob is the
		// in-grammar equivalent of a poisoned value.
		io.WriteString(w, `{"class":5,"probs":[0.1,0.2]}`)
	})
	d := newTestDispatcher(t, DispatcherConfig{
		Pool: &staticPool{reps: []ReplicaInfo{rep}}, MaxAttempts: 2, HedgeDelay: -1,
	})
	w := classify(t, d, `{"image":[0.5]}`, nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 after exhausting budget on corrupt responses", w.Code)
	}
	if got := d.Metrics().ReplicaRequests("r0", "corrupt"); got != 2 {
		t.Fatalf("corrupt count %d, want 2", got)
	}
}

func TestDispatchHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	_, rep := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, goodBody)
	})
	d := newTestDispatcher(t, DispatcherConfig{
		Pool:          &staticPool{reps: []ReplicaInfo{rep}},
		RetryAfterCap: 50 * time.Millisecond, // cap proves the header is read but bounded
		HedgeDelay:    -1,
	})
	start := time.Now()
	w := classify(t, d, `{"image":[0.5]}`, nil)
	elapsed := time.Since(start)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 after backoff", w.Code)
	}
	if elapsed < 50*time.Millisecond {
		t.Fatalf("no backoff observed: %v", elapsed)
	}
	if elapsed > 800*time.Millisecond {
		t.Fatalf("Retry-After not capped: waited %v", elapsed)
	}
	if got := d.Metrics().ReplicaRequests("r0", "429"); got != 1 {
		t.Fatalf("429 count %d, want 1", got)
	}
}

func TestDispatchForwardsDeterministic4xx(t *testing.T) {
	var hits atomic.Int64
	_, rep := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "image length 3, want 64", http.StatusBadRequest)
	})
	d := newTestDispatcher(t, DispatcherConfig{Pool: &staticPool{reps: []ReplicaInfo{rep}}})
	w := classify(t, d, `{"image":[1,2,3]}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want the replica's 400 forwarded", w.Code)
	}
	if hits.Load() != 1 {
		t.Fatalf("client error retried: %d attempts", hits.Load())
	}
}

func TestDispatchHedgesStalledReplica(t *testing.T) {
	release := make(chan struct{})
	_, repSlow := fakeReplica(t, "r0", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read starts and
		// r.Context() cancels if the router abandons the attempt.
		io.ReadAll(r.Body)
		select {
		case <-release: // stalled until test end
		case <-r.Context().Done(): // or until the router abandons us
		}
	})
	var fastHits atomic.Int64
	_, repFast := fakeReplica(t, "r1", okHandler(&fastHits))
	// Registered after the servers, so LIFO cleanup unblocks the stalled
	// handler before httptest.Server.Close waits on it.
	t.Cleanup(func() { close(release) })
	pool := &staticPool{reps: []ReplicaInfo{repSlow, repFast}}
	d := newTestDispatcher(t, DispatcherConfig{
		Pool:       pool,
		HedgeDelay: 30 * time.Millisecond,
	})

	body := ""
	for i := 0; ; i++ {
		b := `{"image":[0.` + strings.Repeat("7", i+1) + `]}`
		if Ready(pool)[Home(Key([]byte(b)), Ready(pool))].Name == "r0" {
			body = b
			break
		}
	}
	start := time.Now()
	w := classify(t, d, body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via hedge", w.Code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedge did not rescue the stall: %v", elapsed)
	}
	if fastHits.Load() == 0 {
		t.Fatalf("hedge replica never hit")
	}
	if d.Metrics().Hedges() != 1 {
		t.Fatalf("hedges = %d, want 1", d.Metrics().Hedges())
	}
}

func TestDispatchNoReplicas(t *testing.T) {
	d := newTestDispatcher(t, DispatcherConfig{
		Pool: &staticPool{}, MaxAttempts: 2, HedgeDelay: -1,
	})
	w := classify(t, d, `{"image":[0.5]}`, nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 with empty pool", w.Code)
	}
}

func TestDispatchDrainAware(t *testing.T) {
	var drainHits, liveHits atomic.Int64
	_, repDrain := fakeReplica(t, "r0", okHandler(&drainHits))
	_, repLive := fakeReplica(t, "r1", okHandler(&liveHits))
	pool := &staticPool{reps: []ReplicaInfo{repDrain, repLive}}
	pool.setReady("r0", false) // draining: probe saw 503
	d := newTestDispatcher(t, DispatcherConfig{Pool: pool, HedgeDelay: -1})

	for i := 0; i < 20; i++ {
		w := classify(t, d, `{"image":[0.`+strings.Repeat("3", i+1)+`]}`, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("req %d: status %d", i, w.Code)
		}
	}
	if drainHits.Load() != 0 {
		t.Fatalf("draining replica received %d requests", drainHits.Load())
	}
	if liveHits.Load() != 20 {
		t.Fatalf("live replica received %d/20", liveHits.Load())
	}
}

func TestRouterMetricsText(t *testing.T) {
	_, rep := fakeReplica(t, "r0", okHandler(nil))
	pool := &staticPool{reps: []ReplicaInfo{rep}}
	d := newTestDispatcher(t, DispatcherConfig{Pool: pool})
	d.Metrics().Snapshot = pool.Snapshot
	if w := classify(t, d, `{"image":[0.5]}`, nil); w.Code != http.StatusOK {
		t.Fatalf("classify: %d", w.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	d.Handler().ServeHTTP(w, req)
	text := w.Body.String()
	for _, want := range []string{
		`router_replica_requests_total{replica="r0",code="200"} 1`,
		`router_retries_total 0`,
		`router_hedges_total 0`,
		`router_replica_ready{replica="r0"} 1`,
		`router_request_latency_seconds_count 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestRouterReadyzAndReplicas(t *testing.T) {
	_, rep := fakeReplica(t, "r0", okHandler(nil))
	pool := &staticPool{reps: []ReplicaInfo{rep}}
	d := newTestDispatcher(t, DispatcherConfig{Pool: pool})

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		d.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}
	if w := get("/readyz"); w.Code != http.StatusOK {
		t.Fatalf("/readyz with ready replica: %d", w.Code)
	}
	pool.setReady("r0", false)
	if w := get("/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with no ready replicas: %d", w.Code)
	}
	w := get("/v1/replicas")
	var reps []ReplicaInfo
	if err := json.Unmarshal(w.Body.Bytes(), &reps); err != nil || len(reps) != 1 {
		t.Fatalf("/v1/replicas: err=%v, body %s", err, w.Body.String())
	}
	pool.setReady("r0", true)
	if w := get("/v1/model"); w.Code != http.StatusOK || !bytes.Contains(w.Body.Bytes(), []byte(`"classes"`)) {
		t.Fatalf("/v1/model proxy: %d %s", w.Code, w.Body.String())
	}
}
