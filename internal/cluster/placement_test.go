package cluster

import (
	"fmt"
	"testing"

	"pimcapsnet/internal/distribute"
)

func mkReplicas(n int, outstanding ...int) []ReplicaInfo {
	out := make([]ReplicaInfo, n)
	for i := range out {
		out[i] = ReplicaInfo{Name: fmt.Sprintf("r%d", i), URL: "http://x", Ready: true}
		if i < len(outstanding) {
			out[i].Load.QueueDepth = outstanding[i]
		}
	}
	return out
}

func TestKeyDeterministic(t *testing.T) {
	a, b := Key([]byte("image-bytes")), Key([]byte("image-bytes"))
	if a != b {
		t.Fatalf("Key not deterministic: %x vs %x", a, b)
	}
	if Key([]byte("other")) == a {
		t.Fatalf("distinct bodies collided (possible but astronomically unlikely for these fixtures)")
	}
}

func TestHomeStableAcrossLoad(t *testing.T) {
	reps := mkReplicas(3)
	key := Key([]byte("some request"))
	h := Home(key, reps)
	if h < 0 || h >= len(reps) {
		t.Fatalf("Home = %d out of range", h)
	}
	// Load must not move the home: affinity is pure hash.
	loaded := mkReplicas(3, 100, 100, 100)
	if g := Home(key, loaded); g != h {
		t.Fatalf("Home moved with load: %d -> %d", h, g)
	}
}

func TestHomeMinimalDisruption(t *testing.T) {
	// Rendezvous property: removing one replica remaps only the keys it
	// owned; every other key keeps its home.
	reps := mkReplicas(4)
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := Key([]byte(fmt.Sprintf("req-%d", i)))
		before := reps[Home(key, reps)].Name
		if before == "r3" {
			continue // its keys must remap, nothing to check
		}
		after := reps[:3][Home(key, reps[:3])].Name
		if after == before {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed replica changed home (kept %d)", moved, kept)
	}
	if kept == 0 {
		t.Fatalf("degenerate fixture: no keys homed on surviving replicas")
	}
}

func TestPickPrefersHomeWhenEven(t *testing.T) {
	reps := mkReplicas(3, 2, 2, 2)
	var p Placer
	for i := 0; i < 50; i++ {
		key := Key([]byte(fmt.Sprintf("req-%d", i)))
		if got, home := p.Pick(key, reps), Home(key, reps); got != home {
			t.Fatalf("key %d: Pick=%d, want home %d under even load", i, got, home)
		}
	}
}

func TestPickSpillsFromOverloadedHome(t *testing.T) {
	// With Alpha=Beta=1 and MovePenalty=2, the home replica loses once
	// its outstanding excess exceeds 2: score_home = 1/(E_h+1) vs
	// score_peer = 1/(E_p+1+2).
	var key uint64
	reps := mkReplicas(3)
	for i := 0; ; i++ {
		key = Key([]byte(fmt.Sprintf("probe-%d", i)))
		if Home(key, reps) == 0 {
			break
		}
	}
	var p Placer
	cases := []struct {
		homeLoad int
		wantHome bool
	}{
		{0, true},  // idle home wins
		{2, true},  // excess == MovePenalty: tie resolves to home
		{3, false}, // excess > MovePenalty: spill
		{50, false},
	}
	for _, tc := range cases {
		reps := mkReplicas(3, tc.homeLoad, 0, 0)
		got := p.Pick(key, reps)
		if tc.wantHome && got != 0 {
			t.Errorf("homeLoad=%d: picked r%d, want home r0", tc.homeLoad, got)
		}
		if !tc.wantHome && got == 0 {
			t.Errorf("homeLoad=%d: stayed on overloaded home", tc.homeLoad)
		}
	}
}

func TestPickHonorsScorerWeights(t *testing.T) {
	var key uint64
	reps := mkReplicas(2)
	for i := 0; ; i++ {
		key = Key([]byte(fmt.Sprintf("probe-%d", i)))
		if Home(key, reps) == 0 {
			break
		}
	}
	// A movement-dominant scorer (huge Beta) must pin traffic to the
	// home no matter the load skew.
	sticky := Placer{Scorer: distribute.Scorer{Alpha: 1, Beta: 1e9}, MovePenalty: 1}
	if got := sticky.Pick(key, mkReplicas(2, 1000, 0)); got != 0 {
		t.Fatalf("movement-dominant scorer left home: picked r%d", got)
	}
	// A work-dominant scorer (tiny Beta) must chase the idle replica.
	spill := Placer{Scorer: distribute.Scorer{Alpha: 1, Beta: 1e-9}, MovePenalty: 1}
	if got := spill.Pick(key, mkReplicas(2, 1000, 0)); got != 1 {
		t.Fatalf("work-dominant scorer stayed on loaded home: picked r%d", got)
	}
}

func TestPickEmptyAndSingle(t *testing.T) {
	var p Placer
	if got := p.Pick(1, nil); got != -1 {
		t.Fatalf("Pick on empty = %d, want -1", got)
	}
	if got := Home(1, nil); got != -1 {
		t.Fatalf("Home on empty = %d, want -1", got)
	}
	if got := p.Pick(1, mkReplicas(1, 9999)); got != 0 {
		t.Fatalf("Pick on singleton = %d, want 0", got)
	}
}
