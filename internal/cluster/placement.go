package cluster

import (
	"hash/fnv"
	"sort"

	"pimcapsnet/internal/distribute"
)

// Placer ranks ready replicas for a request with the paper's
// inter-vault scoring S = 1/(αE + βM) (Eqs. 6–12), generalized to
// replica placement:
//
//   - E (largest per-vault workload, Eqs. 7/9/11) is the candidate
//     replica's outstanding requests plus the one being placed — the
//     work the slowest "vault" would hold if the request landed there.
//   - M (inter-vault movement, Eqs. 8/10/12) is zero on the request
//     key's rendezvous-hash home replica and MovePenalty elsewhere:
//     over loopback HTTP nothing crosses a crossbar, but leaving the
//     home replica forfeits its arena/cache warmth and connection
//     reuse, which is the same locality cost in different units (see
//     DESIGN.md §8).
//
// Maximizing S (Eq. 12's argmax via distribute.Scorer.ScoreEM) yields
// consistent-hash affinity with least-loaded spill: the home replica
// wins while its load excess stays under β·MovePenalty/α, and an
// overloaded home loses to an idler peer beyond that.
type Placer struct {
	// Scorer supplies α (work → cost) and β (movement → cost). The
	// zero value is replaced by {Alpha: 1, Beta: 1}, which prices
	// MovePenalty directly in outstanding-request units.
	Scorer distribute.Scorer
	// MovePenalty is the movement charge for leaving the home replica,
	// in the same unit as outstanding requests under the default
	// scorer. Default 2: spill only when the home replica holds more
	// than two extra requests — enough to keep affinity sticky under
	// even load without pinning traffic to a stalled replica.
	MovePenalty float64
}

// DefaultMovePenalty is the default movement charge (see
// Placer.MovePenalty).
const DefaultMovePenalty = 2

func (p Placer) withDefaults() Placer {
	if p.Scorer.Alpha == 0 && p.Scorer.Beta == 0 {
		p.Scorer = distribute.Scorer{Alpha: 1, Beta: 1}
	}
	if p.MovePenalty == 0 {
		p.MovePenalty = DefaultMovePenalty
	}
	return p
}

// Key hashes a request body to its placement key. Equal bodies hash
// equal, so repeated classifications of the same image ride the same
// replica's warm state.
func Key(body []byte) uint64 {
	h := fnv.New64a()
	h.Write(body)
	return h.Sum64()
}

// rendezvous returns the hash weight of placing key on the named
// replica (highest-random-weight hashing). Rendezvous hashing keeps
// the affinity map minimal-disruption under membership change: a
// replica leaving remaps only its own keys, exactly what drain-aware
// rebalancing needs.
func rendezvous(key uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	for i := range b {
		b[i] = byte(key >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// Home returns the key's affinity replica among candidates (the
// rendezvous-hash winner), or -1 for an empty slice.
func Home(key uint64, candidates []ReplicaInfo) int {
	best, bestW := -1, uint64(0)
	for i, r := range candidates {
		if w := rendezvous(key, r.Name); best == -1 || w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// Pick returns the index into candidates of the replica the request
// should land on: every candidate is scored with ScoreEM and the
// argmax wins. Candidates are considered in descending rendezvous
// weight with a strictly-greater comparison, so score ties resolve to
// the key's hash preference (home first) and the choice is
// deterministic. Returns -1 for an empty slice.
func (p Placer) Pick(key uint64, candidates []ReplicaInfo) int {
	p = p.withDefaults()
	if len(candidates) == 0 {
		return -1
	}
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return rendezvous(key, candidates[order[a]].Name) > rendezvous(key, candidates[order[b]].Name)
	})
	home := order[0] // highest rendezvous weight = affinity home
	best, bestScore := -1, 0.0
	for _, i := range order {
		e := candidates[i].Load.Outstanding() + 1 // the request being placed
		m := p.MovePenalty
		if i == home {
			m = 0
		}
		if s := p.Scorer.ScoreEM(e, m); best == -1 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}
