package pipeline

import (
	"testing"
	"testing/quick"
)

func TestTwoStageKnown(t *testing.T) {
	// host 2s, device 3s, 4 batches: 2 + 3·3 + 3 = 14.
	if got := TwoStage(2, 3, 4); got != 14 {
		t.Fatalf("TwoStage = %v, want 14", got)
	}
	// Single batch degenerates to serial.
	if got := TwoStage(2, 3, 1); got != 5 {
		t.Fatalf("TwoStage(n=1) = %v, want 5", got)
	}
	if TwoStage(2, 3, 0) != 0 {
		t.Fatal("zero batches must take zero time")
	}
}

func TestSerial(t *testing.T) {
	if Serial(2, 3, 4) != 20 {
		t.Fatalf("Serial = %v, want 20", Serial(2, 3, 4))
	}
}

func TestPipelineNeverSlowerThanSerial(t *testing.T) {
	f := func(h, d float64, n uint8) bool {
		if h < 0 {
			h = -h
		}
		if d < 0 {
			d = -d
		}
		if h != h || d != d || h > 1e12 || d > 1e12 { // NaN/huge guard
			return true
		}
		nn := int(n%20) + 1
		return TwoStage(h, d, nn) <= Serial(h, d, nn)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineBoundedBySlowerStage(t *testing.T) {
	// For large n the per-batch cost approaches max(host, device).
	n := 1000
	got := TwoStage(2, 5, n) / float64(n)
	if got < 5 || got > 5.01 {
		t.Fatalf("steady-state per-batch %v, want ≈5", got)
	}
}

func TestUtilization(t *testing.T) {
	hostU, devU := Utilization(2, 3, 100)
	if devU < 0.98 || devU > 1 {
		t.Fatalf("slower stage utilization %v, want ≈1", devU)
	}
	if hostU < 0.6 || hostU > 0.7 {
		t.Fatalf("faster stage utilization %v, want ≈2/3", hostU)
	}
	h0, d0 := Utilization(0, 0, 0)
	if h0 != 0 || d0 != 0 {
		t.Fatal("degenerate utilization must be zero")
	}
}
