// Package pipeline models PIM-CapsNet's host/HMC batch pipeline
// (paper §4): while the HMC executes batch k's routing procedure, the
// host GPU processes batch k+1's Conv/PrimaryCaps layers and batch
// k−1's FC decoder, so steady-state throughput is set by the slower of
// the two sides.
package pipeline

// TwoStage returns the makespan of n batches through a two-stage
// pipeline with per-batch stage times host and device: fill with the
// first host stage, stream at max(host, device), drain with the last
// device stage.
func TwoStage(host, device float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	slow := host
	if device > slow {
		slow = device
	}
	return host + slow*float64(n-1) + device
}

// Serial returns the unpipelined makespan (All-in-one-device
// execution or no overlap).
func Serial(host, device float64, n int) float64 {
	return (host + device) * float64(n)
}

// Utilization reports each side's busy fraction of the pipelined
// makespan.
func Utilization(host, device float64, n int) (hostU, deviceU float64) {
	total := TwoStage(host, device, n)
	if total == 0 {
		return 0, 0
	}
	return host * float64(n) / total, device * float64(n) / total
}
