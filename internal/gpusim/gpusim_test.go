//pimcaps:bitexact

package gpusim

import (
	"testing"

	"pimcapsnet/internal/workload"
)

func allBench() []workload.Benchmark { return workload.Benchmarks }

func TestDeviceCatalog(t *testing.T) {
	p100 := TeslaP100()
	if p100.Cores != 3584 || p100.MemBandwidth != 320e9 {
		t.Fatalf("P100 spec wrong: %+v", p100)
	}
	if got := len(CharacterizationGPUs()); got != 4 {
		t.Fatalf("CharacterizationGPUs = %d devices", got)
	}
	if got := len(BandwidthGPUs()); got != 4 {
		t.Fatalf("BandwidthGPUs = %d devices", got)
	}
	// Fig. 6 device ordering by on-chip storage.
	prev := 0.0
	for _, d := range CharacterizationGPUs() {
		if d.OnChipBytes <= prev {
			t.Fatalf("CharacterizationGPUs not ordered by on-chip storage at %s", d.Name)
		}
		prev = d.OnChipBytes
	}
	// Fig. 7 device ordering by bandwidth.
	prev = 0
	for _, d := range BandwidthGPUs() {
		if d.MemBandwidth <= prev {
			t.Fatalf("BandwidthGPUs not ordered by bandwidth at %s", d.Name)
		}
		prev = d.MemBandwidth
	}
	if TeslaP100().String() == "" {
		t.Fatal("empty device string")
	}
}

func TestRPDominatesInference(t *testing.T) {
	// Fig. 4's headline: the routing procedure is the bottleneck —
	// on average ≈ 3/4 of inference time, and > 60% for every
	// benchmark.
	d := TeslaP100()
	var avg float64
	for _, b := range allBench() {
		share := d.Run(b).RPShare()
		if share < 0.6 || share > 0.99 {
			t.Fatalf("%s RP share %.2f outside [0.6, 0.99]", b.Name, share)
		}
		avg += share
	}
	avg /= float64(len(allBench()))
	if avg < 0.70 || avg < 0.6 || avg > 0.88 {
		t.Fatalf("average RP share %.3f, paper reports 0.7462", avg)
	}
}

func TestLayerSharesSumToOne(t *testing.T) {
	d := TeslaP100()
	for _, b := range allBench() {
		r := d.Run(b)
		sum := r.LayerShare(workload.LayerConv) + r.LayerShare(workload.LayerLCaps) +
			r.LayerShare(workload.LayerHCaps) + r.LayerShare(workload.LayerFC)
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s layer shares sum to %v", b.Name, sum)
		}
	}
}

func TestBatchSizeGrowsTimeAndRPShare(t *testing.T) {
	// Observation 1 (Fig. 4): MN1 → MN3 increases both total time and
	// the RP proportion.
	d := TeslaP100()
	mn1, _ := workload.ByName("Caps-MN1")
	mn2, _ := workload.ByName("Caps-MN2")
	mn3, _ := workload.ByName("Caps-MN3")
	t1, t2, t3 := d.Run(mn1), d.Run(mn2), d.Run(mn3)
	if !(t1.Total() < t2.Total() && t2.Total() < t3.Total()) {
		t.Fatalf("time not increasing with batch size: %v %v %v", t1.Total(), t2.Total(), t3.Total())
	}
	if !(t1.RPShare() < t3.RPShare()) {
		t.Fatalf("RP share not expanding with batch size: %v vs %v", t1.RPShare(), t3.RPShare())
	}
}

func TestNetworkScalingGrowsTime(t *testing.T) {
	// Observation 2: time grows with network size (L caps, H caps,
	// iterations).
	d := TeslaP100()
	for _, pair := range [][2]string{
		{"Caps-CF1", "Caps-CF3"}, // more L capsules
		{"Caps-EN1", "Caps-EN3"}, // more H capsules
		{"Caps-SV1", "Caps-SV3"}, // more iterations
	} {
		a, _ := workload.ByName(pair[0])
		b, _ := workload.ByName(pair[1])
		if d.Run(a).Total() >= d.Run(b).Total() {
			t.Fatalf("%s should be slower than %s", pair[1], pair[0])
		}
	}
}

func TestStallBreakdownMatchesPaperShape(t *testing.T) {
	// Fig. 5: memory access is the largest stall contributor
	// (paper avg 44.64%) with synchronization second (34.45%).
	d := TeslaP100()
	var mem, sync float64
	for _, b := range allBench() {
		s := d.RPStalls(b)
		total := s.Memory + s.Sync + s.Resource + s.InstFetch + s.Other
		if total < 0.999 || total > 1.001 {
			t.Fatalf("%s stall fractions sum to %v", b.Name, total)
		}
		if s.Memory <= s.Sync {
			t.Fatalf("%s memory stalls (%.2f) must exceed sync stalls (%.2f)", b.Name, s.Memory, s.Sync)
		}
		mem += s.Memory
		sync += s.Sync
	}
	mem /= float64(len(allBench()))
	sync /= float64(len(allBench()))
	if mem < 0.35 || mem > 0.60 {
		t.Fatalf("average memory stall share %.3f, paper reports 0.4464", mem)
	}
	if sync < 0.25 || sync > 0.45 {
		t.Fatalf("average sync stall share %.3f, paper reports 0.3445", sync)
	}
}

func TestUtilizationShape(t *testing.T) {
	// §3.2: ALU lightly utilized (38.6% avg) while LDST is stressed
	// (85.9% avg).
	d := TeslaP100()
	var alu, ldst float64
	for _, b := range allBench() {
		a, l := d.Utilization(b)
		if a >= l {
			t.Fatalf("%s ALU util %.2f not below LDST util %.2f", b.Name, a, l)
		}
		alu += a
		ldst += l
	}
	alu /= float64(len(allBench()))
	ldst /= float64(len(allBench()))
	if alu < 0.2 || alu > 0.55 {
		t.Fatalf("avg ALU util %.3f, paper reports 0.386", alu)
	}
	if ldst < 0.7 || ldst > 1.0 {
		t.Fatalf("avg LDST util %.3f, paper reports 0.859", ldst)
	}
}

func TestIntermediateRatiosMatchFig6a(t *testing.T) {
	// Fig. 6a: ratios range from ~40× to ~300× across benchmarks and
	// GPUs, and shrink as on-chip storage grows.
	for _, b := range allBench() {
		prev := 1e18
		for _, d := range CharacterizationGPUs() {
			r := d.IntermediateRatio(b)
			if r < 2 || r > 500 {
				t.Fatalf("%s on %s ratio %.0f out of plausible range", b.Name, d.Name, r)
			}
			if r >= prev {
				t.Fatalf("ratio must shrink with larger storage (%s)", d.Name)
			}
			prev = r
		}
	}
	// Spot value: Caps-MN3 on P100 (5.31MB): û ≈ 221MB → ratio ≈ 42×.
	mn3, _ := workload.ByName("Caps-MN3")
	r := TeslaP100().IntermediateRatio(mn3)
	if r < 35 || r > 50 {
		t.Fatalf("Caps-MN3/P100 ratio %.1f, expected ≈ 42", r)
	}
}

func TestOnChipScalingModest(t *testing.T) {
	// Fig. 6b: growing on-chip storage 1.73MB → 16MB buys only a
	// modest RP speedup (paper ≈ 11%; must stay under 1.3×).
	base := TeslaP100()
	var sum float64
	for _, b := range allBench() {
		small := base.WithOnChip(1.73 * (1 << 20)).RPTime(b).Total()
		large := base.WithOnChip(16 << 20).RPTime(b).Total()
		sp := small / large
		if sp < 1.0 {
			t.Fatalf("%s: larger cache slowed RP down (%.3f)", b.Name, sp)
		}
		sum += sp
	}
	avg := sum / float64(len(allBench()))
	if avg < 1.02 || avg > 1.3 {
		t.Fatalf("avg on-chip scaling speedup %.3f, paper reports ≈ 1.11", avg)
	}
}

func TestBandwidthScalingModest(t *testing.T) {
	// Fig. 7: 288 → 897 GB/s buys only ≈ 26% on RP.
	k40 := TeslaK40m()
	var sum float64
	for _, b := range allBench() {
		sp := k40.RPTime(b).Total() / TeslaV100().RPTime(b).Total()
		sum += sp
	}
	avg := sum / float64(len(allBench()))
	if avg < 1.1 || avg > 1.6 {
		t.Fatalf("avg HBM2-vs-GDDR5 RP speedup %.3f, paper reports ≈ 1.26", avg)
	}
	// Monotone across the four memories.
	b := allBench()[0]
	prev := 1e18
	for _, d := range BandwidthGPUs() {
		tt := d.RPTime(b).Total()
		if tt >= prev {
			t.Fatalf("RP time not improving with bandwidth at %s", d.Name)
		}
		prev = tt
	}
}

func TestIdealCacheBarelyHelps(t *testing.T) {
	// GPU-ICP buys ~1% (paper: 1.14%) — the intermediates are simply
	// too large for any replacement policy.
	base := TeslaP100()
	icp := base
	icp.IdealCache = true
	var sum float64
	for _, b := range allBench() {
		sum += base.RPTime(b).Total() / icp.RPTime(b).Total()
	}
	avg := sum / float64(len(allBench()))
	if avg < 1.0 || avg > 1.06 {
		t.Fatalf("GPU-ICP speedup %.4f, paper reports 1.0114", avg)
	}
}

func TestLayerTimeTotalOverlapsComputeAndMemory(t *testing.T) {
	lt := LayerTime{Compute: 2, Memory: 5, Sync: 1, Launch: 0.5}
	if lt.Total() != 6.5 {
		t.Fatalf("Total = %v, want 6.5 (max(2,5)+1+0.5)", lt.Total())
	}
	lt = LayerTime{Compute: 7, Memory: 5}
	if lt.Total() != 7 {
		t.Fatalf("Total = %v, want 7", lt.Total())
	}
}

func TestRunAccounting(t *testing.T) {
	d := TeslaP100()
	b := allBench()[0]
	r := d.Run(b)
	if r.Batches != RunBatches {
		t.Fatalf("Batches = %d", r.Batches)
	}
	if r.Total() != r.BatchTotal()*float64(RunBatches) {
		t.Fatal("Total must be BatchTotal × Batches")
	}
	if r.LayerShare(workload.LayerKind(99)) != 0 {
		t.Fatal("unknown layer kind must have zero share")
	}
}

func TestAbsoluteTimesPlausible(t *testing.T) {
	// Fig. 4's red line spans roughly 1–16 seconds for 100-batch
	// runs; the model must stay in that order of magnitude.
	d := TeslaP100()
	for _, b := range allBench() {
		total := d.Run(b).Total()
		if total < 0.5 || total > 60 {
			t.Fatalf("%s total %v s implausible", b.Name, total)
		}
	}
}

func TestWithMemoryAndOnChipOverrides(t *testing.T) {
	d := TeslaP100().WithMemory("HBM2", 897e9).WithOnChip(16 << 20)
	if d.MemName != "HBM2" || d.MemBandwidth != 897e9 || d.OnChipBytes != 16<<20 {
		t.Fatalf("overrides not applied: %+v", d)
	}
	// The original value object is unchanged (value semantics).
	if TeslaP100().MemBandwidth != 320e9 {
		t.Fatal("WithMemory mutated the prototype")
	}
}

func TestRPTimeComponentsPositive(t *testing.T) {
	d := TeslaP100()
	for _, b := range allBench() {
		lt := d.RPTime(b)
		if lt.Compute <= 0 || lt.Memory <= 0 || lt.Sync <= 0 || lt.Launch <= 0 {
			t.Fatalf("%s: non-positive component %+v", b.Name, lt)
		}
		if lt.Total() < lt.Memory {
			t.Fatalf("%s: total below memory time", b.Name)
		}
	}
}

func TestPressureGrowsWithBatch(t *testing.T) {
	d := TeslaP100()
	mn1, _ := workload.ByName("Caps-MN1")
	mn3, _ := workload.ByName("Caps-MN3")
	if d.rpPressure(mn3) <= d.rpPressure(mn1) {
		t.Fatal("capacity pressure must grow with batch size")
	}
	if d.rpPressure(mn1) < 1 {
		t.Fatal("pressure multiplier below 1")
	}
}
