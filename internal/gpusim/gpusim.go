// Package gpusim is an analytical timing model of CapsNet inference on
// GPUs, reproducing the paper's characterization study (§3, Figs. 4–7).
//
// The model is first-order and operation-analytic: layer times follow
// from FLOP counts, off-chip traffic, kernel-launch serialization and
// barrier-synchronization costs, with the routing procedure's traffic
// expanded the way an eager deep-learning framework executes it
// (broadcast temporaries materialized per iteration, intermediates
// re-streamed because they exceed on-chip storage — the paper's §3.2
// root causes). Absolute times are calibrated to the same order of
// magnitude as the paper's P100 measurements; the experiments compare
// ratios, which is what the characterization figures report.
package gpusim

import (
	"fmt"

	"pimcapsnet/internal/workload"
)

// Device describes a GPU configuration.
type Device struct {
	Name string
	// Cores and ClockHz define peak FP32 throughput (2·cores·clock,
	// counting FMA as two operations).
	Cores   int
	ClockHz float64
	// OnChipBytes is the total on-chip storage (L1 + shared + L2),
	// the denominator of Fig. 6a.
	OnChipBytes float64
	// MemBandwidth is the off-chip bandwidth in bytes/s and MemName
	// the memory technology label (Fig. 7).
	MemBandwidth float64
	MemName      string
	// MemCapacity is the device memory size, which sets the
	// capacity-pressure penalty for large routing temporaries.
	MemCapacity float64
	// IdealCache models the GPU-ICP design point: an oracle
	// replacement policy that doubles the effectively resident
	// fraction of routing intermediates (the paper finds this buys
	// ~1% — the intermediates are simply too large).
	IdealCache bool
}

// Calibration constants shared by all devices. They model the software
// stack (PyTorch + cuDNN) rather than the silicon and were fitted once
// against the paper's published P100 ratios (see EXPERIMENTS.md).
const (
	// convEff is the achieved fraction of peak FLOPs for cuDNN
	// convolutions and GEMMs (large 9×9 kernels, no tensor cores).
	convEff = 0.42
	// rpEff is the achieved fraction of peak FLOPs inside routing
	// kernels (unfused elementwise + reduction ops).
	rpEff = 0.3
	// convBWEff / rpBWEff are achieved fractions of peak memory
	// bandwidth (routing's broadcast/strided access patterns coalesce
	// poorly).
	convBWEff = 0.85
	rpBWEff   = 0.5
	// iterUhatStreams counts û-sized streams the framework moves per
	// routing iteration: Eq. 2 materializes c·û (write+read) and
	// re-reads û, Eq. 4 does the same for v·û (≈ 3.5 streams each).
	iterUhatStreams = 4.0
	// syncCost is the serialized cost of one barrier-style
	// aggregation tile (shared-memory reduction wave).
	syncCost = 1.6e-6
	// kernelLaunch is the host-side dispatch cost per kernel.
	kernelLaunch = 30e-6
	// tempFootprintFactor sizes the routing iteration's transient
	// allocations relative to û (broadcast temporaries plus the live
	// copies of û itself).
	tempFootprintFactor = 11.0
	// pressureKnee shapes the allocator/capacity penalty
	// 1/(1 − k·f)² as footprint f approaches device memory.
	pressureKnee = 0.5
)

// Predefined devices (Table 4 host plus the characterization GPUs of
// Figs. 6 and 7).
func TeslaP100() Device {
	return Device{Name: "Tesla P100", Cores: 3584, ClockHz: 1190e6,
		OnChipBytes: 5.31 * (1 << 20), MemBandwidth: 320e9, MemName: "HBM",
		MemCapacity: 8 << 30}
}
func TeslaK40m() Device {
	return Device{Name: "Tesla K40m", Cores: 2880, ClockHz: 745e6,
		OnChipBytes: 1.73 * (1 << 20), MemBandwidth: 288e9, MemName: "GDDR5",
		MemCapacity: 12 << 30}
}
func GTX1080Ti() Device {
	return Device{Name: "GTX 1080Ti", Cores: 3584, ClockHz: 1481e6,
		OnChipBytes: 5.06 * (1 << 20), MemBandwidth: 484e9, MemName: "GDDR5X",
		MemCapacity: 11 << 30}
}
func RTX2080Ti() Device {
	return Device{Name: "RTX 2080Ti", Cores: 4352, ClockHz: 1545e6,
		OnChipBytes: 9.75 * (1 << 20), MemBandwidth: 616e9, MemName: "GDDR6",
		MemCapacity: 11 << 30}
}
func TeslaV100() Device {
	return Device{Name: "Tesla V100", Cores: 5120, ClockHz: 1455e6,
		OnChipBytes: 16 << 20, MemBandwidth: 897e9, MemName: "HBM2",
		MemCapacity: 16 << 30}
}

// CharacterizationGPUs returns the four GPUs of Fig. 6 (A–D ordered by
// on-chip storage).
func CharacterizationGPUs() []Device {
	return []Device{TeslaK40m(), TeslaP100(), RTX2080Ti(), TeslaV100()}
}

// BandwidthGPUs returns the four GPUs of Fig. 7 ordered by memory
// bandwidth.
func BandwidthGPUs() []Device {
	return []Device{TeslaK40m(), GTX1080Ti(), RTX2080Ti(), TeslaV100()}
}

// WithOnChip returns a copy of d with the given on-chip storage (used
// by the Fig. 6b isolation sweep).
func (d Device) WithOnChip(bytes float64) Device {
	d.OnChipBytes = bytes
	return d
}

// WithMemory returns a copy of d with the given memory system (used by
// the Fig. 7 isolation sweep).
func (d Device) WithMemory(name string, bandwidth float64) Device {
	d.MemName = name
	d.MemBandwidth = bandwidth
	return d
}

// PeakFLOPS returns the device's peak FP32 rate.
func (d Device) PeakFLOPS() float64 { return 2 * float64(d.Cores) * d.ClockHz }

// LayerTime is the simulated per-batch execution time of one layer,
// decomposed into its components (seconds).
type LayerTime struct {
	Kind    workload.LayerKind
	Compute float64 // arithmetic pipeline busy time
	Memory  float64 // off-chip transfer time
	Sync    float64 // barrier/aggregation serialization
	Launch  float64 // kernel dispatch serialization
}

// Total returns the layer's wall time: compute overlaps memory
// (whichever dominates), synchronization and launches serialize.
func (t LayerTime) Total() float64 {
	busy := t.Compute
	if t.Memory > busy {
		busy = t.Memory
	}
	return busy + t.Sync + t.Launch
}

// convLikeTime models a host layer (Conv, PrimaryCaps, FC) from its
// workload cost.
func (d Device) convLikeTime(c workload.LayerCost) LayerTime {
	return LayerTime{
		Kind:    c.Kind,
		Compute: c.FLOPs / (d.PeakFLOPS() * convEff),
		Memory:  (c.BytesIn + c.BytesOut) / (d.MemBandwidth * convBWEff),
		Sync:    c.SyncOps * syncCost,
		Launch:  c.Kernels * kernelLaunch,
	}
}

// rpTraffic returns the routing procedure's off-chip bytes per batch
// under this device's cache.
func (d Device) rpTraffic(b workload.Benchmark) float64 {
	vars := b.RPVars()
	onChip := d.OnChipBytes
	if d.IdealCache {
		onChip *= 2 // oracle replacement keeps the most-reused half-set
	}
	resident := onChip / vars.Total()
	if resident > 1 {
		resident = 1
	}
	miss := 1 - resident
	uIn := float64(b.BatchSize*b.NumL*b.DimL) * workload.WordBytes
	compulsory := uIn + vars.Weights + vars.UHat + vars.V
	perIter := iterUhatStreams*vars.UHat + 2*(vars.S+vars.V+vars.B+vars.C)
	return compulsory + float64(b.Iters)*perIter*miss
}

// rpPressure returns the capacity-pressure multiplier on routing
// memory time: transient broadcast temporaries approach device memory
// at large batch/network sizes, degrading allocator and DRAM locality
// superlinearly (the paper's Observation 1: batching does not help and
// total time grows with batch size).
func (d Device) rpPressure(b workload.Benchmark) float64 {
	f := tempFootprintFactor * b.RPVars().UHat / d.MemCapacity
	if f > pressureKnee {
		f = pressureKnee
	}
	x := 1 - pressureKnee*f
	return 1 / (x * x)
}

// RPTime models the routing procedure for one batch.
func (d Device) RPTime(b workload.Benchmark) LayerTime {
	cost := b.RPCost(d.OnChipBytes)
	// One barrier wave per 256-element reduction tile of the û-sized
	// aggregations in Eqs. 2 and 4; larger on-chip storage keeps more
	// partial sums resident and shortens the waves.
	resident := d.OnChipBytes / b.RPVars().Total()
	if resident > 1 {
		resident = 1
	}
	syncScale := 0.7 + 0.3*(1-resident)
	syncOps := syncScale * float64(b.Iters) * float64(b.BatchSize*b.NumL*b.NumH) / 256
	return LayerTime{
		Kind:    workload.LayerHCaps,
		Compute: cost.FLOPs / (d.PeakFLOPS() * rpEff),
		Memory:  d.rpTraffic(b) * d.rpPressure(b) / (d.MemBandwidth * rpBWEff),
		Sync:    syncOps * syncCost,
		Launch:  cost.Kernels * kernelLaunch,
	}
}

// BatchTimes returns the per-batch time of each CapsNet stage in
// network order (Conv, L Caps, H Caps/RP, FC).
func (d Device) BatchTimes(b workload.Benchmark) []LayerTime {
	return []LayerTime{
		d.convLikeTime(b.ConvCost()),
		d.convLikeTime(b.PrimaryCost()),
		d.RPTime(b),
		d.convLikeTime(b.FCCost()),
	}
}

// InferenceRun summarizes a fixed-batch-count inference run (the
// paper's Fig. 4 reports 100-batch runs; see EXPERIMENTS.md).
type InferenceRun struct {
	Device  string
	Bench   string
	Batches int
	Layers  []LayerTime // per batch
}

// RunBatches is the number of batch inferences per characterization
// run.
const RunBatches = 100

// Run simulates RunBatches batch inferences of b on d.
func (d Device) Run(b workload.Benchmark) InferenceRun {
	return InferenceRun{Device: d.Name, Bench: b.Name, Batches: RunBatches, Layers: d.BatchTimes(b)}
}

// BatchTotal returns the per-batch inference time.
func (r InferenceRun) BatchTotal() float64 {
	var t float64
	for _, l := range r.Layers {
		t += l.Total()
	}
	return t
}

// Total returns the whole-run inference time.
func (r InferenceRun) Total() float64 { return r.BatchTotal() * float64(r.Batches) }

// LayerShare returns the fraction of inference time spent in the given
// layer kind.
func (r InferenceRun) LayerShare(kind workload.LayerKind) float64 {
	total := r.BatchTotal()
	if total == 0 {
		return 0
	}
	for _, l := range r.Layers {
		if l.Kind == kind {
			return l.Total() / total
		}
	}
	return 0
}

// RPShare returns the routing procedure's fraction of inference time
// (the paper's headline 74.62% average).
func (r InferenceRun) RPShare() float64 { return r.LayerShare(workload.LayerHCaps) }

// StallBreakdown decomposes the routing procedure's pipeline-stall
// cycles (Fig. 5). Fractions sum to 1.
type StallBreakdown struct {
	Memory, Sync, Resource, InstFetch, Other float64
}

// RPStalls attributes RP pipeline stalls on this device: memory stalls
// are transfer time not hidden by compute, synchronization stalls come
// from aggregation barriers, resource stalls from occupancy limits on
// the arithmetic pipeline, instruction fetch from the many small
// kernels.
func (d Device) RPStalls(b workload.Benchmark) StallBreakdown {
	t := d.RPTime(b)
	mem := t.Memory - t.Compute
	if mem < 0 {
		mem = 0
	}
	// Barrier waves stall warps on both shared/global memory
	// dependencies and explicit __syncthreads; profilers attribute
	// roughly 45% of that time to memory dependencies.
	mem += 0.45 * t.Sync
	sync := 0.55 * t.Sync
	resource := 0.1 * (mem + sync)
	fetch := t.Launch + 0.02*t.Sync
	other := 0.04 * (mem + sync + resource + fetch)
	total := mem + sync + resource + fetch + other
	return StallBreakdown{
		Memory:    mem / total,
		Sync:      sync / total,
		Resource:  resource / total,
		InstFetch: fetch / total,
		Other:     other / total,
	}
}

// Utilization reports the modeled busy fractions of the arithmetic
// (ALU) and load/store (LDST) pipelines during RP execution — the
// paper's §3.2 observation of 38.6% ALU vs 85.9% LDST on the P100.
func (d Device) Utilization(b workload.Benchmark) (alu, ldst float64) {
	t := d.RPTime(b)
	total := t.Total()
	if total == 0 {
		return 0, 0
	}
	// The arithmetic pipeline also issues address/index work during
	// memory phases and participates in reduction barriers.
	alu = (t.Compute + 0.25*t.Memory + 0.35*t.Sync) / total
	if alu > 1 {
		alu = 1
	}
	// The LDST pipeline also serves the barrier traffic through
	// shared memory.
	ldst = (t.Memory + 0.85*t.Sync) / total
	if ldst > 1 {
		ldst = 1
	}
	return alu, ldst
}

// IntermediateRatio returns Fig. 6a's ratio of RP intermediate-variable
// size to this device's on-chip storage.
func (d Device) IntermediateRatio(b workload.Benchmark) float64 {
	return b.RPVars().Total() / d.OnChipBytes
}

// String implements fmt.Stringer.
func (d Device) String() string {
	return fmt.Sprintf("%s (%d cores @ %.0f MHz, %.2f MB on-chip, %s %.0f GB/s)",
		d.Name, d.Cores, d.ClockHz/1e6, d.OnChipBytes/(1<<20), d.MemName, d.MemBandwidth/1e9)
}
