package fp32

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFastInvSqrtAccuracy(t *testing.T) {
	for _, x := range []float32{1e-6, 0.01, 0.25, 1, 2, 4, 100, 1e6} {
		got := float64(FastInvSqrt(x))
		want := 1 / math.Sqrt(float64(x))
		if RelError(got, want) > 0.035 {
			t.Fatalf("FastInvSqrt(%v) = %v, want %v (rel err %.2e)", x, got, want, RelError(got, want))
		}
	}
}

func TestFastInvSqrtNRAccuracy(t *testing.T) {
	for _, x := range []float32{1e-6, 0.01, 0.25, 1, 2, 4, 100, 1e6} {
		got := float64(FastInvSqrtNR(x))
		want := 1 / math.Sqrt(float64(x))
		if RelError(got, want) > 2e-3 {
			t.Fatalf("FastInvSqrtNR(%v) = %v, want %v (rel err %.2e)", x, got, want, RelError(got, want))
		}
	}
}

func TestFastInvSqrtEdgeCases(t *testing.T) {
	if !math.IsInf(float64(FastInvSqrt(0)), 1) {
		t.Fatal("FastInvSqrt(0) must be +Inf")
	}
	if !math.IsNaN(float64(FastInvSqrt(-1))) {
		t.Fatal("FastInvSqrt(-1) must be NaN")
	}
	if !math.IsInf(float64(FastInvSqrtNR(0)), 1) {
		t.Fatal("FastInvSqrtNR(0) must be +Inf")
	}
}

func TestFastInvSqrtPropertyPositiveRange(t *testing.T) {
	f := func(u uint32) bool {
		// Map to positive normal floats in (1e-30, 1e30).
		x := float32(math.Pow(10, float64(u%600)/10-30))
		got := float64(FastInvSqrt(x))
		want := 1 / math.Sqrt(float64(x))
		return RelError(got, want) < 0.035
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFastRecipAccuracy(t *testing.T) {
	for _, x := range []float32{1e-5, 0.1, 0.5, 1, 3, 7.5, 1000, 1e5, -2, -0.25} {
		got := float64(FastRecip(x))
		want := 1 / float64(x)
		if RelError(got, want) > 0.06 {
			t.Fatalf("FastRecip(%v) = %v, want %v (rel err %.3f)", x, got, want, RelError(got, want))
		}
	}
}

func TestFastRecipNRAccuracy(t *testing.T) {
	for _, x := range []float32{1e-5, 0.1, 0.5, 1, 3, 7.5, 1000, 1e5, -2, -0.25} {
		got := float64(FastRecipNR(x))
		want := 1 / float64(x)
		if RelError(got, want) > 1e-4 {
			t.Fatalf("FastRecipNR(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestFastRecipZero(t *testing.T) {
	if !math.IsInf(float64(FastRecip(0)), 1) {
		t.Fatal("FastRecip(0) must be +Inf")
	}
	if !math.IsInf(float64(FastRecipNR(0)), 1) {
		t.Fatal("FastRecipNR(0) must be +Inf")
	}
}

func TestFastRecipPreservesSign(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			return true
		}
		v := float32(x)
		if v == 0 || math.IsInf(float64(v), 0) {
			return true
		}
		r := FastRecip(v)
		return (v > 0) == (r > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFastDiv(t *testing.T) {
	for _, c := range [][2]float32{{6, 3}, {1, 7}, {-9, 4}, {5, -2.5}, {0.001, 0.003}} {
		got := float64(FastDivNR(c[0], c[1]))
		want := float64(c[0]) / float64(c[1])
		if RelError(got, want) > 1e-4 {
			t.Fatalf("FastDivNR(%v,%v) = %v, want %v", c[0], c[1], got, want)
		}
		if RelError(float64(FastDiv(c[0], c[1])), want) > 0.06 {
			t.Fatalf("FastDiv(%v,%v) too far off", c[0], c[1])
		}
	}
}

func TestApproxExpAccuracyWindow(t *testing.T) {
	// Inside the routing-logit window the paper cares about, relative
	// error must stay within ~9% (the truncating constant's worst
	// case); the recovery multiply lifts the mean back.
	for x := -10.0; x <= 10.0; x += 0.137 {
		got := float64(ApproxExp(float32(x)))
		want := math.Exp(x)
		if RelError(got, want) > 0.09 {
			t.Fatalf("ApproxExp(%v) = %v, want %v (rel err %.3f)", x, got, want, RelError(got, want))
		}
	}
}

func TestApproxExpUnderestimates(t *testing.T) {
	// The truncating assembly never exceeds the exact exponential —
	// this is the systematic bias the recovery multiply compensates.
	for x := -20.0; x <= 20.0; x += 0.0917 {
		got := float64(ApproxExp(float32(x)))
		want := math.Exp(x)
		if got > want*(1+1e-7) {
			t.Fatalf("ApproxExp(%v) = %v exceeds exact %v", x, got, want)
		}
	}
}

func TestApproxExpMonotone(t *testing.T) {
	prev := ApproxExp(-20)
	for x := float32(-20); x <= 20; x += 0.05 {
		v := ApproxExp(x)
		if v < prev {
			t.Fatalf("ApproxExp not monotone at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestApproxExpSaturation(t *testing.T) {
	if ApproxExp(-200) != 0 {
		t.Fatal("ApproxExp must underflow to 0 for very negative input")
	}
	if !math.IsInf(float64(ApproxExp(200)), 1) {
		t.Fatal("ApproxExp must saturate to +Inf for very large input")
	}
	if v := ApproxExp(0); RelError(float64(v), 1) > 0.09 {
		t.Fatalf("ApproxExp(0) = %v, want ~1", v)
	}
}

func TestApproxExpAlwaysNonNegative(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return ApproxExp(float32(x)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateFactorsNearOne(t *testing.T) {
	r := Calibrate(rand.New(rand.NewSource(42)), 10000)
	for name, f := range map[string]float32{"Exp": r.Exp, "InvSqrt": r.InvSqrt, "Recip": r.Recip} {
		if f < 0.9 || f > 1.1 {
			t.Fatalf("recovery factor %s = %v unexpectedly far from 1", name, f)
		}
	}
	// The exp approximation is a deliberate underestimate, so its
	// recovery factor must enlarge ("enlarging the results", §5.2.2).
	if r.Exp <= 1 {
		t.Fatalf("exp recovery factor %v must be > 1", r.Exp)
	}
	if Calibrate(nil, 0) != Identity {
		t.Fatal("zero-sample calibration must return Identity")
	}
}

func TestRecoveredExpBeatsRawApprox(t *testing.T) {
	// Over the calibration window the mean relative error with
	// recovery must be lower than without — this is the mechanism
	// behind Table 5's accuracy restoration.
	rng := rand.New(rand.NewSource(7))
	var rawErr, recErr float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := float32(rng.Float64()*20 - 10)
		exact := math.Exp(float64(x))
		rawErr += RelError(float64(ApproxExp(x)), exact)
		recErr += RelError(float64(RecoveredExp(x)), exact)
	}
	rawErr /= n
	recErr /= n
	if recErr >= rawErr {
		t.Fatalf("recovery did not reduce mean error: raw %.4f vs recovered %.4f", rawErr, recErr)
	}
}

func TestRecoveryReducesInvSqrtBias(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var raw, rec float64
	const n = 10000
	for i := 0; i < n; i++ {
		q := float32(rng.Float64()*4) + 1e-6
		exact := 1 / math.Sqrt(float64(q))
		raw += float64(FastInvSqrt(q)) / exact
		rec += float64(FastInvSqrt(q)*Default.InvSqrt) / exact
	}
	raw, rec = raw/n, rec/n
	if math.Abs(rec-1) >= math.Abs(raw-1) {
		t.Fatalf("recovery did not reduce inv-sqrt mean bias: raw %.5f vs recovered %.5f", raw, rec)
	}
}

func TestRelError(t *testing.T) {
	if math.Abs(RelError(1.1, 1.0)-0.1) > 1e-12 {
		t.Fatalf("RelError(1.1,1) = %v", RelError(1.1, 1.0))
	}
	if RelError(0.5, 0) != 0.5 {
		t.Fatal("RelError with exact=0 must be absolute")
	}
}

func TestDefaultRecoveryDeterministic(t *testing.T) {
	again := Calibrate(rand.New(rand.NewSource(0x5eed)), 10000)
	if again != Default {
		t.Fatalf("Default recovery not reproducible: %+v vs %+v", Default, again)
	}
}

func BenchmarkFastInvSqrt(b *testing.B) {
	var s float32
	for i := 0; i < b.N; i++ {
		s += FastInvSqrt(float32(i%1000) + 1)
	}
	_ = s
}

func BenchmarkApproxExp(b *testing.B) {
	var s float32
	for i := 0; i < b.N; i++ {
		s += ApproxExp(float32(i%20) - 10)
	}
	_ = s
}
