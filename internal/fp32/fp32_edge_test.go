//pimcaps:bitexact

package fp32

import (
	"math"
	"testing"
)

var (
	nan32    = float32(math.NaN())
	posInf32 = float32(math.Inf(1))
	negInf32 = float32(math.Inf(-1))
	// denormal is the smallest positive subnormal float32.
	denormal = math.Float32frombits(1)
)

func isNaN32(x float32) bool  { return x != x }
func isPosInf(x float32) bool { return math.IsInf(float64(x), 1) }

// TestFastInvSqrtEdges pins the documented saturation behavior of the
// PE inverse-square-root at every domain edge the routing procedure
// can reach once faults are injected.
func TestFastInvSqrtEdges(t *testing.T) {
	for _, fn := range []struct {
		name string
		f    func(float32) float32
	}{{"FastInvSqrt", FastInvSqrt}, {"FastInvSqrtNR", FastInvSqrtNR}} {
		if got := fn.f(0); !isPosInf(got) {
			t.Errorf("%s(0) = %v, want +Inf", fn.name, got)
		}
		if got := fn.f(-0); !isPosInf(got) {
			t.Errorf("%s(-0) = %v, want +Inf", fn.name, got)
		}
		if got := fn.f(-1); !isNaN32(got) {
			t.Errorf("%s(-1) = %v, want NaN", fn.name, got)
		}
		if got := fn.f(negInf32); !isNaN32(got) {
			t.Errorf("%s(-Inf) = %v, want NaN", fn.name, got)
		}
		if got := fn.f(posInf32); got != 0 {
			t.Errorf("%s(+Inf) = %v, want 0", fn.name, got)
		}
		if got := fn.f(nan32); !isNaN32(got) {
			t.Errorf("%s(NaN) = %v, want NaN", fn.name, got)
		}
		// Denormal input: wildly inaccurate is fine, non-finite is not.
		if got := fn.f(denormal); got <= 0 || isNaN32(got) || isPosInf(got) {
			t.Errorf("%s(denormal) = %v, want finite positive", fn.name, got)
		}
	}
}

// TestFastRecipEdges pins the PE reciprocal's saturation: ±0 → +Inf,
// ±Inf → signed zero, NaN → NaN.
func TestFastRecipEdges(t *testing.T) {
	for _, fn := range []struct {
		name string
		f    func(float32) float32
	}{{"FastRecip", FastRecip}, {"FastRecipNR", FastRecipNR}} {
		if got := fn.f(0); !isPosInf(got) {
			t.Errorf("%s(0) = %v, want +Inf", fn.name, got)
		}
		if got := fn.f(posInf32); got != 0 || math.Signbit(float64(got)) {
			t.Errorf("%s(+Inf) = %v, want +0", fn.name, got)
		}
		if got := fn.f(negInf32); got != 0 || !math.Signbit(float64(got)) {
			t.Errorf("%s(-Inf) = %v, want -0", fn.name, got)
		}
		if got := fn.f(nan32); !isNaN32(got) {
			t.Errorf("%s(NaN) = %v, want NaN", fn.name, got)
		}
		if got := fn.f(-2); got >= 0 {
			t.Errorf("%s(-2) = %v, want negative", fn.name, got)
		}
		if got := fn.f(denormal); isNaN32(got) || got < 0 {
			t.Errorf("%s(denormal) = %v, want non-negative and not NaN", fn.name, got)
		}
	}
}

// TestApproxExpEdges pins the exponential's saturation: underflow
// chucks to 0, overflow to +Inf, exactly like the modeled hardware,
// and NaN propagates instead of hitting the implementation-defined
// float→int conversion.
func TestApproxExpEdges(t *testing.T) {
	if got := ApproxExp(nan32); !isNaN32(got) {
		t.Errorf("ApproxExp(NaN) = %v, want NaN", got)
	}
	if got := ApproxExp(posInf32); !isPosInf(got) {
		t.Errorf("ApproxExp(+Inf) = %v, want +Inf", got)
	}
	if got := ApproxExp(negInf32); got != 0 {
		t.Errorf("ApproxExp(-Inf) = %v, want 0", got)
	}
	if got := ApproxExp(-200); got != 0 {
		t.Errorf("ApproxExp(-200) = %v, want underflow to 0", got)
	}
	if got := ApproxExp(200); !isPosInf(got) {
		t.Errorf("ApproxExp(200) = %v, want overflow to +Inf", got)
	}
	if got := ApproxExp(0); math.Abs(float64(got)-1) > 0.05 {
		t.Errorf("ApproxExp(0) = %v, want ≈1", got)
	}
	// A denormal input is ≈0, so the result must be ≈1 and finite.
	if got := ApproxExp(denormal); math.Abs(float64(got)-1) > 0.05 {
		t.Errorf("ApproxExp(denormal) = %v, want ≈1", got)
	}
}

// TestFastDivEdges: the composed division inherits the reciprocal's
// saturation.
func TestFastDivEdges(t *testing.T) {
	if got := FastDiv(1, posInf32); got != 0 {
		t.Errorf("FastDiv(1, +Inf) = %v, want 0", got)
	}
	if got := FastDiv(1, 0); !isPosInf(got) {
		t.Errorf("FastDiv(1, 0) = %v, want +Inf", got)
	}
	if got := FastDivNR(1, nan32); !isNaN32(got) {
		t.Errorf("FastDivNR(1, NaN) = %v, want NaN", got)
	}
}

// TestFiniteInputsUnchangedByEdgeGuards locks the bit-exact behavior
// of the hot path: the added non-finite guards must not perturb any
// normal-range result (the serving stack's "injectors disabled ⇒
// bit-identical" guarantee depends on this).
func TestFiniteInputsUnchangedByEdgeGuards(t *testing.T) {
	inputs := []float32{1e-30, 0.001, 0.5, 1, 1.5, 2, 3.75, 100, 6.3e7}
	for _, x := range inputs {
		wantInv := math.Float32frombits(0x5f3759df - (math.Float32bits(x) >> 1))
		if got := FastInvSqrt(x); got != wantInv {
			t.Errorf("FastInvSqrt(%g) = %v, want bit-exact %v", x, got, wantInv)
		}
		wantRec := math.Float32frombits(0x7EF311C3 - math.Float32bits(x))
		if got := FastRecip(x); got != wantRec {
			t.Errorf("FastRecip(%g) = %v, want bit-exact %v", x, got, wantRec)
		}
	}
}
