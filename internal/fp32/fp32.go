// Package fp32 implements, bit-exactly in software, the IEEE-754
// single-precision approximations that PIM-CapsNet's processing
// elements (PEs) use in place of full special-function units
// (paper §5.2.2):
//
//   - inverse square root by exponent bit-shifting (Lomont's method,
//     used for the |s| normalization inside squash),
//   - division by approximate reciprocal (bit-shifted exponent
//     negation, optionally Newton-refined),
//   - the exponential function as a shifted linear mapping into the
//     FP32 bit pattern, ExpResult ≈ BS(log2(e)·x + Avg + b − 1)
//     (paper Eqs. 13–14; the Schraudolph family), with the bit
//     chucking of the exponent-matching step modeled as truncation,
//   - the one-multiply accuracy-recovery scaling that compensates the
//     mean value difference of each approximation (paper §5.2.2,
//     "Accuracy Recovery": the loss "will be recovered via enlarging
//     the results by the mean percentage of the value difference").
//
// These functions compute exactly what the modeled hardware would, so
// the Table 5 accuracy experiments measure real numerical effects.
package fp32

import (
	"math"
	"math/rand"
)

// log2E is log2(e), the constant the PE stores offline (paper Eq. 14).
const log2E = 1.4426950408889634

// expTruncAdj is the paper's Avg term adapted to truncating hardware:
// the fraction representation 2^f − 1 is approximated by f + c, and
// because the exponent-matching step chucks least-significant bits
// (always rounding toward zero), the PE uses the conservative constant
// c = min_f (2^f − 1 − f) = 2^f* − 1 − f* at f* = −log2(ln 2), so the
// assembled result never exceeds the exact exponential. The recovery
// multiply then lifts the mean back (see CalibrateExpRecovery).
var expTruncAdj = func() float64 {
	fstar := -math.Log2(math.Ln2)
	return math.Pow(2, fstar) - 1 - fstar
}()

// FastInvSqrt approximates 1/√x for positive x using only the classic
// exponent bit-shift (magic constant) — the "simple low-cost logic"
// the paper adopts for the inverse square root in Eq. 3. Maximum
// relative error is about 3.4%.
//
// Saturation at the domain edges is explicit, mirroring what a PE
// with a special-value detector does: 0 → +Inf, negative → NaN,
// +Inf → 0, NaN → NaN. Denormal positive inputs go through the bit
// trick and yield a finite positive (if wildly inaccurate) result.
func FastInvSqrt(x float32) float32 {
	if x <= 0 {
		if x == 0 {
			return float32(math.Inf(1))
		}
		return float32(math.NaN())
	}
	if x != x { // NaN fails every ordered comparison above
		return x
	}
	if math.IsInf(float64(x), 1) {
		return 0
	}
	i := math.Float32bits(x)
	i = 0x5f3759df - (i >> 1)
	return math.Float32frombits(i)
}

// FastInvSqrtNR is FastInvSqrt followed by one Newton-Raphson
// refinement (y = y(1.5 − 0.5·x·y²)), the higher-precision PE flow
// (paper Fig. 11 flow 3-2-1-2-1). Maximum relative error ≈ 0.2%.
func FastInvSqrtNR(x float32) float32 {
	y := FastInvSqrt(x)
	// Refine only genuine approximations: skip the saturated cases
	// (y = 0 for x = +Inf, ±Inf, NaN), where the Newton step would
	// manufacture NaN out of Inf·0.
	if x > 0 && y != 0 && !math.IsInf(float64(y), 0) && y == y {
		y = y * (1.5 - 0.5*x*y*y)
	}
	return y
}

// FastRecip approximates 1/x by bit-level exponent negation. Maximum
// relative error is a few percent.
//
// Saturation at the domain edges is explicit: ±0 → +Inf, ±Inf → ±0
// (sign preserved), NaN → NaN.
func FastRecip(x float32) float32 {
	if x == 0 {
		return float32(math.Inf(1))
	}
	if x != x {
		return x
	}
	if math.IsInf(float64(x), 0) {
		return float32(math.Copysign(0, float64(x)))
	}
	neg := x < 0
	if neg {
		x = -x
	}
	i := math.Float32bits(x)
	i = 0x7EF311C3 - i
	y := math.Float32frombits(i)
	if neg {
		y = -y
	}
	return y
}

// FastRecipNR is FastRecip refined by two Newton-Raphson steps
// (y = y(2 − x·y)); relative error drops below 1e-4.
func FastRecipNR(x float32) float32 {
	y := FastRecip(x)
	// Saturated results (±0, ±Inf, NaN) are exact or unrecoverable;
	// a Newton step on them would produce Inf·0 = NaN.
	if y == 0 || y != y || math.IsInf(float64(y), 0) {
		return y
	}
	y = y * (2 - x*y)
	y = y * (2 - x*y)
	return y
}

// FastDiv approximates a/b as a·FastRecip(b).
func FastDiv(a, b float32) float32 { return a * FastRecip(b) }

// FastDivNR approximates a/b with the Newton-refined reciprocal.
func FastDivNR(a, b float32) float32 { return a * FastRecipNR(b) }

// ApproxExp approximates e^x with the paper's representation-transfer
// scheme: the result's FP32 bit pattern is built directly from
// log2(e)·x + Avg + bias − 1 shifted into the exponent/fraction fields
// (Eqs. 13–14). The truncating constant makes the result a slight,
// systematic underestimate, exactly the bias the recovery multiply is
// designed to lift. Inputs far outside FP32's exponent range saturate
// to 0 or +Inf like the hardware would.
func ApproxExp(x float32) float32 {
	if x != x { // NaN in, NaN out (int conversion of NaN is implementation-defined)
		return x
	}
	y := float64(x) * log2E // base-2 exponent, Eq. 13
	if y <= -126 {
		return 0 // underflow: denormal range chucked to zero
	}
	if y >= 128 {
		return float32(math.Inf(1))
	}
	// byc + b + (2^{y−byc} − 1) ≈ y + c + b, assembled as the raw bit
	// pattern via a 23-bit shift; int conversion truncates toward zero
	// like the hardware's bit chucking.
	bits := int32((y + expTruncAdj + 127) * (1 << 23))
	if bits < 0 {
		return 0
	}
	return math.Float32frombits(uint32(bits))
}

// Recovery bundles the calibrated accuracy-recovery factors for the
// three approximated special functions. Each factor is the mean
// exact/approx ratio over the offline calibration run; applying it
// costs the PE one extra multiplication per special-function result.
type Recovery struct {
	Exp     float32
	InvSqrt float32
	Recip   float32
}

// Identity is the no-recovery configuration (all factors 1).
var Identity = Recovery{Exp: 1, InvSqrt: 1, Recip: 1}

// Default holds the factors produced by the paper's calibration
// procedure (10,000 executions, fixed seed, see Calibrate). Computed
// once at package initialization so all results are reproducible.
var Default = Calibrate(rand.New(rand.NewSource(0x5eed)), 10000)

// Calibrate reproduces the paper's offline calibration: run n
// executions of each approximated special function on inputs
// representative of the routing procedure (logits in [−10, 10] for
// exp, squared norms in (0, 4] for inverse sqrt, denominators in
// (0, 8] for reciprocal), collect the value difference between the
// approximated and original results, and return the mean exact/approx
// ratio per function.
func Calibrate(rng *rand.Rand, n int) Recovery {
	if n <= 0 {
		return Identity
	}
	var se, si, sr float64
	for i := 0; i < n; i++ {
		x := float32(rng.Float64()*20 - 10)
		if a := float64(ApproxExp(x)); a > 0 {
			se += math.Exp(float64(x)) / a
		} else {
			se++
		}
		q := float32(rng.Float64()*4) + 1e-6
		si += (1 / math.Sqrt(float64(q))) / float64(FastInvSqrt(q))
		d := float32(rng.Float64()*8) + 1e-6
		sr += (1 / float64(d)) / float64(FastRecip(d))
	}
	inv := 1 / float64(n)
	return Recovery{
		Exp:     float32(se * inv),
		InvSqrt: float32(si * inv),
		Recip:   float32(sr * inv),
	}
}

// RecoveredExp is ApproxExp followed by the accuracy-recovery
// multiplication with the default calibration.
func RecoveredExp(x float32) float32 {
	return ApproxExp(x) * Default.Exp
}

// RelError returns |approx−exact|/|exact| (or |approx−exact| when
// exact is 0), a helper shared by the accuracy experiments.
func RelError(approx, exact float64) float64 {
	d := math.Abs(approx - exact)
	if exact == 0 {
		return d
	}
	return d / math.Abs(exact)
}
