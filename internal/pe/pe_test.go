//pimcaps:bitexact

package pe

import (
	"strings"
	"testing"

	"pimcapsnet/internal/workload"
)

func TestDefaultSpecLatencies(t *testing.T) {
	s := DefaultSpec()
	if s.Cycles(OpMAC) != 1 || s.Cycles(OpAdd) != 1 || s.Cycles(OpMul) != 1 || s.Cycles(OpShift) != 1 {
		t.Fatal("simple ops must be single-cycle")
	}
	if s.Cycles(OpInvSqrt) != 5 {
		t.Fatalf("invsqrt flow 3-2-1-2-1 must take 5 cycles, got %d", s.Cycles(OpInvSqrt))
	}
	if s.Cycles(OpExp) != 4 {
		t.Fatalf("exp flow 1-2-2-3 must take 4 cycles, got %d", s.Cycles(OpExp))
	}
	if s.Cycles(OpRecip) <= s.Cycles(OpMul) {
		t.Fatal("reciprocal must cost more than a multiply")
	}
}

func TestOpStrings(t *testing.T) {
	for _, o := range []Op{OpMAC, OpAdd, OpMul, OpShift, OpInvSqrt, OpExp, OpRecip} {
		if s := o.String(); s == "" || strings.HasPrefix(s, "Op(") {
			t.Fatalf("op %d unnamed", o)
		}
	}
}

func TestOpCountsArithmetic(t *testing.T) {
	a := OpCounts{MAC: 10, Exp: 2}
	b := OpCounts{MAC: 5, InvSqrt: 1}
	sum := a.Plus(b)
	if sum.MAC != 15 || sum.Exp != 2 || sum.InvSqrt != 1 {
		t.Fatalf("Plus = %+v", sum)
	}
	sc := a.Scale(2)
	if sc.MAC != 20 || sc.Exp != 4 {
		t.Fatalf("Scale = %+v", sc)
	}
	if a.Total() != 12 {
		t.Fatalf("Total = %v", a.Total())
	}
}

func TestOpCyclesWeighting(t *testing.T) {
	s := DefaultSpec()
	c := OpCounts{MAC: 100, InvSqrt: 10, Exp: 5}
	want := 100.0 + 50 + 20
	if got := s.OpCycles(c); got != want {
		t.Fatalf("OpCycles = %v, want %v", got, want)
	}
}

func TestEquationOpsConsistentWithWorkloadFLOPs(t *testing.T) {
	// The MAC counts must track the workload FLOP model: Eq. 1's MACs
	// are NB·NL·NH·CH·CL while the FLOP count is ·(2CL−1) ≈ 2·MACs.
	b, _ := workload.ByName("Caps-MN1")
	ops := EquationOps(b, workload.EqPrediction)
	if ops.MAC != 100*1152*10*16*8 {
		t.Fatalf("Eq1 MACs = %v", ops.MAC)
	}
	flops := b.RPEquationFLOPs(workload.EqPrediction)
	if ratio := flops / ops.MAC; ratio < 1.5 || ratio > 2 {
		t.Fatalf("FLOP/MAC ratio %v implausible", ratio)
	}
}

func TestEquationOpsSpecialFunctions(t *testing.T) {
	b, _ := workload.ByName("Caps-MN1")
	sq := EquationOps(b, workload.EqSquash)
	if sq.InvSqrt != 100*10 || sq.Recip != 100*10 {
		t.Fatalf("squash specials %+v", sq)
	}
	sm := EquationOps(b, workload.EqSoftmax)
	if sm.Exp != 1152*10 {
		t.Fatalf("softmax exps = %v, want %v", sm.Exp, 1152*10)
	}
	if sm.Recip != 1152 {
		t.Fatalf("softmax recips = %v, want one per L capsule row", sm.Recip)
	}
}

func TestArrayTimeScalesWithPEsAndClock(t *testing.T) {
	c := OpCounts{MAC: 1e6}
	base := Array{Spec: DefaultSpec(), PEs: 16, ClockHz: 312.5e6}
	t1 := base.Time(c)
	if t1 <= 0 {
		t.Fatal("zero time for nonzero work")
	}
	double := Array{Spec: DefaultSpec(), PEs: 32, ClockHz: 312.5e6}
	if got := double.Time(c); got >= t1 || got < t1/2.1 {
		t.Fatalf("doubling PEs should halve time: %v vs %v", got, t1)
	}
	fast := Array{Spec: DefaultSpec(), PEs: 16, ClockHz: 625e6}
	if got := fast.Time(c); got >= t1 || got < t1/2.1 {
		t.Fatalf("doubling clock should halve time: %v vs %v", got, t1)
	}
	if (Array{Spec: DefaultSpec()}).Time(c) != 0 {
		t.Fatal("degenerate array must return 0")
	}
}

func TestOverheadConstants(t *testing.T) {
	if LogicAreaMM2 != 3.11 || HMCLogicAreaFraction != 0.0032 {
		t.Fatal("area overheads drifted from §6.5")
	}
	if AvgPowerW != 2.24 || TDPHeadroomW != 10.0 {
		t.Fatal("power overheads drifted from §6.5")
	}
	if !WithinThermalBudget(312.5e6) || !WithinThermalBudget(937.5e6) {
		t.Fatal("the paper's frequency sweep must stay inside the TDP")
	}
	if WithinThermalBudget(2e9) {
		t.Fatal("2 GHz should exceed the thermal budget")
	}
}
