// Package pe models PIM-CapsNet's customized processing element
// (paper §5.2.2, Fig. 11): a datapath of one FP32 multiplier, one
// adder and one bit-shifter behind MUXes, configured per operation
// into flows for multiply-accumulate, inverse square root,
// exponential and division. The numerics of those flows live in
// internal/fp32; this package models their timing, area and the
// per-vault PE array's throughput.
package pe

import (
	"fmt"

	"pimcapsnet/internal/workload"
)

// Op identifies a PE operation (one flow configuration).
type Op int

// The PE's operation repertoire.
const (
	OpMAC Op = iota // flow 1-2: multiply, accumulate
	OpAdd
	OpMul
	OpShift
	OpInvSqrt // flow 3-2-1-2-1: shift, add, mul, add, mul
	OpExp     // flow 1-2-2-3: mul, add, add, shift
	OpRecip   // flow 3-1-1: shift, mul, mul (plus recovery multiply)
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpMAC:
		return "mac"
	case OpAdd:
		return "add"
	case OpMul:
		return "mul"
	case OpShift:
		return "shift"
	case OpInvSqrt:
		return "invsqrt"
	case OpExp:
		return "exp"
	case OpRecip:
		return "recip"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Spec describes one PE's datapath timing in cycles per operation.
// The special functions occupy the shared adder/multiplier/shifter
// for several cycles because they are built by chaining those units
// (Fig. 11), so they do not pipeline.
type Spec struct {
	MAC, Add, Mul, Shift int
	InvSqrt, Exp, Recip  int
}

// DefaultSpec returns the flow latencies of the paper's PE: simple ops
// single-cycle, inverse square root five (3-2-1-2-1), exponential four
// (1-2-2-3), reciprocal three plus one recovery multiply.
func DefaultSpec() Spec {
	return Spec{MAC: 1, Add: 1, Mul: 1, Shift: 1, InvSqrt: 5, Exp: 4, Recip: 4}
}

// Cycles returns the cycle cost of one operation.
func (s Spec) Cycles(o Op) int {
	switch o {
	case OpMAC:
		return s.MAC
	case OpAdd:
		return s.Add
	case OpMul:
		return s.Mul
	case OpShift:
		return s.Shift
	case OpInvSqrt:
		return s.InvSqrt
	case OpExp:
		return s.Exp
	case OpRecip:
		return s.Recip
	}
	panic(fmt.Sprintf("pe: unknown op %d", int(o)))
}

// OpCounts is an operation mix.
type OpCounts struct {
	MAC, Add, Mul, Shift, InvSqrt, Exp, Recip float64
}

// Add returns the elementwise sum of two mixes.
func (c OpCounts) Plus(o OpCounts) OpCounts {
	return OpCounts{
		MAC: c.MAC + o.MAC, Add: c.Add + o.Add, Mul: c.Mul + o.Mul,
		Shift: c.Shift + o.Shift, InvSqrt: c.InvSqrt + o.InvSqrt,
		Exp: c.Exp + o.Exp, Recip: c.Recip + o.Recip,
	}
}

// Scale returns the mix multiplied by f.
func (c OpCounts) Scale(f float64) OpCounts {
	return OpCounts{
		MAC: c.MAC * f, Add: c.Add * f, Mul: c.Mul * f,
		Shift: c.Shift * f, InvSqrt: c.InvSqrt * f,
		Exp: c.Exp * f, Recip: c.Recip * f,
	}
}

// Total returns the total number of operations.
func (c OpCounts) Total() float64 {
	return c.MAC + c.Add + c.Mul + c.Shift + c.InvSqrt + c.Exp + c.Recip
}

// Cycles returns the datapath cycles the mix occupies on one PE.
func (s Spec) OpCycles(c OpCounts) float64 {
	return c.MAC*float64(s.MAC) + c.Add*float64(s.Add) + c.Mul*float64(s.Mul) +
		c.Shift*float64(s.Shift) + c.InvSqrt*float64(s.InvSqrt) +
		c.Exp*float64(s.Exp) + c.Recip*float64(s.Recip)
}

// EquationOps returns the per-batch operation mix of one routing
// equation (see Alg. 1 and the E models of Eqs. 6–11):
//
//	Eq. 1: CL MACs per û scalar (NB·NL·NH·CH outputs)
//	Eq. 2: NL MACs per s scalar (NB·NH·CH outputs)
//	Eq. 3: CH MACs (‖s‖²) + 1 add + 1 recip + 1 invsqrt + (CH+2) muls
//	Eq. 4: CH MACs per agreement + 1 add (NB·NL·NH dots)
//	Eq. 5: per b row element: 1 exp + accumulate; per c: 1 mul; per
//	       row: 1 recip
func EquationOps(b workload.Benchmark, eq workload.RPEquation) OpCounts {
	nb, nl, nh := float64(b.BatchSize), float64(b.NumL), float64(b.NumH)
	cl, ch := float64(b.DimL), float64(b.DimH)
	switch eq {
	case workload.EqPrediction:
		return OpCounts{MAC: nb * nl * nh * ch * cl}
	case workload.EqWeightedSum:
		return OpCounts{MAC: nb * nh * ch * nl}
	case workload.EqSquash:
		vecs := nb * nh
		return OpCounts{MAC: vecs * ch, Add: vecs, Recip: vecs, InvSqrt: vecs, Mul: vecs * (ch + 2)}
	case workload.EqAgreement:
		return OpCounts{MAC: nb * nl * nh * ch, Add: nb * nl * nh}
	case workload.EqSoftmax:
		elems := nl * nh
		return OpCounts{Exp: elems, Add: elems, Mul: elems, Recip: nl}
	}
	panic(fmt.Sprintf("pe: unknown equation %v", eq))
}

// Array models one vault's PE array.
type Array struct {
	Spec    Spec
	PEs     int
	ClockHz float64
}

// Time returns the wall time for the array to execute the mix,
// assuming work divides evenly across PEs (the intra-vault
// distribution of §5.2.1 re-dimensions work to keep PEs busy).
func (a Array) Time(c OpCounts) float64 {
	if a.PEs <= 0 || a.ClockHz <= 0 {
		return 0
	}
	return a.Spec.OpCycles(c) / float64(a.PEs) / a.ClockHz
}

// Area and power overheads from the paper's gate-level results (§6.5).
const (
	// LogicAreaMM2 is the area of the full PIM-CapsNet logic (16 PEs ×
	// 32 vaults + operation controllers + RMAS) at 24 nm.
	LogicAreaMM2 = 3.11
	// HMCLogicAreaFraction is that area as a fraction of the HMC
	// logic die.
	HMCLogicAreaFraction = 0.0032
	// AvgPowerW is the average power overhead of the logic design.
	AvgPowerW = 2.24
	// TDPHeadroomW is the thermal budget HMC can tolerate.
	TDPHeadroomW = 10.0
)

// WithinThermalBudget reports whether a scaled design (power grows
// roughly linearly with clock) stays inside the HMC thermal budget.
func WithinThermalBudget(clockHz float64) bool {
	base := 312.5e6
	return AvgPowerW*clockHz/base <= TDPHeadroomW
}
