// Package distribute implements PIM-CapsNet's inter-vault workload
// distribution (paper §5.1): the multi-dimensional parallelism
// analysis of Table 2, the per-dimension models of largest per-vault
// workload E (Eqs. 7, 9, 11) and inter-vault data movement M
// (Eqs. 8, 10, 12), and the execution score S = 1/(αE + βM) that the
// intelligent workload distributor maximizes offline to pick the
// distribution dimension.
package distribute

import (
	"fmt"
	"math"

	"pimcapsnet/internal/hmc"
	"pimcapsnet/internal/workload"
)

// Dimension is a parallelization dimension of the routing procedure.
type Dimension int

// The three distribution dimensions (§5.1.1).
const (
	DimB Dimension = iota // batch
	DimL                  // low-level capsules
	DimH                  // high-level capsules
)

// Dimensions lists all three in display order.
var Dimensions = []Dimension{DimB, DimL, DimH}

// String implements fmt.Stringer.
func (d Dimension) String() string {
	switch d {
	case DimB:
		return "B"
	case DimL:
		return "L"
	case DimH:
		return "H"
	}
	return fmt.Sprintf("Dimension(%d)", int(d))
}

// ParallelizableDims reproduces Table 2: which dimensions each routing
// equation can be partitioned along.
func ParallelizableDims(eq workload.RPEquation) []Dimension {
	switch eq {
	case workload.EqPrediction:
		return []Dimension{DimB, DimL, DimH}
	case workload.EqWeightedSum:
		return []Dimension{DimB, DimH}
	case workload.EqSquash:
		return []Dimension{DimB, DimH}
	case workload.EqAgreement:
		return []Dimension{DimL, DimH}
	case workload.EqSoftmax:
		return []Dimension{DimL}
	}
	panic(fmt.Sprintf("distribute: unknown equation %v", eq))
}

// CanParallelize reports whether eq partitions along d (Table 2).
func CanParallelize(eq workload.RPEquation, d Dimension) bool {
	for _, x := range ParallelizableDims(eq) {
		if x == d {
			return true
		}
	}
	return false
}

// Params carries the Table 3 model parameters.
type Params struct {
	I      int // routing iterations
	NB     int // batch size
	NL, NH int // capsule counts
	CL, CH int // capsule dimensions
	NVault int // number of vaults
	// SizeVar is bytes per scalar variable, SizePkt the packet
	// head+tail overhead.
	SizeVar, SizePkt float64
}

// FromBenchmark builds Params for a Table 1 benchmark on the given
// cube.
func FromBenchmark(b workload.Benchmark, cfg hmc.Config) Params {
	return Params{
		I: b.Iters, NB: b.BatchSize, NL: b.NumL, NH: b.NumH,
		CL: b.DimL, CH: b.DimH, NVault: cfg.Vaults,
		SizeVar: workload.WordBytes, SizePkt: float64(cfg.PacketOverheadBytes),
	}
}

func ceilDiv(a, b int) float64 { return math.Ceil(float64(a) / float64(b)) }

// E returns the largest per-vault operation count under distribution
// on d: Eq. 7 (B), Eq. 9 (L) or Eq. 11 (H). The paper's simplified
// forms (NL ≫ 1) are used; see DESIGN.md for the garbled full Eq. 6.
func (p Params) E(d Dimension) float64 {
	i := float64(p.I)
	nb, nl, nh := float64(p.NB), float64(p.NL), float64(p.NH)
	cl, ch := float64(p.CL), float64(p.CH)
	switch d {
	case DimB:
		return ceilDiv(p.NB, p.NVault) * nl * nh * ((4*i-1)*ch + 2*cl*ch - i)
	case DimL:
		return nb * ceilDiv(p.NL, p.NVault) * nh * (2*i*(2*ch-1) + ch*(2*cl-1))
	case DimH:
		return nb * nl * ceilDiv(p.NH, p.NVault) * ch * (2*cl - 1 + 2*i)
	}
	panic(fmt.Sprintf("distribute: unknown dimension %v", d))
}

// M returns the inter-vault data movement in bytes under distribution
// on d: Eq. 8 (B), Eq. 10 (L) or Eq. 12 (H).
func (p Params) M(d Dimension) float64 {
	i := float64(p.I)
	nb, nl, nh := float64(p.NB), float64(p.NL), float64(p.NH)
	ch := float64(p.CH)
	v := float64(p.NVault)
	switch d {
	case DimB:
		// Pre-aggregated b_ij gathered, c_ij scattered (both L×H
		// scalar matrices) every iteration.
		per := nl * nh * (p.SizeVar + p.SizePkt)
		return i * ((v-1)*per + (v-1)*per)
	case DimL:
		// s_j^k all-reduced and v_j^k broadcast (CH-vectors per batch
		// element and H capsule) every iteration.
		sv := ch*p.SizeVar + p.SizePkt
		return i * (nb*(v-1)*nh*sv + nb*(v-1)*nh*sv)
	case DimH:
		// b_ij partial rows all-reduced, c_ij rows broadcast.
		return i * ((v-1)*nl*(p.SizeVar+p.SizePkt) + nl*(p.SizeVar+p.SizePkt))
	}
	panic(fmt.Sprintf("distribute: unknown dimension %v", d))
}

// Snippets returns how many independent workload snippets distribution
// on d produces (one per index along the dimension).
func (p Params) Snippets(d Dimension) int {
	switch d {
	case DimB:
		return p.NB
	case DimL:
		return p.NL
	case DimH:
		return p.NH
	}
	panic(fmt.Sprintf("distribute: unknown dimension %v", d))
}

// Scorer holds the device-dependent coefficients of the execution
// score S = 1/(αE + βM): α converts operations to seconds (HMC
// compute rate), β converts inter-vault bytes to seconds (crossbar
// port bandwidth).
type Scorer struct {
	Alpha, Beta float64
}

// NewScorer derives α and β from the cube configuration: a vault
// executes PEsPerVault operations per cycle, and inter-vault traffic
// drains through a vault port.
func NewScorer(cfg hmc.Config) Scorer {
	return Scorer{
		Alpha: 1 / (float64(cfg.PEsPerVault) * cfg.ClockHz),
		Beta:  1 / cfg.VaultBW(),
	}
}

// ScoreEM returns the execution score S = 1/(αE + βM) for an
// arbitrary largest-per-unit workload E and data movement M — Eq. 6's
// objective detached from the vault-specific E and M models, so other
// placement problems with the same structure can rank candidates with
// the identical scoring. internal/cluster uses it to place requests on
// serving replicas: E becomes a replica's outstanding work and M the
// cache/arena warmth a request forfeits by leaving its affinity
// replica (see DESIGN.md §8).
func (s Scorer) ScoreEM(e, m float64) float64 {
	return 1 / (s.Alpha*e + s.Beta*m)
}

// Score returns S for distribution of p on d.
func (s Scorer) Score(p Params, d Dimension) float64 {
	return s.ScoreEM(p.E(d), p.M(d))
}

// Choice records the distributor's decision for one dimension.
type Choice struct {
	Dim   Dimension
	Score float64
	E, M  float64
}

// Evaluate scores all three dimensions.
func (s Scorer) Evaluate(p Params) []Choice {
	out := make([]Choice, 0, len(Dimensions))
	for _, d := range Dimensions {
		out = append(out, Choice{Dim: d, Score: s.Score(p, d), E: p.E(d), M: p.M(d)})
	}
	return out
}

// Best returns the dimension with the highest execution score — the
// intelligent workload distributor's offline decision (§5.1.2).
func (s Scorer) Best(p Params) Choice {
	choices := s.Evaluate(p)
	best := choices[0]
	for _, c := range choices[1:] {
		if c.Score > best.Score {
			best = c
		}
	}
	return best
}
