//pimcaps:bitexact

package distribute

import (
	"strings"
	"testing"

	"pimcapsnet/internal/hmc"
	"pimcapsnet/internal/workload"
)

func mn1Params(t *testing.T) Params {
	t.Helper()
	b, err := workload.ByName("Caps-MN1")
	if err != nil {
		t.Fatal(err)
	}
	return FromBenchmark(b, hmc.DefaultConfig())
}

func TestTable2(t *testing.T) {
	want := map[workload.RPEquation][]Dimension{
		workload.EqPrediction:  {DimB, DimL, DimH},
		workload.EqWeightedSum: {DimB, DimH},
		workload.EqSquash:      {DimB, DimH},
		workload.EqAgreement:   {DimL, DimH},
		workload.EqSoftmax:     {DimL},
	}
	for eq, dims := range want {
		got := ParallelizableDims(eq)
		if len(got) != len(dims) {
			t.Fatalf("%v: dims %v, want %v", eq, got, dims)
		}
		for i := range dims {
			if got[i] != dims[i] {
				t.Fatalf("%v: dims %v, want %v", eq, got, dims)
			}
		}
	}
	// Observation II: no dimension parallelizes every equation.
	for _, d := range Dimensions {
		all := true
		for _, eq := range []workload.RPEquation{workload.EqPrediction, workload.EqWeightedSum,
			workload.EqSquash, workload.EqAgreement, workload.EqSoftmax} {
			if !CanParallelize(eq, d) {
				all = false
				break
			}
		}
		if all {
			t.Fatalf("dimension %v parallelizes every equation — contradicts Observation II", d)
		}
	}
}

func TestFromBenchmark(t *testing.T) {
	p := mn1Params(t)
	if p.NB != 100 || p.NL != 1152 || p.NH != 10 || p.I != 3 || p.NVault != 32 {
		t.Fatalf("params %+v", p)
	}
	if p.SizeVar != 4 || p.SizePkt != 16 {
		t.Fatalf("sizes %v/%v", p.SizeVar, p.SizePkt)
	}
}

func TestEMatchesClosedForms(t *testing.T) {
	p := mn1Params(t)
	// Eq. 7: ceil(100/32)·1152·10·((4·3−1)·16 + 2·8·16 − 3).
	wantB := 4.0 * 1152 * 10 * ((11 * 16) + 256 - 3)
	if got := p.E(DimB); got != wantB {
		t.Fatalf("E_B = %v, want %v", got, wantB)
	}
	// Eq. 9: 100·ceil(1152/32)·10·(2·3·31 + 16·15).
	wantL := 100.0 * 36 * 10 * (186 + 240)
	if got := p.E(DimL); got != wantL {
		t.Fatalf("E_L = %v, want %v", got, wantL)
	}
	// Eq. 11: 100·1152·ceil(10/32)·16·(15 + 6).
	wantH := 100.0 * 1152 * 1 * 16 * 21
	if got := p.E(DimH); got != wantH {
		t.Fatalf("E_H = %v, want %v", got, wantH)
	}
}

func TestMMatchesClosedForms(t *testing.T) {
	p := mn1Params(t)
	// Eq. 8: 3·2·31·1152·10·(4+16).
	wantB := 3.0 * 2 * 31 * 1152 * 10 * 20
	if got := p.M(DimB); got != wantB {
		t.Fatalf("M_B = %v, want %v", got, wantB)
	}
	// Eq. 10: 3·2·100·31·10·(64+16).
	wantL := 3.0 * 2 * 100 * 31 * 10 * 80
	if got := p.M(DimL); got != wantL {
		t.Fatalf("M_L = %v, want %v", got, wantL)
	}
	// Eq. 12: 3·(31·1152·20 + 1152·20).
	wantH := 3.0 * (31*1152*20 + 1152*20)
	if got := p.M(DimH); got != wantH {
		t.Fatalf("M_H = %v, want %v", got, wantH)
	}
}

func TestHDimensionMinimizesCommunicationForMN1(t *testing.T) {
	// For Caps-MN1, H-dimension communication (scalar b/c rows) is far
	// below L-dimension (per-batch s/v vectors).
	p := mn1Params(t)
	if !(p.M(DimH) < p.M(DimB) && p.M(DimH) < p.M(DimL)) {
		t.Fatalf("M: B=%v L=%v H=%v — H should be smallest", p.M(DimB), p.M(DimL), p.M(DimH))
	}
}

func TestSnippetsCounts(t *testing.T) {
	p := mn1Params(t)
	if p.Snippets(DimB) != 100 || p.Snippets(DimL) != 1152 || p.Snippets(DimH) != 10 {
		t.Fatal("snippet counts must equal the dimension extents")
	}
	// Typical workloads generate far more snippets than vaults
	// (§5.1.2) — true for B and L here.
	if p.Snippets(DimB) < p.NVault || p.Snippets(DimL) < p.NVault {
		t.Fatal("B/L snippets should exceed the vault count")
	}
}

func TestScorerPrefersLowCost(t *testing.T) {
	p := mn1Params(t)
	s := NewScorer(hmc.DefaultConfig())
	best := s.Best(p)
	// The best choice must indeed have the max score.
	for _, c := range s.Evaluate(p) {
		if c.Score > best.Score {
			t.Fatalf("Best returned %v but %v scores higher", best.Dim, c.Dim)
		}
	}
	if best.Score <= 0 {
		t.Fatal("scores must be positive")
	}
}

func TestScoreTradeoffRespondsToCoefficients(t *testing.T) {
	// With communication made free (β=0), the dimension with minimal
	// E must win; with compute free (α=0), minimal M must win.
	p := mn1Params(t)
	eOnly := Scorer{Alpha: 1, Beta: 0}
	bestE := eOnly.Best(p)
	for _, d := range Dimensions {
		if p.E(d) < p.E(bestE.Dim) {
			t.Fatalf("β=0 should pick min-E dimension; got %v, %v is smaller", bestE.Dim, d)
		}
	}
	mOnly := Scorer{Alpha: 0, Beta: 1}
	bestM := mOnly.Best(p)
	for _, d := range Dimensions {
		if p.M(d) < p.M(bestM.Dim) {
			t.Fatalf("α=0 should pick min-M dimension; got %v, %v is smaller", bestM.Dim, d)
		}
	}
}

func TestFrequencyShiftsDimensionChoice(t *testing.T) {
	// Fig. 18's key observation: the best dimension can change with PE
	// frequency (higher clock shrinks α, weighting communication
	// more). Verify the mechanism: scores of different dimensions
	// reorder somewhere across the sweep for at least one benchmark.
	cfg := hmc.DefaultConfig()
	changed := false
	for _, b := range workload.Benchmarks {
		p := FromBenchmark(b, cfg)
		d1 := NewScorer(cfg.WithClock(312.5e6)).Best(p).Dim
		d3 := NewScorer(cfg.WithClock(937.5e6)).Best(p).Dim
		if d1 != d3 {
			changed = true
			break
		}
	}
	if !changed {
		t.Log("no dimension flip across frequency sweep — checking ratios shift at least")
		p := FromBenchmark(workload.Benchmarks[0], cfg)
		s1 := NewScorer(cfg.WithClock(312.5e6))
		s3 := NewScorer(cfg.WithClock(937.5e6))
		r1 := s1.Score(p, DimB) / s1.Score(p, DimH)
		r3 := s3.Score(p, DimB) / s3.Score(p, DimH)
		if r1 == r3 {
			t.Fatal("frequency scaling must change the relative scores of dimensions")
		}
	}
}

func TestEScalesDownWithVaults(t *testing.T) {
	b, _ := workload.ByName("Caps-CF3")
	cfg := hmc.DefaultConfig()
	p32 := FromBenchmark(b, cfg)
	cfg16 := cfg
	cfg16.Vaults = 16
	p16 := FromBenchmark(b, cfg16)
	for _, d := range []Dimension{DimB, DimL} {
		if p32.E(d) >= p16.E(d) {
			t.Fatalf("dim %v: 32 vaults should reduce per-vault work", d)
		}
	}
	// H has only 11 snippets for CF3 — ceil(11/16) = ceil(11/32) = 1,
	// so more vaults cannot help (the under-parallelized case §5.2.1
	// re-dimensions around).
	if p32.E(DimH) != p16.E(DimH) {
		t.Fatal("H-dimension per-vault work should saturate below vault count")
	}
}

func TestDimensionString(t *testing.T) {
	if DimB.String() != "B" || DimL.String() != "L" || DimH.String() != "H" {
		t.Fatal("dimension names wrong")
	}
	if !strings.HasPrefix(Dimension(9).String(), "Dimension(") {
		t.Fatal("unknown dimension should render numerically")
	}
}

func TestEMPositiveForAllBenchmarks(t *testing.T) {
	// Property: E and M are strictly positive and finite for every
	// Table 1 benchmark and dimension.
	cfg := hmc.DefaultConfig()
	for _, b := range workload.Benchmarks {
		p := FromBenchmark(b, cfg)
		for _, d := range Dimensions {
			if e := p.E(d); e <= 0 || e != e {
				t.Fatalf("%s E(%v) = %v", b.Name, d, e)
			}
			if m := p.M(d); m <= 0 || m != m {
				t.Fatalf("%s M(%v) = %v", b.Name, d, m)
			}
		}
	}
}

func TestEMMonotoneInIterations(t *testing.T) {
	// Property: more routing iterations never reduce per-vault work
	// or communication on any dimension.
	base := mn1Params(t)
	more := base
	more.I = base.I + 3
	for _, d := range Dimensions {
		if more.E(d) < base.E(d) {
			t.Fatalf("E(%v) decreased with iterations", d)
		}
		if more.M(d) < base.M(d) {
			t.Fatalf("M(%v) decreased with iterations", d)
		}
	}
}

func TestMBGrowsWithVaults(t *testing.T) {
	// Eq. 8/10: B- and L-dimension communication scales with the
	// (Nvault−1) gather/scatter fan; H-dimension's broadcast term too.
	base := mn1Params(t)
	more := base
	more.NVault = base.NVault * 2
	for _, d := range Dimensions {
		if more.M(d) <= base.M(d) {
			t.Fatalf("M(%v) did not grow with vault count", d)
		}
	}
}

func TestScoreScalesInverselyWithCost(t *testing.T) {
	p := mn1Params(t)
	s := NewScorer(hmc.DefaultConfig())
	for _, d := range Dimensions {
		want := 1 / (s.Alpha*p.E(d) + s.Beta*p.M(d))
		if got := s.Score(p, d); got != want {
			t.Fatalf("Score(%v) = %v, want %v", d, got, want)
		}
	}
}
