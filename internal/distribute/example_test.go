package distribute_test

import (
	"fmt"

	"pimcapsnet/internal/distribute"
	"pimcapsnet/internal/hmc"
	"pimcapsnet/internal/workload"
)

// ExampleScorer_Best runs the intelligent workload distributor for a
// Table 1 benchmark.
func ExampleScorer_Best() {
	cfg := hmc.DefaultConfig()
	b, _ := workload.ByName("Caps-EN3")
	p := distribute.FromBenchmark(b, cfg)
	best := distribute.NewScorer(cfg).Best(p)
	fmt.Println("chosen dimension:", best.Dim)
	fmt.Println("snippets:", p.Snippets(best.Dim))
	// Output:
	// chosen dimension: H
	// snippets: 62
}

// ExampleCanParallelize checks Table 2 for the softmax equation.
func ExampleCanParallelize() {
	fmt.Println(distribute.CanParallelize(workload.EqSoftmax, distribute.DimL))
	fmt.Println(distribute.CanParallelize(workload.EqSoftmax, distribute.DimB))
	// Output:
	// true
	// false
}
