//pimcaps:bitexact

package slogate

import (
	"path/filepath"
	"strings"
	"testing"

	"pimcapsnet/internal/loadgen"
)

func baseReport() loadgen.Report {
	return loadgen.Report{
		Target: "serve", Shape: "constant", Seed: 42,
		DurationSeconds: 5, ReferenceRate: 100, Offered: 500,
		Availability: 0.999, P50: 0.01, P99: 0.05, P999: 0.08,
		KneeRate: 400,
	}
}

func TestCheckPassesUnchangedRun(t *testing.T) {
	b := &Baseline{Report: baseReport()}
	cur := baseReport()
	rep := Check(b, &cur)
	if !rep.OK() {
		t.Fatalf("identical run failed the gate: %v", rep.Failures)
	}
	if len(rep.Lines) == 0 {
		t.Fatal("no comparison lines emitted")
	}
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	b := &Baseline{Report: baseReport()}
	cur := baseReport()
	cur.Availability = 0.985 // −0.014, inside the 0.02 default
	cur.P99 = 0.09           // 1.8×, inside 2×
	cur.P999 = 0.19          // 2.4×, inside 2.5×
	cur.KneeRate = 300       // −25%, inside 30%
	if rep := Check(b, &cur); !rep.OK() {
		t.Fatalf("in-tolerance run failed: %v", rep.Failures)
	}
}

func TestCheckFailsEachAxis(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*loadgen.Report)
		want   string
	}{
		{"availability", func(r *loadgen.Report) { r.Availability = 0.9 }, "availability"},
		{"p99", func(r *loadgen.Report) { r.P99 = 0.2 }, "p99 regressed"},
		{"p999", func(r *loadgen.Report) { r.P999 = 0.5 }, "p999 regressed"},
		{"knee", func(r *loadgen.Report) { r.KneeRate = 100 }, "knee fell"},
		{"lateness", func(r *loadgen.Report) { r.MaxLateness = 0.5 }, "behind its own schedule"},
		{"shape mismatch", func(r *loadgen.Report) { r.Shape = "bursty" }, "baseline pins"},
		{"rate mismatch", func(r *loadgen.Report) { r.ReferenceRate = 250 }, "same operating point"},
	}
	for _, c := range cases {
		b := &Baseline{Report: baseReport()}
		cur := baseReport()
		c.mutate(&cur)
		rep := Check(b, &cur)
		if rep.OK() {
			t.Errorf("%s: regression passed the gate", c.name)
			continue
		}
		found := false
		for _, f := range rep.Failures {
			if strings.Contains(f, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: failures %v mention nothing like %q", c.name, rep.Failures, c.want)
		}
	}
}

// TestCheckLatencyFloor: a fast server may double its p99 and still
// pass while under the absolute floor — ratio noise on shared
// runners must not gate.
func TestCheckLatencyFloor(t *testing.T) {
	b := &Baseline{Report: baseReport()}
	b.Report.P99 = 0.002
	b.Report.P999 = 0.004
	cur := baseReport()
	cur.P99 = 0.02  // 10× but under the 25ms floor
	cur.P999 = 0.02 // 5× but under the floor
	if rep := Check(b, &cur); !rep.OK() {
		t.Fatalf("sub-floor latency jitter failed the gate: %v", rep.Failures)
	}
}

// TestCheckCustomTolerances: tolerances committed in the baseline
// override the defaults.
func TestCheckCustomTolerances(t *testing.T) {
	b := &Baseline{
		Report:     baseReport(),
		Tolerances: Tolerances{MaxP99Factor: 10},
	}
	cur := baseReport()
	cur.P99 = 0.4 // 8×: fails default 2×, passes committed 10×
	if rep := Check(b, &cur); !rep.OK() {
		t.Fatalf("run within committed tolerances failed: %v", rep.Failures)
	}
}

// TestCheckNoKneeInBaseline: a baseline without a sweep gates only
// on the reference-rate SLOs.
func TestCheckNoKneeInBaseline(t *testing.T) {
	b := &Baseline{Report: baseReport()}
	b.Report.KneeRate = 0
	cur := baseReport()
	cur.KneeRate = 0
	if rep := Check(b, &cur); !rep.OK() {
		t.Fatalf("kneeless baseline failed: %v", rep.Failures)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "SLO_BASELINE.json")
	want := &Baseline{Report: baseReport(), Tolerances: Tolerances{MaxKneeDrop: 0.5}}
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Report.ReferenceRate != want.Report.ReferenceRate ||
		got.Tolerances.MaxKneeDrop != want.Tolerances.MaxKneeDrop {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load accepted a missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := Save(empty, &Baseline{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Error("Load accepted a baseline with no run")
	}
}
