// Package slogate implements the CI tail-latency gate, the sibling
// of internal/benchgate: where benchgate blocks ns/op regressions on
// the hot kernels, slogate blocks regressions in what users actually
// experience under sustained load — availability and p99/p999 at the
// reference offered rate, and the position of the latency/throughput
// knee — by comparing a fresh capsnet-load report against the
// committed SLO_BASELINE.json. Tolerances live in the baseline file
// so they are reviewed like any other SLO change.
package slogate

import (
	"encoding/json"
	"fmt"
	"os"

	"pimcapsnet/internal/loadgen"
)

// Default tolerances, applied when the baseline leaves a field zero.
// They are deliberately loose: shared CI runners add real latency
// noise, and the gate exists to catch the step-function regressions —
// a serialization point on the batch path, a lost shed response, a
// collapsed knee — not 10% jitter.
const (
	// DefaultMaxAvailabilityDrop is the absolute availability loss
	// allowed at the reference rate (baseline 0.999 → floor 0.979).
	DefaultMaxAvailabilityDrop = 0.02
	// DefaultMaxP99Factor is the allowed multiplicative p99 growth.
	DefaultMaxP99Factor = 2.0
	// DefaultMaxP999Factor is the allowed multiplicative p999 growth.
	DefaultMaxP999Factor = 2.5
	// DefaultMaxKneeDrop is the allowed fractional knee-rate loss.
	DefaultMaxKneeDrop = 0.3
	// DefaultLatencyFloor is the absolute latency budget below which
	// quantile ratios are ignored: a 2× regression from 1ms to 2ms on
	// a shared runner is noise, not a finding.
	DefaultLatencyFloor = 0.025
)

// Tolerances bound how far a run may drift from the baseline before
// the gate fails.
type Tolerances struct {
	MaxAvailabilityDrop float64 `json:"max_availability_drop"`
	MaxP99Factor        float64 `json:"max_p99_factor"`
	MaxP999Factor       float64 `json:"max_p999_factor"`
	MaxKneeDrop         float64 `json:"max_knee_drop"`
	LatencyFloor        float64 `json:"latency_floor_seconds"`
}

func (t Tolerances) withDefaults() Tolerances {
	if t.MaxAvailabilityDrop <= 0 {
		t.MaxAvailabilityDrop = DefaultMaxAvailabilityDrop
	}
	if t.MaxP99Factor <= 0 {
		t.MaxP99Factor = DefaultMaxP99Factor
	}
	if t.MaxP999Factor <= 0 {
		t.MaxP999Factor = DefaultMaxP999Factor
	}
	if t.MaxKneeDrop <= 0 {
		t.MaxKneeDrop = DefaultMaxKneeDrop
	}
	if t.LatencyFloor <= 0 {
		t.LatencyFloor = DefaultLatencyFloor
	}
	return t
}

// Baseline is the committed gate reference (SLO_BASELINE.json): the
// report of a blessed run plus the tolerances future runs are held
// to.
type Baseline struct {
	Report     loadgen.Report `json:"report"`
	Tolerances Tolerances     `json:"tolerances"`
}

// Load reads a baseline JSON file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("slogate: parsing %s: %w", path, err)
	}
	if b.Report.Offered == 0 {
		return nil, fmt.Errorf("slogate: baseline %s holds no load run", path)
	}
	return &b, nil
}

// Save writes a baseline as deterministic, indented JSON.
func Save(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Report is the outcome of a gate check.
type Report struct {
	// Lines holds the human-readable comparison.
	Lines []string
	// Failures lists gate violations; empty means the gate passes.
	Failures []string
}

// OK reports whether the gate passed.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Check compares a fresh run against the baseline. The run must have
// been measured at the baseline's reference rate and shape — a sweep
// at a different operating point is a config error, not a regression,
// and fails loudly.
func Check(base *Baseline, cur *loadgen.Report) *Report {
	rep := &Report{}
	tol := base.Tolerances.withDefaults()
	b := &base.Report

	if cur.Shape != b.Shape || cur.Seed != b.Seed {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"run replayed shape %s/seed %d but the baseline pins %s/%d — regenerate the baseline or fix the flags",
			cur.Shape, cur.Seed, b.Shape, b.Seed))
	}
	if ratio(cur.ReferenceRate, b.ReferenceRate) > 1.001 || ratio(b.ReferenceRate, cur.ReferenceRate) > 1.001 {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"run offered %.4g req/s but the baseline was measured at %.4g — SLOs only compare at the same operating point",
			cur.ReferenceRate, b.ReferenceRate))
	}

	rep.Lines = append(rep.Lines, fmt.Sprintf("availability    %8.4f -> %8.4f  (floor %.4f)",
		b.Availability, cur.Availability, b.Availability-tol.MaxAvailabilityDrop))
	if cur.Availability < b.Availability-tol.MaxAvailabilityDrop {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"availability at %.4g req/s dropped %.4f -> %.4f (allowed drop %.4f)",
			b.ReferenceRate, b.Availability, cur.Availability, tol.MaxAvailabilityDrop))
	}

	checkQuantile(rep, "p99", b.P99, cur.P99, tol.MaxP99Factor, tol.LatencyFloor)
	checkQuantile(rep, "p999", b.P999, cur.P999, tol.MaxP999Factor, tol.LatencyFloor)

	if b.KneeRate > 0 {
		floor := b.KneeRate * (1 - tol.MaxKneeDrop)
		rep.Lines = append(rep.Lines, fmt.Sprintf("knee rate       %8.4g -> %8.4g  (floor %.4g)",
			b.KneeRate, cur.KneeRate, floor))
		if cur.KneeRate < floor {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"latency/throughput knee fell %.4g -> %.4g req/s (allowed drop %.0f%%)",
				b.KneeRate, cur.KneeRate, 100*tol.MaxKneeDrop))
		}
	}
	if cur.MaxLateness > 0.1 {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"generator fell %.3gs behind its own schedule — the run is not open-loop-faithful; rerun on a quieter machine",
			cur.MaxLateness))
	}
	return rep
}

// checkQuantile gates one latency quantile: regression beyond
// factor× the baseline fails, unless the current value is still
// under the absolute floor where ratios are all noise.
func checkQuantile(rep *Report, name string, base, cur, factor, floor float64) {
	budget := base * factor
	if budget < floor {
		budget = floor
	}
	rep.Lines = append(rep.Lines, fmt.Sprintf("%-8s %12.4gs -> %8.4gs  (budget %.4gs)", name, base, cur, budget))
	if cur > budget {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"%s regressed %.4gs -> %.4gs (budget %.4gs = max(%.3g× baseline, %.3gs floor))",
			name, base, cur, budget, factor, floor))
	}
}

// ratio returns a/b guarding the zero denominator.
func ratio(a, b float64) float64 {
	if b <= 0 {
		if a <= 0 {
			return 1
		}
		return 2 // forces the mismatch failure
	}
	return a / b
}
