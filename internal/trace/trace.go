// Package trace records simulation and serving timelines and writes
// them in the Chrome trace-event format (chrome://tracing, Perfetto),
// so a co-simulation run — or a window of served requests — renders
// as a Gantt chart of vault activity, communication phases, or
// request pipeline stages.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Event is one timeline entry (a subset of the trace-event spec:
// complete "X", instant "i", counter "C", and metadata "M" events).
type Event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	TS   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds (complete events)
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	// S is the instant-event scope ("t" thread, "p" process, "g"
	// global); empty for other phases.
	S string `json:"s,omitempty"`
	// Args carries string annotations for complete/instant events and
	// numeric series values for counter events (Perfetto graphs
	// counters only when the values are JSON numbers).
	Args map[string]any `json:"args,omitempty"`
}

// Log accumulates events.
type Log struct {
	events []Event
}

// stringArgs widens a string map to the Event arg type (nil stays
// nil, so argless events carry no empty maps).
func stringArgs(args map[string]string) map[string]any {
	if args == nil {
		return nil
	}
	out := make(map[string]any, len(args))
	for k, v := range args {
		out[k] = v
	}
	return out
}

// Complete records a complete ("X") event on process pid / track tid
// spanning [start, start+dur) microseconds.
func (l *Log) Complete(name, cat string, pid, tid int, start, dur float64, args map[string]string) {
	if dur < 0 {
		panic(fmt.Sprintf("trace: negative duration %v for %q", dur, name))
	}
	l.events = append(l.events, Event{
		Name: name, Cat: cat, Ph: "X",
		TS: start, Dur: dur, PID: pid, TID: tid, Args: stringArgs(args),
	})
}

// Instant records an instant ("i") event — a zero-duration marker —
// at ts microseconds on process pid / track tid, with thread scope so
// viewers draw it on that track.
func (l *Log) Instant(name, cat string, pid, tid int, ts float64, args map[string]string) {
	l.events = append(l.events, Event{
		Name: name, Cat: cat, Ph: "i", S: "t",
		TS: ts, PID: pid, TID: tid, Args: stringArgs(args),
	})
}

// ProcessName records a metadata ("M") event naming the process pid —
// trace viewers label pid's whole track group with it, which is how a
// merged fleet trace shows "router" and "replica-0..N" as distinct
// process tracks on one timeline.
func (l *Log) ProcessName(pid int, name string) {
	l.events = append(l.events, Event{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name},
	})
}

// ThreadName records a metadata ("M") event naming thread tid within
// process pid (e.g. one attempt's track inside a replica process).
func (l *Log) ThreadName(pid, tid int, name string) {
	l.events = append(l.events, Event{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Counter records a counter ("C") sample at ts microseconds: each
// series name maps to its value at that instant, and trace viewers
// render the series as a stacked area chart on its own track.
func (l *Log) Counter(name string, pid int, ts float64, series map[string]float64) {
	args := make(map[string]any, len(series))
	for k, v := range series {
		args[k] = v
	}
	l.events = append(l.events, Event{
		Name: name, Ph: "C", TS: ts, PID: pid, Args: args,
	})
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns a copy of the recorded events sorted by start time.
func (l *Log) Events() []Event {
	out := append([]Event(nil), l.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Merge appends every event of other into l.
func (l *Log) Merge(other *Log) {
	if other == nil {
		return
	}
	l.events = append(l.events, other.events...)
}

// WriteJSON writes the log in the Chrome trace-event JSON format.
func (l *Log) WriteJSON(w io.Writer) error {
	payload := struct {
		TraceEvents []Event `json:"traceEvents"`
		DisplayUnit string  `json:"displayTimeUnit"`
	}{TraceEvents: l.Events(), DisplayUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(payload)
}

// ReadJSON parses a Chrome trace-event JSON payload previously
// produced by WriteJSON (the round-trip the observability smoke test
// uses to validate /debug/requests/trace output).
func ReadJSON(r io.Reader) (*Log, error) {
	var payload struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&payload); err != nil {
		return nil, fmt.Errorf("trace: decoding trace-event JSON: %w", err)
	}
	for i, e := range payload.TraceEvents {
		switch e.Ph {
		case "X", "i", "C", "M":
		default:
			return nil, fmt.Errorf("trace: event %d has unsupported phase %q", i, e.Ph)
		}
		if e.Ph == "X" && e.Dur < 0 {
			return nil, fmt.Errorf("trace: event %d (%q) has negative duration %v", i, e.Name, e.Dur)
		}
	}
	return &Log{events: payload.TraceEvents}, nil
}

// TotalSpan returns the [min start, max end] extent of the log.
func (l *Log) TotalSpan() (start, end float64) {
	if len(l.events) == 0 {
		return 0, 0
	}
	start = l.events[0].TS
	for _, e := range l.events {
		if e.TS < start {
			start = e.TS
		}
		if e.TS+e.Dur > end {
			end = e.TS + e.Dur
		}
	}
	return start, end
}
