// Package trace records simulation timelines and writes them in the
// Chrome trace-event format (chrome://tracing, Perfetto), so a
// co-simulation run renders as a Gantt chart of vault activity and
// communication phases.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Event is one timeline entry (a subset of the trace-event spec: only
// complete events, phase "X").
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Log accumulates events.
type Log struct {
	events []Event
}

// Complete records a complete ("X") event on process pid / track tid
// spanning [start, start+dur) microseconds.
func (l *Log) Complete(name, cat string, pid, tid int, start, dur float64, args map[string]string) {
	if dur < 0 {
		panic(fmt.Sprintf("trace: negative duration %v for %q", dur, name))
	}
	l.events = append(l.events, Event{
		Name: name, Cat: cat, Ph: "X",
		TS: start, Dur: dur, PID: pid, TID: tid, Args: args,
	})
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns a copy of the recorded events sorted by start time.
func (l *Log) Events() []Event {
	out := append([]Event(nil), l.events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// WriteJSON writes the log in the Chrome trace-event JSON format.
func (l *Log) WriteJSON(w io.Writer) error {
	payload := struct {
		TraceEvents []Event `json:"traceEvents"`
		DisplayUnit string  `json:"displayTimeUnit"`
	}{TraceEvents: l.Events(), DisplayUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(payload)
}

// TotalSpan returns the [min start, max end] extent of the log.
func (l *Log) TotalSpan() (start, end float64) {
	if len(l.events) == 0 {
		return 0, 0
	}
	start = l.events[0].TS
	for _, e := range l.events {
		if e.TS < start {
			start = e.TS
		}
		if e.TS+e.Dur > end {
			end = e.TS + e.Dur
		}
	}
	return start, end
}
