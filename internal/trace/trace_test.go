package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCompleteAndSpan(t *testing.T) {
	var l Log
	l.Complete("b", "cat", 0, 1, 5, 3, nil)
	l.Complete("a", "cat", 0, 0, 0, 2, map[string]string{"k": "v"})
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	start, end := l.TotalSpan()
	if start != 0 || end != 8 {
		t.Fatalf("span [%v, %v], want [0, 8]", start, end)
	}
	evs := l.Events()
	if evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatal("Events must sort by start time")
	}
}

func TestWriteJSONIsValidChromeTrace(t *testing.T) {
	var l Log
	l.Complete("phase", "vault-compute", 0, 3, 10, 4, map[string]string{"bytes": "64"})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 1 {
		t.Fatalf("%d events", len(parsed.TraceEvents))
	}
	e := parsed.TraceEvents[0]
	if e.Ph != "X" || e.TID != 3 || e.Dur != 4 || e.Args["bytes"] != "64" {
		t.Fatalf("event %+v", e)
	}
	if !strings.Contains(buf.String(), "displayTimeUnit") {
		t.Fatal("missing display unit")
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	var l Log
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Complete("x", "", 0, 0, 0, -1, nil)
}

func TestEmptySpan(t *testing.T) {
	var l Log
	if s, e := l.TotalSpan(); s != 0 || e != 0 {
		t.Fatal("empty log span must be zero")
	}
}

func TestInstantAndCounterEvents(t *testing.T) {
	var l Log
	l.Instant("marker", "serve", 1, 2, 7, map[string]string{"trace_id": "abc"})
	l.Counter("inflight", 1, 9, map[string]float64{"requests": 3})
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	in, ctr := evs[0], evs[1]
	if in.Ph != "i" || in.S != "t" || in.TS != 7 || in.TID != 2 {
		t.Errorf("instant event %+v", in)
	}
	if in.Args["trace_id"] != "abc" {
		t.Errorf("instant args %v", in.Args)
	}
	if ctr.Ph != "C" || ctr.TS != 9 {
		t.Errorf("counter event %+v", ctr)
	}
	if v, ok := ctr.Args["requests"].(float64); !ok || v != 3 {
		t.Errorf("counter series %v, want numeric 3", ctr.Args)
	}
	// TotalSpan treats zero-duration events as points.
	if s, e := l.TotalSpan(); s != 7 || e != 9 {
		t.Errorf("span [%v, %v], want [7, 9]", s, e)
	}
}

// TestReadJSONRoundTrip writes a mixed log and parses it back,
// checking phases, args, and numeric counter values survive.
func TestReadJSONRoundTrip(t *testing.T) {
	var l Log
	l.Complete("forward", "serve", 1, 1, 0, 12, map[string]string{"trace_id": "x"})
	l.Instant("done", "serve", 1, 1, 12, nil)
	l.Counter("completed", 1, 12, map[string]float64{"requests": 1})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("round-trip kept %d events, want 3", got.Len())
	}
	evs := got.Events()
	if evs[0].Ph != "X" || evs[0].Dur != 12 || evs[0].Args["trace_id"] != "x" {
		t.Errorf("complete event %+v", evs[0])
	}
	var sawCounter bool
	for _, e := range evs {
		if e.Ph == "C" {
			sawCounter = true
			if v, ok := e.Args["requests"].(float64); !ok || v != 1 {
				t.Errorf("counter args %v", e.Args)
			}
		}
	}
	if !sawCounter {
		t.Error("counter event lost in round-trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"traceEvents":[{"ph":"Z","name":"x"}]}`)); err == nil {
		t.Error("unsupported phase accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"traceEvents":[{"ph":"X","name":"x","dur":-4}]}`)); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestMerge(t *testing.T) {
	var a, b Log
	a.Complete("one", "", 0, 0, 0, 1, nil)
	b.Complete("two", "", 0, 1, 2, 1, nil)
	a.Merge(&b)
	a.Merge(nil)
	if a.Len() != 2 {
		t.Fatalf("merged len %d, want 2", a.Len())
	}
}
