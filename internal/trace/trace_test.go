package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCompleteAndSpan(t *testing.T) {
	var l Log
	l.Complete("b", "cat", 0, 1, 5, 3, nil)
	l.Complete("a", "cat", 0, 0, 0, 2, map[string]string{"k": "v"})
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	start, end := l.TotalSpan()
	if start != 0 || end != 8 {
		t.Fatalf("span [%v, %v], want [0, 8]", start, end)
	}
	evs := l.Events()
	if evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatal("Events must sort by start time")
	}
}

func TestWriteJSONIsValidChromeTrace(t *testing.T) {
	var l Log
	l.Complete("phase", "vault-compute", 0, 3, 10, 4, map[string]string{"bytes": "64"})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 1 {
		t.Fatalf("%d events", len(parsed.TraceEvents))
	}
	e := parsed.TraceEvents[0]
	if e.Ph != "X" || e.TID != 3 || e.Dur != 4 || e.Args["bytes"] != "64" {
		t.Fatalf("event %+v", e)
	}
	if !strings.Contains(buf.String(), "displayTimeUnit") {
		t.Fatal("missing display unit")
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	var l Log
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Complete("x", "", 0, 0, 0, -1, nil)
}

func TestEmptySpan(t *testing.T) {
	var l Log
	if s, e := l.TotalSpan(); s != 0 || e != 0 {
		t.Fatal("empty log span must be zero")
	}
}
