//pimcaps:bitexact

package fault

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func finite(x float32) bool {
	return !math.IsNaN(float64(x)) && !math.IsInf(float64(x), 0)
}

// TestFlipBitDeterminism: the same seed yields the same flip stream,
// so a logged seed replays a campaign exactly.
func TestFlipBitDeterminism(t *testing.T) {
	a := make([]float32, 64)
	b := make([]float32, 64)
	for i := range a {
		a[i] = float32(i) * 0.25
		b[i] = float32(i) * 0.25
	}
	ia, ib := New(42), New(42)
	for i := 0; i < 32; i++ {
		ai, ab := ia.FlipBit(a)
		bi, bb := ib.FlipBit(b)
		if ai != bi || ab != bb {
			t.Fatalf("flip %d diverged: (%d,%d) vs (%d,%d)", i, ai, ab, bi, bb)
		}
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("element %d diverged: %x vs %x", i, math.Float32bits(a[i]), math.Float32bits(b[i]))
		}
	}
}

// TestFlipBitInverts: flipping the same (index, bit) twice restores
// the original value, so campaigns can undo their own corruption.
func TestFlipBitRoundTrip(t *testing.T) {
	data := []float32{1.5}
	in := New(7)
	idx, bit := in.FlipBit(data)
	if idx != 0 {
		t.Fatalf("idx %d in 1-element slice", idx)
	}
	data[0] = math.Float32frombits(math.Float32bits(data[0]) ^ (1 << uint(bit)))
	if data[0] != 1.5 {
		t.Fatalf("double flip gave %g, want 1.5", data[0])
	}
}

// TestReset rewinds the decision stream.
func TestReset(t *testing.T) {
	in := New(99)
	a := make([]float32, 16)
	i1, b1 := in.FlipBit(a)
	in.Reset()
	i2, b2 := in.FlipBit(a)
	if i1 != i2 || b1 != b2 {
		t.Fatalf("reset did not rewind: (%d,%d) vs (%d,%d)", i1, b1, i2, b2)
	}
}

// TestCorruptNonFinite poisons elements with NaN/Inf only.
func TestCorruptNonFinite(t *testing.T) {
	data := make([]float32, 32)
	New(3).CorruptNonFinite(data, 8)
	poisoned := 0
	for _, v := range data {
		if !finite(v) {
			poisoned++
		}
	}
	if poisoned == 0 {
		t.Fatal("no element poisoned")
	}
	if poisoned > 8 {
		t.Fatalf("%d elements poisoned, asked for 8", poisoned)
	}
}

// TestGateCountdown: a gate armed for n fires exactly n times, under
// concurrency, and the zero value never fires.
func TestGateCountdown(t *testing.T) {
	var zero Gate
	if zero.Fire() || zero.Armed() {
		t.Fatal("zero-value gate fired")
	}
	var g Gate
	g.Arm(10)
	var mu sync.Mutex
	n := 0
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g.Fire() {
					mu.Lock()
					n++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if n != 10 {
		t.Fatalf("gate fired %d times, armed for 10", n)
	}
	g.Arm(5)
	g.Disarm()
	if g.Fire() {
		t.Fatal("disarmed gate fired")
	}
}

// TestHooksDisarmedAreNoOps: every hook builder is inert while its
// gate is disarmed.
func TestHooksDisarmedAreNoOps(t *testing.T) {
	in := New(1)
	var g Gate // disarmed
	img := []float32{1, 2, 3, 4}
	images := [][]float32{img}
	CorruptBatchHook(in, &g, 2)(images)
	FlipBatchHook(in, &g, 2)(images)
	PanicBatchHook(&g)(images)
	StallBatchHook(&g, time.Hour)(images)
	CorruptSliceHook(in, &g, 2)(img)
	PanicSliceHook(&g)(img)
	for i, v := range img {
		if v != float32(i+1) {
			t.Fatalf("disarmed hook mutated element %d: %g", i, v)
		}
	}
}

// TestPanicHookCarriesSentinel: an injected panic is recognizable via
// errors.Is on the recovered value.
func TestPanicHookCarriesSentinel(t *testing.T) {
	var g Gate
	g.Arm(1)
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("armed panic hook did not panic")
		}
		err, ok := p.(error)
		if !ok || !errors.Is(err, ErrInjectedPanic) {
			t.Fatalf("panic value %v, want ErrInjectedPanic", p)
		}
	}()
	PanicBatchHook(&g)(nil)
}

// TestChainBatchHooks runs hooks in order and skips nils.
func TestChainBatchHooks(t *testing.T) {
	var order []int
	h := ChainBatchHooks(
		func([][]float32) { order = append(order, 1) },
		nil,
		func([][]float32) { order = append(order, 2) },
	)
	h(nil)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("chain order %v, want [1 2]", order)
	}
}

// TestDurationSeededAndBounded: Duration stays in [min, max], is
// reproducible from the seed, and a degenerate range pins the value.
func TestDurationSeededAndBounded(t *testing.T) {
	in := New(11)
	var first []time.Duration
	for i := 0; i < 100; i++ {
		d := in.Duration(5*time.Millisecond, 20*time.Millisecond)
		if d < 5*time.Millisecond || d > 20*time.Millisecond {
			t.Fatalf("Duration %v outside [5ms, 20ms]", d)
		}
		first = append(first, d)
	}
	in.Reset()
	for i := 0; i < 100; i++ {
		if d := in.Duration(5*time.Millisecond, 20*time.Millisecond); d != first[i] {
			t.Fatalf("draw %d after Reset: %v, want %v (not seed-reproducible)", i, d, first[i])
		}
	}
	if d := in.Duration(time.Second, time.Second); d != time.Second {
		t.Fatalf("degenerate range returned %v, want 1s", d)
	}
	if d := in.Duration(time.Second, 0); d != time.Second {
		t.Fatalf("inverted range returned %v, want min", d)
	}
}

// TestPressureBatchHook: armed, the hook delays the batch; disarmed,
// it costs nothing and sleeps never.
func TestPressureBatchHook(t *testing.T) {
	in := New(7)
	var g Gate
	hook := PressureBatchHook(in, &g, 10*time.Millisecond, 10*time.Millisecond)

	start := time.Now()
	hook(nil) // disarmed: no delay
	if elapsed := time.Since(start); elapsed > 5*time.Millisecond {
		t.Fatalf("disarmed pressure hook took %v", elapsed)
	}

	g.Arm(2)
	start = time.Now()
	hook(nil)
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("armed pressure hook slept only %v, want ≥ 10ms", elapsed)
	}
	hook(nil)
	if g.Armed() {
		t.Fatal("gate still armed after its two firings")
	}
	start = time.Now()
	hook(nil)
	if elapsed := time.Since(start); elapsed > 5*time.Millisecond {
		t.Fatalf("exhausted pressure hook took %v", elapsed)
	}
}
