// Package fault is a deterministic, seeded fault-injection framework
// for the serving stack. It provides the low-level corruptions the
// PIM-CapsNet robustness campaign needs — bit flips in weight or
// activation tensors, NaN/Inf injection at routing inputs, forced
// panics inside worker functions, and artificial batch stalls — as
// composable hooks that plug into the optional hook points exposed by
// internal/capsnet (Network.RoutingInputHook) and internal/serve
// (Config.PreRunHook).
//
// Two properties drive the design:
//
//   - Reproducibility: every random decision flows from one Injector
//     seed, so a failing campaign run is replayed exactly by reusing
//     the seed it logged.
//   - Zero overhead when disabled: hook points are nil-checked
//     function fields and every hook is guarded by a Gate that is
//     disarmed (a single atomic load) by default, so production
//     binaries pay nothing.
//
// The package depends only on the standard library; the packages it
// injects faults into never import it, they only expose hooks.
package fault

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedPanic is the value forced panics carry, so recovery
// paths (and tests) can tell an injected panic from a real bug.
var ErrInjectedPanic = errors.New("fault: injected panic")

// Injector is a deterministic source of fault decisions. All methods
// are safe for concurrent use; the shared RNG is serialized by a
// mutex, which is irrelevant for performance because injection only
// runs in fault campaigns.
type Injector struct {
	mu sync.Mutex
	// seed is immutable after New; only the RNG stream needs the lock.
	seed int64
	//pimcaps:guardedby mu
	rng *rand.Rand
}

// New returns an Injector whose whole decision stream derives from
// seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed the injector was built with, for logging a
// reproduction recipe alongside campaign failures.
func (in *Injector) Seed() int64 { return in.seed }

// Reset rewinds the decision stream to its initial seeded state, so
// one Injector can drive several identical campaign phases.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rng = rand.New(rand.NewSource(in.seed))
}

// FlipBit flips one uniformly chosen bit of one uniformly chosen
// element of data (a single-event upset in a weight or activation
// tensor) and returns the element index and bit position for logging.
func (in *Injector) FlipBit(data []float32) (idx, bit int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	idx = in.rng.Intn(len(data))
	bit = in.rng.Intn(32)
	data[idx] = math.Float32frombits(math.Float32bits(data[idx]) ^ (1 << uint(bit)))
	return idx, bit
}

// FlipBits applies n independent FlipBit events to data.
func (in *Injector) FlipBits(data []float32, n int) {
	for i := 0; i < n; i++ {
		in.FlipBit(data)
	}
}

// Duration returns a seeded-uniform duration in [min, max] — the
// per-batch slowdown of the queue-pressure injector. min == max pins
// it exactly.
func (in *Injector) Duration(min, max time.Duration) time.Duration {
	if max <= min {
		return min
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return min + time.Duration(in.rng.Int63n(int64(max-min)+1))
}

// CorruptNonFinite overwrites n uniformly chosen elements of data
// with a random choice of NaN, +Inf, or −Inf — the values the PE
// approximations saturate to at their domain edges.
func (in *Injector) CorruptNonFinite(data []float32, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	poison := []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1))}
	for i := 0; i < n; i++ {
		data[in.rng.Intn(len(data))] = poison[in.rng.Intn(len(poison))]
	}
}

// Gate arms a hook for a bounded number of firings. The zero value is
// permanently disarmed; Fire on a disarmed gate is one atomic load.
// Gates make injectors composable: several hooks can share one chain
// while each fires only during its own campaign phase.
type Gate struct {
	remaining atomic.Int64
}

// Arm allows the next n firings.
func (g *Gate) Arm(n int) { g.remaining.Store(int64(n)) }

// Disarm cancels any remaining firings.
func (g *Gate) Disarm() { g.remaining.Store(0) }

// Armed reports whether at least one firing remains.
func (g *Gate) Armed() bool { return g.remaining.Load() > 0 }

// Fire consumes one firing and reports whether the fault should
// trigger.
func (g *Gate) Fire() bool {
	for {
		n := g.remaining.Load()
		if n <= 0 {
			return false
		}
		if g.remaining.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// BatchHook is the signature of internal/serve's pre-run hook: it
// observes (and may mutate) the assembled micro-batch images.
type BatchHook func(images [][]float32)

// SliceHook is the signature of internal/capsnet's routing-input
// hook: it observes (and may mutate) a flattened activation tensor.
type SliceHook func(data []float32)

// CorruptBatchHook returns a BatchHook that, while g is armed,
// injects perImage non-finite values into every image of the batch.
func CorruptBatchHook(in *Injector, g *Gate, perImage int) BatchHook {
	return func(images [][]float32) {
		if !g.Fire() {
			return
		}
		for _, img := range images {
			in.CorruptNonFinite(img, perImage)
		}
	}
}

// FlipBatchHook returns a BatchHook that, while g is armed, flips
// bitsPerImage random bits in every image of the batch.
func FlipBatchHook(in *Injector, g *Gate, bitsPerImage int) BatchHook {
	return func(images [][]float32) {
		if !g.Fire() {
			return
		}
		for _, img := range images {
			in.FlipBits(img, bitsPerImage)
		}
	}
}

// PanicBatchHook returns a BatchHook that panics with
// ErrInjectedPanic while g is armed — the forced-panic injector for
// batcher work functions.
func PanicBatchHook(g *Gate) BatchHook {
	return func([][]float32) {
		if g.Fire() {
			panic(ErrInjectedPanic)
		}
	}
}

// StallBatchHook returns a BatchHook that sleeps for d while g is
// armed — the artificial batch stall the serve watchdog must bound.
func StallBatchHook(g *Gate, d time.Duration) BatchHook {
	return func([][]float32) {
		if g.Fire() {
			time.Sleep(d)
		}
	}
}

// PressureBatchHook returns a BatchHook that, while g is armed, delays
// each batch by a seeded-uniform duration in [min, max] — synthetic
// queue pressure for overload drills: slowing the runner makes the
// admission queue back up, which drives queue waits (the brownout
// controller's input signal) and eventually 429 backpressure, without
// wedging a batch outright the way StallBatchHook does. Arm the gate
// with the number of batches one pressure wave should slow.
func PressureBatchHook(in *Injector, g *Gate, min, max time.Duration) BatchHook {
	return func([][]float32) {
		if g.Fire() {
			time.Sleep(in.Duration(min, max))
		}
	}
}

// ChainBatchHooks composes hooks into one BatchHook that runs them in
// order; nil entries are skipped.
func ChainBatchHooks(hooks ...BatchHook) BatchHook {
	return func(images [][]float32) {
		for _, h := range hooks {
			if h != nil {
				h(images)
			}
		}
	}
}

// CorruptSliceHook returns a SliceHook that injects n non-finite
// values while g is armed — NaN/Inf injection at routing inputs.
func CorruptSliceHook(in *Injector, g *Gate, n int) SliceHook {
	return func(data []float32) {
		if g.Fire() {
			in.CorruptNonFinite(data, n)
		}
	}
}

// PanicSliceHook returns a SliceHook that panics with
// ErrInjectedPanic while g is armed — the forced-panic injector for
// parallelFor work functions reached through the forward pass.
func PanicSliceHook(g *Gate) SliceHook {
	return func([]float32) {
		if g.Fire() {
			panic(ErrInjectedPanic)
		}
	}
}
