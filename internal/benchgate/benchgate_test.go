//pimcaps:bitexact

package benchgate

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pimcapsnet
BenchmarkDynamicRoutingMNIST-4   	       5	  12000000 ns/op	     160 B/op	       4 allocs/op
BenchmarkDynamicRoutingMNIST-4   	       5	  14000000 ns/op	     160 B/op	       4 allocs/op
BenchmarkDynamicRoutingMNIST-4   	       5	  13000000 ns/op	     160 B/op	       4 allocs/op
BenchmarkForwardArenaSteady-4    	       5	   1500000 ns/op	       0 B/op	       0 allocs/op
BenchmarkForwardArenaSteady-4    	       5	   1600000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	pimcapsnet	1.234s
`

func TestParseStripsSuffixAndCollectsRuns(t *testing.T) {
	runs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(runs["BenchmarkDynamicRoutingMNIST"]); got != 3 {
		t.Fatalf("routing runs = %d, want 3 (name suffix not stripped?)", got)
	}
	if got := len(runs["BenchmarkForwardArenaSteady"]); got != 2 {
		t.Fatalf("arena runs = %d, want 2", got)
	}
	if runs["BenchmarkForwardArenaSteady"][0].AllocsPerOp != 0 {
		t.Fatal("arena allocs/op should parse as 0")
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}

func TestMediansOddAndEven(t *testing.T) {
	runs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	med := Medians(runs)
	if got := med["BenchmarkDynamicRoutingMNIST"].NsPerOp; got != 13000000 {
		t.Fatalf("odd-count median = %v, want 13000000", got)
	}
	if got := med["BenchmarkForwardArenaSteady"].NsPerOp; got != 1550000 {
		t.Fatalf("even-count median = %v, want 1550000", got)
	}
}

func baselineForTest() *Baseline {
	return &Baseline{
		Hot: []string{"BenchmarkHotA", "BenchmarkHotB"},
		Benchmarks: map[string]Stat{
			"BenchmarkHotA": {NsPerOp: 1000, AllocsPerOp: 0},
			"BenchmarkHotB": {NsPerOp: 2000, AllocsPerOp: 4},
			"BenchmarkCold": {NsPerOp: 500, AllocsPerOp: 100},
		},
	}
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	rep := Check(baselineForTest(), map[string]Stat{
		"BenchmarkHotA": {NsPerOp: 1050, AllocsPerOp: 0},
		"BenchmarkHotB": {NsPerOp: 2100, AllocsPerOp: 4},
		"BenchmarkCold": {NsPerOp: 5000, AllocsPerOp: 999}, // cold never gates
	})
	if !rep.OK() {
		t.Fatalf("want pass, got failures %v", rep.Failures)
	}
	if rep.Geomean < 1.04 || rep.Geomean > 1.06 {
		t.Fatalf("geomean = %v, want ~1.05", rep.Geomean)
	}
}

func TestCheckFailsOnGeomeanRegression(t *testing.T) {
	rep := Check(baselineForTest(), map[string]Stat{
		"BenchmarkHotA": {NsPerOp: 1200, AllocsPerOp: 0},
		"BenchmarkHotB": {NsPerOp: 2400, AllocsPerOp: 4},
	})
	if rep.OK() {
		t.Fatal("want failure at +20% geomean")
	}
}

func TestCheckFailsOnAllocIncrease(t *testing.T) {
	rep := Check(baselineForTest(), map[string]Stat{
		"BenchmarkHotA": {NsPerOp: 1000, AllocsPerOp: 1}, // 0 -> 1 allocs
		"BenchmarkHotB": {NsPerOp: 2000, AllocsPerOp: 4},
	})
	if rep.OK() {
		t.Fatal("want failure when a hot benchmark starts allocating")
	}
}

func TestCheckFailsOnMissingHot(t *testing.T) {
	rep := Check(baselineForTest(), map[string]Stat{
		"BenchmarkHotA": {NsPerOp: 1000},
	})
	if rep.OK() {
		t.Fatal("want failure when a hot benchmark disappears")
	}
}

func TestCheckImprovementPasses(t *testing.T) {
	rep := Check(baselineForTest(), map[string]Stat{
		"BenchmarkHotA": {NsPerOp: 800, AllocsPerOp: 0},
		"BenchmarkHotB": {NsPerOp: 1500, AllocsPerOp: 2},
	})
	if !rep.OK() {
		t.Fatalf("improvements must pass, got %v", rep.Failures)
	}
	if rep.Geomean >= 1 {
		t.Fatalf("geomean = %v, want < 1", rep.Geomean)
	}
}

func TestEmitBenchFormatRoundTrips(t *testing.T) {
	base := baselineForTest()
	var sb strings.Builder
	EmitBenchFormat(&sb, base)
	runs, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("emitted format did not re-parse: %v", err)
	}
	med := Medians(runs)
	for name, want := range base.Benchmarks {
		got := med[name]
		if got.NsPerOp != want.NsPerOp || got.AllocsPerOp != want.AllocsPerOp {
			t.Fatalf("%s round-trip = %+v, want %+v", name, got, want)
		}
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	path := t.TempDir() + "/baseline.json"
	base := baselineForTest()
	if err := Save(path, base); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Hot) != len(base.Hot) || len(got.Benchmarks) != len(base.Benchmarks) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Benchmarks["BenchmarkHotB"].NsPerOp != 2000 {
		t.Fatal("benchmark stats lost in round-trip")
	}
}
