// Package benchgate implements the CI benchmark-regression gate: it
// parses `go test -bench` output, condenses repeated runs (-count=N)
// to per-benchmark medians, and compares them against a checked-in
// baseline. The gate fails when the geometric-mean ns/op ratio over
// the hot-path benchmarks regresses by more than Tolerance, when any
// hot benchmark's allocs/op rises (the scratch-arena steady state
// must stay allocation-free), or when a hot benchmark is missing
// from the new run. Non-hot benchmarks are reported but never gate.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Tolerance is the allowed geomean ns/op regression over the hot
// set before the gate fails: 10%, wide enough to absorb shared-CI
// noise at -benchtime=5x -count=6 medians but narrow enough to catch
// a real hot-loop slip.
const Tolerance = 0.10

// DefaultHot lists the hot-path benchmarks the gate enforces: the
// routing and forward kernels the scratch-arena work targets, plus
// the end-to-end serving throughput they feed.
var DefaultHot = []string{
	"BenchmarkDynamicRoutingMNIST",
	"BenchmarkDynamicRoutingPEMath",
	"BenchmarkPredictionVectors",
	"BenchmarkNetworkForward",
	"BenchmarkForwardArenaSteady",
	"BenchmarkServeThroughput/batch1",
	"BenchmarkServeThroughput/microbatch8",
}

// Stat holds one benchmark's condensed metrics.
type Stat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Baseline is the checked-in gate reference (BENCH_BASELINE.json).
type Baseline struct {
	// Hot names the benchmarks whose regression fails the gate.
	Hot []string `json:"hot"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped)
	// to its median metrics at baseline time.
	Benchmarks map[string]Stat `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s`)

// Parse reads `go test -bench -benchmem` output and returns every
// run of every benchmark, keyed by name with any -N GOMAXPROCS
// suffix stripped so baselines transfer across machines. Lines that
// are not benchmark results are ignored.
func Parse(r io.Reader) (map[string][]Stat, error) {
	runs := make(map[string][]Stat)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		fields := strings.Fields(line)
		var st Stat
		seen := false
		for i := 2; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch fields[i] {
			case "ns/op":
				st.NsPerOp = v
				seen = true
			case "B/op":
				st.BytesPerOp = v
			case "allocs/op":
				st.AllocsPerOp = v
			}
		}
		if !seen {
			return nil, fmt.Errorf("benchgate: no ns/op on benchmark line %q", line)
		}
		runs[name] = append(runs[name], st)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark results found in input")
	}
	return runs, nil
}

func stripProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Medians condenses repeated runs to one Stat per benchmark,
// taking the per-metric median (the standard robust summary for
// noisy shared-runner timings).
func Medians(runs map[string][]Stat) map[string]Stat {
	out := make(map[string]Stat, len(runs))
	for name, rs := range runs {
		out[name] = Stat{
			NsPerOp:     median(rs, func(s Stat) float64 { return s.NsPerOp }),
			AllocsPerOp: median(rs, func(s Stat) float64 { return s.AllocsPerOp }),
			BytesPerOp:  median(rs, func(s Stat) float64 { return s.BytesPerOp }),
		}
	}
	return out
}

func median(rs []Stat, get func(Stat) float64) float64 {
	vals := make([]float64, len(rs))
	for i, r := range rs {
		vals[i] = get(r)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Report is the outcome of a gate check.
type Report struct {
	// Lines holds the human-readable per-benchmark comparison.
	Lines []string
	// Failures lists gate violations; empty means the gate passes.
	Failures []string
	// Geomean is the geometric-mean ns/op ratio (new/old) over the
	// hot benchmarks present in both sets.
	Geomean float64
}

// OK reports whether the gate passed.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Check compares current medians against the baseline. Hot
// benchmarks gate on geomean ns/op (> Tolerance regression fails),
// per-benchmark allocs/op increases, and presence; everything else
// is informational.
func Check(base *Baseline, cur map[string]Stat) *Report {
	rep := &Report{}
	hot := make(map[string]bool, len(base.Hot))
	for _, name := range base.Hot {
		hot[name] = true
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var logSum float64
	var logN int
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur[name]
		if !ok {
			if hot[name] {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("hot benchmark %s missing from current run", name))
			}
			rep.Lines = append(rep.Lines, fmt.Sprintf("%-40s missing", name))
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		tag := ""
		if hot[name] {
			tag = " [hot]"
			logSum += math.Log(ratio)
			logN++
			if c.AllocsPerOp > b.AllocsPerOp {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s allocs/op rose %.0f -> %.0f", name, b.AllocsPerOp, c.AllocsPerOp))
			}
		}
		rep.Lines = append(rep.Lines, fmt.Sprintf(
			"%-40s %12.0f -> %12.0f ns/op  (%+.1f%%)  allocs %.0f -> %.0f%s",
			name, b.NsPerOp, c.NsPerOp, 100*(ratio-1), b.AllocsPerOp, c.AllocsPerOp, tag))
	}
	rep.Geomean = 1
	if logN > 0 {
		rep.Geomean = math.Exp(logSum / float64(logN))
	}
	if rep.Geomean > 1+Tolerance {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"hot-path geomean ns/op regressed %.1f%% (limit %.0f%%)",
			100*(rep.Geomean-1), 100*Tolerance))
	}
	return rep
}

// Load reads a baseline JSON file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: parsing %s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchgate: baseline %s has no benchmarks", path)
	}
	return &b, nil
}

// Save writes a baseline (or a current-run summary, for the CI
// artifact) as deterministic, indented JSON.
func Save(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// EmitBenchFormat writes the baseline back out in `go test -bench`
// text format (one iteration per line) so benchstat can diff it
// against a fresh run for the informational CI comparison.
func EmitBenchFormat(w io.Writer, b *Baseline) {
	names := make([]string, 0, len(b.Benchmarks))
	for name := range b.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := b.Benchmarks[name]
		fmt.Fprintf(w, "%s 1 %.1f ns/op %.0f B/op %.0f allocs/op\n",
			name, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp)
	}
}
