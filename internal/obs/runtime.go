package obs

import (
	"math"
	"runtime/metrics"
)

// RuntimeStat is one process-health gauge sampled from the
// runtime/metrics interface, named ready for text exposition.
type RuntimeStat struct {
	Name  string
	Value float64
}

// runtimeGauge maps one exposition name to the runtime/metrics names
// that can back it, in preference order (the runtime renames metrics
// across Go releases — e.g. GC pauses moved from /gc/pauses:seconds
// to /sched/pauses/total/gc:seconds).
type runtimeGauge struct {
	name       string
	candidates []string
	// p99 extracts the 99th percentile when the sample is a
	// Float64Histogram instead of a scalar.
	p99 bool
}

var runtimeGauges = []runtimeGauge{
	{name: "capsnet_go_goroutines", candidates: []string{"/sched/goroutines:goroutines"}},
	{name: "capsnet_go_heap_objects_bytes", candidates: []string{"/memory/classes/heap/objects:bytes"}},
	{name: "capsnet_go_memory_total_bytes", candidates: []string{"/memory/classes/total:bytes"}},
	{name: "capsnet_go_gc_cycles_total", candidates: []string{"/gc/cycles/total:gc-cycles"}},
	{name: "capsnet_go_gc_pause_p99_seconds", p99: true,
		candidates: []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}},
	{name: "capsnet_go_sched_latency_p99_seconds", p99: true,
		candidates: []string{"/sched/latencies:seconds"}},
}

// runtimeSampleSet is resolved once: which candidate (if any) backs
// each gauge on this Go runtime.
var runtimeSampleSet = resolveRuntimeGauges()

func resolveRuntimeGauges() []metrics.Sample {
	available := make(map[string]bool)
	for _, d := range metrics.All() {
		available[d.Name] = true
	}
	samples := make([]metrics.Sample, 0, len(runtimeGauges))
	for _, g := range runtimeGauges {
		for _, c := range g.candidates {
			if available[c] {
				samples = append(samples, metrics.Sample{Name: c})
				break
			}
		}
	}
	return samples
}

// RuntimeStats samples the process-health gauges (goroutine count,
// heap bytes, GC cycles, GC pause p99, scheduler latency p99) for the
// /metrics endpoint. Gauges whose backing metric does not exist on
// this Go runtime are omitted rather than reported as zero.
func RuntimeStats() []RuntimeStat {
	if len(runtimeSampleSet) == 0 {
		return nil
	}
	samples := make([]metrics.Sample, len(runtimeSampleSet))
	copy(samples, runtimeSampleSet)
	metrics.Read(samples)
	byName := make(map[string]metrics.Sample, len(samples))
	for _, s := range samples {
		byName[s.Name] = s
	}
	out := make([]RuntimeStat, 0, len(runtimeGauges))
	for _, g := range runtimeGauges {
		for _, c := range g.candidates {
			s, ok := byName[c]
			if !ok {
				continue
			}
			switch s.Value.Kind() {
			case metrics.KindUint64:
				out = append(out, RuntimeStat{Name: g.name, Value: float64(s.Value.Uint64())})
			case metrics.KindFloat64:
				out = append(out, RuntimeStat{Name: g.name, Value: s.Value.Float64()})
			case metrics.KindFloat64Histogram:
				if g.p99 {
					out = append(out, RuntimeStat{Name: g.name, Value: histPercentile(s.Value.Float64Histogram(), 0.99)})
				}
			}
			break
		}
	}
	return out
}

// histPercentile estimates the p-th percentile of a runtime
// Float64Histogram as the upper boundary of the bucket containing the
// rank (clamping the ±Inf edge buckets to their finite neighbour).
func histPercentile(h *metrics.Float64Histogram, p float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			hi := h.Buckets[i+1]
			if !math.IsInf(hi, 0) {
				return hi
			}
			lo := h.Buckets[i]
			if math.IsInf(lo, 0) {
				return 0
			}
			return lo
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
