package obs

import (
	"context"
	"math"
	"sync"
	"time"
)

// TracerConfig tunes a Tracer. The zero value is a disabled tracer
// with default buffering — useful because trace IDs, the clock, and
// the ring plumbing all stay functional with sampling off.
type TracerConfig struct {
	// Sample is the fraction of requests whose span timeline is
	// recorded, in [0, 1]. 0 disables span recording entirely (trace
	// IDs are still issued); 1 records every request. Intermediate
	// rates sample deterministically every ⌈1/Sample⌉-th request —
	// counter-based, not random, so tests and replays are exact.
	Sample float64
	// BufferSize is the completed-trace ring capacity (default 256).
	// The ring holds the last BufferSize finished requests for
	// /debug/requests/trace.
	BufferSize int
	// Clock overrides the time source (default time.Now).
	Clock Clock
	// IDSource overrides trace-ID generation (default NewID); tests
	// inject a counter for stable IDs.
	IDSource func() string
}

// DefaultTraceBuffer is the default completed-trace ring capacity.
const DefaultTraceBuffer = 256

// Tracer issues trace IDs, decides which requests get full span
// recording, and retains completed traces in a ring buffer. Safe for
// concurrent use.
type Tracer struct {
	every uint64 // sample every Nth request; 0 = never
	clock Clock
	newID func() string
	epoch time.Time

	mu sync.Mutex
	//pimcaps:guardedby mu
	seq uint64
	//pimcaps:guardedby mu
	ring []*Trace // ring[next] is the oldest slot once full
	//pimcaps:guardedby mu
	next int
	//pimcaps:guardedby mu
	total uint64 // completed traces ever pushed
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.IDSource == nil {
		cfg.IDSource = NewID
	}
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = DefaultTraceBuffer
	}
	var every uint64
	if cfg.Sample > 0 {
		if cfg.Sample >= 1 {
			every = 1
		} else {
			every = uint64(math.Ceil(1 / cfg.Sample))
		}
	}
	return &Tracer{
		every: every,
		clock: cfg.Clock,
		newID: cfg.IDSource,
		epoch: cfg.Clock(),
		ring:  make([]*Trace, 0, cfg.BufferSize),
	}
}

// Enabled reports whether any request can be sampled.
func (tr *Tracer) Enabled() bool { return tr.every > 0 }

// Now reads the tracer's clock (the single time source the serving
// layer shares so fake clocks line up across components).
func (tr *Tracer) Now() time.Time { return tr.clock() }

// Epoch is the tracer's construction time — the zero point of the
// Chrome trace timestamps it exports.
func (tr *Tracer) Epoch() time.Time { return tr.epoch }

// NewID issues a trace ID. Every request gets one (for X-Trace-Id and
// log correlation) regardless of sampling.
func (tr *Tracer) NewID() string { return tr.newID() }

// StartRequest makes the sampling decision for one request: it
// returns a live *Trace for sampled requests and nil otherwise. The
// nil trace is the fast path — every downstream span site degrades to
// a pointer check.
func (tr *Tracer) StartRequest(id string, start time.Time) *Trace {
	if !tr.decide() {
		return nil
	}
	return &Trace{ID: id, Start: start, sampled: true}
}

// StartAlways returns a live trace for every request — the mode a
// flight-recorder-armed server runs in, where the spans of a request
// that turns out bad must exist even if the counter sampler skipped
// it. The sampling decision still runs and is recorded on the trace:
// Finish ring-retains only sampled traces, so the ring's contents are
// identical to StartRequest's.
func (tr *Tracer) StartAlways(id string, start time.Time) *Trace {
	return &Trace{ID: id, Start: start, sampled: tr.decide()}
}

// decide makes one counter-sampling decision.
func (tr *Tracer) decide() bool {
	if tr.every == 0 {
		return false
	}
	tr.mu.Lock()
	tr.seq++
	sampled := tr.seq%tr.every == 0
	tr.mu.Unlock()
	return sampled
}

// Finish stamps the request's end time and retains the trace in the
// ring, evicting the oldest entry once full. No-op for nil traces;
// unsampled live traces (StartAlways under a skipping counter) get
// their end stamp but stay out of the ring — the flight recorder is
// their only route to retention.
func (tr *Tracer) Finish(t *Trace, end time.Time) {
	if t == nil {
		return
	}
	t.setEnd(end)
	if !t.sampled {
		return
	}
	tr.mu.Lock()
	if len(tr.ring) < cap(tr.ring) {
		tr.ring = append(tr.ring, t)
	} else {
		tr.ring[tr.next] = t
		tr.next = (tr.next + 1) % len(tr.ring)
	}
	tr.total++
	tr.mu.Unlock()
}

// Completed returns how many traces have finished since start-up
// (including ones the ring has since evicted).
func (tr *Tracer) Completed() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// Last returns up to n most recently completed traces, oldest first.
func (tr *Tracer) Last(n int) []*Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n <= 0 || len(tr.ring) == 0 {
		return nil
	}
	if n > len(tr.ring) {
		n = len(tr.ring)
	}
	out := make([]*Trace, 0, n)
	// Entries in ring order starting at next are oldest → newest.
	for i := 0; i < len(tr.ring); i++ {
		out = append(out, tr.ring[(tr.next+i)%len(tr.ring)])
	}
	return out[len(out)-n:]
}

// Find returns the ring-retained traces whose ID equals id, oldest
// first. Retries can land several traces with the same ID in one
// process (each attempt is its own request to a replica), so this
// returns all of them.
func (tr *Tracer) Find(id string) []*Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []*Trace
	for i := 0; i < len(tr.ring); i++ {
		t := tr.ring[(tr.next+i)%len(tr.ring)]
		if t != nil && t.ID == id {
			out = append(out, t)
		}
	}
	return out
}

// ctxKey keys the request trace info in a context.
type ctxKey struct{}

// reqInfo is what WithTrace stores: the ID travels even when the
// trace itself is unsampled (nil).
type reqInfo struct {
	id    string
	trace *Trace
}

// WithTrace returns ctx carrying the request's trace ID and (possibly
// nil) sampled trace.
func WithTrace(ctx context.Context, id string, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, reqInfo{id: id, trace: t})
}

// TraceIDFrom returns the trace ID stored by WithTrace ("" if none).
func TraceIDFrom(ctx context.Context) string {
	if info, ok := ctx.Value(ctxKey{}).(reqInfo); ok {
		return info.id
	}
	return ""
}

// TraceFrom returns the sampled trace stored by WithTrace (nil if the
// request is unsampled or the context carries no trace).
func TraceFrom(ctx context.Context) *Trace {
	if info, ok := ctx.Value(ctxKey{}).(reqInfo); ok {
		return info.trace
	}
	return nil
}
