package obs

import (
	"bytes"
	"testing"
	"time"

	"pimcapsnet/internal/trace"
)

// TestBuildChromeLog checks the span → trace-event mapping: complete
// events in µs since epoch, per-request tracks, instant + counter at
// completion, nil entries skipped.
func TestBuildChromeLog(t *testing.T) {
	epoch := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	a := &Trace{ID: "aaaa", Start: epoch}
	a.Add("conv", -1, epoch.Add(1*time.Millisecond), epoch.Add(3*time.Millisecond))
	a.Add("routing_iteration", 1, epoch.Add(3*time.Millisecond), epoch.Add(4*time.Millisecond))
	a.setEnd(epoch.Add(5 * time.Millisecond))
	b := &Trace{ID: "bbbb", Start: epoch} // unfinished: no instant/counter

	log := BuildChromeLog([]*Trace{a, nil, b}, epoch)
	// a: 2 complete + instant + counter; b: nothing (no spans, no end).
	if len(log.Events()) != 4 {
		t.Fatalf("got %d events: %+v", len(log.Events()), log.Events())
	}
	e0 := log.Events()[0]
	if e0.Ph != "X" || e0.Name != "conv" || e0.TS != 1000 || e0.Dur != 2000 || e0.TID != 1 {
		t.Fatalf("conv event = %+v", e0)
	}
	if e0.Args["trace_id"] != "aaaa" {
		t.Fatalf("conv args = %v", e0.Args)
	}
	if log.Events()[1].Args["iteration"] != "1" {
		t.Fatalf("iteration arg = %v", log.Events()[1].Args)
	}
	if ph := log.Events()[2].Ph; ph != "i" {
		t.Fatalf("event 2 phase %q, want instant", ph)
	}
	e3 := log.Events()[3]
	if e3.Ph != "C" || e3.Args["requests"] != 1.0 {
		t.Fatalf("counter event = %+v", e3)
	}
}

// TestChromeTraceRoundTrips writes a ring's trace JSON and reads it
// back through internal/trace.ReadJSON — the same check the e2e smoke
// test performs over HTTP.
func TestChromeTraceRoundTrips(t *testing.T) {
	epoch := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	tc := &Trace{ID: "cafe", Start: epoch}
	tc.Add("forward", -1, epoch, epoch.Add(2*time.Millisecond))
	tc.setEnd(epoch.Add(2 * time.Millisecond))

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Trace{tc}, epoch); err != nil {
		t.Fatal(err)
	}
	log, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(log.Events()) != 3 {
		t.Fatalf("round-tripped %d events, want 3", len(log.Events()))
	}
	if log.Events()[0].Name != "forward" || log.Events()[0].Dur != 2000 {
		t.Fatalf("round-tripped event = %+v", log.Events()[0])
	}
}

// TestChromeLogClampsNegativeDurations guards against clock skew
// producing events Perfetto refuses to load.
func TestChromeLogClampsNegativeDurations(t *testing.T) {
	epoch := time.Now()
	tc := &Trace{ID: "x", Start: epoch}
	tc.Add("weird", -1, epoch.Add(time.Millisecond), epoch) // end < start
	log := BuildChromeLog([]*Trace{tc}, epoch)
	if len(log.Events()) != 1 || log.Events()[0].Dur != 0 {
		t.Fatalf("negative duration not clamped: %+v", log.Events())
	}
}

func TestRuntimeStats(t *testing.T) {
	stats := RuntimeStats()
	if len(stats) == 0 {
		t.Fatal("RuntimeStats returned nothing; expected at least goroutines")
	}
	byName := make(map[string]float64)
	for _, s := range stats {
		byName[s.Name] = s.Value
	}
	if g, ok := byName["capsnet_go_goroutines"]; !ok || g < 1 {
		t.Fatalf("goroutine gauge = %v (present %v)", g, ok)
	}
	if _, ok := byName["capsnet_go_memory_total_bytes"]; !ok {
		t.Fatal("memory gauge missing")
	}
}
