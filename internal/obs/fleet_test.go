package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"pimcapsnet/internal/trace"
)

// fleetFixture builds the canonical three-process fragment set: a
// router fragment whose attempt spans launched one replica fragment
// each (a retry: attempt 1 failed on replica-0, attempt 2 succeeded
// on replica-1).
func fleetFixture() []TraceFragment {
	base := int64(1_700_000_000_000_000) // wall-clock microseconds
	return []TraceFragment{
		{
			TraceID: "feedfacecafebeef", Process: "router",
			Spans: []WireSpan{
				{Name: "route", Iter: -1, StartUS: base, EndUS: base + 5000,
					SpanID: "root0000", Tags: map[string]string{"code": "200"}},
				{Name: "attempt", Iter: -1, StartUS: base + 100, EndUS: base + 2000,
					SpanID: "att10000", Parent: "root0000",
					Tags: map[string]string{"attempt": "1", "hedge": "false", "replica": "r0", "code": "500"}},
				{Name: "attempt", Iter: -1, StartUS: base + 2100, EndUS: base + 4900,
					SpanID: "att20000", Parent: "root0000",
					Tags: map[string]string{"attempt": "2", "hedge": "false", "replica": "r1", "code": "200"}},
			},
		},
		{
			TraceID: "feedfacecafebeef", Process: "replica-0", Parent: "att10000",
			Spans: []WireSpan{
				{Name: "forward", Iter: -1, StartUS: base + 300, EndUS: base + 1800},
			},
		},
		{
			TraceID: "feedfacecafebeef", Process: "replica-1", Parent: "att20000",
			Spans: []WireSpan{
				{Name: "queue_wait", Iter: -1, StartUS: base + 2300, EndUS: base + 2500},
				{Name: "routing_iteration", Iter: 1, StartUS: base + 2600, EndUS: base + 4000},
			},
		},
	}
}

// TestMergeFragmentsChromeValid is the fleet-trace golden check: the
// merged document must survive the trace.ReadJSON validator, rebase
// every timestamp onto a non-negative epoch, give each process its own
// pid with a process_name track, and stamp attempt attribution onto
// replica spans.
func TestMergeFragmentsChromeValid(t *testing.T) {
	frags := fleetFixture()
	SortFragmentSpans(frags)
	var buf bytes.Buffer
	if err := MergeFragments(frags).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	// The golden property: the bytes are a loadable Chrome trace.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("fleet trace is not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatalf("fleet trace missing traceEvents key")
	}
	log, err := trace.ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("fleet trace failed Chrome-trace validation: %v", err)
	}

	pidsByProcess := map[string]int{}
	pidSeen := map[int]string{}
	var lastTS float64
	byName := map[string]trace.Event{}
	for _, e := range log.Events() {
		if e.Ph == "M" && e.Name == "process_name" {
			name := e.Args["name"].(string)
			if prior, dup := pidSeen[e.PID]; dup && prior != name {
				t.Fatalf("pid %d claimed by %q and %q", e.PID, prior, name)
			}
			pidSeen[e.PID] = name
			pidsByProcess[name] = e.PID
			continue
		}
		if e.TS < 0 {
			t.Fatalf("event %q has negative ts %v", e.Name, e.TS)
		}
		if e.TS < lastTS {
			t.Fatalf("Events() not monotone: %q at %v after %v", e.Name, e.TS, lastTS)
		}
		lastTS = e.TS
		byName[e.Name] = e
	}
	for _, proc := range []string{"router", "replica-0", "replica-1"} {
		if _, ok := pidsByProcess[proc]; !ok {
			t.Fatalf("missing process track %q (have %v)", proc, pidsByProcess)
		}
	}
	if len(pidsByProcess) != 3 {
		t.Fatalf("want 3 distinct process tracks, got %v", pidsByProcess)
	}

	// The epoch is the earliest span start: the route span rebases to 0.
	if route := byName["route"]; route.TS != 0 {
		t.Fatalf("route span ts = %v, want 0 (epoch rebase)", route.TS)
	}
	// Wall-clock containment: replica-0's forward span lies inside
	// attempt 1's extent on the shared timeline.
	fwd := byName["forward"]
	if fwd.TS != 300 || fwd.TS+fwd.Dur > 2000 {
		t.Fatalf("forward span [%v, %v] not inside attempt 1 [100, 2000]", fwd.TS, fwd.TS+fwd.Dur)
	}
	if fwd.PID != pidsByProcess["replica-0"] {
		t.Fatalf("forward span on pid %d, want replica-0's %d", fwd.PID, pidsByProcess["replica-0"])
	}
	// Attribution inheritance from the launching attempt span.
	if fwd.Args["attempt"] != "1" || fwd.Args["replica"] != "r0" || fwd.Args["hedge"] != "false" {
		t.Fatalf("forward span missing inherited attempt tags: %v", fwd.Args)
	}
	// Own identity survives alongside.
	if fwd.Args["trace_id"] != "feedfacecafebeef" || fwd.Args["parent_span"] != "att10000" {
		t.Fatalf("forward span lost identity args: %v", fwd.Args)
	}
	// Per-iteration spans keep their iteration index.
	if ri := byName["routing_iteration"]; ri.Args["iteration"] != "1" || ri.Args["attempt"] != "2" {
		t.Fatalf("routing_iteration args wrong: %v", ri.Args)
	}
}

// TestFragmentWireRoundTrip pushes a trace through WriteFragments and
// back through json decoding, checking span identity and tags survive.
func TestFragmentWireRoundTrip(t *testing.T) {
	start := time.Unix(1_700_000_000, 0)
	tr := &Trace{ID: "0123456789abcdef", Start: start}
	tr.SetParent("att10000")
	tr.Add("forward", -1, start, start.Add(2*time.Millisecond))
	tr.AddSpan(Span{
		Name: "attempt", Iter: -1, Start: start, End: start.Add(time.Millisecond),
		ID: "aaaa0000", Parent: "root0000", Tags: map[string]string{"attempt": "1"},
	})

	var buf bytes.Buffer
	if err := WriteFragments(&buf, []*Trace{tr, nil}); err != nil {
		t.Fatalf("WriteFragments: %v", err)
	}
	var doc FragmentDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decoding fragments: %v", err)
	}
	if len(doc.Fragments) != 1 {
		t.Fatalf("got %d fragments, want 1 (nil traces skipped)", len(doc.Fragments))
	}
	f := doc.Fragments[0]
	if f.TraceID != "0123456789abcdef" || f.Parent != "att10000" {
		t.Fatalf("fragment identity mangled: %+v", f)
	}
	if f.Process != "" {
		t.Fatalf("replica-side fragment must leave Process empty, got %q", f.Process)
	}
	if len(f.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(f.Spans))
	}
	att := f.Spans[1]
	if att.SpanID != "aaaa0000" || att.Parent != "root0000" || att.Tags["attempt"] != "1" {
		t.Fatalf("span identity lost over the wire: %+v", att)
	}
	if att.EndUS-att.StartUS != 1000 {
		t.Fatalf("span duration %dus, want 1000", att.EndUS-att.StartUS)
	}
}

// TestFlightRecorderRetention checks the tail-sampling policy: pin
// 5xx, slow, brownout, and caller-flagged requests; drop fast 200s;
// evict oldest-first at capacity.
func TestFlightRecorderRetention(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Capacity: 3, SlowThreshold: 100 * time.Millisecond})
	mk := func(id string) *Trace { return &Trace{ID: id, Start: time.Now()} }

	if f.Note(nil, 500, time.Second, 0) {
		t.Fatalf("nil trace must never pin")
	}
	if f.Note(mk("ok1"), 200, time.Millisecond, 0) {
		t.Fatalf("fast 200 pinned")
	}
	if !f.Note(mk("err1"), 503, time.Millisecond, 0) {
		t.Fatalf("5xx not pinned")
	}
	if !f.Note(mk("slow1"), 200, 150*time.Millisecond, 0) {
		t.Fatalf("slow 200 not pinned")
	}
	if !f.Note(mk("brown1"), 200, time.Millisecond, 2) {
		t.Fatalf("brownout request not pinned")
	}
	if !f.Note(mk("abort1"), 200, time.Millisecond, 0, FlightReasonBatchAborted) {
		t.Fatalf("caller-flagged request not pinned")
	}
	// A long stream of healthy traffic must not evict anything.
	for i := 0; i < 100; i++ {
		f.Note(mk("okN"), 200, time.Millisecond, 0)
	}

	entries := f.Entries()
	if len(entries) != 3 {
		t.Fatalf("retained %d, want capacity 3", len(entries))
	}
	// err1 (oldest pin) was evicted by the fourth pin; order is
	// oldest-first.
	wantIDs := []string{"slow1", "brown1", "abort1"}
	for i, want := range wantIDs {
		if entries[i].Trace.ID != want {
			t.Fatalf("entry %d = %s, want %s (entries %+v)", i, entries[i].Trace.ID, want, entries)
		}
	}
	if f.Pinned() != 4 {
		t.Fatalf("pinned total = %d, want 4", f.Pinned())
	}

	// Reason bookkeeping.
	wantReasons := map[string][]string{
		"slow1":  {FlightReasonSlow},
		"brown1": {FlightReasonBrownout},
		"abort1": {FlightReasonBatchAborted},
	}
	for _, e := range entries {
		want := wantReasons[e.Trace.ID]
		if len(e.Reasons) != len(want) || e.Reasons[0] != want[0] {
			t.Fatalf("%s reasons = %v, want %v", e.Trace.ID, e.Reasons, want)
		}
	}

	// Find and union semantics.
	if got := f.Find("brown1"); len(got) != 1 || got[0].ID != "brown1" {
		t.Fatalf("Find(brown1) = %v", got)
	}
	union := f.Traces([]*Trace{entries[0].Trace})
	if len(union) != 2 {
		t.Fatalf("Traces dedup returned %d traces, want 2", len(union))
	}

	// WriteJSON shape.
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		Pinned   uint64 `json:"pinned_total"`
		Retained int    `json:"retained"`
		Capacity int    `json:"capacity"`
		Entries  []struct {
			TraceID string   `json:"trace_id"`
			Status  int      `json:"status"`
			Reasons []string `json:"reasons"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decoding flight JSON: %v", err)
	}
	if doc.Pinned != 4 || doc.Retained != 3 || doc.Capacity != 3 || len(doc.Entries) != 3 {
		t.Fatalf("flight doc totals wrong: %+v", doc)
	}
	if doc.Entries[0].TraceID != "slow1" {
		t.Fatalf("flight doc order wrong: %+v", doc.Entries)
	}
}

// TestFlightRecorderMultiReason checks a request that trips several
// triggers records all of them, sorted.
func TestFlightRecorderMultiReason(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Capacity: 2, SlowThreshold: 10 * time.Millisecond})
	tr := &Trace{ID: "multi", Start: time.Now()}
	if !f.Note(tr, 504, time.Second, 1, FlightReasonDeadlineExhausted) {
		t.Fatalf("not pinned")
	}
	e := f.Entries()[0]
	want := []string{FlightReasonBrownout, FlightReasonDeadlineExhausted, FlightReasonSlow, FlightReasonStatus5xx}
	if len(e.Reasons) != len(want) {
		t.Fatalf("reasons = %v, want %v", e.Reasons, want)
	}
	for i := range want {
		if e.Reasons[i] != want[i] {
			t.Fatalf("reasons = %v, want %v (sorted)", e.Reasons, want)
		}
	}
	if e.BrownoutLevel != 1 {
		t.Fatalf("brownout level = %d, want 1", e.BrownoutLevel)
	}
}
