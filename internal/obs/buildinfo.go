package obs

import "runtime/debug"

// BuildInfo returns the main module version and the Go toolchain
// version baked into the binary — the label values of the
// capsnet_build_info / router_build_info info-gauges, so a fleet
// scrape shows at a glance which build each process runs. Values fall
// back to "unknown" when the binary carries no build info (e.g. some
// test binaries).
func BuildInfo() (version, goVersion string) {
	version, goVersion = "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	return version, goVersion
}
