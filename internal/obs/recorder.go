package obs

import (
	"sync/atomic"
	"time"
)

// StageRecorder adapts this package to capsnet's StageTimer hook: it
// times each forward-pass stage with its own clock (so internal/
// capsnet needs no time source and no obs import), reports every
// stage duration through the OnStage callback (the serving layer's
// per-stage histograms), and — when a batch trace is attached —
// records the stage as a span on that trace.
//
// One recorder serves one inference runner: SetCurrent attaches the
// trace of the batch about to execute, and BeginStage captures that
// pointer, so a forward pass abandoned by the batch watchdog keeps
// writing to its own (already discarded) trace instead of racing the
// next batch's.
type StageRecorder struct {
	clock Clock
	// onStage receives every completed stage: name, routing-iteration
	// index (-1 when not per-iteration), and duration in seconds.
	onStage func(stage string, iter int, seconds float64)
	cur     atomic.Pointer[Trace]
}

// NewStageRecorder builds a recorder. clock may be nil (time.Now);
// onStage may be nil when only span recording is wanted.
func NewStageRecorder(clock Clock, onStage func(stage string, iter int, seconds float64)) *StageRecorder {
	if clock == nil {
		clock = time.Now
	}
	return &StageRecorder{clock: clock, onStage: onStage}
}

// SetCurrent attaches the trace stage spans should land on (nil to
// detach — histograms keep observing either way).
func (r *StageRecorder) SetCurrent(t *Trace) { r.cur.Store(t) }

// BeginStage implements capsnet.StageTimer (structurally): it stamps
// the stage start and returns the closure that completes the stage.
func (r *StageRecorder) BeginStage(stage string, iteration int) func() {
	start := r.clock()
	t := r.cur.Load()
	return func() {
		end := r.clock()
		if r.onStage != nil {
			r.onStage(stage, iteration, end.Sub(start).Seconds())
		}
		t.Add(stage, iteration, start, end)
	}
}
