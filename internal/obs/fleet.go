package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"time"

	"pimcapsnet/internal/trace"
)

// WireSpan is one span in the cross-process fragment format:
// wall-clock timestamps in microseconds since the Unix epoch, so
// fragments from different processes align on one timeline without a
// clock-sync protocol (both sides already stamp spans with time.Now).
type WireSpan struct {
	Name    string            `json:"name"`
	Iter    int               `json:"iter"`
	StartUS int64             `json:"start_us"`
	EndUS   int64             `json:"end_us"`
	SpanID  string            `json:"span_id,omitempty"`
	Parent  string            `json:"parent_span,omitempty"`
	Tags    map[string]string `json:"tags,omitempty"`
}

// TraceFragment is one process's share of a distributed trace: the
// spans a single local Trace recorded for a trace ID, plus the
// identity linking it upward (the X-Parent-Span the request arrived
// with). The fleet merger pulls one fragment list per process and
// joins them on span identity.
type TraceFragment struct {
	TraceID string `json:"trace_id"`
	// Process names the originating process track ("router",
	// "replica-0"). Replicas leave it empty — only the router knows
	// fleet-level names — and the merger fills it in.
	Process string     `json:"process,omitempty"`
	Parent  string     `json:"parent_span,omitempty"`
	Spans   []WireSpan `json:"spans"`
}

// FragmentDoc is the ?format=spans response body: every local trace
// matching the requested ID, as fragments.
type FragmentDoc struct {
	Fragments []TraceFragment `json:"fragments"`
}

// unixMicro converts a wall-clock stamp to fragment time.
func unixMicro(t time.Time) int64 { return t.UnixNano() / 1e3 }

// wireSpans converts a local trace's spans to the wire form.
func wireSpans(t *Trace) []WireSpan {
	spans := t.Spans()
	out := make([]WireSpan, 0, len(spans))
	for _, s := range spans {
		out = append(out, WireSpan{
			Name: s.Name, Iter: s.Iter,
			StartUS: unixMicro(s.Start), EndUS: unixMicro(s.End),
			SpanID: s.ID, Parent: s.Parent, Tags: s.Tags,
		})
	}
	return out
}

// FragmentFromTrace renders one local trace as a fragment.
func FragmentFromTrace(t *Trace) TraceFragment {
	return TraceFragment{TraceID: t.ID, Parent: t.Parent(), Spans: wireSpans(t)}
}

// WriteFragments emits the fragments of every trace in ts as the
// ?format=spans JSON document.
func WriteFragments(w io.Writer, ts []*Trace) error {
	doc := FragmentDoc{Fragments: make([]TraceFragment, 0, len(ts))}
	for _, t := range ts {
		if t != nil {
			doc.Fragments = append(doc.Fragments, FragmentFromTrace(t))
		}
	}
	return json.NewEncoder(w).Encode(doc)
}

// MergeFragments joins per-process fragments into one Chrome trace:
// each distinct process gets its own pid and a process_name metadata
// track, each fragment within a process gets its own tid (one row per
// attempt), and all timestamps are rebased onto the earliest span
// start across the whole set — the wall-clock alignment that makes a
// router attempt span visually contain its replica's stage spans.
//
// Span identity survives as args (span_id, parent_span), and tags on
// a parent span (attempt, hedge, replica) are copied onto the spans
// of every fragment whose Parent references it, so a replica-side
// timeline is attributable to its attempt without chasing IDs.
func MergeFragments(frags []TraceFragment) *trace.Log {
	log := &trace.Log{}
	if len(frags) == 0 {
		return log
	}

	// Tag index: span ID → tags, from every identified span.
	tagsByID := make(map[string]map[string]string)
	for _, f := range frags {
		for _, s := range f.Spans {
			if s.SpanID != "" && len(s.Tags) > 0 {
				tagsByID[s.SpanID] = s.Tags
			}
		}
	}

	// Epoch: earliest span start anywhere.
	var epoch int64
	first := true
	for _, f := range frags {
		for _, s := range f.Spans {
			if first || s.StartUS < epoch {
				epoch, first = s.StartUS, false
			}
		}
	}

	// Stable pid assignment: fragments arrive router-first, replicas
	// in fleet order; keep that order rather than sorting names so
	// "router" stays pid 1.
	pidByProcess := make(map[string]int)
	nextPID := 1
	tidByProcess := make(map[string]int)
	for _, f := range frags {
		pid, ok := pidByProcess[f.Process]
		if !ok {
			pid = nextPID
			nextPID++
			pidByProcess[f.Process] = pid
			log.ProcessName(pid, f.Process)
		}
		tidByProcess[f.Process]++
		tid := tidByProcess[f.Process]

		inherited := tagsByID[f.Parent]
		for _, s := range f.Spans {
			args := map[string]string{"trace_id": f.TraceID}
			if s.Iter >= 0 {
				args["iteration"] = strconv.Itoa(s.Iter)
			}
			if s.SpanID != "" {
				args["span_id"] = s.SpanID
			}
			parent := s.Parent
			if parent == "" {
				parent = f.Parent
			}
			if parent != "" {
				args["parent_span"] = parent
			}
			for k, v := range s.Tags {
				args[k] = v
			}
			// Attribution inheritance: a replica fragment's spans carry
			// the attempt/hedge/replica tags of the router span that
			// launched them.
			for k, v := range inherited {
				if _, own := args[k]; !own {
					args[k] = v
				}
			}
			dur := float64(s.EndUS - s.StartUS)
			if dur < 0 {
				dur = 0
			}
			log.Complete(s.Name, "fleet", pid, tid, float64(s.StartUS-epoch), dur, args)
		}
	}
	return log
}

// SortFragmentSpans orders each fragment's spans by start time —
// fragment producers append spans in completion order, which is not
// timeline order for nested stages.
func SortFragmentSpans(frags []TraceFragment) {
	for i := range frags {
		sort.SliceStable(frags[i].Spans, func(a, b int) bool {
			return frags[i].Spans[a].StartUS < frags[i].Spans[b].StartUS
		})
	}
}
