package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket, lock-free histogram over a
// non-negative domain (latencies, sizes). Observations land in the
// first bucket whose upper bound is ≥ the value; the final implicit
// bucket is +Inf. Quantiles are estimated by linear interpolation
// inside the containing bucket, which is exact enough for p50/p95/p99
// dashboards on exponential bucket layouts. It lives in obs — the
// stdlib-only layer every tier imports — so the serving stack and the
// open-loop load generator (internal/loadgen) record into the same
// bucket machinery and their distributions merge exactly.
type Histogram struct {
	bounds   []float64       // ascending upper bounds, excluding +Inf
	counts   []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count    atomic.Uint64
	sumMicro atomic.Uint64 // Σ value, in millionths of a unit
}

// NewHistogram creates a histogram with the given ascending upper
// bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must ascend")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. The histogram's domain is non-negative:
// zero is a legal observation (it lands in the first bucket and adds
// zero to the sum, so _sum stays consistent with _count·mean), and a
// negative value — always an upstream bug for durations and sizes —
// is clamped to zero rather than wrapping the uint64 sum around.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMicro.Add(uint64(v*1e6 + 0.5))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations (microsecond-granular).
func (h *Histogram) Sum() float64 { return float64(h.sumMicro.Load()) / 1e6 }

// Bounds returns the finite bucket upper bounds (shared backing
// array; callers must not mutate it).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket counts; the last
// element is the implicit +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Overflow returns the number of observations that exceeded the
// largest finite bucket bound (the +Inf bucket's count) — the
// companion counter that makes Quantile's tail clipping visible.
func (h *Histogram) Overflow() uint64 { return h.counts[len(h.bounds)].Load() }

// Quantile estimates the q-th quantile (0 < q < 1) from the bucket
// counts. Ranks landing in the +Inf bucket cannot be interpolated —
// there is no finite upper bound to interpolate toward — so they
// report the largest finite bound; check Overflow to see how many
// observations were clipped that way. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	maxBound := h.bounds[len(h.bounds)-1]
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 || cum+n < rank {
			cum += n
			continue
		}
		if i == len(h.bounds) {
			return maxBound // +Inf bucket: clip, don't interpolate
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-cum)/n
	}
	return maxBound
}

// WriteText emits the histogram in Prometheus-style text exposition
// under the given metric name, including quantile, bucket, sum, count
// and overflow lines. labels, when non-empty, is a pre-rendered label
// pair list (e.g. `stage="conv"`) merged into every line.
func (h *Histogram) WriteText(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "%s{%s%squantile=%q} %g\n", name, labels, sep, fmt.Sprintf("%g", q), h.Quantile(q))
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, fmt.Sprintf("%g", b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
		fmt.Fprintf(w, "%s_overflow_total %d\n", name, h.Overflow())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
		fmt.Fprintf(w, "%s_overflow_total{%s} %d\n", name, labels, h.Overflow())
	}
}
