package obs

import (
	"context"
	"fmt"
	"regexp"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) Advance(d time.Duration) time.Time {
	c.now = c.now.Add(d)
	return c.now
}

// seqIDs returns a deterministic IDSource: "t0001", "t0002", ...
func seqIDs() func() string {
	n := 0
	return func() string {
		n++
		return fmt.Sprintf("t%04d", n)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Add("x", -1, time.Time{}, time.Time{})
	tr.AddSpans([]Span{{Name: "y"}})
	if s := tr.Spans(); s != nil {
		t.Fatalf("nil trace Spans() = %v, want nil", s)
	}
	if !tr.EndTime().IsZero() {
		t.Fatal("nil trace EndTime() not zero")
	}
}

func TestNewIDFormat(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if !hex16.MatchString(id) {
			t.Fatalf("NewID() = %q, want 16 lowercase hex chars", id)
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q within 100 draws", id)
		}
		seen[id] = true
	}
}

// TestTracerSamplingDeterministic pins the counter-based sampling:
// rate 0 never samples, rate 1 always, rate 0.5 exactly every 2nd.
func TestTracerSamplingDeterministic(t *testing.T) {
	clk := newFakeClock()
	cases := []struct {
		sample float64
		want   []bool // sampled? for requests 1..6
	}{
		{0, []bool{false, false, false, false, false, false}},
		{1, []bool{true, true, true, true, true, true}},
		{0.5, []bool{false, true, false, true, false, true}},
		{0.25, []bool{false, false, false, true, false, false}},
	}
	for _, c := range cases {
		tr := NewTracer(TracerConfig{Sample: c.sample, Clock: clk.Now, IDSource: seqIDs()})
		if got := tr.Enabled(); got != (c.sample > 0) {
			t.Errorf("sample %g: Enabled() = %v", c.sample, got)
		}
		for i, want := range c.want {
			got := tr.StartRequest(tr.NewID(), clk.Now()) != nil
			if got != want {
				t.Errorf("sample %g request %d: sampled = %v, want %v", c.sample, i+1, got, want)
			}
		}
	}
}

// TestTracerRingEviction fills a 2-slot ring with 3 traces and checks
// the oldest is evicted and ordering is oldest-first.
func TestTracerRingEviction(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracer(TracerConfig{Sample: 1, BufferSize: 2, Clock: clk.Now, IDSource: seqIDs()})
	for i := 0; i < 3; i++ {
		tc := tr.StartRequest(tr.NewID(), clk.Now())
		if tc == nil {
			t.Fatal("sample 1 returned nil trace")
		}
		tr.Finish(tc, clk.Advance(time.Millisecond))
	}
	if tr.Completed() != 3 {
		t.Fatalf("Completed() = %d, want 3", tr.Completed())
	}
	last := tr.Last(10)
	if len(last) != 2 || last[0].ID != "t0002" || last[1].ID != "t0003" {
		ids := make([]string, len(last))
		for i, x := range last {
			ids[i] = x.ID
		}
		t.Fatalf("Last(10) IDs = %v, want [t0002 t0003]", ids)
	}
	if one := tr.Last(1); len(one) != 1 || one[0].ID != "t0003" {
		t.Fatalf("Last(1) = %v, want just the newest", one)
	}
	if tr.Last(0) != nil {
		t.Fatal("Last(0) should be nil")
	}
}

func TestFinishNilTraceIsNoop(t *testing.T) {
	tr := NewTracer(TracerConfig{Sample: 0})
	tr.Finish(nil, time.Now())
	if tr.Completed() != 0 {
		t.Fatal("nil Finish counted")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if TraceIDFrom(ctx) != "" || TraceFrom(ctx) != nil {
		t.Fatal("empty context should carry no trace")
	}
	tc := &Trace{ID: "abc"}
	ctx = WithTrace(ctx, "abc", tc)
	if TraceIDFrom(ctx) != "abc" {
		t.Fatalf("TraceIDFrom = %q", TraceIDFrom(ctx))
	}
	if TraceFrom(ctx) != tc {
		t.Fatal("TraceFrom did not round-trip")
	}
	// Unsampled: ID travels, trace stays nil.
	ctx = WithTrace(context.Background(), "def", nil)
	if TraceIDFrom(ctx) != "def" || TraceFrom(ctx) != nil {
		t.Fatal("unsampled context should carry ID but nil trace")
	}
}

// TestStageRecorder drives BeginStage with a fake clock and checks
// both the histogram callback and the span landing on the attached
// trace.
func TestStageRecorder(t *testing.T) {
	clk := newFakeClock()
	type obsCall struct {
		stage   string
		iter    int
		seconds float64
	}
	var calls []obsCall
	rec := NewStageRecorder(clk.Now, func(stage string, iter int, seconds float64) {
		calls = append(calls, obsCall{stage, iter, seconds})
	})
	tc := &Trace{ID: "x"}
	rec.SetCurrent(tc)

	end := rec.BeginStage("conv", -1)
	clk.Advance(3 * time.Millisecond)
	end()
	end = rec.BeginStage("routing_iteration", 2)
	clk.Advance(5 * time.Millisecond)
	end()

	want := []obsCall{{"conv", -1, 0.003}, {"routing_iteration", 2, 0.005}}
	if len(calls) != len(want) {
		t.Fatalf("got %d onStage calls, want %d", len(calls), len(want))
	}
	for i, c := range calls {
		if c != want[i] {
			t.Errorf("call %d = %+v, want %+v", i, c, want[i])
		}
	}
	spans := tc.Spans()
	if len(spans) != 2 || spans[0].Name != "conv" || spans[1].Iter != 2 {
		t.Fatalf("trace spans = %+v", spans)
	}
	if got := spans[1].End.Sub(spans[1].Start); got != 5*time.Millisecond {
		t.Fatalf("span duration %v, want 5ms", got)
	}
}

// TestStageRecorderCapturesTraceAtBegin pins the watchdog-abandonment
// contract: a stage begun against trace A keeps writing to A even if
// the runner re-attaches trace B before the stage ends.
func TestStageRecorderCapturesTraceAtBegin(t *testing.T) {
	clk := newFakeClock()
	rec := NewStageRecorder(clk.Now, nil)
	a, b := &Trace{ID: "a"}, &Trace{ID: "b"}
	rec.SetCurrent(a)
	end := rec.BeginStage("forward", -1)
	rec.SetCurrent(b) // next batch attaches before the stale stage ends
	clk.Advance(time.Millisecond)
	end()
	if len(a.Spans()) != 1 || len(b.Spans()) != 0 {
		t.Fatalf("span landed on wrong trace: a=%d b=%d", len(a.Spans()), len(b.Spans()))
	}
}

// TestStageRecorderDetached checks a detached (nil) recorder still
// feeds histograms and drops spans silently.
func TestStageRecorderDetached(t *testing.T) {
	clk := newFakeClock()
	n := 0
	rec := NewStageRecorder(clk.Now, func(string, int, float64) { n++ })
	end := rec.BeginStage("conv", -1)
	clk.Advance(time.Millisecond)
	end()
	if n != 1 {
		t.Fatalf("onStage calls = %d, want 1", n)
	}
}
