package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Flight-recorder pin reasons. A request is pinned when any trigger
// fires; the entry records every reason that applied so a postmortem
// sees the full failure signature.
const (
	// FlightReasonStatus5xx pins requests that ended in any 5xx
	// (including 504 deadline expiry).
	FlightReasonStatus5xx = "status_5xx"
	// FlightReasonSlow pins requests whose end-to-end latency exceeded
	// the configured slow threshold.
	FlightReasonSlow = "slow"
	// FlightReasonBrownout pins requests served under brownout level
	// >= 1 — degraded fidelity worth a postmortem trail.
	FlightReasonBrownout = "brownout"
	// FlightReasonBatchAborted pins requests that rode a cooperatively
	// aborted batch.
	FlightReasonBatchAborted = "batch_aborted"
	// FlightReasonDeadlineExhausted pins router requests whose
	// end-to-end deadline ran out before any replica answered.
	FlightReasonDeadlineExhausted = "deadline_exhausted"
)

// FlightConfig tunes a FlightRecorder.
type FlightConfig struct {
	// Capacity is how many pinned requests are retained (default 64).
	// Only pinned requests occupy slots: a million fast 200s cost
	// nothing, so the recorder still holds the bad requests from hours
	// ago when the pager fires.
	Capacity int
	// SlowThreshold, when positive, pins any request slower than this
	// end-to-end regardless of status.
	SlowThreshold time.Duration
}

// DefaultFlightBuffer is the default pinned-request capacity.
const DefaultFlightBuffer = 64

// FlightEntry is one pinned request: its full span trace plus the
// verdict that pinned it.
type FlightEntry struct {
	Trace   *Trace
	Status  int
	Latency time.Duration
	// Reasons lists every trigger that fired, sorted.
	Reasons []string
	// BrownoutLevel is the brownout level the request was served
	// under (0 = full fidelity).
	BrownoutLevel int
}

// FlightRecorder is the tail-sampling retention policy: unlike the
// counter-sampled ring (a uniform sample of all traffic), it pins the
// complete span set of exactly the requests postmortems need — 5xx,
// aborted batches, brownout-degraded, or slow — and drops everything
// else. Safe for concurrent use.
type FlightRecorder struct {
	cfg FlightConfig

	mu sync.Mutex
	//pimcaps:guardedby mu
	ring []FlightEntry
	//pimcaps:guardedby mu
	next int
	//pimcaps:guardedby mu
	pinned uint64 // entries ever pinned (including since-evicted)
	//pimcaps:guardedby mu
	offered uint64 // requests ever offered (pinned or not)
}

// NewFlightRecorder builds a recorder from cfg.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultFlightBuffer
	}
	return &FlightRecorder{cfg: cfg, ring: make([]FlightEntry, 0, cfg.Capacity)}
}

// SlowThreshold returns the configured slow-pin latency bound (0 when
// disabled).
func (f *FlightRecorder) SlowThreshold() time.Duration { return f.cfg.SlowThreshold }

// Note offers one finished request to the recorder. The built-in
// triggers (status >= 500, latency > SlowThreshold, brownoutLevel >=
// 1) are evaluated here; extraReasons carries caller-known triggers
// (batch aborted, deadline exhausted). Returns whether the request
// was pinned. Nil traces are never pinned — there is nothing to
// retain.
func (f *FlightRecorder) Note(t *Trace, status int, latency time.Duration, brownoutLevel int, extraReasons ...string) bool {
	if f == nil || t == nil {
		return false
	}
	reasons := append([]string(nil), extraReasons...)
	if status >= 500 {
		reasons = append(reasons, FlightReasonStatus5xx)
	}
	if f.cfg.SlowThreshold > 0 && latency > f.cfg.SlowThreshold {
		reasons = append(reasons, FlightReasonSlow)
	}
	if brownoutLevel >= 1 {
		reasons = append(reasons, FlightReasonBrownout)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.offered++
	if len(reasons) == 0 {
		return false
	}
	sort.Strings(reasons)
	entry := FlightEntry{
		Trace: t, Status: status, Latency: latency,
		Reasons: reasons, BrownoutLevel: brownoutLevel,
	}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, entry)
	} else {
		f.ring[f.next] = entry
		f.next = (f.next + 1) % len(f.ring)
	}
	f.pinned++
	return true
}

// Entries returns the pinned requests, oldest first.
func (f *FlightRecorder) Entries() []FlightEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEntry, 0, len(f.ring))
	for i := 0; i < len(f.ring); i++ {
		out = append(out, f.ring[(f.next+i)%len(f.ring)])
	}
	return out
}

// Pinned returns how many requests have ever been pinned (including
// entries the ring has since evicted).
func (f *FlightRecorder) Pinned() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pinned
}

// Find returns the pinned traces whose ID equals id, oldest first.
func (f *FlightRecorder) Find(id string) []*Trace {
	var out []*Trace
	for _, e := range f.Entries() {
		if e.Trace != nil && e.Trace.ID == id {
			out = append(out, e.Trace)
		}
	}
	return out
}

// flightWire is the /debug/requests/flight JSON shape.
type flightWire struct {
	TraceID        string     `json:"trace_id"`
	Status         int        `json:"status"`
	LatencySeconds float64    `json:"latency_seconds"`
	Reasons        []string   `json:"reasons"`
	BrownoutLevel  int        `json:"brownout_level,omitempty"`
	ParentSpan     string     `json:"parent_span,omitempty"`
	Spans          []WireSpan `json:"spans"`
}

// flightDoc wraps the entry list with totals, so a reader can tell a
// quiet recorder from a wrapped one.
type flightDoc struct {
	Pinned   uint64       `json:"pinned_total"`
	Retained int          `json:"retained"`
	Capacity int          `json:"capacity"`
	Entries  []flightWire `json:"entries"`
}

// WriteJSON emits the recorder's pinned requests as JSON, oldest
// first, each with its complete span set.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	entries := f.Entries()
	doc := flightDoc{
		Pinned: f.Pinned(), Retained: len(entries), Capacity: f.cfg.Capacity,
		Entries: make([]flightWire, 0, len(entries)),
	}
	for _, e := range entries {
		fw := flightWire{
			Status:         e.Status,
			LatencySeconds: e.Latency.Seconds(),
			Reasons:        e.Reasons,
			BrownoutLevel:  e.BrownoutLevel,
		}
		if e.Trace != nil {
			fw.TraceID = e.Trace.ID
			fw.ParentSpan = e.Trace.Parent()
			fw.Spans = wireSpans(e.Trace)
		}
		doc.Entries = append(doc.Entries, fw)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Traces returns the pinned traces, oldest first, deduplicated by
// pointer against already — the set union a -trace-out shutdown dump
// merges with the sampled ring.
func (f *FlightRecorder) Traces(already []*Trace) []*Trace {
	seen := make(map[*Trace]bool, len(already))
	for _, t := range already {
		seen[t] = true
	}
	var out []*Trace
	for _, e := range f.Entries() {
		if e.Trace != nil && !seen[e.Trace] {
			seen[e.Trace] = true
			out = append(out, e.Trace)
		}
	}
	return out
}
