// Package obs is the observability layer for the serving and
// inference stack: request-scoped trace IDs, lightweight spans
// covering the serving pipeline (admission → queue wait → batch
// assembly → forward → encode) and the forward pass's internal stages
// (conv, PrimaryCaps, prediction vectors, each dynamic-routing
// iteration), a ring buffer of completed request traces exportable as
// Chrome trace-event JSON (Perfetto-loadable, like the simulator's
// co-sim timelines in internal/trace), and runtime/metrics-backed
// process gauges.
//
// The paper's whole argument rests on knowing where time goes — its
// Figure 3/4 characterization attributes ≈74.6% of CapsNet inference
// to the routing procedure before proposing the PIM offload. This
// package gives the production Go stack the same visibility: a served
// request renders as a Gantt chart whose routing-iteration spans can
// be compared directly against the paper's breakdown.
//
// Design constraints:
//
//   - Standard library only.
//   - Near-zero overhead when disabled: an unsampled request carries a
//     nil *Trace, and every Trace method is nil-receiver safe, so the
//     hot path pays one pointer check per span site.
//   - Deterministic under test: the clock, the trace-ID source, and
//     the sampling decision (a counter, not a PRNG) are all
//     injectable.
//   - internal/capsnet never imports this package; it exposes a
//     StageTimer hook interface that StageRecorder satisfies
//     structurally.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"
)

// Clock is the time source; injectable for deterministic tests.
type Clock func() time.Time

// Wire headers carrying trace identity across process boundaries.
// X-Trace-Id names the whole request story; X-Parent-Span names the
// upstream span an attempt's downstream spans hang under — the router
// mints a fresh span ID per attempt (retries and hedges included), so
// each replica's stage spans attribute to exactly one attempt.
const (
	TraceIDHeader    = "X-Trace-Id"
	ParentSpanHeader = "X-Parent-Span"
)

// Span is one timed operation inside a request or batch: a stage of
// the serving pipeline or of the forward pass.
type Span struct {
	// Name is the stage name ("queue_wait", "conv",
	// "routing_iteration", ...). Serving-pipeline names live in
	// internal/serve; forward-pass names are capsnet's Stage*
	// constants.
	Name string
	// Iter is the dynamic-routing iteration index, or -1 when the
	// stage is not per-iteration.
	Iter int
	// Start and End bound the stage.
	Start, End time.Time
	// ID is the span's own identity (16 hex chars), set only for spans
	// that downstream spans reference as a parent — the router's
	// per-attempt spans. Empty for plain stage spans.
	ID string
	// Parent is the span ID this span hangs under, when known.
	Parent string
	// Tags annotate the span (attempt="2", hedge="true", replica="r1",
	// ...). Nil for untagged spans, so the common case allocates
	// nothing.
	Tags map[string]string
}

// Trace collects the spans of one request (or, transiently, of one
// micro-batch whose spans are then copied into each rider's request
// trace). All methods are safe for concurrent use and safe on a nil
// receiver, so unsampled requests cost one nil check per span site.
type Trace struct {
	// ID is the request's trace ID (16 lowercase hex chars), the same
	// value returned in the X-Trace-Id response header and stamped on
	// the request's log lines.
	ID string
	// Start is when the request was admitted.
	Start time.Time

	mu sync.Mutex
	//pimcaps:guardedby mu
	end time.Time
	//pimcaps:guardedby mu
	parent string
	//pimcaps:guardedby mu
	spans []Span
	// sampled marks traces the counter sampler chose for the
	// completed-trace ring; a flight-recorder-armed server records
	// every request live but only ring-retains sampled ones. It is
	// deliberately NOT guardedby mu: written once before the trace is
	// shared, read lock-free afterwards.
	sampled bool
}

// Add records one completed span. No-op on a nil receiver.
func (t *Trace) Add(name string, iter int, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Iter: iter, Start: start, End: end})
	t.mu.Unlock()
}

// AddSpan records one completed span with full identity (ID, parent,
// tags) — the form the router's per-attempt spans use. No-op on a nil
// receiver.
func (t *Trace) AddSpan(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// SetParent records the upstream span ID this trace's spans hang
// under (the X-Parent-Span request header). No-op on a nil receiver.
func (t *Trace) SetParent(spanID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.parent = spanID
	t.mu.Unlock()
}

// Parent returns the upstream span ID set by SetParent ("" if none or
// on a nil receiver).
func (t *Trace) Parent() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.parent
}

// Sampled reports whether the counter sampler chose this trace for
// the completed-trace ring (false on a nil receiver).
func (t *Trace) Sampled() bool {
	if t == nil {
		return false
	}
	return t.sampled
}

// AddSpans bulk-copies spans (a batch trace's stage spans) into t.
// No-op on a nil receiver.
func (t *Trace) AddSpans(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in insertion order.
// Nil on a nil receiver.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// setEnd stamps the request's completion time.
func (t *Trace) setEnd(end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.end = end
	t.mu.Unlock()
}

// EndTime returns the completion stamp set by Tracer.Finish (zero
// until then, or on a nil receiver).
func (t *Trace) EndTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.end
}

// NewID returns a fresh 64-bit trace ID as 16 lowercase hex chars,
// drawn from crypto/rand (falling back to a process-local counter if
// the system entropy source fails, which crypto/rand.Read never does
// on supported platforms).
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], fallbackID.next())
	}
	return hex.EncodeToString(b[:])
}

// fallbackID is the entropy-failure counter behind NewID.
var fallbackID idCounter

type idCounter struct {
	mu sync.Mutex
	//pimcaps:guardedby mu
	n uint64
}

func (c *idCounter) next() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}
