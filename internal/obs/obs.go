// Package obs is the observability layer for the serving and
// inference stack: request-scoped trace IDs, lightweight spans
// covering the serving pipeline (admission → queue wait → batch
// assembly → forward → encode) and the forward pass's internal stages
// (conv, PrimaryCaps, prediction vectors, each dynamic-routing
// iteration), a ring buffer of completed request traces exportable as
// Chrome trace-event JSON (Perfetto-loadable, like the simulator's
// co-sim timelines in internal/trace), and runtime/metrics-backed
// process gauges.
//
// The paper's whole argument rests on knowing where time goes — its
// Figure 3/4 characterization attributes ≈74.6% of CapsNet inference
// to the routing procedure before proposing the PIM offload. This
// package gives the production Go stack the same visibility: a served
// request renders as a Gantt chart whose routing-iteration spans can
// be compared directly against the paper's breakdown.
//
// Design constraints:
//
//   - Standard library only.
//   - Near-zero overhead when disabled: an unsampled request carries a
//     nil *Trace, and every Trace method is nil-receiver safe, so the
//     hot path pays one pointer check per span site.
//   - Deterministic under test: the clock, the trace-ID source, and
//     the sampling decision (a counter, not a PRNG) are all
//     injectable.
//   - internal/capsnet never imports this package; it exposes a
//     StageTimer hook interface that StageRecorder satisfies
//     structurally.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"
)

// Clock is the time source; injectable for deterministic tests.
type Clock func() time.Time

// Span is one timed operation inside a request or batch: a stage of
// the serving pipeline or of the forward pass.
type Span struct {
	// Name is the stage name ("queue_wait", "conv",
	// "routing_iteration", ...). Serving-pipeline names live in
	// internal/serve; forward-pass names are capsnet's Stage*
	// constants.
	Name string
	// Iter is the dynamic-routing iteration index, or -1 when the
	// stage is not per-iteration.
	Iter int
	// Start and End bound the stage.
	Start, End time.Time
}

// Trace collects the spans of one request (or, transiently, of one
// micro-batch whose spans are then copied into each rider's request
// trace). All methods are safe for concurrent use and safe on a nil
// receiver, so unsampled requests cost one nil check per span site.
type Trace struct {
	// ID is the request's trace ID (16 lowercase hex chars), the same
	// value returned in the X-Trace-Id response header and stamped on
	// the request's log lines.
	ID string
	// Start is when the request was admitted.
	Start time.Time

	mu    sync.Mutex
	end   time.Time
	spans []Span
}

// Add records one completed span. No-op on a nil receiver.
func (t *Trace) Add(name string, iter int, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Iter: iter, Start: start, End: end})
	t.mu.Unlock()
}

// AddSpans bulk-copies spans (a batch trace's stage spans) into t.
// No-op on a nil receiver.
func (t *Trace) AddSpans(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in insertion order.
// Nil on a nil receiver.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// setEnd stamps the request's completion time.
func (t *Trace) setEnd(end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.end = end
	t.mu.Unlock()
}

// EndTime returns the completion stamp set by Tracer.Finish (zero
// until then, or on a nil receiver).
func (t *Trace) EndTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.end
}

// NewID returns a fresh 64-bit trace ID as 16 lowercase hex chars,
// drawn from crypto/rand (falling back to a process-local counter if
// the system entropy source fails, which crypto/rand.Read never does
// on supported platforms).
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], fallbackID.next())
	}
	return hex.EncodeToString(b[:])
}

// fallbackID is the entropy-failure counter behind NewID.
var fallbackID idCounter

type idCounter struct {
	mu sync.Mutex
	n  uint64
}

func (c *idCounter) next() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}
